// Benchmarks that regenerate every table and figure of the paper at a
// reduced scale (the SB-bound suite, ~120k instructions per run). Each
// benchmark reports the figure's headline number as a custom metric, so
// `go test -bench=. -benchmem` doubles as a shape check of the whole
// reproduction. Full-scale tables come from `go run ./cmd/spbtables`.
package spb

import (
	"testing"

	"spb/internal/core"
	"spb/internal/figures"
	"spb/internal/sim"
)

// benchHarness builds a fresh harness per benchmark; within one benchmark
// the underlying runner memoizes, so iterations beyond the first are cheap.
func benchHarness() *figures.Harness {
	return figures.NewHarness(figures.Quick)
}

// runFigure executes gen b.N times, reporting vals from the last run via
// report (which maps a figure's tables to named headline metrics).
func runFigure(b *testing.B, gen func() ([]figures.Table, error),
	report func(b *testing.B, tabs []figures.Table)) {
	b.Helper()
	var tabs []figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tabs, err = gen()
		if err != nil {
			b.Fatal(err)
		}
	}
	if report != nil {
		report(b, tabs)
	}
}

func BenchmarkTableI_Config(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.TableI, nil)
}

func BenchmarkTableII_Cores(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.TableII, nil)
}

func BenchmarkFig01_SBStallRatio(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig1, func(b *testing.B, tabs []figures.Table) {
		bound := tabs[0].Rows[1].Vals
		b.ReportMetric(bound[0], "stall-ratio-SB56")
		b.ReportMetric(bound[2], "stall-ratio-SB14")
	})
}

func BenchmarkFig03_StallPCs(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig3, func(b *testing.B, tabs []figures.Table) {
		if len(tabs[0].Rows) > 0 {
			// Fraction of stalls in library code for the first app.
			b.ReportMetric(tabs[0].Rows[0].Vals[1], "lib-frac")
		}
	})
}

func reportFig5(b *testing.B, tabs []figures.Table) {
	for _, tab := range tabs {
		for _, r := range tab.Rows {
			if r.Name == "spb" {
				b.ReportMetric(r.Vals[1], "spb-vs-ideal-"+tab.Title[8:12])
			}
		}
	}
}

func BenchmarkFig05_NormPerf(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig5, reportFig5)
}

func BenchmarkFig06_PerApp(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig6, nil)
}

func BenchmarkFig07_Energy(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig7, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[len(tabs)-1].Rows {
			if r.Name == "spb" {
				b.ReportMetric(r.Vals[3], "spb-energy-vs-atcommit-SB14")
			}
		}
	})
}

func BenchmarkFig08_SBStalls(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig8, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[0].Rows {
			if r.Name == "spb" {
				b.ReportMetric(r.Vals[5], "spb-stalls-vs-atcommit-SB14")
			}
		}
	})
}

func BenchmarkFig09_PerAppStalls(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig9, nil)
}

func BenchmarkFig10_IssueStalls(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig10, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[len(tabs)-1].Rows {
			if r.Name == "spb" {
				b.ReportMetric(r.Vals[2], "spb-net-stalls-SB14")
			}
		}
	})
}

func BenchmarkFig11_PrefetchAccuracy(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig11, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[0].Rows {
			switch r.Name {
			case "at-commit":
				b.ReportMetric(r.Vals[0], "atcommit-success-frac")
			case "spb":
				b.ReportMetric(r.Vals[0], "spb-success-frac")
			}
		}
	})
}

func BenchmarkFig12_Traffic(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig12, func(b *testing.B, tabs []figures.Table) {
		b.ReportMetric(tabs[0].Rows[2].Vals[1], "spb-req-ratio-SB14")
	})
}

func BenchmarkFig13_TagOverhead(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig13, func(b *testing.B, tabs []figures.Table) {
		b.ReportMetric(tabs[0].Rows[2].Vals[1], "spb-tag-ratio-SB14")
	})
}

func BenchmarkFig14_ExecStalls(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig14, func(b *testing.B, tabs []figures.Table) {
		b.ReportMetric(tabs[0].Rows[2].Vals[1], "spb-l1dstalls-ratio-SB14")
	})
}

func BenchmarkFig15_PerAppExecStalls(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig15, nil)
}

func BenchmarkFig16_GenericPrefetchers(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig16, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[len(tabs)-1].Rows {
			if r.Name == "spb" {
				b.ReportMetric(r.Vals[3], "spb-vs-ideal-adaptive-SB14")
			}
		}
	})
}

func BenchmarkFig17_CoreSweep(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig17, func(b *testing.B, tabs []figures.Table) {
		// SLM at half SB: the paper's worst case for at-commit.
		b.ReportMetric(tabs[1].Rows[0].Vals[0], "atcommit-SLM-halfSB")
		b.ReportMetric(tabs[1].Rows[0].Vals[1], "spb-SLM-halfSB")
	})
}

func BenchmarkFig18_Parsec(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Fig18, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[1].Rows {
			if r.Name == "spb" {
				b.ReportMetric(r.Vals[1], "spb-vs-ideal-SB14-bound")
			}
		}
	})
}

func BenchmarkClaim_SB20EqualsSB56(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.SB20, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[0].Rows {
			if r.Name == "spb SB20" {
				b.ReportMetric(r.Vals[0], "spb-SB20-vs-atcommit-SB56")
			}
		}
	})
}

func BenchmarkAblation_WindowN(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.SensN, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[0].Rows {
			if r.Name == "N=48" {
				b.ReportMetric(r.Vals[0], "spb-N48-vs-ideal")
			}
		}
	})
}

func BenchmarkAblation_Extensions(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.Extensions, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[0].Rows {
			switch r.Name {
			case "spb (paper)":
				b.ReportMetric(r.Vals[0], "spb-plain")
			case "spb + backward bursts":
				b.ReportMetric(r.Vals[0], "spb-backward")
			case "spb + coalescing SB":
				b.ReportMetric(r.Vals[0], "spb-coalesce")
			}
		}
	})
}

func BenchmarkZoo_Prefetchers(b *testing.B) {
	h := benchHarness()
	runFigure(b, h.PFZoo, func(b *testing.B, tabs []figures.Table) {
		for _, r := range tabs[0].Rows {
			switch r.Name {
			case "bop":
				b.ReportMetric(r.Vals[3], "spb-bop-sbbound")
			case "dspatch":
				b.ReportMetric(r.Vals[3], "spb-dspatch-sbbound")
			case "hybrid":
				b.ReportMetric(r.Vals[3], "spb-hybrid-sbbound")
			}
		}
	})
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall-clock second for one representative run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := sim.RunSpec{
		Workload: "roms", Policy: core.PolicySPB, SQSize: 28, Insts: 100_000,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(spec.Insts)*float64(b.N)/b.Elapsed().Seconds(), "inst/s")
}
