package bpred

import "sync"

// Warm-start support (DESIGN.md §12): counter-free functional warming, deep
// snapshot/restore, and pooled tables so repeated Runner invocations stop
// allocating the PHT and BTB arrays.

// Warm trains the predictor with a branch outcome for functional warming:
// identical table, history and BTB effects to a Predict+Update pair, but no
// statistics counters.
func (p *Predictor) Warm(pc uint64, taken bool) {
	idx := p.index(pc)
	if taken && p.pht[idx] < 3 {
		p.pht[idx]++
	}
	if !taken && p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.history = p.history<<1 | b2u(taken)
	p.btbTags[(pc>>2)&p.btbMask] = pc
}

// Snapshot is a deep copy of a predictor's mutable state.
type Snapshot struct {
	pht     []uint8
	history uint64
	btbTags []uint64

	lookups, mispredicts, btbMisses uint64
}

// Snapshot deep-copies the predictor's mutable state.
func (p *Predictor) Snapshot() *Snapshot {
	return &Snapshot{
		pht:         append([]uint8(nil), p.pht...),
		history:     p.history,
		btbTags:     append([]uint64(nil), p.btbTags...),
		lookups:     p.Lookups,
		mispredicts: p.Mispredicts,
		btbMisses:   p.BTBMisses,
	}
}

// Restore overwrites the predictor's mutable state with the snapshot's. The
// predictor must have the same geometry as the snapshot's source.
func (p *Predictor) Restore(s *Snapshot) {
	if len(p.pht) != len(s.pht) || len(p.btbTags) != len(s.btbTags) {
		panic("bpred: Restore with mismatched geometry")
	}
	copy(p.pht, s.pht)
	p.history = s.history
	copy(p.btbTags, s.btbTags)
	p.Lookups = s.lookups
	p.Mispredicts = s.mispredicts
	p.BTBMisses = s.btbMisses
}

// tables is the pooled backing storage of one predictor geometry.
type tables struct {
	pht     []uint8
	btbTags []uint64
}

var tablePools sync.Map // [2]int{pht, btb} -> *sync.Pool of *tables

func tablePoolFor(pht, btb int) *sync.Pool {
	key := [2]int{pht, btb}
	if p, ok := tablePools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := tablePools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// newTables returns zeroed PHT/BTB arrays, reusing released ones of the same
// geometry when available.
func newTables(pht, btb int) *tables {
	if v := tablePoolFor(pht, btb).Get(); v != nil {
		t := v.(*tables)
		for i := range t.pht {
			t.pht[i] = 0
		}
		for i := range t.btbTags {
			t.btbTags[i] = 0
		}
		return t
	}
	return &tables{pht: make([]uint8, pht), btbTags: make([]uint64, btb)}
}

// Release returns the PHT/BTB arrays to the geometry's shared pool. The
// predictor must not be used afterwards; skipping Release is always safe.
func (p *Predictor) Release() {
	if p.pht == nil {
		return
	}
	tablePoolFor(len(p.pht), len(p.btbTags)).Put(&tables{pht: p.pht, btbTags: p.btbTags})
	p.pht = nil
	p.btbTags = nil
}
