// Package bpred models the branch direction predictor of the front end.
// Table I specifies a 64 KB L-TAGE predictor with an 8K+8K BTB; by default
// the simulator models its *effect* statistically (per-workload mispredict
// rates, as the paper's characterization provides), and this package is the
// structural alternative: a gshare direction predictor plus a BTB whose
// misses cost a front-end bubble. Cores enable it with
// cpu.Options.UseBranchPredictor, which replaces the trace's statistical
// mispredict flags with modelled outcomes derived from actual branch
// directions.
package bpred

// Predictor is a gshare direction predictor with a direct-mapped BTB.
type Predictor struct {
	pht      []uint8 // 2-bit saturating counters
	history  uint64
	histBits uint

	btbTags []uint64
	btbMask uint64

	// Statistics.
	Lookups     uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// Config sizes the predictor.
type Config struct {
	PHTEntries  int // pattern history table size (power of two)
	HistoryBits int
	BTBEntries  int // power of two
}

// TableI returns a configuration in the spirit of Table I's 64 KB L-TAGE +
// 8K-entry BTB (a gshare of the same storage class).
func TableI() Config {
	return Config{PHTEntries: 1 << 15, HistoryBits: 12, BTBEntries: 1 << 13}
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	if cfg.PHTEntries <= 0 || cfg.PHTEntries&(cfg.PHTEntries-1) != 0 {
		panic("bpred: PHT entries must be a positive power of two")
	}
	if cfg.BTBEntries <= 0 || cfg.BTBEntries&(cfg.BTBEntries-1) != 0 {
		panic("bpred: BTB entries must be a positive power of two")
	}
	if cfg.HistoryBits <= 0 || cfg.HistoryBits > 32 {
		panic("bpred: history bits must be in 1..32")
	}
	tb := newTables(cfg.PHTEntries, cfg.BTBEntries)
	p := &Predictor{
		pht:      tb.pht,
		histBits: uint(cfg.HistoryBits),
		btbTags:  tb.btbTags,
		btbMask:  uint64(cfg.BTBEntries - 1),
	}
	// Initialize counters to weakly taken: loops predict well immediately.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	h := p.history & ((1 << p.histBits) - 1)
	return ((pc >> 2) ^ h) & uint64(len(p.pht)-1)
}

// Predict returns the predicted direction for the branch at pc and whether
// the BTB knew the branch at all (a BTB miss costs a fetch bubble even on a
// correct direction guess).
func (p *Predictor) Predict(pc uint64) (taken, btbHit bool) {
	p.Lookups++
	taken = p.pht[p.index(pc)] >= 2
	slot := (pc >> 2) & p.btbMask
	btbHit = p.btbTags[slot] == pc
	if !btbHit {
		p.BTBMisses++
	}
	return taken, btbHit
}

// Update trains the predictor with the branch's actual direction and
// reports whether the prediction had been wrong. Call exactly once per
// executed branch, after Predict.
func (p *Predictor) Update(pc uint64, taken bool) (mispredicted bool) {
	idx := p.index(pc)
	pred := p.pht[idx] >= 2
	mispredicted = pred != taken
	if mispredicted {
		p.Mispredicts++
	}
	if taken && p.pht[idx] < 3 {
		p.pht[idx]++
	}
	if !taken && p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.history = p.history<<1 | b2u(taken)
	p.btbTags[(pc>>2)&p.btbMask] = pc
	return mispredicted
}

// MispredictRate returns mispredicts / lookups, or 0 when idle.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
