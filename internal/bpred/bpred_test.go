package bpred

import (
	"testing"
	"testing/quick"

	"spb/internal/trace"
)

func small() *Predictor {
	return New(Config{PHTEntries: 1 << 10, HistoryBits: 8, BTBEntries: 1 << 6})
}

func TestAlwaysTakenLearns(t *testing.T) {
	p := small()
	miss := 0
	for i := 0; i < 1000; i++ {
		pred, _ := p.Predict(0x4000)
		if p.Update(0x4000, true) {
			miss++
		}
		_ = pred
	}
	if miss > 2 {
		t.Fatalf("always-taken branch mispredicted %d times, want <= 2", miss)
	}
}

func TestAlternatingPatternLearns(t *testing.T) {
	// T,N,T,N... is trivially captured by one history bit.
	p := small()
	miss := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		p.Predict(0x5000)
		if p.Update(0x5000, taken) {
			miss++
		}
	}
	if rate := float64(miss) / 2000; rate > 0.05 {
		t.Fatalf("alternating branch mispredict rate %.3f, want < 0.05", rate)
	}
}

func TestLoopBranchMissesOncePerTrip(t *testing.T) {
	// An 8-iteration loop branch (7 taken, 1 not) should settle near a
	// 1-in-8 mispredict rate or better with history.
	p := small()
	miss := 0
	total := 0
	for trip := 0; trip < 200; trip++ {
		for i := 0; i < 8; i++ {
			taken := i != 7
			p.Predict(0x6000)
			if p.Update(0x6000, taken) {
				miss++
			}
			total++
		}
	}
	if rate := float64(miss) / float64(total); rate > 0.2 {
		t.Fatalf("loop branch mispredict rate %.3f, want < 0.2", rate)
	}
}

func TestRandomBranchMispredictsOften(t *testing.T) {
	p := small()
	rng := trace.NewRNG(7)
	miss := 0
	const n = 4000
	for i := 0; i < n; i++ {
		p.Predict(0x7000)
		if p.Update(0x7000, rng.Bool(0.5)) {
			miss++
		}
	}
	if rate := float64(miss) / n; rate < 0.3 {
		t.Fatalf("random branch mispredict rate %.3f, want >= 0.3", rate)
	}
}

func TestBTBWarmup(t *testing.T) {
	p := small()
	if _, hit := p.Predict(0x8000); hit {
		t.Fatal("cold BTB must miss")
	}
	p.Update(0x8000, true)
	if _, hit := p.Predict(0x8000); !hit {
		t.Fatal("trained BTB must hit")
	}
	if p.BTBMisses != 1 {
		t.Fatalf("BTBMisses = %d, want 1", p.BTBMisses)
	}
}

func TestMispredictRate(t *testing.T) {
	p := small()
	if p.MispredictRate() != 0 {
		t.Fatal("idle predictor rate should be 0")
	}
	p.Predict(0x9000)
	p.Update(0x9000, false) // init weakly-taken: this mispredicts
	if p.MispredictRate() != 1 {
		t.Fatalf("rate = %v, want 1", p.MispredictRate())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{PHTEntries: 0, HistoryBits: 8, BTBEntries: 64},
		{PHTEntries: 100, HistoryBits: 8, BTBEntries: 64},
		{PHTEntries: 64, HistoryBits: 0, BTBEntries: 64},
		{PHTEntries: 64, HistoryBits: 8, BTBEntries: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: counters stay within the 2-bit range whatever the stream.
func TestCountersBounded(t *testing.T) {
	f := func(outcomes []bool, pcs []uint16) bool {
		p := small()
		for i, taken := range outcomes {
			pc := uint64(0x1000)
			if i < len(pcs) {
				pc += uint64(pcs[i]) * 4
			}
			p.Predict(pc)
			p.Update(pc, taken)
		}
		for _, c := range p.pht {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableIConfigValid(t *testing.T) {
	p := New(TableI())
	if p == nil {
		t.Fatal("Table I predictor failed to build")
	}
}
