package bpred

import (
	"bytes"
	"encoding/gob"
)

// Gob wire form of a Snapshot (crash-safe checkpoints, DESIGN.md §15).

type snapshotWire struct {
	PHT     []uint8
	History uint64
	BTBTags []uint64

	Lookups, Mispredicts, BTBMisses uint64
}

// GobEncode implements gob.GobEncoder.
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		PHT: s.pht, History: s.history, BTBTags: s.btbTags,
		Lookups: s.lookups, Mispredicts: s.mispredicts, BTBMisses: s.btbMisses,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.pht = w.PHT
	s.history = w.History
	s.btbTags = w.BTBTags
	s.lookups = w.Lookups
	s.mispredicts = w.Mispredicts
	s.btbMisses = w.BTBMisses
	return nil
}
