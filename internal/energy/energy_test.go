package energy

import (
	"testing"
	"testing/quick"
)

func TestZeroEventsZeroDynamic(t *testing.T) {
	b := Compute(Default22nm(), Events{})
	if b.CacheDynamic != 0 || b.CoreDynamic != 0 || b.Static != 0 {
		t.Fatalf("zero events should cost nothing: %+v", b)
	}
}

func TestStaticScalesWithCycles(t *testing.T) {
	p := Default22nm()
	a := Compute(p, Events{Cycles: 1000})
	b := Compute(p, Events{Cycles: 2000})
	if b.Static <= a.Static || b.Static != 2*a.Static {
		t.Fatalf("static energy must scale linearly with cycles: %v vs %v", a.Static, b.Static)
	}
}

func TestCacheDynamicComposition(t *testing.T) {
	p := Default22nm()
	b := Compute(p, Events{L1TagAccesses: 1e6})
	if b.CacheDynamic <= 0 || b.CoreDynamic != 0 {
		t.Fatalf("tag accesses must appear in cache dynamic only: %+v", b)
	}
	b2 := Compute(p, Events{DRAMAccesses: 1e6})
	if b2.CacheDynamic <= b.CacheDynamic {
		t.Fatal("a DRAM access must cost far more than an L1 tag access")
	}
}

func TestWrongPathCostsCoreEnergy(t *testing.T) {
	p := Default22nm()
	base := Compute(p, Events{CommittedInsts: 1e6})
	wp := Compute(p, Events{CommittedInsts: 1e6, WrongPathInsts: 2e5})
	if wp.CoreDynamic <= base.CoreDynamic {
		t.Fatal("wrong-path instructions must add core dynamic energy")
	}
}

func TestSBSearchScalesWithEntries(t *testing.T) {
	p := Default22nm()
	small := Compute(p, Events{Loads: 1e6, SBEntries: 14})
	big := Compute(p, Events{Loads: 1e6, SBEntries: 56})
	if big.CoreDynamic <= small.CoreDynamic {
		t.Fatal("a larger SB CAM must cost more per load search")
	}
}

func TestTotalIsSum(t *testing.T) {
	f := func(cyc, tags, insts uint32) bool {
		b := Compute(Default22nm(), Events{
			Cycles:         uint64(cyc),
			L1TagAccesses:  uint64(tags),
			CommittedInsts: uint64(insts),
		})
		want := b.CacheDynamic + b.CoreDynamic + b.Static
		return b.Total() == want && b.Total() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyMonotoneInEvents(t *testing.T) {
	f := func(n uint16) bool {
		p := Default22nm()
		a := Compute(p, Events{L2Accesses: uint64(n)})
		b := Compute(p, Events{L2Accesses: uint64(n) + 1})
		return b.CacheDynamic > a.CacheDynamic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
