// Package energy is the event-based substitute for the paper's McPAT flow:
// each class of micro-architectural event carries a fixed dynamic energy and
// each structure a leakage power, so a run's energy is a dot product over
// the simulator's counters plus leakage × runtime. The 22 nm-flavoured
// constants are order-of-magnitude plausible; as with the performance model,
// only the relative effects the paper argues about matter — prefetch traffic
// slightly raises cache dynamic energy, fewer wrong-path instructions and
// shorter runtime cut core dynamic and leakage energy.
package energy

// Params holds the per-event dynamic energies (picojoules) and leakage
// powers (watts) of the model.
type Params struct {
	// Dynamic energy per event, in picojoules.
	L1TagAccessPJ  float64
	L1DataAccessPJ float64
	L2AccessPJ     float64
	L3AccessPJ     float64
	DRAMAccessPJ   float64
	CoreInstPJ     float64 // per executed (committed or wrong-path) instruction
	SBSearchPJ     float64 // per load's associative SB search, scaled by entries

	// Leakage power in watts.
	CoreLeakW  float64
	CacheLeakW float64

	// ClockHz converts cycles to seconds for leakage.
	ClockHz float64
}

// Default22nm returns the constants used by every experiment, loosely
// calibrated against published McPAT numbers for a 22 nm Skylake-class core
// at 2 GHz and 0.6 V.
func Default22nm() Params {
	return Params{
		L1TagAccessPJ:  2,
		L1DataAccessPJ: 15,
		L2AccessPJ:     45,
		L3AccessPJ:     120,
		DRAMAccessPJ:   2000,
		CoreInstPJ:     35,
		SBSearchPJ:     0.25, // per entry searched
		CoreLeakW:      0.45,
		CacheLeakW:     0.30,
		ClockHz:        2e9,
	}
}

// Events is the counter vector the model consumes, gathered from the
// simulator's statistics after a run.
type Events struct {
	Cycles uint64

	L1TagAccesses  uint64
	L1DataAccesses uint64 // demand hits + fills
	L2Accesses     uint64
	L3Accesses     uint64
	DRAMAccesses   uint64

	CommittedInsts uint64
	WrongPathInsts uint64

	Loads     uint64 // each pays an SB search
	SBEntries int    // associative search width
}

// Breakdown is the energy report of one run, in joules, split the way the
// paper's Fig. 7 splits it.
type Breakdown struct {
	CacheDynamic float64 // L1 + L2 + L3 (+ DRAM) dynamic
	CoreDynamic  float64 // instruction execution + SB CAM searches
	Static       float64 // leakage over the runtime
}

// Total returns dynamic + static energy.
func (b Breakdown) Total() float64 {
	return b.CacheDynamic + b.CoreDynamic + b.Static
}

// Compute evaluates the model over an event vector.
func Compute(p Params, ev Events) Breakdown {
	const pj = 1e-12
	var b Breakdown
	b.CacheDynamic = pj * (float64(ev.L1TagAccesses)*p.L1TagAccessPJ +
		float64(ev.L1DataAccesses)*p.L1DataAccessPJ +
		float64(ev.L2Accesses)*p.L2AccessPJ +
		float64(ev.L3Accesses)*p.L3AccessPJ +
		float64(ev.DRAMAccesses)*p.DRAMAccessPJ)
	b.CoreDynamic = pj * (float64(ev.CommittedInsts+ev.WrongPathInsts)*p.CoreInstPJ +
		float64(ev.Loads)*float64(ev.SBEntries)*p.SBSearchPJ)
	seconds := float64(ev.Cycles) / p.ClockHz
	b.Static = (p.CoreLeakW + p.CacheLeakW) * seconds
	return b
}
