package dram

import (
	"testing"
	"testing/quick"
)

func TestUnloadedLatency(t *testing.T) {
	d := New(200, 5, 64)
	if done := d.Read(1000); done != 1200 {
		t.Fatalf("unloaded read done at %d, want 1200", done)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	d := New(200, 5, 64)
	d1 := d.Read(0)
	d2 := d.Read(0)
	d3 := d.Read(0)
	if d1 != 200 || d2 != 205 || d3 != 210 {
		t.Fatalf("back-to-back reads done at %d,%d,%d, want 200,205,210", d1, d2, d3)
	}
}

func TestChannelIdleGapNoQueuing(t *testing.T) {
	d := New(100, 10, 8)
	a := d.Read(0)
	b := d.Read(50) // channel free again at 10, so no queueing
	if a != 100 || b != 150 {
		t.Fatalf("reads done at %d,%d, want 100,150", a, b)
	}
}

func TestQueueDepthPushback(t *testing.T) {
	d := New(100, 10, 2)
	// Saturate: requests at t=0 build a backlog.
	d.Read(0) // starts 0, nextFree 10
	d.Read(0) // starts 10, nextFree 20
	d.Read(0) // backlog 2 >= maxQ 2: cannot enqueue until backlog < 2
	// Third request had to wait until nextFree-maxQ*gap = 0... then starts 20.
	if nf := d.NextFree(); nf != 30 {
		t.Fatalf("nextFree = %d, want 30", nf)
	}
}

func TestWriteConsumesBandwidth(t *testing.T) {
	d := New(100, 10, 8)
	d.Write(0)
	if done := d.Read(0); done != 110 {
		t.Fatalf("read after write done at %d, want 110", done)
	}
	if d.Writes != 1 || d.Reads != 1 {
		t.Fatalf("counts = %d writes, %d reads", d.Writes, d.Reads)
	}
}

func TestStallCyclesAccumulate(t *testing.T) {
	d := New(100, 10, 8)
	d.Read(0)
	d.Read(0)
	if d.StallCycles != 10 {
		t.Fatalf("StallCycles = %d, want 10", d.StallCycles)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero latency should panic")
		}
	}()
	New(0, 5, 64)
}

// Property: completion times never precede issue + latency, and the channel
// timeline is monotonic.
func TestCompletionMonotonic(t *testing.T) {
	f := func(gaps []uint8) bool {
		d := New(200, 5, 64)
		var now, prevDone uint64
		for _, g := range gaps {
			now += uint64(g)
			done := d.Read(now)
			if done < now+200 {
				return false
			}
			if done < prevDone { // channel is FIFO
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
