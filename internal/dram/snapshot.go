package dram

// Snapshot is a copy of a DRAM model's full state (warm-start support,
// DESIGN.md §12). The model holds no reference types, so a value copy is a
// deep copy.
type Snapshot struct {
	d DRAM
}

// Snapshot copies the DRAM state.
func (d *DRAM) Snapshot() Snapshot { return Snapshot{d: *d} }

// Restore overwrites the DRAM state with the snapshot's.
func (d *DRAM) Restore(s Snapshot) { *d = s.d }
