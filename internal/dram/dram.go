// Package dram models main memory as a fixed access latency behind a
// service-rate channel: each 64-byte transfer occupies the channel for a
// configurable number of cycles, so bursts of misses queue and the effective
// latency grows when bandwidth saturates — the effect that makes wide store
// bursts expensive and store-prefetch overlap valuable.
package dram

// DRAM is a single-channel main-memory model.
type DRAM struct {
	latency uint64 // access latency once the channel accepts the request
	gap     uint64 // channel occupancy per 64-byte transfer
	maxQ    uint64 // controller queue depth

	nextFree uint64 // first cycle at which the channel can start a transfer

	// Statistics.
	Reads      uint64
	Writes     uint64
	BusyCycles uint64
	// StallCycles accumulates the queuing delay suffered by requests
	// beyond the raw access latency.
	StallCycles uint64
}

// New constructs a DRAM model. latency is the row access latency in cycles,
// cyclesPerBlock the channel service interval, and maxOutstanding the
// controller queue depth (requests beyond it are pushed back in time).
func New(latency, cyclesPerBlock, maxOutstanding int) *DRAM {
	if latency <= 0 || cyclesPerBlock <= 0 || maxOutstanding <= 0 {
		panic("dram: parameters must be positive")
	}
	return &DRAM{
		latency: uint64(latency),
		gap:     uint64(cyclesPerBlock),
		maxQ:    uint64(maxOutstanding),
	}
}

// Read services a block read issued at cycle t and returns the cycle at
// which the data is available at the L3.
func (d *DRAM) Read(t uint64) (done uint64) {
	start := d.admit(t)
	d.Reads++
	return start + d.latency
}

// Write services a writeback issued at cycle t. Writebacks consume channel
// bandwidth but nothing waits for their completion.
func (d *DRAM) Write(t uint64) {
	d.admit(t)
	d.Writes++
}

// admit finds the cycle at which the channel accepts a request issued at t,
// honouring the queue depth, and occupies the channel for one transfer.
func (d *DRAM) admit(t uint64) (start uint64) {
	start = t
	// If the backlog exceeds the queue depth, the request cannot even be
	// enqueued until the backlog drains below maxQ transfers.
	if d.nextFree > t {
		backlog := (d.nextFree - t) / d.gap
		if backlog >= d.maxQ {
			start = d.nextFree - d.maxQ*d.gap
		}
	}
	if d.nextFree > start {
		d.StallCycles += d.nextFree - start
		start = d.nextFree
	}
	d.nextFree = start + d.gap
	d.BusyCycles += d.gap
	return start
}

// NextFree reports the first cycle at which the channel is idle; exposed for
// tests and for the bandwidth-utilization statistic.
func (d *DRAM) NextFree() uint64 { return d.nextFree }
