package dram

import (
	"bytes"
	"encoding/gob"
)

// Gob wire form of a Snapshot (crash-safe checkpoints, DESIGN.md §15).

type snapshotWire struct {
	Latency, Gap, MaxQ uint64
	NextFree           uint64
	Reads, Writes      uint64
	BusyCycles         uint64
	StallCycles        uint64
}

// GobEncode implements gob.GobEncoder.
func (s Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Latency: s.d.latency, Gap: s.d.gap, MaxQ: s.d.maxQ,
		NextFree: s.d.nextFree,
		Reads:    s.d.Reads, Writes: s.d.Writes,
		BusyCycles: s.d.BusyCycles, StallCycles: s.d.StallCycles,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.d = DRAM{
		latency: w.Latency, gap: w.Gap, maxQ: w.MaxQ,
		nextFree: w.NextFree,
		Reads:    w.Reads, Writes: w.Writes,
		BusyCycles: w.BusyCycles, StallCycles: w.StallCycles,
	}
	return nil
}
