package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spb/internal/core"
	"spb/internal/sim"
)

// testServer builds a server + httptest front end with fast SSE ticks and a
// hard stop on cleanup.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SSEInterval == 0 {
		cfg.SSEInterval = 5 * time.Millisecond
	}
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, req RunRequest, query string) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad response %s: %v", data, err)
		}
	}
	return resp, v
}

// smallSpec is a quick (~10ms) simulation point used across the tests.
var smallSpec = RunRequest{Workload: "bwaves", Policy: "spb", SB: 14, Insts: 10_000}

// longSpec is effectively unbounded at test timescales; every test that
// submits it must cancel it.
var longSpec = RunRequest{Workload: "bwaves", Policy: "spb", SB: 14, Insts: 2_000_000_000}

// TestColdRunMatchesInProcessStats is the acceptance core: a cold POST
// returns byte-identical stats to running the same spec in-process (what
// `spbsim -json` prints).
func TestColdRunMatchesInProcessStats(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	resp, v := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	if v.Cached != "" {
		t.Fatalf("cold run reported cached=%q", v.Cached)
	}
	spec, err := smallSpec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Stats) != string(want) {
		t.Fatalf("service stats differ from in-process stats:\n  got  %s\n  want %s", v.Stats, want)
	}
	if got := s.Runner().Runs(); got != 1 {
		t.Fatalf("runner executed %d simulations, want 1", got)
	}
}

// TestSecondRequestServedFromMemoryCache: an identical repeat request must
// not re-simulate — the runner's run count stays put and the response says
// which tier answered.
func TestSecondRequestServedFromMemoryCache(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	_, first := postRun(t, ts, smallSpec, "?wait=1")
	if first.Status != StatusDone {
		t.Fatalf("first run: %s (%s)", first.Status, first.Error)
	}
	runs := s.Runner().Runs()

	resp, second := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d", resp.StatusCode)
	}
	if second.Cached != "memory" {
		t.Fatalf("second run cached = %q, want memory", second.Cached)
	}
	if string(second.Stats) != string(first.Stats) {
		t.Fatal("cache hit returned different stats")
	}
	if got := s.Runner().Runs(); got != runs {
		t.Fatalf("cache hit re-ran the simulation (%d -> %d runs)", runs, got)
	}
	if s.Metrics().CacheHitsMemory.Load() != 1 {
		t.Fatalf("memory hit metric = %d, want 1", s.Metrics().CacheHitsMemory.Load())
	}

	// A spec spelled with explicit defaults is the same point → still a hit.
	explicit := smallSpec
	explicit.Cores = 1
	explicit.WindowN = 48
	explicit.Seed = 1
	_, third := postRun(t, ts, explicit, "?wait=1")
	if third.Cached != "memory" {
		t.Fatalf("defaulted-field respelling missed the cache (cached=%q)", third.Cached)
	}
}

// TestDiskTierSurvivesRestart: a second server sharing the cache directory
// answers from disk without simulating, and re-seeds its memory tier.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := testServer(t, Config{Workers: 2, CacheDir: dir})
	_, first := postRun(t, ts1, smallSpec, "?wait=1")
	if first.Status != StatusDone {
		t.Fatalf("first run: %s (%s)", first.Status, first.Error)
	}

	s2, ts2 := testServer(t, Config{Workers: 2, CacheDir: dir})
	resp, second := postRun(t, ts2, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart POST = %d", resp.StatusCode)
	}
	if second.Cached != "disk" {
		t.Fatalf("restarted server cached = %q, want disk", second.Cached)
	}
	if string(second.Stats) != string(first.Stats) {
		t.Fatal("disk tier returned different stats")
	}
	if s2.Runner().Runs() != 0 {
		t.Fatalf("restarted server simulated %d times, want 0", s2.Runner().Runs())
	}
	// The disk hit re-seeded memory: a third request is a memory hit.
	_, third := postRun(t, ts2, smallSpec, "?wait=1")
	if third.Cached != "memory" {
		t.Fatalf("post-disk-hit request cached = %q, want memory", third.Cached)
	}
}

// TestDuplicateSubmissionCoalesces: two concurrent async submissions of the
// same spec share one job and one simulation.
func TestDuplicateSubmissionCoalesces(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	resp1, v1 := postRun(t, ts, longSpec, "")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d", resp1.StatusCode)
	}
	resp2, v2 := postRun(t, ts, longSpec, "")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST = %d", resp2.StatusCode)
	}
	if v1.ID != v2.ID {
		t.Fatalf("duplicate submission got a fresh job: %s vs %s", v1.ID, v2.ID)
	}
	if s.Metrics().RunsCoalesced.Load() != 1 {
		t.Fatalf("coalesced metric = %d, want 1", s.Metrics().RunsCoalesced.Load())
	}
	// Cleanup: stop the long job.
	http.Post(ts.URL+"/v1/runs/"+v1.ID+"/cancel", "", nil)
}

// TestQueueFullBackpressure: with one worker pinned and a queue of one, the
// third submission must be rejected with 429 + Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	specN := func(n uint64) RunRequest {
		r := longSpec
		r.Seed = n // distinct seeds defeat dedup so each occupies a slot
		return r
	}
	_, v1 := postRun(t, ts, specN(1), "") // taken by the worker
	waitStatus(t, ts, v1.ID, StatusRunning)
	_, v2 := postRun(t, ts, specN(2), "") // sits in the queue

	resp3, _ := postRun(t, ts, specN(3), "")
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST = %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if s.Metrics().QueueRejected.Load() != 1 {
		t.Fatalf("rejected metric = %d, want 1", s.Metrics().QueueRejected.Load())
	}
	for _, id := range []string{v1.ID, v2.ID} {
		http.Post(ts.URL+"/v1/runs/"+id+"/cancel", "", nil)
	}
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return v
		}
		if v.Status.terminal() {
			t.Fatalf("job %s ended %s (%s) while waiting for %s", id, v.Status, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

// TestCancellationHaltsCoreLoop is the acceptance check that cancelling a
// run actually stops the simulation: after the cancel is acknowledged the
// committed-instruction count must stay put.
func TestCancellationHaltsCoreLoop(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	_, v := postRun(t, ts, longSpec, "")
	waitStatus(t, ts, v.ID, StatusRunning)

	// Let it make observable progress first.
	deadline := time.Now().Add(5 * time.Second)
	var before JobView
	for {
		before = waitStatus(t, ts, v.ID, StatusRunning)
		if before.Committed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never reported progress")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/runs/"+v.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}

	// The worker observes the cancel within progressEvery rounds; wait for
	// the terminal state, then assert the core loop is actually halted.
	var after JobView
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&after)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if after.Status.terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if after.Status != StatusCancelled {
		t.Fatalf("status after cancel = %s (%s), want cancelled", after.Status, after.Error)
	}
	if s.Metrics().RunsCancelled.Load() != 1 {
		t.Fatalf("cancelled metric = %d, want 1", s.Metrics().RunsCancelled.Load())
	}

	committed := after.Committed
	time.Sleep(50 * time.Millisecond)
	resp2, err := http.Get(ts.URL + "/v1/runs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var later JobView
	err = json.NewDecoder(resp2.Body).Decode(&later)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if later.Committed != committed {
		t.Fatalf("simulation kept running after cancel: committed %d -> %d", committed, later.Committed)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight = %d after cancel, want 0", s.Inflight())
	}
}

// TestSSEProgressAndDisconnect: a subscriber sees progress events with
// advancing counters and a final done event; a subscriber that disconnects
// mid-stream is released (gauge returns to zero) without disturbing the
// job.
func TestSSEProgressAndDisconnect(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	_, v := postRun(t, ts, longSpec, "")
	waitStatus(t, ts, v.ID, StatusRunning)

	// Subscriber 1: disconnects after the first event.
	ctx1, cancel1 := context.WithCancel(context.Background())
	req1, _ := http.NewRequestWithContext(ctx1, "GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	resp1, err := http.DefaultClient.Do(req1)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp1.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp1.Body)
	if _, err := br.ReadString('\n'); err != nil { // first "event:" line arrives
		t.Fatal(err)
	}
	if got := s.Metrics().SSESubscribers.Load(); got != 1 {
		t.Fatalf("subscriber gauge = %d, want 1", got)
	}
	cancel1()
	resp1.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SSESubscribers.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected SSE subscriber never released")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The job survived its observer.
	waitStatus(t, ts, v.ID, StatusRunning)

	// Subscriber 2: reads progress until the job is cancelled, expects the
	// terminal "done"-stream event carrying the cancelled status.
	type ev struct {
		name string
		data sseEvent
	}
	events := make(chan ev, 64)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	req2, _ := http.NewRequestWithContext(ctx2, "GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp2.Body)
		var name string
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				name = strings.TrimPrefix(line, "event: ")
			} else if strings.HasPrefix(line, "data: ") {
				var d sseEvent
				if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d) == nil {
					events <- ev{name, d}
				}
				if name == "done" {
					return
				}
			}
		}
	}()

	for e := range events {
		if e.name == "progress" && e.data.Status == StatusRunning {
			if e.data.Target == 0 {
				t.Fatalf("progress event missing target_insts: %+v", e.data)
			}
			break
		}
	}
	http.Post(ts.URL+"/v1/runs/"+v.ID+"/cancel", "", nil)
	var last ev
	for e := range events {
		last = e
	}
	if last.name != "done" || last.data.Status != StatusCancelled {
		t.Fatalf("final SSE event = %q %+v, want done/cancelled", last.name, last.data)
	}
}

// TestWaitingClientDisconnectCancelsRun: when the only synchronous waiter
// goes away the daemon stops the simulation (abandoned work is cancelled).
func TestWaitingClientDisconnectCancelsRun(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	body, _ := json.Marshal(longSpec)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/runs?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	deadline := time.Now().Add(5 * time.Second)
	for s.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel() // client disconnects
	<-errCh

	for s.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned run kept simulating")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.Metrics().RunsCancelled.Load() != 1 {
		t.Fatalf("cancelled metric = %d, want 1", s.Metrics().RunsCancelled.Load())
	}
}

// TestMetricsEndpoint scrapes /metrics after a hit/miss/cancel sequence and
// checks the counters the acceptance criteria name.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	postRun(t, ts, smallSpec, "?wait=1")
	postRun(t, ts, smallSpec, "?wait=1") // memory hit
	_, v := postRun(t, ts, longSpec, "")
	waitStatus(t, ts, v.ID, StatusRunning)
	http.Post(ts.URL+"/v1/runs/"+v.ID+"/cancel", "", nil)
	waitTerminal(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`spbd_cache_hits_total{tier="memory"} 1`,
		`spbd_cache_hits_total{tier="disk"} 0`,
		"spbd_cache_misses_total 2",
		"spbd_runs_cancelled_total 1",
		"spbd_runs_completed_total 1",
		"spbd_queue_depth 0",
		"spbd_inflight_runs 0",
		`spbd_http_request_duration_seconds_count{endpoint="POST /v1/runs"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never terminal", id)
	return JobView{}
}

// TestDrainRejectsAndFinishes: during drain new submissions get 503 and
// queued work still completes and persists.
func TestDrainRejectsAndFinishes(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, Config{Workers: 1, CacheDir: dir})
	_, v := postRun(t, ts, smallSpec, "")

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Submissions during/after drain are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		req := smallSpec
		req.Seed = 99
		resp, _ := postRun(t, ts, req, "")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started rejecting submissions")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := waitTerminal(t, ts, v.ID); got.Status != StatusDone {
		t.Fatalf("queued job ended %s across drain, want done", got.Status)
	}
	// The drained job's result made it to the disk tier.
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := smallSpec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(Key(spec)); err != nil || !ok {
		t.Fatalf("drained job's result not on disk: ok %v, %v", ok, err)
	}
	// Liveness stays 200 while draining (the process is up); readiness
	// reports unready.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness while draining = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz?ready=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readiness while draining = %d, want 503", resp.StatusCode)
	}
}

// TestBadSpecRejected covers the 400 paths.
func TestBadSpecRejected(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{"policy":"spb"}`,                       // missing workload
		`{"workload":"bwaves","policy":"bogus"}`, // unknown policy
		`{"workload":"bwaves","prefetcher":"?"}`, // unknown prefetcher
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown id = %d, want 404", resp.StatusCode)
	}
}

// TestPrefetcherZooEndToEnd: the new prefetcher kinds are selectable over
// the wire and return byte-identical stats to an in-process run, while a
// kind the spec grammar does not know is rejected at spec-parse time with a
// 400 — it must never reach a worker and panic in prefetch.New.
func TestPrefetcherZooEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	for _, pf := range []string{"bop", "dspatch", "hybrid"} {
		req := smallSpec
		req.Prefetcher = pf
		resp, v := postRun(t, ts, req, "?wait=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: POST = %d", pf, resp.StatusCode)
		}
		if v.Status != StatusDone {
			t.Fatalf("%s: status = %s (%s)", pf, v.Status, v.Error)
		}
		spec, err := req.Spec()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := res.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(v.Stats) != string(want) {
			t.Fatalf("%s: remote stats differ from in-process stats:\n  got  %s\n  want %s", pf, v.Stats, want)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"bwaves","prefetcher":"markov"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown prefetcher kind = %d, want 400", resp.StatusCode)
	}
}

// TestUnknownWorkloadFailsJob: a spec that parses but names a missing
// workload must fail the job, not wedge it.
func TestUnknownWorkloadFailsJob(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	req := RunRequest{Workload: "no-such-workload", Insts: 1000}
	resp, v := postRun(t, ts, req, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("status = %s (%q), want failed with error", v.Status, v.Error)
	}
	if s.Metrics().RunsFailed.Load() != 1 {
		t.Fatalf("failed metric = %d, want 1", s.Metrics().RunsFailed.Load())
	}
}

func ExampleKey() {
	k := Key(sim.RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14})
	fmt.Println(len(k))
	// Output: 64
}
