package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spb/internal/core"
	"spb/internal/sim"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 5000}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(spec)

	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("Get before Put = ok %v err %v, want miss", ok, err)
	}
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	back, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok %v err %v", ok, err)
	}
	if back != res {
		t.Fatalf("round trip changed the result:\n  got  %+v\n  want %+v", back, res)
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}

	// Same stats serialization on both sides of the trip (the property the
	// service's byte-comparability rests on).
	a, _ := res.StatsJSON()
	b, _ := back.StatsJSON()
	if string(a) != string(b) {
		t.Fatalf("stats serialization changed across the disk round trip")
	}
}

func TestDiskStoreCorruptEntryIsError(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	path := filepath.Join(dir, "ab", key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Get(key); err == nil {
		t.Fatalf("corrupt entry: ok %v, want error", ok)
	}
}

func TestDiskStoreKeyMismatchIsError(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Workload: "bwaves", SQSize: 14, Insts: 5000}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(spec)
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// Rename the entry under a different key: the envelope check must catch
	// the mismatch instead of serving the wrong result.
	other := strings.Repeat("cd", 32)
	if err := os.MkdirAll(filepath.Join(dir, other[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(store.path(key), filepath.Join(dir, other[:2], other+".json")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Get(other); err == nil {
		t.Fatal("mismatched entry served without error")
	}
}
