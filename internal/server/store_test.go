package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spb/internal/core"
	"spb/internal/faults"
	"spb/internal/sim"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 5000}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(spec)

	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("Get before Put = ok %v err %v, want miss", ok, err)
	}
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	back, ok, err := store.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok %v err %v", ok, err)
	}
	if back != res {
		t.Fatalf("round trip changed the result:\n  got  %+v\n  want %+v", back, res)
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}

	// Same stats serialization on both sides of the trip (the property the
	// service's byte-comparability rests on).
	a, _ := res.StatsJSON()
	b, _ := back.StatsJSON()
	if string(a) != string(b) {
		t.Fatalf("stats serialization changed across the disk round trip")
	}
}

// storedEntry simulates one cache write and hands back the store, key, the
// expected result, and the entry's on-disk path.
func storedEntry(t *testing.T) (*DiskStore, string, sim.Result, string) {
	t.Helper()
	store, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 5000}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(spec)
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	return store, key, res, store.path(key)
}

// expectQuarantine asserts that reading key now misses without error, that
// OnCorrupt fired, and that the damaged bytes moved to a .corrupt file.
func expectQuarantine(t *testing.T, store *DiskStore, key, path string) {
	t.Helper()
	var reported []string
	store.OnCorrupt = func(k string, err error) { reported = append(reported, k) }
	if _, ok, err := store.Get(key); err != nil || ok {
		t.Fatalf("corrupt entry Get = ok %v err %v, want clean miss", ok, err)
	}
	if len(reported) != 1 || reported[0] != key {
		t.Fatalf("OnCorrupt reported %v, want [%s]", reported, key)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry still readable at %s", path)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	// Quarantined entries are not entries: Len ignores them, and a restart
	// (fresh DiskStore over the same dir) stays clean.
	if n, err := store.Len(); err != nil || n != 0 {
		t.Fatalf("Len after quarantine = %d, %v; want 0", n, err)
	}
	reopened, err := OpenDiskStore(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := reopened.Get(key); err != nil || ok {
		t.Fatalf("reopened Get = ok %v err %v, want clean miss", ok, err)
	}
}

// flipEntryByte flips one bit of an alphanumeric byte inside the entry's
// stats payload. The stats field is a raw JSON blob the store round-trips
// verbatim, so token-level damage there is always visible to the content
// checksum — a flip elsewhere can land on a struct field name whose value
// is the zero value, which parses back to an identical entry and
// legitimately passes verification.
func flipEntryByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	start := bytes.Index(data, []byte(`"stats"`))
	if start < 0 {
		t.Fatalf("no stats payload to corrupt in %s", path)
	}
	for i := start + len(`"stats"`); i < len(data); i++ {
		b := data[i]
		if b >= 'a' && b <= 'z' || b >= '0' && b <= '9' {
			data[i] ^= 0x02
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no alphanumeric byte to corrupt in %s", path)
}

func TestDiskStoreQuarantinesBitFlip(t *testing.T) {
	store, key, res, path := storedEntry(t)
	flipEntryByte(t, path)
	expectQuarantine(t, store, key, path)
	// Recompute + Put heals the entry in place.
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	back, ok, err := store.Get(key)
	if err != nil || !ok || back != res {
		t.Fatalf("healed entry Get = ok %v err %v", ok, err)
	}
}

func TestDiskStoreQuarantinesTruncation(t *testing.T) {
	store, key, _, path := storedEntry(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	expectQuarantine(t, store, key, path)
}

func TestDiskStoreQuarantinesChecksumlessEntry(t *testing.T) {
	// Entries written before checksumming (no "sum" field) are not trusted:
	// strip the field and the entry must quarantine, not serve.
	store, key, _, path := storedEntry(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Replace(string(data), `"sum"`, `"xum"`, 1)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	expectQuarantine(t, store, key, path)
}

func TestDiskStoreQuarantinesKeyMismatch(t *testing.T) {
	store, key, _, _ := storedEntry(t)
	// Rename the entry under a different key: the envelope check must catch
	// the mismatch instead of serving the wrong result.
	other := strings.Repeat("cd", 32)
	otherPath := store.path(other)
	if err := os.MkdirAll(filepath.Dir(otherPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(store.path(key), otherPath); err != nil {
		t.Fatal(err)
	}
	expectQuarantine(t, store, other, otherPath)
}

func TestDiskStoreInjectedCorruptionHeals(t *testing.T) {
	// The fault injector's read-side bit flip drives the same quarantine
	// path without touching the file ourselves.
	store, key, res, path := storedEntry(t)
	store.Faults = faults.MustParse("store.read:corrupt:1:limit=1")
	expectQuarantine(t, store, key, path)
	if store.Faults.Fires("store.read") != 1 {
		t.Fatalf("corrupt rule fired %d times, want 1", store.Faults.Fires("store.read"))
	}
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if back, ok, err := store.Get(key); err != nil || !ok || back != res {
		t.Fatalf("post-heal Get = ok %v err %v", ok, err)
	}
}

func TestDiskStoreInjectedIOErrorsSurface(t *testing.T) {
	// Real I/O failures (as opposed to corrupt payloads) stay errors so the
	// server can count them toward degraded mode.
	store, key, res, _ := storedEntry(t)
	store.Faults = faults.MustParse("store.read:error:1:limit=1;store.write:error:1:limit=1")
	if _, _, err := store.Get(key); err == nil {
		t.Fatal("injected read error did not surface")
	}
	if err := store.Put(key, res); err == nil {
		t.Fatal("injected write error did not surface")
	}
	// Fault budget spent: the tier works again.
	if back, ok, err := store.Get(key); err != nil || !ok || back != res {
		t.Fatalf("Get after fault budget = ok %v err %v", ok, err)
	}
}
