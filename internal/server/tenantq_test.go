package server

import (
	"fmt"
	"testing"
)

func wfqTenant(name string, weight int) *tenantState {
	return &tenantState{TenantConfig: TenantConfig{Name: name, Weight: weight}, laneIdx: LaneNormal}
}

func wfqJob(id string, tn *tenantState, lane int) *job {
	return &job{id: id, tenant: tn, cost: 1, lane: lane}
}

// TestWFQWeightedShares: with both tenants backlogged, a weight-3 tenant
// drains 3 jobs for every 1 of a weight-1 tenant.
func TestWFQWeightedShares(t *testing.T) {
	q := newTenantQueue(32)
	heavy := wfqTenant("heavy", 3)
	light := wfqTenant("light", 1)
	for i := 0; i < 6; i++ {
		if err := q.push(wfqJob(fmt.Sprintf("h%d", i), heavy, LaneNormal)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := q.push(wfqJob(fmt.Sprintf("l%d", i), light, LaneNormal)); err != nil {
			t.Fatal(err)
		}
	}

	counts := map[*tenantState]int{}
	for i := 0; i < 4; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop returned closed on a non-empty queue")
		}
		counts[j.tenant]++
	}
	if counts[heavy] != 3 || counts[light] != 1 {
		t.Errorf("first 4 pops: heavy=%d light=%d, want 3:1 (the configured weights)",
			counts[heavy], counts[light])
	}
	// Over the full backlog both drain completely.
	for i := 0; i < 8; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("queue drained early at pop %d", i+5)
		}
	}
	if q.len() != 0 {
		t.Errorf("queue not empty after draining: len=%d", q.len())
	}
}

// TestLanesAreStrict: a high-lane job dequeues before earlier normal-lane
// jobs regardless of virtual-finish order.
func TestLanesAreStrict(t *testing.T) {
	q := newTenantQueue(32)
	norm := wfqTenant("norm", 1)
	vip := wfqTenant("vip", 1)
	for i := 0; i < 3; i++ {
		q.push(wfqJob(fmt.Sprintf("n%d", i), norm, LaneNormal))
	}
	q.push(wfqJob("urgent", vip, LaneHigh))
	q.push(wfqJob("later", vip, LaneLow))

	j, _ := q.pop()
	if j.id != "urgent" {
		t.Errorf("first pop = %s, want the high-lane job", j.id)
	}
	for i := 0; i < 3; i++ {
		j, _ = q.pop()
		if j.tenant != norm {
			t.Errorf("pop %d = %s, want a normal-lane job before the low lane", i+2, j.id)
		}
	}
	j, _ = q.pop()
	if j.id != "later" {
		t.Errorf("last pop = %s, want the low-lane job", j.id)
	}
}

// TestStealTakesLeastUrgent: steal removes from the opposite end of the
// schedule — lowest lane first, largest virtual finish — so a thief never
// front-runs the local workers.
func TestStealTakesLeastUrgent(t *testing.T) {
	q := newTenantQueue(32)
	tn := wfqTenant("t", 1)
	low := wfqTenant("bg", 1)
	for i := 0; i < 3; i++ {
		q.push(wfqJob(fmt.Sprintf("n%d", i), tn, LaneNormal))
	}
	q.push(wfqJob("bg0", low, LaneLow))

	if j := q.steal(); j == nil || j.id != "bg0" {
		t.Fatalf("steal = %v, want the low-lane job", j)
	}
	// Normal lane only now: the largest vfinish is the last-pushed n2.
	if j := q.steal(); j == nil || j.id != "n2" {
		t.Fatalf("steal = %v, want n2 (largest virtual finish)", j)
	}
	if j, _ := q.pop(); j.id != "n0" {
		t.Errorf("pop after steals = %s, want n0 — steal must not disturb the front", j.id)
	}
	if q.len() != 1 {
		t.Errorf("len = %d, want 1", q.len())
	}
}

// TestCloseDrainSemantics: close() keeps the closed-channel contract — queued
// jobs drain, then pop reports closed; pushes and steals are refused.
func TestCloseDrainSemantics(t *testing.T) {
	q := newTenantQueue(4)
	tn := wfqTenant("t", 1)
	q.push(wfqJob("a", tn, LaneNormal))
	q.push(wfqJob("b", tn, LaneNormal))
	q.close()

	if err := q.push(wfqJob("c", tn, LaneNormal)); err != errDraining {
		t.Errorf("push after close = %v, want errDraining", err)
	}
	if j := q.steal(); j != nil {
		t.Errorf("steal after close = %v, want nil", j.id)
	}
	for _, want := range []string{"a", "b"} {
		j, ok := q.pop()
		if !ok || j.id != want {
			t.Fatalf("drain pop = (%v, %v), want %s", j, ok, want)
		}
	}
	if _, ok := q.pop(); ok {
		t.Error("pop on a closed, drained queue reported a job")
	}
}

// TestQueueFull: depth is enforced across lanes.
func TestQueueFull(t *testing.T) {
	q := newTenantQueue(2)
	tn := wfqTenant("t", 1)
	q.push(wfqJob("a", tn, LaneNormal))
	q.push(wfqJob("b", tn, LaneHigh))
	if err := q.push(wfqJob("c", tn, LaneLow)); err != errQueueFull {
		t.Errorf("push past depth = %v, want errQueueFull", err)
	}
}

// TestIdleTenantDoesNotBankCredit: the max(clock, tenant vfinish) start term
// means a tenant idle while others drained rejoins at the current virtual
// clock — it does not get to replay its idle time as a burst beyond its
// weight share.
func TestIdleTenantDoesNotBankCredit(t *testing.T) {
	q := newTenantQueue(64)
	busy := wfqTenant("busy", 1)
	idler := wfqTenant("idler", 1)
	for i := 0; i < 10; i++ {
		q.push(wfqJob(fmt.Sprintf("b%d", i), busy, LaneNormal))
	}
	for i := 0; i < 10; i++ {
		q.pop() // busy drains alone; the virtual clock advances to 20
	}
	// Now idler shows up with a backlog, and busy keeps submitting.
	q.push(wfqJob("i0", idler, LaneNormal))
	q.push(wfqJob("b10", busy, LaneNormal))
	j1, _ := q.pop()
	j2, _ := q.pop()
	got := map[string]bool{j1.id: true, j2.id: true}
	if !got["i0"] || !got["b10"] {
		t.Errorf("pops = %s,%s: the returning tenant should interleave 1:1, not monopolize", j1.id, j2.id)
	}
}
