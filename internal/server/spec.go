// Package server implements spbd, the simulation-as-a-service daemon: an
// HTTP front end that accepts RunSpec jobs, executes them on a bounded
// worker pool with FIFO queueing and per-spec deduplication, and answers
// repeat requests from a two-tier cache (the in-memory sim.Runner backed by
// a content-addressed on-disk store). Progress is streamed over SSE and
// operational counters are exported in Prometheus text format.
package server

import (
	"fmt"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/sim"
)

// RunRequest is the JSON wire form of a sim.RunSpec. Enumerations travel as
// their String() names ("spb", "stream", ...) so requests are writable by
// hand with curl; zero-valued fields take the same defaults the simulator
// applies (RunSpec.Normalized). It is shared by the POST /v1/runs body, the
// stored cache entries, and the spbd client.
type RunRequest struct {
	Workload   string `json:"workload"`
	Policy     string `json:"policy,omitempty"`
	SB         int    `json:"sb,omitempty"`
	Prefetcher string `json:"prefetcher,omitempty"`
	Core       string `json:"core,omitempty"`
	Cores      int    `json:"cores,omitempty"`
	Insts      uint64 `json:"insts,omitempty"`
	Warmup     uint64 `json:"warmup_insts,omitempty"`
	WindowN    int    `json:"window_n,omitempty"`

	DynamicSPB         bool   `json:"dynamic_spb,omitempty"`
	CoalesceSB         bool   `json:"coalesce_sb,omitempty"`
	BackwardBursts     bool   `json:"backward_bursts,omitempty"`
	CrossPageBursts    bool   `json:"cross_page_bursts,omitempty"`
	BranchPredictor    bool   `json:"branch_predictor,omitempty"`
	DisableFastForward bool   `json:"disable_fast_forward,omitempty"`
	Seed               uint64 `json:"seed,omitempty"`

	// SMARTS sampling (DESIGN.md §14): a non-zero interval requests a
	// sampled run — short detailed windows at SampleDetail instructions
	// behind SampleWarm of detailed warming, one per SampleInterval
	// instructions, with confidence intervals in the sample.* stats.
	// SampleHistory, when non-zero, bounds functional warming to the last
	// that-many instructions of each inter-window skip (MRRL/BLRL-style).
	SampleInterval uint64 `json:"sample_interval_insts,omitempty"`
	SampleDetail   uint64 `json:"sample_detailed_insts,omitempty"`
	SampleWarm     uint64 `json:"sample_warm_insts,omitempty"`
	SampleHistory  uint64 `json:"sample_history_insts,omitempty"`
}

// Spec converts the wire form into a sim.RunSpec, resolving the enum names.
// An empty policy or prefetcher means the corresponding zero value
// ("none"-policy, "stream"-prefetcher), matching the zero sim.RunSpec.
func (r RunRequest) Spec() (sim.RunSpec, error) {
	spec := sim.RunSpec{
		Workload:             r.Workload,
		SQSize:               r.SB,
		CoreName:             r.Core,
		Cores:                r.Cores,
		Insts:                r.Insts,
		WarmupInsts:          r.Warmup,
		WindowN:              r.WindowN,
		DynamicSPB:           r.DynamicSPB,
		CoalesceSB:           r.CoalesceSB,
		BackwardBursts:       r.BackwardBursts,
		CrossPageBursts:      r.CrossPageBursts,
		ModelBranchPredictor: r.BranchPredictor,
		DisableFastForward:   r.DisableFastForward,
		Sampling: sim.SamplingConfig{
			IntervalInsts: r.SampleInterval,
			DetailedInsts: r.SampleDetail,
			WarmInsts:     r.SampleWarm,
			HistoryInsts:  r.SampleHistory,
		},
		Seed: r.Seed,
	}
	if r.Workload == "" {
		return sim.RunSpec{}, fmt.Errorf("missing workload")
	}
	if r.Policy != "" {
		p, err := core.ParsePolicy(r.Policy)
		if err != nil {
			return sim.RunSpec{}, err
		}
		spec.Policy = p
	}
	if r.Prefetcher != "" {
		k, err := config.ParsePrefetcher(r.Prefetcher)
		if err != nil {
			return sim.RunSpec{}, err
		}
		spec.Prefetcher = k
	}
	return spec, nil
}

// Request converts a sim.RunSpec into its wire form (the inverse of Spec,
// modulo normalization).
func Request(spec sim.RunSpec) RunRequest {
	return RunRequest{
		Workload:           spec.Workload,
		Policy:             spec.Policy.String(),
		SB:                 spec.SQSize,
		Prefetcher:         spec.Prefetcher.String(),
		Core:               spec.CoreName,
		Cores:              spec.Cores,
		Insts:              spec.Insts,
		Warmup:             spec.WarmupInsts,
		WindowN:            spec.WindowN,
		DynamicSPB:         spec.DynamicSPB,
		CoalesceSB:         spec.CoalesceSB,
		BackwardBursts:     spec.BackwardBursts,
		CrossPageBursts:    spec.CrossPageBursts,
		BranchPredictor:    spec.ModelBranchPredictor,
		DisableFastForward: spec.DisableFastForward,
		SampleInterval:     spec.Sampling.IntervalInsts,
		SampleDetail:       spec.Sampling.DetailedInsts,
		SampleWarm:         spec.Sampling.WarmInsts,
		SampleHistory:      spec.Sampling.HistoryInsts,
		Seed:               spec.Seed,
	}
}
