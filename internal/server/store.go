package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"spb/internal/faults"
	"spb/internal/sim"
)

// DiskStore is the second cache tier: a content-addressed directory of
// finished results, one JSON file per spec key, sharded by the key's first
// byte (dir/ab/abcd....json) to keep directories small under large sweeps.
// Entries are written atomically (temp file + rename), so a crashed or
// SIGKILLed daemon never leaves a torn entry, and they survive restarts —
// a warm spbd answers repeat sweep points without simulating.
//
// Reads are checksum-verified and self-healing: every entry embeds the
// SHA-256 of its own canonical serialization, and an entry that fails to
// parse, carries the wrong key, or fails the checksum is *quarantined* —
// renamed to <name>.json.corrupt, reported through OnCorrupt, and treated
// as a miss so the caller recomputes it. Corruption therefore costs one
// re-simulation, never a wrong answer and never a fatal error, and a
// restart after quarantine is clean: .corrupt files are invisible to both
// Get and Len.
type DiskStore struct {
	dir string

	// Faults, when set, injects read/write failures and read-side payload
	// corruption at the "store.read" / "store.write" sites (tests, chaos).
	Faults *faults.Injector
	// OnCorrupt, when set, observes every quarantined entry (metrics/logs).
	OnCorrupt func(key string, err error)
	// Sync makes Put fsync the temp file before the rename and the parent
	// directory after it. Without both, "atomically written" only holds
	// against process crashes — a power loss or kernel panic can still lose
	// or tear the entry, because neither the data pages nor the directory
	// update were forced to stable storage. The daemon enables this by
	// default (Config.DisableSync opts out).
	Sync bool
}

// diskEntry is the stored envelope. Spec is kept in wire form for humans
// poking at the cache with jq; Stats is the canonical serialization the
// service responds with; Result carries every raw counter so the memory
// tier can be re-seeded losslessly; Sum is the hex SHA-256 of the entry's
// own serialization with Sum blanked — the integrity check behind
// self-healing reads. Entries written before checksumming existed carry no
// Sum and are deliberately treated as corrupt: quarantined and recomputed
// once, rather than trusted unverified.
type diskEntry struct {
	Key    string          `json:"key"`
	Sum    string          `json:"sum,omitempty"`
	Spec   RunRequest      `json:"spec"`
	Stats  json.RawMessage `json:"stats"`
	Result sim.Result      `json:"result"`
}

// sum computes the entry's checksum: SHA-256 over the canonical marshalling
// with the Sum field emptied.
func (e diskEntry) sum() (string, error) {
	e.Sum = ""
	data, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:]), nil
}

// OpenDiskStore opens (creating if needed) a result store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: open disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(key string) string {
	shard := "00"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// quarantine moves a corrupt entry aside (kept for forensics, never read
// again) and reports it. The entry then reads as a miss, so the caller
// recomputes and Put overwrites with a clean copy.
func (s *DiskStore) quarantine(key, path string, cause error) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Last resort: make sure the bad entry cannot be read again.
		os.Remove(path)
	}
	if s.OnCorrupt != nil {
		s.OnCorrupt(key, cause)
	}
}

// Get recalls the result stored under key. The boolean reports whether a
// valid entry exists. A malformed, mis-keyed, or checksum-failing entry is
// quarantined and reported as a miss — corruption heals by recomputation —
// while real I/O failures (disk gone, permissions) remain errors so the
// caller can count them and consider degrading the tier.
func (s *DiskStore) Get(key string) (sim.Result, bool, error) {
	if err := s.Faults.Err("store.read"); err != nil {
		return sim.Result{}, false, fmt.Errorf("server: disk store get: %w", err)
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return sim.Result{}, false, nil
	}
	if err != nil {
		return sim.Result{}, false, fmt.Errorf("server: disk store get: %w", err)
	}
	data = s.Faults.Corrupt("store.read", data)
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		s.quarantine(key, path, fmt.Errorf("entry does not parse: %w", err))
		return sim.Result{}, false, nil
	}
	if e.Key != key {
		s.quarantine(key, path, fmt.Errorf("entry holds key %s", e.Key))
		return sim.Result{}, false, nil
	}
	if e.Sum == "" {
		s.quarantine(key, path, errors.New("entry has no checksum"))
		return sim.Result{}, false, nil
	}
	want, err := e.sum()
	if err != nil {
		s.quarantine(key, path, fmt.Errorf("entry checksum uncomputable: %w", err))
		return sim.Result{}, false, nil
	}
	if e.Sum != want {
		s.quarantine(key, path, fmt.Errorf("checksum mismatch (stored %.12s, computed %.12s)", e.Sum, want))
		return sim.Result{}, false, nil
	}
	// The checksum proves the decoded entry matches what was stored, but a
	// flipped byte inside an ignored region (an unknown field name, say) can
	// decode to the same entry. Entries are always written in canonical
	// indented form, so any byte-level damage at all shows up as a deviation
	// from the re-marshalling of the decoded entry.
	canon, err := json.MarshalIndent(e, "", "\t")
	if err != nil || !bytes.Equal(append(canon, '\n'), data) {
		s.quarantine(key, path, errors.New("entry deviates from canonical form"))
		return sim.Result{}, false, nil
	}
	return e.Result, true, nil
}

// Put stores res under key, atomically replacing any existing entry.
func (s *DiskStore) Put(key string, res sim.Result) error {
	s.Faults.Sleep("store.write", nil)
	if err := s.Faults.Err("store.write"); err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	stats, err := res.StatsJSON()
	if err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	e := diskEntry{
		Key:    key,
		Spec:   Request(res.Spec),
		Stats:  stats,
		Result: res,
	}
	if e.Sum, err = e.sum(); err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	data, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	var serr error
	if s.Sync && werr == nil {
		serr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: disk store put %s: write %v, sync %v, close %v", key, werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: disk store put: %w", err)
	}
	if s.Sync {
		syncDir(filepath.Dir(path))
	}
	return nil
}

// Len walks the store and counts valid entries (operational introspection
// and tests; not a hot path). Quarantined .corrupt files are not entries.
func (s *DiskStore) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
