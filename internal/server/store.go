package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"spb/internal/sim"
)

// DiskStore is the second cache tier: a content-addressed directory of
// finished results, one JSON file per spec key, sharded by the key's first
// byte (dir/ab/abcd....json) to keep directories small under large sweeps.
// Entries are written atomically (temp file + rename), so a crashed or
// SIGKILLed daemon never leaves a torn entry, and they survive restarts —
// a warm spbd answers repeat sweep points without simulating.
type DiskStore struct {
	dir string
}

// diskEntry is the stored envelope. Spec is kept in wire form for humans
// poking at the cache with jq; Stats is the canonical serialization the
// service responds with; Result carries every raw counter so the memory
// tier can be re-seeded losslessly.
type diskEntry struct {
	Key    string          `json:"key"`
	Spec   RunRequest      `json:"spec"`
	Stats  json.RawMessage `json:"stats"`
	Result sim.Result      `json:"result"`
}

// OpenDiskStore opens (creating if needed) a result store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: open disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(key string) string {
	shard := "00"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// Get recalls the result stored under key. The boolean reports whether the
// entry exists; a malformed or mismatched entry is an error, not a miss, so
// corruption is surfaced rather than silently re-simulated over.
func (s *DiskStore) Get(key string) (sim.Result, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return sim.Result{}, false, nil
	}
	if err != nil {
		return sim.Result{}, false, fmt.Errorf("server: disk store get: %w", err)
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Result{}, false, fmt.Errorf("server: disk store entry %s: %w", key, err)
	}
	if e.Key != key {
		return sim.Result{}, false, fmt.Errorf("server: disk store entry %s holds key %s", key, e.Key)
	}
	return e.Result, true, nil
}

// Put stores res under key, atomically replacing any existing entry.
func (s *DiskStore) Put(key string, res sim.Result) error {
	stats, err := res.StatsJSON()
	if err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	data, err := json.MarshalIndent(diskEntry{
		Key:    key,
		Spec:   Request(res.Spec),
		Stats:  stats,
		Result: res,
	}, "", "\t")
	if err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: disk store put: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: disk store put %s: write %v, close %v", key, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: disk store put: %w", err)
	}
	return nil
}

// Len walks the store and counts entries (operational introspection and
// tests; not a hot path).
func (s *DiskStore) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
