package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spb/internal/cluster"
	"spb/internal/faults"
	"spb/internal/sim"
)

// attachNode wires a cluster node onto a test server: advertise at the
// httptest URL, fast protocol ticks, started and stopped with the test.
func attachNode(t *testing.T, s *Server, ts *httptest.Server, cfg cluster.Config) *cluster.Node {
	t.Helper()
	cfg.Advertise = ts.URL
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = 15 * time.Millisecond
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = 20 * time.Millisecond
	}
	cfg.Logf = t.Logf
	n, err := cluster.New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCluster(n)
	n.Start()
	t.Cleanup(n.Stop)
	return n
}

func waitCluster(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func aliveMembers(n *cluster.Node) int {
	alive := 0
	for _, m := range n.Members() {
		if m.State == cluster.StateAlive {
			alive++
		}
	}
	return alive
}

// TestPeerReadThroughByteIdentical: a result simulated and persisted on
// node A is served to a submission at node B from A's disk tier — stats
// byte-identical, B's runner never executes, and the job reports the "peer"
// cache tier.
func TestPeerReadThroughByteIdentical(t *testing.T) {
	sA, tsA := testServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	nA := attachNode(t, sA, tsA, cluster.Config{ID: "a", Epoch: 1})
	sB, tsB := testServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	nB := attachNode(t, sB, tsB, cluster.Config{ID: "b", Epoch: 2, Seeds: []string{tsA.URL}})

	waitCluster(t, 5*time.Second, "gossip convergence", func() bool {
		return aliveMembers(nA) == 2 && aliveMembers(nB) == 2
	})

	resp, vA := postRun(t, tsA, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK || vA.Status != StatusDone {
		t.Fatalf("POST to A = %d, status %s", resp.StatusCode, vA.Status)
	}
	// The peer protocol serves the disk tier; make sure A's persist landed.
	spec, err := smallSpec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	key := Key(spec.Normalized())
	waitCluster(t, 5*time.Second, "A's disk tier to hold the result", func() bool {
		_, ok := sA.ReadLocal(key)
		return ok
	})

	resp, vB := postRun(t, tsB, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK || vB.Status != StatusDone {
		t.Fatalf("POST to B = %d, status %s", resp.StatusCode, vB.Status)
	}
	if vB.Cached != "peer" {
		t.Errorf("B's job cached tier = %q, want peer", vB.Cached)
	}
	if !bytes.Equal(vA.Stats, vB.Stats) {
		t.Errorf("peer-served stats differ from the original:\nA: %s\nB: %s", vA.Stats, vB.Stats)
	}
	if runs := sB.Runner().Runs(); runs != 0 {
		t.Errorf("B simulated %d times; the peer read-through should have avoided all of them", runs)
	}
	if sB.Metrics().PeerHits.Load() == 0 {
		t.Error("B's PeerHits counter did not advance")
	}
	if sA.Metrics().PeerServed.Load() == 0 {
		t.Error("A's PeerServed counter did not advance")
	}
}

// blockWorker submits the long spec and waits until it occupies a worker,
// returning its id for cleanup. With Workers:1 this pins the whole pool.
func blockWorker(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, v := postRun(t, ts, longSpec, "")
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("blocker POST = %d", resp.StatusCode)
	}
	waitStatus(t, ts, v.ID, StatusRunning)
	return v.ID
}

func cancelRun(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func jobStatus(ts *httptest.Server, id string) (Status, bool) {
	r, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		return "", false
	}
	defer r.Body.Close()
	var jv JobView
	if err := json.NewDecoder(r.Body).Decode(&jv); err != nil {
		return "", false
	}
	return jv.Status, true
}

// TestStealRunsExactlyOnce: with the victim's only worker pinned, its
// queued jobs are stolen by an idle peer and every point is simulated
// exactly once across the two runners.
func TestStealRunsExactlyOnce(t *testing.T) {
	victim, tsV := testServer(t, Config{Workers: 1, QueueDepth: 64})
	nV := attachNode(t, victim, tsV, cluster.Config{ID: "victim", Epoch: 1, DisableSteal: true})
	// StealThreshold 1: if a steal takes only part of the backlog (free
	// capacity is sampled racily), the remainder must still be stealable —
	// the victim's only worker stays pinned for the whole test.
	thief, tsT := testServer(t, Config{Workers: 4, QueueDepth: 64})
	nT := attachNode(t, thief, tsT, cluster.Config{ID: "thief", Epoch: 2, Seeds: []string{tsV.URL}, StealThreshold: 1})

	waitCluster(t, 5*time.Second, "gossip convergence", func() bool {
		return aliveMembers(nV) == 2 && aliveMembers(nT) == 2
	})
	blockerID := blockWorker(t, tsV)
	defer cancelRun(t, tsV, blockerID)

	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		req := smallSpec
		req.Seed = uint64(i + 1) // distinct points: no cache help
		resp, v := postRun(t, tsV, req, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued POST %d = %d", i, resp.StatusCode)
		}
		ids[i] = v.ID
	}

	for i, id := range ids {
		id := id
		waitCluster(t, 30*time.Second, fmt.Sprintf("queued job %d to finish", i), func() bool {
			st, ok := jobStatus(tsV, id)
			return ok && st == StatusDone
		})
	}

	thiefRuns := thief.Runner().Runs()
	victimRuns := victim.Runner().Runs()
	if thiefRuns == 0 {
		t.Error("the thief never executed a stolen job")
	}
	// Exactly once across the fleet: the 4 points plus the victim's blocker.
	if total := thiefRuns + victimRuns; total != n+1 {
		t.Errorf("total runs = %d (thief %d, victim %d), want %d: some point ran twice or not at all",
			total, thiefRuns, victimRuns, n+1)
	}
	if victim.Metrics().StealsOut.Load() == 0 {
		t.Error("victim's StealsOut counter did not advance")
	}
	if thief.Metrics().StealsIn.Load() == 0 {
		t.Error("thief's StealsIn counter did not advance")
	}
}

// TestStealCutReclaims: the steal.cut fault severs the first steal response
// after ownership transferred. The victim's reclaim janitor must take the
// jobs back and the points must still complete — exactly once each.
func TestStealCutReclaims(t *testing.T) {
	inj, err := faults.Parse("steal.cut:cut:1:limit=1")
	if err != nil {
		t.Fatal(err)
	}
	victim, tsV := testServer(t, Config{Workers: 1, QueueDepth: 64, Faults: inj})
	nV := attachNode(t, victim, tsV, cluster.Config{
		ID: "victim", Epoch: 1, DisableSteal: true,
		Faults: inj, StealTimeout: 250 * time.Millisecond,
	})
	thief, tsT := testServer(t, Config{Workers: 4, QueueDepth: 64})
	nT := attachNode(t, thief, tsT, cluster.Config{ID: "thief", Epoch: 2, Seeds: []string{tsV.URL}, StealThreshold: 1})

	waitCluster(t, 5*time.Second, "gossip convergence", func() bool {
		return aliveMembers(nV) == 2 && aliveMembers(nT) == 2
	})
	blockerID := blockWorker(t, tsV)
	defer cancelRun(t, tsV, blockerID)

	const n = 2
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		req := smallSpec
		req.Seed = uint64(100 + i)
		resp, v := postRun(t, tsV, req, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued POST %d = %d", i, resp.StatusCode)
		}
		ids[i] = v.ID
	}

	for i, id := range ids {
		id := id
		waitCluster(t, 30*time.Second, fmt.Sprintf("job %d to survive the severed steal", i), func() bool {
			st, ok := jobStatus(tsV, id)
			return ok && st == StatusDone
		})
	}
	if victim.Metrics().StealsReclaimed.Load() == 0 {
		t.Error("no handoffs were reclaimed; the cut steal should have forced the reclaim path")
	}
	if total := thief.Runner().Runs() + victim.Runner().Runs(); total != n+1 {
		t.Errorf("total runs = %d, want %d: the reclaim must not double-simulate", total, n+1)
	}
}

// TestStealHandoffTokens: the id a thief completes a stolen job under is a
// fresh random token, never the guessable client-facing job id — so a
// network caller cannot forge steal/complete for a job it did not steal.
func TestStealHandoffTokens(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 8})
	blockerID := blockWorker(t, ts)
	defer cancelRun(t, ts, blockerID)

	resp, v := postRun(t, ts, smallSpec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued POST = %d", resp.StatusCode)
	}
	jobs := s.StealJobs(4)
	if len(jobs) != 1 {
		t.Fatalf("StealJobs took %d jobs, want 1", len(jobs))
	}
	tok := jobs[0].ID
	if tok == v.ID {
		t.Error("handoff token is the client-facing job id; it must be unguessable")
	}
	if len(tok) != 32 {
		t.Errorf("handoff token %q is %d chars, want 32 hex chars", tok, len(tok))
	}
	if s.CompleteStolen(v.ID, sim.Result{}, "forged") {
		t.Error("a completion forged with the public job id was accepted")
	}
	if !s.CompleteStolen(tok, sim.Result{}, "thief failed") {
		t.Error("the genuine handoff token was rejected")
	}
	waitStatus(t, ts, v.ID, StatusFailed)
}

// TestDrainReclaimsSilentThief: a handoff whose thief goes silent while
// this node drains must be reclaimed and finished locally by the drain
// loop (the cluster node — and its janitor — is already stopped, mirroring
// main's shutdown order), not spun on until the deadline and cancelled.
func TestDrainReclaimsSilentThief(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 8})
	n := attachNode(t, s, ts, cluster.Config{
		ID: "victim", Epoch: 1, DisableSteal: true, DisablePeerRead: true,
		StealTimeout: 200 * time.Millisecond,
	})
	blockerID := blockWorker(t, ts)

	resp, v := postRun(t, ts, smallSpec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued POST = %d", resp.StatusCode)
	}
	// The "thief": takes the handoff and is never heard from again.
	if jobs := s.StealJobs(4); len(jobs) != 1 {
		t.Fatalf("StealJobs took %d jobs, want 1", len(jobs))
	}
	// main.go's shutdown order: the node (and its reclaim janitor) stops
	// before Drain runs.
	n.Stop()
	cancelRun(t, ts, blockerID)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain = %v, want a clean drain via local reclaim", err)
	}
	if st, ok := jobStatus(ts, v.ID); !ok || st != StatusDone {
		t.Errorf("stolen job after drain = %s, want done (reclaimed and run locally)", st)
	}
	if s.Metrics().StealsReclaimed.Load() == 0 {
		t.Error("StealsReclaimed did not advance during drain")
	}
}
