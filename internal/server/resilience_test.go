package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"spb/internal/faults"
)

// getJSON fetches url and decodes the body, returning the status code too.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad body %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// readyView is the readiness body shape the Pool also consumes.
type readyView struct {
	Status        string   `json:"status"`
	Ready         bool     `json:"ready"`
	Draining      bool     `json:"draining"`
	Degraded      bool     `json:"degraded"`
	QueueHeadroom int      `json:"queue_headroom"`
	Reasons       []string `json:"reasons"`
}

func TestReadinessSplitFromLiveness(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 4})

	// Fresh server: alive and ready.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("liveness = %d, want 200", code)
	}
	var rv readyView
	if code := getJSON(t, ts.URL+"/healthz?ready=1", &rv); code != http.StatusOK {
		t.Fatalf("readiness = %d, want 200", code)
	}
	if !rv.Ready || rv.Status != "ready" || rv.QueueHeadroom != 4 {
		t.Fatalf("readiness view = %+v, want ready with headroom 4", rv)
	}
}

func TestReadinessReportsQueueFull(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})

	// One long job running, one queued: headroom exhausted.
	var ids []string
	for i := 0; i < 2; i++ {
		req := longSpec
		req.Insts += uint64(i) // distinct points, no coalescing
		resp, v := postRun(t, ts, req, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	defer func() {
		for _, id := range ids {
			http.Post(ts.URL+"/v1/runs/"+id+"/cancel", "application/json", nil)
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var rv readyView
		code := getJSON(t, ts.URL+"/healthz?ready=1", &rv)
		if code == http.StatusServiceUnavailable {
			if rv.Ready || rv.QueueHeadroom != 0 || len(rv.Reasons) == 0 {
				t.Fatalf("unready view = %+v, want headroom 0 with a reason", rv)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readiness never reported queue full")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestInjectedSubmitFaultReturns503(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers: 1,
		Faults:  faults.MustParse("submit:error:1:limit=1"),
	})
	resp, _ := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("faulted submit carries no Retry-After")
	}
	// Fault budget spent: the retry succeeds.
	resp, v := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK || v.Status != StatusDone {
		t.Fatalf("retry after fault = %d/%s, want 200/done", resp.StatusCode, v.Status)
	}
}

// TestDiskDegradedModeEntersAndRecovers drives the store into degraded
// memory-only mode with an injected write failure, checks it is surfaced in
// readiness and metrics, and then watches a probe bring the tier back.
func TestDiskDegradedModeEntersAndRecovers(t *testing.T) {
	s, ts := testServer(t, Config{
		Workers:            2,
		CacheDir:           t.TempDir(),
		Faults:             faults.MustParse("store.write:error:1:limit=1"),
		DiskErrorThreshold: 1,
		DiskRetryInterval:  5 * time.Millisecond,
	})

	// The first completed run's disk write fails (asynchronously, after the
	// response); one error meets the threshold of 1.
	postRun(t, ts, smallSpec, "?wait=1")
	deadline := time.Now().Add(5 * time.Second)
	for !s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered degraded mode")
		}
		time.Sleep(time.Millisecond)
	}

	// Degraded is visible but does not unready the daemon.
	var rv readyView
	if code := getJSON(t, ts.URL+"/healthz?ready=1", &rv); code != http.StatusOK {
		t.Fatalf("readiness while degraded = %d, want 200", code)
	}
	if !rv.Degraded || !rv.Ready {
		t.Fatalf("readiness view = %+v, want ready and degraded", rv)
	}
	if text := metricsText(t, ts); !strings.Contains(text, "spbd_store_degraded 1") {
		t.Fatal("metrics do not report spbd_store_degraded 1")
	}

	// Recovery: the fault budget is spent, so the next probe (one disk
	// operation per DiskRetryInterval) succeeds and clears degraded mode.
	deadline = time.Now().Add(5 * time.Second)
	for i := 0; s.Degraded(); i++ {
		if time.Now().After(deadline) {
			t.Fatal("server never left degraded mode")
		}
		req := smallSpec
		req.Insts = 10_000 + uint64(i+1)*500 // fresh points keep hitting the tiers
		postRun(t, ts, req, "?wait=1")
		time.Sleep(5 * time.Millisecond)
	}
	if text := metricsText(t, ts); !strings.Contains(text, "spbd_store_degraded 0") {
		t.Fatal("metrics do not report spbd_store_degraded 0 after recovery")
	}
}

// TestServerQuarantinesCorruptEntry is the end-to-end corruption story:
// a bit-flipped cache file is quarantined and counted, the spec recomputes
// with the right answer, the healed entry serves the next restart, and the
// quarantine survives restarts without tripping anything again.
func TestServerQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := testServer(t, Config{Workers: 2, CacheDir: dir})
	resp, first := postRun(t, ts1, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK || first.Status != StatusDone {
		t.Fatalf("seed run = %d/%s", resp.StatusCode, first.Status)
	}
	ts1.Close()

	// Flip a byte in the stored entry.
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := store.path(first.Key)
	flipEntryByte(t, path)

	// Fresh daemon over the damaged dir: the read quarantines, counts, and
	// recomputes — same stats, no disk hit, no error surfaced to the client.
	s2, ts2 := testServer(t, Config{Workers: 2, CacheDir: dir})
	resp, second := postRun(t, ts2, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK || second.Status != StatusDone {
		t.Fatalf("recompute run = %d/%s", resp.StatusCode, second.Status)
	}
	if second.Cached != "" {
		t.Fatalf("corrupt entry served from cache (%q)", second.Cached)
	}
	if string(second.Stats) != string(first.Stats) {
		t.Fatal("recomputed stats differ from the original")
	}
	if got := s2.Metrics().StoreCorrupt.Load(); got != 1 {
		t.Fatalf("StoreCorrupt = %d, want 1", got)
	}
	if text := metricsText(t, ts2); !strings.Contains(text, "spbd_store_corrupt_total 1") {
		t.Fatal("metrics do not report spbd_store_corrupt_total 1")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
	if s2.Degraded() {
		t.Fatal("corruption (not I/O failure) degraded the disk tier")
	}
	// Wait for the recompute's async disk write, then restart: the healed
	// entry serves from disk and nothing is corrupt anymore.
	waitHealed := func() error {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, ok, err := store.Get(first.Key); err == nil && ok {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("healed entry never reached disk")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := waitHealed(); err != nil {
		t.Fatal(err)
	}
	ts2.Close()

	s3, ts3 := testServer(t, Config{Workers: 2, CacheDir: dir})
	resp, third := postRun(t, ts3, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK || third.Cached != "disk" {
		t.Fatalf("post-heal run = %d cached %q, want disk hit", resp.StatusCode, third.Cached)
	}
	if string(third.Stats) != string(first.Stats) {
		t.Fatal("healed stats differ from the original")
	}
	if got := s3.Metrics().StoreCorrupt.Load(); got != 0 {
		t.Fatalf("restart after quarantine counted %d corruptions, want 0", got)
	}
}
