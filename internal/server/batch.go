package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"spb/internal/faults"
	"spb/internal/obs"
	"spb/internal/sim"
)

// The batch endpoint accepts a whole sweep in one request and streams
// per-spec results back as newline-delimited JSON, so a five-figure grid
// costs one connection instead of N submit+poll loops. Specs are
// deduplicated twice before any simulation is enqueued — within the request
// (identical points share one job) and against both cache tiers (submit
// consults the memory and disk stores) — and the surviving misses are
// dispatched longest-processing-time first so the sweep's makespan is not
// set by an 8-core PARSEC or ideal-SB straggler landing last.

// maxBatchSpecs bounds one batch request; larger sweeps should be split
// across requests (or backends).
const maxBatchSpecs = 65536

// batchQueuePoll is how often a batch dispatcher re-tries enqueueing when
// the worker queue is full (other clients can saturate it independently of
// the batch's own in-flight bound).
const batchQueuePoll = 25 * time.Millisecond

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Specs []RunRequest `json:"specs"`
}

// BatchItem is one NDJSON line of a batch response. Every spec produces an
// acknowledgment line (status "queued", carrying the job id so clients can
// cancel or hedge individual points) unless it was answered from cache, and
// exactly one terminal line (status "done", "failed" or "cancelled"). Done
// lines carry both the canonical stats serialization and the full result —
// the same lossless envelope the disk cache stores — so a client can
// reconstruct a sim.Result byte-identically to an in-process run. Duplicate
// specs within the request produce one line per index, sharing a job.
type BatchItem struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	ID     string          `json:"id,omitempty"`
	Status Status          `json:"status"`
	Cached string          `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Stats  json.RawMessage `json:"stats,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// batchWriter serializes NDJSON lines onto the response; dispatcher and
// per-job completion goroutines write concurrently. It also hosts the
// "batch.stream" fault site: injected delays slow the stream, and an
// injected cut severs the TCP connection mid-response.
type batchWriter struct {
	mu     sync.Mutex
	w      http.ResponseWriter
	fl     http.Flusher
	faults *faults.Injector
	cut    bool // stream severed by an injected fault; later writes are no-ops
}

func (bw *batchWriter) write(item BatchItem) {
	data, err := json.Marshal(item)
	if err != nil {
		return
	}
	bw.mu.Lock()
	defer bw.mu.Unlock()
	if bw.cut {
		return
	}
	bw.faults.Sleep("batch.stream", nil)
	if bw.faults.Cut("batch.stream") {
		// Sever the connection underneath the response, like a mid-stream
		// network failure, WITHOUT cancelling the request context: the
		// batch's jobs stay retained and complete into the cache, so a
		// resuming client coalesces or cache-hits instead of re-simulating
		// — exactly-once survives the truncation. (write is called from
		// non-handler goroutines, so panicking with http.ErrAbortHandler is
		// not an option here.)
		if hj, ok := bw.w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		bw.cut = true
		return
	}
	bw.w.Write(data)
	bw.w.Write([]byte{'\n'})
	bw.fl.Flush()
}

// batchGroup is one unique simulation point and the request indices that
// asked for it.
type batchGroup struct {
	spec    sim.RunSpec
	key     string
	indices []int
}

// terminalItems renders the job's terminal state as one BatchItem per
// requesting index. The result payload is marshalled once and shared.
func terminalItems(j *job, indices []int) []BatchItem {
	j.mu.Lock()
	st, errMsg, cached, stats := j.status, j.errMsg, j.cached, j.stats
	res := j.result
	j.mu.Unlock()
	var raw json.RawMessage
	if st == StatusDone {
		if data, err := json.Marshal(res); err == nil {
			raw = data
		}
	}
	items := make([]BatchItem, len(indices))
	for i, idx := range indices {
		items[i] = BatchItem{
			Index: idx, Key: j.key, ID: j.id, Status: st,
			Cached: cached, Error: errMsg, Stats: stats, Result: raw,
		}
	}
	return items
}

// handleBatch accepts N specs in one request and streams per-spec results
// as NDJSON while they finish. Disconnecting releases the batch's interest
// in every outstanding job: points nobody else is waiting on stop
// simulating, exactly like an abandoned ?wait=1 submission.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tn, err := s.tenantFor(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, "%v", err)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no specs")
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		writeError(w, http.StatusBadRequest, "batch has %d specs, max %d", len(req.Specs), maxBatchSpecs)
		return
	}
	specs := make([]sim.RunSpec, len(req.Specs))
	for i, rr := range req.Specs {
		spec, err := rr.Spec()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad spec at index %d: %v", i, err)
			return
		}
		specs[i] = spec.Normalized()
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	// In-request dedup: identical points share one job and one simulation.
	byKey := make(map[string]*batchGroup, len(specs))
	var groups []*batchGroup
	for i, spec := range specs {
		key := Key(spec)
		g, ok := byKey[key]
		if !ok {
			g = &batchGroup{spec: spec, key: key}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.indices = append(g.indices, i)
	}
	// LPT dispatch: hand the expensive points to workers first. Cost is
	// estimated under the runner's warm-start setting: with forking on, a
	// shared warmup prefix does not contribute to a point's wall-clock.
	warmStart := s.runner.WarmStart()
	sort.SliceStable(groups, func(a, b int) bool {
		return groups[a].spec.CostEstimateAt(warmStart) > groups[b].spec.CostEstimateAt(warmStart)
	})

	s.metrics.BatchRequests.Add(1)
	s.metrics.BatchSpecs.Add(uint64(len(specs)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	bw := &batchWriter{w: w, fl: fl, faults: s.cfg.Faults}
	traceID := r.Header.Get(obs.TraceHeader)
	batchStart := time.Now()

	// streamOut writes a job's terminal lines, stamps the "stream-out" span
	// on its trace, and records how long the spec took from batch acceptance
	// to its terminal NDJSON line — the server-side view of the latency a
	// sweeping client observes per point.
	streamOut := func(j *job, indices []int) {
		outStart := time.Now()
		for _, item := range terminalItems(j, indices) {
			bw.write(item)
		}
		outEnd := time.Now()
		j.trace.Span("stream-out", outStart, outEnd)
		s.metrics.BatchStream.Observe(outEnd.Sub(batchStart))
	}

	// The in-flight bound keeps one batch from monopolizing the worker
	// queue: at most QueueDepth of its points are enqueued-or-running at a
	// time, and a slot frees only when a point reaches a terminal state.
	sem := make(chan struct{}, s.cfg.QueueDepth)
	ctx := r.Context()
	var wg sync.WaitGroup
	failRest := func(gs []*batchGroup, err error) {
		for _, g := range gs {
			for _, idx := range g.indices {
				bw.write(BatchItem{Index: idx, Key: g.key, Status: StatusFailed, Error: err.Error()})
			}
		}
	}

dispatch:
	for gi, g := range groups {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		var j *job
		for {
			var err error
			j, err = s.submit(g.spec, traceID, tn)
			if err == nil {
				break
			}
			var inj *faults.InjectedError
			if errors.Is(err, errQueueFull) || errors.Is(err, errQuota) || errors.As(err, &inj) {
				// A saturated queue, a spent tenant quota, or an injected
				// transient submission fault — all clear with time; wait
				// and resubmit rather than failing the point.
				select {
				case <-time.After(batchQueuePoll):
					continue
				case <-ctx.Done():
					<-sem
					break dispatch
				}
			}
			// Draining or a marshalling failure: the rest of the batch
			// cannot run either; report and stop dispatching.
			failRest(groups[gi:], err)
			<-sem
			wg.Wait()
			return
		}
		j.retain() // the batch's interest in this point
		if st := func() Status { j.mu.Lock(); defer j.mu.Unlock(); return j.status }(); st.terminal() {
			streamOut(j, g.indices)
			<-sem
			continue
		}
		for _, idx := range g.indices {
			bw.write(BatchItem{Index: idx, Key: g.key, ID: j.id, Status: StatusQueued})
		}
		wg.Add(1)
		go func(j *job, g *batchGroup) {
			defer wg.Done()
			defer func() { <-sem }()
			select {
			case <-j.done:
				streamOut(j, g.indices)
			case <-ctx.Done():
				s.releaseWaiter(j)
			}
		}(j, g)
	}
	wg.Wait()
}

// ErrorOf returns the item's error as a Go error (nil for non-failed items).
func (it BatchItem) ErrorOf() error {
	if it.Status == StatusDone || !it.Status.terminal() {
		return nil
	}
	msg := it.Error
	if msg == "" {
		msg = string(it.Status)
	}
	return fmt.Errorf("spbd: batch spec %d ended %s: %s", it.Index, it.Status, msg)
}

// DecodeResult reconstructs the full simulation result carried by a done
// item — the same lossless round trip the disk cache performs, so remote
// sweeps compute byte-identical tables.
func (it BatchItem) DecodeResult() (sim.Result, error) {
	if it.Status != StatusDone {
		return sim.Result{}, fmt.Errorf("spbd: batch spec %d is %s, not done", it.Index, it.Status)
	}
	if len(it.Result) == 0 {
		return sim.Result{}, fmt.Errorf("spbd: batch spec %d carries no result payload", it.Index)
	}
	var res sim.Result
	if err := json.Unmarshal(it.Result, &res); err != nil {
		return sim.Result{}, fmt.Errorf("spbd: batch spec %d result: %w", it.Index, err)
	}
	return res, nil
}
