package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"spb/internal/sim"
)

// keyVersion is baked into every content address. Bump it whenever the
// simulator's statistics change meaning (a new counter, a model fix) or the
// spec gains a field, so stale disk-cache entries miss instead of serving
// results the current binary would not produce. v2: WarmupInsts joined the
// spec (a warmed run's statistics differ from a cold run's). v3: SMARTS
// sampling joined the spec (a sampled run's statistics are estimates over
// measured windows, not full-run totals). v4: the FDP decision tree was
// fixed to hold the level on accurate/timely/clean epochs (Srinath et al.,
// Table 2), changing adaptive-prefetcher statistics.
const keyVersion = "spb-runspec-v4"

// Key returns the content address of a simulation point: a hex SHA-256 over
// an explicit, field-by-field rendering of the normalized spec. Two specs
// that differ only in defaulted fields (Cores 0 vs 1, Seed 0 vs 1, ...)
// share a key, and the encoding uses no map iteration, pointer values, or
// other process-varying input, so keys are stable across restarts — the
// property the on-disk cache depends on.
func Key(spec sim.RunSpec) string {
	n := spec.Normalized()
	h := sha256.New()
	// %q on strings keeps workload/core names unambiguous (a name could
	// otherwise collide with a separator); enums render as their stable
	// String() names.
	fmt.Fprintf(h,
		"%s|workload=%q|policy=%s|sq=%d|pf=%s|core=%q|cores=%d|insts=%d|warm=%d|win=%d|dyn=%t|coalesce=%t|backward=%t|xpage=%t|bpred=%t|noff=%t|smp=%d/%d/%d/%d|seed=%d",
		keyVersion, n.Workload, n.Policy, n.SQSize, n.Prefetcher, n.CoreName,
		n.Cores, n.Insts, n.WarmupInsts, n.WindowN, n.DynamicSPB, n.CoalesceSB,
		n.BackwardBursts, n.CrossPageBursts, n.ModelBranchPredictor,
		n.DisableFastForward, n.Sampling.IntervalInsts, n.Sampling.DetailedInsts,
		n.Sampling.WarmInsts, n.Sampling.HistoryInsts, n.Seed)
	return hex.EncodeToString(h.Sum(nil))
}
