package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"spb/internal/sim"
)

// sampledSpec is a quick sampled simulation point: ~5 detailed windows of
// 3k instructions inside a 200k-instruction run.
var sampledSpec = RunRequest{
	Workload: "bwaves", Policy: "spb", SB: 14,
	Insts: 200_000, Warmup: 20_000,
	SampleInterval: 40_000, SampleDetail: 3_000, SampleWarm: 5_000,
}

// TestSampledRunRoundTrip pushes a SMARTS-sampled spec through the whole
// service: the wire form must round-trip the sampling fields, the response
// stats must be byte-identical to an in-process run and carry the sample.*
// estimates, the content address must be distinct from the spec's
// full-detail twin, and both cache tiers plus the sampling metrics must see
// the run.
func TestSampledRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, Config{Workers: 2, CacheDir: dir})

	resp, v := postRun(t, ts, sampledSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	if v.Spec.SampleInterval != sampledSpec.SampleInterval ||
		v.Spec.SampleDetail != sampledSpec.SampleDetail ||
		v.Spec.SampleWarm != sampledSpec.SampleWarm {
		t.Fatalf("sampling fields did not round-trip: %+v", v.Spec)
	}

	spec, err := sampledSpec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Stats) != string(want) {
		t.Fatalf("service stats differ from in-process stats:\n  got  %s\n  want %s", v.Stats, want)
	}
	if !strings.Contains(string(v.Stats), `"sample.intervals"`) ||
		!strings.Contains(string(v.Stats), `"sample.ipcCI95PPM"`) {
		t.Fatalf("sampled stats missing sample.* estimates: %s", v.Stats)
	}

	// The full-detail twin is a different simulation point: it must get its
	// own content address and simulate instead of hitting the cache.
	full := sampledSpec
	full.SampleInterval, full.SampleDetail, full.SampleWarm = 0, 0, 0
	_, fv := postRun(t, ts, full, "?wait=1")
	if fv.Status != StatusDone {
		t.Fatalf("full-detail twin: %s (%s)", fv.Status, fv.Error)
	}
	if fv.Key == v.Key {
		t.Fatalf("sampled and full-detail specs share key %s", v.Key)
	}
	if fv.Cached != "" {
		t.Fatalf("full-detail twin answered from cache (tier %q)", fv.Cached)
	}
	if strings.Contains(string(fv.Stats), `"sample.`) {
		t.Fatalf("full-detail stats carry sample.* fields: %s", fv.Stats)
	}

	// The sampling counters must reflect the one sampled run.
	st := s.Runner().SimStats()
	if st.SampledRuns != 1 || st.SampleIntervals == 0 || st.SampleInstsSkipped == 0 {
		t.Fatalf("runner sampling stats = %+v, want 1 sampled run with intervals and skips", st)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"spbd_sample_runs_total 1",
		"spbd_sample_intervals_total",
		"spbd_sample_insts_skipped_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// A fresh daemon over the same store must answer the sampled spec from
	// disk, byte-identically.
	ts.Close()
	s.Close()
	_, ts2 := testServer(t, Config{Workers: 2, CacheDir: dir})
	_, again := postRun(t, ts2, sampledSpec, "?wait=1")
	if again.Cached != "disk" {
		t.Fatalf("restarted daemon: cached = %q, want disk (%s)", again.Cached, again.Error)
	}
	if string(again.Stats) != string(want) {
		t.Fatalf("disk round-trip changed sampled stats:\n  got  %s\n  want %s", again.Stats, want)
	}
}
