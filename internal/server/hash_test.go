package server

import (
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/sim"
)

// TestKeyDefaultedFieldsHashIdentically is the normalize-stability
// guarantee: a spec written with defaults left implicit and the same spec
// fully spelled out are the same simulation point and must share a content
// address — otherwise the disk cache re-simulates every sweep that spells
// its specs differently.
func TestKeyDefaultedFieldsHashIdentically(t *testing.T) {
	implicit := sim.RunSpec{Workload: "bwaves"}
	explicit := sim.RunSpec{
		Workload: "bwaves",
		Cores:    1,       // normalize default
		Insts:    200_000, // normalize default
		WindowN:  48,      // normalize default
		Seed:     1,       // normalize default
	}
	if Key(implicit) != Key(explicit) {
		t.Fatalf("defaulted spec hashes differently:\n  implicit %s\n  explicit %s",
			Key(implicit), Key(explicit))
	}
}

// TestKeyStableAcrossRestarts pins the content address to a golden value.
// The key must be a pure function of the normalized spec — no map
// iteration, pointer values, or other process-varying input — because
// on-disk cache entries written by one spbd process must hit in the next.
// If this test fails because the spec encoding deliberately changed, bump
// keyVersion and update the constants (old cache entries then miss, which
// is the safe direction).
func TestKeyStableAcrossRestarts(t *testing.T) {
	golden := []struct {
		spec sim.RunSpec
		key  string
	}{
		{sim.RunSpec{Workload: "bwaves"},
			"d2cbb053e2f0c1baaf5e17bc557b61f808f4a5ad1391742d6023f4eda4ce738d"},
		{sim.RunSpec{Workload: "dedup", Cores: 8, SQSize: 56},
			"f30721de44effa9d4c90d14385e1e3a0fa1208ba1ae751b20c45cad9ee851081"},
	}
	for _, g := range golden {
		if got := Key(g.spec); got != g.key {
			t.Errorf("Key(%+v) = %s, want %s", g.spec, got, g.key)
		}
	}
	// And the same call twice in this process must agree with itself.
	for _, g := range golden {
		if Key(g.spec) != Key(g.spec) {
			t.Errorf("Key(%+v) is not deterministic within a process", g.spec)
		}
	}
}

// TestKeyDistinguishesSpecs checks that every identifying field feeds the
// hash: flipping any one of them must change the key.
func TestKeyDistinguishesSpecs(t *testing.T) {
	base := sim.RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14}
	variants := []sim.RunSpec{
		{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14},
		{Workload: "bwaves", Policy: core.PolicyAtCommit, SQSize: 14},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 56},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 100},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, WarmupInsts: 5_000},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Seed: 2},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, WindowN: 32},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Cores: 2},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, DynamicSPB: true},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, CoalesceSB: true},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, BackwardBursts: true},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, CrossPageBursts: true},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, ModelBranchPredictor: true},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, DisableFastForward: true},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, CoreName: "SLM"},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Prefetcher: config.PrefetchAdaptive},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Prefetcher: config.PrefetchNone},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Prefetcher: config.PrefetchBOP},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Prefetcher: config.PrefetchDSPatch},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Prefetcher: config.PrefetchHybrid},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14,
			Sampling: sim.SamplingConfig{IntervalInsts: 100_000}},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14,
			Sampling: sim.SamplingConfig{IntervalInsts: 100_000, DetailedInsts: 5_000}},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14,
			Sampling: sim.SamplingConfig{IntervalInsts: 100_000, DetailedInsts: 5_000, WarmInsts: 20_000}},
		{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14,
			Sampling: sim.SamplingConfig{IntervalInsts: 100_000, DetailedInsts: 5_000, WarmInsts: 20_000, HistoryInsts: 50_000}},
	}
	baseKey := Key(base)
	seen := map[string]int{baseKey: -1}
	for i, v := range variants {
		k := Key(v)
		if k == baseKey {
			t.Errorf("variant %d (%+v) collides with base", i, v)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide", prev, i)
		}
		seen[k] = i
	}
}
