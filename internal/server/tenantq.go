package server

import (
	"container/heap"
	"sync"
)

// tenantQueue replaces the PR 2 FIFO channel with a tenant-aware admission
// queue: three strict priority lanes, weighted-fair queueing (WFQ) inside
// each. WFQ uses virtual time — job i of tenant T finishes, in virtual
// time, at max(queue clock, T's last virtual finish) + cost/weight — so a
// weight-4 tenant drains 4× faster than a weight-1 tenant *while both are
// backlogged*, and an idle tenant's unused share redistributes instead of
// being wasted (the max() resets a returning tenant to the current clock
// rather than letting it claim its idle time back). Cost is the spec's
// CostEstimate, so fairness is in simulated work, not job count: a tenant
// submitting 8-core PARSEC points pays for them.
//
// The queue keeps the channel's drain semantics: close() lets blocked pop()
// callers drain the remaining jobs and then return false, exactly like
// ranging over a closed channel. It also supports steal(): removing the
// *least* urgent job (lowest lane, largest virtual finish) for handoff to a
// cluster peer — the opposite end of the schedule from what pop() takes, so
// stealing never front-runs the local workers.
type tenantQueue struct {
	depth int

	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [numLanes]jobHeap
	size   int
	closed bool
	vtime  float64 // queue virtual clock: the largest vfinish ever dequeued
	seq    uint64  // push order, tiebreak within equal vfinish
}

func newTenantQueue(depth int) *tenantQueue {
	q := &tenantQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job, stamping its virtual finish from its tenant's clock.
func (q *tenantQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	if q.size >= q.depth {
		return errQueueFull
	}
	tn := j.tenant
	start := q.vtime
	if tn.vfinish > start {
		start = tn.vfinish
	}
	w := float64(tn.Weight)
	if w <= 0 {
		w = 1
	}
	tn.vfinish = start + (j.cost+1)/w
	j.vfinish = tn.vfinish
	q.seq++
	j.seq = q.seq
	lane := j.lane
	if lane < 0 {
		lane = 0
	} else if lane >= numLanes {
		lane = numLanes - 1
	}
	heap.Push(&q.lanes[lane], j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks for the next job in schedule order: highest non-empty lane,
// smallest virtual finish within it. Returns false only when the queue is
// closed and drained — the worker-pool exit condition.
func (q *tenantQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	for l := 0; l < numLanes; l++ {
		if q.lanes[l].Len() > 0 {
			j := heap.Pop(&q.lanes[l]).(*job)
			q.size--
			if j.vfinish > q.vtime {
				q.vtime = j.vfinish
			}
			return j, true
		}
	}
	return nil, false // unreachable: size > 0 implies a non-empty lane
}

// steal removes the least-urgent queued job — lowest-priority lane first,
// largest virtual finish within it — for handoff to a cluster peer. Nil when
// the queue is empty or closed.
func (q *tenantQueue) steal() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size == 0 {
		return nil
	}
	for l := numLanes - 1; l >= 0; l-- {
		lane := q.lanes[l]
		best := -1
		for i, j := range lane {
			if best < 0 || j.vfinish > lane[best].vfinish ||
				(j.vfinish == lane[best].vfinish && j.seq > lane[best].seq) {
				best = i
			}
		}
		if best >= 0 {
			j := heap.Remove(&q.lanes[l], best).(*job)
			q.size--
			return j
		}
	}
	return nil
}

// close stops admissions; blocked pop() callers drain the rest and exit.
func (q *tenantQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// len reports queued jobs (metrics gauge, steal sizing).
func (q *tenantQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// jobHeap is a min-heap on (vfinish, seq).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].vfinish != h[j].vfinish {
		return h[i].vfinish < h[j].vfinish
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
