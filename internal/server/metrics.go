package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spb/internal/cpu"
	"spb/internal/obs"
	"spb/internal/sim"
	"spb/internal/topdown"
)

// Metrics holds spbd's operational counters and latency histograms,
// exported at GET /metrics in Prometheus text format. Hand-rolled (the repo
// takes no dependencies): counters are plain atomics bumped on the request
// path, latency distributions are obs.Histogram log-bucketed instruments
// (lock-free, allocation-free Observe), and the text rendering walks them
// under a snapshot. Gauges (queue depth, in-flight runs) are read live from
// the server at scrape time.
type Metrics struct {
	CacheHitsMemory  atomic.Uint64
	CacheHitsDisk    atomic.Uint64
	CacheMisses      atomic.Uint64
	RunsCoalesced    atomic.Uint64
	RunsCompleted    atomic.Uint64
	RunsFailed       atomic.Uint64
	RunsCancelled    atomic.Uint64
	QueueRejected    atomic.Uint64
	SSESubscribers   atomic.Int64
	DiskStoreErrors  atomic.Uint64
	StoreCorrupt     atomic.Uint64 // quarantined disk cache entries
	ProgressSnapshot atomic.Uint64 // progress callbacks delivered
	BatchRequests    atomic.Uint64
	BatchSpecs       atomic.Uint64 // specs received across all batch requests

	// Cluster protocol counters (the daemon side; the node's own gossip
	// counters live in cluster.NodeStats). Always rendered so dashboards
	// and serve_check see the series on standalone daemons too.
	PeerHits        atomic.Uint64 // submissions answered from a peer's disk tier
	PeerMisses      atomic.Uint64 // read-throughs that found no peer copy
	PeerServed      atomic.Uint64 // peer read-through requests this daemon answered
	StealsOut       atomic.Uint64 // queued jobs handed to thief peers
	StealsIn        atomic.Uint64 // stolen jobs executed for victim peers
	StealsReclaimed atomic.Uint64 // handoffs taken back from silent thieves
	QuotaRejected   atomic.Uint64 // submissions rejected by a tenant quota

	// Crash-safety counters (journal.go + the recovery path in server.go).
	RecoveryRequeued  atomic.Uint64 // journaled jobs re-admitted to the queue after a restart
	RecoveryCompleted atomic.Uint64 // recovered jobs answered from the disk tier (terminal record was lost)
	RecoveryDropped   atomic.Uint64 // journaled jobs that could not be re-admitted
	JournalErrors     atomic.Uint64 // journal append/sync failures (jobs continue, less durable)
	OrphanTempsSwept  atomic.Uint64 // leftover atomic-write temp files removed at startup

	// Top-Down stall accounting aggregated over every completed run (paper
	// §V): raw cycle counters so operators can derive fleet-level stall
	// ratios, plus how many runs met the >2% SB-bound criterion.
	TDCycles        atomic.Uint64
	TDSBStall       atomic.Uint64
	TDOtherStall    atomic.Uint64
	TDFrontendStall atomic.Uint64
	TDExecL1DStall  atomic.Uint64
	TDSBBoundRuns   atomic.Uint64

	// Phase latency histograms: where a job's wall-clock time goes.
	QueueWait   obs.Histogram // submission → worker pickup
	RunDuration obs.Histogram // simulation execution (sim.Runner.GetCtx)
	StoreRead   obs.Histogram // disk-tier lookups
	StoreWrite  obs.Histogram // disk-tier persists
	BatchStream obs.Histogram // batch start → each terminal NDJSON line

	mu        sync.Mutex
	endpoints map[string]*obs.Histogram
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*obs.Histogram)}
}

// ObserveLatency records one request duration under the endpoint label
// (the route pattern, e.g. "POST /v1/runs").
func (m *Metrics) ObserveLatency(endpoint string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.endpoints[endpoint]
	if !ok {
		h = &obs.Histogram{}
		m.endpoints[endpoint] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// ObserveTopDown folds one completed run's aggregated core statistics into
// the fleet-level Top-Down counters.
func (m *Metrics) ObserveTopDown(st *cpu.Stats) {
	m.TDCycles.Add(st.Cycles)
	m.TDSBStall.Add(st.SBStallCycles)
	m.TDOtherStall.Add(st.OtherStallCycles())
	m.TDFrontendStall.Add(st.FrontendStallCycles)
	m.TDExecL1DStall.Add(st.ExecStallL1DPending)
	if sb, _, _, _ := topdown.StatPPM(st); sb > topdown.SBBoundThresholdPPM {
		m.TDSBBoundRuns.Add(1)
	}
}

// WriteText renders every metric in Prometheus exposition format. The
// queueDepth, inflight and degraded callbacks supply the live gauges; sim
// supplies the runner's execution counters (simulated instructions and
// warm-start fork accounting), read at scrape time.
func (m *Metrics) WriteText(w io.Writer, queueDepth, inflight func() int, degraded func() bool, simStats func() sim.RunnerStats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("spbd_queue_depth", "Jobs waiting in the FIFO queue.", int64(queueDepth()))
	gauge("spbd_inflight_runs", "Simulations currently executing.", int64(inflight()))
	gauge("spbd_sse_subscribers", "Open SSE progress streams.", m.SSESubscribers.Load())
	var deg int64
	if degraded() {
		deg = 1
	}
	gauge("spbd_store_degraded", "1 while the disk tier is in degraded memory-only mode.", deg)

	fmt.Fprintf(w, "# HELP spbd_cache_hits_total Run requests answered from cache, by tier.\n")
	fmt.Fprintf(w, "# TYPE spbd_cache_hits_total counter\n")
	fmt.Fprintf(w, "spbd_cache_hits_total{tier=\"memory\"} %d\n", m.CacheHitsMemory.Load())
	fmt.Fprintf(w, "spbd_cache_hits_total{tier=\"disk\"} %d\n", m.CacheHitsDisk.Load())
	counter("spbd_cache_misses_total", "Run requests that had to simulate.", m.CacheMisses.Load())
	counter("spbd_runs_coalesced_total", "Submissions deduplicated onto an active identical job.", m.RunsCoalesced.Load())
	counter("spbd_runs_completed_total", "Jobs that finished successfully.", m.RunsCompleted.Load())
	counter("spbd_runs_failed_total", "Jobs that ended in a simulation error.", m.RunsFailed.Load())
	counter("spbd_runs_cancelled_total", "Jobs stopped by cancellation or timeout.", m.RunsCancelled.Load())
	counter("spbd_queue_rejected_total", "Submissions rejected with 429 because the queue was full.", m.QueueRejected.Load())
	counter("spbd_disk_store_errors_total", "Disk cache tier read/write failures.", m.DiskStoreErrors.Load())
	counter("spbd_store_corrupt_total", "Corrupt disk cache entries quarantined and recomputed.", m.StoreCorrupt.Load())
	counter("spbd_progress_snapshots_total", "Progress callbacks delivered by running simulations.", m.ProgressSnapshot.Load())
	counter("spbd_batch_requests_total", "Batch sweep requests accepted.", m.BatchRequests.Load())
	counter("spbd_batch_specs_total", "Specs received across all batch requests.", m.BatchSpecs.Load())
	counter("spbd_cluster_peer_hits_total", "Submissions answered from a peer's disk tier.", m.PeerHits.Load())
	counter("spbd_cluster_peer_misses_total", "Peer read-throughs that found no copy in the fleet.", m.PeerMisses.Load())
	counter("spbd_cluster_peer_served_total", "Peer read-through requests this daemon answered from its disk tier.", m.PeerServed.Load())
	counter("spbd_cluster_steals_out_total", "Queued jobs handed to thief peers.", m.StealsOut.Load())
	counter("spbd_cluster_steals_in_total", "Stolen jobs executed on behalf of victim peers.", m.StealsIn.Load())
	counter("spbd_cluster_steal_reclaimed_total", "Stolen-job handoffs reclaimed from silent thieves.", m.StealsReclaimed.Load())
	counter("spbd_tenant_quota_rejected_all_total", "Submissions rejected by any tenant quota.", m.QuotaRejected.Load())
	counter("spbd_recovery_requeued_total", "Journaled jobs re-admitted to the queue after a restart.", m.RecoveryRequeued.Load())
	counter("spbd_recovery_completed_total", "Recovered jobs answered from the disk tier (their terminal record was lost in the crash).", m.RecoveryCompleted.Load())
	counter("spbd_recovery_dropped_total", "Journaled jobs that could not be re-admitted after a restart.", m.RecoveryDropped.Load())
	counter("spbd_journal_errors_total", "Job journal append/sync failures (jobs continue, less durable).", m.JournalErrors.Load())
	counter("spbd_orphan_temps_swept_total", "Leftover atomic-write temp files removed at startup.", m.OrphanTempsSwept.Load())

	ss := simStats()
	counter("spbd_sim_insts_total", "Instructions simulated (functional warming + detailed intervals).", ss.InstsSimulated)
	counter("spbd_warmstart_groups_total", "Warmup-equivalence groups simulated (one warmup each).", ss.WarmGroups)
	counter("spbd_warmstart_forks_total", "Detailed runs forked from a shared warm snapshot.", ss.WarmForks)
	counter("spbd_warmstart_insts_saved_total", "Warmup instructions elided by warm-start snapshot sharing.", ss.WarmInstsSaved)
	counter("spbd_sample_runs_total", "Completed runs that used SMARTS sampling.", ss.SampledRuns)
	counter("spbd_sample_intervals_total", "Detailed measurement intervals executed by sampled runs.", ss.SampleIntervals)
	counter("spbd_sample_insts_skipped_total", "Instructions functionally warmed instead of detailed-simulated by sampling.", ss.SampleInstsSkipped)
	counter("spbd_checkpoint_writes_total", "Mid-run checkpoints written to disk.", ss.CheckpointWrites)
	counter("spbd_checkpoint_resumes_total", "Runs resumed from an on-disk checkpoint instead of from scratch.", ss.CheckpointResumes)
	counter("spbd_checkpoint_corrupt_total", "Invalid checkpoint files quarantined (the run restarted from scratch).", ss.CheckpointCorrupt)

	fmt.Fprintf(w, "# HELP spbd_topdown_cycles_total Simulated cycles aggregated over completed runs, by Top-Down stall class.\n")
	fmt.Fprintf(w, "# TYPE spbd_topdown_cycles_total counter\n")
	fmt.Fprintf(w, "spbd_topdown_cycles_total{class=\"all\"} %d\n", m.TDCycles.Load())
	fmt.Fprintf(w, "spbd_topdown_cycles_total{class=\"sb_stall\"} %d\n", m.TDSBStall.Load())
	fmt.Fprintf(w, "spbd_topdown_cycles_total{class=\"other_stall\"} %d\n", m.TDOtherStall.Load())
	fmt.Fprintf(w, "spbd_topdown_cycles_total{class=\"frontend_stall\"} %d\n", m.TDFrontendStall.Load())
	fmt.Fprintf(w, "spbd_topdown_cycles_total{class=\"exec_l1d_pending\"} %d\n", m.TDExecL1DStall.Load())
	counter("spbd_topdown_sb_bound_runs_total", "Completed runs exceeding the paper's 2% SB-stall criterion.", m.TDSBBoundRuns.Load())

	hist := func(name, help string, h *obs.Histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		h.WriteProm(w, name, "")
	}
	hist("spbd_queue_wait_seconds", "Time jobs spent waiting for a worker.", &m.QueueWait)
	hist("spbd_run_duration_seconds", "Simulation execution time per job.", &m.RunDuration)
	hist("spbd_store_read_seconds", "Disk cache tier lookup latency.", &m.StoreRead)
	hist("spbd_store_write_seconds", "Disk cache tier persist latency.", &m.StoreWrite)
	hist("spbd_batch_stream_seconds", "Batch submission to terminal NDJSON line, per spec.", &m.BatchStream)

	m.mu.Lock()
	eps := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	hists := make([]*obs.Histogram, len(eps))
	for i, ep := range eps {
		hists[i] = m.endpoints[ep]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP spbd_http_request_duration_seconds HTTP request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE spbd_http_request_duration_seconds histogram\n")
	for i, ep := range eps {
		hists[i].WriteProm(w, "spbd_http_request_duration_seconds", fmt.Sprintf("endpoint=%q", ep))
	}
}
