package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics holds spbd's operational counters, exported at GET /metrics in
// Prometheus text format. Hand-rolled (the repo takes no dependencies): the
// counters are plain atomics bumped on the request path, and the text
// rendering walks them under a snapshot. Gauges (queue depth, in-flight
// runs) are read live from the server at scrape time.
type Metrics struct {
	CacheHitsMemory  atomic.Uint64
	CacheHitsDisk    atomic.Uint64
	CacheMisses      atomic.Uint64
	RunsCoalesced    atomic.Uint64
	RunsCompleted    atomic.Uint64
	RunsFailed       atomic.Uint64
	RunsCancelled    atomic.Uint64
	QueueRejected    atomic.Uint64
	SSESubscribers   atomic.Int64
	DiskStoreErrors  atomic.Uint64
	StoreCorrupt     atomic.Uint64 // quarantined disk cache entries
	ProgressSnapshot atomic.Uint64 // progress callbacks delivered
	BatchRequests    atomic.Uint64
	BatchSpecs       atomic.Uint64 // specs received across all batch requests

	mu         sync.Mutex
	histograms map[string]*histogram
}

// latencyBuckets are the per-endpoint latency histogram upper bounds in
// seconds. Simulations take milliseconds to minutes, cache hits take
// microseconds; the range covers both.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket cumulative histogram. counts[i] is the number
// of observations ≤ latencyBuckets[i]; inf and sum complete the Prometheus
// triple.
type histogram struct {
	counts []atomic.Uint64 // one per latencyBuckets entry
	inf    atomic.Uint64
	sumNS  atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
		}
	}
	h.inf.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{histograms: make(map[string]*histogram)}
}

// ObserveLatency records one request duration under the endpoint label
// (the route pattern, e.g. "POST /v1/runs").
func (m *Metrics) ObserveLatency(endpoint string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.histograms[endpoint]
	if !ok {
		h = &histogram{counts: make([]atomic.Uint64, len(latencyBuckets))}
		m.histograms[endpoint] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// WriteText renders every metric in Prometheus exposition format. The
// queueDepth, inflight and degraded callbacks supply the live gauges.
func (m *Metrics) WriteText(w io.Writer, queueDepth, inflight func() int, degraded func() bool) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("spbd_queue_depth", "Jobs waiting in the FIFO queue.", int64(queueDepth()))
	gauge("spbd_inflight_runs", "Simulations currently executing.", int64(inflight()))
	gauge("spbd_sse_subscribers", "Open SSE progress streams.", m.SSESubscribers.Load())
	var deg int64
	if degraded() {
		deg = 1
	}
	gauge("spbd_store_degraded", "1 while the disk tier is in degraded memory-only mode.", deg)

	fmt.Fprintf(w, "# HELP spbd_cache_hits_total Run requests answered from cache, by tier.\n")
	fmt.Fprintf(w, "# TYPE spbd_cache_hits_total counter\n")
	fmt.Fprintf(w, "spbd_cache_hits_total{tier=\"memory\"} %d\n", m.CacheHitsMemory.Load())
	fmt.Fprintf(w, "spbd_cache_hits_total{tier=\"disk\"} %d\n", m.CacheHitsDisk.Load())
	counter("spbd_cache_misses_total", "Run requests that had to simulate.", m.CacheMisses.Load())
	counter("spbd_runs_coalesced_total", "Submissions deduplicated onto an active identical job.", m.RunsCoalesced.Load())
	counter("spbd_runs_completed_total", "Jobs that finished successfully.", m.RunsCompleted.Load())
	counter("spbd_runs_failed_total", "Jobs that ended in a simulation error.", m.RunsFailed.Load())
	counter("spbd_runs_cancelled_total", "Jobs stopped by cancellation or timeout.", m.RunsCancelled.Load())
	counter("spbd_queue_rejected_total", "Submissions rejected with 429 because the queue was full.", m.QueueRejected.Load())
	counter("spbd_disk_store_errors_total", "Disk cache tier read/write failures.", m.DiskStoreErrors.Load())
	counter("spbd_store_corrupt_total", "Corrupt disk cache entries quarantined and recomputed.", m.StoreCorrupt.Load())
	counter("spbd_progress_snapshots_total", "Progress callbacks delivered by running simulations.", m.ProgressSnapshot.Load())
	counter("spbd_batch_requests_total", "Batch sweep requests accepted.", m.BatchRequests.Load())
	counter("spbd_batch_specs_total", "Specs received across all batch requests.", m.BatchSpecs.Load())

	m.mu.Lock()
	endpoints := make([]string, 0, len(m.histograms))
	for ep := range m.histograms {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	hists := make([]*histogram, len(endpoints))
	for i, ep := range endpoints {
		hists[i] = m.histograms[ep]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP spbd_http_request_duration_seconds HTTP request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE spbd_http_request_duration_seconds histogram\n")
	for i, ep := range endpoints {
		h := hists[i]
		for j, ub := range latencyBuckets {
			fmt.Fprintf(w, "spbd_http_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n",
				ep, ub, h.counts[j].Load())
		}
		fmt.Fprintf(w, "spbd_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.inf.Load())
		fmt.Fprintf(w, "spbd_http_request_duration_seconds_sum{endpoint=%q} %g\n",
			ep, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "spbd_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.inf.Load())
	}
}
