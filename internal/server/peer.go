package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"time"

	"spb/internal/cluster"
	"spb/internal/sim"
)

// This file is spbd's side of the cluster protocols: the cluster.Backend
// implementation (load reporting, steal handoff, peer cache reads, stolen
// execution) and the handler mounts. The cluster.Node stays ignorant of
// jobs, tenants and traces; everything daemon-shaped lives here.

// stolenHandoff tracks one job whose ownership moved to a thief peer. The
// job stays in s.jobs (clients still poll it by id) and in s.active (late
// duplicate submissions coalesce onto it), but it is no longer in the local
// queue — the thief runs it and posts the result back. at drives the
// reclaim deadline.
//
// s.stolen keys handoffs by a fresh random token, not the job id: client-
// facing ids are sequential and guessable, and the completion token is the
// only proof a steal/complete caller actually received the handoff — a
// forged completion with a guessed id must not be able to inject results.
type stolenHandoff struct {
	j  *job
	at time.Time
}

// stealToken mints an unguessable handoff completion token.
func stealToken() string {
	var b [16]byte
	// crypto/rand.Read never returns an error (it panics on a broken
	// randomness source rather than degrade).
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// AttachCluster mounts n's protocol endpoints on the server's mux and wires
// the peer read-through into the submit path. Must be called before the
// server starts serving requests.
func (s *Server) AttachCluster(n *cluster.Node) {
	s.cluster = n
	s.mux.HandleFunc("POST /v1/cluster/gossip", n.HandleGossip)
	s.mux.HandleFunc("GET /v1/cluster/members", n.HandleMembers)
	s.mux.HandleFunc("POST /v1/cluster/steal", n.HandleSteal)
	s.mux.HandleFunc("POST /v1/cluster/steal/complete", n.HandleStealComplete)
	s.mux.HandleFunc("GET /v1/peer/results/{key}", n.HandlePeerRead)
}

// Cluster reports the attached node (nil on a standalone daemon).
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// Load implements cluster.Backend: the node gossips this on every round.
func (s *Server) Load() cluster.Load {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return cluster.Load{
		Queue:    s.tq.len(),
		Inflight: int(s.inflight.Load()),
		Workers:  s.cfg.Workers,
		Draining: draining,
	}
}

// StealJobs implements cluster.Backend: pop up to max queued jobs into the
// handoff table. Ownership transfers here — the popped jobs can no longer be
// taken by a local worker, so exactly-once holds by construction; the
// reclaim janitor is the only way back.
func (s *Server) StealJobs(max int) []cluster.StolenJob {
	var out []cluster.StolenJob
	for len(out) < max {
		j := s.tq.steal()
		if j == nil {
			break
		}
		if j.ctx.Err() != nil { // cancelled while queued: finalize, don't export
			if j.finish(StatusCancelled, sim.Result{}, nil, cancelMsg(j.ctx)) {
				s.metrics.RunsCancelled.Add(1)
			}
			s.clearActive(j)
			continue
		}
		j.setRunning() // remotely, but running: SSE/status views stay truthful
		s.journalStarted(j)
		j.trace.Event("steal-out")
		tok := stealToken()
		s.mu.Lock()
		s.stolen[tok] = &stolenHandoff{j: j, at: time.Now()}
		s.mu.Unlock()
		s.metrics.StealsOut.Add(1)
		out = append(out, cluster.StolenJob{ID: tok, Key: j.key, Spec: j.spec})
	}
	return out
}

// CompleteStolen implements cluster.Backend: a thief delivering a stolen
// job's terminal result. False means the handoff is unknown (reclaimed or
// duplicate delivery) and the caller should not retry.
func (s *Server) CompleteStolen(id string, res sim.Result, errMsg string) bool {
	s.mu.Lock()
	h, ok := s.stolen[id]
	if ok {
		delete(s.stolen, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	j := h.j
	defer s.clearActive(j)
	defer j.trace.Finish()
	j.trace.Span("remote-run", h.at, time.Now())
	if errMsg != "" {
		if j.finish(StatusFailed, sim.Result{}, nil, errMsg) {
			s.metrics.RunsFailed.Add(1)
		}
		return true
	}
	stats, err := res.StatsJSON()
	if err != nil {
		if j.finish(StatusFailed, sim.Result{}, nil, err.Error()) {
			s.metrics.RunsFailed.Add(1)
		}
		return true
	}
	// Seed both local tiers: the thief simulated it, but this daemon owns
	// the job — its future submitters must hit, not re-simulate.
	s.runner.Put(j.spec, res)
	j.committed.Store(resultCommitted(&res))
	j.cycles.Store(res.CPU.Cycles)
	if j.finish(StatusDone, res, stats, "") {
		s.metrics.RunsCompleted.Add(1)
		s.metrics.ObserveTopDown(&res.CPU)
	}
	s.persist(j, res)
	return true
}

// ReclaimStolen implements cluster.Backend: take back handoffs whose thief
// has been silent past the deadline. Reclaimed jobs re-enter the local
// queue; if it is momentarily full they stay in the handoff table for the
// next janitor pass rather than being dropped.
func (s *Server) ReclaimStolen(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	type reclaim struct {
		tok string
		j   *job
	}
	s.mu.Lock()
	var back []reclaim
	for tok, h := range s.stolen {
		if h.at.Before(cutoff) {
			delete(s.stolen, tok)
			back = append(back, reclaim{tok, h.j})
		}
	}
	s.mu.Unlock()
	reclaimed := 0
	for _, r := range back {
		j := r.j
		if j.ctx.Err() != nil {
			if j.finish(StatusCancelled, sim.Result{}, nil, cancelMsg(j.ctx)) {
				s.metrics.RunsCancelled.Add(1)
			}
			s.clearActive(j)
			continue
		}
		j.trace.Event("steal-reclaim")
		switch err := s.tq.push(j); err {
		case nil:
			s.metrics.StealsReclaimed.Add(1)
			reclaimed++
		case errDraining:
			if j.finish(StatusCancelled, sim.Result{}, nil, errDraining.Error()) {
				s.metrics.RunsCancelled.Add(1)
			}
			s.clearActive(j)
		default: // queue full right now: park it for the next pass
			// Under the original token: a thief's very late completion
			// can still land while the job is parked, saving a re-run.
			s.mu.Lock()
			s.stolen[r.tok] = &stolenHandoff{j: j, at: time.Now()}
			s.mu.Unlock()
		}
	}
	return reclaimed
}

// ReadLocal implements cluster.Backend: serve a peer's read-through from the
// local disk tier only. Never simulates, never consults peers — recursion
// ends here.
func (s *Server) ReadLocal(key string) (sim.Result, bool) {
	if !s.diskUsable() {
		return sim.Result{}, false
	}
	res, ok, err := s.store.Get(key)
	if err != nil || !ok {
		return sim.Result{}, false
	}
	s.metrics.PeerServed.Add(1)
	return res, true
}

// RunStolen implements cluster.Backend: execute a stolen spec on this node.
// It deliberately bypasses the admission queue — stolen work is bounded by
// the thief's free worker capacity at steal time, already has an owner
// (the victim's clients), and must not be re-stealable or quota-rejected.
// Cache tiers are consulted first, so stealing a point this node has seen
// costs a map lookup.
func (s *Server) RunStolen(ctx context.Context, spec sim.RunSpec) (sim.Result, error) {
	spec = spec.Normalized()
	key := Key(spec)
	s.metrics.StealsIn.Add(1)
	if res, ok := s.runner.Lookup(spec); ok {
		return res, nil
	}
	if s.diskUsable() {
		res, ok, err := s.store.Get(key)
		switch {
		case err != nil:
			s.diskError("read", key, err)
		case ok:
			s.diskHealthy()
			s.runner.Put(spec, res)
			return res, nil
		default:
			s.diskHealthy()
		}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	res, err := s.runner.GetCtx(ctx, spec, func(sim.Progress) {})
	if err != nil {
		return sim.Result{}, err
	}
	if s.diskUsable() {
		if perr := s.store.Put(key, res); perr != nil {
			s.diskError("write", key, perr)
		} else {
			s.diskHealthy()
		}
	}
	return res, nil
}

// clearActive removes j from the active-by-key map if it still owns its key.
func (s *Server) clearActive(j *job) {
	s.mu.Lock()
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.mu.Unlock()
}

// persist writes a finished job's result to the disk tier (shared by the
// local worker path and the stolen-completion path).
func (s *Server) persist(j *job, res sim.Result) {
	if !s.diskUsable() {
		return
	}
	writeStart := time.Now()
	perr := s.store.Put(j.key, res)
	writeEnd := time.Now()
	j.trace.Span("store-write", writeStart, writeEnd)
	s.metrics.StoreWrite.Observe(writeEnd.Sub(writeStart))
	if perr != nil {
		s.diskError("write", j.key, perr)
	} else {
		s.diskHealthy()
	}
}

// peerMissTTL is how long a fleet-wide miss for a key suppresses further
// peer probes for it. Sized to cover many batchQueuePoll retry iterations
// while staying well under a simulation's life: the fleet can only gain a
// copy of a key somebody is about to simulate locally anyway.
const peerMissTTL = time.Second

// peerMissCap bounds the negative cache; crossing it sweeps expired
// entries on the next insert.
const peerMissCap = 4096

// fetchFromPeers is submit's read-through: after both local tiers miss, ask
// the fleet. A hit seeds both local tiers and becomes a terminal job with
// cache tier "peer"; a fleet-wide miss is remembered for peerMissTTL so
// dispatch retry loops (queue full, quota) don't re-probe the fleet on
// every poll.
func (s *Server) fetchFromPeers(key string, spec sim.RunSpec, traceID string, submitStart time.Time) (*job, bool) {
	if s.cluster == nil {
		return nil, false
	}
	now := time.Now()
	s.mu.Lock()
	at, seen := s.peerMiss[key]
	if seen && now.Sub(at) < peerMissTTL {
		s.mu.Unlock()
		return nil, false
	}
	if seen {
		delete(s.peerMiss, key)
	}
	s.mu.Unlock()
	res, from, ok := s.cluster.FetchPeer(key)
	if !ok {
		s.metrics.PeerMisses.Add(1)
		s.notePeerMiss(key, now)
		return nil, false
	}
	s.metrics.PeerHits.Add(1)
	s.cfg.Logf("spbd: peer cache hit %.12s from %s", key, from)
	s.runner.Put(spec, res)
	if s.diskUsable() {
		if perr := s.store.Put(key, res); perr != nil {
			s.diskError("write", key, perr)
		} else {
			s.diskHealthy()
		}
	}
	j, err := s.completedJob(key, spec, res, "peer", traceID, submitStart)
	if err != nil {
		return nil, false
	}
	return j, true
}

// notePeerMiss records a fleet-wide miss for key, sweeping expired entries
// when the cache is over its cap.
func (s *Server) notePeerMiss(key string, at time.Time) {
	s.mu.Lock()
	if len(s.peerMiss) >= peerMissCap {
		for k, t := range s.peerMiss {
			if at.Sub(t) >= peerMissTTL {
				delete(s.peerMiss, k)
			}
		}
	}
	s.peerMiss[key] = at
	s.mu.Unlock()
}

// Compile-time check: the server is the cluster's backend.
var _ cluster.Backend = (*Server)(nil)
