package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spb/internal/cluster"
	"spb/internal/faults"
	"spb/internal/obs"
	"spb/internal/sim"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of simulations executed concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO of jobs waiting for a worker; submissions
	// beyond it are rejected with 429 + Retry-After (default: 64).
	QueueDepth int
	// CacheDir roots the on-disk result store; empty disables the disk tier.
	CacheDir string
	// RunTimeout caps a single simulation's execution; 0 means no cap.
	RunTimeout time.Duration
	// SSEInterval is the progress-event period on /events streams
	// (default: 250ms).
	SSEInterval time.Duration
	// SSEHeartbeat is the period of comment-line heartbeats on /events
	// streams, keeping idle connections alive through proxies (default: 15s).
	SSEHeartbeat time.Duration
	// Tracer, when set, records a per-phase span timeline for every job,
	// retrievable at GET /v1/runs/{id}/trace. Nil disables tracing at zero
	// cost (every per-job trace handle is nil and all span calls no-op).
	Tracer *obs.Tracer
	// Faults, when set, injects failures at the server's sites ("submit",
	// "run", "store.read", "store.write", "batch.stream"). Nil disables
	// injection at zero cost.
	Faults *faults.Injector
	// DiskErrorThreshold is how many *consecutive* disk-tier I/O errors put
	// the store into degraded memory-only mode (default: 5).
	DiskErrorThreshold int
	// DiskRetryInterval is how often a degraded disk tier is re-probed with
	// one real operation (default: 5s). A success leaves degraded mode.
	DiskRetryInterval time.Duration
	// DisableWarmStart turns off the runner's warm-start fork engine, so
	// every warmed spec simulates its own warmup prefix in place. Results
	// are byte-identical either way; this is the operational escape hatch
	// (also reachable via SPB_WARMSTART=0).
	DisableWarmStart bool
	// JournalPath is the durable job journal (journal.go): accepted,
	// started and terminal transitions are appended as checksummed NDJSON
	// and replayed on startup, so queued and running jobs survive a crash
	// (kill -9 included) under their original IDs. Empty disables.
	JournalPath string
	// CheckpointDir roots on-disk mid-run checkpoints: long simulations
	// periodically serialize their state so a restarted daemon resumes from
	// the last checkpoint instead of from scratch, with byte-identical
	// results. Empty disables.
	CheckpointDir string
	// CheckpointInsts is the checkpoint cadence in committed instructions
	// per core (default: 10M). Only meaningful with CheckpointDir.
	CheckpointInsts uint64
	// DisableSync turns off fsync on disk-store, journal and checkpoint
	// writes. The default (false) pays one fsync per durable write — the
	// discipline that makes "survives kill -9" a property of the filesystem
	// rather than of luck. Disable only for throwaway test daemons.
	DisableSync bool
	// Tenants declares the multi-tenant API keys, weights, priority lanes
	// and quotas (tenant.go). Empty means single-tenant: no key required,
	// everything runs as the implicit "default" tenant.
	Tenants []TenantConfig
	// Logf receives operational log lines (default: log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SSEInterval <= 0 {
		c.SSEInterval = 250 * time.Millisecond
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.DiskErrorThreshold <= 0 {
		c.DiskErrorThreshold = 5
	}
	if c.DiskRetryInterval <= 0 {
		c.DiskRetryInterval = 5 * time.Second
	}
	if c.CheckpointInsts == 0 {
		c.CheckpointInsts = 10_000_000
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Terminal reports whether the status is final (done, failed or cancelled);
// batch-stream consumers filter on it.
func (s Status) Terminal() bool { return s.terminal() }

// job is one accepted simulation request.
type job struct {
	id        string
	key       string
	spec      sim.RunSpec
	submitted time.Time
	trace     *obs.Trace // nil when tracing is disabled; all methods no-op

	// Tenant scheduling state. tenant is always non-nil (the implicit
	// default tenant on single-tenant daemons); cost is the spec's work
	// estimate under the runner's warm-start setting; lane is the strict
	// priority lane; vfinish/seq are stamped by tenantQueue.push (guarded
	// by its mutex). onTerminal, when set, runs exactly once as the job
	// reaches a terminal state — it returns the tenant's quota slot.
	tenant     *tenantState
	cost       float64
	lane       int
	vfinish    float64
	seq        uint64
	onTerminal func()
	// onFinish, when set, observes the terminal status exactly once from
	// inside finish — the single hook behind the journal's terminal records
	// (every finish call site, worker, cancel, drain, steal, is covered).
	onFinish func(Status)

	// journaled marks jobs with an "accepted" record in the job journal;
	// only those append started/terminal records. Set before the job is
	// published to workers. recovered marks jobs re-admitted from the
	// journal after a restart (surfaced in the job view).
	journaled bool
	recovered bool

	ctx    context.Context
	cancel context.CancelCauseFunc

	// Progress, written by the simulating goroutine, read by SSE streams
	// and status requests. ffInsts counts functionally-warmed instructions
	// (warmup prefix + sampling skips), kept apart from committed so sampled
	// runs report honest detailed progress.
	committed   atomic.Uint64
	cycles      atomic.Uint64
	ffInsts     atomic.Uint64
	targetInsts uint64

	// waiters counts parties whose interest keeps the job alive: the
	// asynchronous submitter pins it forever (they may poll later); a
	// synchronous (?wait=1) submitter releases on disconnect, and when the
	// count reaches zero the job is cancelled — abandoned requests stop
	// simulating.
	waiters atomic.Int64

	done chan struct{} // closed when terminal

	mu     sync.Mutex
	status Status
	result sim.Result
	stats  json.RawMessage
	errMsg string
	cached string // "", "memory" or "disk"
}

// finish moves the job to a terminal state exactly once; later calls are
// no-ops returning false (a cancel handler and the worker can race here).
func (j *job) finish(st Status, res sim.Result, stats json.RawMessage, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return false
	}
	j.status = st
	j.result = res
	j.stats = stats
	j.errMsg = errMsg
	close(j.done)
	if j.onTerminal != nil {
		j.onTerminal()
		j.onTerminal = nil
	}
	if j.onFinish != nil {
		j.onFinish(st)
		j.onFinish = nil
	}
	return true
}

func (j *job) setRunning() {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusRunning
	}
	j.mu.Unlock()
}

func (j *job) release() int64 { return j.waiters.Add(-1) }
func (j *job) retain()        { j.waiters.Add(1) }

// Server is the spbd daemon: HTTP API + queue + worker pool + 2-tier cache.
type Server struct {
	cfg     Config
	runner  *sim.Runner
	store   *DiskStore // nil when the disk tier is disabled
	journal *journal   // nil when the job journal is disabled
	metrics *Metrics
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	mu       sync.Mutex
	jobs     map[string]*job // every job ever accepted, by id
	active   map[string]*job // queued or running jobs, by spec key
	stolen   map[string]*stolenHandoff
	tq       *tenantQueue
	inflight atomic.Int64
	draining bool
	nextID   atomic.Uint64

	// Multi-tenancy (tenant.go): tenants maps API key → state,
	// defaultTenant serves keyless single-tenant traffic, tenantList is
	// the stable metrics/render order.
	tenants       map[string]*tenantState
	defaultTenant *tenantState
	tenantList    []*tenantState

	// cluster is the attached fleet node (AttachCluster); nil standalone.
	cluster *cluster.Node
	// peerMiss remembers keys whose last fleet read-through found nothing
	// (by miss time, guarded by mu): retry loops hammering submit for a
	// queue-full/quota-rejected key skip re-probing peers until the TTL
	// passes. Entries are dropped on expiry, on a later hit, and by the
	// size-capped sweep in notePeerMiss.
	peerMiss map[string]time.Time

	// Degraded-mode bookkeeping for the disk tier: diskErrStreak counts
	// consecutive I/O errors; crossing DiskErrorThreshold sets degraded and
	// the tier goes memory-only except for one probe per DiskRetryInterval
	// (diskProbeAt, unix nanos). Any successful operation clears the streak
	// and leaves degraded mode.
	diskErrStreak atomic.Int64
	degraded      atomic.Bool
	diskProbeAt   atomic.Int64

	workers sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  sim.NewRunner(),
		metrics: NewMetrics(),
		jobs:    make(map[string]*job),
		active:  make(map[string]*job),
		stolen:  make(map[string]*stolenHandoff),
		tq:      newTenantQueue(cfg.QueueDepth),

		peerMiss: make(map[string]time.Time),
	}
	if err := s.initTenants(cfg.Tenants); err != nil {
		return nil, err
	}
	if cfg.DisableWarmStart {
		s.runner.SetWarmStart(false)
	}
	if cfg.CacheDir != "" {
		store, err := OpenDiskStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		store.Faults = cfg.Faults
		store.Sync = !cfg.DisableSync
		store.OnCorrupt = func(key string, cause error) {
			s.metrics.StoreCorrupt.Add(1)
			s.cfg.Logf("spbd: disk cache entry %.12s quarantined: %v (will recompute)", key, cause)
		}
		s.store = store
		s.sweepTemps(cfg.CacheDir)
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: checkpoint dir: %w", err)
		}
		s.sweepTemps(cfg.CheckpointDir)
		s.runner.SetCheckpointPolicy(sim.CheckpointPolicy{
			Dir:   cfg.CheckpointDir,
			Insts: cfg.CheckpointInsts,
			Sync:  !cfg.DisableSync,
			KeyOf: Key,
		})
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.routes()
	// The journal replays before the worker pool starts: re-admitted jobs
	// are back in the queue (and in s.jobs under their original IDs) before
	// anything can race them. In cluster mode this also precedes
	// AttachCluster/Start (main wires the node after New returns), so a
	// restarted node always recovers its own journal first; jobs it had
	// stolen from peers are not journaled here — the victims reclaim those
	// through the existing steal-timeout janitor.
	if cfg.JournalPath != "" {
		s.sweepTemps(filepath.Dir(cfg.JournalPath))
		jl, recovered, err := openJournal(cfg.JournalPath, !cfg.DisableSync, func(err error) {
			s.metrics.JournalErrors.Add(1)
			s.cfg.Logf("spbd: journal write failed: %v (job continues, less durable)", err)
		})
		if err != nil {
			return nil, err
		}
		s.journal = jl
		s.recoverJournal(recovered)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// sweepTemps removes orphaned atomic-write temp files under dir — debris a
// crashed writer left between CreateTemp and rename.
func (s *Server) sweepTemps(dir string) {
	if n := sweepOrphanTemps(dir); n > 0 {
		s.metrics.OrphanTempsSwept.Add(uint64(n))
		s.cfg.Logf("spbd: swept %d orphaned temp file(s) under %s", n, dir)
	}
}

// Runner exposes the in-memory tier (tests assert on its run count).
func (s *Server) Runner() *sim.Runner { return s.runner }

// Metrics exposes the metrics registry (tests and the /metrics handler).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Sentinel submission errors, mapped to HTTP statuses by the handler.
var (
	errQueueFull = errors.New("server: queue full")
	errDraining  = errors.New("server: draining, not accepting jobs")
)

// submit resolves a normalized spec against the cache tiers (memory, disk,
// then cluster peers) or places it on the tenant-aware queue. It returns the
// job (fresh, coalesced, or already-complete from cache) — never both a job
// and an error. traceID, usually propagated from the client's X-Spb-Trace-Id
// header, groups the job's trace with the caller's; empty mints a fresh ID
// (when tracing is enabled). tn is the submitting tenant (nil means the
// implicit default tenant): cache hits and coalesces are free, only a fresh
// enqueue consumes its quota.
func (s *Server) submit(spec sim.RunSpec, traceID string, tn *tenantState) (*job, error) {
	submitStart := time.Now()
	if err := s.cfg.Faults.Err("submit"); err != nil {
		return nil, err
	}
	if tn == nil {
		tn = s.defaultTenant
	}
	spec = spec.Normalized()
	key := Key(spec)

	// Tier 1: memory (the Runner's memoization map).
	if res, ok := s.runner.Lookup(spec); ok {
		s.metrics.CacheHitsMemory.Add(1)
		return s.completedJob(key, spec, res, "memory", traceID, submitStart)
	}
	// Tier 2: content-addressed disk store; hits re-seed the memory tier.
	// In degraded mode the tier is skipped except for one probe per
	// DiskRetryInterval.
	if s.diskUsable() {
		readStart := time.Now()
		res, ok, err := s.store.Get(key)
		s.metrics.StoreRead.Observe(time.Since(readStart))
		switch {
		case err != nil:
			s.diskError("read", key, err)
		case ok:
			s.diskHealthy()
			s.runner.Put(spec, res)
			s.metrics.CacheHitsDisk.Add(1)
			return s.completedJob(key, spec, res, "disk", traceID, submitStart)
		default:
			s.diskHealthy()
		}
	}
	// Coalesce before consulting the fleet: a key already queued or running
	// here is by definition a local-tier miss, so every duplicate
	// submission would otherwise pay PeerFanout network probes just to
	// re-discover that — and batch dispatch retry loops re-enter submit
	// every poll. Ride the active job instead; its result lands locally.
	s.mu.Lock()
	if j, ok := s.active[key]; ok {
		s.mu.Unlock()
		s.metrics.RunsCoalesced.Add(1)
		j.trace.Event("coalesce")
		return j, nil
	}
	s.mu.Unlock()

	// Tier 3: the fleet. Both local tiers missed; a rendezvous-ranked peer
	// may have simulated this key already (content addressing makes any
	// answer the right answer).
	if j, ok := s.fetchFromPeers(key, spec, traceID, submitStart); ok {
		return j, nil
	}

	// A genuine miss is about to consume a quota slot; the slot is
	// released if the submission coalesces or is rejected below, and
	// otherwise returned by the job's onTerminal hook.
	if !tn.acquire() {
		tn.rejected.Add(1)
		s.metrics.QuotaRejected.Add(1)
		return nil, errQuota
	}
	s.mu.Lock()
	if j, ok := s.active[key]; ok {
		s.mu.Unlock()
		tn.release()
		s.metrics.RunsCoalesced.Add(1)
		// The coalesced submitter rides the active job's trace; the marker
		// records that a second request folded in (and when).
		j.trace.Event("coalesce")
		return j, nil
	}
	if s.draining {
		s.mu.Unlock()
		tn.release()
		return nil, errDraining
	}
	j := s.newJobLocked(key, spec, tn)
	// The terminal hook returns the quota slot; it must be in place before
	// the push makes the job visible to workers (a worker can finish it
	// before submit resumes). Likewise the journal's terminal hook: a
	// worker may finish the job before submit appends "accepted" — replay
	// tolerates that order (terminal records win unconditionally).
	j.onTerminal = tn.finishJob
	s.hookJournal(j)
	// Attach the trace before the job becomes visible to workers via the
	// queue; assigning after the push would race with runJob.
	j.trace = s.cfg.Tracer.Start(traceID, j.id, key)
	j.trace.Span("submit", submitStart, time.Now())
	if err := s.tq.push(j); err != nil {
		s.mu.Unlock()
		tn.release()
		j.onTerminal = nil
		j.onFinish = nil
		j.journaled = false
		if errors.Is(err, errQueueFull) {
			s.metrics.QueueRejected.Add(1)
		}
		j.trace.Finish() // rejected: close out the orphan trace
		return nil, err
	}
	s.jobs[j.id] = j
	s.active[key] = j
	s.mu.Unlock()
	// Durable acceptance: the record (with an fsync unless disabled) is on
	// disk before the submitter is answered, so a post-202 crash cannot
	// forget the job.
	if j.journaled {
		s.journal.accepted(j.id, key, tn.Name, j.trace.TraceID(), Request(spec))
	}
	tn.submitted.Add(1)
	s.metrics.CacheMisses.Add(1)
	return j, nil
}

// hookJournal marks j as journaled and installs the terminal-record hook.
// No-op on daemons without a journal.
func (s *Server) hookJournal(j *job) {
	if s.journal == nil {
		return
	}
	j.journaled = true
	j.onFinish = func(st Status) { s.journal.terminal(j.id, st) }
}

// journalStarted appends j's "started" record (local worker pickup or
// steal-out to a thief peer).
func (s *Server) journalStarted(j *job) {
	if j.journaled {
		s.journal.started(j.id)
	}
}

func (s *Server) newJobLocked(key string, spec sim.RunSpec, tn *tenantState) *job {
	id := fmt.Sprintf("r%06d-%s", s.nextID.Add(1), key[:8])
	return s.jobWithID(id, key, spec, tn)
}

// jobWithID constructs a job under an explicit ID — the recovery path
// re-admits journaled jobs under their pre-crash IDs so clients polling
// those IDs keep working across the restart.
func (s *Server) jobWithID(id, key string, spec sim.RunSpec, tn *tenantState) *job {
	if tn == nil {
		tn = s.defaultTenant
	}
	j := &job{
		id:          id,
		key:         key,
		spec:        spec,
		submitted:   time.Now(),
		targetInsts: spec.Insts * uint64(spec.Cores),
		done:        make(chan struct{}),
		status:      StatusQueued,
		tenant:      tn,
		cost:        float64(spec.CostEstimateAt(s.runner.WarmStart())),
		lane:        tn.laneIdx,
	}
	j.ctx, j.cancel = context.WithCancelCause(s.baseCtx)
	return j
}

// resultCommitted returns the detail-simulated instruction count a terminal
// job reports. For sampled runs the measured aggregate alone under-reports
// the detailed work — each window's unmeasured detailed warming commits
// instructions too — so the job view carries the full detailed count, and
// committed + ff_insts covers the spec's whole horizon (the cost-accounting
// invariant the tenant quota and dashboard sums rely on).
func resultCommitted(res *sim.Result) uint64 {
	if res.Sample.Intervals > 0 {
		return res.Sample.DetailedInsts
	}
	return res.CPU.Committed
}

// completedJob materializes a cache hit as an already-terminal job so the
// response shape (and GET /v1/runs/{id}) is uniform across hits and misses.
func (s *Server) completedJob(key string, spec sim.RunSpec, res sim.Result, tier string, traceID string, submitStart time.Time) (*job, error) {
	stats, err := res.StatsJSON()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	j := s.newJobLocked(key, spec, nil) // cache hits are quota-free
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.cached = tier
	j.committed.Store(resultCommitted(&res))
	j.ffInsts.Store(res.Sample.FastForwardInsts)
	j.cycles.Store(res.CPU.Cycles)
	j.trace = s.cfg.Tracer.Start(traceID, j.id, key)
	j.trace.Span("submit", submitStart, time.Now())
	j.trace.Event("cache-hit") // tier is in the job view's "cached" field
	j.finish(StatusDone, res, stats, "")
	j.trace.Finish()
	j.retain() // uniform with queued jobs: the submitter pins it
	return j, nil
}

// recoverJournal re-admits the journal's live jobs after a restart. Runs
// single-threaded from New, before the worker pool exists. The ID counter
// advances past every recovered sequence number first so fresh jobs can
// never collide with a recovered ID.
func (s *Server) recoverJournal(recovered []recoveredJob) {
	var maxSeq uint64
	for _, rj := range recovered {
		var seq uint64
		if _, err := fmt.Sscanf(rj.ID, "r%d-", &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
	}
	if maxSeq > s.nextID.Load() {
		s.nextID.Store(maxSeq)
	}
	wasRunning := 0
	for _, rj := range recovered {
		if rj.Started {
			wasRunning++
		}
		s.readmit(rj)
	}
	if len(recovered) > 0 {
		s.cfg.Logf("spbd: journal recovery: %d live job(s) found (%d were mid-run); requeued %d, completed from disk %d, dropped %d",
			len(recovered), wasRunning,
			s.metrics.RecoveryRequeued.Load(), s.metrics.RecoveryCompleted.Load(), s.metrics.RecoveryDropped.Load())
	}
}

// readmit re-creates one journaled job under its original ID. Three
// outcomes: answered from the disk tier (the previous process finished it
// and died before the terminal record landed), requeued to run again (a
// checkpointed run resumes mid-flight), or dropped terminal-cancelled when
// it cannot be re-admitted — the ID still resolves either way, so a client
// polling across the restart always learns its job's fate.
func (s *Server) readmit(rj recoveredJob) {
	spec, err := rj.Req.Spec()
	if err != nil {
		// Journaled after validation, so this means the binary changed
		// under the journal; nothing to re-run.
		s.journal.terminal(rj.ID, StatusFailed)
		s.metrics.RecoveryDropped.Add(1)
		s.cfg.Logf("spbd: journal recovery: dropping %s: spec no longer parses: %v", rj.ID, err)
		return
	}
	spec = spec.Normalized()
	key := Key(spec)
	tn := s.tenantByName(rj.Tenant)

	// The disk tier is the tiebreaker for "finished but the terminal record
	// never landed": serve the persisted result instead of re-running.
	if s.diskUsable() {
		if res, ok, gerr := s.store.Get(key); gerr == nil && ok {
			if stats, serr := res.StatsJSON(); serr == nil {
				s.runner.Put(spec, res)
				s.mu.Lock()
				j := s.jobWithID(rj.ID, key, spec, nil) // like cache hits: quota-free
				j.recovered = true
				s.jobs[j.id] = j
				s.mu.Unlock()
				j.cached = "disk"
				j.committed.Store(resultCommitted(&res))
				j.ffInsts.Store(res.Sample.FastForwardInsts)
				j.cycles.Store(res.CPU.Cycles)
				j.trace = s.cfg.Tracer.Start(rj.TraceID, j.id, key)
				j.trace.Event("recovered")
				j.finish(StatusDone, res, stats, "")
				j.trace.Finish()
				j.retain()
				s.journal.terminal(j.id, StatusDone)
				s.metrics.RecoveryCompleted.Add(1)
				return
			}
		}
	}

	drop := func(j *job, msg string) {
		j.onTerminal = nil
		j.finish(StatusCancelled, sim.Result{}, nil, msg)
		j.trace.Finish()
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		j.retain()
		s.metrics.RecoveryDropped.Add(1)
		s.cfg.Logf("spbd: journal recovery: dropping %s: %s", rj.ID, msg)
	}

	s.mu.Lock()
	j := s.jobWithID(rj.ID, key, spec, tn)
	j.recovered = true
	s.hookJournal(j)
	j.trace = s.cfg.Tracer.Start(rj.TraceID, j.id, key)
	j.trace.Event("recovered")
	if dup := s.active[key]; dup != nil {
		s.mu.Unlock()
		drop(j, fmt.Sprintf("recovery: duplicate of recovered job %s", dup.id))
		return
	}
	if !tn.acquire() {
		s.mu.Unlock()
		drop(j, fmt.Sprintf("recovery: tenant %q quota exhausted", tn.Name))
		return
	}
	j.onTerminal = tn.finishJob
	if err := s.tq.push(j); err != nil {
		s.mu.Unlock()
		tn.release()
		drop(j, "recovery: "+err.Error())
		return
	}
	s.jobs[j.id] = j
	s.active[key] = j
	s.mu.Unlock()
	tn.submitted.Add(1)
	j.retain() // the pre-crash submitter's pin survives the restart
	s.metrics.RecoveryRequeued.Add(1)
}

// tenantByName resolves a journaled tenant name against the current
// configuration; unknown names (the tenant was removed across the restart)
// fall back to the implicit default tenant rather than losing the job.
func (s *Server) tenantByName(name string) *tenantState {
	for _, tn := range s.tenantList {
		if tn.Name == name {
			return tn
		}
	}
	return s.defaultTenant
}

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.tq.pop()
		if !ok {
			return
		}
		s.inflight.Add(1)
		s.runJob(j)
		s.inflight.Add(-1)
	}
}

func (s *Server) runJob(j *job) {
	defer func() {
		s.mu.Lock()
		if s.active[j.key] == j {
			delete(s.active, j.key)
		}
		s.mu.Unlock()
	}()

	// The job's trace outlives this function only for batch streams (their
	// terminal write lands as a post-Finish span); every other path is
	// complete here, so the NDJSON line is emitted on return.
	defer j.trace.Finish()

	dequeued := time.Now()
	j.trace.Span("queue-wait", j.submitted, dequeued)
	s.metrics.QueueWait.Observe(dequeued.Sub(j.submitted))

	if err := j.ctx.Err(); err != nil {
		// Cancelled while still queued.
		if j.finish(StatusCancelled, sim.Result{}, nil, cancelMsg(j.ctx)) {
			s.metrics.RunsCancelled.Add(1)
		}
		return
	}
	j.setRunning()
	s.journalStarted(j)
	s.cfg.Faults.Sleep("run", j.ctx.Done())

	ctx := j.ctx
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(j.ctx, s.cfg.RunTimeout,
			fmt.Errorf("run timeout %v exceeded", s.cfg.RunTimeout))
		defer cancel()
	}

	// The trace rides the context so the simulator records its run.* phase
	// sub-spans (build/sim/collect) onto the same timeline.
	runStart := time.Now()
	res, err := s.runner.GetCtx(obs.NewContext(ctx, j.trace), j.spec, func(p sim.Progress) {
		j.committed.Store(p.Committed)
		j.cycles.Store(p.Cycles)
		j.ffInsts.Store(p.FastForwardInsts)
		s.metrics.ProgressSnapshot.Add(1)
	})
	runEnd := time.Now()
	j.trace.Span("run", runStart, runEnd)
	s.metrics.RunDuration.Observe(runEnd.Sub(runStart))
	switch {
	case err == nil:
		stats, jerr := res.StatsJSON()
		if jerr != nil {
			if j.finish(StatusFailed, sim.Result{}, nil, jerr.Error()) {
				s.metrics.RunsFailed.Add(1)
			}
			return
		}
		j.committed.Store(resultCommitted(&res))
		j.cycles.Store(res.CPU.Cycles)
		if j.finish(StatusDone, res, stats, "") {
			s.metrics.RunsCompleted.Add(1)
			s.metrics.ObserveTopDown(&res.CPU)
		}
		if s.diskUsable() {
			writeStart := time.Now()
			perr := s.store.Put(j.key, res)
			writeEnd := time.Now()
			j.trace.Span("store-write", writeStart, writeEnd)
			s.metrics.StoreWrite.Observe(writeEnd.Sub(writeStart))
			if perr != nil {
				s.diskError("write", j.key, perr)
			} else {
				s.diskHealthy()
			}
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.finish(StatusCancelled, sim.Result{}, nil, cancelMsg(ctx)) {
			s.metrics.RunsCancelled.Add(1)
		}
	default:
		if j.finish(StatusFailed, sim.Result{}, nil, err.Error()) {
			s.metrics.RunsFailed.Add(1)
		}
	}
}

// cancelMsg renders the most specific cancellation cause available.
func cancelMsg(ctx context.Context) string {
	if cause := context.Cause(ctx); cause != nil {
		return cause.Error()
	}
	return "cancelled"
}

// cancelJob cancels a job's context and, if the job is not actually
// executing anywhere — still queued locally, or handed off to a thief —
// finalizes it immediately (so it doesn't report a live status until
// somebody gets around to it). A stolen job's handoff is dropped; the
// thief's late completion is answered with "unknown handoff" and ignored.
func (s *Server) cancelJob(j *job, cause error) {
	j.cancel(cause)
	s.mu.Lock()
	stolenOut := false
	for tok, h := range s.stolen { // keyed by random token, so scan for j
		if h.j == j {
			delete(s.stolen, tok)
			stolenOut = true
			break
		}
	}
	s.mu.Unlock()
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued || stolenOut {
		if j.finish(StatusCancelled, sim.Result{}, nil, cause.Error()) {
			s.metrics.RunsCancelled.Add(1)
			j.trace.Event("cancel")
		}
		s.clearActive(j)
	}
}

// releaseWaiter drops one synchronous waiter's interest; the last one to
// leave cancels the job.
func (s *Server) releaseWaiter(j *job) {
	if j.release() <= 0 {
		s.cancelJob(j, errors.New("abandoned: every waiting client disconnected"))
	}
}

// Drain gracefully shuts the server down: new submissions are rejected with
// 503, queued and running jobs are given until ctx expires to finish (their
// results are persisted to the disk tier as they complete), and anything
// still running after that is force-cancelled. It returns nil on a clean
// drain and ctx's error if force-cancellation was needed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.tq.close()
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		// Wait out stolen handoffs too: their thieves are still computing
		// results this daemon's clients are blocked on. The cluster node is
		// already stopped by now (main stops it before Drain), so its
		// janitor no longer runs — reclaim silent thieves here, executing
		// the jobs directly since the worker pool has exited.
		var rerun sync.WaitGroup
		for ctx.Err() == nil {
			s.mu.Lock()
			n := len(s.stolen)
			s.mu.Unlock()
			for _, j := range s.reclaimOverdue() {
				rerun.Add(1)
				go func(j *job) {
					defer rerun.Done()
					s.inflight.Add(1)
					s.runJob(j)
					s.inflight.Add(-1)
				}(j)
			}
			if n == 0 {
				break
			}
			select {
			case <-time.After(20 * time.Millisecond):
			case <-ctx.Done():
			}
		}
		rerun.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		s.journal.Close() // every surviving job has its terminal record by now
		return nil
	case <-ctx.Done():
		s.baseCancel(fmt.Errorf("drain deadline exceeded: %w", context.Cause(ctx)))
		<-idle // cancellation propagates within a few thousand sim cycles
		s.failStolen(fmt.Errorf("drain deadline exceeded"))
		s.journal.Close()
		return ctx.Err()
	}
}

// reclaimOverdue takes back handoffs whose thief has been silent past the
// cluster's steal timeout and returns their jobs for the caller to execute
// directly — the drain path's stand-in for the stopped cluster janitor,
// running after the worker pool has exited. Nil without a cluster (the
// handoff table can only fill through one).
func (s *Server) reclaimOverdue() []*job {
	if s.cluster == nil {
		return nil
	}
	cutoff := time.Now().Add(-s.cluster.StealTimeout())
	s.mu.Lock()
	var back []*job
	for tok, h := range s.stolen {
		if h.at.Before(cutoff) {
			delete(s.stolen, tok)
			back = append(back, h.j)
		}
	}
	s.mu.Unlock()
	for _, j := range back {
		j.trace.Event("steal-reclaim")
		s.metrics.StealsReclaimed.Add(1)
	}
	return back
}

// failStolen finalizes every outstanding stolen handoff as cancelled (drain
// deadline: the thief's eventual completion will be answered with "unknown
// handoff" and dropped).
func (s *Server) failStolen(cause error) {
	s.mu.Lock()
	var orphans []*job
	for id, h := range s.stolen {
		delete(s.stolen, id)
		orphans = append(orphans, h.j)
	}
	s.mu.Unlock()
	for _, j := range orphans {
		if j.finish(StatusCancelled, sim.Result{}, nil, cause.Error()) {
			s.metrics.RunsCancelled.Add(1)
		}
		s.clearActive(j)
	}
}

// Close force-stops the server (tests). Prefer Drain in production.
func (s *Server) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = s.Drain(ctx)
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// QueueDepth reports jobs waiting for a worker (metrics gauge).
func (s *Server) QueueDepth() int { return s.tq.len() }

// Inflight reports simulations currently executing (metrics gauge).
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Degraded reports whether the disk tier is in memory-only mode after
// repeated I/O errors (readiness + metrics gauge).
func (s *Server) Degraded() bool { return s.degraded.Load() }

// diskUsable reports whether the disk tier should be consulted for this
// operation. A healthy tier always is; a degraded tier admits exactly one
// probe per DiskRetryInterval so recovery is noticed without hammering a
// dead disk on every request.
func (s *Server) diskUsable() bool {
	if s.store == nil {
		return false
	}
	if !s.degraded.Load() {
		return true
	}
	now := time.Now().UnixNano()
	at := s.diskProbeAt.Load()
	if now < at {
		return false
	}
	// One winner per interval gets to probe.
	return s.diskProbeAt.CompareAndSwap(at, now+s.cfg.DiskRetryInterval.Nanoseconds())
}

// diskError accounts one disk-tier I/O failure. Crossing the consecutive-
// error threshold flips the tier into degraded memory-only mode. Corrupt
// entries never land here — the store heals those itself as clean misses.
func (s *Server) diskError(op, key string, err error) {
	s.metrics.DiskStoreErrors.Add(1)
	streak := s.diskErrStreak.Add(1)
	s.cfg.Logf("spbd: disk cache %s %.12s: %v (error streak %d)", op, key, err, streak)
	if streak >= int64(s.cfg.DiskErrorThreshold) && s.degraded.CompareAndSwap(false, true) {
		s.diskProbeAt.Store(time.Now().Add(s.cfg.DiskRetryInterval).UnixNano())
		s.cfg.Logf("spbd: disk tier degraded after %d consecutive errors; memory-only until a probe succeeds", streak)
	}
}

// diskHealthy accounts one successful disk-tier operation: the error streak
// resets and a degraded tier rejoins service.
func (s *Server) diskHealthy() {
	s.diskErrStreak.Store(0)
	if s.degraded.CompareAndSwap(true, false) {
		s.cfg.Logf("spbd: disk tier recovered; leaving memory-only mode")
	}
}
