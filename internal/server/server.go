package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spb/internal/sim"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the number of simulations executed concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO of jobs waiting for a worker; submissions
	// beyond it are rejected with 429 + Retry-After (default: 64).
	QueueDepth int
	// CacheDir roots the on-disk result store; empty disables the disk tier.
	CacheDir string
	// RunTimeout caps a single simulation's execution; 0 means no cap.
	RunTimeout time.Duration
	// SSEInterval is the progress-event period on /events streams
	// (default: 250ms).
	SSEInterval time.Duration
	// Logf receives operational log lines (default: log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SSEInterval <= 0 {
		c.SSEInterval = 250 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Terminal reports whether the status is final (done, failed or cancelled);
// batch-stream consumers filter on it.
func (s Status) Terminal() bool { return s.terminal() }

// job is one accepted simulation request.
type job struct {
	id        string
	key       string
	spec      sim.RunSpec
	submitted time.Time

	ctx    context.Context
	cancel context.CancelCauseFunc

	// Progress, written by the simulating goroutine, read by SSE streams
	// and status requests.
	committed   atomic.Uint64
	cycles      atomic.Uint64
	targetInsts uint64

	// waiters counts parties whose interest keeps the job alive: the
	// asynchronous submitter pins it forever (they may poll later); a
	// synchronous (?wait=1) submitter releases on disconnect, and when the
	// count reaches zero the job is cancelled — abandoned requests stop
	// simulating.
	waiters atomic.Int64

	done chan struct{} // closed when terminal

	mu     sync.Mutex
	status Status
	result sim.Result
	stats  json.RawMessage
	errMsg string
	cached string // "", "memory" or "disk"
}

// finish moves the job to a terminal state exactly once; later calls are
// no-ops returning false (a cancel handler and the worker can race here).
func (j *job) finish(st Status, res sim.Result, stats json.RawMessage, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return false
	}
	j.status = st
	j.result = res
	j.stats = stats
	j.errMsg = errMsg
	close(j.done)
	return true
}

func (j *job) setRunning() {
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusRunning
	}
	j.mu.Unlock()
}

func (j *job) release() int64 { return j.waiters.Add(-1) }
func (j *job) retain()        { j.waiters.Add(1) }

// Server is the spbd daemon: HTTP API + queue + worker pool + 2-tier cache.
type Server struct {
	cfg     Config
	runner  *sim.Runner
	store   *DiskStore // nil when the disk tier is disabled
	metrics *Metrics
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	mu       sync.Mutex
	jobs     map[string]*job // every job ever accepted, by id
	active   map[string]*job // queued or running jobs, by spec key
	queue    chan *job
	queued   atomic.Int64
	inflight atomic.Int64
	draining bool
	nextID   atomic.Uint64

	workers sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  sim.NewRunner(),
		metrics: NewMetrics(),
		jobs:    make(map[string]*job),
		active:  make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
	}
	if cfg.CacheDir != "" {
		store, err := OpenDiskStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Runner exposes the in-memory tier (tests assert on its run count).
func (s *Server) Runner() *sim.Runner { return s.runner }

// Metrics exposes the metrics registry (tests and the /metrics handler).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Sentinel submission errors, mapped to HTTP statuses by the handler.
var (
	errQueueFull = errors.New("server: queue full")
	errDraining  = errors.New("server: draining, not accepting jobs")
)

// submit resolves a normalized spec against the cache tiers or places it on
// the queue. It returns the job (fresh, coalesced, or already-complete from
// cache) — never both a job and an error.
func (s *Server) submit(spec sim.RunSpec) (*job, error) {
	spec = spec.Normalized()
	key := Key(spec)

	// Tier 1: memory (the Runner's memoization map).
	if res, ok := s.runner.Lookup(spec); ok {
		s.metrics.CacheHitsMemory.Add(1)
		return s.completedJob(key, spec, res, "memory")
	}
	// Tier 2: content-addressed disk store; hits re-seed the memory tier.
	if s.store != nil {
		res, ok, err := s.store.Get(key)
		switch {
		case err != nil:
			s.metrics.DiskStoreErrors.Add(1)
			s.cfg.Logf("spbd: disk cache read %s: %v (falling through to run)", key[:12], err)
		case ok:
			s.runner.Put(spec, res)
			s.metrics.CacheHitsDisk.Add(1)
			return s.completedJob(key, spec, res, "disk")
		}
	}

	s.mu.Lock()
	if j, ok := s.active[key]; ok {
		s.mu.Unlock()
		s.metrics.RunsCoalesced.Add(1)
		return j, nil
	}
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	j := s.newJobLocked(key, spec)
	select {
	case s.queue <- j:
		s.queued.Add(1)
		s.jobs[j.id] = j
		s.active[key] = j
		s.mu.Unlock()
		s.metrics.CacheMisses.Add(1)
		return j, nil
	default:
		s.mu.Unlock()
		s.metrics.QueueRejected.Add(1)
		return nil, errQueueFull
	}
}

func (s *Server) newJobLocked(key string, spec sim.RunSpec) *job {
	id := fmt.Sprintf("r%06d-%s", s.nextID.Add(1), key[:8])
	j := &job{
		id:          id,
		key:         key,
		spec:        spec,
		submitted:   time.Now(),
		targetInsts: spec.Insts * uint64(spec.Cores),
		done:        make(chan struct{}),
		status:      StatusQueued,
	}
	j.ctx, j.cancel = context.WithCancelCause(s.baseCtx)
	return j
}

// completedJob materializes a cache hit as an already-terminal job so the
// response shape (and GET /v1/runs/{id}) is uniform across hits and misses.
func (s *Server) completedJob(key string, spec sim.RunSpec, res sim.Result, tier string) (*job, error) {
	stats, err := res.StatsJSON()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	j := s.newJobLocked(key, spec)
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.cached = tier
	j.committed.Store(res.CPU.Committed)
	j.cycles.Store(res.CPU.Cycles)
	j.finish(StatusDone, res, stats, "")
	j.retain() // uniform with queued jobs: the submitter pins it
	return j, nil
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.queued.Add(-1)
		s.inflight.Add(1)
		s.runJob(j)
		s.inflight.Add(-1)
	}
}

func (s *Server) runJob(j *job) {
	defer func() {
		s.mu.Lock()
		if s.active[j.key] == j {
			delete(s.active, j.key)
		}
		s.mu.Unlock()
	}()

	if err := j.ctx.Err(); err != nil {
		// Cancelled while still queued.
		if j.finish(StatusCancelled, sim.Result{}, nil, cancelMsg(j.ctx)) {
			s.metrics.RunsCancelled.Add(1)
		}
		return
	}
	j.setRunning()

	ctx := j.ctx
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(j.ctx, s.cfg.RunTimeout,
			fmt.Errorf("run timeout %v exceeded", s.cfg.RunTimeout))
		defer cancel()
	}

	res, err := s.runner.GetCtx(ctx, j.spec, func(p sim.Progress) {
		j.committed.Store(p.Committed)
		j.cycles.Store(p.Cycles)
		s.metrics.ProgressSnapshot.Add(1)
	})
	switch {
	case err == nil:
		stats, jerr := res.StatsJSON()
		if jerr != nil {
			if j.finish(StatusFailed, sim.Result{}, nil, jerr.Error()) {
				s.metrics.RunsFailed.Add(1)
			}
			return
		}
		j.committed.Store(res.CPU.Committed)
		j.cycles.Store(res.CPU.Cycles)
		if j.finish(StatusDone, res, stats, "") {
			s.metrics.RunsCompleted.Add(1)
		}
		if s.store != nil {
			if perr := s.store.Put(j.key, res); perr != nil {
				s.metrics.DiskStoreErrors.Add(1)
				s.cfg.Logf("spbd: disk cache write %s: %v", j.key[:12], perr)
			}
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.finish(StatusCancelled, sim.Result{}, nil, cancelMsg(ctx)) {
			s.metrics.RunsCancelled.Add(1)
		}
	default:
		if j.finish(StatusFailed, sim.Result{}, nil, err.Error()) {
			s.metrics.RunsFailed.Add(1)
		}
	}
}

// cancelMsg renders the most specific cancellation cause available.
func cancelMsg(ctx context.Context) string {
	if cause := context.Cause(ctx); cause != nil {
		return cause.Error()
	}
	return "cancelled"
}

// cancelJob cancels a job's context and, if the job had not started
// running, finalizes it immediately (so a queued job doesn't report
// "queued" until a worker gets around to it).
func (s *Server) cancelJob(j *job, cause error) {
	j.cancel(cause)
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		if j.finish(StatusCancelled, sim.Result{}, nil, cause.Error()) {
			s.metrics.RunsCancelled.Add(1)
		}
		s.mu.Lock()
		if s.active[j.key] == j {
			delete(s.active, j.key)
		}
		s.mu.Unlock()
	}
}

// releaseWaiter drops one synchronous waiter's interest; the last one to
// leave cancels the job.
func (s *Server) releaseWaiter(j *job) {
	if j.release() <= 0 {
		s.cancelJob(j, errors.New("abandoned: every waiting client disconnected"))
	}
}

// Drain gracefully shuts the server down: new submissions are rejected with
// 503, queued and running jobs are given until ctx expires to finish (their
// results are persisted to the disk tier as they complete), and anything
// still running after that is force-cancelled. It returns nil on a clean
// drain and ctx's error if force-cancellation was needed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.baseCancel(fmt.Errorf("drain deadline exceeded: %w", context.Cause(ctx)))
		<-idle // cancellation propagates within a few thousand sim cycles
		return ctx.Err()
	}
}

// Close force-stops the server (tests). Prefer Drain in production.
func (s *Server) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = s.Drain(ctx)
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// QueueDepth reports jobs waiting for a worker (metrics gauge).
func (s *Server) QueueDepth() int { return int(s.queued.Load()) }

// Inflight reports simulations currently executing (metrics gauge).
func (s *Server) Inflight() int { return int(s.inflight.Load()) }
