package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTenants(t *testing.T) {
	cfgs, err := ParseTenants("sweeps:sk-1:weight=4:prio=low:quota=8; ops:sk-2:prio=high ;solo:sk-3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(cfgs))
	}
	if cfgs[0].Name != "sweeps" || cfgs[0].Key != "sk-1" || cfgs[0].Weight != 4 ||
		cfgs[0].Priority != "low" || cfgs[0].MaxActive != 8 {
		t.Errorf("sweeps parsed as %+v", cfgs[0])
	}
	if cfgs[1].lane() != LaneHigh {
		t.Errorf("ops lane = %d, want high", cfgs[1].lane())
	}
	if cfgs[2].Weight != 1 || cfgs[2].lane() != LaneNormal {
		t.Errorf("solo defaults wrong: %+v", cfgs[2])
	}

	if got, err := ParseTenants(""); err != nil || got != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", got, err)
	}
	for _, bad := range []string{
		"noname",            // no key
		"a:k1;a:k2",         // duplicate name
		"a:k1;b:k1",         // duplicate key
		"a:k1:weight=0",     // weight below 1
		"a:k1:prio=urgent",  // unknown lane
		"a:k1:quota=-3",     // bad quota
		"a:k1:shininess=11", // unknown option
		"a:k1:weight",       // option without value
		":k1",               // empty name
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted, want error", bad)
		}
	}
}

func postRunWithKey(t *testing.T, ts *httptest.Server, req RunRequest, query, key string) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if key != "" {
		hr.Header.Set(TenantKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad response %s: %v", data, err)
		}
	}
	return resp, v
}

func TestTenantAuth(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, Tenants: []TenantConfig{
		{Name: "alice", Key: "ka"},
	}})

	resp, _ := postRun(t, ts, smallSpec, "?wait=1") // no key
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("keyless submit = %d, want 401", resp.StatusCode)
	}
	resp, _ = postRunWithKey(t, ts, smallSpec, "?wait=1", "wrong")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad-key submit = %d, want 401", resp.StatusCode)
	}
	resp, v := postRunWithKey(t, ts, smallSpec, "?wait=1", "ka")
	if resp.StatusCode != http.StatusOK || v.Status != StatusDone {
		t.Fatalf("good-key submit = %d (%s)", resp.StatusCode, v.Status)
	}
	if v.Tenant != "alice" {
		t.Errorf("job tenant = %q, want alice", v.Tenant)
	}

	// Bearer form works too.
	body, _ := json.Marshal(smallSpec)
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs?wait=1", bytes.NewReader(body))
	hr.Header.Set("Authorization", "Bearer ka")
	br, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusOK {
		t.Errorf("bearer submit = %d, want 200", br.StatusCode)
	}
}

func cancelRunWithKey(t *testing.T, ts *httptest.Server, id, key string) {
	t.Helper()
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs/"+id+"/cancel", nil)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set(TenantKeyHeader, key)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("keyed cancel of %s = %d", id, resp.StatusCode)
	}
}

func TestTenantQuota(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 16, Tenants: []TenantConfig{
		{Name: "capped", Key: "kc", MaxActive: 1},
	}})

	// One outstanding long job fills the quota.
	resp, v1 := postRunWithKey(t, ts, longSpec, "", "kc")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	waitStatus(t, ts, v1.ID, StatusRunning)

	over := longSpec
	over.Seed = 99
	resp, _ = postRunWithKey(t, ts, over, "", "kc")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota 429 carries no Retry-After")
	}
	if s.Metrics().QuotaRejected.Load() == 0 {
		t.Error("QuotaRejected counter did not advance")
	}

	// A keyless cancel must be refused while tenants are configured.
	kr, err := http.Post(ts.URL+"/v1/runs/"+v1.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	kr.Body.Close()
	if kr.StatusCode != http.StatusUnauthorized {
		t.Errorf("keyless cancel = %d, want 401", kr.StatusCode)
	}

	// Cancelling the job returns the slot via its terminal hook; the
	// rejected spec now fits.
	cancelRunWithKey(t, ts, v1.ID, "kc")
	var v2 JobView
	waitCluster(t, 5*time.Second, "quota slot to free", func() bool {
		r, v := postRunWithKey(t, ts, over, "", "kc")
		if r.StatusCode == http.StatusAccepted {
			v2 = v
			return true
		}
		return false
	})
	cancelRunWithKey(t, ts, v2.ID, "kc") // don't leave the long point running into cleanup
}

func TestTenantMetricsAlwaysPresent(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1}) // no tenants configured
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	text, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`spbd_tenant_weight{tenant="default"}`,
		`spbd_tenant_active{tenant="default"}`,
		`spbd_tenant_submitted_total{tenant="default"}`,
		`spbd_tenant_quota_rejected_all_total`,
		`spbd_cluster_peer_hits_total`,
		`spbd_cluster_steals_out_total`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics on a standalone daemon is missing %s", want)
		}
	}
}
