package server

import (
	"bytes"
	"strings"
	"testing"
)

// warmGrid is a miniature warmed sweep: two workloads sharing their warmup
// across policy and SQ-size knobs. Per workload the four points form one
// warmup-equivalence group, so a warm-start server simulates 2 warmups for
// 8 detailed runs.
func warmGrid() []RunRequest {
	var specs []RunRequest
	for _, wl := range []string{"bwaves", "mcf"} {
		for _, pol := range []string{"spb", "at-commit"} {
			for _, sb := range []int{14, 56} {
				specs = append(specs, RunRequest{
					Workload: wl, Policy: pol, SB: sb,
					Insts: 8_000, Warmup: 30_000,
				})
			}
		}
	}
	return specs
}

// TestBatchWarmStartEquivalence is the end-to-end half of the warm-start
// equivalence suite (DESIGN.md §12): the same warmed sweep submitted through
// spbd's batch path must return byte-identical canonical stats whether the
// server forks detailed runs from shared warm snapshots (default) or
// simulates every warmup in place (DisableWarmStart).
func TestBatchWarmStartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("warmed sweep, skipped in -short")
	}
	specs := warmGrid()

	on, tsOn := testServer(t, Config{Workers: 2})
	off, tsOff := testServer(t, Config{Workers: 2, DisableWarmStart: true})

	doneOn := terminalByIndex(t, postBatch(t, tsOn.URL, BatchRequest{Specs: specs}))
	doneOff := terminalByIndex(t, postBatch(t, tsOff.URL, BatchRequest{Specs: specs}))
	if len(doneOn) != len(specs) || len(doneOff) != len(specs) {
		t.Fatalf("terminal items: on=%d off=%d, want %d", len(doneOn), len(doneOff), len(specs))
	}
	for i := range specs {
		if doneOn[i].Status != StatusDone {
			t.Fatalf("warm-start spec %d: %s (%s)", i, doneOn[i].Status, doneOn[i].Error)
		}
		if doneOff[i].Status != StatusDone {
			t.Fatalf("in-place spec %d: %s (%s)", i, doneOff[i].Status, doneOff[i].Error)
		}
		if !bytes.Equal(doneOn[i].Stats, doneOff[i].Stats) {
			t.Errorf("spec %d (%+v): warm-start stats differ from in-place stats:\n  on:  %s\n  off: %s",
				i, specs[i], doneOn[i].Stats, doneOff[i].Stats)
		}
	}

	// Exactly-once warmup accounting: one warm per workload group, one fork
	// per point; the disabled server never touches the fork engine.
	ssOn, ssOff := on.Runner().SimStats(), off.Runner().SimStats()
	if ssOn.WarmGroups != 2 || ssOn.WarmForks != uint64(len(specs)) {
		t.Errorf("warm-start server: groups=%d forks=%d, want 2 and %d",
			ssOn.WarmGroups, ssOn.WarmForks, len(specs))
	}
	if ssOff.WarmGroups != 0 || ssOff.WarmForks != 0 || ssOff.WarmInstsSaved != 0 {
		t.Errorf("disabled server ran the fork engine: %+v", ssOff)
	}
	// Each group's warmup was elided for all forks but the first.
	wantSaved := uint64(2 * 3 * 30_000)
	if ssOn.WarmInstsSaved != wantSaved {
		t.Errorf("WarmInstsSaved = %d, want %d", ssOn.WarmInstsSaved, wantSaved)
	}

	// The fork accounting is scrapeable.
	text := metricsText(t, tsOn)
	for _, want := range []string{
		"spbd_warmstart_groups_total 2",
		"spbd_warmstart_forks_total 8",
		"spbd_sim_insts_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
