package server

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The job journal is spbd's write-ahead log of admissions: every job that
// consumes queue space appends an "accepted" record (spec, tenant, trace ID)
// before the submitter is answered, a "started" record when a worker (local
// or thief) picks it up, and exactly one terminal record when it finishes.
// On startup the journal is replayed: jobs with an accepted record but no
// terminal record were queued or running when the previous process died —
// kill -9, OOM, power loss — and are re-admitted under their original IDs so
// clients polling those IDs find their jobs again instead of a 404.
//
// The format is append-only NDJSON, one checksummed record per line. That
// shape makes crash tolerance structural rather than clever: a record is
// either a complete line with a valid self-checksum or it is ignored. A torn
// tail (the write that was in flight when the power went), a truncated file,
// a duplicated line after an aborted compaction — all degrade to "skip the
// bad line", never to a parse failure or a resurrected terminal job.
// Compaction happens on open, when there is exactly one reader and no
// writers: live accepted records are rewritten to a fresh file (atomically,
// temp + rename) and the history of finished jobs is dropped.

// journalRecord is one NDJSON line. Kind is the lifecycle edge; Key, Tenant,
// TraceID and Spec travel only on "accepted" records (the others are matched
// by ID). Sum is the hex SHA-256 of the record's own serialization with Sum
// blanked — the same self-checksum convention as the disk store's entries.
type journalRecord struct {
	Kind    string      `json:"kind"`
	ID      string      `json:"id"`
	Key     string      `json:"key,omitempty"`
	Tenant  string      `json:"tenant,omitempty"`
	TraceID string      `json:"trace_id,omitempty"`
	Spec    *RunRequest `json:"spec,omitempty"`
	Sum     string      `json:"sum,omitempty"`
}

// Record kinds. The terminal kinds deliberately mirror the Status strings so
// a journal line reads like the job view it produced.
const (
	journalAccepted = "accepted"
	journalStarted  = "started"
)

// terminalKind reports whether kind ends a job's life in the journal.
func terminalKind(kind string) bool {
	switch kind {
	case string(StatusDone), string(StatusFailed), string(StatusCancelled):
		return true
	}
	return false
}

// seal computes the record's self-checksum.
func (r journalRecord) seal() string {
	r.Sum = ""
	data, _ := json.Marshal(r) // plain fields: cannot fail
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// recoveredJob is one job the journal replay found alive: accepted by the
// previous process, never finished. Started distinguishes "was mid-run" from
// "was still queued" (both re-enter the queue; the flag feeds metrics/logs).
type recoveredJob struct {
	ID      string
	Tenant  string
	TraceID string
	Req     RunRequest
	Started bool
}

// journal is the open write-ahead log. All methods are nil-safe so call
// sites need no journaling-enabled guards.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	sync bool

	// onError observes append/sync failures (metrics + log). Journal write
	// errors never fail the job they describe — losing durability for one
	// transition is strictly better than failing live work.
	onError func(err error)
}

// maxJournalLine bounds one record; far above any real spec, far below
// anything that could OOM the replay scanner on a garbage file.
const maxJournalLine = 1 << 20

// openJournal opens (creating if needed) the journal at path, replays it,
// compacts it to only the live accepted records, and returns the journal
// ready for appending plus the live jobs in acceptance order.
func openJournal(path string, syncWrites bool, onError func(error)) (*journal, []recoveredJob, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	live, recs := replayJournal(data)

	// Compact: rewrite only the surviving accepted records, atomically. A
	// crash anywhere in here leaves either the old file or the new one —
	// both replay to the same live set.
	var buf strings.Builder
	for _, rec := range recs {
		line, merr := json.Marshal(rec)
		if merr != nil {
			continue
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, nil, fmt.Errorf("server: compact journal: %w", err)
	}
	_, werr := tmp.WriteString(buf.String())
	var serr error
	if syncWrites && werr == nil {
		serr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("server: compact journal %s: write %v, sync %v, close %v", path, werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("server: compact journal: %w", err)
	}
	if syncWrites {
		syncDir(dir)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	return &journal{f: f, path: path, sync: syncWrites, onError: onError}, live, nil
}

// replayJournal folds the raw journal bytes into the set of live jobs (in
// acceptance order) and their surviving accepted records. Tolerance is
// structural: any line that is not a complete, checksum-valid record is
// skipped. Terminal records win unconditionally — a terminal ID can never be
// resurrected by a duplicated or reordered accepted record, so replaying a
// journal mangled by torn writes or aborted compactions is at worst lossy,
// never wrong.
func replayJournal(data []byte) ([]recoveredJob, []journalRecord) {
	type state struct {
		rec     journalRecord
		started bool
	}
	liveByID := make(map[string]*state)
	terminal := make(map[string]bool)
	var order []string

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 64*1024), maxJournalLine)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // torn or garbage line
		}
		if rec.ID == "" || rec.Sum == "" || rec.Sum != rec.seal() {
			continue // incomplete or bit-rotted record
		}
		switch {
		case terminalKind(rec.Kind):
			terminal[rec.ID] = true
			delete(liveByID, rec.ID)
		case rec.Kind == journalAccepted:
			if terminal[rec.ID] || rec.Spec == nil {
				continue // never resurrect; an accepted record without a spec is useless
			}
			if _, dup := liveByID[rec.ID]; dup {
				continue // duplicated line (aborted compaction): first wins
			}
			liveByID[rec.ID] = &state{rec: rec}
			order = append(order, rec.ID)
		case rec.Kind == journalStarted:
			if st, ok := liveByID[rec.ID]; ok {
				st.started = true
			}
		}
	}
	var live []recoveredJob
	var recs []journalRecord
	for _, id := range order {
		st, ok := liveByID[id]
		if !ok {
			continue // finished later in the file
		}
		live = append(live, recoveredJob{
			ID:      id,
			Tenant:  st.rec.Tenant,
			TraceID: st.rec.TraceID,
			Req:     *st.rec.Spec,
			Started: st.started,
		})
		recs = append(recs, st.rec)
		if st.started {
			// Preserve the was-mid-run fact across compaction so a second
			// crash before anything else happens replays identically.
			started := journalRecord{Kind: journalStarted, ID: id}
			started.Sum = started.seal()
			recs = append(recs, started)
		}
	}
	return live, recs
}

// append seals and writes one record. Failures are reported to onError and
// swallowed: the job carries on, merely less durable.
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	rec.Sum = rec.seal()
	line, err := json.Marshal(rec)
	if err != nil {
		jl.fail(err)
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return
	}
	if _, err := jl.f.Write(append(line, '\n')); err != nil {
		jl.fail(err)
		return
	}
	if jl.sync {
		if err := jl.f.Sync(); err != nil {
			jl.fail(err)
		}
	}
}

func (jl *journal) fail(err error) {
	if jl.onError != nil {
		jl.onError(err)
	}
}

// accepted journals a job's admission; it must be durable before the
// submitter is answered, so a crash after the 202 cannot lose the job.
func (jl *journal) accepted(id, key, tenant, traceID string, req RunRequest) {
	jl.append(journalRecord{Kind: journalAccepted, ID: id, Key: key, Tenant: tenant, TraceID: traceID, Spec: &req})
}

// started journals a worker (or thief) picking the job up.
func (jl *journal) started(id string) {
	jl.append(journalRecord{Kind: journalStarted, ID: id})
}

// terminal journals the job's final state.
func (jl *journal) terminal(id string, st Status) {
	jl.append(journalRecord{Kind: string(st), ID: id})
}

// Close flushes and closes the journal file.
func (jl *journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable — the half of atomic-write hygiene that os.Rename alone skips.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// sweepOrphanTemps removes leftover atomic-write temp files under dir —
// debris from a process killed between CreateTemp and the rename. Every
// atomic writer in this codebase (disk store, journal compaction, sim
// checkpoints) names its temps ".<final>.tmp<random>", so the sweep keys on
// that shape and cannot touch real entries. Returns the number removed.
func sweepOrphanTemps(dir string) int {
	n := 0
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // unreadable subtree: leave it; sweeping is hygiene, not correctness
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".") && strings.Contains(base, ".tmp") {
			if os.Remove(path) == nil {
				n++
			}
		}
		return nil
	})
	return n
}
