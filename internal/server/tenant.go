package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Multi-tenancy: when the daemon is configured with tenants, every
// work-submitting request must carry a tenant API key (X-Spb-Api-Key or
// Authorization: Bearer). Each tenant gets a weight (its share of worker
// time under contention, enforced by the weighted-fair queue in tenantq.go),
// a priority lane (strict: a high-lane job always dequeues before a
// normal-lane one), and an optional quota capping its outstanding
// (queued+running) jobs — admission control, so one tenant's burst cannot
// fill the whole queue. With no tenants configured everything runs as the
// implicit "default" tenant with no key required: single-user deployments
// and every pre-cluster client keep working unchanged.

// TenantKeyHeader carries the tenant API key.
const TenantKeyHeader = "X-Spb-Api-Key"

// Priority lanes, strict between lanes, weighted-fair within one.
const (
	LaneHigh   = 0
	LaneNormal = 1
	LaneLow    = 2
	numLanes   = 3
)

// TenantConfig declares one tenant.
type TenantConfig struct {
	// Name labels the tenant in metrics and logs.
	Name string
	// Key is the API key clients present. Must be unique across tenants.
	Key string
	// Weight is the tenant's WFQ share (default 1). A weight-3 tenant gets
	// 3× the worker time of a weight-1 tenant while both have work queued.
	Weight int
	// Priority is the lane: "high", "normal" (default) or "low".
	Priority string
	// MaxActive caps the tenant's outstanding (queued+running) jobs;
	// submissions beyond it get 429. 0 means unlimited.
	MaxActive int
}

// lane maps the priority name to its lane index.
func (tc TenantConfig) lane() int {
	switch strings.ToLower(tc.Priority) {
	case "high":
		return LaneHigh
	case "low":
		return LaneLow
	default:
		return LaneNormal
	}
}

// ParseTenants parses the -tenants flag grammar: semicolon-separated
// clauses, each "name:key[:weight=N][:prio=high|normal|low][:quota=N]".
//
//	sweeps:sk-sweep-1:weight=4:prio=low:quota=256;ops:sk-ops-9:prio=high
func ParseTenants(spec string) ([]TenantConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []TenantConfig
	names := map[string]bool{}
	keys := map[string]bool{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("tenant clause %q: need at least name:key", clause)
		}
		tc := TenantConfig{Name: strings.TrimSpace(parts[0]), Key: strings.TrimSpace(parts[1]), Weight: 1}
		if tc.Name == "" || tc.Key == "" {
			return nil, fmt.Errorf("tenant clause %q: empty name or key", clause)
		}
		for _, opt := range parts[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("tenant %s: option %q is not key=value", tc.Name, opt)
			}
			switch k {
			case "weight":
				w, err := strconv.Atoi(v)
				if err != nil || w < 1 {
					return nil, fmt.Errorf("tenant %s: bad weight %q", tc.Name, v)
				}
				tc.Weight = w
			case "prio":
				switch strings.ToLower(v) {
				case "high", "normal", "low":
					tc.Priority = strings.ToLower(v)
				default:
					return nil, fmt.Errorf("tenant %s: bad prio %q (high|normal|low)", tc.Name, v)
				}
			case "quota":
				q, err := strconv.Atoi(v)
				if err != nil || q < 1 {
					return nil, fmt.Errorf("tenant %s: bad quota %q", tc.Name, v)
				}
				tc.MaxActive = q
			default:
				return nil, fmt.Errorf("tenant %s: unknown option %q", tc.Name, k)
			}
		}
		if names[tc.Name] {
			return nil, fmt.Errorf("duplicate tenant name %q", tc.Name)
		}
		if keys[tc.Key] {
			return nil, fmt.Errorf("duplicate tenant key for %q", tc.Name)
		}
		names[tc.Name] = true
		keys[tc.Key] = true
		out = append(out, tc)
	}
	return out, nil
}

// tenantState is a tenant's runtime accounting.
type tenantState struct {
	TenantConfig
	laneIdx int

	active    atomic.Int64  // outstanding (queued+running) jobs, quota-bounded
	submitted atomic.Uint64 // jobs accepted onto the queue
	completed atomic.Uint64 // jobs that reached a terminal state
	rejected  atomic.Uint64 // quota rejections (429s)

	// vfinish is the tenant's WFQ virtual-finish clock; guarded by the
	// tenantQueue's mutex, not accessed elsewhere.
	vfinish float64
}

// acquire reserves one outstanding-job slot; false means the quota is spent.
func (t *tenantState) acquire() bool {
	n := t.active.Add(1)
	if t.MaxActive > 0 && n > int64(t.MaxActive) {
		t.active.Add(-1)
		return false
	}
	return true
}

// release returns one outstanding-job slot (rejected or coalesced paths).
func (t *tenantState) release() { t.active.Add(-1) }

// finishJob releases the slot and counts the completion (terminal paths).
func (t *tenantState) finishJob() {
	t.active.Add(-1)
	t.completed.Add(1)
}

// Sentinel tenant errors, mapped to HTTP statuses by the handlers.
var (
	errQuota     = errors.New("server: tenant quota exceeded")
	errNoAPIKey  = errors.New("server: missing API key (tenants are configured; send " + TenantKeyHeader + ")")
	errBadAPIKey = errors.New("server: unknown API key")
)

// initTenants builds the runtime tenant table. The implicit default tenant
// always exists; it serves all traffic when no tenants are configured (and
// its metrics keep the spbd_tenant_* series present on single-user daemons).
func (s *Server) initTenants(cfgs []TenantConfig) error {
	s.tenants = make(map[string]*tenantState, len(cfgs))
	s.defaultTenant = &tenantState{TenantConfig: TenantConfig{Name: "default", Weight: 1}, laneIdx: LaneNormal}
	for _, tc := range cfgs {
		if tc.Weight < 1 {
			tc.Weight = 1
		}
		ts := &tenantState{TenantConfig: tc, laneIdx: tc.lane()}
		if _, dup := s.tenants[tc.Key]; dup {
			return fmt.Errorf("server: duplicate tenant key for %q", tc.Name)
		}
		s.tenants[tc.Key] = ts
		s.tenantList = append(s.tenantList, ts)
	}
	if len(s.tenantList) == 0 {
		s.tenantList = []*tenantState{s.defaultTenant}
	}
	sort.Slice(s.tenantList, func(i, j int) bool { return s.tenantList[i].Name < s.tenantList[j].Name })
	return nil
}

// tenantFor resolves the request's tenant. With no tenants configured every
// request maps to the implicit default tenant; otherwise a missing or
// unknown key is a 401.
func (s *Server) tenantFor(r *http.Request) (*tenantState, error) {
	if len(s.tenants) == 0 {
		return s.defaultTenant, nil
	}
	key := r.Header.Get(TenantKeyHeader)
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
		}
	}
	if key == "" {
		return nil, errNoAPIKey
	}
	ts, ok := s.tenants[key]
	if !ok {
		return nil, errBadAPIKey
	}
	return ts, nil
}
