package server

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spb/internal/core"
	"spb/internal/faults"
	"spb/internal/obs"
	"spb/internal/sim"
)

// appendRecords writes sealed journal records straight to a file — test
// stand-in for a previous daemon incarnation.
func appendRecords(t *testing.T, path string, recs ...journalRecord) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, rec := range recs {
		rec.Sum = rec.seal()
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
}

func acceptedRec(id string, req RunRequest) journalRecord {
	return journalRecord{Kind: journalAccepted, ID: id, Tenant: "default", Spec: &req}
}

func TestJournalReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	jl, live, err := openJournal(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(live))
	}
	reqA := RunRequest{Workload: "mcf", Policy: "spb", SB: 14, Insts: 10000}
	reqB := RunRequest{Workload: "x264", Policy: "at-commit", SB: 56, Insts: 20000}
	jl.accepted("r000001-aaaa", "keyA", "acme", "trace-1", reqA)
	jl.accepted("r000002-bbbb", "keyB", "default", "", reqB)
	jl.started("r000002-bbbb")
	jl.accepted("r000003-cccc", "keyC", "default", "", reqA)
	jl.started("r000003-cccc")
	jl.terminal("r000003-cccc", StatusDone)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, live, err := openJournal(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(live) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(live), live)
	}
	if live[0].ID != "r000001-aaaa" || live[0].Tenant != "acme" || live[0].TraceID != "trace-1" || live[0].Started {
		t.Errorf("job 0 mangled: %+v", live[0])
	}
	if live[0].Req != reqA {
		t.Errorf("job 0 spec mangled: %+v", live[0].Req)
	}
	if live[1].ID != "r000002-bbbb" || !live[1].Started {
		t.Errorf("job 1 mangled: %+v", live[1])
	}

	// Compaction dropped the finished job's history: only the two live
	// accepted records (plus job 2's started marker) remain on disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 3 {
		t.Errorf("compacted journal has %d lines, want 3:\n%s", n, data)
	}
	if n := bytes.Count(data, []byte(`"kind":"accepted"`)); n != 2 {
		t.Errorf("compacted journal has %d accepted records, want 2:\n%s", n, data)
	}
}

func TestJournalTornTailAndGarbageTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	req := RunRequest{Workload: "mcf", Insts: 5000}
	appendRecords(t, path, acceptedRec("r000001-aaaa", req))
	// A torn write: the process died mid-append. Also some raw garbage and
	// a checksum-valid-looking line with a flipped byte.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"kind":"accepted","id":"r000002-bbbb","spec":{"worklo`)
	f.Close()

	jl, live, err := openJournal(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if len(live) != 1 || live[0].ID != "r000001-aaaa" {
		t.Fatalf("recovered %+v, want exactly the intact record", live)
	}
}

func TestJournalBitrotSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	req := RunRequest{Workload: "mcf", Insts: 5000}
	appendRecords(t, path, acceptedRec("r000001-aaaa", req), acceptedRec("r000002-bbbb", req))
	data, _ := os.ReadFile(path)
	// Flip one byte inside the first record's spec.
	idx := bytes.Index(data, []byte("mcf"))
	data[idx] ^= 0x01
	os.WriteFile(path, data, 0o644)

	jl, live, err := openJournal(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if len(live) != 1 || live[0].ID != "r000002-bbbb" {
		t.Fatalf("recovered %+v, want only the checksum-valid record", live)
	}
}

func TestJournalNeverResurrectsTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	req := RunRequest{Workload: "mcf", Insts: 5000}
	// The terminal record lands BEFORE the accepted record — the real
	// ordering when a worker finishes a job while submit is still writing
	// its acceptance, and also what a duplicated accepted line after an
	// aborted compaction looks like. Terminal must win regardless.
	appendRecords(t, path,
		journalRecord{Kind: string(StatusDone), ID: "r000001-aaaa"},
		acceptedRec("r000001-aaaa", req),
		acceptedRec("r000002-bbbb", req),
		journalRecord{Kind: string(StatusCancelled), ID: "r000002-bbbb"},
		acceptedRec("r000002-bbbb", req),
	)
	jl, live, err := openJournal(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if len(live) != 0 {
		t.Fatalf("resurrected terminal jobs: %+v", live)
	}
}

// FuzzJournalReplay feeds arbitrary bytes through the replay path. Three
// invariants must hold for any input: no panic, no live job whose ID also
// has a valid terminal record, and idempotence — compacting and replaying
// again yields the same live set.
func FuzzJournalReplay(f *testing.F) {
	req := RunRequest{Workload: "mcf", Policy: "spb", SB: 14, Insts: 10000}
	seed := func(recs ...journalRecord) []byte {
		var buf bytes.Buffer
		for _, rec := range recs {
			rec.Sum = rec.seal()
			line, _ := json.Marshal(rec)
			buf.Write(line)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	f.Add(seed(acceptedRec("r000001-aaaa", req)))
	f.Add(seed(acceptedRec("r000001-aaaa", req), journalRecord{Kind: journalStarted, ID: "r000001-aaaa"}))
	f.Add(seed(acceptedRec("r000001-aaaa", req), journalRecord{Kind: string(StatusDone), ID: "r000001-aaaa"}))
	f.Add(seed(journalRecord{Kind: string(StatusFailed), ID: "r000001-aaaa"}, acceptedRec("r000001-aaaa", req)))
	f.Add([]byte("garbage\n{\"kind\":\"accep"))
	f.Add(append(seed(acceptedRec("r000001-aaaa", req)), []byte(`{"kind":"accepted","id":"r0000`)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		live, recs := replayJournal(data)

		// Independently collect every valid terminal ID from the raw input.
		terminal := map[string]bool{}
		for _, line := range strings.Split(string(data), "\n") {
			var rec journalRecord
			if json.Unmarshal([]byte(line), &rec) != nil {
				continue
			}
			if rec.ID == "" || rec.Sum == "" || rec.Sum != rec.seal() {
				continue
			}
			if terminalKind(rec.Kind) {
				terminal[rec.ID] = true
			}
		}
		for _, rj := range live {
			if rj.ID == "" {
				t.Fatal("live job with empty ID")
			}
			if terminal[rj.ID] {
				t.Fatalf("job %s is live despite a valid terminal record", rj.ID)
			}
		}

		// Idempotence: the compacted form replays to the same live set.
		var buf bytes.Buffer
		for _, rec := range recs {
			line, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		again, _ := replayJournal(buf.Bytes())
		if len(again) != len(live) {
			t.Fatalf("replay not idempotent: %d live, then %d", len(live), len(again))
		}
		for i := range live {
			if again[i] != live[i] {
				t.Fatalf("replay not idempotent at %d: %+v vs %+v", i, live[i], again[i])
			}
		}
	})
}

// waitJobDone polls a job until it reaches a terminal state.
func waitJobDone(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j := s.jobByID(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		if st.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerJournalRecovery is the tentpole's server-layer invariant: a
// daemon that dies with queued and running jobs re-admits them on restart
// under their original IDs, preserving tenant and trace ID, marks them
// recovered, runs them to completion with correct results, and leaves the
// journal empty of live records afterwards.
func TestServerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.ndjson")
	tenants := []TenantConfig{{Name: "acme", Key: "k-acme", Priority: "high"}}

	// Incarnation 1: every run sleeps forever (fault injection), so both
	// jobs are journaled accepted (one also started) and never finish. No
	// Drain — the "crash" is simply opening incarnation 2 on the same
	// journal; compaction renames the file out from under incarnation 1,
	// whose late writes land on the unlinked inode, exactly like a dead
	// process's would.
	inj, err := faults.Parse("run:delay:1:10m")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{
		Workers: 1, JournalPath: journalPath, DisableSync: true,
		Faults: inj, Tenants: tenants, Tracer: obs.NewTracer(16, nil), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	specA := sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 8000}
	specB := sim.RunSpec{Workload: "x264", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 8000}
	tn := s1.tenants["k-acme"]
	jA, err := s1.submit(specA, "trace-A", tn)
	if err != nil {
		t.Fatal(err)
	}
	jB, err := s1.submit(specB, "", tn)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick job A up (its "started" record proves the
	// mid-run case, not just the queued case).
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, _ := os.ReadFile(journalPath)
		if bytes.Contains(data, []byte(`"kind":"started"`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no started record appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Incarnation 2: same journal, clean runner.
	s2, err := New(Config{
		Workers: 2, JournalPath: journalPath, DisableSync: true,
		Tenants: tenants, Tracer: obs.NewTracer(16, nil), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if got := s2.metrics.RecoveryRequeued.Load(); got != 2 {
		t.Fatalf("RecoveryRequeued = %d, want 2", got)
	}
	for _, want := range []struct {
		id, traceID string
	}{{jA.id, "trace-A"}, {jB.id, ""}} {
		j := s2.jobByID(want.id)
		if j == nil {
			t.Fatalf("job %s not re-admitted", want.id)
		}
		v := j.view()
		if !v.Recovered {
			t.Errorf("job %s not marked recovered", want.id)
		}
		if v.Tenant != "acme" {
			t.Errorf("job %s recovered under tenant %q, want acme", want.id, v.Tenant)
		}
		if want.traceID != "" && v.TraceID != want.traceID {
			t.Errorf("job %s trace ID %q, want %q", want.id, v.TraceID, want.traceID)
		}
	}

	// Both recovered jobs run to completion with correct results.
	for _, tc := range []struct {
		id   string
		spec sim.RunSpec
	}{{jA.id, specA}, {jB.id, specB}} {
		if st := waitJobDone(t, s2, tc.id); st != StatusDone {
			t.Fatalf("recovered job %s ended %s", tc.id, st)
		}
		ref, err := sim.Run(tc.spec.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		refStats, _ := ref.StatsJSON()
		j := s2.jobByID(tc.id)
		j.mu.Lock()
		gotStats := j.stats
		j.mu.Unlock()
		if !bytes.Equal(refStats, gotStats) {
			t.Errorf("recovered job %s stats differ from a clean run", tc.id)
		}
	}

	// Fresh submissions must not collide with recovered IDs.
	jC, err := s2.submit(sim.RunSpec{Workload: "dedup", Policy: core.PolicySPB, SQSize: 14, Insts: 4000}, "", s2.tenants["k-acme"])
	if err != nil {
		t.Fatal(err)
	}
	if jC.id == jA.id || jC.id == jB.id {
		t.Fatalf("fresh job reused a recovered ID: %s", jC.id)
	}

	// After everything finished, a third replay finds no live jobs.
	waitJobDone(t, s2, jC.id)
	live, _ := replayJournal(mustRead(t, journalPath))
	if len(live) != 0 {
		t.Errorf("journal still has %d live records after all jobs finished", len(live))
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecoveryCompletesFromDiskTier covers the lost-terminal-record crash:
// the previous daemon finished the job and persisted the result, but died
// before the journal's terminal record landed. Recovery must serve the
// stored result instead of re-simulating.
func TestRecoveryCompletesFromDiskTier(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journalPath := filepath.Join(dir, "journal.ndjson")

	spec := sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 8000}.Normalized()
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenDiskStore(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(Key(spec), res); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, journalPath,
		acceptedRec("r000007-cafe", Request(spec)),
		journalRecord{Kind: journalStarted, ID: "r000007-cafe"})

	s, err := New(Config{Workers: 1, CacheDir: cacheDir, JournalPath: journalPath, DisableSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if got := s.metrics.RecoveryCompleted.Load(); got != 1 {
		t.Fatalf("RecoveryCompleted = %d, want 1", got)
	}
	j := s.jobByID("r000007-cafe")
	if j == nil {
		t.Fatal("recovered job not resolvable by its pre-crash ID")
	}
	v := j.view()
	if v.Status != StatusDone || !v.Recovered || v.Cached != "disk" {
		t.Fatalf("recovered job view: status %s, recovered %t, cached %q", v.Status, v.Recovered, v.Cached)
	}
	refStats, _ := res.StatsJSON()
	if !bytes.Equal(refStats, v.Stats) {
		t.Error("recovered stats differ from the persisted result")
	}
	// Simulating zero instructions is the point.
	if n := s.runner.SimStats().InstsSimulated; n != 0 {
		t.Errorf("recovery simulated %d instructions, want 0", n)
	}
}

// TestOrphanTempSweep: temp files a crashed writer left behind are removed
// at startup and counted; real entries are untouched.
func TestOrphanTempSweep(t *testing.T) {
	cacheDir := t.TempDir()
	spec := sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 2000}.Normalized()
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenDiskStore(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(spec)
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Join(cacheDir, key[:2])
	orphan := filepath.Join(shard, "."+key+".json.tmp12345")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Workers: 1, CacheDir: cacheDir, DisableSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.metrics.OrphanTempsSwept.Load(); got != 1 {
		t.Errorf("OrphanTempsSwept = %d, want 1", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan temp survived the sweep (stat err: %v)", err)
	}
	if _, ok, err := store.Get(key); err != nil || !ok {
		t.Errorf("real entry damaged by the sweep: ok=%t err=%v", ok, err)
	}
}

// TestServerCheckpointWiring: CheckpointDir/CheckpointInsts reach the
// runner, checkpoints are written during a long job and cleared when it
// completes, and the counters surface in the metrics text.
func TestServerCheckpointWiring(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	s, err := New(Config{
		Workers: 1, CheckpointDir: ckptDir, CheckpointInsts: 10_000,
		DisableSync: true, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 40_000}
	j, err := s.submit(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJobDone(t, s, j.id); st != StatusDone {
		t.Fatalf("job ended %s", st)
	}
	ss := s.runner.SimStats()
	if ss.CheckpointWrites == 0 {
		t.Error("no checkpoints written — Config wiring is broken")
	}
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("checkpoint dir not cleared after completion: %v", ents)
	}
	var buf bytes.Buffer
	s.metrics.WriteText(&buf, s.QueueDepth, s.Inflight, s.Degraded, s.runner.SimStats)
	for _, name := range []string{"spbd_checkpoint_writes_total", "spbd_recovery_requeued_total", "spbd_journal_errors_total", "spbd_orphan_temps_swept_total"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("metrics text missing %s", name)
		}
	}
}

// TestDrainWritesTerminalRecords: a clean drain leaves no live journal
// records — cancelled jobs were reported to their clients, so recovering
// them after a graceful shutdown would be wrong.
func TestDrainWritesTerminalRecords(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.ndjson")
	inj, err := faults.Parse("run:delay:1:10m")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Workers: 1, JournalPath: journalPath, DisableSync: true, Faults: inj, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit(sim.RunSpec{Workload: "mcf", Insts: 8000}, "", nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_ = s.Drain(ctx) // deadline forces cancellation of the sleeping run
	live, _ := replayJournal(mustRead(t, journalPath))
	if len(live) != 0 {
		t.Errorf("journal has %d live records after drain; they would wrongly resurrect", len(live))
	}
}
