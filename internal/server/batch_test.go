package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"spb/internal/sim"
)

// postBatch submits a batch and decodes every NDJSON line.
func postBatch(t *testing.T, url string, req BatchRequest) []BatchItem {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var items []BatchItem
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var it BatchItem
		if err := dec.Decode(&it); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		items = append(items, it)
	}
	return items
}

// terminalByIndex reduces a line stream to the terminal item per index.
func terminalByIndex(t *testing.T, items []BatchItem) map[int]BatchItem {
	t.Helper()
	out := make(map[int]BatchItem)
	for _, it := range items {
		if !it.Status.terminal() {
			continue
		}
		if _, dup := out[it.Index]; dup {
			t.Fatalf("index %d produced two terminal lines", it.Index)
		}
		out[it.Index] = it
	}
	return out
}

func TestBatchStreamsResultsAndDedups(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	specs := []RunRequest{
		smallSpec,
		{Workload: "mcf", Policy: "spb", SB: 14, Insts: 10_000},
		smallSpec, // in-request duplicate of index 0
	}
	items := postBatch(t, ts.URL, BatchRequest{Specs: specs})
	done := terminalByIndex(t, items)
	if len(done) != len(specs) {
		t.Fatalf("got %d terminal items, want %d", len(done), len(specs))
	}
	for idx, it := range done {
		if it.Status != StatusDone {
			t.Fatalf("index %d: %s (%s)", idx, it.Status, it.Error)
		}
	}
	// The duplicate shares the job (one simulation) and returns identical
	// bytes.
	if done[0].Key != done[2].Key || done[0].ID != done[2].ID {
		t.Fatal("duplicate specs did not share a job")
	}
	if !bytes.Equal(done[0].Stats, done[2].Stats) {
		t.Fatal("duplicate specs returned differing stats")
	}
	if got := s.Runner().Runs(); got != 2 {
		t.Fatalf("Runs() = %d, want 2 (in-request dedup failed)", got)
	}
	// The payload reconstructs the exact in-process result.
	res, err := done[0].DecodeResult()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := smallSpec.Spec()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU != local.CPU || res.Mem != local.Mem {
		t.Fatal("batch result differs from in-process run")
	}
	want, err := local.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(done[0].Stats, want) {
		t.Fatalf("batch stats differ from in-process stats:\n  %s\n  %s", done[0].Stats, want)
	}
}

func TestBatchAnswersFromCacheTiers(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	// Warm both tiers with a synchronous run.
	resp, _ := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm POST = %d", resp.StatusCode)
	}
	items := postBatch(t, ts.URL, BatchRequest{Specs: []RunRequest{smallSpec}})
	done := terminalByIndex(t, items)
	if done[0].Cached != "memory" {
		t.Fatalf("cached = %q, want memory", done[0].Cached)
	}
	if got := s.Runner().Runs(); got != 1 {
		t.Fatalf("Runs() = %d, want 1 (batch re-simulated a cached point)", got)
	}
	// Cached answers carry no ack line: the single item is terminal.
	for _, it := range items {
		if !it.Status.terminal() {
			t.Fatalf("cache-answered spec produced a %q line", it.Status)
		}
	}
}

func TestBatchReportsBadSpecsUpfront(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	body, _ := json.Marshal(BatchRequest{Specs: []RunRequest{{Workload: ""}}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", resp.StatusCode)
	}
	body, _ = json.Marshal(BatchRequest{})
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
}

func TestBatchLargerThanQueueCompletes(t *testing.T) {
	// More unique specs than QueueDepth: the in-flight bound must trickle
	// them through rather than rejecting with queue-full.
	s, ts := testServer(t, Config{Workers: 2, QueueDepth: 2})
	var specs []RunRequest
	for i := 0; i < 8; i++ {
		sp := smallSpec
		sp.Seed = uint64(i + 1)
		specs = append(specs, sp)
	}
	items := postBatch(t, ts.URL, BatchRequest{Specs: specs})
	done := terminalByIndex(t, items)
	if len(done) != len(specs) {
		t.Fatalf("got %d terminal items, want %d", len(done), len(specs))
	}
	for idx, it := range done {
		if it.Status != StatusDone {
			t.Fatalf("index %d: %s (%s)", idx, it.Status, it.Error)
		}
	}
	if got := s.Runner().Runs(); got != uint64(len(specs)) {
		t.Fatalf("Runs() = %d, want %d", got, len(specs))
	}
}
