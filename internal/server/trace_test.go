package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spb/internal/obs"
)

func getTrace(t *testing.T, ts *httptest.Server, path string) (int, obs.TraceView) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv obs.TraceView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, tv
}

// spanIndex returns the position of the first span named name, or -1.
func spanIndex(tv obs.TraceView, name string) int {
	for i, sp := range tv.Spans {
		if sp.Name == name {
			return i
		}
	}
	return -1
}

// TestBatchTraceSpanCompleteness is the PR's acceptance core: a batched
// sweep yields a retrievable trace per spec whose top-level span durations
// sum — within scheduling slack — to the completion latency the client
// observed for that spec, with the lifecycle phases present and in order.
func TestBatchTraceSpanCompleteness(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, Tracer: obs.NewTracer(0, nil)})

	const sweepTraceID = "sweep-trace-0042"
	var breq BatchRequest
	for seed := uint64(1); seed <= 4; seed++ {
		req := smallSpec
		req.Seed = seed // unique points: every spec simulates
		breq.Specs = append(breq.Specs, req)
	}
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, sweepTraceID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d", resp.StatusCode)
	}

	// Client-observed completion latency: batch submission to the spec's
	// terminal NDJSON line.
	observed := map[string]time.Duration{} // job id -> latency
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if !item.Status.Terminal() {
			continue
		}
		if item.Status != StatusDone {
			t.Fatalf("spec %d ended %s: %s", item.Index, item.Status, item.Error)
		}
		if _, dup := observed[item.ID]; !dup {
			observed[item.ID] = time.Since(start)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 4 {
		t.Fatalf("got %d terminal jobs, want 4", len(observed))
	}

	const slack = 500 * time.Millisecond
	for id, clientLat := range observed {
		code, tv := getTrace(t, ts, "/v1/runs/"+id+"/trace")
		if code != http.StatusOK {
			t.Fatalf("GET trace for %s = %d", id, code)
		}
		if tv.TraceID != sweepTraceID {
			t.Errorf("job %s trace_id = %q, want propagated %q", id, tv.TraceID, sweepTraceID)
		}
		if !tv.Done {
			t.Errorf("job %s trace not done", id)
		}
		// Lifecycle phases present and in order.
		order := []string{"submit", "queue-wait", "run", "stream-out"}
		last := -1
		for _, name := range order {
			idx := spanIndex(tv, name)
			if idx < 0 {
				t.Fatalf("job %s trace missing span %q; spans: %+v", id, name, tv.Spans)
			}
			if idx <= last {
				t.Errorf("job %s span %q out of order; spans: %+v", id, name, tv.Spans)
			}
			last = idx
		}
		// The simulator's nested sub-spans rode the context into the trace.
		for _, name := range []string{"run.build", "run.sim", "run.collect"} {
			if spanIndex(tv, name) < 0 {
				t.Errorf("job %s trace missing sim sub-span %q", id, name)
			}
		}
		// The top-level phases tile the client-observed latency: their sum
		// can fall short only by network/scheduling gaps, and can never
		// meaningfully exceed it.
		total := time.Duration(tv.TotalNS)
		if total <= 0 {
			t.Fatalf("job %s total_ns = %d", id, tv.TotalNS)
		}
		if total > clientLat+slack {
			t.Errorf("job %s span sum %v exceeds client-observed %v", id, total, clientLat)
		}
		if clientLat-total > slack {
			t.Errorf("job %s span sum %v unaccountably short of client-observed %v", id, total, clientLat)
		}
	}
}

// TestTraceEndpointAlias: /v1/jobs/{id}/trace serves the same document as
// /v1/runs/{id}/trace.
func TestTraceEndpointAlias(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, Tracer: obs.NewTracer(0, nil)})
	resp, v := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if v.TraceID == "" {
		t.Fatal("job view carries no trace_id with tracing enabled")
	}
	code1, tv1 := getTrace(t, ts, "/v1/runs/"+v.ID+"/trace")
	code2, tv2 := getTrace(t, ts, "/v1/jobs/"+v.ID+"/trace")
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("trace endpoints = %d, %d", code1, code2)
	}
	if tv1.JobID != tv2.JobID || tv1.TraceID != tv2.TraceID || len(tv1.Spans) != len(tv2.Spans) {
		t.Fatalf("alias diverges: %+v vs %+v", tv1, tv2)
	}
	if tv1.TraceID != v.TraceID {
		t.Fatalf("trace_id mismatch: view %q, trace %q", v.TraceID, tv1.TraceID)
	}
}

// TestTraceDisabled: without a Tracer the endpoint 404s and job views carry
// no trace_id — tracing must be invisible when off.
func TestTraceDisabled(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, v := postRun(t, ts, smallSpec, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if v.TraceID != "" {
		t.Fatalf("trace_id %q leaked with tracing disabled", v.TraceID)
	}
	code, _ := getTrace(t, ts, "/v1/runs/"+v.ID+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("GET trace with tracing disabled = %d, want 404", code)
	}
	code, _ = getTrace(t, ts, "/v1/runs/nosuch/trace")
	if code != http.StatusNotFound {
		t.Fatalf("GET trace for unknown job = %d, want 404", code)
	}
}

// TestCacheHitTrace: a cache-answered submission still gets a trace — a
// submit span plus the cache-hit marker — so sweep forensics can tell
// "fast because cached" from "fast because small".
func TestCacheHitTrace(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, Tracer: obs.NewTracer(0, nil)})
	if _, v := postRun(t, ts, smallSpec, "?wait=1"); v.Status != StatusDone {
		t.Fatalf("warm-up run: %s (%s)", v.Status, v.Error)
	}
	_, v := postRun(t, ts, smallSpec, "?wait=1")
	if v.Cached != "memory" {
		t.Fatalf("second run cached = %q, want memory", v.Cached)
	}
	code, tv := getTrace(t, ts, "/v1/runs/"+v.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d", code)
	}
	if spanIndex(tv, "submit") < 0 || spanIndex(tv, "cache-hit") < 0 {
		t.Fatalf("cache-hit trace spans = %+v, want submit + cache-hit", tv.Spans)
	}
	if spanIndex(tv, "run") >= 0 || spanIndex(tv, "queue-wait") >= 0 {
		t.Fatalf("cache hit must not record run/queue-wait spans: %+v", tv.Spans)
	}
}

// TestSSERetryHintAndHeartbeat: the events stream opens with a retry: hint
// and emits comment heartbeats while the job is quiet.
func TestSSERetryHintAndHeartbeat(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers:      1,
		SSEInterval:  time.Hour, // no progress events after the first: heartbeats must carry the stream
		SSEHeartbeat: 5 * time.Millisecond,
	})
	resp, v := postRun(t, ts, longSpec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs/"+v.ID+"/cancel", nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Error(err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	var sawRetry, sawHeartbeat bool
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() && !(sawRetry && sawHeartbeat) {
		line := sc.Text()
		if strings.HasPrefix(line, "retry: ") {
			sawRetry = true
		}
		if strings.HasPrefix(line, ":") {
			sawHeartbeat = true
		}
	}
	if !sawRetry || !sawHeartbeat {
		t.Fatalf("stream ended: sawRetry=%v sawHeartbeat=%v (err %v)", sawRetry, sawHeartbeat, sc.Err())
	}
}

// TestMetricsPhaseHistogramsAndTopDown: after one simulated run with a disk
// tier, /metrics exposes the phase latency histograms with observations in
// them and the aggregated Top-Down cycle counters.
func TestMetricsPhaseHistogramsAndTopDown(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, CacheDir: t.TempDir()})
	if _, v := postRun(t, ts, smallSpec, "?wait=1"); v.Status != StatusDone {
		t.Fatalf("run: %s (%s)", v.Status, v.Error)
	}
	// One batch round so the stream histogram has an observation too.
	body, _ := json.Marshal(BatchRequest{Specs: []RunRequest{smallSpec}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"spbd_queue_wait_seconds_count 1",
		"spbd_run_duration_seconds_count 1",
		"spbd_store_read_seconds_count", // read probed on the cold submit
		"spbd_store_write_seconds_count 1",
		"spbd_batch_stream_seconds_count 1",
		"spbd_queue_wait_seconds_bucket",
		`spbd_topdown_cycles_total{class="all"}`,
		`spbd_topdown_cycles_total{class="sb_stall"}`,
		"spbd_topdown_sb_bound_runs_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
	// The run actually produced cycles: the all-class counter is nonzero.
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, `spbd_topdown_cycles_total{class="all"}`) {
			var v uint64
			if _, err := fmt.Sscanf(strings.Fields(line)[1], "%d", &v); err != nil || v == 0 {
				t.Fatalf("topdown all-cycles line %q: v=%d err=%v", line, v, err)
			}
		}
	}
}

// TestTraceLogNDJSON: finished traces land as one NDJSON line each on the
// tracer's sink, parseable back into TraceViews.
func TestTraceLogNDJSON(t *testing.T) {
	var buf syncBuffer
	_, ts := testServer(t, Config{Workers: 1, Tracer: obs.NewTracer(0, &buf)})
	if _, v := postRun(t, ts, smallSpec, "?wait=1"); v.Status != StatusDone {
		t.Fatalf("run: %s (%s)", v.Status, v.Error)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("sink got %d lines, want 1:\n%s", len(lines), buf.String())
	}
	var tv obs.TraceView
	if err := json.Unmarshal([]byte(lines[0]), &tv); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", lines[0], err)
	}
	if !tv.Done || spanIndex(tv, "run") < 0 {
		t.Fatalf("sink line incomplete: %+v", tv)
	}
}

// syncBuffer is a locked bytes.Buffer: the tracer writes from worker
// goroutines while the test reads.
type syncBuffer struct {
	buf bytes.Buffer
	m   sync.Mutex
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.m.Lock()
	defer b.m.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.m.Lock()
	defer b.m.Unlock()
	return b.buf.String()
}
