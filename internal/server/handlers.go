package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"spb/internal/faults"
	"spb/internal/obs"
)

// JobView is the JSON shape of a job returned by POST /v1/runs and
// GET /v1/runs/{id}. Stats is present only on done jobs and is the same
// canonical serialization `spbsim -json` emits.
type JobView struct {
	ID        string          `json:"id"`
	Key       string          `json:"key"`
	Status    Status          `json:"status"`
	Spec      RunRequest      `json:"spec"`
	Cached    string          `json:"cached,omitempty"`
	Error     string          `json:"error,omitempty"`
	Committed uint64          `json:"committed"`
	Cycles    uint64          `json:"cycles"`
	FFInsts   uint64          `json:"ff_insts,omitempty"`
	IPC       float64         `json:"ipc"`
	Stats     json.RawMessage `json:"stats,omitempty"`
	TraceID   string          `json:"trace_id,omitempty"`
	Tenant    string          `json:"tenant,omitempty"`
	// Recovered marks a job re-admitted from the durable journal after a
	// daemon restart; its ID and spec are the pre-crash originals.
	Recovered bool `json:"recovered,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	st, errMsg, cached, stats := j.status, j.errMsg, j.cached, j.stats
	j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Key:       j.key,
		Status:    st,
		Spec:      Request(j.spec),
		Cached:    cached,
		Error:     errMsg,
		Committed: j.committed.Load(),
		Cycles:    j.cycles.Load(),
		FFInsts:   j.ffInsts.Load(),
		Stats:     stats,
		TraceID:   j.trace.TraceID(),
		Recovered: j.recovered,
	}
	if j.tenant != nil {
		v.Tenant = j.tenant.Name
	}
	if v.Cycles > 0 {
		v.IPC = float64(v.Committed) / float64(v.Cycles)
	}
	return v
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/runs", s.timed("POST /v1/runs", s.handleSubmit))
	mux.HandleFunc("POST /v1/batch", s.handleBatch) // long-lived stream: kept out of the latency histogram
	mux.Handle("GET /v1/runs", s.timed("GET /v1/runs", s.handleList))
	mux.Handle("GET /v1/runs/{id}", s.timed("GET /v1/runs/{id}", s.handleGet))
	mux.Handle("GET /v1/runs/{id}/trace", s.timed("GET /v1/runs/{id}/trace", s.handleTrace))
	mux.Handle("GET /v1/jobs/{id}/trace", s.timed("GET /v1/runs/{id}/trace", s.handleTrace)) // alias
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)                               // long-lived: kept out of the latency histogram
	mux.Handle("POST /v1/runs/{id}/cancel", s.timed("POST /v1/runs/{id}/cancel", s.handleCancel))
	mux.Handle("DELETE /v1/runs/{id}", s.timed("DELETE /v1/runs/{id}", s.handleCancel))
	mux.Handle("GET /healthz", s.timed("GET /healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// timed wraps a handler with the per-endpoint latency histogram.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.metrics.ObserveLatency(endpoint, time.Since(start))
	})
}

// writeJSON emits compact JSON: embedded json.RawMessage payloads (the
// canonical stats set) pass through byte-identical to what `spbsim -json`
// prints, which an indenting encoder would destroy.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a RunRequest. Cache hits return 200 with the full
// result; fresh or coalesced jobs return 202 (or block for the result when
// ?wait=1). A full queue returns 429 with Retry-After; a draining server
// returns 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, err := s.tenantFor(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, "%v", err)
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad run spec: %v", err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad run spec: %v", err)
		return
	}
	j, err := s.submit(spec, r.Header.Get(obs.TraceHeader), tn)
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs deep); retry later", s.cfg.QueueDepth)
		return
	case errors.Is(err, errQuota):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant %q quota exceeded (%d outstanding jobs); retry later", tn.Name, tn.MaxActive)
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		// Injected faults model transient server trouble: report them as
		// 503 so well-behaved clients retry instead of failing the sweep.
		var inj *faults.InjectedError
		if errors.As(err, &inj) {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	wait := r.URL.Query().Get("wait") == "1" || r.URL.Query().Get("wait") == "true"
	if !wait {
		j.retain() // asynchronous interest pins the job (the client polls later)
		code := http.StatusAccepted
		if v := j.view(); v.Status.terminal() {
			code = http.StatusOK
			writeJSON(w, code, v)
			return
		}
		writeJSON(w, code, j.view())
		return
	}

	// Synchronous: hold the request open until the job finishes. If every
	// synchronous waiter disconnects first, the job is cancelled — an
	// abandoned request stops simulating.
	j.retain()
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.view())
	case <-r.Context().Done():
		s.releaseWaiter(j)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		v := j.view()
		v.Stats = nil // keep the listing light
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	// Cancellation is a write: it needs a valid tenant key when tenants are
	// configured (any tenant may cancel any job — per-job ownership is
	// deliberately out of scope, jobs are shared by content address).
	if _, err := s.tenantFor(r); err != nil {
		writeError(w, http.StatusUnauthorized, "%v", err)
		return
	}
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	s.cancelJob(j, errors.New("cancelled by client request"))
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleTrace returns the job's span timeline (obs.TraceView). 404 covers
// both an unknown job and a daemon running with tracing disabled; the error
// message distinguishes them.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	if j.trace == nil {
		writeError(w, http.StatusNotFound, "no trace for run %q (tracing disabled)", j.id)
		return
	}
	writeJSON(w, http.StatusOK, j.trace.Snapshot())
}

// sseEvent is one progress (or terminal) event on an /events stream.
type sseEvent struct {
	ID        string  `json:"id"`
	Status    Status  `json:"status"`
	Committed uint64  `json:"committed"`
	Cycles    uint64  `json:"cycles"`
	FFInsts   uint64  `json:"ff_insts,omitempty"`
	IPC       float64 `json:"ipc"`
	Target    uint64  `json:"target_insts"`
	Error     string  `json:"error,omitempty"`
}

// handleEvents streams job progress as Server-Sent Events: a "progress"
// event every SSEInterval while the job runs, then one final "done" event.
// A disconnecting client just ends the stream; the job keeps running for
// whoever still holds interest in it.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	s.metrics.SSESubscribers.Add(1)
	defer s.metrics.SSESubscribers.Add(-1)

	// Reconnect hint: clients that drop should retry quickly — the job keeps
	// running server-side, so a reconnect resumes progress seamlessly.
	fmt.Fprintf(w, "retry: %d\n\n", s.cfg.SSEInterval.Milliseconds())
	fl.Flush()

	send := func(event string) {
		j.mu.Lock()
		st, errMsg := j.status, j.errMsg
		j.mu.Unlock()
		ev := sseEvent{
			ID:        j.id,
			Status:    st,
			Committed: j.committed.Load(),
			Cycles:    j.cycles.Load(),
			FFInsts:   j.ffInsts.Load(),
			Target:    j.targetInsts,
			Error:     errMsg,
		}
		if ev.Cycles > 0 {
			ev.IPC = float64(ev.Committed) / float64(ev.Cycles)
		}
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}

	send("progress")
	ticker := time.NewTicker(s.cfg.SSEInterval)
	defer ticker.Stop()
	// Comment-line heartbeats keep idle connections alive through proxies
	// and let clients distinguish "quiet" from "dead". Both tickers stop on
	// every return path (client disconnect included) via the defers.
	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			send("done")
			return
		case <-ticker.C:
			send("progress")
		case <-heartbeat.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		}
	}
}

// handleHealthz serves both probes. Plain GET /healthz is *liveness*: the
// process is up and answering, so it is always 200 — even while draining
// (a draining daemon is alive, just not accepting work). GET /healthz?ready=1
// is *readiness*: 200 only when the daemon can accept a new submission right
// now (not draining, queue has headroom); the body carries queue headroom
// and the disk tier's state either way so dispatchers (client.Pool) and
// operators can see *why* a backend is unready. A degraded disk tier is
// reported but does not unready the daemon — memory-only service is slower,
// not wrong.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	if r.URL.Query().Get("ready") == "" {
		status := "ok"
		if draining {
			status = "draining"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      status,
			"queue_depth": s.QueueDepth(),
			"inflight":    s.Inflight(),
			"workers":     s.cfg.Workers,
		})
		return
	}

	headroom := s.cfg.QueueDepth - s.QueueDepth()
	if headroom < 0 {
		headroom = 0
	}
	degraded := s.Degraded()
	var reasons []string
	if draining {
		reasons = append(reasons, "draining")
	}
	if headroom == 0 {
		reasons = append(reasons, "queue full")
	}
	if degraded {
		reasons = append(reasons, "disk tier degraded (memory-only)")
	}
	ready := !draining && headroom > 0
	status, code := "ready", http.StatusOK
	if !ready {
		status, code = "unready", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"ready":          ready,
		"draining":       draining,
		"degraded":       degraded,
		"queue_headroom": headroom,
		"queue_depth":    s.QueueDepth(),
		"inflight":       s.Inflight(),
		"workers":        s.cfg.Workers,
		"reasons":        reasons,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w, s.QueueDepth, s.Inflight, s.Degraded, s.runner.SimStats)
	s.writeTenantMetrics(w)
	if s.cluster != nil {
		s.cluster.WriteMetrics(w)
	}
}

// writeTenantMetrics renders the per-tenant spbd_tenant_* series. The
// implicit default tenant keeps the series present on single-tenant daemons.
func (s *Server) writeTenantMetrics(w io.Writer) {
	series := func(name, typ, help string, value func(*tenantState) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, tn := range s.tenantList {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, tn.Name, value(tn))
		}
	}
	series("spbd_tenant_weight", "gauge", "Configured WFQ weight per tenant.",
		func(tn *tenantState) int64 { return int64(tn.Weight) })
	series("spbd_tenant_active", "gauge", "Outstanding (queued+running) jobs per tenant.",
		func(tn *tenantState) int64 { return tn.active.Load() })
	series("spbd_tenant_submitted_total", "counter", "Jobs accepted onto the queue per tenant.",
		func(tn *tenantState) int64 { return int64(tn.submitted.Load()) })
	series("spbd_tenant_completed_total", "counter", "Jobs that reached a terminal state per tenant.",
		func(tn *tenantState) int64 { return int64(tn.completed.Load()) })
	series("spbd_tenant_quota_rejected_total", "counter", "Submissions rejected by the tenant's quota.",
		func(tn *tenantState) int64 { return int64(tn.rejected.Load()) })
}
