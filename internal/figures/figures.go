// Package figures regenerates every table and figure of the paper's
// evaluation from simulation sweeps: the same rows and series, computed from
// this repository's simulator instead of the authors' gem5 testbed. Each
// FigNN function returns one or more Tables; cmd/spbtables prints them and
// bench_test.go wraps each in a benchmark.
package figures

import (
	"context"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/sim"
	"spb/internal/workloads"
)

// Scale controls how much simulation a harness invocation performs.
type Scale struct {
	// Insts is the committed-instruction budget per core per run.
	Insts uint64
	// Warmup is the per-core functional-warming prefix applied before the
	// detailed interval (sim.RunSpec.WarmupInsts). The stock Quick/Full
	// scales keep it 0 so published figure output stays byte-identical with
	// earlier releases; sweeps that opt in share one warmup per
	// warmup-equivalence group through the runner's warm-start fork engine.
	Warmup uint64
	// Sampling, when enabled, runs every sweep point as a SMARTS-sampled
	// simulation (sim.RunSpec.Sampling): figure values become sampled
	// estimates, so the stock Quick/Full scales keep it disabled.
	Sampling sim.SamplingConfig
	// SBBoundOnly restricts sweeps to the paper's SB-bound set where the
	// full suite is not required (fast mode for benchmarks).
	SBBoundOnly bool
}

// Quick is the reduced scale used by the go-test benchmarks.
var Quick = Scale{Insts: 120_000, SBBoundOnly: true}

// Full is the scale used by cmd/spbtables.
var Full = Scale{Insts: 1_000_000}

// Table is one rendered result table.
type Table struct {
	Title string
	Cols  []string
	Rows  []Row
	Note  string
}

// Row is one labelled series of values.
type Row struct {
	Name string
	Vals []float64
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\n", strings.Join(append([]string{""}, t.Cols...), "\t"))
	for _, r := range t.Rows {
		cells := make([]string, 0, len(r.Vals)+1)
		cells = append(cells, r.Name)
		for _, v := range r.Vals {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		fmt.Fprintf(w, "%s\n", strings.Join(cells, "\t"))
	}
	w.Flush()
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Executor runs a batch of simulation points and returns results in spec
// order. sim.Runner is the in-process implementation; the spbd client pool
// is the distributed one. Both compute identical results, so every figure
// is byte-identical regardless of where its sweeps execute.
type Executor interface {
	GetAllCtx(ctx context.Context, specs []sim.RunSpec) ([]sim.Result, error)
}

// Harness runs sweeps against a shared executor (by default an in-process
// memoizing runner).
type Harness struct {
	runner *sim.Runner
	exec   Executor
	ctx    context.Context
	scale  Scale
}

// NewHarness returns an in-process harness at the given scale.
func NewHarness(scale Scale) *Harness {
	return NewHarnessOn(context.Background(), scale, nil)
}

// NewHarnessOn returns a harness whose sweeps execute on exec (nil = an
// in-process runner) and are cancelled when ctx is: interrupting a figure
// regeneration stops every in-flight and queued simulation, local or
// remote.
func NewHarnessOn(ctx context.Context, scale Scale, exec Executor) *Harness {
	r := sim.NewRunner()
	h := &Harness{runner: r, exec: exec, ctx: ctx, scale: scale}
	if h.exec == nil {
		h.exec = r
	}
	return h
}

// Runner exposes the harness's in-process runner so callers can adjust its
// execution strategy (warm-start forking) or read its accounting. When an
// external Executor is in use, the runner only serves as a fallback and its
// settings do not reach the remote daemons.
func (h *Harness) Runner() *sim.Runner {
	return h.runner
}

// getAll routes one sweep through the harness executor.
func (h *Harness) getAll(specs []sim.RunSpec) ([]sim.Result, error) {
	return h.exec.GetAllCtx(h.ctx, specs)
}

func (h *Harness) suite() []workloads.Workload {
	if h.scale.SBBoundOnly {
		return workloads.SBBoundSPEC()
	}
	return workloads.SPEC()
}

func (h *Harness) spec(w string, p core.Policy, sq int) sim.RunSpec {
	return sim.RunSpec{
		Workload:    w,
		Policy:      p,
		SQSize:      sq,
		Prefetcher:  config.PrefetchStream,
		Insts:       h.scale.Insts,
		WarmupInsts: h.scale.Warmup,
		Sampling:    h.scale.Sampling,
	}
}

// geomean of a slice (zero-safe).
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// runMatrix evaluates specs for every workload in the suite and returns
// results indexed [workload][variant].
func (h *Harness) runMatrix(mk func(name string) []sim.RunSpec) (map[string][]sim.Result, error) {
	var all []sim.RunSpec
	names := []string{}
	per := 0
	for _, w := range h.suite() {
		specs := mk(w.Name)
		per = len(specs)
		names = append(names, w.Name)
		all = append(all, specs...)
	}
	results, err := h.getAll(all)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]sim.Result, len(names))
	for i, name := range names {
		out[name] = results[i*per : (i+1)*per]
	}
	return out, nil
}
