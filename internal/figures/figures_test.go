package figures

import (
	"strings"
	"testing"
)

// tiny returns a harness small enough for unit tests.
func tiny() *Harness {
	return NewHarness(Scale{Insts: 40_000, SBBoundOnly: true})
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		Title: "demo",
		Cols:  []string{"a", "b"},
		Rows:  []Row{{Name: "r1", Vals: []float64{1, 0.5}}},
		Note:  "hello",
	}
	out := tab.Format()
	for _, want := range []string{"demo", "a", "b", "r1", "1.000", "0.500", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
	if geomean([]float64{1, 0}) != 0 {
		t.Fatal("geomean with zero should be 0, not NaN")
	}
}

func TestArith(t *testing.T) {
	if a := arith([]float64{1, 3}); a != 2 {
		t.Fatalf("arith = %v, want 2", a)
	}
	if arith(nil) != 0 {
		t.Fatal("arith of empty should be 0")
	}
}

func TestRatio(t *testing.T) {
	if ratio(6, 3) != 2 {
		t.Fatal("ratio(6,3) != 2")
	}
	if ratio(0, 0) != 1 {
		t.Fatal("ratio(0,0) should be 1 (no change)")
	}
	if ratio(5, 0) != 5 {
		t.Fatal("ratio(n,0) should degrade to n")
	}
}

func TestTableIStatic(t *testing.T) {
	tabs, err := tiny().TableI()
	if err != nil || len(tabs) != 1 {
		t.Fatalf("TableI: %v (%d tables)", err, len(tabs))
	}
	out := tabs[0].Format()
	for _, want := range []string{"224", "97", "72", "56", "67"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %s:\n%s", want, out)
		}
	}
}

func TestTableIIStatic(t *testing.T) {
	tabs, err := tiny().TableII()
	if err != nil {
		t.Fatal(err)
	}
	out := tabs[0].Format()
	for _, name := range []string{"SLM", "NHL", "HSW", "SKL", "SNC"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table II missing %s", name)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tabs, err := tiny().Fig1()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 2 || len(rows[0].Vals) != 3 {
		t.Fatalf("Fig1 shape wrong: %+v", rows)
	}
	// SB stalls must grow monotonically as the SB shrinks (the paper's
	// headline motivation).
	bound := rows[1].Vals
	if !(bound[0] < bound[1] && bound[1] < bound[2]) {
		t.Fatalf("SB-bound stall ratio must grow 56->28->14, got %v", bound)
	}
	if bound[0] <= 0.02 {
		t.Fatalf("SB-bound set must exceed the 2%% criterion at SB56, got %v", bound[0])
	}
}

func TestFig5Shape(t *testing.T) {
	h := tiny()
	tabs, err := h.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig5 should have one table per SB size, got %d", len(tabs))
	}
	// In every table: spb beats at-commit, and both are <= ~ideal (1.0
	// within noise).
	for _, tab := range tabs {
		var atCommit, spb float64
		for _, r := range tab.Rows {
			switch r.Name {
			case "at-commit":
				atCommit = r.Vals[1]
			case "spb":
				spb = r.Vals[1]
			}
		}
		if spb <= atCommit {
			t.Fatalf("%s: spb (%v) must beat at-commit (%v)", tab.Title, spb, atCommit)
		}
		if spb > 1.25 || atCommit > 1.15 {
			t.Fatalf("%s: normalized perf above ideal by too much (spb %v, at-commit %v)",
				tab.Title, spb, atCommit)
		}
	}
	// The at-commit gap must widen as the SB shrinks.
	ac56 := tabs[0].Rows[1].Vals[1]
	ac14 := tabs[2].Rows[1].Vals[1]
	if ac14 >= ac56 {
		t.Fatalf("at-commit at SB14 (%v) must be worse than at SB56 (%v)", ac14, ac56)
	}
}

func TestFig3RegionsSumToOne(t *testing.T) {
	tabs, err := tiny().Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tabs[0].Rows {
		sum := r.Vals[0] + r.Vals[1] + r.Vals[2]
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: region fractions sum to %v, want 1", r.Name, sum)
		}
	}
}

func TestFig8SPBReducesStalls(t *testing.T) {
	tabs, err := tiny().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tabs[0].Rows {
		if r.Name != "spb" {
			continue
		}
		// Every column is normalized to at-commit; SPB must cut stalls.
		for i, v := range r.Vals {
			if v >= 1.0 {
				t.Fatalf("spb stall ratio col %d = %v, want < 1", i, v)
			}
		}
	}
}

func TestFig11FractionsBounded(t *testing.T) {
	tabs, err := tiny().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		for _, r := range tab.Rows {
			sum := 0.0
			for _, v := range r.Vals {
				if v < 0 || v > 1.001 {
					t.Fatalf("%s/%s: fraction %v out of range", tab.Title, r.Name, v)
				}
				sum += v
			}
			if sum > 1.01 {
				t.Fatalf("%s/%s: fractions sum to %v > 1", tab.Title, r.Name, sum)
			}
		}
	}
}

func TestFig12SPBIssuesMoreTraffic(t *testing.T) {
	tabs, err := tiny().Fig12()
	if err != nil {
		t.Fatal(err)
	}
	// SPB adds burst requests on top of at-commit's per-store requests:
	// REQ (SB-bound column) must exceed 1.
	for _, r := range tabs[0].Rows {
		if r.Vals[1] <= 1.0 {
			t.Fatalf("%s: SPB REQ ratio %v, want > 1 (bursts add requests)", r.Name, r.Vals[1])
		}
	}
}

func TestSB20Claim(t *testing.T) {
	tabs, err := tiny().SB20()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	// Performance must improve monotonically with SPB SB size, and SPB
	// SB20 must be within a few percent of the standard at-commit SB56.
	var sb20, sb56 float64
	for _, r := range rows {
		switch r.Name {
		case "spb SB20":
			sb20 = r.Vals[0]
		case "spb SB56":
			sb56 = r.Vals[0]
		}
	}
	if sb20 < 0.90 {
		t.Fatalf("SPB SB20 vs at-commit SB56 = %v, want >= 0.90 (paper: ~1.0)", sb20)
	}
	if sb56 < sb20 {
		t.Fatalf("SPB SB56 (%v) should not lose to SPB SB20 (%v)", sb56, sb20)
	}
}

// TestPFZooShape runs the prefetcher-zoo grid end to end at test scale and
// checks the per-prefetcher normalization is sane: one row per kind, every
// value positive, and nothing wildly above Ideal (a policy can exceed 1.0
// only by measurement noise, not by construction).
func TestPFZooShape(t *testing.T) {
	h := tiny()
	tabs, err := h.PFZoo()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 {
		t.Fatalf("PFZoo returned %d tables, want 1", len(tabs))
	}
	tab := tabs[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("PFZoo has %d rows, want one per prefetcher kind (5)", len(tab.Rows))
	}
	wantRows := []string{"none", "stream", "bop", "dspatch", "hybrid"}
	for i, r := range tab.Rows {
		if r.Name != wantRows[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Name, wantRows[i])
		}
		if len(r.Vals) != len(tab.Cols) {
			t.Fatalf("row %q has %d vals for %d cols", r.Name, len(r.Vals), len(tab.Cols))
		}
		for j, v := range r.Vals {
			if v <= 0 || v > 1.10 {
				t.Fatalf("row %q col %q = %v, want in (0, 1.10]", r.Name, tab.Cols[j], v)
			}
		}
		// SPB must close at least as much of the store-stall gap as
		// at-commit under every prefetcher (the paper's core claim, which
		// generic prefetching must not undo).
		if r.Vals[2] < r.Vals[0]*0.98 {
			t.Fatalf("row %q: spb %v worse than at-commit %v", r.Name, r.Vals[2], r.Vals[0])
		}
	}
}

func TestAllRegistryComplete(t *testing.T) {
	h := tiny()
	all := h.All()
	if len(all) != len(Order) {
		t.Fatalf("registry has %d entries, Order lists %d", len(all), len(Order))
	}
	for _, id := range Order {
		if all[id] == nil {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
}

func TestHarnessMemoizesAcrossFigures(t *testing.T) {
	h := tiny()
	if _, err := h.Fig5(); err != nil {
		t.Fatal(err)
	}
	// Fig 8 reads the same sweep; thanks to memoization this should be
	// nearly instant and, more importantly, identical.
	a, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Format() != b[0].Format() {
		t.Fatal("repeated figure generation must be deterministic")
	}
}
