package figures

import (
	"fmt"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/sim"
	"spb/internal/workloads"
)

// sbSizes are the store-buffer sizes of the main evaluation.
var sbSizes = config.StandardSQSizes // 56, 28, 14

// comparedPolicies are the store-prefetch policies every normalized figure
// sweeps (ideal is the normalization target).
var comparedPolicies = []core.Policy{core.PolicyAtExecute, core.PolicyAtCommit, core.PolicySPB}

// TableI renders the machine configuration (Table I).
func (h *Harness) TableI() ([]Table, error) {
	m := config.Skylake()
	c := m.Core
	t := Table{
		Title: "Table I: configuration parameters (Skylake-X-like, Table I of the paper)",
		Cols:  []string{"value"},
		Rows: []Row{
			{Name: "width (fetch/dispatch/issue/commit)", Vals: []float64{float64(c.Width)}},
			{Name: "ROB entries", Vals: []float64{float64(c.ROBSize)}},
			{Name: "issue queue entries", Vals: []float64{float64(c.IQSize)}},
			{Name: "load queue entries", Vals: []float64{float64(c.LQSize)}},
			{Name: "store queue (SB) entries", Vals: []float64{float64(c.SQSize)}},
			{Name: "int add/mul/div latency", Vals: []float64{float64(c.IntAddLat), float64(c.IntMulLat), float64(c.IntDivLat)}},
			{Name: "fp add/mul/div latency", Vals: []float64{float64(c.FPAddLat), float64(c.FPMulLat), float64(c.FPDivLat)}},
			{Name: "L1D size KB / ways / latency", Vals: []float64{float64(m.L1D.SizeBytes >> 10), float64(m.L1D.Ways), float64(m.L1D.LatencyCyc)}},
			{Name: "L2 size KB / ways / latency", Vals: []float64{float64(m.L2.SizeBytes >> 10), float64(m.L2.Ways), float64(m.L2.LatencyCyc)}},
			{Name: "L3 size KB / ways / latency", Vals: []float64{float64(m.L3.SizeBytes >> 10), float64(m.L3.Ways), float64(m.L3.LatencyCyc)}},
			{Name: "MSHRs per cache", Vals: []float64{float64(m.L1D.MSHRs)}},
			{Name: "DRAM latency / cycles-per-block", Vals: []float64{float64(m.DRAM.LatencyCyc), float64(m.DRAM.CyclesPerBlock)}},
			{Name: "SPB window N / storage bits", Vals: []float64{float64(m.SPB.WindowN), float64(core.StorageBits)}},
		},
	}
	return []Table{t}, nil
}

// TableII renders the five core configurations of Table II.
func (h *Harness) TableII() ([]Table, error) {
	t := Table{
		Title: "Table II: configurations for the sensitivity analysis",
		Cols:  []string{"ROB", "IQ", "LQ", "SQ", "Width"},
	}
	for _, c := range config.Cores() {
		t.Rows = append(t.Rows, Row{Name: c.Name, Vals: []float64{
			float64(c.ROBSize), float64(c.IQSize), float64(c.LQSize),
			float64(c.SQSize), float64(c.Width),
		}})
	}
	return []Table{t}, nil
}

// Fig1 reproduces Figure 1: the ratio of stall cycles due to a full SB under
// the default (at-commit) prefetch policy, as the SB shrinks 56 -> 28 -> 14.
func (h *Harness) Fig1() ([]Table, error) {
	res, err := h.runMatrix(func(name string) []sim.RunSpec {
		var specs []sim.RunSpec
		for _, sq := range sbSizes {
			specs = append(specs, h.spec(name, core.PolicyAtCommit, sq))
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Fig. 1: ratio of stall cycles due to a full SB (at-commit)",
		Cols:  []string{"SB56", "SB28", "SB14"},
	}
	var allRow, boundRow Row
	allRow.Name, boundRow.Name = "All", "SB-Bound"
	for i := range sbSizes {
		all, bound := h.aggregateArith(res, i, func(r sim.Result) float64 { return r.TD.SBStallRatio })
		allRow.Vals = append(allRow.Vals, all)
		boundRow.Vals = append(boundRow.Vals, bound)
	}
	t.Rows = []Row{allRow, boundRow}
	t.Note = "arithmetic mean of per-application SB-stall ratios"
	return []Table{t}, nil
}

// aggregateArith is like aggregate but with an arithmetic mean (used for
// ratios that may legitimately be zero).
func (h *Harness) aggregateArith(res map[string][]sim.Result, idx int, metric func(sim.Result) float64) (all, sbBound float64) {
	var as, bs float64
	var an, bn int
	for _, w := range h.suite() {
		v := metric(res[w.Name][idx])
		as += v
		an++
		if w.SBBound {
			bs += v
			bn++
		}
	}
	if an > 0 {
		all = as / float64(an)
	}
	if bn > 0 {
		sbBound = bs / float64(bn)
	}
	return all, sbBound
}

// Fig3 reproduces Figure 3: where the stores causing SB stalls live
// (application vs C library vs kernel), per SB-bound application.
func (h *Harness) Fig3() ([]Table, error) {
	t := Table{
		Title: "Fig. 3: location of stores causing SB-induced stalls (at-commit, SB56)",
		Cols:  []string{"app", "lib", "kernel"},
	}
	bound := workloads.SBBoundSPEC()
	specs := make([]sim.RunSpec, len(bound))
	for i, w := range bound {
		specs[i] = h.spec(w.Name, core.PolicyAtCommit, 56)
	}
	results, err := h.getAll(specs)
	if err != nil {
		return nil, err
	}
	for i, w := range bound {
		r := results[i]
		total := float64(r.CPU.SBStallApp + r.CPU.SBStallLib + r.CPU.SBStallKernel)
		if total == 0 {
			// No attributed stalls at this scale: nothing to break down.
			continue
		}
		t.Rows = append(t.Rows, Row{Name: w.Name, Vals: []float64{
			float64(r.CPU.SBStallApp) / total,
			float64(r.CPU.SBStallLib) / total,
			float64(r.CPU.SBStallKernel) / total,
		}})
	}
	t.Note = "fraction of SB-stall cycles attributed to the blocking store's PC region"
	return []Table{t}, nil
}

// normPerfSweep runs policy x SB-size and returns performance normalized to
// the ideal SB at the same size (cyclesIdeal / cyclesPolicy).
func (h *Harness) normPerfSweep() (map[string][]sim.Result, error) {
	return h.runMatrix(func(name string) []sim.RunSpec {
		var specs []sim.RunSpec
		for _, sq := range sbSizes {
			for _, p := range comparedPolicies {
				specs = append(specs, h.spec(name, p, sq))
			}
			specs = append(specs, h.spec(name, core.PolicyIdeal, sq))
		}
		return specs
	})
}

// perSizeIdx returns the matrix indices of (size si, policy pi) and the
// ideal run for size si laid out by normPerfSweep.
func perSizeIdx(si, pi int) (run, ideal int) {
	stride := len(comparedPolicies) + 1
	return si*stride + pi, si*stride + len(comparedPolicies)
}

// Fig5 reproduces Figure 5: performance normalized to the ideal SB for each
// policy and SB size, geomean over ALL and over SB-bound applications.
func (h *Harness) Fig5() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for si, sq := range sbSizes {
		t := Table{
			Title: fmt.Sprintf("Fig. 5 (SB%d): performance normalized to Ideal", sq),
			Cols:  []string{"ALL", "SB-BOUND"},
		}
		for pi, p := range comparedPolicies {
			ri, ii := perSizeIdx(si, pi)
			// normalized = idealCycles / policyCycles, per workload.
			var av, bv []float64
			for _, w := range h.suite() {
				rr := res[w.Name]
				v := float64(rr[ii].CPU.Cycles) / float64(rr[ri].CPU.Cycles)
				av = append(av, v)
				if w.SBBound {
					bv = append(bv, v)
				}
			}
			t.Rows = append(t.Rows, Row{Name: p.String(), Vals: []float64{geomean(av), geomean(bv)}})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig6 reproduces Figure 6: per-SB-bound-application performance normalized
// to the ideal SB, one table per SB size (a=14, b=28, c=56).
func (h *Harness) Fig6() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	var tables []Table
	order := []int{2, 1, 0} // paper order: (a) 14, (b) 28, (c) 56
	letters := []string{"a", "b", "c"}
	for oi, si := range order {
		t := Table{
			Title: fmt.Sprintf("Fig. 6(%s): per-application performance normalized to Ideal (SB%d)", letters[oi], sbSizes[si]),
			Cols:  []string{"at-execute", "at-commit", "spb"},
		}
		for _, w := range workloads.SBBoundSPEC() {
			rr := res[w.Name]
			var vals []float64
			for pi := range comparedPolicies {
				ri, ii := perSizeIdx(si, pi)
				vals = append(vals, float64(rr[ii].CPU.Cycles)/float64(rr[ri].CPU.Cycles))
			}
			t.Rows = append(t.Rows, Row{Name: w.Name, Vals: vals})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7 reproduces Figure 7: energy normalized to at-commit, broken into
// cache dynamic, core dynamic and total (dynamic+static).
func (h *Harness) Fig7() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for si, sq := range sbSizes {
		t := Table{
			Title: fmt.Sprintf("Fig. 7 (SB%d): energy normalized to at-commit (less is better)", sq),
			Cols:  []string{"cacheDyn ALL", "coreDyn ALL", "total ALL", "total SB-BOUND"},
		}
		base := 1 // at-commit position in comparedPolicies
		for pi, p := range comparedPolicies {
			if pi == base {
				continue
			}
			ri, _ := perSizeIdx(si, pi)
			bi, _ := perSizeIdx(si, base)
			var cd, od, tt, ttb []float64
			for _, w := range h.suite() {
				rr := res[w.Name]
				cd = append(cd, rr[ri].Energy.CacheDynamic/rr[bi].Energy.CacheDynamic)
				od = append(od, rr[ri].Energy.CoreDynamic/rr[bi].Energy.CoreDynamic)
				v := rr[ri].Energy.Total() / rr[bi].Energy.Total()
				tt = append(tt, v)
				if w.SBBound {
					ttb = append(ttb, v)
				}
			}
			t.Rows = append(t.Rows, Row{Name: p.String(), Vals: []float64{
				geomean(cd), geomean(od), geomean(tt), geomean(ttb),
			}})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig8 reproduces Figure 8: SB stalls normalized to at-commit.
func (h *Harness) Fig8() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Fig. 8: SB stall cycles normalized to at-commit (less is better)",
		Cols:  []string{"SB56 ALL", "SB56 SB-BOUND", "SB28 ALL", "SB28 SB-BOUND", "SB14 ALL", "SB14 SB-BOUND"},
	}
	for pi, p := range comparedPolicies {
		if p == core.PolicyAtCommit {
			continue
		}
		row := Row{Name: p.String()}
		for si := range sbSizes {
			ri, _ := perSizeIdx(si, pi)
			bi, _ := perSizeIdx(si, 1)
			var av, bv []float64
			for _, w := range h.suite() {
				rr := res[w.Name]
				den := float64(rr[bi].CPU.SBStallCycles)
				if den == 0 {
					den = 1
				}
				v := float64(rr[ri].CPU.SBStallCycles) / den
				av = append(av, v)
				if w.SBBound {
					bv = append(bv, v)
				}
			}
			row.Vals = append(row.Vals, arith(av), arith(bv))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

func arith(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Fig9 reproduces Figure 9: per-SB-bound-application SB stalls normalized to
// at-commit, one table per SB size.
func (h *Harness) Fig9() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for si, sq := range []int{14, 28, 56} {
		mi := map[int]int{14: 2, 28: 1, 56: 0}[sq]
		t := Table{
			Title: fmt.Sprintf("Fig. 9 (SB%d): per-application SB stalls normalized to at-commit", sq),
			Cols:  []string{"at-execute", "spb"},
		}
		_ = si
		for _, w := range workloads.SBBoundSPEC() {
			rr := res[w.Name]
			_, _ = perSizeIdx(mi, 0)
			bi, _ := perSizeIdx(mi, 1)
			den := float64(rr[bi].CPU.SBStallCycles)
			if den == 0 {
				den = 1
			}
			ae, _ := perSizeIdx(mi, 0)
			sp, _ := perSizeIdx(mi, 2)
			t.Rows = append(t.Rows, Row{Name: w.Name, Vals: []float64{
				float64(rr[ae].CPU.SBStallCycles) / den,
				float64(rr[sp].CPU.SBStallCycles) / den,
			}})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig10 reproduces Figure 10: issue stalls normalized to at-commit, broken
// into SB-caused and other-resource-caused parts.
func (h *Harness) Fig10() ([]Table, error) {
	res, err := h.runMatrix(func(name string) []sim.RunSpec {
		var specs []sim.RunSpec
		for _, sq := range sbSizes {
			for _, p := range []core.Policy{core.PolicyAtExecute, core.PolicyAtCommit, core.PolicySPB, core.PolicyIdeal} {
				specs = append(specs, h.spec(name, p, sq))
			}
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	policies := []core.Policy{core.PolicyAtExecute, core.PolicyAtCommit, core.PolicySPB, core.PolicyIdeal}
	var tables []Table
	for si, sq := range sbSizes {
		t := Table{
			Title: fmt.Sprintf("Fig. 10 (SB%d): issue stalls normalized to at-commit", sq),
			Cols:  []string{"SB part", "Other part", "Net"},
		}
		for pi, p := range policies {
			if p == core.PolicyAtCommit {
				continue
			}
			idx := si*len(policies) + pi
			base := si*len(policies) + 1
			var sb, other []float64
			for _, w := range h.suite() {
				rr := res[w.Name]
				den := float64(rr[base].CPU.IssueStallCycles())
				if den == 0 {
					den = 1
				}
				sb = append(sb, float64(rr[idx].CPU.SBStallCycles)/den)
				other = append(other, float64(rr[idx].CPU.OtherStallCycles())/den)
			}
			sbm, otm := arith(sb), arith(other)
			t.Rows = append(t.Rows, Row{Name: p.String(), Vals: []float64{sbm, otm, sbm + otm}})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig11 reproduces Figure 11: the breakdown of store-prefetch outcomes
// (successful, late, early, never used) for at-commit and SPB.
func (h *Harness) Fig11() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for si, sq := range sbSizes {
		t := Table{
			Title: fmt.Sprintf("Fig. 11 (SB%d): store-prefetch outcome breakdown (fractions of usable prefetches)", sq),
			Cols:  []string{"successful", "late", "early", "never-used"},
		}
		for _, p := range []core.Policy{core.PolicyAtCommit, core.PolicySPB} {
			pi := 1
			if p == core.PolicySPB {
				pi = 2
			}
			ri, _ := perSizeIdx(si, pi)
			var s, l, e, n []float64
			for _, w := range h.suite() {
				m := res[w.Name][ri].Mem
				den := float64(m.SPFIssued - m.SPFDiscarded)
				if den <= 0 {
					continue
				}
				s = append(s, float64(m.SPFSuccessful)/den)
				l = append(l, float64(m.SPFLate)/den)
				e = append(e, float64(m.SPFEarly)/den)
				n = append(n, float64(m.SPFNeverUsed())/den)
			}
			t.Rows = append(t.Rows, Row{Name: p.String(), Vals: []float64{
				arith(s), arith(l), arith(e), arith(n),
			}})
		}
		t.Note = "denominator excludes requests discarded because the block was already owned (PopReq)"
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12 reproduces Figure 12: prefetch traffic normalized to at-commit —
// requests from the CPU to the L1 controller (REQ) and the subset missing to
// the L2 (MISS).
func (h *Harness) Fig12() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Fig. 12: SPB prefetch traffic normalized to at-commit",
		Cols:  []string{"REQ ALL", "REQ SB-BOUND", "MISS ALL", "MISS SB-BOUND"},
	}
	for si, sq := range sbSizes {
		ri, _ := perSizeIdx(si, 2)
		bi, _ := perSizeIdx(si, 1)
		var reqA, reqB, missA, missB []float64
		for _, w := range h.suite() {
			rr := res[w.Name]
			req := ratio(rr[ri].Mem.SPFIssued, rr[bi].Mem.SPFIssued)
			miss := ratio(rr[ri].Mem.SPFMissToL2, rr[bi].Mem.SPFMissToL2)
			reqA = append(reqA, req)
			missA = append(missA, miss)
			if w.SBBound {
				reqB = append(reqB, req)
				missB = append(missB, miss)
			}
		}
		t.Rows = append(t.Rows, Row{Name: fmt.Sprintf("SB%d", sq), Vals: []float64{
			arith(reqA), arith(reqB), arith(missA), arith(missB),
		}})
	}
	return []Table{t}, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

// Fig13 reproduces Figure 13: L1D tag-access overhead of SPB vs at-commit.
func (h *Harness) Fig13() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Fig. 13: L1D tag accesses normalized to at-commit",
		Cols:  []string{"ALL", "SB-BOUND"},
	}
	for si, sq := range sbSizes {
		ri, _ := perSizeIdx(si, 2)
		bi, _ := perSizeIdx(si, 1)
		var av, bv []float64
		for _, w := range h.suite() {
			rr := res[w.Name]
			v := ratio(rr[ri].Mem.L1TagAccesses, rr[bi].Mem.L1TagAccesses)
			av = append(av, v)
			if w.SBBound {
				bv = append(bv, v)
			}
		}
		t.Rows = append(t.Rows, Row{Name: fmt.Sprintf("SB%d", sq), Vals: []float64{arith(av), arith(bv)}})
	}
	return []Table{t}, nil
}

// Fig14 reproduces Figure 14: execution stalls with L1D misses pending,
// normalized to at-commit.
func (h *Harness) Fig14() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Fig. 14: execution stalls with L1D misses pending, normalized to at-commit",
		Cols:  []string{"ALL", "SB-BOUND"},
	}
	for si, sq := range sbSizes {
		ri, _ := perSizeIdx(si, 2)
		bi, _ := perSizeIdx(si, 1)
		var av, bv []float64
		for _, w := range h.suite() {
			rr := res[w.Name]
			v := ratio(rr[ri].CPU.ExecStallL1DPending, rr[bi].CPU.ExecStallL1DPending)
			av = append(av, v)
			if w.SBBound {
				bv = append(bv, v)
			}
		}
		t.Rows = append(t.Rows, Row{Name: fmt.Sprintf("SB%d (spb)", sq), Vals: []float64{arith(av), arith(bv)}})
	}
	return []Table{t}, nil
}

// Fig15 reproduces Figure 15: the per-SB-bound-application version of
// Fig. 14 (including the roms pathology).
func (h *Harness) Fig15() ([]Table, error) {
	res, err := h.normPerfSweep()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, sq := range []int{14, 28, 56} {
		si := map[int]int{56: 0, 28: 1, 14: 2}[sq]
		t := Table{
			Title: fmt.Sprintf("Fig. 15 (SB%d): per-application execution stalls with L1D misses pending (norm. to at-commit)", sq),
			Cols:  []string{"at-execute", "spb"},
		}
		for _, w := range workloads.SBBoundSPEC() {
			rr := res[w.Name]
			ae, _ := perSizeIdx(si, 0)
			sp, _ := perSizeIdx(si, 2)
			bi, _ := perSizeIdx(si, 1)
			t.Rows = append(t.Rows, Row{Name: w.Name, Vals: []float64{
				ratio(rr[ae].CPU.ExecStallL1DPending, rr[bi].CPU.ExecStallL1DPending),
				ratio(rr[sp].CPU.ExecStallL1DPending, rr[bi].CPU.ExecStallL1DPending),
			}})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig16 reproduces Figure 16: at-commit and SPB under each generic L1
// prefetcher (stream, aggressive, adaptive), normalized to the ideal SB with
// the same prefetcher.
func (h *Harness) Fig16() ([]Table, error) {
	kinds := []config.PrefetcherKind{config.PrefetchStream, config.PrefetchAggressive, config.PrefetchAdaptive}
	pols := []core.Policy{core.PolicyAtCommit, core.PolicySPB, core.PolicyIdeal}
	sizes := []int{56, 14}
	res, err := h.runMatrix(func(name string) []sim.RunSpec {
		var specs []sim.RunSpec
		for _, k := range kinds {
			for _, sq := range sizes {
				for _, p := range pols {
					s := h.spec(name, p, sq)
					s.Prefetcher = k
					specs = append(specs, s)
				}
			}
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	var tables []Table
	for ki, k := range kinds {
		t := Table{
			Title: fmt.Sprintf("Fig. 16 (%s prefetcher): performance normalized to Ideal+%s", k, k),
			Cols:  []string{"SB56 ALL", "SB56 SB-BOUND", "SB14 ALL", "SB14 SB-BOUND"},
		}
		for pi, p := range pols[:2] {
			row := Row{Name: p.String()}
			for szi := range sizes {
				base := ki*len(sizes)*len(pols) + szi*len(pols)
				var av, bv []float64
				for _, w := range h.suite() {
					rr := res[w.Name]
					v := float64(rr[base+2].CPU.Cycles) / float64(rr[base+pi].CPU.Cycles)
					av = append(av, v)
					if w.SBBound {
						bv = append(bv, v)
					}
				}
				row.Vals = append(row.Vals, geomean(av), geomean(bv))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig17 reproduces Figure 17: at-commit and SPB across the five Table II
// cores, at the full and half SB sizes, normalized to the ideal SB.
func (h *Harness) Fig17() ([]Table, error) {
	cores := config.Cores()
	pols := []core.Policy{core.PolicyAtCommit, core.PolicySPB, core.PolicyIdeal}
	res, err := h.runMatrix(func(name string) []sim.RunSpec {
		var specs []sim.RunSpec
		for _, c := range cores {
			for _, sq := range []int{c.SQSize, c.SQSize / 2} {
				for _, p := range pols {
					s := h.spec(name, p, sq)
					s.CoreName = c.Name
					specs = append(specs, s)
				}
			}
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	var tables []Table
	for szi, label := range []string{"full SB", "half SB"} {
		t := Table{
			Title: fmt.Sprintf("Fig. 17 (%s): performance normalized to Ideal across core configurations", label),
			Cols:  []string{"at-commit", "spb"},
		}
		for ci, c := range cores {
			base := ci*2*len(pols) + szi*len(pols)
			var vals []float64
			for pi := range pols[:2] {
				var av []float64
				for _, w := range h.suite() {
					rr := res[w.Name]
					av = append(av, float64(rr[base+2].CPU.Cycles)/float64(rr[base+pi].CPU.Cycles))
				}
				vals = append(vals, geomean(av))
			}
			t.Rows = append(t.Rows, Row{Name: c.Name, Vals: vals})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig18 reproduces Figure 18: the PARSEC-like 8-thread suite, performance
// normalized to the ideal SB for SB56 and SB14.
func (h *Harness) Fig18() ([]Table, error) {
	suite := workloads.PARSEC()
	pols := []core.Policy{core.PolicyAtExecute, core.PolicyAtCommit, core.PolicySPB, core.PolicyIdeal}
	sizes := []int{56, 14}
	threads := 8
	insts := h.scale.Insts / 4 // per thread; parallel runs are 8x the work
	if insts < 20_000 {
		insts = 20_000
	}
	var specs []sim.RunSpec
	for _, p := range suite {
		for _, sq := range sizes {
			for _, pol := range pols {
				specs = append(specs, sim.RunSpec{
					Workload: p.Name, Policy: pol, SQSize: sq,
					Prefetcher: config.PrefetchStream, Cores: threads, Insts: insts,
					Sampling: h.scale.Sampling,
				})
			}
		}
	}
	results, err := h.getAll(specs)
	if err != nil {
		return nil, err
	}
	var tables []Table
	per := len(sizes) * len(pols)
	for szi, sq := range sizes {
		t := Table{
			Title: fmt.Sprintf("Fig. 18 (SB%d): PARSEC (8 threads) performance normalized to Ideal", sq),
			Cols:  []string{"ALL", "SB-BOUND"},
		}
		for pi, pol := range pols[:3] {
			var av, bv []float64
			for wi, p := range suite {
				base := wi*per + szi*len(pols)
				v := float64(results[base+3].CPU.Cycles) / float64(results[base+pi].CPU.Cycles)
				av = append(av, v)
				if p.SBBound {
					bv = append(bv, v)
				}
			}
			t.Rows = append(t.Rows, Row{Name: pol.String(), Vals: []float64{geomean(av), geomean(bv)}})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// SB20 reproduces the §VI.A claim that a 20-entry SB with SPB matches the
// average performance of a standard 56-entry SB with at-commit.
func (h *Harness) SB20() ([]Table, error) {
	sizes := []int{14, 20, 28, 56}
	res, err := h.runMatrix(func(name string) []sim.RunSpec {
		specs := []sim.RunSpec{h.spec(name, core.PolicyAtCommit, 56)}
		for _, sq := range sizes {
			specs = append(specs, h.spec(name, core.PolicySPB, sq))
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Claim (§VI.A): SPB SB-size sweep vs the standard at-commit SB56 (performance normalized to at-commit SB56)",
		Cols:  []string{"ALL"},
	}
	for i, sq := range sizes {
		var av []float64
		for _, w := range h.suite() {
			rr := res[w.Name]
			av = append(av, float64(rr[0].CPU.Cycles)/float64(rr[1+i].CPU.Cycles))
		}
		t.Rows = append(t.Rows, Row{Name: fmt.Sprintf("spb SB%d", sq), Vals: []float64{geomean(av)}})
	}
	t.Note = ">= 1.0 means the SPB configuration matches or beats the standard 56-entry SB"
	return []Table{t}, nil
}

// SensN reproduces the §IV.C sensitivity analysis: the SPB window N and the
// dynamic store-size ablation, on the SB-bound set.
func (h *Harness) SensN() ([]Table, error) {
	ns := []int{8, 16, 24, 32, 48, 64}
	var specs []sim.RunSpec
	bound := workloads.SBBoundSPEC()
	for _, w := range bound {
		specs = append(specs, h.spec(w.Name, core.PolicyIdeal, 28))
		for _, n := range ns {
			s := h.spec(w.Name, core.PolicySPB, 28)
			s.WindowN = n
			specs = append(specs, s)
		}
		dyn := h.spec(w.Name, core.PolicySPB, 28)
		dyn.DynamicSPB = true
		specs = append(specs, dyn)
	}
	results, err := h.getAll(specs)
	if err != nil {
		return nil, err
	}
	per := len(ns) + 2
	t := Table{
		Title: "§IV.C sensitivity: SPB window N and the dynamic-S ablation (SB28, SB-bound apps, normalized to Ideal)",
		Cols:  []string{"SB-BOUND"},
	}
	for ni, n := range ns {
		var vals []float64
		for wi := range bound {
			base := wi * per
			vals = append(vals, float64(results[base].CPU.Cycles)/float64(results[base+1+ni].CPU.Cycles))
		}
		t.Rows = append(t.Rows, Row{Name: fmt.Sprintf("N=%d", n), Vals: []float64{geomean(vals)}})
	}
	var dvals []float64
	for wi := range bound {
		base := wi * per
		dvals = append(dvals, float64(results[base].CPU.Cycles)/float64(results[base+per-1].CPU.Cycles))
	}
	t.Rows = append(t.Rows, Row{Name: "dynamic-S (N=48)", Vals: []float64{geomean(dvals)}})
	return []Table{t}, nil
}

// All maps experiment ids to their generators.
func (h *Harness) All() map[string]func() ([]Table, error) {
	return map[string]func() ([]Table, error){
		"tableI":     h.TableI,
		"tableII":    h.TableII,
		"fig1":       h.Fig1,
		"fig3":       h.Fig3,
		"fig5":       h.Fig5,
		"fig6":       h.Fig6,
		"fig7":       h.Fig7,
		"fig8":       h.Fig8,
		"fig9":       h.Fig9,
		"fig10":      h.Fig10,
		"fig11":      h.Fig11,
		"fig12":      h.Fig12,
		"fig13":      h.Fig13,
		"fig14":      h.Fig14,
		"fig15":      h.Fig15,
		"fig16":      h.Fig16,
		"fig17":      h.Fig17,
		"fig18":      h.Fig18,
		"sb20":       h.SB20,
		"sensN":      h.SensN,
		"extensions": h.Extensions,
		"pfzoo":      h.PFZoo,
	}
}

// Order is the presentation order of the experiments.
var Order = []string{
	"tableI", "tableII", "fig1", "fig3", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
	"fig17", "fig18", "sb20", "sensN", "extensions", "pfzoo",
}
