package figures

import "testing"

func TestExpectationsWellFormed(t *testing.T) {
	exps := Expectations()
	if len(exps) < 10 {
		t.Fatalf("only %d expectations, want the paper's headline claims", len(exps))
	}
	for _, e := range exps {
		if e.ID == "" || e.Claim == "" {
			t.Fatalf("expectation missing identity: %+v", e)
		}
		if e.Lo >= e.Hi {
			t.Fatalf("%s: empty band [%v, %v]", e.Claim, e.Lo, e.Hi)
		}
		if e.fetch == nil {
			t.Fatalf("%s: no fetch function", e.Claim)
		}
	}
}

func TestVerifyAllClaimsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("verification sweep skipped in -short mode")
	}
	h := NewHarness(Scale{Insts: 60_000, SBBoundOnly: true})
	for _, r := range h.Verify() {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Claim, r.Err)
			continue
		}
		if !r.Pass {
			t.Errorf("%s: measured %.3f outside [%.2f, %.2f] (paper %.3f)",
				r.Claim, r.Measured, r.Lo, r.Hi, r.Paper)
		}
	}
}
