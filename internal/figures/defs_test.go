package figures

import (
	"testing"
)

// micro is an even smaller harness for exercising the expensive sweeps.
func micro() *Harness {
	return NewHarness(Scale{Insts: 15_000, SBBoundOnly: true})
}

func TestFig6PerAppTables(t *testing.T) {
	tabs, err := tiny().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig6 should render 3 tables (SB14/28/56), got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 8 {
			t.Fatalf("%s: %d rows, want the 8 SB-bound apps", tab.Title, len(tab.Rows))
		}
		for _, r := range tab.Rows {
			if len(r.Vals) != 3 {
				t.Fatalf("%s/%s: %d policies, want 3", tab.Title, r.Name, len(r.Vals))
			}
			for _, v := range r.Vals {
				if v <= 0 || v > 1.5 {
					t.Fatalf("%s/%s: normalized perf %v out of range", tab.Title, r.Name, v)
				}
			}
		}
	}
}

func TestFig7EnergyTables(t *testing.T) {
	tabs, err := tiny().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig7 should render 3 tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		for _, r := range tab.Rows {
			for i, v := range r.Vals {
				if v <= 0.2 || v > 3 {
					t.Fatalf("%s/%s col %d: energy ratio %v implausible", tab.Title, r.Name, i, v)
				}
			}
		}
	}
}

func TestFig9Tables(t *testing.T) {
	tabs, err := tiny().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig9 should render 3 tables, got %d", len(tabs))
	}
}

func TestFig10NetParts(t *testing.T) {
	tabs, err := tiny().Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		for _, r := range tab.Rows {
			if len(r.Vals) != 3 {
				t.Fatalf("%s/%s: want SB/Other/Net", tab.Title, r.Name)
			}
			if net := r.Vals[0] + r.Vals[1]; net != r.Vals[2] {
				t.Fatalf("%s/%s: Net %v != SB %v + Other %v",
					tab.Title, r.Name, r.Vals[2], r.Vals[0], r.Vals[1])
			}
		}
	}
}

func TestFig13And14Ratios(t *testing.T) {
	h := tiny()
	for name, gen := range map[string]func() ([]Table, error){
		"fig13": h.Fig13,
		"fig14": h.Fig14,
	} {
		tabs, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range tabs[0].Rows {
			for _, v := range r.Vals {
				if v <= 0 || v > 3 {
					t.Fatalf("%s/%s: ratio %v implausible", name, r.Name, v)
				}
			}
		}
	}
}

func TestFig15Tables(t *testing.T) {
	tabs, err := tiny().Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig15 should render 3 tables, got %d", len(tabs))
	}
}

func TestFig16AcrossPrefetchers(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	tabs, err := micro().Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig16 should render one table per prefetcher, got %d", len(tabs))
	}
	for _, tab := range tabs {
		var atCommit, spb float64
		for _, r := range tab.Rows {
			switch r.Name {
			case "at-commit":
				atCommit = r.Vals[3] // SB14 SB-BOUND
			case "spb":
				spb = r.Vals[3]
			}
		}
		// The paper's §VI.D point: SPB is still needed on top of any
		// generic prefetcher.
		if spb <= atCommit {
			t.Fatalf("%s: spb (%v) must beat at-commit (%v) at SB14", tab.Title, spb, atCommit)
		}
	}
}

func TestFig17CoreSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	tabs, err := micro().Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("Fig17 should render full/half SB tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 5 {
			t.Fatalf("%s: want 5 cores", tab.Title)
		}
		for _, r := range tab.Rows {
			if r.Vals[1] <= r.Vals[0]*0.9 {
				t.Fatalf("%s/%s: spb (%v) far below at-commit (%v)",
					tab.Title, r.Name, r.Vals[1], r.Vals[0])
			}
		}
	}
}

func TestFig18Parsec(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	tabs, err := micro().Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("Fig18 should render SB56/SB14 tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 3 {
			t.Fatalf("%s: want 3 policies", tab.Title)
		}
	}
}

func TestSensNWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweep")
	}
	tabs, err := micro().SensN()
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 7 { // 6 window sizes + dynamic
		t.Fatalf("SensN should list 6 N values + dynamic, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Vals[0] <= 0.3 || r.Vals[0] > 1.3 {
			t.Fatalf("%s: normalized perf %v implausible", r.Name, r.Vals[0])
		}
	}
}
