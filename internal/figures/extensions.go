package figures

import (
	"spb/internal/core"
	"spb/internal/sim"
	"spb/internal/workloads"
)

// Extensions runs the ablation study of the variants the paper mentions but
// does not evaluate: backward bursts (§IV.A), cross-page bursts (footnote
// 2), the dynamic store-size threshold (§IV.C), and the related-work
// store-coalescing SB (§VII.B) — each against plain SPB and the at-commit
// baseline on the SB-bound suite with a 14-entry SB.
func (h *Harness) Extensions() ([]Table, error) {
	type variant struct {
		name string
		mut  func(*sim.RunSpec)
	}
	variants := []variant{
		{"at-commit", func(s *sim.RunSpec) { s.Policy = core.PolicyAtCommit }},
		{"spb (paper)", func(s *sim.RunSpec) {}},
		{"spb + backward bursts", func(s *sim.RunSpec) { s.BackwardBursts = true }},
		{"spb + cross-page bursts", func(s *sim.RunSpec) { s.CrossPageBursts = true }},
		{"spb + dynamic-S", func(s *sim.RunSpec) { s.DynamicSPB = true }},
		{"spb + coalescing SB", func(s *sim.RunSpec) { s.CoalesceSB = true }},
		{"at-commit + coalescing SB", func(s *sim.RunSpec) {
			s.Policy = core.PolicyAtCommit
			s.CoalesceSB = true
		}},
	}
	bound := workloads.SBBoundSPEC()
	var specs []sim.RunSpec
	for _, w := range bound {
		ideal := h.spec(w.Name, core.PolicyIdeal, 14)
		specs = append(specs, ideal)
		for _, v := range variants {
			s := h.spec(w.Name, core.PolicySPB, 14)
			v.mut(&s)
			specs = append(specs, s)
		}
	}
	results, err := h.getAll(specs)
	if err != nil {
		return nil, err
	}
	per := len(variants) + 1
	t := Table{
		Title: "Extensions ablation (SB14, SB-bound apps, performance normalized to Ideal)",
		Cols:  []string{"SB-BOUND"},
		Note:  "variants the paper discusses but does not evaluate, plus the coalescing-SB alternative from related work",
	}
	for vi, v := range variants {
		var vals []float64
		for wi := range bound {
			base := wi * per
			vals = append(vals, float64(results[base].CPU.Cycles)/float64(results[base+1+vi].CPU.Cycles))
		}
		t.Rows = append(t.Rows, Row{Name: v.name, Vals: []float64{geomean(vals)}})
	}
	return []Table{t}, nil
}
