package figures

import (
	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/sim"
)

// PFZoo extends Figure 16 to the full prefetcher zoo: the store-prefetch
// policies under every generic L1 prefetcher — none, the baseline stream,
// Best-Offset, DSPatch and the hybrid arbiter — at the stressful 14-entry
// SB. Normalization is per-prefetcher, Fig. 16 style: each policy is
// divided into the Ideal SB running the SAME prefetcher, so the columns
// isolate how much of the remaining store-stall gap each policy closes
// given that prefetcher, rather than how good the prefetcher itself is.
func (h *Harness) PFZoo() ([]Table, error) {
	kinds := []config.PrefetcherKind{
		config.PrefetchNone, config.PrefetchStream, config.PrefetchBOP,
		config.PrefetchDSPatch, config.PrefetchHybrid,
	}
	pols := []core.Policy{core.PolicyAtCommit, core.PolicySPB, core.PolicyIdeal}
	res, err := h.runMatrix(func(name string) []sim.RunSpec {
		var specs []sim.RunSpec
		for _, k := range kinds {
			for _, p := range pols {
				s := h.spec(name, p, 14)
				s.Prefetcher = k
				specs = append(specs, s)
			}
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Prefetcher zoo (SB14): policies normalized per-prefetcher to Ideal with the same prefetcher",
		Cols: []string{
			"at-commit ALL", "at-commit SB-BOUND", "spb ALL", "spb SB-BOUND",
		},
		Note: "rows are generic L1 prefetchers; a column value of 1.0 means the policy fully hides store stalls under that prefetcher",
	}
	for ki, k := range kinds {
		row := Row{Name: k.String()}
		base := ki * len(pols)
		for pi := range pols[:2] {
			var av, bv []float64
			for _, w := range h.suite() {
				rr := res[w.Name]
				v := float64(rr[base+2].CPU.Cycles) / float64(rr[base+pi].CPU.Cycles)
				av = append(av, v)
				if w.SBBound {
					bv = append(bv, v)
				}
			}
			row.Vals = append(row.Vals, geomean(av), geomean(bv))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
