package figures

import (
	"fmt"

	"spb/internal/core"
)

// Expectation is one checkable claim of the paper: the value the paper
// reports, and the band the reproduction must land in at the harness's
// scale (bands are wider than the paper-vs-full-scale gap because the
// verifier also runs at reduced scale).
type Expectation struct {
	// ID names the experiment the claim comes from.
	ID string
	// Claim is the human-readable statement.
	Claim string
	// Paper is the value the paper reports (for display).
	Paper float64
	// Lo and Hi bound the acceptable measured value.
	Lo, Hi float64
	// fetch computes the measured value.
	fetch func(h *Harness) (float64, error)
}

// VerifyResult is the outcome of checking one expectation.
type VerifyResult struct {
	Expectation
	Measured float64
	Pass     bool
	Err      error
}

// Expectations lists the paper's headline claims as checkable bands.
func Expectations() []Expectation {
	fig5 := func(si, pi int, bound bool) func(h *Harness) (float64, error) {
		return func(h *Harness) (float64, error) {
			tabs, err := h.Fig5()
			if err != nil {
				return 0, err
			}
			col := 0
			if bound {
				col = 1
			}
			return tabs[si].Rows[pi].Vals[col], nil
		}
	}
	return []Expectation{
		{
			ID:    "fig1",
			Claim: "SB stalls grow as the SB shrinks (SB14/SB56 stall ratio, SB-bound)",
			Paper: 3.0, Lo: 1.3, Hi: 20,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.Fig1()
				if err != nil {
					return 0, err
				}
				b := tabs[0].Rows[1].Vals
				if b[0] == 0 {
					return 0, fmt.Errorf("no SB stalls at SB56")
				}
				return b[2] / b[0], nil
			},
		},
		{
			ID:    "fig5",
			Claim: "at-commit at SB14 (SB-bound, vs ideal)",
			Paper: 0.701, Lo: 0.55, Hi: 0.85,
			fetch: fig5(2, 1, true),
		},
		{
			ID:    "fig5",
			Claim: "SPB at SB14 (SB-bound, vs ideal)",
			Paper: 0.926, Lo: 0.85, Hi: 1.05,
			fetch: fig5(2, 2, true),
		},
		{
			ID:    "fig5",
			Claim: "at-commit at SB56 (SB-bound, vs ideal)",
			Paper: 0.955, Lo: 0.88, Hi: 1.02,
			fetch: fig5(0, 1, true),
		},
		{
			ID:    "fig5",
			Claim: "SPB at SB56 (SB-bound, vs ideal)",
			Paper: 1.023, Lo: 0.93, Hi: 1.08,
			fetch: fig5(0, 2, true),
		},
		{
			ID:    "fig8",
			Claim: "SPB reduces SB stalls vs at-commit (SB14, SB-bound ratio)",
			Paper: 0.66, Lo: 0.0, Hi: 0.9,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.Fig8()
				if err != nil {
					return 0, err
				}
				for _, r := range tabs[0].Rows {
					if r.Name == core.PolicySPB.String() {
						return r.Vals[5], nil
					}
				}
				return 0, fmt.Errorf("spb row missing")
			},
		},
		{
			ID:    "fig11",
			Claim: "SPB prefetches are mostly timely at SB14 (successful fraction)",
			Paper: 0.47, Lo: 0.30, Hi: 0.95,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.Fig11()
				if err != nil {
					return 0, err
				}
				for _, r := range tabs[2].Rows {
					if r.Name == core.PolicySPB.String() {
						return r.Vals[0], nil
					}
				}
				return 0, fmt.Errorf("spb row missing")
			},
		},
		{
			ID:    "fig11",
			Claim: "at-commit prefetches are mostly late at SB14 (late fraction)",
			Paper: 0.90, Lo: 0.55, Hi: 1.0,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.Fig11()
				if err != nil {
					return 0, err
				}
				for _, r := range tabs[2].Rows {
					if r.Name == core.PolicyAtCommit.String() {
						return r.Vals[1], nil
					}
				}
				return 0, fmt.Errorf("at-commit row missing")
			},
		},
		{
			ID:    "fig12",
			Claim: "SPB raises prefetch requests moderately (REQ ratio, SB-bound, SB14)",
			Paper: 1.1, Lo: 1.0, Hi: 1.6,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.Fig12()
				if err != nil {
					return 0, err
				}
				return tabs[0].Rows[2].Vals[1], nil
			},
		},
		{
			ID:    "fig7",
			Claim: "SPB saves net energy at SB14 (total, SB-bound, vs at-commit)",
			Paper: 0.832, Lo: 0.6, Hi: 1.0,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.Fig7()
				if err != nil {
					return 0, err
				}
				for _, r := range tabs[2].Rows {
					if r.Name == core.PolicySPB.String() {
						return r.Vals[3], nil
					}
				}
				return 0, fmt.Errorf("spb row missing")
			},
		},
		{
			ID:    "sb20",
			Claim: "a 20-entry SB with SPB matches the standard 56-entry SB",
			Paper: 1.0, Lo: 0.9, Hi: 1.15,
			fetch: func(h *Harness) (float64, error) {
				tabs, err := h.SB20()
				if err != nil {
					return 0, err
				}
				for _, r := range tabs[0].Rows {
					if r.Name == "spb SB20" {
						return r.Vals[0], nil
					}
				}
				return 0, fmt.Errorf("SB20 row missing")
			},
		},
	}
}

// Verify evaluates every expectation against the harness.
func (h *Harness) Verify() []VerifyResult {
	var out []VerifyResult
	for _, e := range Expectations() {
		r := VerifyResult{Expectation: e}
		r.Measured, r.Err = e.fetch(h)
		r.Pass = r.Err == nil && r.Measured >= e.Lo && r.Measured <= e.Hi
		out = append(out, r)
	}
	return out
}
