// Package faults is a deterministic, seeded fault injector for resilience
// testing. Production code is instrumented with named injection *sites*
// ("store.read", "batch.stream", "client.request", ...); a fault spec —
// parsed from the SPB_FAULTS environment variable or the spbd -faults flag —
// attaches rules to those sites that inject errors, latency, payload
// corruption, or connection cuts at a configured rate.
//
// Two properties make the injector usable as a test harness rather than a
// chaos monkey:
//
//   - Deterministic: whether the n-th hit of a rule fires is a pure function
//     of (seed, site, kind, n), computed by hashing, never by a shared RNG.
//     Two processes running the same spec see the same fire pattern per
//     site, and faults at one site never perturb the sequence at another —
//     goroutine interleaving across sites cannot change any decision.
//   - Zero-cost when disabled: every method is nil-safe, so production call
//     sites pass through a nil *Injector and pay one pointer comparison.
//
// Spec grammar (clauses separated by ';' or ','):
//
//	seed=N                               decision seed (default 1)
//	SITE:KIND:RATE[:DURATION][:limit=N][:after=N]
//
// KIND is one of "error" (return an injected error), "delay" (sleep
// DURATION), "corrupt" (flip one deterministic bit of a payload), or "cut"
// (abort a stream / connection). RATE is the per-hit fire probability in
// [0,1]. "after=N" skips the first N hits; "limit=N" caps total fires.
//
// Example:
//
//	SPB_FAULTS="seed=7;store.read:corrupt:0.5;batch.stream:cut:0.1;client.request:delay:0.3:20ms"
//
// Sites wired into the repo (see DESIGN.md §10):
//
//	submit         error   spbd job submission fails with a 503 + Retry-After
//	run            delay   worker stalls before executing a simulation
//	store.read     error   disk-cache read I/O failure
//	store.read     corrupt disk-cache entry bit-flipped after read
//	store.write    error   disk-cache write I/O failure
//	store.write    delay   slow disk on the persistence path
//	batch.stream   cut     /v1/batch NDJSON response killed mid-stream
//	batch.stream   delay   slow NDJSON streaming
//	client.request error   client transport fails before the request is sent
//	client.request delay   client-side network latency
//	gossip.drop    error   a cluster gossip exchange is lost (sender side)
//	steal.cut      cut     steal response severed after job ownership moved
//	peer.read      error   peer cache read-through endpoint fails with a 500
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind classifies what a rule injects.
type Kind uint8

const (
	KindError Kind = iota
	KindDelay
	KindCorrupt
	KindCut
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	case KindCut:
		return "cut"
	}
	return fmt.Sprintf("kind(%d)", k)
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "error", "err":
		return KindError, nil
	case "delay":
		return KindDelay, nil
	case "corrupt":
		return KindCorrupt, nil
	case "cut":
		return KindCut, nil
	}
	return 0, fmt.Errorf("faults: unknown kind %q (want error|delay|corrupt|cut)", s)
}

// Rule is one parsed fault clause.
type Rule struct {
	Site  string
	Kind  Kind
	Rate  float64       // per-hit fire probability in [0,1]
	Wait  time.Duration // KindDelay: how long to sleep
	After uint64        // skip the first After hits
	Limit uint64        // cap on total fires; 0 = unlimited
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s:%s:%g", r.Site, r.Kind, r.Rate)
	if r.Kind == KindDelay {
		s += ":" + r.Wait.String()
	}
	if r.Limit > 0 {
		s += fmt.Sprintf(":limit=%d", r.Limit)
	}
	if r.After > 0 {
		s += fmt.Sprintf(":after=%d", r.After)
	}
	return s
}

// ruleState is a Rule plus its per-rule hit/fire counters. The hit counter
// orders concurrent hits; the decision for hit n depends only on
// (seed, site, kind, n), so the pattern is reproducible run to run.
type ruleState struct {
	Rule
	base  uint64 // hash(seed, site, kind): the decision stream's origin
	hits  atomic.Uint64
	fires atomic.Uint64
}

// Injector evaluates fault rules at named sites. A nil *Injector is valid
// and injects nothing.
type Injector struct {
	seed  uint64
	rules map[string][]*ruleState // keyed by site
}

// InjectedError marks errors produced by the injector, so tests and
// retry-classification logic can tell injected failures from real ones.
type InjectedError struct{ Site string }

func (e *InjectedError) Error() string { return "faults: injected error at " + e.Site }

// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func ruleBase(seed uint64, site string, kind Kind) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	h.Write([]byte{0, byte(kind)})
	return mix(seed ^ h.Sum64())
}

// Parse builds an Injector from a spec string. An empty (or all-whitespace)
// spec returns (nil, nil): injection disabled.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{seed: 1, rules: make(map[string][]*ruleState)}
	var rules []Rule
	for _, clause := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			in.seed = seed
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q has no fault clauses", spec)
	}
	for _, r := range rules {
		in.rules[r.Site] = append(in.rules[r.Site], &ruleState{
			Rule: r,
			base: ruleBase(in.seed, r.Site, r.Kind),
		})
	}
	return in, nil
}

func parseClause(clause string) (Rule, error) {
	parts := strings.Split(clause, ":")
	if len(parts) < 3 {
		return Rule{}, fmt.Errorf("faults: bad clause %q (want site:kind:rate[:duration][:limit=N][:after=N])", clause)
	}
	kind, err := parseKind(strings.TrimSpace(parts[1]))
	if err != nil {
		return Rule{}, err
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || rate < 0 || rate > 1 {
		return Rule{}, fmt.Errorf("faults: bad rate %q in %q (want a probability in [0,1])", parts[2], clause)
	}
	r := Rule{Site: strings.TrimSpace(parts[0]), Kind: kind, Rate: rate}
	if r.Site == "" {
		return Rule{}, fmt.Errorf("faults: empty site in %q", clause)
	}
	for _, opt := range parts[3:] {
		opt = strings.TrimSpace(opt)
		switch {
		case strings.HasPrefix(opt, "limit="):
			n, err := strconv.ParseUint(opt[len("limit="):], 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("faults: bad %q in %q", opt, clause)
			}
			r.Limit = n
		case strings.HasPrefix(opt, "after="):
			n, err := strconv.ParseUint(opt[len("after="):], 10, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("faults: bad %q in %q", opt, clause)
			}
			r.After = n
		default:
			d, err := time.ParseDuration(opt)
			if err != nil {
				return Rule{}, fmt.Errorf("faults: bad option %q in %q", opt, clause)
			}
			if r.Kind != KindDelay {
				return Rule{}, fmt.Errorf("faults: duration %q on non-delay clause %q", opt, clause)
			}
			r.Wait = d
		}
	}
	if r.Kind == KindDelay && r.Wait <= 0 {
		return Rule{}, fmt.Errorf("faults: delay clause %q needs a duration (e.g. %s:delay:%g:10ms)", clause, r.Site, r.Rate)
	}
	return r, nil
}

// MustParse is Parse for hand-written test specs; it panics on error.
func MustParse(spec string) *Injector {
	in, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// Enabled reports whether any rules are loaded.
func (in *Injector) Enabled() bool { return in != nil }

// String renders the loaded rules (for startup logging).
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	sites := make([]string, 0, len(in.rules))
	for s := range in.rules {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", in.seed)
	for _, s := range sites {
		for _, rs := range in.rules[s] {
			b.WriteByte(';')
			b.WriteString(rs.Rule.String())
		}
	}
	return b.String()
}

// decide evaluates hit number n of a rule: fire iff the hashed fraction for
// (base, n) is below Rate, subject to After/Limit.
func (rs *ruleState) decide() bool {
	n := rs.hits.Add(1) - 1
	if n < rs.After {
		return false
	}
	frac := float64(mix(rs.base+n)>>11) / float64(uint64(1)<<53)
	if frac >= rs.Rate {
		return false
	}
	if rs.Limit > 0 && rs.fires.Add(1) > rs.Limit {
		return false
	}
	if rs.Limit == 0 {
		rs.fires.Add(1)
	}
	return true
}

func (in *Injector) fire(site string, kind Kind) *ruleState {
	if in == nil {
		return nil
	}
	for _, rs := range in.rules[site] {
		if rs.Kind == kind && rs.decide() {
			return rs
		}
	}
	return nil
}

// Err evaluates the error rules at site, returning an *InjectedError when
// one fires and nil otherwise.
func (in *Injector) Err(site string) error {
	if in == nil {
		return nil
	}
	if in.fire(site, KindError) != nil {
		return &InjectedError{Site: site}
	}
	return nil
}

// Sleep evaluates the delay rules at site and blocks for the configured
// duration when one fires. done, when non-nil, aborts the sleep early
// (pass ctx.Done() so cancelled work does not linger in injected latency).
func (in *Injector) Sleep(site string, done <-chan struct{}) {
	if in == nil {
		return
	}
	rs := in.fire(site, KindDelay)
	if rs == nil {
		return
	}
	if done == nil {
		time.Sleep(rs.Wait)
		return
	}
	t := time.NewTimer(rs.Wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// Corrupt evaluates the corrupt rules at site; when one fires it returns a
// copy of data with one deterministically chosen bit flipped (the input is
// never modified). Otherwise it returns data unchanged. Empty payloads pass
// through.
func (in *Injector) Corrupt(site string, data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	rs := in.fire(site, KindCorrupt)
	if rs == nil {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	// Flip bit 1 of a deterministically chosen byte: for ASCII payloads
	// (JSON especially) that always changes meaning — whitespace turns into
	// a non-whitespace byte, letters and digits into different ones —
	// whereas a random bit could land on formatting a parser normalizes
	// away.
	idx := mix(rs.base^(rs.fires.Load()<<17)) % uint64(len(out))
	out[idx] ^= 0x02
	return out
}

// Cut evaluates the cut rules at site: true means the caller should abort
// the stream or connection it is servicing.
func (in *Injector) Cut(site string) bool {
	return in.fire(site, KindCut) != nil
}

// Fires reports how many times any rule at site has fired (tests and logs).
func (in *Injector) Fires(site string) uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for _, rs := range in.rules[site] {
		f := rs.fires.Load()
		if rs.Limit > 0 && f > rs.Limit {
			f = rs.Limit
		}
		n += f
	}
	return n
}
