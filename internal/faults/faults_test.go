package faults

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"store.read",                     // no kind/rate
		"store.read:explode:0.5",         // unknown kind
		"store.read:error:1.5",           // rate out of range
		"store.read:error:x",             // rate not a number
		":error:0.5",                     // empty site
		"a:delay:0.5",                    // delay without duration
		"a:error:0.5:10ms",               // duration on non-delay
		"a:error:0.5:limit=x",            // bad limit
		"seed=nope;a:error:1",            // bad seed
		"seed=3",                         // seed but no clauses
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		in, err := Parse(spec)
		if err != nil || in != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector claims to be enabled")
	}
	if err := in.Err("x"); err != nil {
		t.Fatalf("nil Err = %v", err)
	}
	in.Sleep("x", nil)
	data := []byte("payload")
	if got := in.Corrupt("x", data); !bytes.Equal(got, data) {
		t.Fatal("nil Corrupt changed data")
	}
	if in.Cut("x") {
		t.Fatal("nil Cut fired")
	}
	if in.Fires("x") != 0 {
		t.Fatal("nil Fires nonzero")
	}
}

func TestRateOneAlwaysRateZeroNever(t *testing.T) {
	in := MustParse("always:error:1;never:error:0")
	for i := 0; i < 100; i++ {
		if in.Err("always") == nil {
			t.Fatal("rate-1 rule did not fire")
		}
		if in.Err("never") != nil {
			t.Fatal("rate-0 rule fired")
		}
	}
	if in.Fires("always") != 100 || in.Fires("never") != 0 {
		t.Fatalf("fires = %d/%d, want 100/0", in.Fires("always"), in.Fires("never"))
	}
}

func TestInjectedErrorIdentifiable(t *testing.T) {
	in := MustParse("site:error:1")
	err := in.Err("site")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "site" {
		t.Fatalf("Err = %v, want *InjectedError{site}", err)
	}
}

func TestAfterAndLimit(t *testing.T) {
	in := MustParse("a:error:1:limit=3:after=2")
	var fired int
	for i := 0; i < 10; i++ {
		if in.Err("a") != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired on hit %d despite after=2", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (limit)", fired)
	}
}

// TestDeterministicAcrossInjectors: two injectors built from the same spec
// produce identical fire sequences per site, and hitting unrelated sites in
// between does not perturb the sequence.
func TestDeterministicAcrossInjectors(t *testing.T) {
	const spec = "seed=42;a:error:0.37;b:cut:0.61"
	in1 := MustParse(spec)
	in2 := MustParse(spec)
	var seq1, seq2 []bool
	for i := 0; i < 300; i++ {
		seq1 = append(seq1, in1.Err("a") != nil)
	}
	for i := 0; i < 300; i++ {
		// Interleave unrelated traffic on in2; "a" must not notice.
		in2.Cut("b")
		seq2 = append(seq2, in2.Err("a") != nil)
		in2.Cut("b")
	}
	fired := 0
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("hit %d: decision differs across injectors (%v vs %v)", i, seq1[i], seq2[i])
		}
		if seq1[i] {
			fired++
		}
	}
	// 0.37 of 300 ≈ 111; accept a generous band, the point is it fired a lot.
	if fired < 60 || fired > 180 {
		t.Fatalf("rate-0.37 rule fired %d/300 times", fired)
	}
}

func TestSeedChangesPattern(t *testing.T) {
	in1 := MustParse("seed=1;a:error:0.5")
	in2 := MustParse("seed=2;a:error:0.5")
	same := true
	for i := 0; i < 64; i++ {
		if (in1.Err("a") != nil) != (in2.Err("a") != nil) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit patterns")
	}
}

func TestCorruptFlipsOneBitInACopy(t *testing.T) {
	in := MustParse("c:corrupt:1")
	orig := bytes.Repeat([]byte{0xAA}, 64)
	data := append([]byte(nil), orig...)
	got := in.Corrupt("c", data)
	if !bytes.Equal(data, orig) {
		t.Fatal("Corrupt modified the input slice")
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d -> %d", len(orig), len(got))
	}
	diffBits := 0
	for i := range got {
		x := got[i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	// Empty payloads pass through.
	if got := in.Corrupt("c", nil); got != nil {
		t.Fatal("Corrupt(nil) returned data")
	}
}

func TestSleepHonorsDoneChannel(t *testing.T) {
	in := MustParse("s:delay:1:10s")
	done := make(chan struct{})
	close(done)
	start := time.Now()
	in.Sleep("s", done)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Sleep ignored done channel (slept %v)", d)
	}
}

func TestConcurrentHitsRace(t *testing.T) {
	in := MustParse("p:error:0.5;p:cut:0.5;p:corrupt:0.5")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Err("p")
				in.Cut("p")
				in.Corrupt("p", []byte{1, 2, 3})
			}
		}()
	}
	wg.Wait()
}

func TestStringRoundTrips(t *testing.T) {
	in := MustParse("seed=9;a:delay:0.25:15ms;b:error:1:limit=2")
	s := in.String()
	if !strings.Contains(s, "seed=9") || !strings.Contains(s, "a:delay:0.25:15ms") || !strings.Contains(s, "b:error:1:limit=2") {
		t.Fatalf("String() = %q, missing clauses", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("String() output does not re-parse: %v", err)
	}
}
