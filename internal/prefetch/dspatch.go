package prefetch

import (
	"math/bits"

	"spb/internal/mem"
)

// DSPatch-style dual spatial-pattern prefetching (Bera et al., MICRO 2019).
// The unit of prediction is the spatial footprint of a page visit: which of
// the 64 blocks of a page the program touches between first access (the
// trigger) and the page falling out of the active-page buffer. Footprints
// are stored trigger-relative — the observed bitmap is rotated so the
// trigger block sits at bit 0 — which lets one pattern predict the page no
// matter where the program enters it. Each program-context (trigger-PC)
// entry keeps TWO patterns over the same history: CovP, the OR of observed
// footprints (coverage-biased: predicts everything ever touched), and AccP,
// the AND (accuracy-biased: predicts only blocks touched on every visit).
// Which one drives prediction is a bandwidth decision: when prefetch
// accuracy is high the memory system has headroom and CovP's extra traffic
// buys coverage; when accuracy collapses — the signature that prefetch
// traffic is crowding demand bandwidth — the selector falls back to AccP.
// The paper switches on measured DRAM bandwidth utilization; this simulator
// uses the port's accuracy feedback as the congestion proxy, which is the
// same signal FDP throttles on.

const (
	dspPages    = 32   // active-page buffer entries
	dspTable    = 256  // pattern-table entries (direct-mapped, PC-hashed)
	dspDegree   = 8    // max prefetches per trigger (issue quota)
	dspAccLow   = 0.50 // accuracy below this selects AccP (congestion proxy)
	dspAccHysUp = 0.65 // ... and back to CovP only above this (hysteresis)
)

// dspPage is one active page being observed.
type dspPage struct {
	page    mem.Page
	sig     uint32 // pattern-table index the footprint commits to
	trigger int    // block index of the first access (rotation anchor)
	bitmap  uint64 // observed footprint, absolute block-index bits
	valid   bool
}

// dspEntry is one trigger-relative dual pattern.
type dspEntry struct {
	covP  uint64 // OR of committed footprints (coverage-biased)
	accP  uint64 // AND of committed footprints (accuracy-biased)
	valid bool
}

// DSPatch is the dual spatial-pattern prefetcher.
type DSPatch struct {
	pages   []dspPage
	pageClk int // round-robin eviction cursor for the page buffer
	table   []dspEntry
	useAcc  bool // current pattern selection: false = CovP, true = AccP
}

// NewDSPatch returns a DSPatch prefetcher starting in coverage mode.
func NewDSPatch() *DSPatch {
	return &DSPatch{
		pages: make([]dspPage, dspPages),
		table: make([]dspEntry, dspTable),
	}
}

// Name implements Prefetcher.
func (d *DSPatch) Name() string { return "dspatch" }

// UsingAccuracy reports whether the accuracy-biased pattern is selected,
// for tests.
func (d *DSPatch) UsingAccuracy() bool { return d.useAcc }

// dspSig hashes a trigger PC to a pattern-table index.
func dspSig(pc uint64) uint32 {
	h := pc >> 2
	h ^= h >> 7
	h ^= h >> 13
	return uint32(h) & (dspTable - 1)
}

// rotr rotates a 64-bit footprint right by k, mapping absolute block-index
// bits to trigger-relative bits (bit trigger -> bit 0).
func rotr(bm uint64, k int) uint64 { return bits.RotateLeft64(bm, -k) }

// rotl maps a trigger-relative pattern back to absolute block-index bits
// for a new trigger offset.
func rotl(bm uint64, k int) uint64 { return bits.RotateLeft64(bm, k) }

// commit folds an observed page footprint into its pattern-table entry,
// rotated to trigger-relative form.
func (d *DSPatch) commit(p *dspPage) {
	rel := rotr(p.bitmap, p.trigger)
	e := &d.table[p.sig]
	if !e.valid {
		e.covP, e.accP, e.valid = rel, rel, true
		return
	}
	e.covP |= rel
	e.accP &= rel
}

// PatternFor returns the stored (coverage, accuracy) trigger-relative
// patterns for a trigger PC, for tests.
func (d *DSPatch) PatternFor(pc uint64) (covP, accP uint64, ok bool) {
	e := d.table[dspSig(pc)]
	return e.covP, e.accP, e.valid
}

// Observe implements Prefetcher. A hit in the active-page buffer records
// the footprint bit; a new page commits the evicted footprint, opens a new
// one, and predicts the incoming page from the stored pattern — rotated to
// the new trigger and issued nearest-first up to the degree quota.
func (d *DSPatch) Observe(ev Event, out []mem.Block) []mem.Block {
	page := mem.PageOfBlock(ev.Block)
	idx := mem.BlockIndexInPage(ev.Block)
	for i := range d.pages {
		if d.pages[i].valid && d.pages[i].page == page {
			d.pages[i].bitmap |= 1 << uint(idx)
			return out
		}
	}
	// New page: retire the slot under the clock hand first.
	slot := &d.pages[d.pageClk]
	d.pageClk = (d.pageClk + 1) % len(d.pages)
	if slot.valid {
		d.commit(slot)
	}
	sig := dspSig(ev.PC)
	*slot = dspPage{page: page, sig: sig, trigger: idx, bitmap: 1 << uint(idx), valid: true}

	e := d.table[sig]
	if !e.valid {
		return out
	}
	pattern := e.covP
	if d.useAcc {
		pattern = e.accP
	}
	abs := rotl(pattern, idx) &^ (1 << uint(idx)) // demand covers the trigger itself
	// Issue nearest-first from the trigger so the quota spends itself on the
	// blocks the program reaches soonest.
	first := int64(ev.Block) - int64(idx) // first block of the page
	issued := 0
	for dist := 1; dist < mem.BlocksPerPage && issued < dspDegree; dist++ {
		for _, off := range [2]int{idx + dist, idx - dist} {
			if off < 0 || off >= mem.BlocksPerPage || abs&(1<<uint(off)) == 0 {
				continue
			}
			out = append(out, mem.Block(first+int64(off)))
			issued++
			if issued >= dspDegree {
				break
			}
		}
	}
	return out
}

// Epoch implements Prefetcher: the bandwidth-aware pattern selector. Low
// prefetch accuracy means issued traffic is not turning into hits — the
// congestion signature — so prediction tightens to AccP; sustained high
// accuracy relaxes back to CovP. The two thresholds give the selector
// hysteresis so it does not flap on noise around a single cut-off.
func (d *DSPatch) Epoch(fb Feedback) {
	if fb.Issued == 0 {
		return
	}
	acc := float64(fb.Used) / float64(fb.Issued)
	if d.useAcc {
		if acc >= dspAccHysUp {
			d.useAcc = false
		}
	} else if acc < dspAccLow {
		d.useAcc = true
	}
}
