package prefetch

import (
	"testing"

	"spb/internal/config"
	"spb/internal/mem"
)

// TestObserveContract pins the Prefetcher interface contract for every
// constructible kind: Observe must append to and return out — never nil,
// never clobbering what the caller already holds (the memory system reuses
// the returned slice as its scratch buffer) — and every appended block must
// stay on the triggering access's page.
func TestObserveContract(t *testing.T) {
	for _, k := range config.Prefetchers {
		t.Run(k.String(), func(t *testing.T) {
			p := New(k)
			const sentinel = mem.Block(1 << 40)
			out := []mem.Block{sentinel}
			blk := mem.Block(5)
			for i := 0; i < 3000; i++ {
				ev := Event{
					PC:    0x400000 + uint64(i%7)*4,
					Block: blk,
					Miss:  i%3 != 0,
					Store: i%2 == 0,
				}
				out = p.Observe(ev, out)
				if out == nil {
					t.Fatal("Observe returned nil instead of out")
				}
				if len(out) < 1 || out[0] != sentinel {
					t.Fatal("Observe clobbered the caller's existing elements")
				}
				for _, b := range out[1:] {
					if mem.PageOfBlock(b) != mem.PageOfBlock(ev.Block) {
						t.Fatalf("prefetch %d crosses the page of trigger %d", b, ev.Block)
					}
				}
				out = out[:1]
				blk += mem.Block(1 + i%5)
				if i%500 == 499 {
					p.Epoch(Feedback{Issued: 100, Used: 60, Late: 10, Polluted: 2})
				}
			}
			p.Epoch(Feedback{}) // idle epoch must be safe for every kind
		})
	}
}

// TestNoneObservePreservesScratch is the regression for the none prefetcher
// returning nil: the caller's scratch buffer must come back intact.
func TestNoneObservePreservesScratch(t *testing.T) {
	p := New(config.PrefetchNone)
	buf := []mem.Block{7, 8}
	got := p.Observe(Event{Block: 7, Miss: true}, buf)
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("none Observe must return out unchanged, got %v", got)
	}
}
