package prefetch

import "spb/internal/mem"

// Best-Offset prefetching (Michaud, HPCA 2016; the Hermes bop.h lineage):
// instead of assuming unit stride, the prefetcher *elects* the block offset
// D that best predicts future accesses, by scoring a fixed candidate list
// against a table of recent request addresses. Each learning phase tests
// candidates round-robin — an access to block X votes for offset d when
// X - d is found in the recent-requests table (meaning a prefetch of X
// issued d blocks early would have been timely) — and ends when a candidate
// saturates its score or the round budget runs out, at which point the
// winner becomes the prefetch offset for the next phase. A winner below the
// bad-score floor turns prefetching off for the phase, which is what makes
// BOP conservative on irregular streams.

// bopOffsets is the candidate list: offsets within a 64-block page whose
// prime factors are 2, 3 and 5 (Michaud's construction, truncated to the
// page). Order matters only for tie-breaks (first-listed wins).
var bopOffsets = []int32{
	1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48,
}

const (
	bopRRSize   = 128 // recent-requests table entries
	bopScoreMax = 31  // phase ends as soon as a candidate reaches this
	bopRoundMax = 32  // ... or after this many full passes over the list
	bopBadScore = 2   // winners at or below this disable prefetching
)

// BOP is the Best-Offset prefetcher.
type BOP struct {
	rr       []mem.Block // recent-requests ring
	rrNext   int
	rrFilled bool

	scores  []uint8 // one per bopOffsets entry, this phase
	candIdx int     // next candidate to test (round-robin cursor)
	round   int     // completed passes over the candidate list

	best      int32 // elected offset in blocks; 0 = prefetching off
	bestScore uint8 // the winner's score, for reports and tests
}

// NewBOP returns a Best-Offset prefetcher with an initial offset of 1
// (next-line), matching hardware practice of starting useful while the
// first phase learns.
func NewBOP() *BOP {
	return &BOP{
		rr:     make([]mem.Block, bopRRSize),
		scores: make([]uint8, len(bopOffsets)),
		best:   1,
	}
}

// Name implements Prefetcher.
func (b *BOP) Name() string { return "bop" }

// Best reports the currently elected offset (0 = off), for tests.
func (b *BOP) Best() int32 { return b.best }

// searchRR reports whether addr is in the recent-requests table.
func (b *BOP) searchRR(addr mem.Block) bool {
	n := b.rrNext
	if b.rrFilled {
		n = len(b.rr)
	}
	for i := 0; i < n; i++ {
		if b.rr[i] == addr {
			return true
		}
	}
	return false
}

// insertRR records addr in the recent-requests ring.
func (b *BOP) insertRR(addr mem.Block) {
	b.rr[b.rrNext] = addr
	b.rrNext++
	if b.rrNext == len(b.rr) {
		b.rrNext = 0
		b.rrFilled = true
	}
}

// endPhase elects the best-scoring candidate and resets the learning state.
func (b *BOP) endPhase() {
	bi := 0
	for i, s := range b.scores {
		if s > b.scores[bi] {
			bi = i
		}
	}
	b.bestScore = b.scores[bi]
	if b.bestScore <= bopBadScore {
		b.best = 0 // nothing predicts well: stop prefetching this phase
	} else {
		b.best = bopOffsets[bi]
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.candIdx = 0
	b.round = 0
}

// Observe implements Prefetcher. Every demand access trains the offset
// scores and feeds the recent-requests table; misses additionally trigger a
// prefetch at the elected offset (prefetching on hits would only generate
// duplicate-drop traffic at the L1).
func (b *BOP) Observe(ev Event, out []mem.Block) []mem.Block {
	// Test the next candidate: did an access d blocks back predict this one?
	d := bopOffsets[b.candIdx]
	saturated := false
	if prev := int64(ev.Block) - int64(d); prev >= 0 &&
		mem.PageOfBlock(mem.Block(prev)) == mem.PageOfBlock(ev.Block) &&
		b.searchRR(mem.Block(prev)) {
		b.scores[b.candIdx]++
		if b.scores[b.candIdx] >= bopScoreMax {
			b.endPhase() // early election; cursor already reset
			saturated = true
		}
	}
	if !saturated {
		b.candIdx++
		if b.candIdx == len(bopOffsets) {
			b.candIdx = 0
			b.round++
			if b.round >= bopRoundMax {
				b.endPhase()
			}
		}
	}
	b.insertRR(ev.Block)
	if ev.Miss && b.best != 0 {
		tgt := int64(ev.Block) + int64(b.best)
		if blk := mem.Block(tgt); mem.PageOfBlock(blk) == mem.PageOfBlock(ev.Block) {
			out = append(out, blk)
		}
	}
	return out
}

// Epoch implements Prefetcher. BOP's feedback loop is its own phase
// mechanism; port-level feedback is ignored.
func (b *BOP) Epoch(Feedback) {}
