package prefetch

import (
	"fmt"

	"spb/internal/mem"
)

// Crash-safe checkpoint support (DESIGN.md §15). Warm-start snapshots
// deliberately exclude the generic prefetcher (functional warming never
// trains it), but a mid-run checkpoint interrupts fully-trained tables, so
// it must carry them. State is the exported, gob-friendly deep copy of any
// in-tree Prefetcher's mutable state.

// StreamEntryState is the wire form of one stride-detection slot.
type StreamEntryState struct {
	PC     uint64
	Last   mem.Block
	Stride int64
	Conf   int8
	Valid  bool
}

// BOPState is the wire form of the Best-Offset prefetcher's learning state.
type BOPState struct {
	RR        []mem.Block
	RRNext    int
	RRFilled  bool
	Scores    []uint8
	CandIdx   int
	Round     int
	Best      int32
	BestScore uint8
}

// DSPatchPageState is the wire form of one active-page buffer slot.
type DSPatchPageState struct {
	Page    mem.Page
	Sig     uint32
	Trigger int
	Bitmap  uint64
	Valid   bool
}

// DSPatchEntryState is the wire form of one dual-pattern table entry.
type DSPatchEntryState struct {
	CovP  uint64
	AccP  uint64
	Valid bool
}

// DSPatchState is the wire form of the DSPatch prefetcher's state.
type DSPatchState struct {
	Pages   []DSPatchPageState
	PageClk int
	Table   []DSPatchEntryState
	UseAcc  bool
}

// HybridState is the wire form of the hybrid arbiter: the nested states of
// its sub-prefetchers plus the attribution and allocation machinery.
type HybridState struct {
	Subs   []State
	Recent [][]mem.Block
	RNext  []int
	Issued []uint64
	Hits   []uint64
	Alloc  []int
}

// State is a deep copy of a prefetcher's mutable state. Kind names the
// concrete scheme; restoring onto a prefetcher of a different kind is a
// configuration mismatch and panics (checkpoints embed the spec, so a
// mismatch indicates a corrupt or mis-keyed checkpoint the caller should
// have rejected).
type State struct {
	Kind  string
	Table []StreamEntryState
	// Distance and Degree are the stream prefetcher's current
	// aggressiveness; for Adaptive they are re-derived from Level, but are
	// carried anyway so Stream restores without consulting the ladder.
	Distance int64
	Degree   int
	// Level is Adaptive's position on the aggressiveness ladder.
	Level int
	// Exactly one of the following is non-nil for the matching Kind.
	BOP     *BOPState
	DSPatch *DSPatchState
	Hybrid  *HybridState
}

// CaptureState deep-copies p's mutable state.
func CaptureState(p Prefetcher) State {
	switch v := p.(type) {
	case nonePrefetcher:
		return State{Kind: "none"}
	case *Adaptive:
		s := captureStream(&v.Stream)
		s.Kind = "adaptive"
		s.Level = v.level
		return s
	case *Stream:
		return captureStream(v)
	case *BOP:
		return State{Kind: "bop", BOP: &BOPState{
			RR:        append([]mem.Block(nil), v.rr...),
			RRNext:    v.rrNext,
			RRFilled:  v.rrFilled,
			Scores:    append([]uint8(nil), v.scores...),
			CandIdx:   v.candIdx,
			Round:     v.round,
			Best:      v.best,
			BestScore: v.bestScore,
		}}
	case *DSPatch:
		d := &DSPatchState{
			Pages:   make([]DSPatchPageState, len(v.pages)),
			PageClk: v.pageClk,
			Table:   make([]DSPatchEntryState, len(v.table)),
			UseAcc:  v.useAcc,
		}
		for i, pg := range v.pages {
			d.Pages[i] = DSPatchPageState{Page: pg.page, Sig: pg.sig, Trigger: pg.trigger, Bitmap: pg.bitmap, Valid: pg.valid}
		}
		for i, e := range v.table {
			d.Table[i] = DSPatchEntryState{CovP: e.covP, AccP: e.accP, Valid: e.valid}
		}
		return State{Kind: "dspatch", DSPatch: d}
	case *Hybrid:
		h := &HybridState{
			Subs:   make([]State, len(v.subs)),
			Recent: make([][]mem.Block, len(v.recent)),
			RNext:  append([]int(nil), v.rnext...),
			Issued: append([]uint64(nil), v.issued...),
			Hits:   append([]uint64(nil), v.hits...),
			Alloc:  append([]int(nil), v.alloc...),
		}
		for i, sub := range v.subs {
			h.Subs[i] = CaptureState(sub)
		}
		for i, r := range v.recent {
			h.Recent[i] = append([]mem.Block(nil), r...)
		}
		return State{Kind: "hybrid", Hybrid: h}
	}
	panic(fmt.Sprintf("prefetch: cannot capture state of %T", p))
}

func captureStream(v *Stream) State {
	s := State{
		Kind:     "stream",
		Table:    make([]StreamEntryState, len(v.table)),
		Distance: v.distance,
		Degree:   v.degree,
	}
	for i, e := range v.table {
		s.Table[i] = StreamEntryState{PC: e.pc, Last: e.last, Stride: e.stride, Conf: e.conf, Valid: e.valid}
	}
	return s
}

// RestoreState overwrites p's mutable state with the capture's. p must be
// the same kind (and table geometry) the state was captured from.
func RestoreState(p Prefetcher, s State) {
	switch v := p.(type) {
	case nonePrefetcher:
		if s.Kind != "none" {
			panic("prefetch: RestoreState kind mismatch")
		}
		return
	case *Adaptive:
		if s.Kind != "adaptive" {
			panic("prefetch: RestoreState kind mismatch")
		}
		restoreStream(&v.Stream, s)
		v.level = s.Level
		return
	case *Stream:
		if s.Kind != "stream" {
			panic("prefetch: RestoreState kind mismatch")
		}
		restoreStream(v, s)
		return
	case *BOP:
		if s.Kind != "bop" || s.BOP == nil {
			panic("prefetch: RestoreState kind mismatch")
		}
		if len(v.rr) != len(s.BOP.RR) || len(v.scores) != len(s.BOP.Scores) {
			panic("prefetch: RestoreState with mismatched table geometry")
		}
		copy(v.rr, s.BOP.RR)
		v.rrNext = s.BOP.RRNext
		v.rrFilled = s.BOP.RRFilled
		copy(v.scores, s.BOP.Scores)
		v.candIdx = s.BOP.CandIdx
		v.round = s.BOP.Round
		v.best = s.BOP.Best
		v.bestScore = s.BOP.BestScore
		return
	case *DSPatch:
		if s.Kind != "dspatch" || s.DSPatch == nil {
			panic("prefetch: RestoreState kind mismatch")
		}
		if len(v.pages) != len(s.DSPatch.Pages) || len(v.table) != len(s.DSPatch.Table) {
			panic("prefetch: RestoreState with mismatched table geometry")
		}
		for i, pg := range s.DSPatch.Pages {
			v.pages[i] = dspPage{page: pg.Page, sig: pg.Sig, trigger: pg.Trigger, bitmap: pg.Bitmap, valid: pg.Valid}
		}
		v.pageClk = s.DSPatch.PageClk
		for i, e := range s.DSPatch.Table {
			v.table[i] = dspEntry{covP: e.CovP, accP: e.AccP, valid: e.Valid}
		}
		v.useAcc = s.DSPatch.UseAcc
		return
	case *Hybrid:
		if s.Kind != "hybrid" || s.Hybrid == nil {
			panic("prefetch: RestoreState kind mismatch")
		}
		hs := s.Hybrid
		if len(v.subs) != len(hs.Subs) || len(v.recent) != len(hs.Recent) {
			panic("prefetch: RestoreState with mismatched table geometry")
		}
		for i, sub := range v.subs {
			RestoreState(sub, hs.Subs[i])
		}
		for i, r := range hs.Recent {
			if len(v.recent[i]) != len(r) {
				panic("prefetch: RestoreState with mismatched table geometry")
			}
			copy(v.recent[i], r)
		}
		copy(v.rnext, hs.RNext)
		copy(v.issued, hs.Issued)
		copy(v.hits, hs.Hits)
		copy(v.alloc, hs.Alloc)
		return
	}
	panic(fmt.Sprintf("prefetch: cannot restore state onto %T", p))
}

func restoreStream(v *Stream, s State) {
	if len(v.table) != len(s.Table) {
		panic("prefetch: RestoreState with mismatched table geometry")
	}
	for i, e := range s.Table {
		v.table[i] = streamEntry{pc: e.PC, last: e.Last, stride: e.Stride, conf: e.Conf, valid: e.Valid}
	}
	v.distance = s.Distance
	v.degree = s.Degree
}
