package prefetch

import (
	"fmt"

	"spb/internal/mem"
)

// Crash-safe checkpoint support (DESIGN.md §15). Warm-start snapshots
// deliberately exclude the generic prefetcher (functional warming never
// trains it), but a mid-run checkpoint interrupts fully-trained tables, so
// it must carry them. State is the exported, gob-friendly deep copy of any
// in-tree Prefetcher's mutable state.

// StreamEntryState is the wire form of one stride-detection slot.
type StreamEntryState struct {
	PC     uint64
	Last   mem.Block
	Stride int64
	Conf   int8
	Valid  bool
}

// State is a deep copy of a prefetcher's mutable state. Kind names the
// concrete scheme; restoring onto a prefetcher of a different kind is a
// configuration mismatch and panics (checkpoints embed the spec, so a
// mismatch indicates a corrupt or mis-keyed checkpoint the caller should
// have rejected).
type State struct {
	Kind  string
	Table []StreamEntryState
	// Distance and Degree are the stream prefetcher's current
	// aggressiveness; for Adaptive they are re-derived from Level, but are
	// carried anyway so Stream restores without consulting the ladder.
	Distance int64
	Degree   int
	// Level is Adaptive's position on the aggressiveness ladder.
	Level int
}

// CaptureState deep-copies p's mutable state.
func CaptureState(p Prefetcher) State {
	switch v := p.(type) {
	case nonePrefetcher:
		return State{Kind: "none"}
	case *Adaptive:
		s := captureStream(&v.Stream)
		s.Kind = "adaptive"
		s.Level = v.level
		return s
	case *Stream:
		return captureStream(v)
	}
	panic(fmt.Sprintf("prefetch: cannot capture state of %T", p))
}

func captureStream(v *Stream) State {
	s := State{
		Kind:     "stream",
		Table:    make([]StreamEntryState, len(v.table)),
		Distance: v.distance,
		Degree:   v.degree,
	}
	for i, e := range v.table {
		s.Table[i] = StreamEntryState{PC: e.pc, Last: e.last, Stride: e.stride, Conf: e.conf, Valid: e.valid}
	}
	return s
}

// RestoreState overwrites p's mutable state with the capture's. p must be
// the same kind (and table geometry) the state was captured from.
func RestoreState(p Prefetcher, s State) {
	switch v := p.(type) {
	case nonePrefetcher:
		if s.Kind != "none" {
			panic("prefetch: RestoreState kind mismatch")
		}
		return
	case *Adaptive:
		if s.Kind != "adaptive" {
			panic("prefetch: RestoreState kind mismatch")
		}
		restoreStream(&v.Stream, s)
		v.level = s.Level
		return
	case *Stream:
		if s.Kind != "stream" {
			panic("prefetch: RestoreState kind mismatch")
		}
		restoreStream(v, s)
		return
	}
	panic(fmt.Sprintf("prefetch: cannot restore state onto %T", p))
}

func restoreStream(v *Stream, s State) {
	if len(v.table) != len(s.Table) {
		panic("prefetch: RestoreState with mismatched table geometry")
	}
	for i, e := range s.Table {
		v.table[i] = streamEntry{pc: e.PC, last: e.Last, stride: e.Stride, conf: e.Conf, valid: e.Valid}
	}
	v.distance = s.Distance
	v.degree = s.Degree
}
