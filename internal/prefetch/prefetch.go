// Package prefetch implements the generic L1 data prefetchers of the paper's
// evaluation: the baseline stream/stride prefetcher of Table I and the
// aggressive and adaptive (feedback-directed, Srinath et al. HPCA 2007)
// schemes of §VI.D. These train on demand accesses — loads and stores alike —
// and fetch blocks for reading; unlike the store-prefetch policies they do
// not acquire write permission, which is exactly why they cannot remove
// store-buffer stalls.
package prefetch

import (
	"spb/internal/config"
	"spb/internal/mem"
)

// Event describes one demand L1 access, as observed by the prefetcher.
type Event struct {
	PC    uint64
	Block mem.Block
	Miss  bool
	Store bool
}

// Feedback carries the prefetch-outcome counters of the last epoch to an
// adaptive prefetcher (accuracy, lateness and pollution directing the
// aggressiveness, per feedback-directed prefetching).
type Feedback struct {
	Issued   uint64
	Used     uint64
	Late     uint64
	Polluted uint64
}

// Prefetcher is the interface the memory system drives.
type Prefetcher interface {
	// Name identifies the scheme in reports.
	Name() string
	// Observe digests one demand access and appends any block addresses to
	// prefetch onto out, returning the extended slice. Returned blocks
	// never cross the page of the triggering access.
	Observe(ev Event, out []mem.Block) []mem.Block
	// Epoch delivers outcome feedback; adaptive schemes retune their
	// aggressiveness here, others ignore it.
	Epoch(fb Feedback)
}

// New constructs the prefetcher selected by kind. Unknown kinds panic:
// config.MachineConfig.Validate rejects them on every decoded-input path
// (HTTP specs, checkpoint files) before a kind can reach this constructor,
// so a panic here means an internal caller skipped validation.
func New(kind config.PrefetcherKind) Prefetcher {
	switch kind {
	case config.PrefetchStream:
		return NewStream(2, 1)
	case config.PrefetchAggressive:
		// Srinath et al.'s "very aggressive" static configuration.
		return NewStream(32, 4)
	case config.PrefetchAdaptive:
		return NewAdaptive()
	case config.PrefetchNone:
		return nonePrefetcher{}
	case config.PrefetchBOP:
		return NewBOP()
	case config.PrefetchDSPatch:
		return NewDSPatch()
	case config.PrefetchHybrid:
		return NewHybrid()
	}
	panic("prefetch: unknown kind (caller bypassed config validation)")
}

type nonePrefetcher struct{}

func (nonePrefetcher) Name() string { return "none" }

// Observe implements Prefetcher. It must return out unchanged — not nil —
// to honor the append contract: the caller reuses the returned slice as its
// scratch buffer, and nilling it would discard the buffer every call.
func (nonePrefetcher) Observe(_ Event, out []mem.Block) []mem.Block { return out }

func (nonePrefetcher) Epoch(Feedback) {}

// streamEntry is one PC-indexed stride-detection slot.
type streamEntry struct {
	pc     uint64
	last   mem.Block
	stride int64
	conf   int8
	valid  bool
}

// Stream is a PC-indexed stride/stream prefetcher operating at block
// granularity: repeated accesses to the same block are ignored, a stable
// block stride trains confidence, and a confident entry prefetches `degree`
// blocks starting `distance` blocks ahead of the demand access.
type Stream struct {
	table    []streamEntry
	distance int64
	degree   int
}

// NewStream returns a stream prefetcher with the given lookahead distance
// (blocks ahead of the demand access) and degree (blocks per trigger).
func NewStream(distance, degree int) *Stream {
	if distance < 1 || degree < 0 {
		panic("prefetch: stream distance must be >=1 and degree >=0")
	}
	return &Stream{
		table:    make([]streamEntry, 64),
		distance: int64(distance),
		degree:   degree,
	}
}

// Name implements Prefetcher.
func (s *Stream) Name() string { return "stream" }

// SetAggressiveness retunes distance and degree (used by Adaptive).
func (s *Stream) SetAggressiveness(distance, degree int) {
	s.distance = int64(distance)
	s.degree = degree
}

// Observe implements Prefetcher.
func (s *Stream) Observe(ev Event, out []mem.Block) []mem.Block {
	h := (ev.PC >> 2) ^ (ev.PC >> 8) ^ (ev.PC >> 16)
	e := &s.table[h&uint64(len(s.table)-1)]
	if !e.valid || e.pc != ev.PC {
		*e = streamEntry{pc: ev.PC, last: ev.Block, valid: true}
		return out
	}
	delta := int64(ev.Block) - int64(e.last)
	if delta == 0 {
		// Same block (e.g. consecutive 8-byte accesses): no information.
		return out
	}
	if delta == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = delta
		e.conf = 0
	}
	e.last = ev.Block
	if e.conf < 2 || e.stride == 0 {
		return out
	}
	if e.stride == 1 {
		// Unit-stride streams (the common case): run `degree` blocks ahead
		// at `distance`, clamped so the window slides up to — but never
		// across — the page boundary, like hardware streamers do.
		last := int64(mem.LastBlockOfPage(ev.Block))
		first := int64(ev.Block) + s.distance
		if first+int64(s.degree)-1 > last {
			first = last - int64(s.degree) + 1
		}
		if first <= int64(ev.Block) {
			first = int64(ev.Block) + 1
		}
		for b := first; b < first+int64(s.degree) && b <= last; b++ {
			out = append(out, mem.Block(b))
		}
		return out
	}
	page := mem.PageOfBlock(ev.Block)
	for i := 0; i < s.degree; i++ {
		b := int64(ev.Block) + e.stride*(s.distance+int64(i))
		if b < 0 {
			break
		}
		blk := mem.Block(b)
		if mem.PageOfBlock(blk) != page {
			break // physical prefetchers cannot cross page boundaries
		}
		out = append(out, blk)
	}
	return out
}

// Epoch implements Prefetcher (static schemes ignore feedback).
func (s *Stream) Epoch(Feedback) {}

// Adaptive is feedback-directed prefetching (Srinath et al., HPCA 2007): a
// stream prefetcher whose (distance, degree) follow a 5-level aggressiveness
// ladder driven by measured accuracy, lateness and pollution.
type Adaptive struct {
	Stream
	level int
}

// aggressivenessLadder mirrors the FDP configuration table (Srinath et al.,
// Table 1: distance 4..64, degree 1..4).
var aggressivenessLadder = []struct{ distance, degree int }{
	{2, 1},  // level 1: very conservative
	{4, 1},  // level 2: conservative
	{8, 2},  // level 3: middle-of-the-road
	{16, 4}, // level 4: aggressive
	{32, 4}, // level 5: very aggressive
}

// FDP thresholds (accuracy high/low, lateness, pollution), as specified.
const (
	fdpAccHigh  = 0.75
	fdpAccLow   = 0.40
	fdpLateness = 0.10
	fdpPollute  = 0.05
)

// NewAdaptive returns an FDP prefetcher starting at the middle level.
func NewAdaptive() *Adaptive {
	a := &Adaptive{level: 3}
	a.table = make([]streamEntry, 64)
	a.apply()
	return a
}

// Name implements Prefetcher.
func (a *Adaptive) Name() string { return "adaptive" }

// Level reports the current aggressiveness level (1..5), for tests.
func (a *Adaptive) Level() int { return a.level }

func (a *Adaptive) apply() {
	cfg := aggressivenessLadder[a.level-1]
	a.SetAggressiveness(cfg.distance, cfg.degree)
}

// Epoch implements Prefetcher: the FDP decision tree. High accuracy with
// late prefetches asks for more aggressiveness; low accuracy or pollution
// throttles down; accurate, timely and clean holds the level steady
// (Srinath et al., Table 2 — the current aggressiveness is already paying
// off, so ramping further would only risk pollution).
func (a *Adaptive) Epoch(fb Feedback) {
	if fb.Issued == 0 {
		return
	}
	acc := float64(fb.Used) / float64(fb.Issued)
	late := 0.0
	if fb.Used > 0 {
		late = float64(fb.Late) / float64(fb.Used)
	}
	pol := float64(fb.Polluted) / float64(fb.Issued)
	switch {
	case acc >= fdpAccHigh && late > fdpLateness && a.level < 5:
		a.level++
	case acc < fdpAccLow && a.level > 1:
		a.level--
	case pol > fdpPollute && a.level > 1:
		a.level--
	}
	a.apply()
}
