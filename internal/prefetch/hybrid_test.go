package prefetch

import (
	"testing"

	"spb/internal/mem"
)

// stubPF proposes fixed offsets from every trigger, for arbiter tests.
type stubPF struct {
	name string
	offs []int64
}

func (s *stubPF) Name() string { return s.name }

func (s *stubPF) Observe(ev Event, out []mem.Block) []mem.Block {
	for _, o := range s.offs {
		b := int64(ev.Block) + o
		if b >= 0 {
			out = append(out, mem.Block(b))
		}
	}
	return out
}

func (s *stubPF) Epoch(Feedback) {}

func TestHybridStartsWithEvenSplit(t *testing.T) {
	h := NewHybridOf(&stubPF{name: "a"}, &stubPF{name: "b"})
	if a := h.Alloc(); len(a) != 2 || a[0] != hybridBudget/2 || a[1] != hybridBudget/2 {
		t.Fatalf("initial allocation = %v, want an even split of %d", a, hybridBudget)
	}
}

func TestHybridBudgetCapAndDedup(t *testing.T) {
	a := &stubPF{name: "a", offs: []int64{1, 2, 3}}
	b := &stubPF{name: "b", offs: []int64{1, 5}}
	h := NewHybridOf(a, b)
	out := h.Observe(Event{Block: 100, Miss: true}, nil)
	if len(out) > hybridBudget {
		t.Fatalf("issued %d > budget %d", len(out), hybridBudget)
	}
	seen := map[mem.Block]bool{}
	for _, blk := range out {
		if seen[blk] {
			t.Fatalf("duplicate prefetch %d in %v", blk, out)
		}
		seen[blk] = true
	}
	// Block 101 is proposed by both; the arbiter must emit it once and still
	// give b its other proposal.
	if !seen[101] || !seen[105] {
		t.Fatalf("round-robin drain lost a proposal: %v", out)
	}
}

func TestHybridReallocatesBudgetByAccuracy(t *testing.T) {
	good := &stubPF{name: "good", offs: []int64{1}} // next block: demanded next access
	bad := &stubPF{name: "bad", offs: []int64{-50}} // behind the stream: never demanded
	h := NewHybridOf(good, bad)
	var out []mem.Block
	for i := 0; i < 200; i++ {
		out = h.Observe(Event{Block: mem.Block(1000 + i), Miss: true}, out[:0])
	}
	h.Epoch(Feedback{})
	a := h.Alloc()
	if a[0] <= a[1] {
		t.Fatalf("allocation = %v, want the accurate sub favored", a)
	}
	if a[0]+a[1] != hybridBudget {
		t.Fatalf("allocation %v does not sum to the budget %d", a, hybridBudget)
	}
	// Laplace smoothing must let a starved sub recover: if bad's quota hit
	// zero it issues nothing next epoch, which smoothing scores as perfect,
	// pulling it back toward an even share rather than starving it forever.
	for i := 200; i < 250; i++ {
		out = h.Observe(Event{Block: mem.Block(1000 + i), Miss: true}, out[:0])
	}
	h.Epoch(Feedback{})
	if a2 := h.Alloc(); a2[1] < 1 {
		t.Fatalf("allocation = %v, want the idle sub to regain at least one slot", a2)
	}
}

func TestHybridRespectsQuotas(t *testing.T) {
	// With the whole budget on sub 0, sub 1's proposals cannot issue.
	a := &stubPF{name: "a", offs: []int64{1, 2, 3, 4, 5}}
	b := &stubPF{name: "b", offs: []int64{10}}
	h := NewHybridOf(a, b)
	h.alloc[0], h.alloc[1] = hybridBudget, 0
	out := h.Observe(Event{Block: 100, Miss: true}, nil)
	if len(out) != hybridBudget {
		t.Fatalf("issued %v, want %d from the funded sub", out, hybridBudget)
	}
	for _, blk := range out {
		if blk == 110 {
			t.Fatalf("zero-quota sub issued %d", blk)
		}
	}
}

func TestHybridDefaultComposition(t *testing.T) {
	h := NewHybrid()
	if h.Name() != "hybrid" {
		t.Fatalf("Name() = %q", h.Name())
	}
	if len(h.subs) != 3 {
		t.Fatalf("default hybrid has %d subs, want stream+bop+dspatch", len(h.subs))
	}
	// A unit-stride stream must produce prefetches without exceeding the
	// shared budget on any single trigger.
	var out []mem.Block
	total := 0
	for i := 0; i < 64; i++ {
		out = h.Observe(Event{PC: 0x400000, Block: mem.Block(i), Miss: true}, out[:0])
		if len(out) > hybridBudget {
			t.Fatalf("trigger issued %d > budget %d", len(out), hybridBudget)
		}
		total += len(out)
	}
	if total == 0 {
		t.Fatal("default hybrid issued nothing on a unit-stride stream")
	}
}
