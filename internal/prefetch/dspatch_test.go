package prefetch

import (
	"testing"

	"spb/internal/mem"
)

// dspVisit replays one page visit (trigger first) for a trigger PC.
func dspVisit(d *DSPatch, pc uint64, page mem.Page, idxs ...int) {
	base := mem.Block(uint64(page) * mem.BlocksPerPage)
	for _, idx := range idxs {
		d.Observe(Event{PC: pc, Block: base + mem.Block(idx), Miss: true}, nil)
	}
}

// dspFlush cycles dspPages fresh filler pages through the active-page
// buffer, forcing every older footprint to commit. Pages come from a high
// counter so they never collide with test pages.
var dspFillerPage = mem.Page(1 << 20)

func dspFlush(d *DSPatch, fillerPC uint64) {
	for i := 0; i < dspPages; i++ {
		dspVisit(d, fillerPC, dspFillerPage, 0)
		dspFillerPage++
	}
}

func TestDSPatchRotatesFootprints(t *testing.T) {
	const pc, filler = 0x1000, 0x2000
	if dspSig(pc) == dspSig(filler) {
		t.Fatal("test PCs collide in the pattern table")
	}
	d := NewDSPatch()
	// Page 0 entered at block index 5, footprint {5, 6, 9}: stored
	// trigger-relative as bits {0, 1, 4}.
	dspVisit(d, pc, 0, 5, 6, 9)
	dspFlush(d, filler)
	covP, accP, ok := d.PatternFor(pc)
	want := uint64(1)<<0 | 1<<1 | 1<<4
	if !ok || covP != want || accP != want {
		t.Fatalf("pattern = (%#x, %#x, %v), want (%#x, %#x, true)", covP, accP, ok, want, want)
	}
	// A new page entered at index 10 rotates the pattern to the new trigger:
	// predictions at +1 and +4, nearest first.
	trigger := mem.Block(100*mem.BlocksPerPage + 10)
	out := d.Observe(Event{PC: pc, Block: trigger, Miss: true}, nil)
	if len(out) != 2 || out[0] != trigger+1 || out[1] != trigger+4 {
		t.Fatalf("predictions = %v, want [%d %d]", out, trigger+1, trigger+4)
	}
}

func TestDSPatchDualPatterns(t *testing.T) {
	const pc, filler = 0x1000, 0x2000
	d := NewDSPatch()
	// Two visits with different footprints: CovP is their union, AccP their
	// intersection.
	dspVisit(d, pc, 0, 0, 1, 2)
	dspFlush(d, filler)
	dspVisit(d, pc, 1, 0, 1, 3)
	dspFlush(d, filler)
	covP, accP, ok := d.PatternFor(pc)
	if !ok {
		t.Fatal("pattern not stored")
	}
	if want := uint64(1)<<0 | 1<<1 | 1<<2 | 1<<3; covP != want {
		t.Fatalf("covP = %#x, want %#x (OR of footprints)", covP, want)
	}
	if want := uint64(1)<<0 | 1<<1; accP != want {
		t.Fatalf("accP = %#x, want %#x (AND of footprints)", accP, want)
	}
	// Coverage mode predicts the union minus the trigger...
	trigger := mem.Block(100 * mem.BlocksPerPage)
	out := d.Observe(Event{PC: pc, Block: trigger, Miss: true}, nil)
	if len(out) != 3 {
		t.Fatalf("CovP predictions = %v, want 3 blocks", out)
	}
	// ...while accuracy mode, selected by collapsing feedback accuracy,
	// predicts only the intersection.
	d.Epoch(Feedback{Issued: 100, Used: 10})
	if !d.UsingAccuracy() {
		t.Fatal("low accuracy must select AccP")
	}
	trigger = mem.Block(101 * mem.BlocksPerPage)
	out = d.Observe(Event{PC: pc, Block: trigger, Miss: true}, nil)
	if len(out) != 1 || out[0] != trigger+1 {
		t.Fatalf("AccP predictions = %v, want [%d]", out, trigger+1)
	}
}

func TestDSPatchSelectorHysteresis(t *testing.T) {
	d := NewDSPatch()
	if d.UsingAccuracy() {
		t.Fatal("fresh DSPatch must start in coverage mode")
	}
	d.Epoch(Feedback{Issued: 100, Used: 30}) // 0.30 < dspAccLow
	if !d.UsingAccuracy() {
		t.Fatal("accuracy 0.30 must switch to AccP")
	}
	d.Epoch(Feedback{Issued: 100, Used: 55}) // between the thresholds
	if !d.UsingAccuracy() {
		t.Fatal("0.55 is inside the hysteresis band; AccP must stick")
	}
	d.Epoch(Feedback{Issued: 100, Used: 70}) // 0.70 >= dspAccHysUp
	if d.UsingAccuracy() {
		t.Fatal("accuracy 0.70 must relax back to CovP")
	}
	d.Epoch(Feedback{}) // idle epoch: no information, no change
	if d.UsingAccuracy() {
		t.Fatal("empty epoch must not change the selector")
	}
}

func TestDSPatchDegreeQuota(t *testing.T) {
	const pc, filler = 0x1000, 0x2000
	d := NewDSPatch()
	// A dense footprint (every block of the page) predicts far more than the
	// issue quota; the quota spends itself nearest the trigger.
	idxs := make([]int, mem.BlocksPerPage)
	for i := range idxs {
		idxs[i] = i
	}
	dspVisit(d, pc, 0, idxs...)
	dspFlush(d, filler)
	trigger := mem.Block(100*mem.BlocksPerPage + 30)
	out := d.Observe(Event{PC: pc, Block: trigger, Miss: true}, nil)
	if len(out) != dspDegree {
		t.Fatalf("issued %d, want the degree quota %d", len(out), dspDegree)
	}
	for _, b := range out {
		if mem.PageOfBlock(b) != mem.PageOfBlock(trigger) {
			t.Fatalf("prediction %d leaves the trigger page", b)
		}
		if diff := int64(b) - int64(trigger); diff > dspDegree/2+1 || diff < -(dspDegree/2+1) {
			t.Fatalf("prediction %d not nearest-first (trigger %d)", b, trigger)
		}
	}
}
