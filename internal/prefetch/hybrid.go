package prefetch

import "spb/internal/mem"

// Hybrid arbitration across sub-prefetchers. Each sub-prefetcher proposes
// candidates for every demand access; the arbiter drains them round-robin
// into a shared per-trigger issue budget, with per-sub quotas reallocated
// per epoch toward whichever engine's past prefetches are actually being
// demanded (the generate_prefetches / allocate_prefetches idiom of hybrid
// prefetch buffers). Attribution is the arbiter's own: it remembers which
// sub proposed each issued block in a small ring, and a later demand access
// to a remembered block credits that sub — the port-level Used counter
// cannot be split per sub, so the arbiter measures its own proxy accuracy.

const (
	hybridBudget = 4  // issued prefetches per trigger, shared across subs
	hybridRecent = 64 // per-sub attribution ring entries
)

// Hybrid arbitrates a shared prefetch-issue budget across sub-prefetchers.
type Hybrid struct {
	subs []Prefetcher

	// Attribution state: recent[i] remembers blocks sub i issued; a demand
	// access matching one counts as a hit for that sub.
	recent [][]mem.Block
	rnext  []int

	issued []uint64 // per-sub prefetches issued this epoch
	hits   []uint64 // per-sub attributed demand hits this epoch
	alloc  []int    // per-sub slots per trigger; sums to hybridBudget

	scratch [][]mem.Block // per-sub proposal buffers, reused across calls
}

// NewHybrid returns the default hybrid: baseline stream + BOP + DSPatch
// under one shared budget.
func NewHybrid() *Hybrid {
	return NewHybridOf(NewStream(2, 1), NewBOP(), NewDSPatch())
}

// NewHybridOf builds a hybrid over the given sub-prefetchers (at least
// one), starting from an even budget split.
func NewHybridOf(subs ...Prefetcher) *Hybrid {
	if len(subs) == 0 {
		panic("prefetch: hybrid needs at least one sub-prefetcher")
	}
	h := &Hybrid{
		subs:    subs,
		recent:  make([][]mem.Block, len(subs)),
		rnext:   make([]int, len(subs)),
		issued:  make([]uint64, len(subs)),
		hits:    make([]uint64, len(subs)),
		alloc:   make([]int, len(subs)),
		scratch: make([][]mem.Block, len(subs)),
	}
	for i := range subs {
		h.recent[i] = make([]mem.Block, hybridRecent)
	}
	h.evenSplit()
	return h
}

// Name implements Prefetcher.
func (h *Hybrid) Name() string { return "hybrid" }

// Alloc returns a copy of the current per-sub slot allocation, for tests.
func (h *Hybrid) Alloc() []int { return append([]int(nil), h.alloc...) }

// evenSplit resets the allocation to an even budget split, remainder to the
// earliest subs.
func (h *Hybrid) evenSplit() {
	n := len(h.subs)
	for i := range h.alloc {
		h.alloc[i] = hybridBudget / n
		if i < hybridBudget%n {
			h.alloc[i]++
		}
	}
}

// credit scans the attribution rings for b and counts a hit for each sub
// that recently issued it (consuming the entry so one prefetch is credited
// at most once).
func (h *Hybrid) credit(b mem.Block) {
	if b == 0 {
		return // 0 doubles as the rings' empty sentinel
	}
	for i := range h.recent {
		for j := range h.recent[i] {
			if h.recent[i][j] == b {
				h.hits[i]++
				h.recent[i][j] = 0
				break
			}
		}
	}
}

// remember records an issued block in sub i's attribution ring.
func (h *Hybrid) remember(i int, b mem.Block) {
	h.recent[i][h.rnext[i]] = b
	h.rnext[i] = (h.rnext[i] + 1) % len(h.recent[i])
}

// Observe implements Prefetcher: credit attribution, collect every sub's
// proposals, then drain them round-robin under the per-sub quotas into the
// shared budget, deduplicating across subs.
func (h *Hybrid) Observe(ev Event, out []mem.Block) []mem.Block {
	h.credit(ev.Block)
	for i, sub := range h.subs {
		h.scratch[i] = sub.Observe(ev, h.scratch[i][:0])
	}
	base := len(out)
	taken := make([]int, len(h.subs))
	cursor := make([]int, len(h.subs))
	emitted := 0
drain:
	for emitted < hybridBudget {
		progressed := false
		for i := range h.subs {
			if taken[i] >= h.alloc[i] || cursor[i] >= len(h.scratch[i]) {
				continue
			}
			b := h.scratch[i][cursor[i]]
			cursor[i]++
			progressed = true
			dup := false
			for _, prev := range out[base:] {
				if prev == b {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			out = append(out, b)
			h.remember(i, b)
			h.issued[i]++
			taken[i]++
			emitted++
			if emitted >= hybridBudget {
				break drain
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// Epoch implements Prefetcher: reallocate the budget by attributed
// accuracy, then forward the feedback to every sub (BOP ignores it, DSPatch
// retunes its pattern selector). Laplace smoothing (+1/+1) keeps an engine
// that issued nothing from being starved forever: it retains a small quota
// with which to prove itself next epoch.
func (h *Hybrid) Epoch(fb Feedback) {
	accs := make([]float64, len(h.subs))
	total := 0.0
	anyIssued := false
	for i := range h.subs {
		accs[i] = float64(h.hits[i]+1) / float64(h.issued[i]+1)
		total += accs[i]
		if h.issued[i] > 0 {
			anyIssued = true
		}
		h.hits[i] = 0
		h.issued[i] = 0
	}
	if anyIssued {
		// Largest-remainder apportionment of the budget by accuracy share:
		// deterministic, sums exactly to the budget, ties to earlier subs.
		type rem struct {
			i    int
			frac float64
		}
		rems := make([]rem, len(h.subs))
		used := 0
		for i, a := range accs {
			share := a / total * hybridBudget
			whole := int(share)
			h.alloc[i] = whole
			used += whole
			rems[i] = rem{i: i, frac: share - float64(whole)}
		}
		for used < hybridBudget {
			bi := 0
			for j := 1; j < len(rems); j++ {
				if rems[j].frac > rems[bi].frac {
					bi = j
				}
			}
			h.alloc[rems[bi].i]++
			rems[bi].frac = -1
			used++
		}
	}
	for _, sub := range h.subs {
		sub.Epoch(fb)
	}
}
