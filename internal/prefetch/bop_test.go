package prefetch

import (
	"testing"

	"spb/internal/mem"
)

func TestBOPElectsStrideOffset(t *testing.T) {
	b := NewBOP()
	// A stride-3 miss stream: every multiple-of-3 candidate scores, but
	// offset 3 is tested earliest each round, so it saturates first and wins
	// the election.
	var blk mem.Block
	for i := 0; i < 900; i++ {
		b.Observe(Event{PC: 0x400000, Block: blk, Miss: true}, nil)
		blk += 3
	}
	if b.Best() != 3 {
		t.Fatalf("Best() = %d, want 3 after a stride-3 stream", b.Best())
	}
	// A trained BOP prefetches trigger+3 on misses within the page.
	out := b.Observe(Event{PC: 0x400000, Block: blk, Miss: true}, nil)
	if len(out) != 1 || out[0] != blk+3 {
		t.Fatalf("prefetches = %v, want [%d]", out, blk+3)
	}
}

func TestBOPDisablesOnIrregularStream(t *testing.T) {
	b := NewBOP()
	// One access per page: no candidate offset ever finds its predecessor in
	// the same page, so every score stays 0 and the election turns
	// prefetching off.
	blk := mem.Block(0)
	var out []mem.Block
	for i := 0; i < len(bopOffsets)*bopRoundMax+10; i++ {
		out = b.Observe(Event{PC: 0x400000, Block: blk, Miss: true}, out[:0])
		blk += mem.BlocksPerPage
	}
	if b.Best() != 0 {
		t.Fatalf("Best() = %d, want 0 (prefetching off) after an irregular stream", b.Best())
	}
	out = b.Observe(Event{PC: 0x400000, Block: blk, Miss: true}, nil)
	if len(out) != 0 {
		t.Fatalf("disabled BOP issued %v", out)
	}
}

func TestBOPInitialNextLine(t *testing.T) {
	b := NewBOP()
	// Fresh BOP starts at offset 1 so it is useful while the first phase
	// learns; hits never trigger, and the offset never crosses the page.
	if got := b.Observe(Event{Block: 10, Miss: true}, nil); len(got) != 1 || got[0] != 11 {
		t.Fatalf("miss prefetches = %v, want [11]", got)
	}
	if got := b.Observe(Event{Block: 20, Miss: false}, nil); len(got) != 0 {
		t.Fatalf("hit must not prefetch, got %v", got)
	}
	if got := b.Observe(Event{Block: 63, Miss: true}, nil); len(got) != 0 {
		t.Fatalf("prefetch across the page boundary: %v", got)
	}
}

func TestBOPPhaseResetsScores(t *testing.T) {
	b := NewBOP()
	var blk mem.Block
	for i := 0; i < 900; i++ {
		b.Observe(Event{PC: 0x400000, Block: blk, Miss: true}, nil)
		blk += 3
	}
	if b.Best() != 3 {
		t.Fatalf("Best() = %d, want 3", b.Best())
	}
	// The election resets the learning state; the ~160 accesses since can
	// only have accumulated a handful of fresh votes per candidate.
	for _, s := range b.scores {
		if s >= bopScoreMax {
			t.Fatalf("scores not reset after election: %v", b.scores)
		}
	}
	if b.round >= bopRoundMax {
		t.Fatalf("round = %d not reset after election", b.round)
	}
}
