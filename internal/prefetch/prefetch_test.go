package prefetch

import (
	"testing"

	"spb/internal/config"
	"spb/internal/mem"
)

func observeSeq(p Prefetcher, pc uint64, blocks ...mem.Block) []mem.Block {
	var out []mem.Block
	for _, b := range blocks {
		out = p.Observe(Event{PC: pc, Block: b, Miss: true}, out)
	}
	return out
}

func TestStreamTrainsOnUnitStride(t *testing.T) {
	s := NewStream(2, 1)
	got := observeSeq(s, 0x400000, 10, 11, 12, 13, 14)
	// Confidence reaches 2 at the third delta (block 13), so blocks 13 and
	// 14 each trigger one prefetch at distance 2.
	want := []mem.Block{15, 16}
	if len(got) != len(want) {
		t.Fatalf("prefetches = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefetches = %v, want %v", got, want)
		}
	}
}

func TestStreamIgnoresSameBlock(t *testing.T) {
	s := NewStream(1, 1)
	// Eight 8-byte stores to one block then the next: deltas are 0 except
	// at block transitions. Same-block accesses must not reset training.
	var blocks []mem.Block
	for blk := mem.Block(0); blk < 6; blk++ {
		for i := 0; i < 8; i++ {
			blocks = append(blocks, blk)
		}
	}
	got := observeSeq(s, 0x400000, blocks...)
	if len(got) == 0 {
		t.Fatal("block-granularity stream should train through same-block repeats")
	}
	for _, b := range got {
		if b < 3 || b > 6 {
			t.Fatalf("unexpected prefetch target %d", b)
		}
	}
}

func TestStreamDetectsLargeStride(t *testing.T) {
	s := NewStream(1, 1)
	got := observeSeq(s, 0x400000, 0, 4, 8, 12, 16)
	if len(got) == 0 {
		t.Fatal("stride-4 stream should trigger prefetches")
	}
	for _, b := range got {
		if int64(b)%4 != 0 {
			t.Fatalf("prefetch %d not on the stride-4 stream", b)
		}
	}
}

func TestStreamResetOnStrideChange(t *testing.T) {
	s := NewStream(1, 1)
	got := observeSeq(s, 0x400000, 0, 1, 2, 3, 100, 7, 200, 1, 90)
	// After the erratic tail, no trained stream: the only prefetches come
	// from the initial run.
	for _, b := range got {
		if b > 10 {
			t.Fatalf("prefetch %d must come from the unit-stride run only", b)
		}
	}
}

func TestStreamDoesNotCrossPage(t *testing.T) {
	s := NewStream(4, 4)
	// Train right up to the page boundary (blocks 60..63 of page 0).
	got := observeSeq(s, 0x400000, 58, 59, 60, 61, 62, 63)
	for _, b := range got {
		if mem.PageOfBlock(b) != 0 {
			t.Fatalf("prefetch %d crosses the page boundary", b)
		}
	}
}

func TestStreamPCsIsolated(t *testing.T) {
	s := NewStream(1, 1)
	// Interleave two PCs with different streams; both should train.
	var out []mem.Block
	for i := 0; i < 6; i++ {
		out = s.Observe(Event{PC: 0x1000, Block: mem.Block(i)}, out)
		out = s.Observe(Event{PC: 0x2000, Block: mem.Block(1000 + 2*i)}, out)
	}
	var low, high int
	for _, b := range out {
		if b < 100 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("both PCs should train: low=%d high=%d", low, high)
	}
}

func TestAggressiveIsMoreAggressive(t *testing.T) {
	base := New(config.PrefetchStream)
	aggr := New(config.PrefetchAggressive)
	blocks := make([]mem.Block, 32)
	for i := range blocks {
		blocks[i] = mem.Block(i)
	}
	nb := len(observeSeq(base, 0x400000, blocks...))
	na := len(observeSeq(aggr, 0x400000, blocks...))
	if na <= nb {
		t.Fatalf("aggressive issued %d <= stream %d", na, nb)
	}
}

func TestNonePrefetcher(t *testing.T) {
	p := New(config.PrefetchNone)
	if got := observeSeq(p, 0x400000, 1, 2, 3, 4, 5); len(got) != 0 {
		t.Fatalf("none prefetcher issued %v", got)
	}
	p.Epoch(Feedback{Issued: 100}) // must not panic
}

func TestAdaptiveRampsUpWhenAccurateAndLate(t *testing.T) {
	a := NewAdaptive()
	start := a.Level()
	for i := 0; i < 4; i++ {
		a.Epoch(Feedback{Issued: 1000, Used: 900, Late: 500})
	}
	if a.Level() <= start {
		t.Fatalf("level = %d, want > %d after accurate+late feedback", a.Level(), start)
	}
	if a.Level() > 5 {
		t.Fatalf("level = %d exceeds ladder", a.Level())
	}
}

func TestAdaptiveThrottlesOnLowAccuracy(t *testing.T) {
	a := NewAdaptive()
	for i := 0; i < 4; i++ {
		a.Epoch(Feedback{Issued: 1000, Used: 100})
	}
	if a.Level() != 1 {
		t.Fatalf("level = %d, want 1 after inaccurate feedback", a.Level())
	}
}

func TestAdaptiveThrottlesOnPollution(t *testing.T) {
	a := NewAdaptive()
	lvl := a.Level()
	a.Epoch(Feedback{Issued: 1000, Used: 600, Polluted: 100})
	if a.Level() >= lvl {
		t.Fatalf("level = %d, want < %d after polluting feedback", a.Level(), lvl)
	}
}

func TestAdaptiveIgnoresEmptyEpoch(t *testing.T) {
	a := NewAdaptive()
	lvl := a.Level()
	a.Epoch(Feedback{})
	if a.Level() != lvl {
		t.Fatal("empty epoch must not change the level")
	}
}

func TestAdaptiveBoundsHold(t *testing.T) {
	a := NewAdaptive()
	for i := 0; i < 20; i++ {
		a.Epoch(Feedback{Issued: 1000, Used: 950, Late: 400})
	}
	if a.Level() != 5 {
		t.Fatalf("level = %d, want saturation at 5", a.Level())
	}
	for i := 0; i < 20; i++ {
		a.Epoch(Feedback{Issued: 1000, Used: 10})
	}
	if a.Level() != 1 {
		t.Fatalf("level = %d, want floor at 1", a.Level())
	}
}

// TestAdaptiveEpochTrajectory is the table-driven FDP decision-tree test:
// it pins the level trajectory across every branch, and in particular that
// accurate, timely and clean feedback HOLDS the level (Srinath et al.,
// Table 2) instead of ramping up.
func TestAdaptiveEpochTrajectory(t *testing.T) {
	hold := Feedback{Issued: 1000, Used: 900, Late: 20}           // acc .90, late .02, pol 0
	rampUp := Feedback{Issued: 1000, Used: 900, Late: 500}        // acc .90, late .56
	inaccurate := Feedback{Issued: 1000, Used: 200}               // acc .20
	polluting := Feedback{Issued: 1000, Used: 600, Polluted: 100} // acc .60, pol .10
	steps := []struct {
		name string
		fb   Feedback
		want int
	}{
		{"hold at start", hold, 3},
		{"accurate+late ramps", rampUp, 4},
		{"hold at 4", hold, 4},
		{"accurate+late ramps", rampUp, 5},
		{"hold at ceiling", hold, 5},
		{"inaccurate throttles", inaccurate, 4},
		{"polluting throttles", polluting, 3},
		{"hold after throttle", hold, 3},
		{"empty epoch holds", Feedback{}, 3},
		{"ramp resumes", rampUp, 4},
	}
	a := NewAdaptive()
	for _, s := range steps {
		a.Epoch(s.fb)
		if a.Level() != s.want {
			t.Fatalf("%s: level = %d, want %d", s.name, a.Level(), s.want)
		}
	}
}

func TestNewCoversAllKinds(t *testing.T) {
	for _, k := range config.Prefetchers {
		p := New(k)
		if p == nil {
			t.Fatalf("New(%v) returned nil", k)
		}
		if p.Name() == "" {
			t.Fatalf("New(%v).Name() is empty", k)
		}
	}
}
