package prefetch

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"spb/internal/config"
	"spb/internal/mem"
)

// driveState replays a deterministic mixed-stride access pattern (three
// interleaved streams, periodic feedback epochs) and returns every prefetch
// issued, so two prefetchers can be compared for behavioral equality.
func driveState(p Prefetcher, phase, n int) []mem.Block {
	var all, out []mem.Block
	for i := 0; i < n; i++ {
		j := phase + i
		stream := j % 3
		blk := mem.Block(stream<<14 + (j/3)*(stream+1))
		out = p.Observe(Event{
			PC:    uint64(0x400000 + stream*8),
			Block: blk,
			Miss:  j%4 != 0,
			Store: stream == 1,
		}, out[:0])
		all = append(all, out...)
		if j%257 == 256 {
			p.Epoch(Feedback{Issued: 100, Used: uint64(20 + 25*stream), Late: 12, Polluted: 3})
		}
	}
	return all
}

// TestCaptureRestoreEquivalence checkpoints every kind mid-stream through a
// gob round trip (the checkpoint wire format) and checks the restored copy
// behaves identically on the continuation.
func TestCaptureRestoreEquivalence(t *testing.T) {
	for _, k := range config.Prefetchers {
		t.Run(k.String(), func(t *testing.T) {
			a := New(k)
			driveState(a, 0, 1200)
			st := CaptureState(a)

			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
				t.Fatalf("gob encode: %v", err)
			}
			var dec State
			if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&dec); err != nil {
				t.Fatalf("gob decode: %v", err)
			}

			b := New(k)
			RestoreState(b, dec)
			gotA := driveState(a, 1200, 900)
			gotB := driveState(b, 1200, 900)
			if len(gotA) != len(gotB) {
				t.Fatalf("continuations diverge: %d vs %d prefetches", len(gotA), len(gotB))
			}
			for i := range gotA {
				if gotA[i] != gotB[i] {
					t.Fatalf("continuations diverge at prefetch %d: %d vs %d", i, gotA[i], gotB[i])
				}
			}
		})
	}
}

// TestCaptureStateKinds pins the Kind discriminator each constructor
// captures as, which the checkpoint format depends on.
func TestCaptureStateKinds(t *testing.T) {
	want := map[config.PrefetcherKind]string{
		config.PrefetchStream:     "stream",
		config.PrefetchAggressive: "stream",
		config.PrefetchAdaptive:   "adaptive",
		config.PrefetchNone:       "none",
		config.PrefetchBOP:        "bop",
		config.PrefetchDSPatch:    "dspatch",
		config.PrefetchHybrid:     "hybrid",
	}
	for _, k := range config.Prefetchers {
		if got := CaptureState(New(k)).Kind; got != want[k] {
			t.Fatalf("CaptureState(%v).Kind = %q, want %q", k, got, want[k])
		}
	}
}

func TestRestoreStateKindMismatchPanics(t *testing.T) {
	cases := []struct {
		p  Prefetcher
		st State
	}{
		{New(config.PrefetchBOP), State{Kind: "stream"}},
		{New(config.PrefetchDSPatch), State{Kind: "bop"}},
		{New(config.PrefetchHybrid), State{Kind: "dspatch"}},
		{New(config.PrefetchStream), State{Kind: "hybrid"}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RestoreState(%s, %q) must panic", c.p.Name(), c.st.Kind)
				}
			}()
			RestoreState(c.p, c.st)
		}()
	}
}

// TestHybridRestorePreservesAttribution checks the arbiter's rings,
// counters and allocation survive a round trip — mid-epoch credit must keep
// accruing identically after a restore, down to deep-equal captured state.
func TestHybridRestorePreservesAttribution(t *testing.T) {
	h := NewHybridOf(NewStream(2, 1), NewBOP())
	var out []mem.Block
	for i := 0; i < 100; i++ {
		out = h.Observe(Event{PC: 0x400000, Block: mem.Block(1000 + i), Miss: true}, out[:0])
	}
	st := CaptureState(h)
	h2 := NewHybridOf(NewStream(2, 1), NewBOP())
	RestoreState(h2, st)
	for i := 100; i < 300; i++ {
		out = h.Observe(Event{PC: 0x400000, Block: mem.Block(1000 + i), Miss: true}, out[:0])
		out = h2.Observe(Event{PC: 0x400000, Block: mem.Block(1000 + i), Miss: true}, out[:0])
	}
	h.Epoch(Feedback{})
	h2.Epoch(Feedback{})
	if !reflect.DeepEqual(CaptureState(h), CaptureState(h2)) {
		t.Fatalf("hybrid state diverges after restore:\n%+v\nvs\n%+v", CaptureState(h), CaptureState(h2))
	}
}
