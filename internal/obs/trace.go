package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timestamped phase of a job's life. Top-level phase names carry
// no dot ("submit", "queue-wait", "run", "store-write", "stream-out");
// a dotted name ("run.sim") is a sub-span nested under the phase named by
// its prefix and is excluded from the trace's top-level total, so summing
// phases never double-counts.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	DurNS int64     `json:"dur_ns"`
}

// Nested reports whether the span is a sub-span of another phase.
func (s Span) Nested() bool {
	for i := 0; i < len(s.Name); i++ {
		if s.Name[i] == '.' {
			return true
		}
	}
	return false
}

// TraceView is the JSON shape served at GET /v1/runs/{id}/trace and emitted
// as one NDJSON line per finished trace. Spans are in start order; TotalNS
// sums the top-level phases only (see Span).
type TraceView struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id"`
	Key     string `json:"key"`
	Done    bool   `json:"done"`
	Spans   []Span `json:"spans"`
	TotalNS int64  `json:"total_ns"`
}

// Trace accumulates the spans of one job. All methods are safe for
// concurrent use and no-ops on a nil receiver, so instrumented code never
// guards for "is tracing on".
type Trace struct {
	tracer *Tracer

	mu    sync.Mutex
	id    string
	jobID string
	key   string
	done  bool
	spans []Span
}

// TraceID returns the propagated trace ID ("" on a nil trace).
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Span records one completed phase.
func (t *Trace) Span(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	// Spans may still arrive after Finish (a batch stream recording its
	// terminal write); they appear in Snapshot but not the NDJSON line.
	t.spans = append(t.spans, Span{Name: name, Start: start, End: end, DurNS: end.Sub(start).Nanoseconds()})
	t.mu.Unlock()
}

// Event records a zero-duration marker span (e.g. "coalesce": one more
// submitter deduplicated onto this job).
func (t *Trace) Event(name string) {
	if t == nil {
		return
	}
	at := now()
	t.Span(name, at, at)
}

// ActiveSpan is an open span handle. The zero value (from a nil trace) is a
// no-op, and the handle is a plain value — starting and ending a span
// allocates nothing beyond the recorded Span itself.
type ActiveSpan struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a span ended by End on the returned handle.
func (t *Trace) StartSpan(name string) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{t: t, name: name, start: now()}
}

// End closes the span. Calling End on a zero handle does nothing.
func (s ActiveSpan) End() {
	if s.t == nil {
		return
	}
	s.t.Span(s.name, s.start, now())
}

// Finish marks the trace complete and, once only, emits it as one NDJSON
// line on the owning tracer's sink. Spans recorded after Finish (a batch
// stream writing its terminal line) still appear in Snapshot but not in the
// already-emitted NDJSON line.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	already := t.done
	t.done = true
	t.mu.Unlock()
	if !already && t.tracer != nil {
		t.tracer.emit(t.Snapshot())
	}
}

// Snapshot renders the trace's current state (spans sorted by start time).
func (t *Trace) Snapshot() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	v := TraceView{TraceID: t.id, JobID: t.jobID, Key: t.key, Done: t.done}
	v.Spans = append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(v.Spans, func(i, j int) bool { return v.Spans[i].Start.Before(v.Spans[j].Start) })
	for _, sp := range v.Spans {
		if !sp.Nested() {
			v.TotalNS += sp.DurNS
		}
	}
	return v
}

// Tracer owns the live traces of a daemon: a bounded map from job ID to
// trace (oldest evicted first) plus an optional NDJSON sink that receives
// one line per finished trace. A nil *Tracer disables tracing at zero cost:
// Start returns nil and every downstream call no-ops.
type Tracer struct {
	mu     sync.Mutex
	byJob  map[string]*Trace
	order  []string // job IDs in insertion order, for eviction
	cap    int
	sink   io.Writer
	sinkMu sync.Mutex
}

// DefaultTraceCapacity bounds retained traces when the caller passes 0.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining up to capacity traces
// (DefaultTraceCapacity if capacity <= 0). sink, when non-nil, receives one
// NDJSON line per finished trace.
func NewTracer(capacity int, sink io.Writer) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{byJob: make(map[string]*Trace, capacity), cap: capacity, sink: sink}
}

// Start registers a new trace for jobID. An empty traceID mints a fresh one.
// On a nil tracer it returns nil, which every *Trace method accepts.
func (tr *Tracer) Start(traceID, jobID, key string) *Trace {
	if tr == nil {
		return nil
	}
	if traceID == "" {
		traceID = NewTraceID()
	}
	t := &Trace{tracer: tr, id: traceID, jobID: jobID, key: key}
	tr.mu.Lock()
	if _, dup := tr.byJob[jobID]; !dup {
		tr.order = append(tr.order, jobID)
	}
	tr.byJob[jobID] = t
	for len(tr.order) > tr.cap {
		evict := tr.order[0]
		tr.order = tr.order[1:]
		delete(tr.byJob, evict)
	}
	tr.mu.Unlock()
	return t
}

// Get returns the trace registered for jobID, or nil.
func (tr *Tracer) Get(jobID string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.byJob[jobID]
}

// Len reports how many traces are retained.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.byJob)
}

func (tr *Tracer) emit(v TraceView) {
	if tr.sink == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	tr.sinkMu.Lock()
	tr.sink.Write(append(data, '\n'))
	tr.sinkMu.Unlock()
}
