package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{4096 * time.Nanosecond, 0},       // exactly the first upper bound
		{4097 * time.Nanosecond, 1},       // just over: next bucket
		{8192 * time.Nanosecond, 1},       // 2^13
		{time.Second, 30 - histMinShift},  // 1e9 ns <= 2^30
		{70 * time.Second, histBuckets},   // beyond 2^36 ns: overflow
		{-5 * time.Millisecond, 0},        // clamped
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		got := -1
		for i := range h.counts {
			if h.counts[i].Load() == 1 {
				got = i
			}
		}
		if got != c.want {
			t.Fatalf("Observe(%v) landed in bucket %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramQuantileVsExact checks the log-bucket error bound against
// exact percentiles: for every p, exact <= estimate < 2·exact (one power-of-
// two bucket), on a deterministic heavy-tailed sample.
func TestHistogramQuantileVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]time.Duration, 5000)
	for i := range samples {
		// Log-uniform between ~10µs and ~10s: exercises many buckets.
		exp := 4 + rng.Float64()*6 // 10^4 .. 10^10 ns
		d := time.Duration(math.Pow(10, exp))
		samples[i] = d
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99, 0.999} {
		exact := PercentileDuration(samples, p)
		est := h.Quantile(p)
		if est < exact {
			t.Fatalf("p%.3f: estimate %v < exact %v (upper bound must dominate)", p, est, exact)
		}
		if est >= 2*exact {
			t.Fatalf("p%.3f: estimate %v >= 2x exact %v (log2 bucket bound violated)", p, est, exact)
		}
	}
	if h.Count() != 5000 {
		t.Fatalf("Count = %d, want 5000", h.Count())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Microsecond)  // bucket 0
	h.Observe(10 * time.Microsecond) // ~bucket 2
	h.Observe(2 * time.Minute)       // overflow

	var b strings.Builder
	h.WriteProm(&b, "spbd_test_seconds", "")
	out := b.String()
	for _, want := range []string{
		`spbd_test_seconds_bucket{le="4.096e-06"} 1`,
		`spbd_test_seconds_bucket{le="+Inf"} 3`,
		"spbd_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm output missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	h.WriteProm(&b, "spbd_test_seconds", `endpoint="GET /x"`)
	if !strings.Contains(b.String(), `spbd_test_seconds_bucket{endpoint="GET /x",le="+Inf"} 3`) {
		t.Fatalf("labeled WriteProm malformed:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `spbd_test_seconds_count{endpoint="GET /x"} 3`) {
		t.Fatalf("labeled count malformed:\n%s", b.String())
	}

	// Cumulative counts must be monotonically non-decreasing.
	var cum []uint64
	var c uint64
	for i := 0; i <= histBuckets; i++ {
		c += h.counts[i].Load()
		cum = append(cum, c)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decrease at %d", i)
		}
	}
}
