package obs

import (
	"testing"
	"time"
)

// TestNearestRankRegression pins the bugfix: the floor-index formula
// int(p·(n-1)) under-reported the tail on small samples (p99 of 50 read
// element 48); nearest-rank reads the true 50th order statistic.
func TestNearestRankRegression(t *testing.T) {
	n := 50
	if got := NearestRank(n, 0.99); got != 49 {
		t.Fatalf("NearestRank(50, 0.99) = %d, want 49", got)
	}
	if old := int(0.99 * float64(n-1)); old == 49 {
		t.Fatalf("floor formula unexpectedly agrees; regression test is vacuous")
	}
	if got := NearestRank(100, 0.99); got != 98 {
		t.Fatalf("NearestRank(100, 0.99) = %d, want 98", got)
	}
	if got := NearestRank(100, 0.95); got != 94 {
		t.Fatalf("NearestRank(100, 0.95) = %d, want 94", got)
	}
	if got := NearestRank(4, 0.50); got != 1 {
		t.Fatalf("NearestRank(4, 0.50) = %d, want 1", got)
	}
	if got := NearestRank(1, 0.99); got != 0 {
		t.Fatalf("NearestRank(1, 0.99) = %d, want 0", got)
	}
	if got := NearestRank(0, 0.5); got != 0 {
		t.Fatalf("NearestRank(0, 0.5) = %d, want 0", got)
	}
	if got := NearestRank(10, 1.0); got != 9 {
		t.Fatalf("NearestRank(10, 1.0) = %d, want 9", got)
	}
}

func TestPercentileDuration(t *testing.T) {
	if got := PercentileDuration(nil, 0.99); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	lat := make([]time.Duration, 50)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := PercentileDuration(lat, 0.99); got != 50*time.Millisecond {
		t.Fatalf("p99 of 1..50ms = %v, want 50ms", got)
	}
	if got := PercentileDuration(lat, 0.50); got != 25*time.Millisecond {
		t.Fatalf("p50 of 1..50ms = %v, want 25ms", got)
	}
	if got := PercentileDuration(lat, 1.0); got != 50*time.Millisecond {
		t.Fatalf("p100 of 1..50ms = %v, want 50ms", got)
	}
}
