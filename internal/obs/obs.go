// Package obs is the observability layer shared by the spbd service stack:
// structured per-job traces (propagated trace IDs + timestamped phase spans,
// dumpable as NDJSON), hand-rolled log-bucketed latency histograms for the
// /metrics endpoint, and the nearest-rank percentile math the load tools
// report with.
//
// Everything here is stdlib-only and nil-safe: a nil *Tracer hands out nil
// *Trace values whose methods are no-ops, so the instrumented request path
// costs nothing when observability is disabled — the property the PR 1
// AllocsPerRun guards and the byte-identical stats invariants rely on.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that propagates a trace ID from clients
// (client.Client, client.Pool) into spbd, where it is attached to every job
// the request creates. Absent or empty, the daemon mints one per job.
const TraceHeader = "X-Spb-Trace-Id"

// idCounter disambiguates IDs minted in the same process when the entropy
// source fails (it realistically cannot, but an ID must never be empty).
var idCounter atomic.Uint64

// NewTraceID mints a 16-hex-char random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

type traceCtxKey struct{}

// NewContext returns ctx carrying t, so layers below the server (sim.RunCtx)
// can attach sub-spans to the job's trace. A nil t returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext extracts the trace carried by ctx, or nil. The nil result is
// usable directly: every *Trace method no-ops on a nil receiver.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// now is stubbed in tests that need deterministic span timestamps.
var now = time.Now
