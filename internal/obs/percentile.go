package obs

import (
	"math"
	"time"
)

// NearestRank returns the 0-based index of the p-quantile of n ascending
// samples under the nearest-rank definition: index = ceil(p·n) - 1. Unlike
// the floor-index formula int(p·(n-1)) it never under-reports the tail on
// small samples — the p99 of 50 samples is the 50th order statistic (index
// 49), not the 49th (index 48). p is clamped to (0, 1]; n <= 0 returns 0.
func NearestRank(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// PercentileDuration returns the nearest-rank p-quantile of sorted (a slice
// of durations in ascending order). It is the single shared percentile
// helper for every latency report in the repo — spbload's open-loop and
// batch reports and the client pool's hedge-delay estimate all call it — so
// the tail math cannot drift between tools again. An empty slice returns 0.
func PercentileDuration(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[NearestRank(len(sorted), p)]
}
