package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: the whole layer must be free to leave disabled — a nil
// tracer hands out nil traces whose every method no-ops.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tc := tr.Start("abc", "job1", "key1")
	if tc != nil {
		t.Fatalf("nil tracer returned non-nil trace")
	}
	tc.Span("submit", time.Now(), time.Now())
	tc.Event("coalesce")
	sp := tc.StartSpan("run")
	sp.End()
	tc.Finish()
	if got := tc.TraceID(); got != "" {
		t.Fatalf("nil trace TraceID = %q, want empty", got)
	}
	if v := tc.Snapshot(); len(v.Spans) != 0 || v.TotalNS != 0 {
		t.Fatalf("nil trace snapshot not empty: %+v", v)
	}
	if tr.Get("job1") != nil || tr.Len() != 0 {
		t.Fatalf("nil tracer Get/Len misbehaved")
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatalf("nil trace round-tripped through context as non-nil")
	}
}

func TestTraceSpansAndTotal(t *testing.T) {
	tr := NewTracer(8, nil)
	tc := tr.Start("", "job1", "key1")
	if tc.TraceID() == "" {
		t.Fatalf("empty trace ID not minted")
	}
	base := time.Now()
	tc.Span("submit", base, base.Add(1*time.Millisecond))
	tc.Span("queue-wait", base.Add(1*time.Millisecond), base.Add(3*time.Millisecond))
	tc.Span("run", base.Add(3*time.Millisecond), base.Add(10*time.Millisecond))
	tc.Span("run.sim", base.Add(3*time.Millisecond), base.Add(9*time.Millisecond)) // nested: excluded from total
	v := tc.Snapshot()
	if len(v.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(v.Spans))
	}
	// Sorted by start; total counts only top-level phases: 1+2+7 = 10ms.
	if want := (10 * time.Millisecond).Nanoseconds(); v.TotalNS != want {
		t.Fatalf("TotalNS = %d, want %d (nested span must not double-count)", v.TotalNS, want)
	}
	for i := 1; i < len(v.Spans); i++ {
		if v.Spans[i].Start.Before(v.Spans[i-1].Start) {
			t.Fatalf("spans not sorted by start: %v", v.Spans)
		}
	}
	if tr.Get("job1") != tc {
		t.Fatalf("Get(job1) did not return the registered trace")
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(3, nil)
	for i := 0; i < 5; i++ {
		tr.Start("", fmt.Sprintf("job%d", i), "k")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capacity)", tr.Len())
	}
	if tr.Get("job0") != nil || tr.Get("job1") != nil {
		t.Fatalf("oldest traces not evicted")
	}
	if tr.Get("job4") == nil {
		t.Fatalf("newest trace evicted")
	}
}

func TestTraceNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8, &buf)
	tc := tr.Start("tid123", "job1", "key1")
	now := time.Now()
	tc.Span("submit", now, now.Add(time.Millisecond))
	tc.Finish()
	tc.Finish() // idempotent: one line only

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d NDJSON lines, want 1:\n%s", len(lines), buf.String())
	}
	var v TraceView
	if err := json.Unmarshal([]byte(lines[0]), &v); err != nil {
		t.Fatalf("NDJSON line does not parse: %v", err)
	}
	if v.TraceID != "tid123" || v.JobID != "job1" || !v.Done || len(v.Spans) != 1 {
		t.Fatalf("NDJSON view wrong: %+v", v)
	}
	// A span landing after Finish is visible in the snapshot.
	tc.Span("stream-out", now, now.Add(2*time.Millisecond))
	if got := len(tc.Snapshot().Spans); got != 2 {
		t.Fatalf("post-Finish span lost: %d spans", got)
	}
}

func TestTraceConcurrency(t *testing.T) {
	tr := NewTracer(64, &bytes.Buffer{})
	tc := tr.Start("", "job1", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tc.StartSpan(fmt.Sprintf("g%d", g))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	tc.Finish()
	if got := len(tc.Snapshot().Spans); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer(4, nil)
	tc := tr.Start("", "j", "k")
	ctx := NewContext(context.Background(), tc)
	if FromContext(ctx) != tc {
		t.Fatalf("trace lost in context round trip")
	}
	if FromContext(context.Background()) != nil {
		t.Fatalf("background context yielded a trace")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == "" || a == b {
		t.Fatalf("trace IDs not unique: %q %q", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("trace ID %q not 16 hex chars", a)
	}
}
