package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a hand-rolled log-bucketed latency histogram: bucket i
// covers durations in (2^(minShift+i-1), 2^(minShift+i)] nanoseconds, so
// the buckets span ~4µs to ~68s in factors of two — microsecond cache hits
// and minute-long PARSEC points land in the same instrument with bounded
// relative error (any quantile estimate is within one power of two of the
// exact value). Observation is one atomic add on a bucket picked with a
// bit-length computation: lock-free and allocation-free, fit for the
// request path.
//
// Counts are stored per-bucket and rendered cumulatively in Prometheus
// exposition format by WriteProm.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // +1: overflow (+Inf) bucket
	sumNS  atomic.Int64
}

const (
	histMinShift = 12 // first bucket upper bound: 2^12 ns = 4.096µs
	histMaxShift = 36 // last finite bucket: 2^36 ns ≈ 68.7s
	histBuckets  = histMaxShift - histMinShift + 1
)

// bucketFor returns the index of the smallest bucket whose upper bound is
// >= n nanoseconds (histBuckets for the +Inf overflow bucket).
func bucketFor(n int64) int {
	if n <= 1<<histMinShift {
		return 0
	}
	// ceil(log2(n)) - histMinShift: Len64(x-1) is ceil(log2(x)) for x >= 2.
	b := bits.Len64(uint64(n-1)) - histMinShift
	if b > histBuckets {
		return histBuckets
	}
	return b
}

// UpperBound returns bucket i's inclusive upper bound in seconds
// (+Inf for the overflow bucket).
func (h *Histogram) UpperBound(i int) float64 {
	if i >= histBuckets {
		return float64(1<<63 - 1) // effectively +Inf; rendered as "+Inf"
	}
	return float64(uint64(1)<<(histMinShift+i)) / 1e9
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.counts[bucketFor(n)].Add(1)
	h.sumNS.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed durations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNS.Load()) / 1e9 }

// Quantile estimates the p-quantile (0 < p <= 1) as the upper bound of the
// bucket holding the nearest-rank observation. The estimate E brackets the
// exact value x as E/2 < x <= E (one log2 bucket); it returns 0 on an empty
// histogram.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := NearestRank(int(total), p)
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > uint64(rank) {
			return time.Duration(uint64(1) << (histMinShift + i))
		}
	}
	return time.Duration(1<<63 - 1)
}

// WriteProm renders the histogram under name in Prometheus exposition
// format: cumulative _bucket series with le labels, then _sum and _count.
// labels, when non-empty, is a rendered label list without braces
// (`endpoint="POST /v1/runs"`) merged ahead of the le label. Empty buckets
// between populated ones are skipped (log buckets make most of them empty)
// except the first and +Inf, keeping the exposition compact while still
// cumulative-correct for Prometheus-style consumers.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		cum += n
		if n == 0 && i != 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, h.UpperBound(i), cum)
	}
	cum += h.counts[histBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	}
}
