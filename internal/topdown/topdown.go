// Package topdown derives the Intel Top-Down-style metrics the paper's
// evaluation reads off its simulations: the ratio of stall cycles caused by
// a full store buffer (Fig. 1), the issue-stall breakdown into SB versus
// other back-end resources (Fig. 10), and the "execution stalls while L1D
// misses are pending" memory-boundedness signal (Figs. 14/15).
package topdown

import "spb/internal/cpu"

// Report is the per-run Top-Down summary.
type Report struct {
	Cycles uint64

	// SBStallRatio is the fraction of all cycles stalled on a full SB.
	SBStallRatio float64
	// OtherStallRatio is the fraction stalled on ROB/IQ/LQ.
	OtherStallRatio float64
	// FrontendStallRatio is the fraction stalled on mispredict refill.
	FrontendStallRatio float64
	// ExecStallL1DPendingRatio is the fraction of cycles with dispatch idle
	// while at least one L1D miss was outstanding.
	ExecStallL1DPendingRatio float64
	// MemoryBound classifies the run per the >2% SB-stall criterion the
	// paper uses to pick its SB-bound application set.
	SBBound bool
}

// SBBoundThreshold is the paper's criterion: more than 2% of cycles stalled
// on the store buffer marks an application SB-bound.
const SBBoundThreshold = 0.02

// SBBoundThresholdPPM is SBBoundThreshold in integer parts-per-million, the
// form the canonical stats export compares against.
const SBBoundThresholdPPM = 20_000

// PPM converts part/total to integer parts-per-million. Pure integer math:
// the same counters produce the same PPM on every platform, which keeps the
// canonical stats JSON (where these land as td.* counters) byte-identical
// between in-process runs and service responses.
func PPM(part, total uint64) uint64 {
	if total == 0 {
		return 0
	}
	return part * 1_000_000 / total
}

// StatPPM returns the Top-Down stall ratios of st in integer
// parts-per-million — the export-oriented sibling of Analyze, surfaced in
// every run's canonical stats set under td.*.
func StatPPM(st *cpu.Stats) (sb, other, frontend, l1dPending uint64) {
	return PPM(st.SBStallCycles, st.Cycles),
		PPM(st.OtherStallCycles(), st.Cycles),
		PPM(st.FrontendStallCycles, st.Cycles),
		PPM(st.ExecStallL1DPending, st.Cycles)
}

// Analyze derives a Report from a core's statistics.
func Analyze(st *cpu.Stats) Report {
	r := Report{Cycles: st.Cycles}
	if st.Cycles == 0 {
		return r
	}
	total := float64(st.Cycles)
	r.SBStallRatio = float64(st.SBStallCycles) / total
	r.OtherStallRatio = float64(st.OtherStallCycles()) / total
	r.FrontendStallRatio = float64(st.FrontendStallCycles) / total
	r.ExecStallL1DPendingRatio = float64(st.ExecStallL1DPending) / total
	r.SBBound = r.SBStallRatio > SBBoundThreshold
	return r
}

// StallBreakdown is the Fig. 10 decomposition of issue stalls relative to a
// baseline run: how much of the baseline's stall cycles each configuration
// keeps, split by source.
type StallBreakdown struct {
	SBPart    float64 // this run's SB stalls / baseline total issue stalls
	OtherPart float64 // this run's other stalls / baseline total issue stalls
}

// Net returns the combined normalized stall level (1.0 = baseline).
func (b StallBreakdown) Net() float64 { return b.SBPart + b.OtherPart }

// Breakdown computes the Fig. 10 bars for a run against a baseline.
func Breakdown(run, baseline *cpu.Stats) StallBreakdown {
	den := float64(baseline.IssueStallCycles())
	if den == 0 {
		return StallBreakdown{}
	}
	return StallBreakdown{
		SBPart:    float64(run.SBStallCycles) / den,
		OtherPart: float64(run.OtherStallCycles()) / den,
	}
}
