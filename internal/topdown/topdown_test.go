package topdown

import (
	"testing"

	"spb/internal/cpu"
)

func TestAnalyzeRatios(t *testing.T) {
	st := &cpu.Stats{
		Cycles:              1000,
		SBStallCycles:       100,
		ROBStallCycles:      40,
		IQStallCycles:       10,
		LQStallCycles:       50,
		FrontendStallCycles: 30,
		ExecStallL1DPending: 200,
	}
	r := Analyze(st)
	if r.SBStallRatio != 0.10 {
		t.Fatalf("SBStallRatio = %v, want 0.10", r.SBStallRatio)
	}
	if r.OtherStallRatio != 0.10 {
		t.Fatalf("OtherStallRatio = %v, want 0.10", r.OtherStallRatio)
	}
	if r.FrontendStallRatio != 0.03 {
		t.Fatalf("FrontendStallRatio = %v, want 0.03", r.FrontendStallRatio)
	}
	if r.ExecStallL1DPendingRatio != 0.20 {
		t.Fatalf("ExecStallL1DPendingRatio = %v, want 0.20", r.ExecStallL1DPendingRatio)
	}
	if !r.SBBound {
		t.Fatal("10% SB stalls is SB-bound (threshold 2%)")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(&cpu.Stats{})
	if r.SBBound || r.SBStallRatio != 0 {
		t.Fatal("empty stats must not be SB-bound")
	}
}

func TestSBBoundThreshold(t *testing.T) {
	st := &cpu.Stats{Cycles: 1000, SBStallCycles: 20}
	if Analyze(st).SBBound {
		t.Fatal("exactly 2% is not > 2%")
	}
	st.SBStallCycles = 21
	if !Analyze(st).SBBound {
		t.Fatal("2.1% must be SB-bound")
	}
}

func TestBreakdownAgainstBaseline(t *testing.T) {
	baseline := &cpu.Stats{SBStallCycles: 80, ROBStallCycles: 20} // 100 issue stalls
	run := &cpu.Stats{SBStallCycles: 20, ROBStallCycles: 30}
	b := Breakdown(run, baseline)
	if b.SBPart != 0.20 || b.OtherPart != 0.30 {
		t.Fatalf("breakdown = %+v, want 0.20/0.30", b)
	}
	if b.Net() != 0.50 {
		t.Fatalf("Net = %v, want 0.50", b.Net())
	}
}

func TestBreakdownSelfIsUnity(t *testing.T) {
	st := &cpu.Stats{SBStallCycles: 70, ROBStallCycles: 10, IQStallCycles: 20}
	b := Breakdown(st, st)
	if b.Net() != 1.0 {
		t.Fatalf("self breakdown Net = %v, want 1", b.Net())
	}
}

func TestBreakdownZeroBaseline(t *testing.T) {
	b := Breakdown(&cpu.Stats{SBStallCycles: 10}, &cpu.Stats{})
	if b.Net() != 0 {
		t.Fatal("zero baseline must yield zero breakdown, not a division by zero")
	}
}

func TestPPM(t *testing.T) {
	if got := PPM(0, 0); got != 0 {
		t.Fatalf("PPM(0,0) = %d, want 0 (no division by zero)", got)
	}
	if got := PPM(100, 1000); got != 100_000 {
		t.Fatalf("PPM(100,1000) = %d, want 100000", got)
	}
	if got := PPM(1, 3); got != 333_333 {
		t.Fatalf("PPM(1,3) = %d, want 333333 (integer floor)", got)
	}
}

// TestStatPPMMatchesAnalyze pins the integer export against the float
// report: the PPM values must be the floor of ratio·1e6.
func TestStatPPMMatchesAnalyze(t *testing.T) {
	st := &cpu.Stats{
		Cycles:              999,
		SBStallCycles:       100,
		ROBStallCycles:      40,
		IQStallCycles:       10,
		LQStallCycles:       53,
		FrontendStallCycles: 30,
		ExecStallL1DPending: 200,
	}
	r := Analyze(st)
	sb, other, fe, l1d := StatPPM(st)
	check := func(name string, ppm uint64, ratio float64) {
		t.Helper()
		if want := uint64(ratio * 1e6); ppm != want && ppm != want-1 && ppm != want+1 {
			t.Fatalf("%s = %d PPM, Analyze ratio %v (~%d)", name, ppm, ratio, want)
		}
	}
	check("sb", sb, r.SBStallRatio)
	check("other", other, r.OtherStallRatio)
	check("frontend", fe, r.FrontendStallRatio)
	check("l1dPending", l1d, r.ExecStallL1DPendingRatio)
	if (sb > SBBoundThresholdPPM) != r.SBBound {
		t.Fatalf("PPM threshold disagrees with Analyze.SBBound")
	}
}
