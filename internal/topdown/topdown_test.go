package topdown

import (
	"testing"

	"spb/internal/cpu"
)

func TestAnalyzeRatios(t *testing.T) {
	st := &cpu.Stats{
		Cycles:              1000,
		SBStallCycles:       100,
		ROBStallCycles:      40,
		IQStallCycles:       10,
		LQStallCycles:       50,
		FrontendStallCycles: 30,
		ExecStallL1DPending: 200,
	}
	r := Analyze(st)
	if r.SBStallRatio != 0.10 {
		t.Fatalf("SBStallRatio = %v, want 0.10", r.SBStallRatio)
	}
	if r.OtherStallRatio != 0.10 {
		t.Fatalf("OtherStallRatio = %v, want 0.10", r.OtherStallRatio)
	}
	if r.FrontendStallRatio != 0.03 {
		t.Fatalf("FrontendStallRatio = %v, want 0.03", r.FrontendStallRatio)
	}
	if r.ExecStallL1DPendingRatio != 0.20 {
		t.Fatalf("ExecStallL1DPendingRatio = %v, want 0.20", r.ExecStallL1DPendingRatio)
	}
	if !r.SBBound {
		t.Fatal("10% SB stalls is SB-bound (threshold 2%)")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(&cpu.Stats{})
	if r.SBBound || r.SBStallRatio != 0 {
		t.Fatal("empty stats must not be SB-bound")
	}
}

func TestSBBoundThreshold(t *testing.T) {
	st := &cpu.Stats{Cycles: 1000, SBStallCycles: 20}
	if Analyze(st).SBBound {
		t.Fatal("exactly 2% is not > 2%")
	}
	st.SBStallCycles = 21
	if !Analyze(st).SBBound {
		t.Fatal("2.1% must be SB-bound")
	}
}

func TestBreakdownAgainstBaseline(t *testing.T) {
	baseline := &cpu.Stats{SBStallCycles: 80, ROBStallCycles: 20} // 100 issue stalls
	run := &cpu.Stats{SBStallCycles: 20, ROBStallCycles: 30}
	b := Breakdown(run, baseline)
	if b.SBPart != 0.20 || b.OtherPart != 0.30 {
		t.Fatalf("breakdown = %+v, want 0.20/0.30", b)
	}
	if b.Net() != 0.50 {
		t.Fatalf("Net = %v, want 0.50", b.Net())
	}
}

func TestBreakdownSelfIsUnity(t *testing.T) {
	st := &cpu.Stats{SBStallCycles: 70, ROBStallCycles: 10, IQStallCycles: 20}
	b := Breakdown(st, st)
	if b.Net() != 1.0 {
		t.Fatalf("self breakdown Net = %v, want 1", b.Net())
	}
}

func TestBreakdownZeroBaseline(t *testing.T) {
	b := Breakdown(&cpu.Stats{SBStallCycles: 10}, &cpu.Stats{})
	if b.Net() != 0 {
		t.Fatal("zero baseline must yield zero breakdown, not a division by zero")
	}
}
