// Package mem provides the address arithmetic shared by every component of
// the simulator: byte addresses, 64-byte cache-block addresses and 4 KiB
// page addresses, plus the small helpers (offsets, alignment, block counts)
// that the store buffer, the caches and the SPB detector all rely on.
package mem

// Fixed geometry of the simulated machine. The paper assumes 64-byte cache
// blocks and 4 KiB pages throughout (58-bit block address register), so these
// are compile-time constants rather than configuration.
const (
	BlockBits     = 6                    // log2 of the cache block size
	BlockSize     = 1 << BlockBits       // bytes per cache block (64)
	PageBits      = 12                   // log2 of the page size
	PageSize      = 1 << PageBits        // bytes per page (4096)
	BlocksPerPage = PageSize / BlockSize // cache blocks per page (64)
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Block is a cache-block address: a byte address with the low BlockBits
// removed. This is exactly the 58-bit quantity stored in the SPB
// "last block" register.
type Block uint64

// Page is a page address: a byte address with the low PageBits removed.
type Page uint64

// BlockOf returns the cache-block address containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockBits) }

// PageOf returns the page address containing a.
func PageOf(a Addr) Page { return Page(a >> PageBits) }

// PageOfBlock returns the page address containing block b.
func PageOfBlock(b Block) Page { return Page(b >> (PageBits - BlockBits)) }

// AddrOfBlock returns the first byte address of block b.
func AddrOfBlock(b Block) Addr { return Addr(b) << BlockBits }

// AddrOfPage returns the first byte address of page p.
func AddrOfPage(p Page) Addr { return Addr(p) << PageBits }

// BlockOffset returns the byte offset of a within its cache block.
func BlockOffset(a Addr) uint64 { return uint64(a) & (BlockSize - 1) }

// PageOffset returns the byte offset of a within its page.
func PageOffset(a Addr) uint64 { return uint64(a) & (PageSize - 1) }

// BlockIndexInPage returns the index (0..BlocksPerPage-1) of block b within
// its page. The SPB burst generator prefetches indices above this one.
func BlockIndexInPage(b Block) int {
	return int(uint64(b) & (BlocksPerPage - 1))
}

// LastBlockOfPage returns the final block address of the page containing b.
func LastBlockOfPage(b Block) Block {
	return b | (BlocksPerPage - 1)
}

// SameBlock reports whether two byte addresses fall in the same cache block.
func SameBlock(a, b Addr) bool { return BlockOf(a) == BlockOf(b) }

// SamePage reports whether two byte addresses fall in the same page.
func SamePage(a, b Addr) bool { return PageOf(a) == PageOf(b) }

// AlignDown aligns a down to a multiple of size, which must be a power of two.
func AlignDown(a Addr, size uint64) Addr { return a &^ Addr(size-1) }

// Overlaps reports whether the byte ranges [a, a+an) and [b, b+bn) intersect.
func Overlaps(a Addr, an uint64, b Addr, bn uint64) bool {
	return uint64(a) < uint64(b)+bn && uint64(b) < uint64(a)+an
}

// Contains reports whether the byte range [a, a+an) fully covers [b, b+bn).
func Contains(a Addr, an uint64, b Addr, bn uint64) bool {
	return uint64(a) <= uint64(b) && uint64(b)+bn <= uint64(a)+an
}
