package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if BlockSize != 64 {
		t.Fatalf("BlockSize = %d, want 64", BlockSize)
	}
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if BlocksPerPage != 64 {
		t.Fatalf("BlocksPerPage = %d, want 64", BlocksPerPage)
	}
}

func TestBlockOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Block
	}{
		{0x0000, 0},
		{0x003F, 0},
		{0x0040, 1},
		{0x0041, 1},
		{0x0FFF, 63},
		{0x1000, 64},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.want {
			t.Errorf("BlockOf(%#x) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0x0FFF) != 0 || PageOf(0x1000) != 1 || PageOf(0x1FFF) != 1 {
		t.Fatalf("PageOf boundary cases wrong: %d %d %d",
			PageOf(0x0FFF), PageOf(0x1000), PageOf(0x1FFF))
	}
}

func TestPageOfBlock(t *testing.T) {
	for a := Addr(0); a < 3*PageSize; a += 64 {
		if PageOfBlock(BlockOf(a)) != PageOf(a) {
			t.Fatalf("PageOfBlock(BlockOf(%#x)) != PageOf(%#x)", a, a)
		}
	}
}

func TestAddrOfBlockRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		b := Block(raw & (1<<58 - 1))
		return BlockOf(AddrOfBlock(b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOfPageRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		p := Page(raw & (1<<52 - 1))
		return PageOf(AddrOfPage(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsets(t *testing.T) {
	if BlockOffset(0x47) != 7 {
		t.Errorf("BlockOffset(0x47) = %d, want 7", BlockOffset(0x47))
	}
	if PageOffset(0x1047) != 0x47 {
		t.Errorf("PageOffset(0x1047) = %#x, want 0x47", PageOffset(0x1047))
	}
}

func TestBlockIndexInPage(t *testing.T) {
	if BlockIndexInPage(BlockOf(0x0000)) != 0 {
		t.Error("first block of page should have index 0")
	}
	if BlockIndexInPage(BlockOf(0x0FC0)) != 63 {
		t.Error("last block of page should have index 63")
	}
	if BlockIndexInPage(BlockOf(0x2080)) != 2 {
		t.Errorf("BlockIndexInPage(0x2080) = %d, want 2",
			BlockIndexInPage(BlockOf(0x2080)))
	}
}

func TestLastBlockOfPage(t *testing.T) {
	f := func(raw uint64) bool {
		b := Block(raw & (1<<58 - 1))
		last := LastBlockOfPage(b)
		return PageOfBlock(last) == PageOfBlock(b) &&
			BlockIndexInPage(last) == BlocksPerPage-1 &&
			last >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameBlockSamePage(t *testing.T) {
	if !SameBlock(0x40, 0x7F) || SameBlock(0x3F, 0x40) {
		t.Error("SameBlock boundary wrong")
	}
	if !SamePage(0x0, 0xFFF) || SamePage(0xFFF, 0x1000) {
		t.Error("SamePage boundary wrong")
	}
}

func TestAlignDown(t *testing.T) {
	if AlignDown(0x1234, 64) != 0x1200 {
		t.Errorf("AlignDown(0x1234, 64) = %#x", AlignDown(0x1234, 64))
	}
	if AlignDown(0x1200, 64) != 0x1200 {
		t.Error("AlignDown should be idempotent on aligned addresses")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a    Addr
		an   uint64
		b    Addr
		bn   uint64
		want bool
	}{
		{0, 8, 8, 8, false}, // adjacent, no overlap
		{0, 9, 8, 8, true},  // one byte overlap
		{8, 8, 0, 16, true}, // contained
		{0, 4, 100, 4, false},
		{100, 4, 98, 4, true},
	}
	for _, c := range cases {
		if got := Overlaps(c.a, c.an, c.b, c.bn); got != c.want {
			t.Errorf("Overlaps(%d,%d,%d,%d) = %v, want %v",
				c.a, c.an, c.b, c.bn, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	if !Contains(0, 16, 8, 8) {
		t.Error("[0,16) should contain [8,16)")
	}
	if Contains(0, 16, 8, 9) {
		t.Error("[0,16) should not contain [8,17)")
	}
	if !Contains(8, 8, 8, 8) {
		t.Error("a range should contain itself")
	}
}

func TestOverlapsSymmetric(t *testing.T) {
	f := func(a, b uint32, an, bn uint8) bool {
		n1, n2 := uint64(an)+1, uint64(bn)+1
		return Overlaps(Addr(a), n1, Addr(b), n2) ==
			Overlaps(Addr(b), n2, Addr(a), n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
