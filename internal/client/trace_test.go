package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"spb/internal/obs"
	"spb/internal/server"
)

// TestClientTraceIDPropagates: a client-set trace ID travels the header to
// the daemon, lands on the job, and the trace is retrievable via JobTrace
// with the lifecycle phases on it.
func TestClientTraceIDPropagates(t *testing.T) {
	s, err := server.New(server.Config{
		Workers: 2,
		Tracer:  obs.NewTracer(0, nil),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	cl := NewWithOptions(ts.URL, Options{TraceID: "client-trace-7"})
	if got := cl.TraceID(); got != "client-trace-7" {
		t.Fatalf("TraceID() = %q", got)
	}

	v, err := cl.Run(context.Background(), quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != "client-trace-7" {
		t.Fatalf("job trace_id = %q, want the client's", v.TraceID)
	}
	tv, err := cl.JobTrace(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tv.TraceID != "client-trace-7" || tv.JobID != v.ID {
		t.Fatalf("JobTrace = %+v", tv)
	}
	names := map[string]bool{}
	for _, sp := range tv.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"submit", "queue-wait", "run"} {
		if !names[want] {
			t.Fatalf("trace missing %q span: %+v", want, tv.Spans)
		}
	}
	if tv.TotalNS <= 0 {
		t.Fatalf("total_ns = %d", tv.TotalNS)
	}
}

// TestPoolMintsSweepTraceID: a pool without an explicit trace ID mints one
// so a whole distributed sweep shares a single trace ID.
func TestPoolMintsSweepTraceID(t *testing.T) {
	s, err := server.New(server.Config{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	p, err := NewPool([]string{ts.URL}, PoolOptions{HedgeMin: time.Hour, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.clients) != 1 || p.clients[0].TraceID() == "" {
		t.Fatal("pool clients must carry a minted sweep trace ID")
	}
}
