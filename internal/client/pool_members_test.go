package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"spb/internal/cluster"
)

// TestMergeMembersReadmitsOnNewerEpoch is the flapping-backend fix: a
// backend the pool marked permanently dead comes back (restarted, so it
// gossips a higher liveness epoch) and the pool re-admits it with a fresh
// circuit — no client restart required. Same-epoch sightings must NOT
// re-admit: the pool buried that incarnation for a reason.
func TestMergeMembersReadmitsOnNewerEpoch(t *testing.T) {
	p, err := NewPool([]string{"http://a:1", "http://b:2"}, PoolOptions{BreakerMaxTrips: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	p.breakers[1].Fail(true) // hard failure; maxTrips=1 buries it immediately
	if !p.breakers[1].Dead() {
		t.Fatal("breaker should be dead after a hard trip with maxTrips=1")
	}

	added, readmitted := p.mergeMembers([]cluster.Member{
		{ID: "b", URL: "http://b:2", Epoch: 5, State: cluster.StateAlive},
		{ID: "c", URL: "c:3", Epoch: 1, State: cluster.StateAlive},
		{ID: "d", URL: "http://d:4", Epoch: 1, State: cluster.StateSuspect},
	})
	if added != 1 {
		t.Errorf("added = %d, want 1 (only the unknown alive member c)", added)
	}
	if readmitted != 1 {
		t.Errorf("readmitted = %d, want 1 (b came back with a newer epoch)", readmitted)
	}
	if p.breakers[1].Dead() {
		t.Error("b's circuit is still dead after epoch-based re-admission")
	}
	bs := p.Backends()
	if len(bs) != 3 {
		t.Fatalf("Backends() = %v, want 3 entries (suspect d excluded)", bs)
	}
	if bs[2] != "http://c:3" {
		t.Errorf("discovered backend = %q, want normalized http://c:3", bs[2])
	}

	// Bury b again; the same epoch must not revive it...
	p.breakers[1].Fail(true)
	_, readmitted = p.mergeMembers([]cluster.Member{
		{ID: "b", URL: "http://b:2", Epoch: 5, State: cluster.StateAlive},
	})
	if readmitted != 0 || !p.breakers[1].Dead() {
		t.Error("same-epoch sighting must not re-admit a dead backend")
	}
	// ...but the next restart (epoch 6) does.
	_, readmitted = p.mergeMembers([]cluster.Member{
		{ID: "b", URL: "http://b:2", Epoch: 6, State: cluster.StateAlive},
	})
	if readmitted != 1 || p.breakers[1].Dead() {
		t.Error("newer-epoch sighting must re-admit the dead backend")
	}
}

// TestRefreshMembersDiscoversFleet: pointing the pool at one seed and
// calling RefreshMembers pulls the rest of the fleet out of the seed's
// membership view.
func TestRefreshMembersDiscoversFleet(t *testing.T) {
	var ts *httptest.Server
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/members", func(w http.ResponseWriter, r *http.Request) {
		self := cluster.Member{ID: "seed", URL: ts.URL, Epoch: 1, State: cluster.StateAlive}
		view := cluster.MembersView{Self: self, Members: []cluster.Member{
			self,
			{ID: "peer", URL: "http://peer-host:7078", Epoch: 2, State: cluster.StateAlive},
		}}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(view)
	})
	ts = httptest.NewServer(mux)
	defer ts.Close()

	p, err := NewPool([]string{ts.URL}, PoolOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RefreshMembers(context.Background()); err != nil {
		t.Fatal(err)
	}
	bs := p.Backends()
	if len(bs) != 2 || bs[1] != "http://peer-host:7078" {
		t.Fatalf("Backends() = %v, want [seed, http://peer-host:7078]", bs)
	}
}
