package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spb/internal/obs"
	"spb/internal/server"
	"spb/internal/sim"
)

// Batch submits specs as one POST /v1/batch request and invokes fn for
// every NDJSON item the daemon streams back — acknowledgment lines (status
// "queued", carrying the job id) and one terminal line per spec index, in
// completion order. A whole sweep costs one connection instead of N
// submit+poll loops. fn returning an error abandons the stream (the daemon
// releases the batch's interest in outstanding jobs) and Batch returns that
// error.
//
// A connect that fails before the first line is consumed retries under the
// client's RetryPolicy. Once any line has reached fn the indices are live
// and Batch cannot transparently retry — mid-stream failures surface to the
// caller, and BatchResults layers spec-level resume on top.
func (c *Client) Batch(ctx context.Context, specs []sim.RunSpec, fn func(server.BatchItem) error) error {
	reqs := make([]server.RunRequest, len(specs))
	for i, s := range specs {
		reqs[i] = server.Request(s)
	}
	body, err := json.Marshal(server.BatchRequest{Specs: reqs})
	if err != nil {
		return err
	}
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.retry.backoff(attempt, lastErr)
			if time.Since(start)+delay > c.retry.Budget {
				break
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		consumed, err := c.batchOnce(ctx, body, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if consumed || !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// batchOnce performs a single batch request. consumed reports whether any
// stream line reached fn (after which a retry would replay indices).
func (c *Client) batchOnce(ctx context.Context, body []byte, fn func(server.BatchItem) error) (consumed bool, err error) {
	c.faults.Sleep("client.request", ctx.Done())
	if err := c.faults.Err("client.request"); err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.traceID != "" {
		req.Header.Set(obs.TraceHeader, c.traceID)
	}
	if c.apiKey != "" {
		req.Header.Set(server.TenantKeyHeader, c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(data))
		}
		return false, &StatusError{Code: resp.StatusCode, Message: e.Error, RetryAfter: resp.Header.Get("Retry-After")}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // result payloads are large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var it server.BatchItem
		if err := json.Unmarshal(line, &it); err != nil {
			return consumed, fmt.Errorf("spbd: bad batch line %q: %w", line, err)
		}
		consumed = true
		if err := fn(it); err != nil {
			return consumed, err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return consumed, err
	}
	return consumed, ctx.Err()
}

// batchMaxStalls bounds consecutive resume attempts that resolve zero new
// specs before BatchResults gives up — a stream that keeps dying without
// progress is a real outage, not a blip.
const batchMaxStalls = 3

// errKeepPending, returned by a BatchEach callback for a terminal item,
// marks the spec unresolved — it is re-requested on the next resume —
// instead of aborting the batch. Package-internal: BatchResults uses it
// for truncated/garbled result payloads, which are stream-level damage.
var errKeepPending = fmt.Errorf("spbd: batch item kept pending")

// BatchEach is the resumable form of Batch: it streams specs through the
// batch endpoint and invokes fn for every NDJSON line with Index remapped
// to the caller's spec order. A stream that dies mid-sweep (connection
// cut, daemon restarted behind a proxy) is *resumed*: only the specs whose
// terminal lines were not received are re-requested, and because the
// daemon deduplicates content-keyed specs against its active jobs and
// caches, the resume coalesces or cache-hits rather than re-simulating —
// each spec is still simulated exactly once. Terminal lines are delivered
// at most once per spec; acknowledgment lines for still-pending specs may
// repeat across resumes. fn returning an error aborts the batch with it.
func (c *Client) BatchEach(ctx context.Context, specs []sim.RunSpec, fn func(server.BatchItem) error) error {
	resolved := make([]bool, len(specs))
	pending := make([]int, len(specs)) // original indices still unresolved
	for i := range pending {
		pending[i] = i
	}
	stalls := 0
	for len(pending) > 0 {
		cur := pending
		subset := make([]sim.RunSpec, len(cur))
		for i, idx := range cur {
			subset[i] = specs[idx]
		}
		progressed := false
		var fnErr error
		err := c.Batch(ctx, subset, func(it server.BatchItem) error {
			if it.Index < 0 || it.Index >= len(cur) {
				return nil
			}
			orig := cur[it.Index]
			if resolved[orig] {
				return nil
			}
			it.Index = orig
			err := fn(it)
			switch {
			case err == nil:
				if it.Status.Terminal() {
					resolved[orig] = true
					progressed = true
				}
				return nil
			case err == errKeepPending:
				return nil
			default:
				fnErr = err
				return err
			}
		})
		if fnErr != nil {
			return fnErr
		}
		if err != nil && ctx.Err() != nil {
			return err
		}
		next := pending[:0]
		for _, idx := range pending {
			if !resolved[idx] {
				next = append(next, idx)
			}
		}
		pending = next
		if len(pending) == 0 {
			break
		}
		// The stream ended (cleanly or not) with specs unresolved: resume,
		// unless we are making no progress at all.
		if progressed {
			stalls = 0
		} else {
			stalls++
			if stalls > batchMaxStalls {
				if err == nil {
					err = fmt.Errorf("stream kept ending early")
				}
				return fmt.Errorf("spbd: batch gave up after %d stalled resumes with %d of %d specs unresolved: %w",
					stalls-1, len(pending), len(specs), err)
			}
		}
	}
	return nil
}

// BatchResults runs specs through the batch endpoint with BatchEach's
// resume semantics and returns the decoded results in spec order. The
// first spec that genuinely fails to simulate aborts the sweep with its
// error.
func (c *Client) BatchResults(ctx context.Context, specs []sim.RunSpec) ([]sim.Result, error) {
	results := make([]sim.Result, len(specs))
	err := c.BatchEach(ctx, specs, func(it server.BatchItem) error {
		if !it.Status.Terminal() {
			return nil
		}
		if e := it.ErrorOf(); e != nil {
			return e
		}
		res, err := it.DecodeResult()
		if err != nil {
			return errKeepPending // truncated/garbled payload: stream-level, resumable
		}
		results[it.Index] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
