package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"spb/internal/server"
	"spb/internal/sim"
)

// Batch submits specs as one POST /v1/batch request and invokes fn for
// every NDJSON item the daemon streams back — acknowledgment lines (status
// "queued", carrying the job id) and one terminal line per spec index, in
// completion order. A whole sweep costs one connection instead of N
// submit+poll loops. fn returning an error abandons the stream (the daemon
// releases the batch's interest in outstanding jobs) and Batch returns that
// error.
func (c *Client) Batch(ctx context.Context, specs []sim.RunSpec, fn func(server.BatchItem) error) error {
	reqs := make([]server.RunRequest, len(specs))
	for i, s := range specs {
		reqs[i] = server.Request(s)
	}
	body, err := json.Marshal(server.BatchRequest{Specs: reqs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(data))
		}
		return &StatusError{Code: resp.StatusCode, Message: e.Error, RetryAfter: resp.Header.Get("Retry-After")}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // result payloads are large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var it server.BatchItem
		if err := json.Unmarshal(line, &it); err != nil {
			return fmt.Errorf("spbd: bad batch line %q: %w", line, err)
		}
		if err := fn(it); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// BatchResults runs specs through one batch request and returns the decoded
// results in spec order. The first failed spec aborts with its error; a
// stream that ends before every spec resolved (daemon draining mid-batch,
// connection cut) is an error, not a silent truncation.
func (c *Client) BatchResults(ctx context.Context, specs []sim.RunSpec) ([]sim.Result, error) {
	results := make([]sim.Result, len(specs))
	seen := make([]bool, len(specs))
	remaining := len(specs)
	err := c.Batch(ctx, specs, func(it server.BatchItem) error {
		if !it.Status.Terminal() || it.Index < 0 || it.Index >= len(specs) || seen[it.Index] {
			return nil
		}
		if err := it.ErrorOf(); err != nil {
			return err
		}
		res, err := it.DecodeResult()
		if err != nil {
			return err
		}
		results[it.Index] = res
		seen[it.Index] = true
		remaining--
		return nil
	})
	if err != nil {
		return nil, err
	}
	if remaining > 0 {
		return nil, fmt.Errorf("spbd: batch stream ended with %d of %d specs unresolved", remaining, len(specs))
	}
	return results, nil
}
