// Package client is the Go client for the spbd simulation service. It
// mirrors the sim package's Run/Get shape — submit a sim.RunSpec, get a
// result — but over HTTP, so sweep harnesses and load generators can target
// a shared daemon (and its caches) instead of simulating in-process.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spb/internal/server"
	"spb/internal/sim"
)

// Client talks to one spbd instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at base (e.g. "http://localhost:7077").
func New(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{},
	}
}

// StatusError is a non-2xx response from the daemon.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter string // the Retry-After header, when present (429)
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("spbd: HTTP %d: %s", e.Code, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(data))
		}
		return &StatusError{Code: resp.StatusCode, Message: e.Error, RetryAfter: resp.Header.Get("Retry-After")}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Submit enqueues spec without waiting and returns the accepted (or
// cache-answered) job view.
func (c *Client) Submit(ctx context.Context, spec sim.RunSpec) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs", server.Request(spec), &v)
	return v, err
}

// Run submits spec and blocks until the daemon returns the result (the
// ?wait=1 form). Cancelling ctx abandons the request; if no other client is
// interested the daemon stops the simulation.
func (c *Client) Run(ctx context.Context, spec sim.RunSpec) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs?wait=1", server.Request(spec), &v)
	if err != nil {
		return v, err
	}
	if v.Status != server.StatusDone {
		return v, fmt.Errorf("spbd: run %s ended %s: %s", v.ID, v.Status, v.Error)
	}
	return v, nil
}

// Get fetches the current view of a job.
func (c *Client) Get(ctx context.Context, id string) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &v)
	return v, err
}

// Cancel asks the daemon to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs/"+id+"/cancel", nil, &v)
	return v, err
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobView, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			return v, err
		}
		if v.Status == server.StatusDone || v.Status == server.StatusFailed || v.Status == server.StatusCancelled {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Events subscribes to a job's SSE stream and invokes fn for every event
// until the stream ends (job terminal), ctx is cancelled, or fn returns
// false.
func (c *Client) Events(ctx context.Context, id string, fn func(name string, data json.RawMessage) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	var name string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if !fn(name, json.RawMessage(strings.TrimPrefix(line, "data: "))) {
				return nil
			}
			if name == "done" {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Healthz fetches the daemon's health document.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	var v map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &v)
	return v, err
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}
