// Package client is the Go client for the spbd simulation service. It
// mirrors the sim package's Run/Get shape — submit a sim.RunSpec, get a
// result — but over HTTP, so sweep harnesses and load generators can target
// a shared daemon (and its caches) instead of simulating in-process.
//
// Transient failures are retried with capped exponential backoff plus
// jitter, honoring Retry-After: every request is idempotent (specs are
// content-keyed and the daemon deduplicates), so a retried submission
// coalesces onto the original job or hits a cache tier rather than
// simulating twice.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"spb/internal/cluster"
	"spb/internal/faults"
	"spb/internal/obs"
	"spb/internal/server"
	"spb/internal/sim"
)

// RetryPolicy shapes the client's transient-failure handling: up to
// MaxAttempts tries per call, exponential backoff from BaseDelay capped at
// MaxDelay (with jitter), the whole call bounded by Budget. A Retry-After
// header from the daemon (429 backpressure) overrides the computed backoff.
type RetryPolicy struct {
	MaxAttempts int           // total tries including the first (default 4; negative disables retries)
	BaseDelay   time.Duration // first backoff step (default 100ms)
	MaxDelay    time.Duration // backoff ceiling (default 5s)
	Budget      time.Duration // wall-clock bound per call, waits included (default 30s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 30 * time.Second
	}
	return p
}

// backoff computes the wait before try number attempt (1-based over
// retries). A daemon-supplied Retry-After wins; otherwise exponential with
// equal jitter so a fleet of clients does not retry in lockstep.
func (p RetryPolicy) backoff(attempt int, lastErr error) time.Duration {
	var se *StatusError
	if errors.As(lastErr, &se) {
		if d, ok := parseRetryAfter(se.RetryAfter); ok {
			return d
		}
	}
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// parseRetryAfter understands both Retry-After forms: delta-seconds and an
// HTTP date.
func parseRetryAfter(s string) (time.Duration, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(s); err == nil {
		if d := time.Until(when); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Options configures a Client beyond its base URL.
type Options struct {
	// HTTPClient overrides the transport (default: a fresh http.Client).
	HTTPClient *http.Client
	// Retry is the transient-failure policy; the zero value means the
	// defaults documented on RetryPolicy.
	Retry RetryPolicy
	// Faults, when set, injects transport failures and latency at the
	// "client.request" site (tests, chaos). Nil disables injection.
	Faults *faults.Injector
	// TraceID, when set, is propagated to the daemon on every request via
	// the X-Spb-Trace-Id header, grouping all jobs this client submits under
	// one trace (e.g. a sweep). Empty sends no header; the daemon then mints
	// a fresh ID per job when tracing is enabled.
	TraceID string
	// APIKey is the tenant API key, sent on every request via the
	// X-Spb-Api-Key header. Required against daemons configured with
	// tenants; ignored otherwise.
	APIKey string
}

// Client talks to one spbd instance.
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	faults  *faults.Injector
	traceID string
	apiKey  string
}

// New returns a client for the daemon at base (e.g. "http://localhost:7077")
// with default retry behavior.
func New(base string) *Client { return NewWithOptions(base, Options{}) }

// NewWithOptions returns a client with explicit transport, retry and fault
// injection settings.
func NewWithOptions(base string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		http:    hc,
		retry:   opts.Retry.withDefaults(),
		faults:  opts.Faults,
		traceID: opts.TraceID,
		apiKey:  opts.APIKey,
	}
}

// TraceID reports the trace ID this client stamps on its requests ("" when
// unset).
func (c *Client) TraceID() string { return c.traceID }

// StatusError is a non-2xx response from the daemon.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter string // the Retry-After header, when present (429/503)
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("spbd: HTTP %d: %s", e.Code, e.Message)
}

// retryable reports whether err is transient: daemon backpressure and
// gateway-style statuses, injected faults, and transport-level failures.
// Context cancellation, 4xx mistakes, and malformed responses are not.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	var inj *faults.InjectedError
	if errors.As(err, &inj) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue) // connection refused/reset, truncated response, ...
}

// do runs one JSON request with the retry policy. The body is marshalled
// once and replayed on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.retry.backoff(attempt, lastErr)
			if time.Since(start)+delay > c.retry.Budget {
				break
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := c.doOnce(ctx, method, path, data, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	c.faults.Sleep("client.request", ctx.Done())
	if err := c.faults.Err("client.request"); err != nil {
		return err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.traceID != "" {
		req.Header.Set(obs.TraceHeader, c.traceID)
	}
	if c.apiKey != "" {
		req.Header.Set(server.TenantKeyHeader, c.apiKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(data))
		}
		return &StatusError{Code: resp.StatusCode, Message: e.Error, RetryAfter: resp.Header.Get("Retry-After")}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Submit enqueues spec without waiting and returns the accepted (or
// cache-answered) job view.
func (c *Client) Submit(ctx context.Context, spec sim.RunSpec) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs", server.Request(spec), &v)
	return v, err
}

// Run submits spec and blocks until the daemon returns the result (the
// ?wait=1 form). Cancelling ctx abandons the request; if no other client is
// interested the daemon stops the simulation. Transient failures retry —
// safe because a re-submitted spec coalesces or cache-hits.
func (c *Client) Run(ctx context.Context, spec sim.RunSpec) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs?wait=1", server.Request(spec), &v)
	if err != nil {
		return v, err
	}
	if v.Status != server.StatusDone {
		return v, fmt.Errorf("spbd: run %s ended %s: %s", v.ID, v.Status, v.Error)
	}
	return v, nil
}

// Get fetches the current view of a job.
func (c *Client) Get(ctx context.Context, id string) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &v)
	return v, err
}

// JobTrace fetches a job's per-phase span timeline. The daemon answers 404
// when the job is unknown or tracing is disabled.
func (c *Client) JobTrace(ctx context.Context, id string) (obs.TraceView, error) {
	var tv obs.TraceView
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id+"/trace", nil, &tv)
	return tv, err
}

// Cancel asks the daemon to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobView, error) {
	var v server.JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs/"+id+"/cancel", nil, &v)
	return v, err
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobView, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			return v, err
		}
		if v.Status == server.StatusDone || v.Status == server.StatusFailed || v.Status == server.StatusCancelled {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Events subscribes to a job's SSE stream and invokes fn for every event
// until the stream ends (job terminal), ctx is cancelled, or fn returns
// false.
func (c *Client) Events(ctx context.Context, id string, fn func(name string, data json.RawMessage) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	sc := bufio.NewScanner(resp.Body)
	var name string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if !fn(name, json.RawMessage(strings.TrimPrefix(line, "data: "))) {
				return nil
			}
			if name == "done" {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Healthz fetches the daemon's liveness document.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	var v map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &v)
	return v, err
}

// ReadyView is the readiness document served at GET /healthz?ready=1.
type ReadyView struct {
	Status        string   `json:"status"`
	Ready         bool     `json:"ready"`
	Draining      bool     `json:"draining"`
	Degraded      bool     `json:"degraded"`
	QueueHeadroom int      `json:"queue_headroom"`
	Reasons       []string `json:"reasons"`
}

// Ready probes the daemon's readiness. Unlike every other call it never
// retries and bypasses fault injection: a 503 *is* the answer (an unready
// view with a nil error), and probing is itself the recovery path. Only
// transport-level failure returns an error.
func (c *Client) Ready(ctx context.Context) (ReadyView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz?ready=1", nil)
	if err != nil {
		return ReadyView{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return ReadyView{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return ReadyView{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return ReadyView{}, &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	var rv ReadyView
	if err := json.Unmarshal(data, &rv); err != nil {
		return ReadyView{}, err
	}
	return rv, nil
}

// Members fetches the daemon's cluster membership view. Standalone daemons
// (no cluster attached) answer 404.
func (c *Client) Members(ctx context.Context) (cluster.MembersView, error) {
	var v cluster.MembersView
	err := c.do(ctx, http.MethodGet, "/v1/cluster/members", nil, &v)
	return v, err
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}
