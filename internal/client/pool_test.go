package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"spb/internal/core"
	"spb/internal/server"
	"spb/internal/sim"
)

func poolSpec(seed uint64) sim.RunSpec {
	return sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 10_000, Seed: seed}
}

func TestHRWSameSpecSameBackend(t *testing.T) {
	bases := []string{"http://a:1", "http://b:1", "http://c:1"}
	p1, err := NewPool(bases, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPool(bases, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two spellings of the same simulation point (defaulted vs explicit
	// fields) share a canonical key and therefore a backend.
	a := sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 10_000}
	b := a
	b.Cores, b.Seed, b.WindowN = 1, 1, 48
	ka, kb := server.Key(a), server.Key(b)
	if ka != kb {
		t.Fatal("normalized spellings produced different keys")
	}
	for seed := uint64(1); seed <= 100; seed++ {
		k := server.Key(poolSpec(seed))
		r1, r2 := p1.rank(k), p2.rank(k)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("rank(%s) differs between identical pools", k[:12])
			}
		}
	}
}

func TestHRWRemovalOnlyRemapsRemovedShare(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1"}
	p3, err := NewPool(all, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPool(all[:2], PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	owned := make(map[int]int) // backend -> keys owned under p3
	moved := 0
	for seed := uint64(1); seed <= 300; seed++ {
		k := server.Key(poolSpec(seed))
		o3 := p3.rank(k)[0]
		owned[o3]++
		o2 := p2.rank(k)[0]
		if o3 != 2 { // c did not own it: the owner must not change
			if o2 != o3 {
				t.Fatalf("key %.12s moved from backend %d to %d when c was removed", k, o3, o2)
			}
		} else {
			moved++
		}
	}
	for b := 0; b < 3; b++ {
		if owned[b] == 0 {
			t.Fatalf("backend %d owns no keys out of 300 (rendezvous badly skewed)", b)
		}
	}
	if moved == 0 {
		t.Fatal("backend c owned nothing; removal property untested")
	}
}

// poolDaemon spins up one spbd instance for pool tests.
func poolDaemon(t *testing.T, workers int) (*server.Server, string) {
	t.Helper()
	s, err := server.New(server.Config{Workers: workers, SSEInterval: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

func TestPoolSingleBackendMatchesLocal(t *testing.T) {
	s, url := poolDaemon(t, 2)
	p, err := NewPool([]string{url}, PoolOptions{MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	specs := []sim.RunSpec{poolSpec(1), poolSpec(2), poolSpec(3), poolSpec(1)} // one duplicate
	results, err := p.GetAllCtx(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].CPU != local.CPU || results[i].Mem != local.Mem {
			t.Fatalf("spec %d: pool result differs from local run", i)
		}
	}
	if got := s.Runner().Runs(); got != 3 {
		t.Fatalf("Runs() = %d, want 3 (duplicate spec must share one simulation)", got)
	}
}

func TestPoolPropagatesSimulationError(t *testing.T) {
	_, url := poolDaemon(t, 1)
	p, err := NewPool([]string{url}, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := poolSpec(1)
	bad.Workload = "bogus"
	_, err = p.GetAllCtx(context.Background(), []sim.RunSpec{poolSpec(2), bad})
	if err == nil {
		t.Fatal("pool swallowed a simulation error")
	}
}

// TestPoolHedgesStalledBackend is the straggler acceptance test: backend A
// has a single worker pinned by an effectively-infinite job, so every point
// sharded to A sits queued forever. The hedge must re-dispatch those points
// to B and cancel A's queued jobs — each point simulated exactly once,
// none of them on A.
func TestPoolHedgesStalledBackend(t *testing.T) {
	sA, urlA := poolDaemon(t, 1)
	sB, urlB := poolDaemon(t, 2)
	p, err := NewPool([]string{urlA, urlB}, PoolOptions{
		MaxInflight: 8,
		HedgeMin:    25 * time.Millisecond,
		HedgeTick:   5 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Build a mix where both backends own at least two points, so the
	// hedge path and the normal path are both exercised regardless of how
	// the hash happens to spread any particular seed.
	var specs []sim.RunSpec
	ownedA, ownedB := 0, 0
	for seed := uint64(1); seed <= 64 && (ownedA < 2 || ownedB < 2); seed++ {
		spec := poolSpec(seed)
		if p.rank(server.Key(spec))[0] == 0 {
			if ownedA >= 2 {
				continue
			}
			ownedA++
		} else {
			if ownedB >= 2 {
				continue
			}
			ownedB++
		}
		specs = append(specs, spec)
	}
	if ownedA < 2 || ownedB < 2 {
		t.Fatalf("could not build a mixed shard (A=%d B=%d)", ownedA, ownedB)
	}

	// Pin A's only worker.
	stall := poolSpec(999)
	stall.Insts = 2_000_000_000
	stallView, err := New(urlA).Submit(context.Background(), stall)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cctx, cc := context.WithTimeout(context.Background(), 5*time.Second)
		defer cc()
		_, _ = New(urlA).Cancel(cctx, stallView.ID)
	}()
	// Wait until the stall job is actually occupying the worker.
	for i := 0; sA.Inflight() == 0; i++ {
		if i > 1000 {
			t.Fatal("stall job never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := p.GetAllCtx(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].CPU != local.CPU {
			t.Fatalf("spec %d: hedged result differs from local run", i)
		}
	}
	// A ran only the stall job: its shard was hedged to B and its queued
	// jobs cancelled before a worker could pick them up.
	if got := sA.Runner().Runs(); got != 1 {
		t.Fatalf("stalled backend Runs() = %d, want 1 (sweep points simulated on the stalled backend)", got)
	}
	// Every sweep point simulated exactly once, all on B.
	if got := sB.Runner().Runs(); got != uint64(len(specs)) {
		t.Fatalf("healthy backend Runs() = %d, want %d (hedge duplicated or dropped points)", got, len(specs))
	}
}

func TestPoolReshardsAroundDeadBackend(t *testing.T) {
	sB, urlB := poolDaemon(t, 2)
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	p, err := NewPool([]string{dead, urlB}, PoolOptions{MaxInflight: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var specs []sim.RunSpec
	for seed := uint64(1); seed <= 6; seed++ {
		specs = append(specs, poolSpec(seed))
	}
	deadOwned := 0
	for _, spec := range specs {
		if p.rank(server.Key(spec))[0] == 0 {
			deadOwned++
		}
	}
	if deadOwned == 0 {
		t.Fatal("dead backend owns nothing; re-shard path untested")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := p.GetAllCtx(ctx, specs)
	if err != nil {
		t.Fatalf("pool failed instead of re-sharding: %v", err)
	}
	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].CPU != local.CPU {
			t.Fatalf("spec %d: re-sharded result differs from local run", i)
		}
	}
	if got := sB.Runner().Runs(); got != uint64(len(specs)) {
		t.Fatalf("surviving backend Runs() = %d, want %d", got, len(specs))
	}
}

func TestPoolAllBackendsDead(t *testing.T) {
	p, err := NewPool([]string{"http://127.0.0.1:1", "http://127.0.0.1:1/x"}, PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = p.GetAllCtx(ctx, []sim.RunSpec{poolSpec(1)})
	if err == nil {
		t.Fatal("pool reported success with every backend dead")
	}
}

func TestPoolRejectsEmpty(t *testing.T) {
	if _, err := NewPool(nil, PoolOptions{}); err == nil {
		t.Fatal("NewPool(nil) succeeded")
	}
	if _, err := NewPool([]string{" ", ""}, PoolOptions{}); err == nil {
		t.Fatal("NewPool(blank) succeeded")
	}
}
