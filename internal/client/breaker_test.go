package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spb/internal/server"
	"spb/internal/sim"
)

func TestBreakerStateMachine(t *testing.T) {
	br := newBreaker(2, 10*time.Millisecond, 3)
	ok, trial, _ := br.Acquire()
	if !ok || trial {
		t.Fatalf("fresh breaker Acquire = ok %v, trial %v", ok, trial)
	}
	br.Fail(false)
	if br.State() != breakerClosed {
		t.Fatal("one soft failure opened the circuit before the threshold")
	}
	br.Fail(false)
	if br.State() != breakerOpen {
		t.Fatalf("threshold soft failures left the circuit %s, want open", br.State())
	}
	if ok, _, wait := br.Acquire(); ok || wait <= 0 {
		t.Fatalf("open circuit admitted a dispatch (ok %v, wait %v)", ok, wait)
	}
	time.Sleep(15 * time.Millisecond)
	ok, trial, _ = br.Acquire()
	if !ok || !trial {
		t.Fatalf("cooled-down circuit did not offer a half-open trial (ok %v, trial %v)", ok, trial)
	}
	if ok, _, wait := br.Acquire(); ok || wait <= 0 {
		t.Fatal("half-open circuit admitted a second trial while one was in flight")
	}
	br.Success()
	if br.State() != breakerClosed {
		t.Fatal("successful trial did not close the circuit")
	}

	// Hard failures trip immediately; maxTrips consecutive trips without an
	// intervening success bury the backend for good.
	for i := 0; i < 3; i++ {
		if br.Dead() {
			t.Fatalf("breaker dead after %d trips, want 3", i)
		}
		br.Fail(true)
		time.Sleep(15 * time.Millisecond)
		br.Acquire() // the half-open trial the next Fail kills
	}
	if !br.Dead() {
		t.Fatal("three consecutive trips did not mark the breaker dead")
	}
	br.Success()
	if !br.Dead() {
		t.Fatal("Success resurrected a dead breaker")
	}
	if ok, _, wait := br.Acquire(); ok || wait != 0 {
		t.Fatalf("dead breaker Acquire = ok %v, wait %v; want evacuate signal (false, 0)", ok, wait)
	}
}

// TestPoolBreakerTripsAndRecovers covers the closed → open → half-open →
// closed round trip end to end: the pool's only backend goes dark (every
// connection severed before a byte is written), the circuit trips, the
// backend comes back, and the next half-open trial's readiness probe lets
// the sweep finish — no point lost, no error surfaced.
func TestPoolBreakerTripsAndRecovers(t *testing.T) {
	s, err := server.New(server.Config{Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var broken atomic.Bool
	broken.Store(true)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
			return
		}
		s.ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)

	p, err := NewPool([]string{front.URL}, PoolOptions{
		MaxInflight:      4,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
		BreakerMaxTrips:  1 << 20, // the outage is transient; never give up
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := []sim.RunSpec{poolSpec(1), poolSpec(2), poolSpec(3)}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type out struct {
		res []sim.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := p.GetAllCtx(ctx, specs)
		ch <- out{res, err}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := p.breakers[0].State(); st == breakerOpen || st == breakerHalfOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never opened against the dark backend")
		}
		time.Sleep(time.Millisecond)
	}
	broken.Store(false) // the backend recovers

	got := <-ch
	if got.err != nil {
		t.Fatalf("sweep failed across the outage: %v", got.err)
	}
	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got.res[i].CPU != local.CPU {
			t.Fatalf("spec %d: post-recovery result differs from local run", i)
		}
	}
	if st := p.breakers[0].State(); st != breakerClosed {
		t.Fatalf("circuit ended %s, want closed", st)
	}
}
