package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spb/internal/faults"
	"spb/internal/server"
)

func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("2"); !ok || d != 2*time.Second {
		t.Fatalf("parseRetryAfter(2) = %v, %v", d, ok)
	}
	if d, ok := parseRetryAfter(" 0 "); !ok || d != 0 {
		t.Fatalf("parseRetryAfter(0) = %v, %v", d, ok)
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(future); !ok || d <= 0 || d > 3*time.Second {
		t.Fatalf("parseRetryAfter(date) = %v, %v", d, ok)
	}
	for _, bad := range []string{"", "soon", "-1"} {
		if _, ok := parseRetryAfter(bad); ok {
			t.Fatalf("parseRetryAfter(%q) accepted", bad)
		}
	}
}

// TestClientRetries429WithRetryAfter is the satellite bugfix: backpressure
// responses are consumed by the retry loop, not surfaced to the caller.
func TestClientRetries429WithRetryAfter(t *testing.T) {
	var calls atomic.Int64
	backend, cl := testDaemon(t)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)
	cl = NewWithOptions(front.URL, Options{Retry: RetryPolicy{BaseDelay: time.Millisecond}})

	v, err := cl.Run(context.Background(), quickSpec)
	if err != nil {
		t.Fatalf("Run through 429s: %v", err)
	}
	if v.Status != server.StatusDone {
		t.Fatalf("run ended %s", v.Status)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("made %d calls, want 3 (two 429s then success)", n)
	}
}

func TestClientRetryExhaustionSurfaces429(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	}))
	t.Cleanup(always.Close)
	cl := NewWithOptions(always.URL, Options{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}})

	_, err := cl.Run(context.Background(), quickSpec)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("exhausted retries returned %v, want the 429", err)
	}
}

func TestClientRetriesInjectedTransportFault(t *testing.T) {
	_, cl := testDaemon(t)
	cl.retry = RetryPolicy{BaseDelay: time.Millisecond}.withDefaults()
	cl.faults = faults.MustParse("client.request:error:1:limit=2")

	if _, err := cl.Run(context.Background(), quickSpec); err != nil {
		t.Fatalf("Run through injected transport faults: %v", err)
	}
	if got := cl.faults.Fires("client.request"); got != 2 {
		t.Fatalf("fault fired %d times, want 2", got)
	}
}

func TestClientDoesNotRetryBadRequests(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec"}`))
	}))
	t.Cleanup(srv.Close)
	cl := NewWithOptions(srv.URL, Options{Retry: RetryPolicy{BaseDelay: time.Millisecond}})

	_, err := cl.Run(context.Background(), quickSpec)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried (%d calls)", calls.Load())
	}
}

func TestClientReadyProbe(t *testing.T) {
	s, cl := testDaemon(t)
	rv, err := cl.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Ready || rv.Draining || rv.QueueHeadroom <= 0 {
		t.Fatalf("fresh daemon readiness = %+v", rv)
	}

	// Drain the daemon: the probe reports unready with a nil error (503 is
	// the answer, not a failure).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rv, err = cl.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rv.Ready || !rv.Draining {
		t.Fatalf("draining daemon readiness = %+v", rv)
	}
}
