// Multi-backend sweep pool: shards a sweep's simulation points across
// several spbd daemons, one batch stream per dispatch chunk, with
// straggler hedging and failover.
//
// Sharding is rendezvous (highest-random-weight) hashing of each point's
// canonical content address (server.Key) against the backend base URLs:
// every client computes the same spec→backend mapping without coordination,
// the mapping is stable across sweep re-runs — maximizing each backend's
// disk-cache hit rate — and removing a backend only remaps the points that
// backend owned. Stragglers are hedged: a point that has been outstanding
// longer than an adaptive delay (a multiple of the observed p95 completion
// latency) is re-dispatched to the next backend in its rendezvous order,
// first result wins, and the loser's job is cancelled so no point is ever
// simulated twice.
//
// Failure handling is a per-backend circuit breaker (closed → open →
// half-open, see breaker.go) shared across the pool's sweeps: batch streams
// that die without progress accumulate toward a trip, dial failures trip
// immediately, a tripped backend sheds its queued points to the next
// backend in each point's rendezvous order, and a half-open trial — led by
// a readiness probe of GET /healthz?ready=1 — decides whether it rejoins.
// Backends that keep flapping are marked dead and removed from the
// rendezvous; their points re-shard across the survivors.
//
// Membership is no longer fixed at construction: the pool can learn
// backends from the daemons' own gossip view (GET /v1/cluster/members) via
// RefreshMembers/Watch, and a member advertising a newer liveness epoch —
// the daemon restarted — gets its dead circuit replaced with a fresh one,
// re-admitting the backend without rebuilding the pool. Membership only
// ever grows in place (indices are stable); each sweep snapshots the size
// at start, so joins take effect on the next run.
package client

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"spb/internal/cluster"
	"spb/internal/obs"
	"spb/internal/server"
	"spb/internal/sim"
)

// PoolOptions tunes a Pool. The zero value gives sensible defaults.
type PoolOptions struct {
	// MaxInflight bounds how many specs are outstanding on one backend at a
	// time (one dispatch chunk; default 16). It should be at least the
	// backend's worker count or the backend idles between chunks.
	MaxInflight int
	// HedgeMin floors the straggler hedge delay (default 2s). Hedging
	// before any latency samples exist uses exactly this floor.
	HedgeMin time.Duration
	// HedgeMult scales the observed p95 completion latency into the hedge
	// delay (default 3.0): a point is hedged once it has been outstanding
	// max(HedgeMin, HedgeMult × p95).
	HedgeMult float64
	// HedgeTick is how often outstanding points are scanned for stragglers
	// (default 50ms).
	HedgeTick time.Duration
	// BreakerThreshold is how many consecutive no-progress stream failures
	// trip a backend's circuit (default 5). Streams that deliver at least
	// one new terminal result before dying reset the count.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped circuit stays open before a
	// half-open trial (default 500ms).
	BreakerCooldown time.Duration
	// BreakerMaxTrips is how many consecutive trips (no success in between)
	// mark a backend permanently dead for this pool (default 3).
	BreakerMaxTrips int
	// ProbeTimeout bounds the readiness probe issued before a run's first
	// dispatch to a backend and on every half-open trial (default 2s).
	ProbeTimeout time.Duration
	// ClientOptions configures the per-backend clients (transport, retry,
	// fault injection). The pool halves the default retry attempts to 2:
	// it has failover of its own and prefers re-sharding over long
	// client-side retry loops.
	ClientOptions Options
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 16
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 2 * time.Second
	}
	if o.HedgeMult <= 0 {
		o.HedgeMult = 3.0
	}
	if o.HedgeTick <= 0 {
		o.HedgeTick = 50 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
	if o.BreakerMaxTrips <= 0 {
		o.BreakerMaxTrips = 3
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.ClientOptions.Retry.MaxAttempts == 0 {
		o.ClientOptions.Retry.MaxAttempts = 2
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Pool fans a sweep out over several spbd backends. It implements the same
// GetAllCtx shape as sim.Runner, so the figures harness and the sweep CLIs
// can swap in-process execution for the distributed path without caring
// which they got.
type Pool struct {
	opts PoolOptions

	// Membership state, guarded by mu. The parallel slices only ever grow,
	// and only under the write lock; an index handed out while holding the
	// read lock stays valid forever (re-admission replaces the breaker at
	// the same index, it never reorders).
	mu       sync.RWMutex
	bases    []string
	clients  []*Client
	breakers []*breaker // per-backend circuits, shared across sweeps
	epochs   []uint64   // newest liveness epoch seen per backend (0 = unknown)
	index    map[string]int
}

// normalizeBase canonicalizes a backend base URL the same way the daemons
// advertise themselves: scheme prefixed, trailing slash trimmed.
func normalizeBase(b string) string {
	b = strings.TrimSpace(b)
	if b == "" {
		return ""
	}
	if !strings.Contains(b, "://") {
		b = "http://" + b
	}
	return strings.TrimRight(b, "/")
}

// NewPool builds a pool over the given backend base URLs (e.g.
// "http://host:7077"; a bare host:port gets http:// prepended).
func NewPool(bases []string, opts PoolOptions) (*Pool, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("client: pool needs at least one backend")
	}
	p := &Pool{opts: opts.withDefaults(), index: make(map[string]int, len(bases))}
	// One trace ID per pool: every job any backend runs for this sweep is
	// grouped under it, so a single grep over the daemons' trace logs
	// reconstructs the whole distributed sweep.
	if p.opts.ClientOptions.TraceID == "" {
		p.opts.ClientOptions.TraceID = obs.NewTraceID()
	}
	for _, b := range bases {
		if b = normalizeBase(b); b != "" {
			p.addLocked(b, 0)
		}
	}
	if len(p.bases) == 0 {
		return nil, fmt.Errorf("client: pool needs at least one backend")
	}
	return p, nil
}

// NewClusterPool builds a pool from seed URLs and immediately expands it
// with the backends the seeds gossip about: point it at one live daemon of
// a cluster and it discovers the rest. Discovery failure is not fatal — the
// pool starts with whatever seeds it was given (call Watch to keep trying).
func NewClusterPool(ctx context.Context, seeds []string, opts PoolOptions) (*Pool, error) {
	p, err := NewPool(seeds, opts)
	if err != nil {
		return nil, err
	}
	if err := p.RefreshMembers(ctx); err != nil {
		p.opts.Logf("pool: cluster discovery from seeds failed (continuing with %d seeds): %v",
			len(p.Backends()), err)
	}
	return p, nil
}

// addLocked appends one backend (caller holds mu or is the constructor).
func (p *Pool) addLocked(base string, epoch uint64) {
	if _, ok := p.index[base]; ok {
		return
	}
	p.index[base] = len(p.bases)
	p.bases = append(p.bases, base)
	p.clients = append(p.clients, NewWithOptions(base, p.opts.ClientOptions))
	p.breakers = append(p.breakers, newBreaker(
		p.opts.BreakerThreshold, p.opts.BreakerCooldown, p.opts.BreakerMaxTrips))
	p.epochs = append(p.epochs, epoch)
}

func (p *Pool) size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.bases)
}

func (p *Pool) base(i int) string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.bases[i]
}

func (p *Pool) client(i int) *Client {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.clients[i]
}

func (p *Pool) breaker(i int) *breaker {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.breakers[i]
}

// mergeMembers folds a gossip membership view into the pool: unknown alive
// members join the rendezvous (effective next sweep), and a known member
// advertising a newer liveness epoch than the one on record — the daemon
// restarted since the pool buried it — gets its dead circuit replaced with
// a fresh one, re-admitting the backend without a client restart. Returns
// how many backends were added and how many re-admitted.
func (p *Pool) mergeMembers(ms []cluster.Member) (added, readmitted int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range ms {
		base := normalizeBase(m.URL)
		if base == "" || m.State != cluster.StateAlive {
			continue
		}
		i, ok := p.index[base]
		if !ok {
			p.addLocked(base, m.Epoch)
			p.opts.Logf("pool: discovered backend %s (id %s) via cluster gossip", base, m.ID)
			added++
			continue
		}
		if m.Epoch <= p.epochs[i] {
			continue
		}
		p.epochs[i] = m.Epoch
		if p.breakers[i].Dead() {
			p.breakers[i] = newBreaker(
				p.opts.BreakerThreshold, p.opts.BreakerCooldown, p.opts.BreakerMaxTrips)
			p.opts.Logf("pool: backend %s is back with a newer epoch, re-admitting", base)
			readmitted++
		}
	}
	return added, readmitted
}

// RefreshMembers asks the backends for their gossip membership view and
// merges the first answer it gets. Standalone daemons (no cluster attached)
// answer 404 and are skipped.
func (p *Pool) RefreshMembers(ctx context.Context) error {
	n := p.size()
	var lastErr error
	for i := 0; i < n; i++ {
		v, err := p.client(i).Members(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		p.mergeMembers(v.Members)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: no backend answered the membership probe")
	}
	return lastErr
}

// Watch polls the cluster membership every interval until ctx ends,
// merging joins and epoch-based re-admissions as they appear. Blocking —
// run it in a goroutine.
func (p *Pool) Watch(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 2 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := p.RefreshMembers(ctx); err != nil {
				p.opts.Logf("pool: membership refresh failed: %v", err)
			}
		}
	}
}

// isHardErr reports whether err is a hard connection failure — nothing is
// listening (dial refused) — as opposed to a stream that died mid-flight.
func isHardErr(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// Backends returns the normalized backend base URLs.
func (p *Pool) Backends() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.bases...)
}

// hrwScore is the rendezvous weight of (key, backend): a stable hash both
// sides of any re-run compute identically.
func hrwScore(key, backend string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, backend)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

// rank returns backend indices in descending rendezvous order for key. The
// first healthy entry owns the point; the next is its hedge/failover.
func (p *Pool) rank(key string) []int { return p.rankN(key, p.size()) }

// rankN ranks the first n backends — the membership snapshot a sweep took
// at start, so a mid-sweep join cannot produce out-of-range indices.
func (p *Pool) rankN(key string, n int) []int {
	idx := make([]int, n)
	scores := make([]uint64, n)
	for i := 0; i < n; i++ {
		idx[i] = i
		scores[i] = hrwScore(key, p.base(i))
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// assignment is one backend's claim on a task (primary or hedge).
type assignment struct {
	backend      int
	jobID        string // learned from the ack line; empty until then
	dispatchedAt time.Time
	cancelled    bool // the pool itself cancelled this job (the other side won)
}

// poolTask is one unique simulation point of the sweep.
type poolTask struct {
	key     string
	spec    sim.RunSpec
	indices []int // positions in the caller's spec slice
	rank    []int // rendezvous order over all backends

	assigns []*assignment // one per dispatch (primary, then at most one hedge)
	pending bool          // waiting in some backend's queue
	retries int           // externally-cancelled re-dispatches consumed
	done    bool
	res     sim.Result
}

// poolTaskMaxRetries bounds re-dispatches of a point whose job was
// cancelled out from under the sweep (a draining backend, an operator
// cancel) before the sweep gives up on it.
const poolTaskMaxRetries = 3

// poolRun is the state of one GetAllCtx invocation.
type poolRun struct {
	p      *Pool
	ctx    context.Context
	cancel context.CancelFunc
	opts   PoolOptions

	mu        sync.Mutex
	tasks     []*poolTask
	queues    [][]*poolTask // per-backend pending tasks
	failed    []bool        // per-backend connection health
	remaining int
	err       error
	latencies []time.Duration // completion-latency ring for the p95 estimate
	latNext   int

	kicks  []chan struct{} // per-backend dispatcher wakeups
	doneCh chan struct{}
	wg     sync.WaitGroup
}

const latencyRing = 512

// GetAllCtx runs every spec across the pool's backends and returns results
// in spec order, semantically identical to sim.Runner.GetAllCtx: the first
// simulation error aborts the sweep, cancellation stops it, and duplicate
// specs are simulated once.
func (p *Pool) GetAllCtx(ctx context.Context, specs []sim.RunSpec) ([]sim.Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Snapshot the membership size: backends discovered mid-sweep join the
	// rendezvous on the next GetAllCtx, not this one.
	n := p.size()
	r := &poolRun{
		p: p, ctx: ctx, cancel: cancel, opts: p.opts,
		queues: make([][]*poolTask, n),
		failed: make([]bool, n),
		kicks:  make([]chan struct{}, n),
		doneCh: make(chan struct{}),
	}
	for i := range r.kicks {
		r.kicks[i] = make(chan struct{}, 1)
	}

	// Unique tasks, keyed by content address; duplicates share a task.
	byKey := make(map[string]*poolTask, len(specs))
	for i, spec := range specs {
		spec = spec.Normalized()
		key := server.Key(spec)
		t, ok := byKey[key]
		if !ok {
			t = &poolTask{key: key, spec: spec, rank: p.rankN(key, n)}
			byKey[key] = t
			r.tasks = append(r.tasks, t)
		}
		t.indices = append(t.indices, i)
	}
	r.remaining = len(r.tasks)

	// Initial sharding: every task to its highest-ranked backend whose
	// circuit is not permanently dead (earlier sweeps may have buried some).
	// LPT ordering within each backend queue happens at enqueue time.
	r.mu.Lock()
	for _, t := range r.tasks {
		target := -1
		for _, cand := range t.rank {
			if !p.breaker(cand).Dead() {
				target = cand
				break
			}
		}
		if target < 0 {
			r.mu.Unlock()
			return nil, fmt.Errorf("client: every pool backend is dead")
		}
		r.enqueueLocked(t, target)
	}
	r.mu.Unlock()

	for b := 0; b < n; b++ {
		r.wg.Add(1)
		go r.dispatcher(b)
		r.kick(b)
	}
	r.wg.Add(1)
	go r.hedgeMonitor()

	select {
	case <-r.doneCh:
	case <-ctx.Done():
	}
	cancel()
	r.wg.Wait()

	r.mu.Lock()
	err := r.err
	if err == nil && r.remaining > 0 {
		err = ctx.Err()
		if err == nil {
			err = fmt.Errorf("client: pool finished with %d unresolved points", r.remaining)
		}
	}
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	results := make([]sim.Result, len(specs))
	for _, t := range r.tasks {
		for _, idx := range t.indices {
			results[idx] = t.res
		}
	}
	return results, nil
}

// enqueueLocked appends t to backend b's pending queue in LPT position
// (queues are kept sorted by descending cost so chunks dispatch the longest
// points first).
func (r *poolRun) enqueueLocked(t *poolTask, b int) {
	t.pending = true
	q := r.queues[b]
	cost := t.spec.CostEstimate()
	pos := sort.Search(len(q), func(i int) bool { return q[i].spec.CostEstimate() < cost })
	q = append(q, nil)
	copy(q[pos+1:], q[pos:])
	q[pos] = t
	r.queues[b] = q
}

func (r *poolRun) kick(b int) {
	select {
	case r.kicks[b] <- struct{}{}:
	default:
	}
}

// dispatcher drains backend b's pending queue in chunks of at most
// MaxInflight specs, one batch stream per chunk, serially: the bound on
// outstanding work per backend is the chunk size. Every dispatch passes
// through the backend's circuit breaker: an open circuit waits out its
// cooldown, a half-open trial (and a run's first dispatch) leads with a
// readiness probe, and a dead circuit evacuates the queue for good.
func (r *poolRun) dispatcher(b int) {
	defer r.wg.Done()
	br := r.p.breaker(b)
	probed := false
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-r.kicks[b]:
		}
		for r.hasWork(b) {
			ok, trial, wait := br.Acquire()
			if !ok {
				if wait == 0 { // dead: this backend is done for
					r.shedLoad(b, nil, fmt.Errorf("circuit permanently open"))
					break
				}
				select {
				case <-r.ctx.Done():
					return
				case <-time.After(wait):
				}
				continue
			}
			if trial || !probed {
				if err := r.probe(b); err != nil {
					br.Fail(isHardErr(err))
					r.opts.Logf("pool: backend %s failed its readiness probe (circuit %s): %v",
						r.p.base(b), br.State(), err)
					r.shedLoad(b, nil, err)
					continue
				}
				probed = true
			}
			chunk := r.takeChunk(b)
			if len(chunk) == 0 {
				if trial {
					br.Success() // the probe passed; nothing left to prove it with
				}
				break
			}
			r.runChunk(b, chunk)
			if r.ctx.Err() != nil {
				return
			}
		}
	}
}

func (r *poolRun) hasWork(b int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[b]) > 0 && !r.failed[b]
}

// probe checks backend b's readiness. A transport failure or a draining
// daemon is a probe failure; a daemon that is merely out of queue headroom
// is alive and accepted — the batch path waits for queue space server-side.
func (r *poolRun) probe(b int) error {
	ctx, cancel := context.WithTimeout(r.ctx, r.opts.ProbeTimeout)
	defer cancel()
	rv, err := r.p.client(b).Ready(ctx)
	if err != nil {
		return err
	}
	if rv.Draining {
		return fmt.Errorf("backend %s is draining", r.p.base(b))
	}
	return nil
}

// takeChunk pops up to MaxInflight not-yet-done tasks from backend b's
// queue and registers an assignment for each.
func (r *poolRun) takeChunk(b int) []*poolTask {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failed[b] {
		return nil
	}
	var chunk []*poolTask
	q := r.queues[b]
	for len(q) > 0 && len(chunk) < r.opts.MaxInflight {
		t := q[0]
		q = q[1:]
		if t.done {
			continue
		}
		t.pending = false
		t.assigns = append(t.assigns, &assignment{backend: b, dispatchedAt: time.Now()})
		chunk = append(chunk, t)
	}
	r.queues[b] = q
	return chunk
}

// runChunk streams one batch of tasks to backend b and folds the results
// back into the run, then settles with the circuit breaker: a stream that
// delivered at least one new terminal result counts as a success even if it
// died afterwards (the backend is alive and producing — resume, don't
// punish), while a stream that died without progress counts toward a trip —
// immediately, when nothing was even listening. Unfinished tasks are
// re-queued either way.
func (r *poolRun) runChunk(b int, chunk []*poolTask) {
	specs := make([]sim.RunSpec, len(chunk))
	for i, t := range chunk {
		specs[i] = t.spec
	}
	progressed := false
	err := r.p.client(b).Batch(r.ctx, specs, func(it server.BatchItem) error {
		if it.Index < 0 || it.Index >= len(chunk) {
			return nil
		}
		if r.observe(b, chunk[it.Index], it) {
			progressed = true
		}
		return nil
	})
	if r.ctx.Err() != nil {
		return
	}
	br := r.p.breaker(b)
	if err == nil && !r.chunkHasUnfinished(b, chunk) {
		br.Success()
		return
	}
	if progressed {
		br.Success()
	} else {
		br.Fail(isHardErr(err))
	}
	if err == nil {
		err = fmt.Errorf("stream ended with unresolved points")
	}
	r.shedLoad(b, chunk, err)
}

// chunkHasUnfinished reports whether any chunk task still needs a home
// after its stream ended.
func (r *poolRun) chunkHasUnfinished(b int, chunk []*poolTask) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range chunk {
		if !t.done && !t.pending && !r.liveElsewhereLocked(t, b) {
			return true
		}
	}
	return false
}

// liveElsewhereLocked reports whether t has a live claim on a healthy
// backend other than b (a hedge still running it).
func (r *poolRun) liveElsewhereLocked(t *poolTask, b int) bool {
	for _, a := range t.assigns {
		if a.backend != b && !a.cancelled && !r.failed[a.backend] {
			return true
		}
	}
	return false
}

// observe folds one batch item for task t (dispatched on backend b) into
// the run state. It reports whether the item newly resolved the task — the
// per-stream progress signal the circuit breaker keys on.
func (r *poolRun) observe(b int, t *poolTask, it server.BatchItem) bool {
	r.mu.Lock()
	var a *assignment
	for _, cand := range t.assigns {
		if cand.backend == b {
			a = cand
		}
	}
	if a == nil { // can't happen: items only arrive on streams we opened
		r.mu.Unlock()
		return false
	}
	if !it.Status.Terminal() {
		a.jobID = it.ID // ack: remember the id so the loser can be cancelled
		// The point may have already been won elsewhere while this ack was
		// in flight; cancel the losing job now that its id is known.
		lose := t.done && !a.cancelled
		if lose {
			a.cancelled = true
		}
		r.mu.Unlock()
		if lose {
			r.cancelJob(a)
		}
		return false
	}
	if t.done {
		r.mu.Unlock()
		return false
	}
	switch it.Status {
	case server.StatusDone:
		res, err := it.DecodeResult()
		if err != nil {
			r.failLocked(err)
			r.mu.Unlock()
			return false
		}
		t.done = true
		t.res = res
		r.remaining--
		r.recordLatencyLocked(time.Since(a.dispatchedAt))
		// Cancel the losing assignment's job, if any: the point must not be
		// simulated twice.
		var losers []*assignment
		for _, other := range t.assigns {
			if other != a && !other.cancelled && other.jobID != "" {
				other.cancelled = true
				losers = append(losers, other)
			}
		}
		done := r.remaining == 0
		r.mu.Unlock()
		for _, l := range losers {
			r.cancelJob(l)
		}
		if done {
			close(r.doneCh)
		}
		return true
	case server.StatusCancelled:
		// Our own cancellation of a losing job echoes back on its stream;
		// anything else (a draining backend, an operator) cancelled the job
		// out from under the sweep. Re-dispatch the point a bounded number
		// of times before declaring the sweep failed.
		if !a.cancelled {
			a.cancelled = true
			if t.retries < poolTaskMaxRetries {
				t.retries++
				target := r.requeueTargetLocked(t)
				if target >= 0 {
					r.opts.Logf("pool: %s (key %.12s) cancelled externally on %s, re-dispatching to %s (retry %d)",
						t.spec.Workload, t.key, r.p.base(b), r.p.base(target), t.retries)
					r.enqueueLocked(t, target)
					r.mu.Unlock()
					r.kick(target)
					return false
				}
			}
			r.failLocked(fmt.Errorf("client: %s cancelled externally on %s: %s",
				t.spec.Workload, r.p.base(b), it.Error))
		}
	case server.StatusFailed:
		r.failLocked(it.ErrorOf())
	}
	r.mu.Unlock()
	return false
}

// cancelJob asks an assignment's backend to stop its job, detached from the
// run's (possibly already finished) context.
func (r *poolRun) cancelJob(a *assignment) {
	go func() {
		cctx, cc := context.WithTimeout(context.Background(), 5*time.Second)
		defer cc()
		_, _ = r.p.client(a.backend).Cancel(cctx, a.jobID)
	}()
}

// failLocked records the sweep's first fatal error and stops everything.
func (r *poolRun) failLocked(err error) {
	if r.err == nil {
		r.err = err
		r.cancel()
	}
}

// shedLoad evacuates backend b's outstanding work after a failure. The
// failed chunk's assignments on b are written off; when b's circuit has gone
// permanently dead the backend is also marked failed for this run and its
// whole pending queue drains. Every orphaned task is re-homed onto the best
// available backend in its rendezvous order — which may be b itself when the
// circuit is merely open (the point parks until the cooldown's half-open
// trial). With no backend left at all the sweep fails.
func (r *poolRun) shedLoad(b int, chunk []*poolTask, cause error) {
	dead := r.p.breaker(b).Dead()
	r.mu.Lock()
	for _, t := range chunk {
		for _, a := range t.assigns {
			if a.backend == b {
				a.cancelled = true
			}
		}
	}
	orphans := append([]*poolTask(nil), chunk...)
	if dead {
		if !r.failed[b] {
			r.failed[b] = true
			r.opts.Logf("pool: backend %s is dead (circuit tripped %d times), re-sharding: %v",
				r.p.base(b), r.opts.BreakerMaxTrips, cause)
		}
		for _, t := range r.queues[b] {
			t.pending = false // drained: no longer queued anywhere
		}
		orphans = append(orphans, r.queues[b]...)
		r.queues[b] = nil
	} else if len(chunk) > 0 {
		r.opts.Logf("pool: shedding %d points from %s (circuit %s): %v",
			len(chunk), r.p.base(b), r.p.breaker(b).State(), cause)
	}
	rekicks := map[int]bool{}
	for _, t := range orphans {
		if t.done || t.pending {
			continue
		}
		if r.liveAssignLocked(t) {
			continue // a hedge is still running it elsewhere
		}
		target := r.requeueTargetLocked(t)
		if target < 0 {
			r.failLocked(fmt.Errorf("client: every pool backend failed (last: %s: %w)", r.p.base(b), cause))
			r.mu.Unlock()
			return
		}
		r.enqueueLocked(t, target)
		rekicks[target] = true
	}
	r.mu.Unlock()
	for cand := range rekicks {
		r.kick(cand)
	}
}

// requeueTargetLocked picks a new home for t: the highest-ranked backend
// that is still in the run and not circuit-dead, preferring one whose
// circuit would admit a dispatch right now over one waiting out a cooldown.
// Returns -1 when no backend is left.
func (r *poolRun) requeueTargetLocked(t *poolTask) int {
	fallback := -1
	for _, cand := range t.rank {
		if r.failed[cand] || r.p.breaker(cand).Dead() {
			continue
		}
		if r.p.breaker(cand).Settled() {
			return cand
		}
		if fallback < 0 {
			fallback = cand
		}
	}
	return fallback
}

// liveAssignLocked reports whether t still has an assignment on a healthy
// backend.
func (r *poolRun) liveAssignLocked(t *poolTask) bool {
	for _, a := range t.assigns {
		if !r.failed[a.backend] && !a.cancelled {
			return true
		}
	}
	return false
}

func (r *poolRun) recordLatencyLocked(d time.Duration) {
	if len(r.latencies) < latencyRing {
		r.latencies = append(r.latencies, d)
		return
	}
	r.latencies[r.latNext] = d
	r.latNext = (r.latNext + 1) % latencyRing
}

// hedgeDelay is the adaptive straggler threshold: HedgeMult × the p95 of
// recent completion latencies, floored at HedgeMin.
func (r *poolRun) hedgeDelay() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 {
		return r.opts.HedgeMin
	}
	lat := append([]time.Duration(nil), r.latencies...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p95 := obs.PercentileDuration(lat, 0.95)
	d := time.Duration(r.opts.HedgeMult * float64(p95))
	if d < r.opts.HedgeMin {
		d = r.opts.HedgeMin
	}
	return d
}

// hedgeMonitor periodically re-dispatches stragglers: a point outstanding
// on its primary backend longer than the adaptive delay is queued on the
// next healthy backend in its rendezvous order. One hedge per point; first
// result wins.
func (r *poolRun) hedgeMonitor() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.opts.HedgeTick)
	defer ticker.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-ticker.C:
		}
		delay := r.hedgeDelay()
		now := time.Now()
		rekicks := map[int]bool{}
		r.mu.Lock()
		for _, t := range r.tasks {
			if t.done || t.pending {
				continue
			}
			// Hedge when exactly one live claim exists and it has aged past
			// the delay. (A hedge whose backend later failed leaves the task
			// with one live claim again, making it eligible once more.)
			var live *assignment
			claimed := map[int]bool{}
			lives := 0
			for _, a := range t.assigns {
				if !a.cancelled && !r.failed[a.backend] {
					live = a
					lives++
					claimed[a.backend] = true
				}
			}
			if lives != 1 || now.Sub(live.dispatchedAt) < delay {
				continue
			}
			for _, cand := range t.rank {
				if !claimed[cand] && !r.failed[cand] && !r.p.breaker(cand).Dead() {
					r.opts.Logf("pool: hedging %s (key %.12s) from %s to %s after %v",
						t.spec.Workload, t.key, r.p.base(live.backend), r.p.base(cand), now.Sub(live.dispatchedAt))
					r.enqueueLocked(t, cand)
					rekicks[cand] = true
					break
				}
			}
		}
		r.mu.Unlock()
		for cand := range rekicks {
			r.kick(cand)
		}
	}
}
