package client

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"spb/internal/faults"
	"spb/internal/server"
	"spb/internal/sim"
)

// closeIdleConnections drops keep-alive connections parked on the shared
// default transport so goroutine-leak accounting sees only real leaks.
func closeIdleConnections() {
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// chaosDaemon starts one spbd with an explicit config (fault injector,
// cache dir, ...) behind an httptest listener.
func chaosDaemon(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.SSEInterval == 0 {
		cfg.SSEInterval = 5 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// diskEntryPath mirrors the disk store's sharded layout (dir/ab/<key>.json)
// so chaos tests can corrupt entries from the outside.
func diskEntryPath(dir, key string) string {
	return filepath.Join(dir, key[:2], key+".json")
}

// corruptEntryFile flips one bit of an alphanumeric byte inside the entry's
// stats payload. The stats field is a raw JSON blob the store round-trips
// verbatim, so token-level damage there is always visible to the content
// checksum — a flip elsewhere can land on a struct field name whose value
// is the zero value, which parses back to an identical entry and
// legitimately passes verification.
func corruptEntryFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	start := bytes.Index(data, []byte(`"stats"`))
	if start < 0 {
		t.Fatalf("no stats payload to corrupt in %s", path)
	}
	for i := start + len(`"stats"`); i < len(data); i++ {
		b := data[i]
		if b >= 'a' && b <= 'z' || b >= '0' && b <= '9' {
			data[i] ^= 0x02
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("no alphanumeric byte to corrupt in %s", path)
}

// TestBatchResumeAfterTruncation is the mid-stream truncation satellite:
// the server kills the /v1/batch NDJSON stream partway through, the client
// resumes, and every spec is still simulated exactly once — the resumed
// request coalesces onto the retained jobs and cache instead of
// re-simulating.
func TestBatchResumeAfterTruncation(t *testing.T) {
	inj := faults.MustParse("batch.stream:cut:1:after=3:limit=1")
	s, ts := chaosDaemon(t, server.Config{Faults: inj})
	cl := NewWithOptions(ts.URL, Options{Retry: RetryPolicy{BaseDelay: time.Millisecond}})

	const n = 6
	specs := make([]sim.RunSpec, n)
	for i := range specs {
		specs[i] = poolSpec(uint64(i + 1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := cl.BatchResults(ctx, specs)
	if err != nil {
		t.Fatalf("BatchResults across a truncated stream: %v", err)
	}
	if got := inj.Fires("batch.stream"); got != 1 {
		t.Fatalf("stream cut fired %d times, want 1 (the fault never happened?)", got)
	}
	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := local.StatsJSON()
		got, _ := results[i].StatsJSON()
		if string(got) != string(want) {
			t.Fatalf("spec %d: resumed result differs from local run", i)
		}
	}
	if got := s.Runner().Runs(); got != n {
		t.Fatalf("Runs() = %d, want %d (resume must coalesce, not re-simulate)", got, n)
	}
}

// TestChaosSweepByteIdentical is the acceptance storm: a pool over three
// live backends — each with its own seeded mix of submit errors, worker
// latency, stream cuts, and disk I/O faults — plus one address nobody
// listens on. One backend's disk cache is pre-seeded with a valid entry
// (must be served, not re-simulated) and another's with a bit-flipped entry
// (must be quarantined and recomputed). The sweep must return stats
// byte-identical to in-process simulation, simulate every unique point
// exactly once (minus the valid disk hit), and leak no goroutines.
func TestChaosSweepByteIdentical(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	specsFaults := []string{
		"seed=11;run:delay:0.3:2ms;batch.stream:cut:0.15:limit=2",
		"seed=12;store.write:error:0.4:limit=3;batch.stream:cut:1:after=4:limit=1",
		"seed=13;submit:error:0.4:limit=2;store.read:error:0.3:limit=2",
	}
	servers := make([]*server.Server, 3)
	bases := make([]string, 0, 4)
	for i := range servers {
		s, ts := chaosDaemon(t, server.Config{
			CacheDir: dirs[i],
			Faults:   faults.MustParse(specsFaults[i]),
		})
		servers[i] = s
		bases = append(bases, ts.URL)
	}
	bases = append(bases, "http://127.0.0.1:1") // nobody home

	p, err := NewPool(bases, PoolOptions{
		MaxInflight:      4,
		HedgeMin:         60 * time.Second, // no hedging: keep exactly-once accounting strict
		BreakerThreshold: 50,               // stream cuts must not bury a live backend
		BreakerCooldown:  25 * time.Millisecond,
		Logf:             t.Logf,
		ClientOptions:    Options{Retry: RetryPolicy{BaseDelay: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}

	owner := func(spec sim.RunSpec) int {
		return p.rank(server.Key(spec.Normalized()))[0]
	}
	var specs []sim.RunSpec
	for seed := uint64(1); seed <= 18; seed++ {
		specs = append(specs, poolSpec(seed))
	}
	// The HRW layout depends on the ephemeral ports httptest picked, so
	// extend the sweep until the backends we pre-seed below each own at
	// least one point.
	for backend, seed := 0, uint64(18); backend <= 1; backend++ {
		for !func() bool {
			for _, spec := range specs {
				if owner(spec) == backend {
					return true
				}
			}
			return false
		}() {
			seed++
			if seed > 500 {
				t.Fatalf("no seed up to %d shards to backend %d", seed, backend)
			}
			specs = append(specs, poolSpec(seed))
		}
	}
	unique := len(specs)
	for seed := uint64(1); seed <= 6; seed++ { // duplicates: dedup must hold under faults
		specs = append(specs, poolSpec(seed))
	}

	// Pre-seed disk tiers: a valid entry on one live backend and a corrupted
	// one on another, each for a spec that rendezvous-shards to that backend.
	ownedBy := func(backend int) sim.RunSpec {
		for _, spec := range specs[:unique] {
			if owner(spec) == backend {
				return spec
			}
		}
		t.Fatalf("no sweep spec shards to backend %d", backend)
		return sim.RunSpec{}
	}
	seedEntry := func(dir string, spec sim.RunSpec) string {
		st, err := server.OpenDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		key := server.Key(spec.Normalized())
		if err := st.Put(key, res); err != nil {
			t.Fatal(err)
		}
		return diskEntryPath(dir, key)
	}
	validSpec := ownedBy(0)
	seedEntry(dirs[0], validSpec)
	corruptSpec := ownedBy(1)
	corruptPath := seedEntry(dirs[1], corruptSpec)
	corruptEntryFile(t, corruptPath)

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	results, err := p.GetAllCtx(ctx, specs)
	if err != nil {
		t.Fatalf("sweep failed under the fault storm: %v", err)
	}

	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := local.StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		got, err := results[i].StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("spec %d (%s seed %d): swept stats differ from in-process:\n  %s\n  %s",
				i, spec.Workload, spec.Seed, got, want)
		}
	}

	// Exactly once: every unique point simulated on exactly one backend,
	// except the valid pre-seeded entry (a disk hit). The corrupted entry
	// was quarantined and *recomputed*, so it still counts one run.
	var runs uint64
	for i, s := range servers {
		t.Logf("backend %d: %d runs, %d corrupt entries", i, s.Runner().Runs(), s.Metrics().StoreCorrupt.Load())
		runs += s.Runner().Runs()
	}
	if runs != uint64(unique-1) {
		t.Fatalf("backends ran %d simulations, want %d (duplicated or dropped work under faults)", runs, unique-1)
	}
	if got := servers[1].Metrics().StoreCorrupt.Load(); got != 1 {
		t.Fatalf("backend 1 counted %d corrupt store entries, want 1", got)
	}
	if _, err := os.Stat(corruptPath + ".corrupt"); err != nil {
		t.Fatalf("corrupt entry was not quarantined: %v", err)
	}
	for i, s := range servers {
		if s.Degraded() {
			t.Fatalf("backend %d ended degraded; injected fault limits should have cleared", i)
		}
	}

	// No goroutine leaks: once the sweep returns, its dispatchers, hedge
	// monitor, and waiters must all be gone. Idle HTTP keep-alive
	// connections are torn down first so only real leaks remain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		closeIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosMidSweepBackendCrash kills a backend for real — connections
// severed, listener closed — while a sweep is in flight. The breaker trips
// hard, the dead backend's shard re-homes, and the sweep still returns
// correct results (exactly-once cannot hold across a crash: work the dead
// backend finished but never delivered is re-run elsewhere).
func TestChaosMidSweepBackendCrash(t *testing.T) {
	sA, tsA := chaosDaemon(t, server.Config{})
	_, tsB := chaosDaemon(t, server.Config{})
	p, err := NewPool([]string{tsA.URL, tsB.URL}, PoolOptions{
		MaxInflight:     2,
		HedgeMin:        60 * time.Second,
		BreakerCooldown: 25 * time.Millisecond,
		Logf:            t.Logf,
		ClientOptions:   Options{Retry: RetryPolicy{BaseDelay: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]sim.RunSpec, 12)
	for i := range specs {
		specs[i] = poolSpec(uint64(i + 1))
		specs[i].Insts = 200_000 // slow enough that the crash lands mid-sweep
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	type out struct {
		res []sim.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := p.GetAllCtx(ctx, specs)
		ch <- out{res, err}
	}()

	// Crash A once it has started simulating sweep work.
	for i := 0; sA.Runner().Runs() == 0; i++ {
		if i > 10_000 {
			t.Fatal("backend A never received work")
		}
		time.Sleep(time.Millisecond)
	}
	tsA.CloseClientConnections()
	tsA.Listener.Close()

	got := <-ch
	if got.err != nil {
		t.Fatalf("sweep failed instead of surviving the crash: %v", got.err)
	}
	for i, spec := range specs {
		local, err := sim.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := local.StatsJSON()
		res, _ := got.res[i].StatsJSON()
		if string(res) != string(want) {
			t.Fatalf("spec %d: post-crash result differs from local run", i)
		}
	}
}
