package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spb/internal/core"
	"spb/internal/server"
	"spb/internal/sim"
)

func testDaemon(t *testing.T) (*server.Server, *Client) {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, SSEInterval: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, New(ts.URL)
}

var quickSpec = sim.RunSpec{Workload: "mcf", Policy: core.PolicySPB, SQSize: 14, Insts: 10_000}

func TestClientRunMatchesLocalSim(t *testing.T) {
	_, cl := testDaemon(t)
	v, err := cl.Run(context.Background(), quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Stats) != string(want) {
		t.Fatalf("remote stats differ from local:\n  %s\n  %s", v.Stats, want)
	}
	if v.IPC <= 0 || v.IPC != local.IPC() {
		t.Fatalf("remote IPC %v, local %v", v.IPC, local.IPC())
	}
}

func TestClientSubmitWaitCancel(t *testing.T) {
	_, cl := testDaemon(t)
	long := quickSpec
	long.Insts = 2_000_000_000
	ctx := context.Background()

	v, err := cl.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status == server.StatusDone {
		t.Fatal("unbounded run reported done")
	}
	// Watch a couple of SSE events while it runs.
	evCtx, evCancel := context.WithTimeout(ctx, 5*time.Second)
	defer evCancel()
	var events int
	err = cl.Events(evCtx, v.ID, func(name string, data json.RawMessage) bool {
		events++
		return events < 3
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if events == 0 {
		t.Fatal("no SSE events observed")
	}

	if _, err := cl.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Wait(ctx, v.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != server.StatusCancelled {
		t.Fatalf("status = %s, want cancelled", got.Status)
	}

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "spbd_runs_cancelled_total 1") {
		t.Fatalf("metrics missing cancellation:\n%s", metrics)
	}
}

func TestClientErrors(t *testing.T) {
	_, cl := testDaemon(t)
	_, err := cl.Get(context.Background(), "missing")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("Get(missing) = %v, want 404 StatusError", err)
	}
	_, err = cl.Run(context.Background(), sim.RunSpec{})
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("Run(empty spec) = %v, want 400 StatusError", err)
	}
}
