package client

import (
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker state machine, plus a
// terminal "dead" state for backends that keep flapping.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: dispatch freely
	breakerOpen                         // tripped: no dispatch until the cooldown expires
	breakerHalfOpen                     // cooldown expired: exactly one trial in flight
	breakerDead                         // tripped maxTrips times without a success: permanently out
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "dead"
	}
}

// breaker is one backend's circuit. Soft failures (a batch stream that dies
// without delivering any new terminal result) accumulate; hard failures
// (dial refused — nothing is listening) trip immediately. A tripped circuit
// cools down for cooldown, then admits a single half-open trial — a
// readiness probe plus one chunk — whose outcome closes or re-trips it.
// maxTrips consecutive trips without an intervening success mark the
// backend dead for the pool's lifetime, feeding HRW re-sharding: its points
// move to the survivors instead of timing out against it forever.
type breaker struct {
	threshold int
	cooldown  time.Duration
	maxTrips  int

	mu        sync.Mutex
	state     breakerState
	softFails int // consecutive soft failures while closed
	trips     int // consecutive trips without a success
	reopenAt  time.Time
	probing   bool // a half-open trial is in flight
}

func newBreaker(threshold int, cooldown time.Duration, maxTrips int) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, maxTrips: maxTrips}
}

// Acquire asks to dispatch. ok means go ahead (trial marks it as the one
// half-open trial — the caller must report Success or Fail). When not ok,
// wait is how long to back off before asking again; wait==0 means the
// circuit is dead and the caller should evacuate instead.
func (br *breaker) Acquire() (ok bool, trial bool, wait time.Duration) {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerClosed:
		return true, false, 0
	case breakerDead:
		return false, false, 0
	case breakerOpen:
		if rem := time.Until(br.reopenAt); rem > 0 {
			return false, false, rem
		}
		br.state = breakerHalfOpen
		br.probing = true
		return true, true, 0
	default: // half-open
		if br.probing {
			// Another dispatcher's trial is in flight; poll shortly.
			return false, false, br.cooldown / 4
		}
		br.probing = true
		return true, true, 0
	}
}

// Success reports a healthy interaction: the circuit closes and the flap
// count resets.
func (br *breaker) Success() {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.state == breakerDead {
		return
	}
	br.state = breakerClosed
	br.softFails = 0
	br.trips = 0
	br.probing = false
}

// Fail reports a failed interaction. Hard failures (and any failure during
// a half-open trial) trip immediately; soft ones trip after threshold
// consecutive occurrences.
func (br *breaker) Fail(hard bool) {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.probing = false
	switch br.state {
	case breakerDead:
		return
	case breakerHalfOpen:
		br.tripLocked()
		return
	}
	if hard {
		br.tripLocked()
		return
	}
	br.softFails++
	if br.softFails >= br.threshold {
		br.tripLocked()
	}
}

func (br *breaker) tripLocked() {
	br.softFails = 0
	br.trips++
	if br.trips >= br.maxTrips {
		br.state = breakerDead
		return
	}
	br.state = breakerOpen
	br.reopenAt = time.Now().Add(br.cooldown)
}

// Dead reports whether the backend is permanently out.
func (br *breaker) Dead() bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.state == breakerDead
}

// Settled reports whether the circuit would admit a dispatch right now —
// closed, or cooled down enough for a trial. Evacuations prefer settled
// backends so tripped ones shed load instead of queueing it.
func (br *breaker) Settled() bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch br.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return !time.Now().Before(br.reopenAt)
	case breakerHalfOpen:
		return !br.probing
	default:
		return false
	}
}

// State snapshots the current state (logs, tests).
func (br *breaker) State() breakerState {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.state
}
