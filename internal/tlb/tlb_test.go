package tlb

import (
	"testing"
	"testing/quick"

	"spb/internal/mem"
)

func TestTableIGeometry(t *testing.T) {
	tl := New(TableI())
	if tl.Sets() != 16 || tl.Ways() != 8 {
		t.Fatalf("Table I TLB = %d sets x %d ways, want 16x8", tl.Sets(), tl.Ways())
	}
}

func TestMissThenHit(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, WalkLat: 30})
	if lat := tl.Translate(0x1234); lat != 30 {
		t.Fatalf("cold access latency = %d, want 30", lat)
	}
	if lat := tl.Translate(0x1FFF); lat != 0 {
		t.Fatalf("same-page access latency = %d, want 0", lat)
	}
	if lat := tl.Translate(0x2000); lat != 30 {
		t.Fatalf("next-page access latency = %d, want 30", lat)
	}
	if tl.Hits != 1 || tl.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", tl.Hits, tl.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(Config{Entries: 2, Ways: 2, WalkLat: 10}) // 1 set, 2 ways
	tl.Translate(mem.AddrOfPage(1))
	tl.Translate(mem.AddrOfPage(2))
	tl.Translate(mem.AddrOfPage(1)) // touch 1, making 2 the LRU
	tl.Translate(mem.AddrOfPage(3)) // evicts 2
	if !tl.Covers(mem.AddrOfPage(1)) || !tl.Covers(mem.AddrOfPage(3)) {
		t.Fatal("pages 1 and 3 should be covered")
	}
	if tl.Covers(mem.AddrOfPage(2)) {
		t.Fatal("page 2 should have been evicted")
	}
}

func TestHitRate(t *testing.T) {
	tl := New(Config{Entries: 16, Ways: 4, WalkLat: 10})
	if tl.HitRate() != 1 {
		t.Fatal("idle TLB reports hit rate 1")
	}
	tl.Translate(0)
	tl.Translate(0)
	tl.Translate(0)
	if hr := tl.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", hr)
	}
}

func TestStreamingWithinPageCostsOneWalk(t *testing.T) {
	tl := New(TableI())
	var walks uint64
	for a := mem.Addr(0); a < 4*mem.PageSize; a += 8 {
		walks += tl.Translate(a)
	}
	if walks != 4*30 {
		t.Fatalf("4-page stream cost %d walk cycles, want 120", walks)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Ways: 1},
		{Entries: 8, Ways: 3},
		{Entries: 24, Ways: 2}, // 12 sets: not a power of two
		{Entries: 8, Ways: 2, WalkLat: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: a translated page is always covered afterwards, and occupancy
// never exceeds capacity.
func TestCoverageInvariant(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := New(Config{Entries: 32, Ways: 4, WalkLat: 20})
		for _, p := range pages {
			a := mem.AddrOfPage(mem.Page(p))
			tl.Translate(a)
			if !tl.Covers(a) {
				return false
			}
		}
		valid := 0
		for _, e := range tl.entries {
			if e.valid {
				valid++
			}
		}
		return valid <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
