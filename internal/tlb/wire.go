package tlb

import (
	"bytes"
	"encoding/gob"

	"spb/internal/mem"
)

// Gob wire form of a Snapshot (crash-safe checkpoints, DESIGN.md §15).

type entryWire struct {
	Page    mem.Page
	LastUse uint64
	Valid   bool
}

type snapshotWire struct {
	Entries []entryWire
	Clock   uint64
	Hits    uint64
	Misses  uint64
}

// GobEncode implements gob.GobEncoder.
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Entries: make([]entryWire, len(s.entries)),
		Clock:   s.clock,
		Hits:    s.hits,
		Misses:  s.misses,
	}
	for i, e := range s.entries {
		w.Entries[i] = entryWire{Page: e.page, LastUse: e.lastUse, Valid: e.valid}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.entries = make([]entry, len(w.Entries))
	for i, e := range w.Entries {
		s.entries[i] = entry{page: e.Page, lastUse: e.LastUse, valid: e.Valid}
	}
	s.clock = w.Clock
	s.hits = w.Hits
	s.misses = w.Misses
	return nil
}
