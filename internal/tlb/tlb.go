// Package tlb models the data TLB of Table I (8-way, 1 KB of entry
// storage): a set-associative translation cache consulted by every load and
// store address generation. Misses pay a page-table-walk latency before the
// memory access can start. The simulator runs physically addressed below
// this point, so the TLB's role — as in the paper — is purely the extra
// latency and the page-granular reach limit; it is also why SPB (a physical
// prefetcher) must stop its bursts at page boundaries.
package tlb

import "spb/internal/mem"

// entry is one cached translation.
type entry struct {
	page    mem.Page
	lastUse uint64
	valid   bool
}

// TLB is a set-associative translation lookaside buffer.
type TLB struct {
	sets    int
	ways    int
	entries []entry
	clock   uint64
	walkLat uint64

	// Statistics.
	Hits   uint64
	Misses uint64
}

// Config sizes a TLB. Table I's "8 way, 1KB" is 8 ways × 16 sets = 128
// entries (8 bytes of storage per entry).
type Config struct {
	Entries int // total entries (sets × ways)
	Ways    int
	WalkLat int // page-walk latency charged on a miss, in cycles
}

// TableI returns the paper's Table I data-TLB configuration.
func TableI() Config {
	return Config{Entries: 128, Ways: 8, WalkLat: 30}
}

// New builds a TLB. Entries/Ways must give a power-of-two set count.
func New(cfg Config) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	if cfg.WalkLat < 0 {
		panic("tlb: negative walk latency")
	}
	return &TLB{
		sets:    sets,
		ways:    cfg.Ways,
		entries: newEntries(cfg.Entries),
		walkLat: uint64(cfg.WalkLat),
	}
}

// Sets returns the set count.
func (t *TLB) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *TLB) Ways() int { return t.ways }

func (t *TLB) set(p mem.Page) []entry {
	idx := (uint64(p) & uint64(t.sets-1)) * uint64(t.ways)
	return t.entries[idx : idx+uint64(t.ways)]
}

// Translate looks up the page containing a and returns the extra latency
// the access pays (0 on a hit, the walk latency on a miss, which also
// fills the entry).
func (t *TLB) Translate(a mem.Addr) (extraLat uint64) {
	p := mem.PageOf(a)
	set := t.set(p)
	t.clock++
	for i := range set {
		e := &set[i]
		if e.valid && e.page == p {
			e.lastUse = t.clock
			t.Hits++
			return 0
		}
	}
	t.Misses++
	// Fill over the LRU way.
	vi := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	set[vi] = entry{page: p, lastUse: t.clock, valid: true}
	return t.walkLat
}

// Covers reports whether the page containing a currently has a cached
// translation (probe only; no LRU update, no fill).
func (t *TLB) Covers(a mem.Addr) bool {
	p := mem.PageOf(a)
	for i := range t.set(p) {
		e := &t.set(p)[i]
		if e.valid && e.page == p {
			return true
		}
	}
	return false
}

// HitRate returns hits / (hits + misses), or 1 when idle.
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 1
	}
	return float64(t.Hits) / float64(total)
}
