package tlb

import (
	"sync"

	"spb/internal/mem"
)

// Warm-start support (DESIGN.md §12): counter-free functional warming, deep
// snapshot/restore, and a pool for the entry array so repeated Runner
// invocations stop allocating it.

// Warm replays a translation for functional warming: identical LRU and fill
// effects to Translate, but no latency result and no statistics counters.
func (t *TLB) Warm(a mem.Addr) {
	p := mem.PageOf(a)
	set := t.set(p)
	t.clock++
	for i := range set {
		e := &set[i]
		if e.valid && e.page == p {
			e.lastUse = t.clock
			return
		}
	}
	vi := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	set[vi] = entry{page: p, lastUse: t.clock, valid: true}
}

// Snapshot is a deep copy of a TLB's mutable state.
type Snapshot struct {
	entries []entry
	clock   uint64
	hits    uint64
	misses  uint64
}

// Snapshot deep-copies the TLB's mutable state.
func (t *TLB) Snapshot() *Snapshot {
	return &Snapshot{
		entries: append([]entry(nil), t.entries...),
		clock:   t.clock,
		hits:    t.Hits,
		misses:  t.Misses,
	}
}

// Restore overwrites the TLB's mutable state with the snapshot's. The TLB
// must have the same geometry as the snapshot's source.
func (t *TLB) Restore(s *Snapshot) {
	if len(t.entries) != len(s.entries) {
		panic("tlb: Restore with mismatched geometry")
	}
	copy(t.entries, s.entries)
	t.clock = s.clock
	t.Hits = s.hits
	t.Misses = s.misses
}

var entryPools sync.Map // entry count -> *sync.Pool of []entry

func entryPoolFor(n int) *sync.Pool {
	if p, ok := entryPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := entryPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// newEntries returns a zeroed entry array of length n, reusing a released one
// of the same geometry when available.
func newEntries(n int) []entry {
	if v := entryPoolFor(n).Get(); v != nil {
		ents := v.([]entry)
		for i := range ents {
			ents[i] = entry{}
		}
		return ents
	}
	return make([]entry, n)
}

// Release returns the entry array to the geometry's shared pool. The TLB
// must not be used afterwards; skipping Release is always safe.
func (t *TLB) Release() {
	if t.entries == nil {
		return
	}
	entryPoolFor(len(t.entries)).Put(t.entries)
	t.entries = nil
}
