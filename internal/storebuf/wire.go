package storebuf

import (
	"bytes"
	"encoding/gob"
)

// Gob wire form of a Snapshot (crash-safe checkpoints, DESIGN.md §15).
// Entry's fields are all exported, so it travels as-is.

type snapshotWire struct {
	Entries  []Entry
	HeadSeq  uint64
	TailSeq  uint64
	Seniors  int
	MaxOcc   int
	Merged   uint64
	BlockCnt [sbFilterSize]uint16
}

// GobEncode implements gob.GobEncoder.
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Entries: s.entries, HeadSeq: s.headSeq, TailSeq: s.tailSeq,
		Seniors: s.seniors, MaxOcc: s.maxOcc, Merged: s.merged,
		BlockCnt: s.blockCnt,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.entries = w.Entries
	s.headSeq = w.HeadSeq
	s.tailSeq = w.TailSeq
	s.seniors = w.Seniors
	s.maxOcc = w.MaxOcc
	s.merged = w.Merged
	s.blockCnt = w.BlockCnt
	return nil
}
