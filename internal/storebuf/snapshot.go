package storebuf

import "sync"

// Warm-start support (DESIGN.md §12): deep snapshot/restore of the store
// buffer and a pool for the entry ring so repeated Runner invocations stop
// allocating it.

// Snapshot is a deep copy of a store buffer's mutable state.
type Snapshot struct {
	entries  []Entry
	headSeq  uint64
	tailSeq  uint64
	seniors  int
	maxOcc   int
	merged   uint64
	blockCnt [sbFilterSize]uint16
}

// Snapshot deep-copies the store buffer's mutable state.
func (sb *StoreBuffer) Snapshot() *Snapshot {
	return &Snapshot{
		entries:  append([]Entry(nil), sb.entries...),
		headSeq:  sb.headSeq,
		tailSeq:  sb.tailSeq,
		seniors:  sb.seniors,
		maxOcc:   sb.MaxOccupancy,
		merged:   sb.Coalesced,
		blockCnt: sb.blockCnt,
	}
}

// Restore overwrites the store buffer's mutable state with the snapshot's.
// The buffer must have the capacity of the snapshot's source.
func (sb *StoreBuffer) Restore(s *Snapshot) {
	if len(sb.entries) != len(s.entries) {
		panic("storebuf: Restore with mismatched capacity")
	}
	copy(sb.entries, s.entries)
	sb.headSeq = s.headSeq
	sb.tailSeq = s.tailSeq
	sb.seniors = s.seniors
	sb.MaxOccupancy = s.maxOcc
	sb.Coalesced = s.merged
	sb.blockCnt = s.blockCnt
}

var ringPools sync.Map // capacity -> *sync.Pool of []Entry

func ringPoolFor(n int) *sync.Pool {
	if p, ok := ringPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := ringPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// newRing returns an entry ring of the given capacity, reusing a released
// one when available. Ring slots are written before they are ever read
// (only seqs in [headSeq, tailSeq) are consulted), so no zeroing is needed.
func newRing(n int) []Entry {
	if v := ringPoolFor(n).Get(); v != nil {
		return v.([]Entry)
	}
	return make([]Entry, n)
}

// Release returns the entry ring to the capacity's shared pool. The buffer
// must not be used afterwards; skipping Release is always safe.
func (sb *StoreBuffer) Release() {
	if sb.entries == nil {
		return
	}
	ringPoolFor(len(sb.entries)).Put(sb.entries)
	sb.entries = nil
}
