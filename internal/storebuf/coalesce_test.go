package storebuf

import (
	"testing"

	"spb/internal/mem"
)

func TestCoalesceContiguousStores(t *testing.T) {
	sb := NewCoalescing(4)
	s0 := sb.Allocate(0x100, 8, 0)
	s1 := sb.Allocate(0x108, 8, 0)
	if s0 != s1 {
		t.Fatalf("contiguous same-block stores should merge: %d vs %d", s0, s1)
	}
	if sb.Len() != 1 {
		t.Fatalf("merged stores occupy %d entries, want 1", sb.Len())
	}
	if sb.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", sb.Coalesced)
	}
	e, _ := sb.at(s0), struct{}{}
	if e.Size != 16 {
		t.Fatalf("merged entry size = %d, want 16", e.Size)
	}
}

func TestCoalesceFullBlock(t *testing.T) {
	sb := NewCoalescing(4)
	for i := 0; i < 8; i++ {
		sb.Allocate(mem.Addr(0x200+i*8), 8, 0)
	}
	if sb.Len() != 1 {
		t.Fatalf("a full block of stores should occupy 1 entry, got %d", sb.Len())
	}
	if r := sb.Forward(0x200, 8, sb.TailSeq()); r != FullForward {
		t.Fatal("merged entry must forward any covered load")
	}
	if r := sb.Forward(0x238, 8, sb.TailSeq()); r != FullForward {
		t.Fatal("merged entry must cover its whole range")
	}
}

func TestCoalesceStopsAtBlockBoundary(t *testing.T) {
	sb := NewCoalescing(4)
	sb.Allocate(0x38, 8, 0) // last 8 bytes of block 0
	sb.Allocate(0x40, 8, 0) // first 8 bytes of block 1
	if sb.Len() != 2 {
		t.Fatalf("cross-block stores must not merge, got %d entries", sb.Len())
	}
}

func TestCoalesceSkipsSeniorEntries(t *testing.T) {
	sb := NewCoalescing(4)
	s0 := sb.Allocate(0x300, 8, 0)
	sb.Commit(s0)
	s1 := sb.Allocate(0x308, 8, 0)
	if s0 == s1 {
		t.Fatal("a committed (senior) entry must not absorb new stores (TSO)")
	}
}

func TestCoalesceSkipsNonContiguous(t *testing.T) {
	sb := NewCoalescing(4)
	sb.Allocate(0x400, 8, 0)
	sb.Allocate(0x410, 8, 0) // gap of 8 bytes
	if sb.Len() != 2 {
		t.Fatal("non-contiguous stores must not merge")
	}
}

func TestCoalescedCommitLifecycle(t *testing.T) {
	sb := NewCoalescing(4)
	s0 := sb.Allocate(0x500, 8, 0)
	s1 := sb.Allocate(0x508, 8, 0) // merged: s1 == s0
	sb.Commit(s0)
	sb.Commit(s1) // duplicate commit of the merged store: must be a no-op
	if sb.SeniorLen() != 1 {
		t.Fatalf("seniors = %d, want 1", sb.SeniorLen())
	}
	got := sb.Pop()
	if got.Size != 16 {
		t.Fatalf("popped size = %d, want 16", got.Size)
	}
	if !sb.Empty() {
		t.Fatal("buffer should drain")
	}
}

func TestPlainBufferNeverCoalesces(t *testing.T) {
	sb := New(4)
	sb.Allocate(0x600, 8, 0)
	sb.Allocate(0x608, 8, 0)
	if sb.Len() != 2 || sb.Coalesced != 0 {
		t.Fatal("plain buffer must not merge")
	}
}

func TestCoalesceStretchesEffectiveCapacity(t *testing.T) {
	// 4 entries of coalescing buffer hold 4 blocks = 32 8-byte stores.
	sb := NewCoalescing(4)
	for i := 0; i < 32; i++ {
		a := mem.Addr(0x1000 + i*8)
		if !sb.CanAccept(a, 8) {
			t.Fatalf("buffer rejected store %d, coalescing should stretch it", i)
		}
		sb.Allocate(a, 8, 0)
	}
	if sb.Len() != 4 {
		t.Fatalf("32 contiguous stores = 4 blocks = %d entries, want 4", sb.Len())
	}
}
