package storebuf

import (
	"testing"
	"testing/quick"

	"spb/internal/mem"
)

func TestAllocateCommitPopLifecycle(t *testing.T) {
	sb := New(4)
	if !sb.Empty() {
		t.Fatal("new buffer should be empty")
	}
	s0 := sb.Allocate(0x100, 8, 1)
	s1 := sb.Allocate(0x108, 8, 1)
	if sb.Len() != 2 || sb.SeniorLen() != 0 {
		t.Fatalf("len=%d seniors=%d, want 2/0", sb.Len(), sb.SeniorLen())
	}
	if _, ok := sb.Head(); ok {
		t.Fatal("no senior head before commit")
	}
	sb.Commit(s0)
	e, ok := sb.Head()
	if !ok || e.Addr != 0x100 {
		t.Fatal("head should be the first committed store")
	}
	got := sb.Pop()
	if got.Seq != s0 {
		t.Fatal("pop should return the first store")
	}
	sb.Commit(s1)
	if sb.Pop().Seq != s1 {
		t.Fatal("second pop should return the second store")
	}
	if !sb.Empty() {
		t.Fatal("buffer should drain empty")
	}
}

func TestFullBlocksAllocation(t *testing.T) {
	sb := New(2)
	sb.Allocate(0, 8, 0)
	sb.Allocate(8, 8, 0)
	if !sb.Full() {
		t.Fatal("buffer of 2 with 2 entries must be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("allocate on full buffer should panic")
		}
	}()
	sb.Allocate(16, 8, 0)
}

func TestCommitOutOfOrderPanics(t *testing.T) {
	sb := New(4)
	sb.Allocate(0, 8, 0)
	s1 := sb.Allocate(8, 8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order commit should panic (TSO)")
		}
	}()
	sb.Commit(s1)
}

func TestPopWithoutSeniorPanics(t *testing.T) {
	sb := New(4)
	sb.Allocate(0, 8, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("pop of junior store should panic")
		}
	}()
	sb.Pop()
}

func TestFIFODrainOrderIsProgramOrder(t *testing.T) {
	sb := New(8)
	var seqs []uint64
	for i := 0; i < 8; i++ {
		seqs = append(seqs, sb.Allocate(mem.Addr(i*8), 8, 0))
	}
	for _, s := range seqs {
		sb.Commit(s)
	}
	for i := 0; i < 8; i++ {
		e := sb.Pop()
		if e.Addr != mem.Addr(i*8) {
			t.Fatalf("pop %d returned addr %#x, want %#x (TSO order)", i, e.Addr, i*8)
		}
	}
}

func TestForwardFullCover(t *testing.T) {
	sb := New(4)
	sb.Allocate(0x100, 8, 0)
	if r := sb.Forward(0x100, 8, sb.TailSeq()); r != FullForward {
		t.Fatalf("exact match = %v, want FullForward", r)
	}
	if r := sb.Forward(0x104, 4, sb.TailSeq()); r != FullForward {
		t.Fatalf("contained load = %v, want FullForward", r)
	}
}

func TestForwardPartial(t *testing.T) {
	sb := New(4)
	sb.Allocate(0x100, 8, 0)
	if r := sb.Forward(0x104, 8, sb.TailSeq()); r != PartialForward {
		t.Fatalf("straddling load = %v, want PartialForward", r)
	}
}

func TestForwardMiss(t *testing.T) {
	sb := New(4)
	sb.Allocate(0x100, 8, 0)
	if r := sb.Forward(0x200, 8, sb.TailSeq()); r != NoForward {
		t.Fatalf("disjoint load = %v, want NoForward", r)
	}
}

func TestForwardYoungestWins(t *testing.T) {
	sb := New(4)
	sb.Allocate(0x100, 4, 0) // older, partial w.r.t. an 8B load
	sb.Allocate(0x100, 8, 0) // younger, full cover
	if r := sb.Forward(0x100, 8, sb.TailSeq()); r != FullForward {
		t.Fatalf("youngest-first search = %v, want FullForward", r)
	}
}

func TestForwardRespectsBeforeSeq(t *testing.T) {
	sb := New(4)
	s0 := sb.Allocate(0x100, 8, 0)
	// A load dispatched before the store (beforeSeq == s0) must not see it.
	if r := sb.Forward(0x100, 8, s0); r != NoForward {
		t.Fatalf("load older than store = %v, want NoForward", r)
	}
	sb.Allocate(0x200, 8, 0)
	// A load between the two sees only the first.
	if r := sb.Forward(0x200, 8, s0+1); r != NoForward {
		t.Fatalf("load older than 2nd store = %v, want NoForward", r)
	}
}

func TestForwardIgnoresDrainedStores(t *testing.T) {
	sb := New(4)
	s0 := sb.Allocate(0x100, 8, 0)
	sb.Commit(s0)
	sb.Pop()
	if r := sb.Forward(0x100, 8, sb.TailSeq()); r != NoForward {
		t.Fatalf("drained store must not forward, got %v", r)
	}
}

func TestSeniorsIteration(t *testing.T) {
	sb := New(8)
	for i := 0; i < 4; i++ {
		sb.Commit(sb.Allocate(mem.Addr(i*64), 8, 0))
	}
	sb.Allocate(0x1000, 8, 0) // junior, must not be visited
	var got []mem.Addr
	sb.Seniors(func(e *Entry) { got = append(got, e.Addr) })
	if len(got) != 4 {
		t.Fatalf("visited %d seniors, want 4", len(got))
	}
	for i, a := range got {
		if a != mem.Addr(i*64) {
			t.Fatal("seniors must iterate oldest-first")
		}
	}
}

func TestWrapAround(t *testing.T) {
	sb := New(2)
	for round := 0; round < 100; round++ {
		s := sb.Allocate(mem.Addr(round*8), 8, 0)
		sb.Commit(s)
		e := sb.Pop()
		if e.Addr != mem.Addr(round*8) {
			t.Fatalf("round %d: addr %#x", round, e.Addr)
		}
	}
	if sb.MaxOccupancy != 1 {
		t.Fatalf("MaxOccupancy = %d, want 1", sb.MaxOccupancy)
	}
}

func TestEntryBlock(t *testing.T) {
	e := Entry{Addr: 0x1047}
	if e.Block() != mem.BlockOf(0x1047) {
		t.Fatal("Entry.Block mismatch")
	}
}

// Property: occupancy never exceeds capacity and Len is consistent with the
// allocate/pop history under random valid operation sequences.
func TestOccupancyInvariant(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		sb := New(capacity)
		committed := uint64(0)
		allocated := 0
		popped := 0
		for _, alloc := range ops {
			if alloc && !sb.Full() {
				seq := sb.Allocate(mem.Addr(allocated*8), 8, 0)
				if seq != uint64(allocated) {
					return false
				}
				allocated++
			} else if !alloc {
				if committed < uint64(allocated) {
					sb.Commit(committed)
					committed++
				}
				if _, ok := sb.Head(); ok {
					sb.Pop()
					popped++
				}
			}
			if sb.Len() > capacity || sb.Len() != allocated-popped {
				return false
			}
			if sb.MaxOccupancy > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
