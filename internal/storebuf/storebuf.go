// Package storebuf implements the store queue / store buffer at the heart of
// the paper: a unified ring of stores that allocate an entry at dispatch
// (a full buffer blocks dispatch — the SB-induced stall the paper measures),
// become senior at commit, and drain to the L1 in strict program order (TSO
// store→store ordering). Loads forward from the youngest older matching
// store, searching associatively exactly like the CAM the paper says limits
// SB scaling.
package storebuf

import (
	"fmt"

	"spb/internal/mem"
)

// Entry is one store in the buffer.
type Entry struct {
	Addr mem.Addr
	PC   uint64
	Seq  uint64 // program-order sequence number, assigned at allocation
	Size uint8
	// Senior marks a committed store: it is now part of the architectural
	// store buffer and must be written to memory.
	Senior bool
}

// Block returns the cache block the store writes.
func (e *Entry) Block() mem.Block { return mem.BlockOf(e.Addr) }

// ForwardResult is the outcome of a load's associative search.
type ForwardResult int

const (
	// NoForward: no older store overlaps the load; it accesses the cache.
	NoForward ForwardResult = iota
	// FullForward: a single older store fully covers the load; the value
	// is bypassed inside the core at register latency.
	FullForward
	// PartialForward: older stores overlap but do not cover the load. Real
	// hardware stalls the load until the stores drain; the core charges a
	// fixed penalty and then reads the cache.
	PartialForward
)

// StoreBuffer is a bounded FIFO of stores in program order.
type StoreBuffer struct {
	entries  []Entry
	capacity int

	headSeq uint64 // sequence number of the oldest entry still present
	tailSeq uint64 // sequence number the next allocation receives
	seniors int

	// coalesce enables merging a new store into the youngest junior entry
	// when both fall in one cache block and form a contiguous byte range —
	// the related-work alternative (Ros & Kaxiras, ISCA'18) of coalescing
	// stores to stretch a small SB.
	coalesce bool

	// MaxOccupancy tracks the high-water mark, for reporting.
	MaxOccupancy int
	// Coalesced counts stores merged into an existing entry.
	Coalesced uint64

	// blockCnt counts buffered stores per hashed cache block. Forward
	// consults it first: a load whose blocks have zero counts cannot overlap
	// any buffered store (overlap implies a shared byte, hence a shared
	// block), so the associative scan is skipped entirely. Collisions only
	// cause a redundant scan, never a wrong answer.
	blockCnt [sbFilterSize]uint16
}

const (
	sbFilterSize = 512 // power of two, > the largest SB capacity
	sbFilterMask = sbFilterSize - 1
)

// noteBlocks adjusts the per-block counts for a store occupying
// [addr, addr+size); delta is +1 on allocate, -1 on pop. A store may
// straddle a block boundary, in which case both blocks are counted.
func (sb *StoreBuffer) noteBlocks(addr mem.Addr, size uint8, delta int) {
	b0 := mem.BlockOf(addr)
	b1 := mem.BlockOf(addr + mem.Addr(size) - 1)
	sb.blockCnt[uint64(b0)&sbFilterMask] += uint16(delta)
	if b1 != b0 {
		sb.blockCnt[uint64(b1)&sbFilterMask] += uint16(delta)
	}
}

// New returns an empty store buffer with the given number of entries.
func New(capacity int) *StoreBuffer {
	if capacity <= 0 {
		panic("storebuf: capacity must be positive")
	}
	return &StoreBuffer{
		entries:  newRing(capacity),
		capacity: capacity,
	}
}

// NewCoalescing returns a store buffer that merges contiguous same-block
// junior stores into one entry (the related-work coalescing ablation).
func NewCoalescing(capacity int) *StoreBuffer {
	sb := New(capacity)
	sb.coalesce = true
	return sb
}

// Capacity returns the configured entry count.
func (sb *StoreBuffer) Capacity() int { return sb.capacity }

// Len returns the number of occupied entries (junior + senior).
func (sb *StoreBuffer) Len() int { return int(sb.tailSeq - sb.headSeq) }

// SeniorLen returns the number of committed, unperformed stores.
func (sb *StoreBuffer) SeniorLen() int { return sb.seniors }

// Full reports whether a new store can be allocated. A full buffer at
// dispatch is precisely an SB-induced stall.
func (sb *StoreBuffer) Full() bool { return sb.Len() >= sb.capacity }

// Empty reports whether no stores are buffered.
func (sb *StoreBuffer) Empty() bool { return sb.Len() == 0 }

// CanAccept reports whether a store of size bytes at addr can enter the
// buffer right now: either a slot is free, or (with coalescing) it would
// merge into the youngest junior entry.
func (sb *StoreBuffer) CanAccept(addr mem.Addr, size uint8) bool {
	if !sb.Full() {
		return true
	}
	return sb.coalesce && sb.wouldMerge(addr, size)
}

// wouldMerge reports whether the store would coalesce into the youngest
// junior entry.
func (sb *StoreBuffer) wouldMerge(addr mem.Addr, size uint8) bool {
	if sb.Len() == 0 {
		return false
	}
	y := sb.at(sb.tailSeq - 1)
	return !y.Senior &&
		mem.Addr(uint64(y.Addr)+uint64(y.Size)) == addr &&
		mem.BlockOf(y.Addr) == mem.BlockOf(addr+mem.Addr(size)-1)
}

func (sb *StoreBuffer) at(seq uint64) *Entry {
	return &sb.entries[seq%uint64(len(sb.entries))]
}

// Allocate inserts a junior store at the tail and returns its sequence
// number. With coalescing enabled, a store contiguous with the youngest
// junior entry in the same cache block merges into it instead (returning
// that entry's sequence number) and consumes no new slot; callers must
// still check Full first, as merging is opportunistic.
func (sb *StoreBuffer) Allocate(addr mem.Addr, size uint8, pc uint64) uint64 {
	if sb.coalesce && sb.wouldMerge(addr, size) {
		y := sb.at(sb.tailSeq - 1)
		y.Size += size
		sb.Coalesced++
		return y.Seq
	}
	if sb.Full() {
		panic("storebuf: allocate on full buffer")
	}
	seq := sb.tailSeq
	*sb.at(seq) = Entry{Addr: addr, Size: size, PC: pc, Seq: seq}
	sb.noteBlocks(addr, size, 1)
	sb.tailSeq++
	if n := sb.Len(); n > sb.MaxOccupancy {
		sb.MaxOccupancy = n
	}
	return seq
}

// Commit marks the oldest junior store senior. Stores commit in program
// order, so the commit boundary advances monotonically; seq is validated to
// catch pipeline bookkeeping bugs.
func (sb *StoreBuffer) Commit(seq uint64) {
	expect := sb.headSeq + uint64(sb.seniors)
	if seq+1 == expect && sb.coalesce {
		// A store merged into an already-committed entry: nothing to do.
		return
	}
	if seq != expect {
		panic(fmt.Sprintf("storebuf: commit of seq %d out of order (expect %d)", seq, expect))
	}
	if seq >= sb.tailSeq {
		panic("storebuf: commit of unallocated entry")
	}
	sb.at(seq).Senior = true
	sb.seniors++
}

// Head returns the oldest store if it is senior (eligible to perform).
func (sb *StoreBuffer) Head() (*Entry, bool) {
	if sb.seniors == 0 {
		return nil, false
	}
	return sb.at(sb.headSeq), true
}

// Pop removes the performed head store and returns it.
func (sb *StoreBuffer) Pop() Entry {
	e, ok := sb.Head()
	if !ok {
		panic("storebuf: pop without a senior head")
	}
	out := *e
	sb.noteBlocks(out.Addr, out.Size, -1)
	sb.headSeq++
	sb.seniors--
	return out
}

// Forward performs the load's associative search: among stores older than
// beforeSeq (the SQ tail captured when the load dispatched), youngest first,
// find one overlapping [addr, addr+size). A single fully covering store
// forwards; any overlap without cover is a partial forward.
func (sb *StoreBuffer) Forward(addr mem.Addr, size uint8, beforeSeq uint64) ForwardResult {
	if sb.headSeq == sb.tailSeq {
		return NoForward // empty buffer: skip even the filter hashing
	}
	if beforeSeq > sb.tailSeq {
		beforeSeq = sb.tailSeq
	}
	// Block filter: if no buffered store touches any block of the load,
	// there is nothing to search.
	b0 := mem.BlockOf(addr)
	b1 := mem.BlockOf(addr + mem.Addr(size) - 1)
	if sb.blockCnt[uint64(b0)&sbFilterMask] == 0 &&
		(b1 == b0 || sb.blockCnt[uint64(b1)&sbFilterMask] == 0) {
		return NoForward
	}
	// Walk the ring index directly instead of recomputing seq%capacity per
	// entry — the modulo is a hardware divide (capacity is not a power of
	// two) and this CAM search runs for every load dispatched.
	n := uint64(len(sb.entries))
	i := beforeSeq % n
	for seq := beforeSeq; seq > sb.headSeq; {
		seq--
		if i == 0 {
			i = n
		}
		i--
		e := &sb.entries[i]
		if !mem.Overlaps(e.Addr, uint64(e.Size), addr, uint64(size)) {
			continue
		}
		if mem.Contains(e.Addr, uint64(e.Size), addr, uint64(size)) {
			return FullForward
		}
		return PartialForward
	}
	return NoForward
}

// Seniors iterates over the committed stores oldest-first, calling fn for
// each; used by the Ideal policy, which prefetches every senior block in
// parallel, and by invariant checks.
func (sb *StoreBuffer) Seniors(fn func(*Entry)) {
	for i := 0; i < sb.seniors; i++ {
		fn(sb.at(sb.headSeq + uint64(i)))
	}
}

// TailSeq returns the sequence number the next allocation will receive;
// loads capture it at dispatch for Forward.
func (sb *StoreBuffer) TailSeq() uint64 { return sb.tailSeq }
