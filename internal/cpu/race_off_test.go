//go:build !race

package cpu

const raceEnabled = false
