package cpu

import (
	"bytes"
	"encoding/gob"

	"spb/internal/bpred"
	"spb/internal/core"
	"spb/internal/mem"
	"spb/internal/storebuf"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// Gob wire form of a core Snapshot (crash-safe checkpoints, DESIGN.md §15).
// The nested store-buffer, detector, TLB and predictor snapshots carry their
// own gob forms; the RNG travels as its raw xorshift state.

type robEntryWire struct {
	Kind   trace.Kind
	Size   uint8
	Addr   mem.Addr
	PC     uint64
	DoneAt uint64
	SBSeq  uint64
}

type occWire struct {
	Buckets []uint16
	Cursor  uint64
	Count   int
	Far     []uint64
}

func occToWire(s occSnapshot) occWire {
	return occWire{Buckets: s.buckets, Cursor: s.cursor, Count: s.count, Far: s.far}
}

func occFromWire(w occWire) occSnapshot {
	return occSnapshot{buckets: w.Buckets, cursor: w.Cursor, count: w.Count, far: w.Far}
}

type snapshotWire struct {
	Cycle uint64

	FetchReadyAt uint64
	Pending      trace.Inst
	HavePending  bool
	TraceDone    bool

	ROB      []robEntryWire
	ROBHead  int
	ROBTail  int
	ROBCount int

	DoneHist [256]uint64
	Seq      uint64

	IQ, LQ occWire

	HeadAcquired bool
	HeadSeq      uint64
	HeadReadyAt  uint64
	HeadRetries  int

	Idle bool

	LastLoadAddr  mem.Addr
	LastStoreAddr mem.Addr

	RNGState uint64
	St       Stats

	SB   *storebuf.Snapshot
	Det  core.DetectorSnapshot
	Has  bool
	DTLB *tlb.Snapshot
	BP   *bpred.Snapshot
}

// GobEncode implements gob.GobEncoder.
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Cycle:        s.cycle,
		FetchReadyAt: s.fetchReadyAt,
		Pending:      s.pending,
		HavePending:  s.havePending,
		TraceDone:    s.traceDone,
		ROB:          make([]robEntryWire, len(s.rob)),
		ROBHead:      s.robHead,
		ROBTail:      s.robTail,
		ROBCount:     s.robCount,
		DoneHist:     s.doneHist,
		Seq:          s.seq,
		IQ:           occToWire(s.iq),
		LQ:           occToWire(s.lq),
		HeadAcquired: s.headAcquired,
		HeadSeq:      s.headSeq,
		HeadReadyAt:  s.headReadyAt,
		HeadRetries:  s.headRetries,
		Idle:         s.idle,
		LastLoadAddr: s.lastLoadAddr, LastStoreAddr: s.lastStoreAddr,
		RNGState: s.rng.State(),
		St:       s.st,
		SB:       s.sb,
		Det:      s.det,
		Has:      s.has,
		DTLB:     s.dtlb,
		BP:       s.bp,
	}
	for i, e := range s.rob {
		w.ROB[i] = robEntryWire{Kind: e.kind, Size: e.size, Addr: e.addr, PC: e.pc, DoneAt: e.doneAt, SBSeq: e.sbSeq}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.cycle = w.Cycle
	s.fetchReadyAt = w.FetchReadyAt
	s.pending = w.Pending
	s.havePending = w.HavePending
	s.traceDone = w.TraceDone
	s.rob = make([]robEntry, len(w.ROB))
	for i, e := range w.ROB {
		s.rob[i] = robEntry{kind: e.Kind, size: e.Size, addr: e.Addr, pc: e.PC, doneAt: e.DoneAt, sbSeq: e.SBSeq}
	}
	s.robHead = w.ROBHead
	s.robTail = w.ROBTail
	s.robCount = w.ROBCount
	s.doneHist = w.DoneHist
	s.seq = w.Seq
	s.iq = occFromWire(w.IQ)
	s.lq = occFromWire(w.LQ)
	s.headAcquired = w.HeadAcquired
	s.headSeq = w.HeadSeq
	s.headReadyAt = w.HeadReadyAt
	s.headRetries = w.HeadRetries
	s.idle = w.Idle
	s.lastLoadAddr = w.LastLoadAddr
	s.lastStoreAddr = w.LastStoreAddr
	s.rng.SetState(w.RNGState)
	s.st = w.St
	s.sb = w.SB
	s.det = w.Det
	s.has = w.Has
	s.dtlb = w.DTLB
	s.bp = w.BP
	return nil
}
