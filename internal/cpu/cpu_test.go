package cpu

import (
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/mem"
	"spb/internal/memsys"
	"spb/internal/trace"
)

// build constructs a single-core machine with the given policy and SB size.
func build(policy core.Policy, sq int, reader trace.Reader) *Core {
	m := config.Skylake().WithSQ(sq)
	sys := memsys.New(m, 1)
	return New(m.Core, policy, m.SPB, sys.Port(0), reader, 7)
}

func alus(n int, dep uint8) []trace.Inst {
	out := make([]trace.Inst, n)
	for i := range out {
		out[i] = trace.Inst{Kind: trace.KindIntALU, Dep1: dep, PC: trace.PCApp}
	}
	return out
}

func TestIndependentALUNearWidthIPC(t *testing.T) {
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader(alus(4000, 0)))
	if err := c.Run(4000); err != nil {
		t.Fatal(err)
	}
	if ipc := c.St.IPC(); ipc < 3.0 {
		t.Fatalf("independent ALU IPC = %.2f, want near the width of 4", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader(alus(4000, 1)))
	if err := c.Run(4000); err != nil {
		t.Fatal(err)
	}
	if ipc := c.St.IPC(); ipc > 1.2 {
		t.Fatalf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

func memsetTrace(pages int) trace.Reader {
	reg := trace.NewMemRegion(0x10000000, uint64(pages)*mem.PageSize)
	return trace.MemsetBurst(reg, uint64(pages)*mem.PageSize, 8, trace.PCLib)()
}

func TestStoreBurstFillsSmallSB(t *testing.T) {
	c := build(core.PolicyNone, 14, memsetTrace(4))
	if err := c.Run(2048); err != nil {
		t.Fatal(err)
	}
	if c.St.SBStallCycles == 0 {
		t.Fatal("a cold memset through a 14-entry SB must stall on the SB")
	}
	if c.St.SBStallLib == 0 {
		t.Fatal("stalls should be attributed to the library store PC")
	}
	if c.St.SBStallKernel != 0 {
		t.Fatal("no kernel stores in this trace")
	}
}

func TestSPBTriggersOnMemset(t *testing.T) {
	c := build(core.PolicySPB, 14, memsetTrace(4))
	if err := c.Run(2048); err != nil {
		t.Fatal(err)
	}
	if c.St.SPBBursts == 0 {
		t.Fatal("SPB must detect the contiguous store pattern")
	}
	if c.Detector().Triggers == 0 {
		t.Fatal("detector trigger count should be positive")
	}
}

func TestSPBBeatsAtCommitOnStoreBurst(t *testing.T) {
	run := func(p core.Policy) uint64 {
		c := build(p, 14, memsetTrace(16))
		if err := c.Run(8192); err != nil {
			t.Fatal(err)
		}
		return c.St.Cycles
	}
	atCommit := run(core.PolicyAtCommit)
	spb := run(core.PolicySPB)
	if spb >= atCommit {
		t.Fatalf("SPB (%d cycles) should beat at-commit (%d) on a memset burst", spb, atCommit)
	}
}

func TestAtCommitBeatsNoPrefetch(t *testing.T) {
	run := func(p core.Policy) uint64 {
		c := build(p, 14, memsetTrace(8))
		if err := c.Run(4096); err != nil {
			t.Fatal(err)
		}
		return c.St.Cycles
	}
	none := run(core.PolicyNone)
	atCommit := run(core.PolicyAtCommit)
	if atCommit >= none {
		t.Fatalf("at-commit (%d cycles) should beat no prefetch (%d)", atCommit, none)
	}
}

func TestIdealUsesLargeSB(t *testing.T) {
	c := build(core.PolicyIdeal, 14, memsetTrace(2))
	if c.SB().Capacity() != config.IdealSQSize {
		t.Fatalf("ideal SB capacity = %d, want %d", c.SB().Capacity(), config.IdealSQSize)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	insts := []trace.Inst{
		{Kind: trace.KindStore, Addr: 0x5000, Size: 8, PC: trace.PCApp},
		{Kind: trace.KindLoad, Addr: 0x5000, Size: 8, PC: trace.PCApp + 4},
	}
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader(insts))
	if err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	if c.St.ForwardedLoads != 1 {
		t.Fatalf("ForwardedLoads = %d, want 1", c.St.ForwardedLoads)
	}
}

func TestPartialForwardCounted(t *testing.T) {
	insts := []trace.Inst{
		{Kind: trace.KindStore, Addr: 0x5000, Size: 4, PC: trace.PCApp},
		{Kind: trace.KindLoad, Addr: 0x5000, Size: 8, PC: trace.PCApp + 4},
	}
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader(insts))
	if err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	if c.St.PartialForwards != 1 {
		t.Fatalf("PartialForwards = %d, want 1", c.St.PartialForwards)
	}
}

func TestMispredictStallsAndWrongPath(t *testing.T) {
	var insts []trace.Inst
	for i := 0; i < 400; i++ {
		insts = append(insts, trace.Inst{Kind: trace.KindIntALU, PC: trace.PCApp})
		insts = append(insts, trace.Inst{
			Kind: trace.KindBranch, Dep1: 1, Mispredicted: i%4 == 0, PC: trace.PCApp + 4,
		})
	}
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader(insts))
	if err := c.Run(uint64(len(insts))); err != nil {
		t.Fatal(err)
	}
	if c.St.Mispredicts == 0 || c.St.FrontendStallCycles == 0 {
		t.Fatalf("mispredicts=%d frontendStalls=%d, want both > 0",
			c.St.Mispredicts, c.St.FrontendStallCycles)
	}
	if c.St.WrongPathInsts == 0 {
		t.Fatal("wrong-path instructions should be synthesized")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Core {
		rng := trace.NewRNG(trace.SeedFromString("det"))
		reg := trace.NewMemRegion(0x20000000, 1<<22)
		f := trace.Mix(rng, 1000,
			trace.Weighted{Weight: 2, Fragment: trace.MemsetBurst(reg, 4096, 8, trace.PCLib)},
			trace.Weighted{Weight: 3, Fragment: trace.Compute(rng, trace.ComputeOptions{
				Count: 100, BrFrac: 0.2, MissRate: 0.05, PC: trace.PCApp})},
		)
		return build(core.PolicySPB, 28, trace.Limit(20000, trace.Forever(f)()))
	}
	a, b := mk(), mk()
	if err := a.Run(20000); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(20000); err != nil {
		t.Fatal(err)
	}
	if a.St != b.St {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a.St, b.St)
	}
}

func TestDoneAfterDrain(t *testing.T) {
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader([]trace.Inst{
		{Kind: trace.KindStore, Addr: 0x100, Size: 8, PC: trace.PCApp},
	}))
	if err := c.Run(1); err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		c.Tick()
	}
	if !c.SB().Empty() {
		t.Fatal("SB must drain before Done")
	}
	if c.St.Committed != 1 || c.St.StoresPerformed != 1 {
		t.Fatalf("committed=%d performed=%d, want 1/1", c.St.Committed, c.St.StoresPerformed)
	}
}

func TestCommitRespectsWidth(t *testing.T) {
	c := build(core.PolicyAtCommit, 56, trace.NewSliceReader(alus(400, 0)))
	prev := uint64(0)
	for !c.Done() {
		c.Tick()
		if d := c.St.Committed - prev; d > uint64(c.cfg.Width) {
			t.Fatalf("committed %d instructions in one cycle, width is %d", d, c.cfg.Width)
		}
		prev = c.St.Committed
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{SBStallCycles: 3, ROBStallCycles: 1, IQStallCycles: 2, LQStallCycles: 4,
		Committed: 100, Cycles: 50}
	if s.OtherStallCycles() != 7 {
		t.Fatalf("OtherStallCycles = %d, want 7", s.OtherStallCycles())
	}
	if s.IssueStallCycles() != 10 {
		t.Fatalf("IssueStallCycles = %d, want 10", s.IssueStallCycles())
	}
	if s.IPC() != 2.0 {
		t.Fatalf("IPC = %v, want 2", s.IPC())
	}
	if (&Stats{}).IPC() != 0 {
		t.Fatal("IPC of empty stats should be 0")
	}
}

func TestAtExecutePrefetchesSpeculatively(t *testing.T) {
	m := config.Skylake().WithSQ(14)
	sys := memsys.New(m, 1)
	reg := trace.NewMemRegion(0x30000000, 1<<20)
	r := trace.MemsetBurst(reg, 2048, 8, trace.PCLib)()
	c := New(m.Core, core.PolicyAtExecute, m.SPB, sys.Port(0), r, 7)
	if err := c.Run(256); err != nil {
		t.Fatal(err)
	}
	if sys.Port(0).SPFIssued == 0 {
		t.Fatal("at-execute must issue ownership prefetches")
	}
}

func TestRunLivelockGuard(t *testing.T) {
	// A healthy trace must not trip the guard.
	c := build(core.PolicyAtCommit, 14, memsetTrace(1))
	if err := c.Run(512); err != nil {
		t.Fatalf("unexpected livelock: %v", err)
	}
}

func TestOccHeap(t *testing.T) {
	var h occHeap
	h.add(10)
	h.add(5)
	h.add(20)
	if n := h.occupancy(4); n != 3 {
		t.Fatalf("occupancy(4) = %d, want 3", n)
	}
	if n := h.occupancy(10); n != 1 {
		t.Fatalf("occupancy(10) = %d, want 1", n)
	}
	if n := h.occupancy(100); n != 0 {
		t.Fatalf("occupancy(100) = %d, want 0", n)
	}
}
