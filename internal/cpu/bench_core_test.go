package cpu

import (
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/mem"
	"spb/internal/memsys"
	"spb/internal/trace"
	"spb/internal/workloads"
)

// The BenchmarkCoreTick family measures the steady-state cost of one core
// cycle (the simulator's innermost loop) under contrasting workloads. The
// bench target (scripts/bench.sh) records their results in BENCH_core.json
// so per-cycle cost is tracked across changes.

// warmTicks runs the core past its cold-start transient (cache fills,
// ring/heap growth) so the timed region exercises only the steady state.
const warmTicks = 50_000

func benchTicks(b *testing.B, c *Core) {
	b.Helper()
	for i := 0; i < warmTicks; i++ {
		c.Tick()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
}

// foreverMemset is an endless memset burst over a small wrapping region:
// maximal SB pressure, stable working set.
func foreverMemset(pages int) trace.Reader {
	reg := trace.NewMemRegion(0x1000_0000, uint64(pages)*mem.PageSize)
	return trace.Forever(trace.MemsetBurst(reg, uint64(pages)*mem.PageSize, 8, trace.PCLib))()
}

func BenchmarkCoreTick(b *testing.B) {
	b.Run("memset-none-sq14", func(b *testing.B) {
		benchTicks(b, build(core.PolicyNone, 14, foreverMemset(4)))
	})
	b.Run("memset-spb-sq28", func(b *testing.B) {
		benchTicks(b, build(core.PolicySPB, 28, foreverMemset(4)))
	})
	b.Run("alu-chain", func(b *testing.B) {
		benchTicks(b, build(core.PolicyAtCommit, 56,
			trace.Forever(trace.Compute(trace.NewRNG(3), trace.ComputeOptions{
				Count: 512, MulFrac: 0.15, DivFrac: 0.02, DepFrac: 0.5,
				BrFrac: 0.18, MissRate: 0.03, PC: trace.PCApp,
			}))()))
	})
	b.Run("roms-spb-sq28", func(b *testing.B) {
		w, err := workloads.SPECByName("roms")
		if err != nil {
			b.Fatal(err)
		}
		benchTicks(b, build(core.PolicySPB, 28, w.Build(7)))
	})
}

// BenchmarkCoreTickRun measures whole short runs (Run includes the
// event-horizon fast-forward path that a bare Tick loop never takes). Each
// iteration releases its machine back to the arena pools, so the steady
// state measures what a sweep pays per point — recycled ROB/cache/table
// arenas, not fresh ones.
func BenchmarkCoreTickRun(b *testing.B) {
	w, err := workloads.SPECByName("roms")
	if err != nil {
		b.Fatal(err)
	}
	m := config.Skylake().WithSQ(28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := memsys.New(m, 1)
		c := New(m.Core, core.PolicySPB, m.SPB, sys.Port(0), trace.Limit(20_000, w.Build(uint64(i))), 7)
		if err := c.Run(20_000); err != nil {
			b.Fatal(err)
		}
		c.Release()
		sys.Release()
	}
}

// TestRunArenaReuseBoundsAllocs tightens the whole-run allocation budget:
// with every pooled structure (ROB, issue/load queues, SB, TLB, predictor
// tables, cache arenas, directory shards, recent-sets) recycled via Release,
// a complete build+run+release cycle must stay far below the ~100 allocs /
// ~16 MB a cold machine costs.
func TestRunArenaReuseBoundsAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	w, err := workloads.SPECByName("roms")
	if err != nil {
		t.Fatal(err)
	}
	m := config.Skylake().WithSQ(28)
	cycle := func(seed uint64) {
		sys := memsys.New(m, 1)
		c := New(m.Core, core.PolicySPB, m.SPB, sys.Port(0), trace.Limit(20_000, w.Build(seed)), 7)
		if err := c.Run(20_000); err != nil {
			t.Fatal(err)
		}
		c.Release()
		sys.Release()
	}
	cycle(1) // prime the pools
	var seed uint64 = 2
	avg := testing.AllocsPerRun(10, func() {
		cycle(seed)
		seed++
	})
	if avg > 70 {
		t.Fatalf("build+run+release allocates %.1f per cycle, want ≤ 70 (arena reuse broken?)", avg)
	}
}

// TestCoreSteadyStateZeroAllocs guards the tentpole's allocation-free claim:
// once warm, ticking the core (dispatch, SB drain, cache fills, directory
// updates, occupancy tracking) allocates nothing per simulated instruction.
func TestCoreSteadyStateZeroAllocs(t *testing.T) {
	c := build(core.PolicySPB, 28, foreverMemset(4))
	for i := 0; i < 200_000; i++ {
		c.Tick()
	}
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1_000; i++ {
			c.Tick()
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state core loop allocates: %.2f allocs per 1000 ticks", avg)
	}
}
