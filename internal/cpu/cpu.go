// Package cpu models the out-of-order core of Table I: a trace-driven
// pipeline with dispatch/commit width, ROB/IQ/LQ occupancy limits, a unified
// store queue that blocks dispatch when full (the SB-induced stall the paper
// measures), dependency- and memory-latency-driven completion times, branch
// misprediction with wrong-path memory traffic, and the commit-stage hooks
// where the store-prefetch policies (at-execute, at-commit, SPB, ideal) act.
//
// The model is deliberately not microarchitecturally exact — it is the
// substrate substitution documented in DESIGN.md — but every mechanism the
// paper's figures measure is present and interacts the way the paper
// describes: stores serialize on ownership misses, the SB fills and stalls
// dispatch, prefetch policies hide (or fail to hide) the ownership latency,
// and faster branch-feeding loads shrink wrong-path work.
package cpu

import (
	"context"
	"fmt"
	"math"
	"slices"

	"spb/internal/bpred"
	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/mem"
	"spb/internal/memsys"
	"spb/internal/storebuf"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// partialForwardPenalty is the extra latency of a load that overlaps an SB
// store without being covered by it.
const partialForwardPenalty = 8

// btbMissBubble is the front-end redirect delay when a branch misses in the
// BTB (modelled predictor only).
const btbMissBubble = 2

// maxHeadRetries bounds how often the SB-head store re-requests ownership
// after losing it to a remote steal before the forward-progress guarantee
// retires it by force.
const maxHeadRetries = 8

// Caps on synthesized wrong-path memory traffic per misprediction, bounding
// simulation cost while preserving the proportionality to wrong-path span.
const (
	maxWrongPathLoads    = 16
	maxWrongPathStorePFs = 4
)

// robEntry is one in-flight instruction.
type robEntry struct {
	kind   trace.Kind
	size   uint8
	addr   mem.Addr
	pc     uint64
	doneAt uint64
	sbSeq  uint64
}

// Stats aggregates the per-core counters the figures are built from.
type Stats struct {
	Cycles    uint64
	Committed uint64

	Loads          uint64
	Stores         uint64
	Branches       uint64
	Mispredicts    uint64
	WrongPathInsts uint64

	ForwardedLoads  uint64
	PartialForwards uint64

	// Issue-stall accounting: cycles in which nothing dispatched, by cause.
	SBStallCycles       uint64 // store queue (SB) full — the paper's metric
	ROBStallCycles      uint64
	IQStallCycles       uint64
	LQStallCycles       uint64
	FrontendStallCycles uint64 // mispredict redirect refill

	// SB stalls attributed to the code region of the store blocking the SB
	// head (Fig. 3).
	SBStallApp    uint64
	SBStallLib    uint64
	SBStallKernel uint64

	// ExecStallL1DPending counts zero-dispatch cycles with at least one L1D
	// miss outstanding (the Top-Down metric of Figs. 14/15).
	ExecStallL1DPending uint64

	StoresPerformed uint64
	SPBBursts       uint64
}

// OtherStallCycles returns the non-SB resource stalls (Fig. 10's "Other").
func (s *Stats) OtherStallCycles() uint64 {
	return s.ROBStallCycles + s.IQStallCycles + s.LQStallCycles
}

// IssueStallCycles returns all resource-induced zero-dispatch cycles.
func (s *Stats) IssueStallCycles() uint64 {
	return s.SBStallCycles + s.OtherStallCycles()
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Core is one simulated out-of-order core.
type Core struct {
	cfg    config.CoreConfig
	policy core.Policy
	port   *memsys.Port
	sb     *storebuf.StoreBuffer
	det    *core.Detector
	dtlb   *tlb.TLB
	bp     *bpred.Predictor
	reader trace.Reader
	rng    *trace.RNG

	cycle uint64

	// Frontend.
	fetchReadyAt uint64
	pending      trace.Inst
	havePending  bool
	traceDone    bool

	// ROB ring buffer.
	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	// doneHist maps recent instruction sequence numbers to completion
	// cycles for register-dependency resolution.
	doneHist [256]uint64
	seq      uint64

	// Occupancy trackers for IQ and LQ.
	iq occHeap
	lq occHeap

	// SB-head ownership-request state.
	headAcquired bool
	headSeq      uint64
	headReadyAt  uint64
	headRetries  int

	// noFF disables the event-horizon fast forward in Run.
	noFF bool
	// idle records whether the last Tick committed, performed or dispatched
	// nothing. Only such ticks can start a dead span, so Run (and the
	// multi-core lock-step loop) consult NextEventCycle only after them,
	// keeping the fast forward free on busy cycles.
	idle bool

	// Recent addresses for wrong-path traffic synthesis.
	lastLoadAddr  mem.Addr
	lastStoreAddr mem.Addr

	St Stats
}

// Options selects the optional extensions of a core: the related-work
// store-coalescing SB, and the SPB detector's backward/cross-page burst
// variants (see core.Options). The zero value is the paper's configuration.
type Options struct {
	// CoalesceSB merges contiguous same-block junior stores into one SB
	// entry (Ros & Kaxiras-style coalescing, §VII.B of the paper).
	CoalesceSB bool
	// BackwardBursts enables descending-pattern bursts (§IV.A).
	BackwardBursts bool
	// CrossPageBursts lets bursts continue into the next page (footnote 2).
	CrossPageBursts bool
	// UseBranchPredictor replaces the trace's statistical mispredict flags
	// with a modelled gshare + BTB front end (Table I's predictor class).
	UseBranchPredictor bool
	// DisableFastForward forces Run into the cycle-by-cycle reference loop
	// instead of skipping provably dead cycles (see NextEventCycle). The two
	// modes produce bit-identical statistics; the knob exists for the
	// equivalence test and for debugging.
	DisableFastForward bool
	// StartCycle sets the core clock's initial value. The memory system
	// stamps lines, MSHRs and queues with absolute cycle numbers, so when a
	// sampled run executes successive detailed segments against one
	// persistent hierarchy, each segment's cores must continue the previous
	// segment's cycle domain: a core restarting at zero would read every
	// in-flight timestamp the last segment left behind as lying up to a
	// whole segment in the future and stall on state that in reality
	// settled during the functional gap.
	StartCycle uint64
}

// New builds a core running the given policy over the instruction stream.
// For PolicyIdeal the configured SQ size is overridden with the
// never-stalling 1024-entry buffer of the paper.
func New(cfg config.CoreConfig, policy core.Policy, spbCfg config.SPBConfig,
	port *memsys.Port, reader trace.Reader, seed uint64) *Core {
	return NewWithOptions(cfg, policy, spbCfg,
		config.TLBConfig{Entries: 128, Ways: 8, WalkLat: 30}, Options{},
		port, reader, seed)
}

// NewWithTLB builds a core with an explicit data-TLB configuration.
func NewWithTLB(cfg config.CoreConfig, policy core.Policy, spbCfg config.SPBConfig,
	tlbCfg config.TLBConfig, port *memsys.Port, reader trace.Reader, seed uint64) *Core {
	return NewWithOptions(cfg, policy, spbCfg, tlbCfg, Options{}, port, reader, seed)
}

// NewWithOptions builds a core with explicit TLB configuration and
// extension options.
func NewWithOptions(cfg config.CoreConfig, policy core.Policy, spbCfg config.SPBConfig,
	tlbCfg config.TLBConfig, opts Options, port *memsys.Port, reader trace.Reader, seed uint64) *Core {
	sqSize := cfg.SQSize
	if policy == core.PolicyIdeal {
		sqSize = config.IdealSQSize
	}
	sb := storebuf.New(sqSize)
	if opts.CoalesceSB {
		sb = storebuf.NewCoalescing(sqSize)
	}
	c := &Core{
		cfg:    cfg,
		policy: policy,
		port:   port,
		sb:     sb,
		dtlb:   tlb.New(tlb.Config{Entries: tlbCfg.Entries, Ways: tlbCfg.Ways, WalkLat: tlbCfg.WalkLat}),
		reader: reader,
		rng:    trace.NewRNG(seed),
		rob:    newROB(cfg.ROBSize),
	}
	if policy == core.PolicySPB {
		c.det = core.NewDetectorWithOptions(spbCfg.WindowN, core.Options{
			Dynamic:   spbCfg.DynamicSize,
			Backward:  opts.BackwardBursts,
			CrossPage: opts.CrossPageBursts,
		})
	}
	if opts.UseBranchPredictor {
		c.bp = bpred.New(bpred.TableI())
	}
	c.noFF = opts.DisableFastForward
	c.cycle = opts.StartCycle
	c.St.Cycles = c.cycle
	return c
}

// BranchPredictor exposes the modelled predictor (nil unless enabled).
func (c *Core) BranchPredictor() *bpred.Predictor { return c.bp }

// SB exposes the store buffer (tests and invariant checks).
func (c *Core) SB() *storebuf.StoreBuffer { return c.sb }

// DTLB exposes the data TLB (statistics).
func (c *Core) DTLB() *tlb.TLB { return c.dtlb }

// Detector exposes the SPB detector (nil unless PolicySPB).
func (c *Core) Detector() *core.Detector { return c.det }

// Cycle returns the core's current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether the core has drained: trace exhausted, ROB empty and
// no senior stores pending.
func (c *Core) Done() bool {
	return c.traceDone && !c.havePending && c.robCount == 0 && c.sb.Empty()
}

// Tick advances the core by one cycle: commit, SB drain, then dispatch.
func (c *Core) Tick() {
	com0, perf0 := c.St.Committed, c.St.StoresPerformed
	c.commitStage()
	c.drainSB()
	dispatched := c.dispatchStage()
	if dispatched == 0 && !c.Done() && c.port.OutstandingL1Misses(c.cycle) > 0 {
		c.St.ExecStallL1DPending++
	}
	c.idle = dispatched == 0 && c.St.Committed == com0 && c.St.StoresPerformed == perf0
	c.cycle++
	c.St.Cycles = c.cycle
}

// IdleTick reports whether the previous Tick made no progress (no commit, no
// store performed, no dispatch). It is a cheap pre-filter for NextEventCycle:
// a busy tick is usually followed by another busy cycle, so callers skip the
// event-horizon computation after it. Skipping less is always safe.
func (c *Core) IdleTick() bool { return c.idle }

// Run executes until n instructions have committed (or the trace ends) and
// the machine has drained. It returns an error if the core livelocks.
//
// Unless Options.DisableFastForward is set, Run skips provably dead cycles:
// after each Tick it asks NextEventCycle for the first cycle at which the
// core could act again and jumps straight there with SkipTo, batching the
// stall counters for the skipped span. Statistics are bit-identical to the
// cycle-by-cycle loop.
func (c *Core) Run(n uint64) error { return c.RunCtx(context.Background(), n) }

// cancelCheckEvery is how many loop iterations pass between context checks in
// RunCtx: frequent enough for sub-millisecond cancellation at simulator
// speeds, rare enough to stay off the per-cycle hot path.
const cancelCheckEvery = 8192

// RunCtx is Run under a context: if ctx is cancelled the loop stops within
// cancelCheckEvery iterations and returns the context's error, leaving the
// core's statistics at the point it stopped. A background context adds no
// per-cycle overhead.
func (c *Core) RunCtx(ctx context.Context, n uint64) error {
	done := ctx.Done()
	limit := c.cycle + n*1000 + 1_000_000
	for iter := uint64(0); c.St.Committed < n && !c.Done(); iter++ {
		if done != nil && iter%cancelCheckEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		c.Tick()
		if c.cycle > limit {
			return fmt.Errorf("cpu: no forward progress after %d cycles (%d/%d committed)",
				c.cycle, c.St.Committed, n)
		}
		if c.noFF || !c.idle || c.St.Committed >= n || c.Done() {
			continue
		}
		if t := c.NextEventCycle(); t > c.cycle {
			c.SkipTo(t)
		}
	}
	return nil
}

// dispatchBlock classifies why the dispatch stage cannot make progress,
// mirroring the cause chain of dispatchStage exactly (the attribution order
// is part of the paper's stall taxonomy).
type dispatchBlock int

const (
	// dispatchReady: the pending instruction would dispatch next Tick.
	dispatchReady dispatchBlock = iota
	blockFrontend
	blockROB
	blockSB
	blockLQ
	blockIQ
)

// dispatchBlockAt evaluates the dispatch cause chain for the pending
// instruction at cycle t. It returns the blocking cause and the cycle at
// which that cause could lift on its own. Causes released by commit or SB
// drain (ROB full, SB full) return math.MaxUint64: the commit and drain
// events bound the skip instead. Callers must ensure havePending.
func (c *Core) dispatchBlockAt(t uint64) (dispatchBlock, uint64) {
	if t < c.fetchReadyAt {
		return blockFrontend, c.fetchReadyAt
	}
	if c.robCount == len(c.rob) {
		return blockROB, math.MaxUint64
	}
	in := &c.pending
	if in.Kind == trace.KindStore && !c.sb.CanAccept(in.Addr, in.Size) {
		return blockSB, math.MaxUint64
	}
	if in.Kind == trace.KindLoad && c.lq.occupancy(t) >= c.cfg.LQSize {
		return blockLQ, c.lq.releaseCycle(c.cfg.LQSize)
	}
	if c.iq.occupancy(t) >= c.cfg.IQSize {
		return blockIQ, c.iq.releaseCycle(c.cfg.IQSize)
	}
	return dispatchReady, t
}

// NextEventCycle returns the earliest cycle at or after the current one at
// which the core could commit, drain a store, dispatch, or otherwise change
// architectural or statistical state. A return value equal to the current
// cycle means the next Tick may act and nothing can be skipped; a larger
// value means every cycle strictly before it is dead (the event horizon) and
// can be jumped over with SkipTo without changing any statistic.
func (c *Core) NextEventCycle() uint64 {
	now := c.cycle
	next := uint64(math.MaxUint64)

	// Commit: the ROB head retires the moment its completion cycle arrives;
	// younger entries cannot retire before it (in-order commit).
	if c.robCount > 0 {
		d := c.rob[c.robHead].doneAt
		if d <= now {
			return now
		}
		next = d
	}

	// SB drain: a senior head either performs when its fill completes, or —
	// if the block was stolen after the grant — retries one cycle past the
	// recorded fill time. An unacquired head issues its request next Tick.
	if e, ok := c.sb.Head(); ok {
		if !c.headAcquired || c.headSeq != e.Seq {
			return now
		}
		ev := c.headReadyAt + 1 // retry / force-perform path
		if r, writable := c.port.WritableReadyCycle(e.Addr); writable && r < ev {
			ev = r // the store performs the moment the fill completes
		}
		if ev <= now {
			return now
		}
		if ev < next {
			next = ev
		}
	}

	// Dispatch: with no pending instruction and trace remaining, the next
	// Tick pulls from the reader (an action). With a pending instruction the
	// blocking cause is constant over the dead span, and its lift cycle —
	// where one is not already bounded by the commit/drain events above —
	// caps the skip.
	if c.havePending || !c.traceDone {
		if !c.havePending {
			return now
		}
		cause, lift := c.dispatchBlockAt(now)
		if cause == dispatchReady {
			return now
		}
		if lift < next {
			next = lift
		}
	}

	if next == math.MaxUint64 {
		return now
	}
	return next
}

// SkipTo advances the core from its current cycle straight to target,
// charging every counter the cycle-by-cycle loop would have charged for the
// skipped span. It must only be called with a target obtained from
// NextEventCycle (every cycle in [current, target) is dead).
func (c *Core) SkipTo(target uint64) {
	now := c.cycle
	if target <= now {
		return
	}
	span := target - now

	// Dispatch-stall attribution: the blocking cause cannot change inside a
	// dead span (nothing commits, drains, or dispatches), so each skipped
	// cycle charges the same counter the reference loop would have. With the
	// trace exhausted and nothing pending, the reference loop charges no
	// dispatch-stall counter at all.
	if c.havePending {
		cause, _ := c.dispatchBlockAt(now)
		switch cause {
		case blockFrontend:
			c.St.FrontendStallCycles += span
		case blockROB:
			c.St.ROBStallCycles += span
		case blockSB:
			c.St.SBStallCycles += span
			c.attributeSBStall(span)
		case blockLQ:
			c.St.LQStallCycles += span
		case blockIQ:
			c.St.IQStallCycles += span
		}
	}

	// ExecStallL1DPending: a skipped cycle t counts when at least one L1D
	// miss is still in flight, i.e. while t is before the latest outstanding
	// fill completion. No new misses are issued during a dead span.
	if maxReady := c.port.MaxOutstandingL1Ready(now); maxReady > now {
		pend := maxReady - now
		if pend > span {
			pend = span
		}
		c.St.ExecStallL1DPending += pend
	}

	c.cycle = target
	c.St.Cycles = target
}

func (c *Core) commitStage() {
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.doneAt > c.cycle {
			break
		}
		if e.kind == trace.KindStore {
			c.sb.Commit(e.sbSeq)
			c.onStoreCommit(e)
		}
		c.robHead++
		if c.robHead == len(c.rob) {
			c.robHead = 0
		}
		c.robCount--
		c.St.Committed++
	}
}

// onStoreCommit fires the at-commit prefetch and feeds the SPB detector.
func (c *Core) onStoreCommit(e *robEntry) {
	if c.policy.PrefetchesAtCommit() {
		c.port.PrefetchOwn(mem.BlockOf(e.addr), c.cycle, false)
	}
	if c.det == nil {
		return
	}
	burst, ok := c.det.Observe(e.addr, e.size)
	if !ok {
		return
	}
	c.St.SPBBursts++
	// The burst is one request to the L1 controller; the controller works
	// through it at one prefetch per cycle, so requests are paced rather
	// than dumped into the memory system in a single cycle.
	offset := uint64(0)
	burst.Blocks(func(b mem.Block) {
		c.port.PrefetchOwn(b, c.cycle+offset, true)
		offset++
	})
}

// drainSB writes the oldest senior store to the L1 when its block is owned;
// otherwise it makes sure an ownership request is outstanding. One store
// performs per cycle (pipelined L1 stores).
func (c *Core) drainSB() {
	e, ok := c.sb.Head()
	if !ok {
		return
	}
	if c.port.PerformStore(e.Addr, e.PC, c.cycle) {
		c.sb.Pop()
		c.St.StoresPerformed++
		c.headAcquired = false
		return
	}
	// Not performable: ensure ownership has been requested exactly once,
	// re-issuing only if the fill was lost to an eviction or a remote
	// steal. After bounded retries the oldest store retires by force —
	// the forward-progress guarantee every TSO implementation provides,
	// without which two cores hammering one block can starve each other.
	if !c.headAcquired || c.headSeq != e.Seq {
		res := c.port.StoreAcquire(e.Addr, e.PC, c.cycle)
		c.headAcquired = true
		c.headSeq = e.Seq
		c.headReadyAt = res.Done
		c.headRetries = 0
		return
	}
	if c.cycle <= c.headReadyAt {
		return // fill still in flight
	}
	c.headRetries++
	if c.headRetries >= maxHeadRetries {
		c.port.ForcePerform(e.Addr, e.PC, c.cycle)
		c.sb.Pop()
		c.St.StoresPerformed++
		c.headAcquired = false
		c.headRetries = 0
		return
	}
	res := c.port.StoreAcquire(e.Addr, e.PC, c.cycle)
	c.headReadyAt = res.Done
}

// dispatchStage brings up to Width new instructions into the back end and
// returns how many it dispatched, performing the paper's stall attribution
// when it dispatches none.
func (c *Core) dispatchStage() int {
	dispatched := 0
	for dispatched < c.cfg.Width {
		if !c.havePending {
			if c.traceDone {
				break
			}
			if !c.reader.Next(&c.pending) {
				c.traceDone = true
				break
			}
			c.havePending = true
		}
		if c.cycle < c.fetchReadyAt {
			if dispatched == 0 {
				c.St.FrontendStallCycles++
			}
			break
		}
		if c.robCount == len(c.rob) {
			if dispatched == 0 {
				c.St.ROBStallCycles++
			}
			break
		}
		in := &c.pending
		if in.Kind == trace.KindStore && !c.sb.CanAccept(in.Addr, in.Size) {
			if dispatched == 0 {
				c.St.SBStallCycles++
				c.attributeSBStall(1)
			}
			break
		}
		if in.Kind == trace.KindLoad && c.lq.occupancy(c.cycle) >= c.cfg.LQSize {
			if dispatched == 0 {
				c.St.LQStallCycles++
			}
			break
		}
		if c.iq.occupancy(c.cycle) >= c.cfg.IQSize {
			if dispatched == 0 {
				c.St.IQStallCycles++
			}
			break
		}
		c.dispatch(in)
		c.havePending = false
		dispatched++
	}
	return dispatched
}

// attributeSBStall charges n stall cycles to the code region of the store
// blocking the head of the SB (Fig. 3). n > 1 batches a fast-forwarded span
// during which the blocking store cannot change.
func (c *Core) attributeSBStall(n uint64) {
	e, ok := c.sb.Head()
	if !ok {
		// Buffer full of junior stores: blame the oldest one.
		c.St.SBStallApp += n
		return
	}
	switch trace.RegionOf(e.PC) {
	case trace.RegionLib:
		c.St.SBStallLib += n
	case trace.RegionKernel:
		c.St.SBStallKernel += n
	default:
		c.St.SBStallApp += n
	}
}

// dispatch allocates the instruction and computes its execution schedule.
func (c *Core) dispatch(in *trace.Inst) {
	ready := c.cycle + 1
	if in.Dep1 > 0 && uint64(in.Dep1) <= c.seq {
		if t := c.doneHist[(c.seq-uint64(in.Dep1))&255]; t > ready {
			ready = t
		}
	}
	if in.Dep2 > 0 && uint64(in.Dep2) <= c.seq {
		if t := c.doneHist[(c.seq-uint64(in.Dep2))&255]; t > ready {
			ready = t
		}
	}
	execAt := ready
	var doneAt uint64
	var sbSeq uint64

	switch in.Kind {
	case trace.KindIntALU:
		doneAt = execAt + uint64(c.cfg.IntAddLat)
	case trace.KindIntMul:
		doneAt = execAt + uint64(c.cfg.IntMulLat)
	case trace.KindIntDiv:
		doneAt = execAt + uint64(c.cfg.IntDivLat)
	case trace.KindFPALU:
		doneAt = execAt + uint64(c.cfg.FPAddLat)
	case trace.KindFPMul:
		doneAt = execAt + uint64(c.cfg.FPMulLat)
	case trace.KindFPDiv:
		doneAt = execAt + uint64(c.cfg.FPDivLat)

	case trace.KindLoad:
		c.St.Loads++
		c.lastLoadAddr = in.Addr
		execAt += c.dtlb.Translate(in.Addr) // page walk before the access can issue
		switch c.sb.Forward(in.Addr, in.Size, c.sb.TailSeq()) {
		case storebuf.FullForward:
			c.St.ForwardedLoads++
			doneAt = execAt + 1
		case storebuf.PartialForward:
			c.St.PartialForwards++
			res := c.port.Load(in.Addr, in.PC, execAt+partialForwardPenalty)
			doneAt = res.Done
		default:
			res := c.port.Load(in.Addr, in.PC, execAt)
			doneAt = res.Done
		}
		c.lq.add(doneAt)

	case trace.KindStore:
		c.St.Stores++
		c.lastStoreAddr = in.Addr
		execAt += c.dtlb.Translate(in.Addr) // page walk at address generation
		sbSeq = c.sb.Allocate(in.Addr, in.Size, in.PC)
		doneAt = execAt + 1 // address generation; the write happens post-commit
		if c.policy == core.PolicyAtExecute {
			c.port.PrefetchOwn(mem.BlockOf(in.Addr), execAt, false)
		}

	case trace.KindBranch:
		c.St.Branches++
		doneAt = execAt + 1
		mispredicted := in.Mispredicted
		if c.bp != nil {
			_, btbHit := c.bp.Predict(in.PC)
			mispredicted = c.bp.Update(in.PC, in.Taken)
			if !btbHit && c.fetchReadyAt < c.cycle+btbMissBubble {
				// Unknown branch: the front end stalls briefly to redirect.
				c.fetchReadyAt = c.cycle + btbMissBubble
			}
		}
		if mispredicted {
			c.St.Mispredicts++
			c.resolveMispredict(doneAt)
		}
	default:
		doneAt = execAt + 1
	}

	c.iq.add(execAt)
	c.doneHist[c.seq&255] = doneAt
	c.seq++

	c.rob[c.robTail] = robEntry{
		kind:   in.Kind,
		size:   in.Size,
		addr:   in.Addr,
		pc:     in.PC,
		doneAt: doneAt,
		sbSeq:  sbSeq,
	}
	c.robTail++
	if c.robTail == len(c.rob) {
		c.robTail = 0
	}
	c.robCount++
}

// resolveMispredict models a branch found mispredicted when it resolves at
// resolveAt: the front end refetches after the redirect penalty, and the
// wrong-path instructions fetched in between burn fetch slots, L1D tag
// energy, fill traffic, and — under at-execute — bogus ownership prefetches.
// The span (and hence the waste) shrinks when the branch's inputs arrive
// earlier, which is how SPB's load-side benefit cuts misspeculation (§VI.A).
func (c *Core) resolveMispredict(resolveAt uint64) {
	c.fetchReadyAt = resolveAt + uint64(c.cfg.MispredictPenalty)
	span := c.fetchReadyAt - c.cycle
	wasted := span * uint64(c.cfg.Width)
	// The machine can only hold ROB + fetch-queue worth of wrong-path
	// work, no matter how long the branch takes to resolve.
	if maxWP := uint64(c.cfg.ROBSize + c.cfg.FetchQueue); wasted > maxWP {
		wasted = maxWP
	}
	c.St.WrongPathInsts += wasted

	// A quarter of wrong-path instructions are loads that reach the L1D,
	// clustered near the most recent demand addresses.
	nLoads := int(wasted / 4)
	if nLoads > maxWrongPathLoads {
		nLoads = maxWrongPathLoads
	}
	for i := 0; i < nLoads; i++ {
		delta := int64(c.rng.Intn(17)-8) * mem.BlockSize
		addr := mem.Addr(int64(c.lastLoadAddr) + delta)
		c.port.WrongPathLoad(addr, c.cycle+uint64(i))
	}
	// At-execute speculatively prefetches ownership for wrong-path stores;
	// that is its documented downside versus at-commit.
	if c.policy == core.PolicyAtExecute {
		nStores := int(wasted / 16)
		if nStores > maxWrongPathStorePFs {
			nStores = maxWrongPathStorePFs
		}
		for i := 0; i < nStores; i++ {
			delta := int64(c.rng.Intn(5)-2) * mem.BlockSize
			addr := mem.Addr(int64(c.lastStoreAddr) + delta)
			c.port.PrefetchOwn(mem.BlockOf(addr), c.cycle+uint64(i), false)
		}
	}
}

// occHeap tracks structure occupancy (IQ, LQ) as a calendar queue: a ring of
// per-cycle release counts covering the next occWindow cycles, with a tiny
// overflow min-heap for the rare release beyond the window. Queries arrive
// with nondecreasing cycles, so expiry is a cursor sweep over the ring —
// sequential, branch-predictable work instead of the pointer-chasing sift of
// a binary heap, which profiling showed at ~18% of simulation time.
type occHeap struct {
	buckets []uint16 // buckets[c&(occWindow-1)] = entries releasing at cycle c
	cursor  uint64   // every release < cursor has been expired
	count   int      // live entries (ring + far)
	far     []uint64 // min-heap of releases >= cursor+occWindow
	scratch []uint64 // releaseCycle workspace, reused to stay alloc-free
}

// occWindow is the ring span in cycles; must be a power of two. Completion
// times beyond it (deep MSHR/DRAM queuing) spill into the far heap.
const occWindow = 1024

func (h *occHeap) add(release uint64) {
	if release < h.cursor {
		return // already expired for every future query
	}
	if h.buckets == nil {
		h.buckets = newOccBuckets()
	}
	if release-h.cursor >= occWindow {
		h.farPush(release)
	} else {
		h.buckets[release&(occWindow-1)]++
	}
	h.count++
}

// occupancy expires entries released at or before t and returns the count
// still held. The common case — same cycle as the last query, nothing to
// expire — is a single compare, kept small enough to inline.
func (h *occHeap) occupancy(t uint64) int {
	if t < h.cursor {
		return h.count
	}
	return h.expireSlow(t)
}

func (h *occHeap) expireSlow(t uint64) int {
	for h.cursor <= t {
		if h.count == 0 {
			// Every bucket is zero already; skip the rest of the span.
			h.cursor = t + 1
			return 0
		}
		i := h.cursor & (occWindow - 1)
		if n := h.buckets[i]; n != 0 {
			h.count -= int(n)
			h.buckets[i] = 0
		}
		h.cursor++
	}
	// Expired far entries leave; ones now inside the window join the ring.
	for len(h.far) > 0 {
		m := h.far[0]
		if m <= t {
			h.farPop()
			h.count--
		} else if m-h.cursor < occWindow {
			h.farPop()
			h.buckets[m&(occWindow-1)]++
		} else {
			break
		}
	}
	return h.count
}

// releaseCycle returns the first cycle at which fewer than threshold entries
// remain held, assuming occupancy(t) >= threshold was just evaluated (so
// every entry is unexpired). That is the k-th smallest release cycle with
// k = count - threshold + 1; because entries are only added while occupancy
// is below the threshold, k is 1 in practice and the first occupied bucket
// answers.
func (h *occHeap) releaseCycle(threshold int) uint64 {
	k := h.count - threshold + 1
	for c := h.cursor; c < h.cursor+occWindow; c++ {
		if n := int(h.buckets[c&(occWindow-1)]); n != 0 {
			k -= n
			if k <= 0 {
				return c
			}
		}
	}
	// The k-th smallest lies beyond the window, among the far releases.
	h.scratch = append(h.scratch[:0], h.far...)
	slices.Sort(h.scratch)
	return h.scratch[k-1]
}

func (h *occHeap) farPush(v uint64) {
	h.far = append(h.far, v)
	i := len(h.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.far[p] <= h.far[i] {
			break
		}
		h.far[p], h.far[i] = h.far[i], h.far[p]
		i = p
	}
}

func (h *occHeap) farPop() {
	last := len(h.far) - 1
	h.far[0] = h.far[last]
	h.far = h.far[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.far[l] < h.far[small] {
			small = l
		}
		if r < last && h.far[r] < h.far[small] {
			small = r
		}
		if small == i {
			break
		}
		h.far[i], h.far[small] = h.far[small], h.far[i]
		i = small
	}
}
