package cpu

import (
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/mem"
	"spb/internal/memsys"
	"spb/internal/trace"
)

// TestRunningExampleFig4 reproduces the paper's Fig. 4 running example end
// to end: contiguous 8-byte stores from address 0, SPB configured with
// N = 8. After the first window of same-block stores (diffs 0×7) and the
// transition into block 1, the check fires and a burst requests ownership
// of every remaining block of page 0. Subsequent stores then find their
// blocks already owned (the PopReq discards of the example).
func TestRunningExampleFig4(t *testing.T) {
	machine := config.Skylake().WithSQ(56)
	machine.SPB.WindowN = 8
	machine.Prefetcher = config.PrefetchNone

	var insts []trace.Inst
	for i := 0; i < 512; i++ { // one full page of 8-byte stores
		insts = append(insts, trace.Inst{
			Kind: trace.KindStore, Addr: mem.Addr(i * 8), Size: 8, PC: trace.PCApp,
		})
	}
	sys := memsys.New(machine, 1)
	c := New(machine.Core, core.PolicySPB, machine.SPB, sys.Port(0), trace.NewSliceReader(insts), 1)
	if err := c.Run(uint64(len(insts))); err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		c.Tick()
	}

	det := c.Detector()
	if det.Triggers != 1 {
		t.Fatalf("detector fired %d bursts for one page, want exactly 1 (page filter)", det.Triggers)
	}
	p := sys.Port(0)
	// The burst covered blocks 2..63: 62 prefetch-exclusive requests.
	if p.SPFBurst != 62 {
		t.Fatalf("burst issued %d block requests, want 62 (blocks 2..63)", p.SPFBurst)
	}
	// Every committed store also issued an at-commit prefetch; those that
	// found the block already owned were discarded (PopReq).
	if p.SPFDiscarded == 0 {
		t.Fatal("later at-commit prefetches should be discarded against owned blocks")
	}
	// Most of the burst must have been consumed by the stores (successful
	// or merged-in-flight), since the whole page is written.
	if p.SPFSuccessful+p.SPFLate < 50 {
		t.Fatalf("only %d+%d burst prefetches were consumed, want nearly all 62",
			p.SPFSuccessful, p.SPFLate)
	}
	// All 512 stores performed.
	if c.St.StoresPerformed != 512 {
		t.Fatalf("performed %d stores, want 512", c.St.StoresPerformed)
	}
}

// TestKernelStallAttribution drives clear_page-style kernel stores through
// a tiny SB and checks the Fig. 3 attribution sees kernel PCs.
func TestKernelStallAttribution(t *testing.T) {
	reg := trace.NewMemRegion(0x40000000, 1<<22)
	c := build(core.PolicyNone, 14, trace.Repeat(8, trace.ClearPage(reg))())
	if err := c.Run(4096); err != nil {
		t.Fatal(err)
	}
	if c.St.SBStallKernel == 0 {
		t.Fatal("clear_page stalls must be attributed to the kernel region")
	}
	if c.St.SBStallLib != 0 {
		t.Fatal("no library stores in this trace")
	}
}

// TestROBStallWhenMemoryBound: pointer-chasing loads with no SB pressure
// must fill the ROB, not the SB.
func TestROBStallWhenMemoryBound(t *testing.T) {
	rng := trace.NewRNG(5)
	reg := trace.NewMemRegion(0x50000000, 64<<20)
	c := build(core.PolicyAtCommit, 56, trace.Forever(trace.PointerChase(rng, reg, 64, trace.PCApp))())
	if err := c.Run(20_000); err != nil {
		t.Fatal(err)
	}
	if c.St.SBStallCycles != 0 {
		t.Fatal("a load-only trace cannot stall on the SB")
	}
	if c.St.ROBStallCycles == 0 && c.St.LQStallCycles == 0 && c.St.IQStallCycles == 0 {
		t.Fatal("dependent DRAM loads must stall a back-end resource")
	}
}

// TestExecStallL1DPendingTracksMisses: the Top-Down signal must be high on
// a memory-bound trace and (near) zero on pure compute.
func TestExecStallL1DPendingSignal(t *testing.T) {
	rng := trace.NewRNG(9)
	reg := trace.NewMemRegion(0x60000000, 64<<20)
	mem0 := build(core.PolicyAtCommit, 56, trace.Forever(trace.PointerChase(rng, reg, 64, trace.PCApp))())
	if err := mem0.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if mem0.St.ExecStallL1DPending == 0 {
		t.Fatal("pointer chase should stall with L1D misses pending")
	}
	alu := build(core.PolicyAtCommit, 56, trace.NewSliceReader(alus(10_000, 0)))
	if err := alu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if alu.St.ExecStallL1DPending > alu.St.Cycles/100 {
		t.Fatalf("pure ALU trace shows %d L1D-pending stalls", alu.St.ExecStallL1DPending)
	}
}

// TestIdealAbsorbsBurstWithoutStalling: a burst shorter than the ideal SB
// capacity commits without a single SB stall.
func TestIdealAbsorbsShortBurst(t *testing.T) {
	reg := trace.NewMemRegion(0x70000000, 1<<20)
	c := build(core.PolicyIdeal, 14, trace.MemsetBurst(reg, 8000, 8, trace.PCLib)())
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.St.SBStallCycles != 0 {
		t.Fatalf("a 1000-store burst must fit the 1024-entry ideal SB, got %d stalls",
			c.St.SBStallCycles)
	}
}
