//go:build race

package cpu

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-count guards skip under -race.
const raceEnabled = true
