package cpu

import (
	"sync"

	"spb/internal/bpred"
	"spb/internal/core"
	"spb/internal/mem"
	"spb/internal/storebuf"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// Warm-start support (DESIGN.md §12): deep snapshot/restore of a core's
// pipeline state, Release of its pooled arrays, and the pools themselves
// (ROB ring and occupancy-tracker buckets) so repeated Runner invocations
// stop allocating them.
//
// A snapshot covers everything the core owns — pipeline registers, ROB,
// occupancy trackers, RNG, store buffer, detector, TLB, branch predictor and
// statistics. It does NOT cover the trace reader (cloned separately via
// trace.Program.Clone) or the memory port (snapshotted by memsys.System).

// occSnapshot deep-copies an occHeap.
type occSnapshot struct {
	buckets []uint16
	cursor  uint64
	count   int
	far     []uint64
}

func (h *occHeap) snapshot() occSnapshot {
	s := occSnapshot{cursor: h.cursor, count: h.count}
	if h.buckets != nil {
		s.buckets = append([]uint16(nil), h.buckets...)
	}
	if len(h.far) > 0 {
		s.far = append([]uint64(nil), h.far...)
	}
	return s
}

func (h *occHeap) restore(s occSnapshot) {
	if s.buckets == nil {
		if h.buckets != nil {
			for i := range h.buckets {
				h.buckets[i] = 0
			}
		}
	} else {
		if h.buckets == nil {
			h.buckets = newOccBuckets()
		}
		copy(h.buckets, s.buckets)
	}
	h.cursor = s.cursor
	h.count = s.count
	h.far = append(h.far[:0], s.far...)
}

// Snapshot is a deep copy of a core's mutable state.
type Snapshot struct {
	cycle uint64

	fetchReadyAt uint64
	pending      trace.Inst
	havePending  bool
	traceDone    bool

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	doneHist [256]uint64
	seq      uint64

	iq, lq occSnapshot

	headAcquired bool
	headSeq      uint64
	headReadyAt  uint64
	headRetries  int

	idle bool

	lastLoadAddr  mem.Addr
	lastStoreAddr mem.Addr

	rng trace.RNG
	st  Stats

	sb   *storebuf.Snapshot
	det  core.DetectorSnapshot
	has  bool // det valid
	dtlb *tlb.Snapshot
	bp   *bpred.Snapshot
}

// Snapshot deep-copies the core's mutable state (excluding the trace reader
// and the memory port; see the file comment).
func (c *Core) Snapshot() *Snapshot {
	s := &Snapshot{
		cycle:         c.cycle,
		fetchReadyAt:  c.fetchReadyAt,
		pending:       c.pending,
		havePending:   c.havePending,
		traceDone:     c.traceDone,
		rob:           append([]robEntry(nil), c.rob...),
		robHead:       c.robHead,
		robTail:       c.robTail,
		robCount:      c.robCount,
		doneHist:      c.doneHist,
		seq:           c.seq,
		iq:            c.iq.snapshot(),
		lq:            c.lq.snapshot(),
		headAcquired:  c.headAcquired,
		headSeq:       c.headSeq,
		headReadyAt:   c.headReadyAt,
		headRetries:   c.headRetries,
		idle:          c.idle,
		lastLoadAddr:  c.lastLoadAddr,
		lastStoreAddr: c.lastStoreAddr,
		rng:           *c.rng,
		st:            c.St,
		sb:            c.sb.Snapshot(),
		dtlb:          c.dtlb.Snapshot(),
	}
	if c.det != nil {
		s.det = c.det.Snapshot()
		s.has = true
	}
	if c.bp != nil {
		s.bp = c.bp.Snapshot()
	}
	return s
}

// Restore overwrites the core's mutable state with the snapshot's. The core
// must have the same configuration (ROB size, SQ size, TLB/predictor
// geometry, policy) as the snapshot's source.
func (c *Core) Restore(s *Snapshot) {
	if len(c.rob) != len(s.rob) {
		panic("cpu: Restore with mismatched ROB size")
	}
	if (c.det != nil) != s.has || (c.bp != nil) != (s.bp != nil) {
		panic("cpu: Restore with mismatched detector/predictor presence")
	}
	c.cycle = s.cycle
	c.fetchReadyAt = s.fetchReadyAt
	c.pending = s.pending
	c.havePending = s.havePending
	c.traceDone = s.traceDone
	copy(c.rob, s.rob)
	c.robHead = s.robHead
	c.robTail = s.robTail
	c.robCount = s.robCount
	c.doneHist = s.doneHist
	c.seq = s.seq
	c.iq.restore(s.iq)
	c.lq.restore(s.lq)
	c.headAcquired = s.headAcquired
	c.headSeq = s.headSeq
	c.headReadyAt = s.headReadyAt
	c.headRetries = s.headRetries
	c.idle = s.idle
	c.lastLoadAddr = s.lastLoadAddr
	c.lastStoreAddr = s.lastStoreAddr
	*c.rng = s.rng
	c.St = s.st
	c.sb.Restore(s.sb)
	c.dtlb.Restore(s.dtlb)
	if c.det != nil {
		c.det.Restore(s.det)
	}
	if c.bp != nil {
		c.bp.Restore(s.bp)
	}
}

var robPools sync.Map // ROB size -> *sync.Pool of []robEntry

func robPoolFor(n int) *sync.Pool {
	if p, ok := robPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := robPools.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// newROB returns a ROB ring of the given size, reusing a released one when
// available. Ring slots are written at dispatch before commit ever reads
// them, so no zeroing is needed.
func newROB(n int) []robEntry {
	if v := robPoolFor(n).Get(); v != nil {
		return v.([]robEntry)
	}
	return make([]robEntry, n)
}

var occBucketPool = sync.Pool{}

// newOccBuckets returns a zeroed occWindow-sized bucket ring, reusing a
// released one when available.
func newOccBuckets() []uint16 {
	if v := occBucketPool.Get(); v != nil {
		b := v.([]uint16)
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]uint16, occWindow)
}

// release returns the bucket ring to the shared pool.
func (h *occHeap) release() {
	if h.buckets == nil {
		return
	}
	occBucketPool.Put(h.buckets)
	h.buckets = nil
}

// Release returns the core's pooled arrays — ROB ring, occupancy buckets,
// store-buffer ring, TLB entries and predictor tables — to their shared
// pools. The core must not be used afterwards; skipping Release is always
// safe.
func (c *Core) Release() {
	if c.rob != nil {
		robPoolFor(len(c.rob)).Put(c.rob)
		c.rob = nil
	}
	c.iq.release()
	c.lq.release()
	c.sb.Release()
	c.dtlb.Release()
	if c.bp != nil {
		c.bp.Release()
	}
}
