package trace

import "spb/internal/mem"

// FuncReader adapts a closure to the Reader interface.
type FuncReader func(*Inst) bool

// Next implements Reader.
func (f FuncReader) Next(i *Inst) bool { return f(i) }

// Factory creates a fresh Reader each time it is invoked, so fragments can
// be repeated or mixed without sharing iteration state.
type Factory func() Reader

// Seq returns a factory that runs each fragment to completion in order.
func Seq(fragments ...Factory) Factory {
	return func() Reader {
		var cur Reader
		idx := 0
		return FuncReader(func(out *Inst) bool {
			for {
				if cur == nil {
					if idx >= len(fragments) {
						return false
					}
					cur = fragments[idx]()
					idx++
				}
				if cur.Next(out) {
					return true
				}
				cur = nil
			}
		})
	}
}

// Repeat returns a factory that runs the fragment n times back to back.
func Repeat(n int, f Factory) Factory {
	return func() Reader {
		var cur Reader
		left := n
		return FuncReader(func(out *Inst) bool {
			for {
				if cur == nil {
					if left <= 0 {
						return false
					}
					cur = f()
					left--
				}
				if cur.Next(out) {
					return true
				}
				cur = nil
			}
		})
	}
}

// Forever returns a factory that restarts the fragment indefinitely. The
// simulator bounds execution by instruction count, so workload generators
// are typically Forever(Mix(...)).
func Forever(f Factory) Factory {
	return func() Reader {
		var cur Reader
		return FuncReader(func(out *Inst) bool {
			for {
				if cur == nil {
					cur = f()
				}
				if cur.Next(out) {
					return true
				}
				cur = nil
			}
		})
	}
}

// LimitReader produces at most a fixed number of instructions from an
// underlying reader. It is a concrete type (not a closure) because the
// simulator wraps every core's stream in one, making its Next the hot entry
// point of trace generation.
type LimitReader struct {
	r    Reader
	n    uint64
	seen uint64
}

// Limit returns a reader producing at most n instructions from r.
func Limit(n uint64, r Reader) *LimitReader {
	return &LimitReader{r: r, n: n}
}

// Next implements Reader.
func (l *LimitReader) Next(out *Inst) bool {
	if l.seen >= l.n {
		return false
	}
	if !l.r.Next(out) {
		return false
	}
	l.seen++
	return true
}

// Weighted pairs a fragment with a selection weight for Mix.
type Weighted struct {
	Weight   int
	Fragment Factory
}

// Mix returns a factory that, each activation, repeatedly picks one fragment
// at random (by weight) and runs it to completion before picking the next —
// modelling the phase behaviour of real applications (a memcpy call, then
// compute, then another call) rather than instruction-level shuffling, which
// would destroy the store-burst patterns the paper studies. One activation
// of the mix runs `phases` fragments.
func Mix(rng *RNG, phases int, parts ...Weighted) Factory {
	total := 0
	for _, p := range parts {
		if p.Weight < 0 {
			panic("trace: negative Mix weight")
		}
		total += p.Weight
	}
	if total == 0 {
		panic("trace: Mix with zero total weight")
	}
	pick := func() Factory {
		n := rng.Intn(total)
		for _, p := range parts {
			if n < p.Weight {
				return p.Fragment
			}
			n -= p.Weight
		}
		return parts[len(parts)-1].Fragment
	}
	return func() Reader {
		var cur Reader
		left := phases
		return FuncReader(func(out *Inst) bool {
			for {
				if cur == nil {
					if left <= 0 {
						return false
					}
					cur = pick()()
					left--
				}
				if cur.Next(out) {
					return true
				}
				cur = nil
			}
		})
	}
}

// MemRegion is a contiguous address range a workload streams or scatters
// accesses through. Streaming fragments advance cur and wrap; the wrap-around
// working set determines which cache level the stream misses to.
type MemRegion struct {
	Base mem.Addr
	Size uint64
	cur  uint64
}

// NewMemRegion returns a region of size bytes starting at base. Base and
// size are aligned down/up to page boundaries so bursts line up with the
// pages SPB prefetches.
func NewMemRegion(base mem.Addr, size uint64) *MemRegion {
	b := mem.AlignDown(base, mem.PageSize)
	if size < mem.PageSize {
		size = mem.PageSize
	}
	size = size &^ (mem.PageSize - 1)
	return &MemRegion{Base: b, Size: size}
}

// NextChunk reserves the next n bytes of the region (wrapping to the start
// when exhausted) and returns the chunk's base address.
func (r *MemRegion) NextChunk(n uint64) mem.Addr {
	if n > r.Size {
		n = r.Size
	}
	if r.cur+n > r.Size {
		r.cur = 0
	}
	a := r.Base + mem.Addr(r.cur)
	r.cur += n
	return a
}

// RandomAddr returns a pseudo-random address inside the region aligned to
// align bytes (a power of two), leaving room bytes before the region end.
func (r *MemRegion) RandomAddr(rng *RNG, align, room uint64) mem.Addr {
	span := r.Size
	if span > room {
		span -= room
	}
	off := rng.Uint64() % span
	return mem.AlignDown(r.Base+mem.Addr(off), align)
}

// MemsetBurst emits a memset-like run of contiguous stores of storeSize
// bytes covering `bytes` bytes of dst, with a loop branch every cache block
// (matching the paper's Fig. 2 pattern). pc labels the static store for the
// Fig. 3 region attribution.
func MemsetBurst(dst *MemRegion, bytes uint64, storeSize int, pc uint64) Factory {
	return func() Reader {
		base := dst.NextChunk(bytes)
		var off uint64
		return FuncReader(func(out *Inst) bool {
			if off >= bytes {
				return false
			}
			*out = Inst{
				Kind: KindStore,
				Addr: base + mem.Addr(off),
				Size: uint8(storeSize),
				PC:   pc,
			}
			off += uint64(storeSize)
			return true
		})
	}
}

// MemcpyBurst emits a memcpy-like run: for every 8 bytes a load from src and
// a dependent store to dst, streaming through both regions.
func MemcpyBurst(src, dst *MemRegion, bytes uint64, pc uint64) Factory {
	const step = 8
	return func() Reader {
		s := src.NextChunk(bytes)
		d := dst.NextChunk(bytes)
		var off uint64
		loadNext := true
		return FuncReader(func(out *Inst) bool {
			if off >= bytes {
				return false
			}
			if loadNext {
				*out = Inst{Kind: KindLoad, Addr: s + mem.Addr(off), Size: step, PC: pc}
			} else {
				// The store writes the value the immediately preceding
				// load produced.
				*out = Inst{Kind: KindStore, Addr: d + mem.Addr(off), Size: step, Dep1: 1, PC: pc + 4}
				off += step
			}
			loadNext = !loadNext
			return true
		})
	}
}

// ClearPage emits the kernel clear_page pattern: one full page of 8-byte
// stores with a kernel PC. The OS runs it on every page handed to user code.
func ClearPage(dst *MemRegion) Factory {
	return MemsetBurst(dst, mem.PageSize, 8, PCKernel+0x100)
}

// RMWBurst emits a read-modify-write stream: load a[i], one ALU op on it,
// store a[i], walking the region sequentially. Because the loads run ahead
// of the stores' commit, only a predictive prefetcher (SPB) can turn the
// loads into hits — the source of the paper's above-ideal results.
func RMWBurst(buf *MemRegion, bytes uint64, pc uint64) Factory {
	const step = 8
	return func() Reader {
		base := buf.NextChunk(bytes)
		var off uint64
		state := 0
		return FuncReader(func(out *Inst) bool {
			if off >= bytes {
				return false
			}
			switch state {
			case 0:
				*out = Inst{Kind: KindLoad, Addr: base + mem.Addr(off), Size: step, PC: pc}
			case 1:
				*out = Inst{Kind: KindIntALU, Dep1: 1, PC: pc + 4}
			default:
				*out = Inst{Kind: KindStore, Addr: base + mem.Addr(off), Size: step, Dep1: 1, PC: pc + 8}
				off += step
			}
			state = (state + 1) % 3
			return true
		})
	}
}

// StridedStores emits count stores of size bytes separated by stride bytes.
// With stride > 64 the SPB detector must not trigger (non-contiguous
// blocks); with stride <= 8 it models dense initialization.
func StridedStores(buf *MemRegion, count int, stride uint64, size int, pc uint64) Factory {
	return func() Reader {
		base := buf.NextChunk(uint64(count) * stride)
		i := 0
		return FuncReader(func(out *Inst) bool {
			if i >= count {
				return false
			}
			*out = Inst{Kind: KindStore, Addr: base + mem.Addr(uint64(i)*stride), Size: uint8(size), PC: pc}
			i++
			return true
		})
	}
}

// StridedLoads emits count loads separated by stride bytes, the classic
// pattern the generic stream prefetcher covers well.
func StridedLoads(buf *MemRegion, count int, stride uint64, pc uint64) Factory {
	return func() Reader {
		base := buf.NextChunk(uint64(count) * stride)
		i := 0
		return FuncReader(func(out *Inst) bool {
			if i >= count {
				return false
			}
			*out = Inst{Kind: KindLoad, Addr: base + mem.Addr(uint64(i)*stride), Size: 8, PC: pc}
			i++
			return true
		})
	}
}

// PointerChase emits count dependent loads at pseudo-random addresses in the
// region: each load's address depends on the previous load's value, so they
// serialize — the memory-latency-bound pattern prefetchers cannot help.
func PointerChase(rng *RNG, buf *MemRegion, count int, pc uint64) Factory {
	return func() Reader {
		i := 0
		return FuncReader(func(out *Inst) bool {
			if i >= count {
				return false
			}
			dep := uint8(0)
			if i > 0 {
				dep = 1
			}
			*out = Inst{
				Kind: KindLoad,
				Addr: buf.RandomAddr(rng, 8, 8),
				Size: 8,
				Dep1: dep,
				PC:   pc,
			}
			i++
			return true
		})
	}
}

// ScatterStores emits count stores at pseudo-random block-aligned addresses:
// sparse store traffic that fills the SB without any contiguous pattern.
func ScatterStores(rng *RNG, buf *MemRegion, count int, pc uint64) Factory {
	return func() Reader {
		i := 0
		return FuncReader(func(out *Inst) bool {
			if i >= count {
				return false
			}
			*out = Inst{
				Kind: KindStore,
				Addr: buf.RandomAddr(rng, 8, 8),
				Size: 8,
				PC:   pc,
			}
			i++
			return true
		})
	}
}

// ComputeOptions shapes a Compute fragment.
type ComputeOptions struct {
	Count    int     // instructions to emit
	FPFrac   float64 // fraction that are floating point
	MulFrac  float64 // fraction of arithmetic that are multiplies
	DivFrac  float64 // fraction of arithmetic that are divides
	DepFrac  float64 // fraction with a short register dependence
	BrFrac   float64 // fraction that are branches
	MissRate float64 // branch misprediction probability
	PC       uint64
}

// Compute emits an arithmetic/branch block according to opts.
func Compute(rng *RNG, opts ComputeOptions) Factory {
	return func() Reader {
		i := 0
		branches := 0
		return FuncReader(func(out *Inst) bool {
			if i >= opts.Count {
				return false
			}
			i++
			*out = Inst{PC: opts.PC + uint64(i%64)*4}
			if rng.Bool(opts.BrFrac) {
				out.Kind = KindBranch
				out.Dep1 = 1
				// Loop-patterned directions (taken 7 of 8 times, like a
				// short inner loop): a structural predictor learns them,
				// while the statistical flag drives the default front end.
				branches++
				out.Taken = branches%8 != 0
				out.Mispredicted = rng.Bool(opts.MissRate)
				return true
			}
			kind := KindIntALU
			fp := rng.Bool(opts.FPFrac)
			switch {
			case rng.Bool(opts.DivFrac):
				kind = KindIntDiv
				if fp {
					kind = KindFPDiv
				}
			case rng.Bool(opts.MulFrac):
				kind = KindIntMul
				if fp {
					kind = KindFPMul
				}
			case fp:
				kind = KindFPALU
			}
			out.Kind = kind
			if rng.Bool(opts.DepFrac) {
				out.Dep1 = uint8(1 + rng.Intn(4))
			}
			return true
		})
	}
}

// LoadUse emits a load followed by a dependent branch, the pattern through
// which faster loads resolve branches earlier and cut wrong-path work
// (the §VI.A super-linear-speedup mechanism).
func LoadUse(rng *RNG, buf *MemRegion, count int, missRate float64, pc uint64) Factory {
	return func() Reader {
		i := 0
		loadNext := true
		return FuncReader(func(out *Inst) bool {
			if i >= count {
				return false
			}
			if loadNext {
				*out = Inst{Kind: KindLoad, Addr: buf.RandomAddr(rng, 8, 8), Size: 8, PC: pc}
			} else {
				*out = Inst{
					Kind: KindBranch, Dep1: 1, PC: pc + 4,
					// Data-dependent but biased direction, as real
					// value-dependent branches tend to be.
					Taken:        rng.Bool(0.85),
					Mispredicted: rng.Bool(missRate),
				}
				i++
			}
			loadNext = !loadNext
			return true
		})
	}
}
