package trace

// RNG is a deterministic xorshift64* pseudo-random generator. Every workload
// owns one, seeded from the workload name, so simulations are exactly
// reproducible across runs and platforms (a hard requirement for the
// regression tests and for comparing prefetch policies on identical traces).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped, as the
// xorshift state must never be zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// SeedFromString derives a 64-bit seed from a string using FNV-1a.
func SeedFromString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Advance consumes one draw, evolving the state exactly as Uint64 does but
// producing no value: the output multiply and any float conversion are
// skipped. Skip-mode replay uses it for draws whose outcome is discarded —
// the state sequence (and thus every later draw) stays bit-identical to the
// emitting path at a fraction of the cost.
func (r *RNG) Advance() {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
