package trace

import (
	"testing"

	"spb/internal/mem"
)

func TestAllKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindIntALU: "ialu", KindIntMul: "imul", KindIntDiv: "idiv",
		KindFPALU: "fadd", KindFPMul: "fmul", KindFPDiv: "fdiv",
		KindLoad: "load", KindStore: "store", KindBranch: "branch",
		Kind(200): "?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRegionStrings(t *testing.T) {
	for r, s := range map[Region]string{
		RegionApp: "app", RegionLib: "lib", RegionKernel: "kernel", Region(9): "?",
	} {
		if r.String() != s {
			t.Errorf("Region(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestScatterStoresWithinRegion(t *testing.T) {
	rng := NewRNG(3)
	reg := NewMemRegion(0xD00000, 1<<20)
	insts := Collect(ScatterStores(rng, reg, 20, PCApp)(), 100)
	if len(insts) != 20 {
		t.Fatalf("got %d stores, want 20", len(insts))
	}
	for _, in := range insts {
		if in.Kind != KindStore {
			t.Fatal("scatter must emit stores only")
		}
		if in.Addr < reg.Base || uint64(in.Addr) >= uint64(reg.Base)+reg.Size {
			t.Fatalf("store at %#x outside region", in.Addr)
		}
	}
	// Scattered stores must not form a contiguous-block run the SPB
	// detector would confuse with a burst.
	contiguousRuns := 0
	for i := 1; i < len(insts); i++ {
		if mem.BlockOf(insts[i].Addr) == mem.BlockOf(insts[i-1].Addr)+1 {
			contiguousRuns++
		}
	}
	if contiguousRuns > len(insts)/2 {
		t.Fatalf("scatter stores look contiguous (%d/%d block-sequential)",
			contiguousRuns, len(insts))
	}
}

func TestLoadUseAlternatesLoadBranch(t *testing.T) {
	rng := NewRNG(4)
	reg := NewMemRegion(0xE00000, 1<<20)
	insts := Collect(LoadUse(rng, reg, 10, 1.0, PCApp)(), 100)
	if len(insts) != 20 {
		t.Fatalf("LoadUse(10) should emit 20 insts, got %d", len(insts))
	}
	for i := 0; i < len(insts); i += 2 {
		if insts[i].Kind != KindLoad || insts[i+1].Kind != KindBranch {
			t.Fatalf("pair %d: %v,%v want load,branch", i/2, insts[i].Kind, insts[i+1].Kind)
		}
		if insts[i+1].Dep1 != 1 {
			t.Fatal("branch must depend on its load")
		}
		if !insts[i+1].Mispredicted {
			t.Fatal("missRate 1.0 should mispredict every branch")
		}
	}
}
