// Package trace defines the instruction stream that drives the simulator:
// the instruction record itself, the Reader interface produced by workload
// generators and consumed by the CPU model, a deterministic RNG, and the
// composable fragment builders (memcpy/memset bursts, strided accesses,
// pointer chases, compute blocks) from which the SPEC- and PARSEC-like
// workloads are assembled.
package trace

import "spb/internal/mem"

// Kind is the class of an instruction; it determines the functional unit,
// the execution latency and, for memory operations, how the instruction
// interacts with the load queue, the store buffer and the caches.
type Kind uint8

const (
	// KindIntALU is a one-cycle integer operation.
	KindIntALU Kind = iota
	// KindIntMul is an integer multiply.
	KindIntMul
	// KindIntDiv is an integer divide.
	KindIntDiv
	// KindFPALU is a floating-point add/sub.
	KindFPALU
	// KindFPMul is a floating-point multiply.
	KindFPMul
	// KindFPDiv is a floating-point divide.
	KindFPDiv
	// KindLoad reads Size bytes from Addr.
	KindLoad
	// KindStore writes Size bytes to Addr; it allocates a store-queue
	// entry at dispatch and drains through the store buffer after commit.
	KindStore
	// KindBranch is a conditional branch; Mispredicted branches squash the
	// wrong-path fetch stream when they resolve.
	KindBranch
	numKinds
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case KindIntALU:
		return "ialu"
	case KindIntMul:
		return "imul"
	case KindIntDiv:
		return "idiv"
	case KindFPALU:
		return "fadd"
	case KindFPMul:
		return "fmul"
	case KindFPDiv:
		return "fdiv"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	}
	return "?"
}

// IsMem reports whether the kind is a load or a store.
func (k Kind) IsMem() bool { return k == KindLoad || k == KindStore }

// Inst is one dynamic instruction of the trace.
type Inst struct {
	Kind Kind
	// Size is the access size in bytes for loads and stores (1..64).
	Size uint8
	// Dep1 and Dep2 are register-dependence distances: the instruction
	// depends on the results of the instructions Dep1 and Dep2 positions
	// earlier in program order (0 means no dependence). They bound how
	// early the instruction can issue.
	Dep1, Dep2 uint8
	// Taken is the branch's actual direction, used when the core models
	// the branch predictor structurally (cpu.Options.UseBranchPredictor).
	Taken bool
	// Mispredicted marks a branch the front end predicts wrongly; the
	// pipeline squashes wrong-path fetch when it resolves. It is the
	// statistical default; a modelled predictor ignores it.
	Mispredicted bool
	// Addr is the effective address for loads and stores.
	Addr mem.Addr
	// PC identifies the static instruction; its region (application,
	// C library, kernel) is used by the Fig. 3 stall-attribution study.
	PC uint64
}

// Reader produces a stream of instructions. Next fills *Inst and reports
// whether an instruction was produced; generators may be finite or infinite
// (the simulator stops after a configured instruction count either way).
type Reader interface {
	Next(*Inst) bool
}

// PC regions used to label static instructions the way the paper attributes
// SB stalls (Fig. 3): application code, C library (memcpy/memset/calloc) and
// kernel (clear_page_orig).
const (
	PCApp    uint64 = 0x0000_0000_0040_0000
	PCLib    uint64 = 0x0000_7F00_0000_0000
	PCKernel uint64 = 0xFFFF_FFFF_8000_0000
)

// Region names a PC's code region.
type Region uint8

const (
	// RegionApp is application text.
	RegionApp Region = iota
	// RegionLib is C-library text (memcpy, memset, calloc).
	RegionLib
	// RegionKernel is kernel text (clear_page).
	RegionKernel
)

func (r Region) String() string {
	switch r {
	case RegionApp:
		return "app"
	case RegionLib:
		return "lib"
	case RegionKernel:
		return "kernel"
	}
	return "?"
}

// RegionOf classifies a PC into its code region.
func RegionOf(pc uint64) Region {
	switch {
	case pc >= PCKernel:
		return RegionKernel
	case pc >= PCLib:
		return RegionLib
	default:
		return RegionApp
	}
}

// SliceReader replays a fixed slice of instructions. It is mainly used by
// unit tests and the Fig. 4 running example.
type SliceReader struct {
	insts []Inst
	pos   int
}

// NewSliceReader returns a Reader over the given instructions.
func NewSliceReader(insts []Inst) *SliceReader {
	return &SliceReader{insts: insts}
}

// Next implements Reader.
func (r *SliceReader) Next(out *Inst) bool {
	if r.pos >= len(r.insts) {
		return false
	}
	*out = r.insts[r.pos]
	r.pos++
	return true
}

// Collect drains up to max instructions from r into a slice.
func Collect(r Reader, max int) []Inst {
	var out []Inst
	var in Inst
	for len(out) < max && r.Next(&in) {
		out = append(out, in)
	}
	return out
}
