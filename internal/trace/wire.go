package trace

// Crash-safe checkpoint support (DESIGN.md §15). Trace state is never
// serialized wholesale: a Program's cursor after n instructions is a pure
// function of (workload, seed, n), and Skip(n) is state-equivalent to n
// successful Next calls (TestProgramSkipEquivalence), so a checkpoint only
// records how many instructions each reader has consumed and a resume
// replays the generator to that point. The two accessors below are the
// pieces of reader state the replay cannot reconstruct on its own: the
// Limit wrapper's budget position, which belongs to the wrapper rather than
// the underlying stream.

// Seen reports how many instructions the wrapper has produced — equivalently
// how many successful Next calls it has forwarded to the underlying reader.
func (l *LimitReader) Seen() uint64 { return l.seen }

// SetSeen overwrites the wrapper's produced-instruction count. Checkpoint
// resume uses it after replaying the underlying reader to the recorded
// position, so the remaining budget (n - seen) matches the interrupted run.
func (l *LimitReader) SetSeen(seen uint64) { l.seen = seen }

// State exposes the generator's xorshift state for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's xorshift state. The state must come
// from State() of a live generator; it is never zero.
func (r *RNG) SetState(s uint64) { r.state = s }
