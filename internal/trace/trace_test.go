package trace

import (
	"testing"
	"testing/quick"

	"spb/internal/mem"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must be remapped to a working state")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestSeedFromStringDistinct(t *testing.T) {
	if SeedFromString("bwaves") == SeedFromString("roms") {
		t.Fatal("different names should hash to different seeds")
	}
	if SeedFromString("x") != SeedFromString("x") {
		t.Fatal("SeedFromString must be deterministic")
	}
}

func TestRegionOf(t *testing.T) {
	if RegionOf(PCApp+0x10) != RegionApp {
		t.Error("app PC misclassified")
	}
	if RegionOf(PCLib+0x10) != RegionLib {
		t.Error("lib PC misclassified")
	}
	if RegionOf(PCKernel+0x10) != RegionKernel {
		t.Error("kernel PC misclassified")
	}
}

func TestSliceReader(t *testing.T) {
	insts := []Inst{{Kind: KindLoad}, {Kind: KindStore}}
	r := NewSliceReader(insts)
	var in Inst
	if !r.Next(&in) || in.Kind != KindLoad {
		t.Fatal("first inst should be the load")
	}
	if !r.Next(&in) || in.Kind != KindStore {
		t.Fatal("second inst should be the store")
	}
	if r.Next(&in) {
		t.Fatal("reader should be exhausted")
	}
}

func TestMemsetBurstCoversRange(t *testing.T) {
	reg := NewMemRegion(0x10000, 1<<20)
	f := MemsetBurst(reg, 4096, 8, PCLib)
	insts := Collect(f(), 10000)
	if len(insts) != 512 {
		t.Fatalf("4096 bytes / 8B stores = 512 insts, got %d", len(insts))
	}
	for i, in := range insts {
		if in.Kind != KindStore || in.Size != 8 {
			t.Fatalf("inst %d: %v size %d, want 8B store", i, in.Kind, in.Size)
		}
		if i > 0 && in.Addr != insts[i-1].Addr+8 {
			t.Fatalf("stores must be contiguous: inst %d at %#x after %#x",
				i, in.Addr, insts[i-1].Addr)
		}
	}
	// The whole run stays within one page and covers it exactly.
	if !mem.SamePage(insts[0].Addr, insts[len(insts)-1].Addr) {
		t.Error("a 4096-byte burst starting page-aligned must stay in one page")
	}
}

func TestMemcpyBurstPairsLoadStore(t *testing.T) {
	src := NewMemRegion(0x100000, 1<<20)
	dst := NewMemRegion(0x200000, 1<<20)
	insts := Collect(MemcpyBurst(src, dst, 128, PCLib)(), 1000)
	if len(insts) != 32 { // 16 loads + 16 stores
		t.Fatalf("got %d insts, want 32", len(insts))
	}
	for i := 0; i < len(insts); i += 2 {
		ld, st := insts[i], insts[i+1]
		if ld.Kind != KindLoad || st.Kind != KindStore {
			t.Fatalf("pair %d: %v,%v want load,store", i/2, ld.Kind, st.Kind)
		}
		if st.Dep1 != 1 {
			t.Fatal("store must depend on its load")
		}
		if mem.PageOf(ld.Addr) == mem.PageOf(st.Addr) {
			t.Fatal("src and dst should be distinct regions")
		}
	}
}

func TestClearPageIsKernelFullPage(t *testing.T) {
	reg := NewMemRegion(0x300000, 1<<20)
	insts := Collect(ClearPage(reg)(), 1000)
	if len(insts) != mem.PageSize/8 {
		t.Fatalf("clear_page should emit %d stores, got %d", mem.PageSize/8, len(insts))
	}
	for _, in := range insts {
		if RegionOf(in.PC) != RegionKernel {
			t.Fatal("clear_page stores must carry a kernel PC")
		}
	}
}

func TestRMWBurstPattern(t *testing.T) {
	reg := NewMemRegion(0x400000, 1<<20)
	insts := Collect(RMWBurst(reg, 64, PCApp)(), 1000)
	if len(insts) != 24 { // 8 triplets of load/alu/store
		t.Fatalf("got %d insts, want 24", len(insts))
	}
	for i := 0; i < len(insts); i += 3 {
		if insts[i].Kind != KindLoad || insts[i+1].Kind != KindIntALU || insts[i+2].Kind != KindStore {
			t.Fatalf("triplet %d is %v/%v/%v", i/3, insts[i].Kind, insts[i+1].Kind, insts[i+2].Kind)
		}
		if insts[i].Addr != insts[i+2].Addr {
			t.Fatal("RMW load and store must target the same address")
		}
	}
}

func TestStridedStoresStride(t *testing.T) {
	reg := NewMemRegion(0x500000, 1<<20)
	insts := Collect(StridedStores(reg, 10, 128, 8, PCApp)(), 100)
	if len(insts) != 10 {
		t.Fatalf("got %d stores, want 10", len(insts))
	}
	for i := 1; i < len(insts); i++ {
		if insts[i].Addr != insts[i-1].Addr+128 {
			t.Fatal("stride must be 128 bytes")
		}
	}
}

func TestPointerChaseDependsOnPrevious(t *testing.T) {
	rng := NewRNG(3)
	reg := NewMemRegion(0x600000, 1<<20)
	insts := Collect(PointerChase(rng, reg, 5, PCApp)(), 100)
	if len(insts) != 5 {
		t.Fatalf("got %d loads, want 5", len(insts))
	}
	if insts[0].Dep1 != 0 {
		t.Error("first chase load has no predecessor")
	}
	for _, in := range insts[1:] {
		if in.Dep1 != 1 {
			t.Error("chase loads must depend on the previous load")
		}
	}
}

func TestComputeMix(t *testing.T) {
	rng := NewRNG(11)
	insts := Collect(Compute(rng, ComputeOptions{
		Count: 10000, FPFrac: 0.3, MulFrac: 0.1, BrFrac: 0.2, MissRate: 0.5,
	})(), 20000)
	if len(insts) != 10000 {
		t.Fatalf("got %d insts, want 10000", len(insts))
	}
	var branches, fp, miss int
	for _, in := range insts {
		switch in.Kind {
		case KindBranch:
			branches++
			if in.Mispredicted {
				miss++
			}
		case KindFPALU, KindFPMul, KindFPDiv:
			fp++
		case KindLoad, KindStore:
			t.Fatal("Compute must not emit memory instructions")
		}
	}
	if branches < 1500 || branches > 2500 {
		t.Errorf("branch count %d far from expected ~2000", branches)
	}
	if miss < branches/3 {
		t.Errorf("mispredict count %d too low for 0.5 rate over %d branches", miss, branches)
	}
	if fp == 0 {
		t.Error("expected some FP instructions")
	}
}

func TestSeqRunsInOrder(t *testing.T) {
	reg := NewMemRegion(0x700000, 1<<20)
	f := Seq(
		StridedStores(reg, 2, 8, 8, PCApp),
		StridedLoads(reg, 2, 8, PCApp),
	)
	insts := Collect(f(), 100)
	if len(insts) != 4 {
		t.Fatalf("got %d insts, want 4", len(insts))
	}
	if insts[0].Kind != KindStore || insts[3].Kind != KindLoad {
		t.Fatal("Seq must preserve fragment order")
	}
}

func TestRepeatCount(t *testing.T) {
	reg := NewMemRegion(0x800000, 1<<20)
	insts := Collect(Repeat(3, StridedStores(reg, 4, 8, 8, PCApp))(), 100)
	if len(insts) != 12 {
		t.Fatalf("Repeat(3) of 4 stores = 12, got %d", len(insts))
	}
}

func TestForeverNeverEnds(t *testing.T) {
	reg := NewMemRegion(0x900000, 1<<20)
	r := Forever(StridedStores(reg, 2, 8, 8, PCApp))()
	var in Inst
	for i := 0; i < 1000; i++ {
		if !r.Next(&in) {
			t.Fatal("Forever reader must never end")
		}
	}
}

func TestLimitCaps(t *testing.T) {
	reg := NewMemRegion(0xA00000, 1<<20)
	r := Limit(7, Forever(StridedStores(reg, 2, 8, 8, PCApp))())
	insts := Collect(r, 100)
	if len(insts) != 7 {
		t.Fatalf("Limit(7) produced %d insts", len(insts))
	}
}

func TestMixPhaseGranularity(t *testing.T) {
	rng := NewRNG(5)
	regA := NewMemRegion(0xB00000, 1<<20)
	regB := NewMemRegion(0xC00000, 1<<20)
	f := Mix(rng, 50,
		Weighted{1, MemsetBurst(regA, 256, 8, PCLib)},
		Weighted{1, StridedLoads(regB, 32, 8, PCApp)},
	)
	insts := Collect(f(), 100000)
	if len(insts) == 0 {
		t.Fatal("mix produced nothing")
	}
	// Fragments must appear as unbroken phases: store runs of 32 (256/8)
	// or load runs of 32, never interleaved within a phase. Adjacent
	// same-kind phases merge, so runs are multiples of 32.
	run := 1
	for i := 1; i <= len(insts); i++ {
		if i < len(insts) && insts[i].Kind == insts[i-1].Kind {
			run++
			continue
		}
		if run%32 != 0 {
			t.Fatalf("phase of %v has length %d, want a multiple of 32", insts[i-1].Kind, run)
		}
		run = 1
	}
}

func TestMixZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mix with zero total weight should panic")
		}
	}()
	Mix(NewRNG(1), 1, Weighted{0, nil})
}

func TestMemRegionWraps(t *testing.T) {
	reg := NewMemRegion(0, 2*mem.PageSize)
	a := reg.NextChunk(mem.PageSize)
	b := reg.NextChunk(mem.PageSize)
	c := reg.NextChunk(mem.PageSize)
	if a != 0 || b != mem.PageSize || c != 0 {
		t.Fatalf("chunks = %#x %#x %#x, want 0 0x1000 0", a, b, c)
	}
}

func TestMemRegionRandomAddrInBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		reg := NewMemRegion(0x1000, 16*mem.PageSize)
		a := reg.RandomAddr(rng, 8, 8)
		return a >= reg.Base && uint64(a)+8 <= uint64(reg.Base)+reg.Size && uint64(a)%8 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindLoad.String() != "load" || KindStore.String() != "store" {
		t.Fatal("Kind.String wrong for memory kinds")
	}
	if !KindLoad.IsMem() || !KindStore.IsMem() || KindBranch.IsMem() {
		t.Fatal("IsMem wrong")
	}
}
