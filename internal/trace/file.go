package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spb/internal/mem"
)

// Trace file format: the standard simulator workflow of recording a
// workload's instruction stream once and replaying it later (or feeding a
// stream captured elsewhere into this simulator). The format is a gzip
// stream of fixed-width little-endian records behind a small header.
//
//	magic   [4]byte  "SPBT"
//	version uint32   1
//	count   uint64   number of instructions
//	records count × {kind u8, size u8, dep1 u8, dep2 u8, flags u8,
//	                 pad [3]u8, addr u64, pc u64}
//
// flags bit 0 = mispredicted, bit 1 = taken.
const (
	fileMagic   = "SPBT"
	fileVersion = 1
	recordBytes = 24
)

// WriteTrace records up to max instructions from r into w.
func WriteTrace(w io.Writer, r Reader, max uint64) (written uint64, err error) {
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)

	// Header with a placeholder count; since gzip streams cannot be
	// rewritten in place, the count is written up front from a first pass
	// into memory-free streaming by buffering records. To keep a single
	// pass, the count is emitted as the true number only when known — so
	// records are staged through an in-memory run of the reader bounded by
	// max. For simulator traces (hundreds of MB at most) this is fine; the
	// alternative (count = 0 meaning "until EOF") is also accepted by
	// ReadTrace.
	var staged []Inst
	var in Inst
	for uint64(len(staged)) < max && r.Next(&in) {
		staged = append(staged, in)
	}

	if _, err := bw.WriteString(fileMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(fileVersion)); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(staged))); err != nil {
		return 0, err
	}
	var rec [recordBytes]byte
	for i := range staged {
		encodeRecord(&rec, &staged[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written++
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, zw.Close()
}

func encodeRecord(rec *[recordBytes]byte, in *Inst) {
	rec[0] = byte(in.Kind)
	rec[1] = in.Size
	rec[2] = in.Dep1
	rec[3] = in.Dep2
	var flags byte
	if in.Mispredicted {
		flags |= 1
	}
	if in.Taken {
		flags |= 2
	}
	rec[4] = flags
	rec[5], rec[6], rec[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(rec[8:16], uint64(in.Addr))
	binary.LittleEndian.PutUint64(rec[16:24], in.PC)
}

func decodeRecord(rec *[recordBytes]byte, out *Inst) error {
	kind := Kind(rec[0])
	if int(kind) >= NumKinds {
		return fmt.Errorf("trace: corrupt record: kind %d", rec[0])
	}
	*out = Inst{
		Kind:         kind,
		Size:         rec[1],
		Dep1:         rec[2],
		Dep2:         rec[3],
		Mispredicted: rec[4]&1 != 0,
		Taken:        rec[4]&2 != 0,
		Addr:         mem.Addr(binary.LittleEndian.Uint64(rec[8:16])),
		PC:           binary.LittleEndian.Uint64(rec[16:24]),
	}
	return nil
}

// FileReader replays a recorded trace.
type FileReader struct {
	zr        *gzip.Reader
	br        *bufio.Reader
	remaining uint64
	err       error
}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// OpenTrace prepares a recorded trace for replay.
func OpenTrace(r io.Reader) (*FileReader, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	br := bufio.NewReader(zr)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil || version != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadTrace)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadTrace)
	}
	return &FileReader{zr: zr, br: br, remaining: count}, nil
}

// Next implements Reader.
func (f *FileReader) Next(out *Inst) bool {
	if f.err != nil || f.remaining == 0 {
		return false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(f.br, rec[:]); err != nil {
		f.err = fmt.Errorf("%w: truncated records", ErrBadTrace)
		return false
	}
	if err := decodeRecord(&rec, out); err != nil {
		f.err = err
		return false
	}
	f.remaining--
	return true
}

// Err returns the first decoding error encountered, if any.
func (f *FileReader) Err() error { return f.err }

// Remaining reports how many instructions are left to replay.
func (f *FileReader) Remaining() uint64 { return f.remaining }

// Close releases the decompressor.
func (f *FileReader) Close() error { return f.zr.Close() }
