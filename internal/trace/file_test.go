package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	reg := NewMemRegion(0x1000000, 1<<20)
	src := Mix(rng, 20,
		Weighted{1, MemsetBurst(reg, 512, 8, PCLib)},
		Weighted{1, Compute(rng, ComputeOptions{Count: 50, BrFrac: 0.3, MissRate: 0.1, PC: PCApp})},
	)
	original := Collect(src(), 2000)

	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceReader(original), uint64(len(original)))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(original)) {
		t.Fatalf("wrote %d records, want %d", n, len(original))
	}

	fr, err := OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if fr.Remaining() != uint64(len(original)) {
		t.Fatalf("Remaining = %d, want %d", fr.Remaining(), len(original))
	}
	replayed := Collect(fr, len(original)+10)
	if fr.Err() != nil {
		t.Fatal(fr.Err())
	}
	if len(replayed) != len(original) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(original))
	}
	for i := range original {
		if original[i] != replayed[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, original[i], replayed[i])
		}
	}
}

func TestTraceWriteCapsAtMax(t *testing.T) {
	reg := NewMemRegion(0x2000000, 1<<20)
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, Forever(MemsetBurst(reg, 512, 8, PCLib))(), 100)
	if err != nil || n != 100 {
		t.Fatalf("wrote %d (err %v), want 100", n, err)
	}
	fr, err := OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if got := len(Collect(fr, 1000)); got != 100 {
		t.Fatalf("replayed %d, want 100", got)
	}
}

func TestOpenTraceRejectsGarbage(t *testing.T) {
	if _, err := OpenTrace(bytes.NewReader([]byte("not a gzip stream"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("garbage input error = %v, want ErrBadTrace", err)
	}
}

func TestOpenTraceRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	// Valid gzip, wrong payload.
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("XXXX.........."))
	zw.Close()
	if _, err := OpenTrace(&buf); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("wrong magic error = %v, want ErrBadTrace", err)
	}
}

func TestTraceTruncatedRecords(t *testing.T) {
	var buf bytes.Buffer
	reg := NewMemRegion(0x3000000, 1<<20)
	if _, err := WriteTrace(&buf, MemsetBurst(reg, 256, 8, PCLib)(), 32); err != nil {
		t.Fatal(err)
	}
	// Corrupt: truncate the gzip stream.
	cut := buf.Bytes()[:buf.Len()/2]
	fr, err := OpenTrace(bytes.NewReader(cut))
	if err != nil {
		// Truncation may already break the header; also acceptable.
		return
	}
	Collect(fr, 1000)
	if fr.Err() == nil {
		t.Fatal("truncated trace should surface an error")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, NewSliceReader(nil), 100); err != nil {
		t.Fatal(err)
	}
	fr, err := OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var in Inst
	if fr.Next(&in) {
		t.Fatal("empty trace should produce nothing")
	}
	if fr.Err() != nil {
		t.Fatal(fr.Err())
	}
}
