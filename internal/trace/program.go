package trace

import "spb/internal/mem"

// This file implements the compiled form of a workload generator. The
// closure combinators in synth.go (Seq, Mix, Forever, the fragment builders)
// are convenient to compose but cost three or four nested closure calls per
// instruction on the simulator's hottest path. A Program flattens one
// Forever(Mix(...)) phase loop into a table of Phase descriptors, each a
// sequence of Leaf records, stepped by a single switch — no interface
// dispatch, no per-phase allocation — while calling the shared RNG and the
// MemRegion chunk allocator in exactly the order the closures do, so the
// generated instruction stream is bit-identical.
//
// The equivalence relies on a property of the closure tree workloads build:
// Mix picks fragments lazily (one rng.Intn per phase, immediately before the
// phase's first instruction) and re-activating Mix under Forever has no side
// effects, so Forever(Mix(phases, parts...)) reduces to an unbounded
// pick-a-phase / run-it-to-completion loop.

// Op identifies the generator a Leaf runs; each corresponds to one of the
// fragment builders in synth.go.
type Op uint8

const (
	// OpMemset emits Bytes/Size contiguous stores of Size bytes (MemsetBurst).
	OpMemset Op = iota
	// OpMemcpy emits a load/dependent-store pair per 8 bytes (MemcpyBurst).
	OpMemcpy
	// OpRMW emits load / ALU / dependent-store triples (RMWBurst).
	OpRMW
	// OpStridedStores emits Count stores Stride bytes apart (StridedStores).
	OpStridedStores
	// OpStridedLoads emits Count loads Stride bytes apart (StridedLoads).
	OpStridedLoads
	// OpPointerChase emits Count serially dependent random loads (PointerChase).
	OpPointerChase
	// OpScatterStores emits Count random stores (ScatterStores).
	OpScatterStores
	// OpCompute emits an arithmetic/branch block (Compute).
	OpCompute
	// OpLoadUse emits load + dependent-branch pairs (LoadUse).
	OpLoadUse
)

// Leaf is one compiled fragment. Which fields matter depends on Op, matching
// the corresponding builder's parameters in synth.go.
type Leaf struct {
	Op  Op
	Dst *MemRegion // region streamed/scattered through (builders' buf/dst)
	Src *MemRegion // OpMemcpy source

	Bytes  uint64 // burst size (OpMemset/OpMemcpy/OpRMW)
	Count  int    // element count (strided/chase/scatter/load-use)
	Stride uint64 // byte distance between strided elements
	Size   int    // store size for OpMemset/OpStridedStores

	PC       uint64
	MissRate float64        // OpLoadUse branch misprediction probability
	Compute  ComputeOptions // OpCompute parameters

	// Repeat runs the leaf that many consecutive activations (each with a
	// fresh NextChunk), like Repeat(n, fragment); 0 means once.
	Repeat int
}

// Phase is one weighted alternative of a Program's pick loop: either a
// sequence of Leaves run in order to completion, or Take instructions drawn
// from a persistent sub-program (the PARSEC private-stream case).
type Phase struct {
	Weight int
	Leaves []Leaf

	Sub  *Program
	Take uint64
}

// Program is a compiled workload generator: an endless weighted-phase loop
// equivalent to Forever(Mix(rng, ·, parts...)) over the same fragments.
// It implements Reader.
type Program struct {
	rng    *RNG
	phases []Phase
	total  int

	// Current phase.
	phase    *Phase
	leafIdx  int
	takeLeft uint64

	// Current leaf activation.
	leaf     *Leaf
	active   bool
	reps     int
	base     mem.Addr // current chunk base (dst side)
	srcBase  mem.Addr // current chunk base of the memcpy source
	off      uint64
	i        int
	step     int
	branches int
}

// NewProgram builds a program over the given phases. Weights follow Mix's
// rules: negative weights and an all-zero total panic.
func NewProgram(rng *RNG, phases ...Phase) *Program {
	total := 0
	for i := range phases {
		if phases[i].Weight < 0 {
			panic("trace: negative Program phase weight")
		}
		total += phases[i].Weight
	}
	if total == 0 {
		panic("trace: Program with zero total weight")
	}
	return &Program{rng: rng, phases: phases, total: total}
}

// pick selects the next phase by weight, consuming one rng.Intn exactly as
// Mix's pick does, and resets the phase cursor.
func (p *Program) pick() {
	n := p.rng.Intn(p.total)
	idx := len(p.phases) - 1
	for k := range p.phases {
		if n < p.phases[k].Weight {
			idx = k
			break
		}
		n -= p.phases[k].Weight
	}
	ph := &p.phases[idx]
	p.phase = ph
	p.leafIdx = 0
	p.active = false
	p.takeLeft = ph.Take
}

// activate starts one activation of the current leaf, drawing its region
// chunks in the same order the closure builders do (memcpy: src then dst).
func (p *Program) activate() {
	l := p.leaf
	p.off, p.i, p.step, p.branches = 0, 0, 0, 0
	switch l.Op {
	case OpMemset, OpRMW:
		p.base = l.Dst.NextChunk(l.Bytes)
	case OpMemcpy:
		p.srcBase = l.Src.NextChunk(l.Bytes)
		p.base = l.Dst.NextChunk(l.Bytes)
	case OpStridedStores, OpStridedLoads:
		p.base = l.Dst.NextChunk(uint64(l.Count) * l.Stride)
	}
}

// Next implements Reader.
func (p *Program) Next(out *Inst) bool {
	for {
		if p.phase == nil {
			p.pick()
		}
		ph := p.phase
		if ph.Sub != nil {
			if p.takeLeft > 0 {
				p.takeLeft--
				if ph.Sub.Next(out) {
					return true
				}
			}
			p.phase = nil
			continue
		}
		if p.active {
			if p.emit(out) {
				return true
			}
			// Activation exhausted: repeat the leaf or advance the sequence.
			p.reps--
			if p.reps > 0 {
				p.activate()
				continue
			}
			p.active = false
			p.leafIdx++
		}
		if p.leafIdx >= len(ph.Leaves) {
			p.phase = nil
			continue
		}
		p.leaf = &ph.Leaves[p.leafIdx]
		p.reps = p.leaf.Repeat
		if p.reps < 1 {
			p.reps = 1
		}
		p.activate()
		p.active = true
	}
}

// Skip advances the stream by exactly n instructions, leaving the program in
// the state n successful Next calls would: the same phase picks, chunk draws
// and RNG consumption, so interleaving Skip with Next is indistinguishable
// from calling Next alone (TestProgramSkipEquivalence). Activations whose
// instructions carry no per-instruction randomness — the dense burst ops —
// are jumped in constant time; RNG-consuming ops replay their draws without
// materializing instructions. Sampled runs use this to drain the unwarmed
// head of each inter-window skip at a fraction of Next's cost.
func (p *Program) Skip(n uint64) { p.SkipTouch(n, nil) }

// Touch receives the memory footprint of skipped instructions: addr is the
// first byte of a touched span, n its length, store whether the span is
// written. Dense burst ops report one span per activation segment (the
// consumer iterates its blocks); randomly-addressed ops report each access.
type Touch func(addr mem.Addr, n uint64, store bool)

// SkipTouch is Skip with a footprint callback: the stream state advances
// exactly as Skip does, and touch additionally receives every skipped memory
// access at byte-span granularity. This is what lets a sampled run keep the
// large, long-history structures — the shared LLC and the coherence
// directory — continuously warm across skips at near-Skip cost: the dense
// ops (the bulk of the store-burst workloads) yield their footprint as O(1)
// spans instead of materialized instructions, and the RNG-addressed ops
// surface the very draws Skip must replay anyway. A nil touch is exactly
// Skip.
func (p *Program) SkipTouch(n uint64, touch Touch) {
	for n > 0 {
		if p.phase == nil {
			p.pick()
		}
		ph := p.phase
		if ph.Sub != nil {
			if p.takeLeft > 0 {
				k := min(n, p.takeLeft)
				ph.Sub.SkipTouch(k, touch)
				p.takeLeft -= k
				n -= k
				continue
			}
			p.phase = nil
			continue
		}
		if p.active {
			taken, exhausted := p.skipLeaf(n, touch)
			n -= taken
			if !exhausted {
				continue // budget ran out mid-activation (n is now 0)
			}
			p.reps--
			if p.reps > 0 {
				p.activate()
				continue
			}
			p.active = false
			p.leafIdx++
		}
		if p.leafIdx >= len(ph.Leaves) {
			p.phase = nil
			continue
		}
		p.leaf = &ph.Leaves[p.leafIdx]
		p.reps = p.leaf.Repeat
		if p.reps < 1 {
			p.reps = 1
		}
		p.activate()
		p.active = true
	}
}

// skipLeaf consumes up to budget instructions from the current activation,
// returning how many it took and whether that exhausted the activation. Each
// case advances the exact state (and RNG draws) the corresponding emit case
// would; the dense ops do it in constant time. A non-nil touch receives the
// skipped instructions' memory footprint (see SkipTouch).
func (p *Program) skipLeaf(budget uint64, touch Touch) (taken uint64, exhausted bool) {
	l := p.leaf
	clamp := func(remaining uint64) uint64 {
		if remaining <= budget {
			return remaining
		}
		return budget
	}
	switch l.Op {
	case OpMemset:
		sz := uint64(l.Size)
		remaining := (l.Bytes - min(p.off, l.Bytes) + sz - 1) / sz
		taken = clamp(remaining)
		if touch != nil && taken > 0 {
			touch(p.base+mem.Addr(p.off), taken*sz, true)
		}
		p.off += taken * sz
		return taken, taken == remaining

	case OpMemcpy:
		remaining := 2*((l.Bytes-min(p.off, l.Bytes)+7)/8) - uint64(p.step)
		taken = clamp(remaining)
		if touch != nil && taken > 0 {
			// Micro-steps alternate load/store; with step 1 the pending
			// store at the current offset comes first and the next load is
			// one element on.
			nLoads := (taken + uint64(1-p.step)) / 2
			if nLoads > 0 {
				touch(p.srcBase+mem.Addr(p.off+8*uint64(p.step)), 8*nLoads, false)
			}
			if nStores := taken - nLoads; nStores > 0 {
				touch(p.base+mem.Addr(p.off), 8*nStores, true)
			}
		}
		s := uint64(p.step) + taken
		p.off += 8 * (s / 2)
		p.step = int(s % 2)
		return taken, taken == remaining

	case OpRMW:
		remaining := 3*((l.Bytes-min(p.off, l.Bytes)+7)/8) - uint64(p.step)
		taken = clamp(remaining)
		if touch != nil && taken > 0 {
			// Triples step load/ALU/store at one offset, then advance; a
			// mid-triple entry owes its load already, so the next load sits
			// one element on while the store still lands at the current
			// offset.
			count := func(first uint64) uint64 {
				if taken <= first {
					return 0
				}
				return (taken - first + 2) / 3
			}
			nLoads := count((3 - uint64(p.step)) % 3)
			loadOff := p.off
			if p.step != 0 {
				loadOff += 8
			}
			if nLoads > 0 {
				touch(p.base+mem.Addr(loadOff), 8*nLoads, false)
			}
			if nStores := count((2 - uint64(p.step) + 3) % 3); nStores > 0 {
				touch(p.base+mem.Addr(p.off), 8*nStores, true)
			}
		}
		s := uint64(p.step) + taken
		p.off += 8 * (s / 3)
		p.step = int(s % 3)
		return taken, taken == remaining

	case OpStridedStores, OpStridedLoads:
		remaining := uint64(l.Count - p.i)
		taken = clamp(remaining)
		if touch != nil && taken > 0 {
			store := l.Op == OpStridedStores
			sz := uint64(8)
			if store {
				sz = uint64(l.Size)
			}
			if l.Stride <= mem.BlockSize {
				touch(p.base+mem.Addr(uint64(p.i)*l.Stride), (taken-1)*l.Stride+sz, store)
			} else {
				for k := uint64(0); k < taken; k++ {
					touch(p.base+mem.Addr((uint64(p.i)+k)*l.Stride), sz, store)
				}
			}
		}
		p.i += int(taken)
		return taken, taken == remaining

	case OpPointerChase, OpScatterStores:
		remaining := uint64(l.Count - p.i)
		taken = clamp(remaining)
		store := l.Op == OpScatterStores
		for k := uint64(0); k < taken; k++ {
			a := l.Dst.RandomAddr(p.rng, 8, 8)
			if touch != nil {
				touch(a, 8, store)
			}
		}
		p.i += int(taken)
		return taken, taken == remaining

	case OpCompute:
		o := &l.Compute
		remaining := uint64(o.Count - p.i)
		taken = clamp(remaining)
		rng := p.rng
		// Draws whose outcome does not steer control flow or program state
		// (misprediction, FP class, latency class, dependence distance) are
		// replayed with Advance: same state evolution, no value computed.
		for k := uint64(0); k < taken; k++ {
			p.i++
			if rng.Bool(o.BrFrac) {
				p.branches++
				rng.Advance()
				continue
			}
			rng.Advance()
			if !rng.Bool(o.DivFrac) {
				rng.Advance()
			}
			if rng.Bool(o.DepFrac) {
				rng.Advance()
			}
		}
		return taken, taken == remaining

	case OpLoadUse:
		remaining := 2*uint64(l.Count-p.i) - uint64(p.step)
		taken = clamp(remaining)
		rng := p.rng
		for k := uint64(0); k < taken; k++ {
			if p.step == 0 {
				a := l.Dst.RandomAddr(rng, 8, 8)
				if touch != nil {
					touch(a, 8, false)
				}
				p.step = 1
			} else {
				rng.Advance() // taken draw — value unused when skipping
				rng.Advance() // misprediction draw
				p.i++
				p.step = 0
			}
		}
		return taken, taken == remaining
	}
	panic("trace: unknown program op")
}

// emit produces the current activation's next instruction, or reports false
// when the activation is exhausted. Each case mirrors its synth.go builder
// statement for statement — in particular every RNG call, in order.
func (p *Program) emit(out *Inst) bool {
	l := p.leaf
	switch l.Op {
	case OpMemset:
		if p.off >= l.Bytes {
			return false
		}
		*out = Inst{Kind: KindStore, Addr: p.base + mem.Addr(p.off), Size: uint8(l.Size), PC: l.PC}
		p.off += uint64(l.Size)
		return true

	case OpMemcpy:
		if p.off >= l.Bytes {
			return false
		}
		if p.step == 0 {
			*out = Inst{Kind: KindLoad, Addr: p.srcBase + mem.Addr(p.off), Size: 8, PC: l.PC}
			p.step = 1
		} else {
			*out = Inst{Kind: KindStore, Addr: p.base + mem.Addr(p.off), Size: 8, Dep1: 1, PC: l.PC + 4}
			p.off += 8
			p.step = 0
		}
		return true

	case OpRMW:
		if p.off >= l.Bytes {
			return false
		}
		switch p.step {
		case 0:
			*out = Inst{Kind: KindLoad, Addr: p.base + mem.Addr(p.off), Size: 8, PC: l.PC}
		case 1:
			*out = Inst{Kind: KindIntALU, Dep1: 1, PC: l.PC + 4}
		default:
			*out = Inst{Kind: KindStore, Addr: p.base + mem.Addr(p.off), Size: 8, Dep1: 1, PC: l.PC + 8}
			p.off += 8
		}
		p.step = (p.step + 1) % 3
		return true

	case OpStridedStores:
		if p.i >= l.Count {
			return false
		}
		*out = Inst{Kind: KindStore, Addr: p.base + mem.Addr(uint64(p.i)*l.Stride), Size: uint8(l.Size), PC: l.PC}
		p.i++
		return true

	case OpStridedLoads:
		if p.i >= l.Count {
			return false
		}
		*out = Inst{Kind: KindLoad, Addr: p.base + mem.Addr(uint64(p.i)*l.Stride), Size: 8, PC: l.PC}
		p.i++
		return true

	case OpPointerChase:
		if p.i >= l.Count {
			return false
		}
		dep := uint8(0)
		if p.i > 0 {
			dep = 1
		}
		*out = Inst{Kind: KindLoad, Addr: l.Dst.RandomAddr(p.rng, 8, 8), Size: 8, Dep1: dep, PC: l.PC}
		p.i++
		return true

	case OpScatterStores:
		if p.i >= l.Count {
			return false
		}
		*out = Inst{Kind: KindStore, Addr: l.Dst.RandomAddr(p.rng, 8, 8), Size: 8, PC: l.PC}
		p.i++
		return true

	case OpCompute:
		o := &l.Compute
		if p.i >= o.Count {
			return false
		}
		p.i++
		*out = Inst{PC: o.PC + uint64(p.i%64)*4}
		rng := p.rng
		if rng.Bool(o.BrFrac) {
			out.Kind = KindBranch
			out.Dep1 = 1
			p.branches++
			out.Taken = p.branches%8 != 0
			out.Mispredicted = rng.Bool(o.MissRate)
			return true
		}
		kind := KindIntALU
		fp := rng.Bool(o.FPFrac)
		switch {
		case rng.Bool(o.DivFrac):
			kind = KindIntDiv
			if fp {
				kind = KindFPDiv
			}
		case rng.Bool(o.MulFrac):
			kind = KindIntMul
			if fp {
				kind = KindFPMul
			}
		case fp:
			kind = KindFPALU
		}
		out.Kind = kind
		if rng.Bool(o.DepFrac) {
			out.Dep1 = uint8(1 + rng.Intn(4))
		}
		return true

	case OpLoadUse:
		if p.i >= l.Count {
			return false
		}
		if p.step == 0 {
			*out = Inst{Kind: KindLoad, Addr: l.Dst.RandomAddr(p.rng, 8, 8), Size: 8, PC: l.PC}
			p.step = 1
		} else {
			*out = Inst{
				Kind: KindBranch, Dep1: 1, PC: l.PC + 4,
				Taken:        p.rng.Bool(0.85),
				Mispredicted: p.rng.Bool(l.MissRate),
			}
			p.i++
			p.step = 0
		}
		return true
	}
	panic("trace: unknown program op")
}
