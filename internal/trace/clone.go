package trace

// This file implements deep-copying of compiled trace programs, the piece of
// warm-start forking (DESIGN.md §12) that lives in this package. A Program is
// a cursor over an immutable phase table plus mutable region allocators and
// an RNG; Clone copies every mutable part so a forked simulation advances its
// own stream without disturbing the parent's. Identity of shared objects is
// preserved: if two leaves (or two programs cloned together) reference the
// same *MemRegion or *RNG, their clones share a single copy, keeping the
// chunk-allocation interleaving identical to the original.

// cloneCtx maps original objects to their clones so shared references stay
// shared in the copy.
type cloneCtx struct {
	regions map[*MemRegion]*MemRegion
	rngs    map[*RNG]*RNG
	progs   map[*Program]*Program
}

func newCloneCtx() *cloneCtx {
	return &cloneCtx{
		regions: make(map[*MemRegion]*MemRegion),
		rngs:    make(map[*RNG]*RNG),
		progs:   make(map[*Program]*Program),
	}
}

func (c *cloneCtx) region(r *MemRegion) *MemRegion {
	if r == nil {
		return nil
	}
	if cp, ok := c.regions[r]; ok {
		return cp
	}
	cp := &MemRegion{Base: r.Base, Size: r.Size, cur: r.cur}
	c.regions[r] = cp
	return cp
}

func (c *cloneCtx) rng(r *RNG) *RNG {
	if r == nil {
		return nil
	}
	if cp, ok := c.rngs[r]; ok {
		return cp
	}
	cp := &RNG{state: r.state}
	c.rngs[r] = cp
	return cp
}

// clone deep-copies the program under ctx. The clone is registered before
// phases are copied so cyclic Sub references (not produced by the workload
// builders, but legal) terminate.
func (p *Program) clone(ctx *cloneCtx) *Program {
	if p == nil {
		return nil
	}
	if cp, ok := ctx.progs[p]; ok {
		return cp
	}
	cp := &Program{}
	ctx.progs[p] = cp

	cp.rng = ctx.rng(p.rng)
	cp.total = p.total
	cp.phases = make([]Phase, len(p.phases))
	for i := range p.phases {
		ph := &p.phases[i]
		nph := &cp.phases[i]
		nph.Weight = ph.Weight
		nph.Take = ph.Take
		nph.Sub = ph.Sub.clone(ctx)
		if ph.Leaves != nil {
			nph.Leaves = make([]Leaf, len(ph.Leaves))
			for j := range ph.Leaves {
				l := ph.Leaves[j]
				l.Dst = ctx.region(l.Dst)
				l.Src = ctx.region(l.Src)
				nph.Leaves[j] = l
			}
		}
	}

	// Re-anchor the interior cursor pointers into the cloned tables.
	if p.phase != nil {
		for i := range p.phases {
			if p.phase == &p.phases[i] {
				cp.phase = &cp.phases[i]
				break
			}
		}
	}
	if p.leaf != nil {
		// p.leaf points into some phase's Leaves; find it by identity. A
		// stale leaf (activation finished, leafIdx advanced past it) is
		// never dereferenced before reassignment, so not finding it in the
		// current phase is impossible by construction — leaf pointers only
		// ever target the owning program's own phase table.
	search:
		for i := range p.phases {
			ls := p.phases[i].Leaves
			for j := range ls {
				if p.leaf == &ls[j] {
					cp.leaf = &cp.phases[i].Leaves[j]
					break search
				}
			}
		}
	}

	cp.leafIdx = p.leafIdx
	cp.takeLeft = p.takeLeft
	cp.active = p.active
	cp.reps = p.reps
	cp.base = p.base
	cp.srcBase = p.srcBase
	cp.off = p.off
	cp.i = p.i
	cp.step = p.step
	cp.branches = p.branches
	return cp
}

// Clone returns a deep copy of the program: same phase definitions, private
// copies of the RNG, every referenced MemRegion, any sub-programs, and the
// full activation cursor. The clone produces exactly the instruction stream
// the original would have from this point on.
func (p *Program) Clone() *Program {
	return p.clone(newCloneCtx())
}

// ClonePrograms deep-copies a set of programs under one shared identity map,
// so regions or RNGs shared between the programs stay shared between the
// clones (the multi-threaded workload case).
func ClonePrograms(ps []*Program) []*Program {
	ctx := newCloneCtx()
	out := make([]*Program, len(ps))
	for i, p := range ps {
		out[i] = p.clone(ctx)
	}
	return out
}
