package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"spb/internal/bpred"
	"spb/internal/config"
	"spb/internal/cpu"
	"spb/internal/memsys"
	"spb/internal/obs"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// SMARTS-style sampled simulation (DESIGN.md §14).
//
// A sampled run covers the spec's full per-core instruction budget, but only
// simulates short measurement intervals in detail. The rest of the stream is
// executed functionally — the same warm() machinery warm-start uses: caches,
// coherence directory, TLBs and branch predictors stay architecturally warm
// while timing, ROB/MSHR modeling and statistics are skipped. Each sampling
// period of IntervalInsts instructions per core ends with WarmInsts of
// detailed (but unmeasured) simulation that re-warms the timing state the
// functional mode cannot carry — ROB, store buffer, MSHR occupancy — followed
// by DetailedInsts of measured detailed simulation. The per-interval
// measurements are treated as CLT samples: the run reports their mean and a
// 95% confidence half-width for every paper-relevant rate, and the aggregate
// Result counters sum the measured windows only, so IPC() and the Top-Down
// report describe the sampled estimate.
//
// Everything is deterministic: the interval schedule is a pure function of
// the spec, so the same spec produces byte-identical canonical stats JSON on
// every run — the property the content-addressed caches require.

// SamplingConfig configures SMARTS-style systematic sampling of a run. The
// zero value disables sampling (every instruction simulates in detail).
type SamplingConfig struct {
	// IntervalInsts is the sampling period: one detailed measurement is
	// taken every IntervalInsts committed instructions per core. 0 disables
	// sampling.
	IntervalInsts uint64
	// DetailedInsts is the length of each measured detailed interval
	// (0 = default 1000).
	DetailedInsts uint64
	// WarmInsts is the detailed-warming prefix simulated (but not measured)
	// immediately before each measured interval, giving the ROB, store
	// buffer and MSHRs time to refill after functional fast-forward
	// (0 = default 2× DetailedInsts).
	WarmInsts uint64
	// HistoryInsts bounds the full functional-warming history
	// (MRRL/BLRL-style): when non-zero, only the last HistoryInsts
	// instructions of the skip preceding each detailed segment warm every
	// level — private caches, TLBs, branch predictor, prefetcher tables.
	// The earlier portion of the skip still replays its memory footprint
	// against the shared LLC and the coherence directory (a cheap
	// touch-only tier): those structures hold history as long as the LLC's
	// capacity — often longer than a whole sampling period — so leaving
	// them stale over a sparse skip makes measured windows hit an LLC full
	// of lines the elided traffic would have evicted. The bound therefore
	// only needs to cover the short-history private state (~the L1/L2/TLB
	// fill time), not the LLC's reuse distance. 0 warms every skipped
	// instruction at every level (exact functional history);
	// scripts/bench_sampled.sh validates the configuration it ships.
	HistoryInsts uint64
}

// DefaultSampling is the validated sampling configuration behind the CLIs'
// -sample shortcut and the sampled benchmarks: an 8k-instruction detailed
// window behind 12k of detailed warming, once per 125k instructions (16%
// detailed coverage, 80 windows at a 10M-instruction horizon). The
// equivalence suite in sampling_test.go pins this exact configuration:
// every paper-relevant metric lands inside its reported 95% CI across the
// SB-bound sweep grid.
var DefaultSampling = SamplingConfig{
	IntervalInsts: 125_000,
	DetailedInsts: 8_000,
	WarmInsts:     12_000,
}

// Enabled reports whether sampling is configured.
func (c SamplingConfig) Enabled() bool { return c.IntervalInsts > 0 }

// normalize fills defaulted fields; a disabled config collapses to the zero
// value so that "no sampling" is a single canonical point.
func (c SamplingConfig) normalize() SamplingConfig {
	if c.IntervalInsts == 0 {
		return SamplingConfig{}
	}
	if c.DetailedInsts == 0 {
		c.DetailedInsts = 1000
	}
	if c.WarmInsts == 0 {
		c.WarmInsts = 2 * c.DetailedInsts
	}
	return c
}

// validate rejects configurations whose detailed portion does not fit the
// sampling period.
func (c SamplingConfig) validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.WarmInsts+c.DetailedInsts > c.IntervalInsts {
		return fmt.Errorf("sim: sampling warm+detailed insts (%d+%d) exceed the interval (%d)",
			c.WarmInsts, c.DetailedInsts, c.IntervalInsts)
	}
	return nil
}

// SampleStats is the statistical summary of a sampled run: interval counts
// and, for each paper-relevant rate, the mean and 95% error half-width over
// the per-interval measurements. Every measured rate is per committed
// instruction — intervals commit (nearly) equal instruction counts, so the
// arithmetic mean of per-interval rates is a consistent estimator of the
// full run's Σcount/Σinsts (an arithmetic mean of per-interval IPCs is
// not: slow intervals carry more cycles). IPC is derived from CPI by the
// delta method. Rates travel as integer parts-per-million so they fit the
// integer-valued, byte-deterministic canonical stats set (the same
// convention as td.*).
//
// The CI95 half-widths are conservative total-error bounds, not pure CLT
// sampling intervals: each is the CLT 95% half-width plus a fixed
// sampleBiasGuard fraction of the mean, covering the systematic bias that
// functional warming cannot eliminate (cold prefetcher/MSHR/wrong-path
// state at each detailed segment; see DESIGN.md §14).
type SampleStats struct {
	// Intervals is the number of measured detailed intervals.
	Intervals uint64
	// MeasuredInsts counts committed instructions inside measured windows.
	MeasuredInsts uint64
	// DetailedInsts counts instructions simulated in detail, including the
	// unmeasured per-interval detailed warming.
	DetailedInsts uint64
	// FastForwardInsts counts instructions covered functionally between
	// detailed intervals — warmed, or merely drained past under a bounded
	// warming history (the sampling skips; the shared warmup prefix is
	// accounted separately).
	FastForwardInsts uint64

	// IPC is derived from CPI (mean = 1/cpiMean, CI by the delta method).
	IPCMeanPPM uint64
	IPCCI95PPM uint64
	// CPIMean is cycles per committed instruction (max-across-cores cycles
	// over summed commits, matching the aggregate Result convention).
	CPIMeanPPM uint64
	CPICI95PPM uint64

	SBStallPerInstMeanPPM       uint64
	SBStallPerInstCI95PPM       uint64
	OtherStallPerInstMeanPPM    uint64
	OtherStallPerInstCI95PPM    uint64
	FrontendStallPerInstMeanPPM uint64
	FrontendStallPerInstCI95PPM uint64
	ExecStallL1DPerInstMeanPPM  uint64
	ExecStallL1DPerInstCI95PPM  uint64
	L1MissPerInstMeanPPM        uint64
	L1MissPerInstCI95PPM        uint64
	DRAMPerInstMeanPPM          uint64
	DRAMPerInstCI95PPM          uint64
}

// Sampled metric indices (fixed order: the accumulation order is part of
// byte-determinism).
const (
	smCPI = iota
	smSBStallPI
	smOtherStallPI
	smFrontendStallPI
	smExecL1DPI
	smL1MissPI
	smDRAMPI
	nSampleMetrics
)

// tQuantile975 is the two-sided 95% Student-t quantile for df degrees of
// freedom. Sampled runs often have few intervals (a 2M-instruction horizon
// at the default period gives n=16), where the normal z=1.96 undercovers;
// the t-quantile is the correct small-sample interval and converges to z as
// the interval count grows.
func tQuantile975(df uint64) float64 {
	table := [...]float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df == 0 {
		return 0
	}
	if df <= uint64(len(table)) {
		return table[df-1]
	}
	// Smooth tail: 2.021 at df=40, 2.000 at df=60, → 1.96.
	return 1.96 + 2.4/float64(df)
}

// sampleBiasGuard is the non-sampling-error allowance added to every
// reported confidence half-width, as a fraction of the metric's mean.
// Functional warming carries caches, directory, TLBs and branch predictors
// across sampling skips, but each detailed segment still restarts with cold
// prefetcher training, empty MSHRs and no wrong-path history; the detailed
// warming prefix shrinks that bias but cannot bound it, so the reported
// interval budgets for it explicitly (validated against full-detail runs by
// TestSampledWithinErrorBound and scripts/bench_sampled.sh).
const sampleBiasGuard = 0.08

// sampleAccum accumulates per-interval metric samples in a fixed order.
type sampleAccum struct {
	n     uint64
	sum   [nSampleMetrics]float64
	sumsq [nSampleMetrics]float64
}

func (a *sampleAccum) add(v [nSampleMetrics]float64) {
	a.n++
	for i, x := range v {
		a.sum[i] += x
		a.sumsq[i] += x * x
	}
}

// meanCI returns the sample mean and the error half-width of metric i: the
// 95% CLT half-width (zero below two samples — no variance information)
// plus the systematic-bias guard.
func (a *sampleAccum) meanCI(i int) (mean, ci float64) {
	if a.n == 0 {
		return 0, 0
	}
	n := float64(a.n)
	mean = a.sum[i] / n
	if a.n >= 2 {
		variance := (a.sumsq[i] - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0 // float cancellation guard
		}
		ci = tQuantile975(a.n-1) * math.Sqrt(variance/n)
	}
	return mean, ci + sampleBiasGuard*mean
}

// toPPM converts a non-negative rate to integer parts-per-million,
// round-half-up.
func toPPM(v float64) uint64 {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return uint64(v*1e6 + 0.5)
}

func (a *sampleAccum) finalize(s *SampleStats) {
	set := func(i int, mean, ci *uint64) {
		m, c := a.meanCI(i)
		*mean, *ci = toPPM(m), toPPM(c)
	}
	set(smCPI, &s.CPIMeanPPM, &s.CPICI95PPM)
	set(smSBStallPI, &s.SBStallPerInstMeanPPM, &s.SBStallPerInstCI95PPM)
	set(smOtherStallPI, &s.OtherStallPerInstMeanPPM, &s.OtherStallPerInstCI95PPM)
	set(smFrontendStallPI, &s.FrontendStallPerInstMeanPPM, &s.FrontendStallPerInstCI95PPM)
	set(smExecL1DPI, &s.ExecStallL1DPerInstMeanPPM, &s.ExecStallL1DPerInstCI95PPM)
	set(smL1MissPI, &s.L1MissPerInstMeanPPM, &s.L1MissPerInstCI95PPM)
	set(smDRAMPI, &s.DRAMPerInstMeanPPM, &s.DRAMPerInstCI95PPM)

	// IPC = 1/CPI via the delta method: d(1/x) = dx/x².
	cpi, cpiCI := a.meanCI(smCPI)
	if cpi > 0 {
		s.IPCMeanPPM = toPPM(1 / cpi)
		s.IPCCI95PPM = toPPM(cpiCI / (cpi * cpi))
	}
}

// subCPU returns the fieldwise counter delta b-a of one core's stats.
func subCPU(a, b cpu.Stats) cpu.Stats {
	return cpu.Stats{
		Cycles:              b.Cycles - a.Cycles,
		Committed:           b.Committed - a.Committed,
		Loads:               b.Loads - a.Loads,
		Stores:              b.Stores - a.Stores,
		Branches:            b.Branches - a.Branches,
		Mispredicts:         b.Mispredicts - a.Mispredicts,
		WrongPathInsts:      b.WrongPathInsts - a.WrongPathInsts,
		ForwardedLoads:      b.ForwardedLoads - a.ForwardedLoads,
		PartialForwards:     b.PartialForwards - a.PartialForwards,
		SBStallCycles:       b.SBStallCycles - a.SBStallCycles,
		ROBStallCycles:      b.ROBStallCycles - a.ROBStallCycles,
		IQStallCycles:       b.IQStallCycles - a.IQStallCycles,
		LQStallCycles:       b.LQStallCycles - a.LQStallCycles,
		FrontendStallCycles: b.FrontendStallCycles - a.FrontendStallCycles,
		SBStallApp:          b.SBStallApp - a.SBStallApp,
		SBStallLib:          b.SBStallLib - a.SBStallLib,
		SBStallKernel:       b.SBStallKernel - a.SBStallKernel,
		ExecStallL1DPending: b.ExecStallL1DPending - a.ExecStallL1DPending,
		StoresPerformed:     b.StoresPerformed - a.StoresPerformed,
		SPBBursts:           b.SPBBursts - a.SPBBursts,
	}
}

// addCPU adds a per-interval aggregate delta into dst. Cycles add too: the
// run total is the sum of per-interval (max-across-cores) cycle spans.
func addCPU(dst *cpu.Stats, d cpu.Stats) {
	dst.Cycles += d.Cycles
	dst.Committed += d.Committed
	dst.Loads += d.Loads
	dst.Stores += d.Stores
	dst.Branches += d.Branches
	dst.Mispredicts += d.Mispredicts
	dst.WrongPathInsts += d.WrongPathInsts
	dst.ForwardedLoads += d.ForwardedLoads
	dst.PartialForwards += d.PartialForwards
	dst.SBStallCycles += d.SBStallCycles
	dst.ROBStallCycles += d.ROBStallCycles
	dst.IQStallCycles += d.IQStallCycles
	dst.LQStallCycles += d.LQStallCycles
	dst.FrontendStallCycles += d.FrontendStallCycles
	dst.SBStallApp += d.SBStallApp
	dst.SBStallLib += d.SBStallLib
	dst.SBStallKernel += d.SBStallKernel
	dst.ExecStallL1DPending += d.ExecStallL1DPending
	dst.StoresPerformed += d.StoresPerformed
	dst.SPBBursts += d.SPBBursts
}

// subMem returns the fieldwise counter delta b-a.
func subMem(a, b MemStats) MemStats {
	return MemStats{
		L1TagAccesses:  b.L1TagAccesses - a.L1TagAccesses,
		L1Hits:         b.L1Hits - a.L1Hits,
		L1Misses:       b.L1Misses - a.L1Misses,
		L2Accesses:     b.L2Accesses - a.L2Accesses,
		L3Accesses:     b.L3Accesses - a.L3Accesses,
		DRAMReads:      b.DRAMReads - a.DRAMReads,
		DRAMWrites:     b.DRAMWrites - a.DRAMWrites,
		Loads:          b.Loads - a.Loads,
		Stores:         b.Stores - a.Stores,
		LoadMisses:     b.LoadMisses - a.LoadMisses,
		StoreMisses:    b.StoreMisses - a.StoreMisses,
		WrongPathLoads: b.WrongPathLoads - a.WrongPathLoads,
		SPFIssued:      b.SPFIssued - a.SPFIssued,
		SPFDiscarded:   b.SPFDiscarded - a.SPFDiscarded,
		SPFMissToL2:    b.SPFMissToL2 - a.SPFMissToL2,
		SPFSuccessful:  b.SPFSuccessful - a.SPFSuccessful,
		SPFLate:        b.SPFLate - a.SPFLate,
		SPFEarly:       b.SPFEarly - a.SPFEarly,
		SPFBurst:       b.SPFBurst - a.SPFBurst,
		GPFIssued:      b.GPFIssued - a.GPFIssued,
		GPFUsed:        b.GPFUsed - a.GPFUsed,
		GPFLate:        b.GPFLate - a.GPFLate,
		GPFPolluted:    b.GPFPolluted - a.GPFPolluted,
		Invalidations:  b.Invalidations - a.Invalidations,
		Writebacks:     b.Writebacks - a.Writebacks,
	}
}

func addMem(dst *MemStats, d MemStats) {
	dst.L1TagAccesses += d.L1TagAccesses
	dst.L1Hits += d.L1Hits
	dst.L1Misses += d.L1Misses
	dst.L2Accesses += d.L2Accesses
	dst.L3Accesses += d.L3Accesses
	dst.DRAMReads += d.DRAMReads
	dst.DRAMWrites += d.DRAMWrites
	dst.Loads += d.Loads
	dst.Stores += d.Stores
	dst.LoadMisses += d.LoadMisses
	dst.StoreMisses += d.StoreMisses
	dst.WrongPathLoads += d.WrongPathLoads
	dst.SPFIssued += d.SPFIssued
	dst.SPFDiscarded += d.SPFDiscarded
	dst.SPFMissToL2 += d.SPFMissToL2
	dst.SPFSuccessful += d.SPFSuccessful
	dst.SPFLate += d.SPFLate
	dst.SPFEarly += d.SPFEarly
	dst.SPFBurst += d.SPFBurst
	dst.GPFIssued += d.GPFIssued
	dst.GPFUsed += d.GPFUsed
	dst.GPFLate += d.GPFLate
	dst.GPFPolluted += d.GPFPolluted
	dst.Invalidations += d.Invalidations
	dst.Writebacks += d.Writebacks
}

// buildFunctionalState constructs the persistent functional-mode state of a
// sampled run: one data TLB per core and (when modelled) one branch
// predictor, matching the geometry the cores will be built with.
func buildFunctionalState(machine config.MachineConfig, spec RunSpec) (dtlbs []*tlb.TLB, bps []*bpred.Predictor) {
	dtlbs = make([]*tlb.TLB, spec.Cores)
	bps = make([]*bpred.Predictor, spec.Cores)
	for i := range dtlbs {
		dtlbs[i] = tlb.New(tlb.Config{
			Entries: machine.TLB.Entries,
			Ways:    machine.TLB.Ways,
			WalkLat: machine.TLB.WalkLat,
		})
		if spec.ModelBranchPredictor {
			bps[i] = bpred.New(bpred.TableI())
		}
	}
	return dtlbs, bps
}

// runSampled executes a sampled simulation on an already-built (and possibly
// warm-start-restored) machine. It owns sys, dtlbs and bps: all are released
// before returning. warmupFF is the number of instructions the shared warmup
// prefix fast-forwarded (reported in Progress.FastForwardInsts but not
// counted in SampleStats.FastForwardInsts). ck, when active, checkpoints the
// run at sampling-window edges (the quiescent top of the window loop); rs,
// when non-nil, is a loaded checkpoint's scheduler state and the machine
// passed in must already be restored to it (resumeSampled does both).
func runSampled(ctx context.Context, tr *obs.Trace, spec RunSpec, machine config.MachineConfig,
	sys *memsys.System, readers []trace.Reader, dtlbs []*tlb.TLB, bps []*bpred.Predictor,
	warmupFF uint64, onProgress func(Progress), ck *runCkpt, rs *sampledCkpt) (Result, error) {

	loopSpan := tr.StartSpan("run.sim")
	start := time.Now()
	cfg := spec.Sampling
	nCores := uint64(spec.Cores)
	release := func() {
		for i := range dtlbs {
			dtlbs[i].Release()
			if bps[i] != nil {
				bps[i].Release()
			}
		}
		sys.Release()
	}

	var (
		aggCPU        cpu.Stats
		aggMem        MemStats
		acc           sampleAccum
		ffInsts       uint64 // functional insts executed by the scheduler
		detailedInsts uint64 // detail-simulated insts (incl. detailed warming)
		measuredInsts uint64 // committed insts inside measured windows
	)
	if rs != nil {
		aggCPU = rs.AggCPU
		aggMem = rs.AggMem
		acc = sampleAccum{n: rs.AccN, sum: rs.AccSum, sumsq: rs.AccSumsq}
		ffInsts = rs.FFInsts
		detailedInsts = rs.DetailedInsts
		measuredInsts = rs.MeasuredInsts
	}
	target := spec.Insts * nCores
	report := func(segCommitted uint64) {
		p := Progress{
			// Committed counts detail-simulated instructions only; the
			// functional skips ride in FastForwardInsts so they cannot
			// inflate the detailed-simulation rate.
			Committed:        detailedInsts + segCommitted,
			TargetInsts:      target,
			FastForwardInsts: warmupFF + ffInsts,
		}
		if el := time.Since(start).Seconds(); el > 0 {
			p.InstsPerSec = float64(p.Committed) / el
		}
		// Cycles: measured spans so far (the sampled estimate's timeline).
		p.Cycles = aggCPU.Cycles
		onProgress(p)
	}

	useFF := !spec.DisableFastForward
	remaining := spec.Insts
	// pendingSkip accumulates the functional skip separating detailed
	// segments — the trailing portion of one interval plus the leading
	// portion of the next — so the warming-history bound applies to the
	// contiguous distance to the upcoming measurement, not to each jittered
	// half separately. It is flushed immediately before each detailed
	// segment: everything beyond the bound drains (stream advance only), the
	// last HistoryInsts instructions warm the architectural state the
	// measurement will see.
	pendingSkip := uint64(0)
	flushSkip := func() error {
		n := pendingSkip
		if n == 0 {
			return nil
		}
		pendingSkip = 0
		w := n
		if h := cfg.HistoryInsts; h > 0 && w > h {
			if err := drainLLC(ctx, sys, readers, w-h); err != nil {
				return err
			}
			w = h
		}
		if err := warm(ctx, sys, dtlbs, bps, readers, w, true); err != nil {
			return err
		}
		ffInsts += n * nCores
		if onProgress != nil {
			report(0)
		}
		return nil
	}
	// Random-start sampling: each interval's detailed segment is placed at a
	// pseudo-random offset within the sampling period instead of a fixed
	// position, so the schedule cannot alias with a workload's phase
	// structure (a fixed placement systematically misses bursts whose period
	// divides the sampling period). The xorshift sequence depends only on
	// the spec seed: same spec, same schedule, byte-identical output.
	jitter := spec.Seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	if rs != nil {
		jitter = rs.Jitter
	}
	// cycleBase carries the clock across detailed segments: the memory
	// system is persistent and stamps its state with absolute cycles, so
	// each segment's cores continue where the previous segment's clock
	// stopped (cpu.Options.StartCycle). Functional skips advance no cycles —
	// anything the last segment left in flight is simply ready when the next
	// one begins, which is exactly what the elided gap would have done.
	cycleBase := uint64(0)
	if rs != nil {
		remaining = rs.Remaining
		pendingSkip = rs.PendingSkip
		cycleBase = rs.CycleBase
	}
	for remaining > 0 {
		if ck.active() {
			// Checkpoint at the quiescent top of the window loop — no cores
			// exist here, so the persistent functional state (memory system,
			// prefetchers, TLBs, predictors) plus the scheduler locals are the
			// entire machine. Boundaries are per-core stream progress crossing
			// the cadence, i.e. sampling-window edges.
			progress := spec.Insts - remaining
			if progress >= ck.nextCkpt {
				for ck.nextCkpt <= progress {
					ck.nextCkpt += ck.step
				}
				st := &sampledCkpt{
					Remaining:     remaining,
					PendingSkip:   pendingSkip,
					Jitter:        jitter,
					CycleBase:     cycleBase,
					FFInsts:       ffInsts,
					DetailedInsts: detailedInsts,
					MeasuredInsts: measuredInsts,
					AggCPU:        aggCPU,
					AggMem:        aggMem,
					AccN:          acc.n,
					AccSum:        acc.sum,
					AccSumsq:      acc.sumsq,
					Consumed:      spec.WarmupInsts + progress - pendingSkip,
					Sys:           sys.Snapshot(),
					PF:            sys.PrefetcherStates(),
					DTLBs:         make([]*tlb.Snapshot, len(dtlbs)),
					BPs:           make([]bpWire, len(bps)),
				}
				for i := range dtlbs {
					st.DTLBs[i] = dtlbs[i].Snapshot()
					if bps[i] != nil {
						st.BPs[i] = bpWire{BP: bps[i].Snapshot()}
					}
				}
				cf := &ckptFile{Spec: spec, WarmupFF: warmupFF, NextCkpt: ck.nextCkpt, Sampled: st}
				if err := ck.c.save(cf); err != nil {
					release()
					return Result{}, err
				}
			}
		}
		span := min(cfg.IntervalInsts, remaining)
		remaining -= span
		dk := min(cfg.DetailedInsts, span)
		wk := min(cfg.WarmInsts, span-dk)
		ff := span - wk - dk
		ffBefore, ffAfter := uint64(0), uint64(0)
		if ff > 0 {
			jitter ^= jitter << 13
			jitter ^= jitter >> 7
			jitter ^= jitter << 17
			ffBefore = jitter % (ff + 1)
			ffAfter = ff - ffBefore
		}

		pendingSkip += ffBefore
		if err := flushSkip(); err != nil {
			release()
			return Result{}, err
		}

		// Detailed segment: fresh cores on the persistent memory system,
		// with the functional TLB/predictor state carried in. Measurement
		// starts once a core has committed wk instructions and stops at
		// wk+dk; the segment still runs to completion (the store buffer
		// drains into the caches) so the functional stream resumes from a
		// consistent architectural state.
		segSpec := spec
		segSpec.Insts = wk + dk
		cores, _ := buildCores(segSpec, machine, sys, readers, cycleBase)
		for i, c := range cores {
			c.DTLB().Restore(dtlbs[i].Snapshot())
			if bp := c.BranchPredictor(); bp != nil {
				bp.Restore(bps[i].Snapshot())
			}
		}

		var (
			startCPU   = make([]cpu.Stats, len(cores))
			endCPU     = make([]cpu.Stats, len(cores))
			started    = make([]bool, len(cores))
			ended      = make([]bool, len(cores))
			nStarted   = 0
			nEnded     = 0
			memStart   MemStats
			memEnd     MemStats
			haveMemEnd bool
		)
		guard := segSpec.Insts*1000*nCores + 1_000_000
		done := ctx.Done()
		for round := uint64(0); ; round++ {
			if round%progressEvery == 0 {
				if done != nil {
					select {
					case <-done:
						for _, c := range cores {
							c.Release()
						}
						release()
						return Result{}, ctx.Err()
					default:
					}
				}
				if onProgress != nil && round > 0 {
					segC := uint64(0)
					for _, c := range cores {
						segC += c.St.Committed
					}
					report(segC)
				}
			}
			// Crossing capture runs on the state left by the previous round;
			// SkipTo never skips a commit, so no crossing is jumped over.
			for i, c := range cores {
				if !started[i] && c.St.Committed >= wk {
					started[i] = true
					startCPU[i] = c.St
					nStarted++
					if nStarted == len(cores) {
						memStart = collectMem(spec.Cores, sys)
					}
				}
				if started[i] && !ended[i] && c.St.Committed >= wk+dk {
					ended[i] = true
					endCPU[i] = c.St
					nEnded++
					if nEnded == len(cores) {
						memEnd = collectMem(spec.Cores, sys)
						haveMemEnd = true
					}
				}
			}
			running := false
			allIdle := true
			for _, c := range cores {
				if !c.Done() {
					c.Tick()
					running = true
					if !c.IdleTick() {
						allIdle = false
					}
				}
			}
			if !running {
				break
			}
			if useFF && allIdle {
				skipTarget := uint64(math.MaxUint64)
				for _, c := range cores {
					if c.Done() {
						continue
					}
					if ne := c.NextEventCycle(); ne < skipTarget {
						skipTarget = ne
					}
				}
				for _, c := range cores {
					if !c.Done() && skipTarget > c.Cycle() && skipTarget != math.MaxUint64 {
						c.SkipTo(skipTarget)
					}
				}
			}
			if round > guard {
				for _, c := range cores {
					c.Release()
				}
				release()
				return Result{}, fmt.Errorf("sim: %v made no progress after %d cycles (sampled interval)", spec, round)
			}
		}
		// A reader that ran dry leaves its core short of the thresholds;
		// close its window at the final state.
		for i, c := range cores {
			if !started[i] {
				started[i] = true
				startCPU[i] = c.St
				nStarted++
				if nStarted == len(cores) {
					memStart = collectMem(spec.Cores, sys)
				}
			}
			if !ended[i] {
				ended[i] = true
				endCPU[i] = c.St
				nEnded++
			}
		}
		if !haveMemEnd {
			memEnd = collectMem(spec.Cores, sys)
		}

		// Carry the functional state forward and retire the segment cores.
		for i, c := range cores {
			if cyc := c.Cycle(); cyc > cycleBase {
				cycleBase = cyc
			}
			dtlbs[i].Restore(c.DTLB().Snapshot())
			if bp := c.BranchPredictor(); bp != nil {
				bps[i].Restore(bp.Snapshot())
			}
			c.Release()
		}

		// Fold the measured window into the run aggregate and record the
		// interval's rate samples.
		var ivCPU cpu.Stats
		for i := range cores {
			d := subCPU(startCPU[i], endCPU[i])
			cyc := d.Cycles
			d.Cycles = 0
			addCPU(&ivCPU, d)
			if cyc > ivCPU.Cycles {
				ivCPU.Cycles = cyc
			}
		}
		ivMem := subMem(memStart, memEnd)
		addCPU(&aggCPU, ivCPU)
		addMem(&aggMem, ivMem)
		detailedInsts += (wk + dk) * nCores
		measuredInsts += ivCPU.Committed

		if ivCPU.Cycles > 0 && ivCPU.Committed > 0 {
			com := float64(ivCPU.Committed)
			acc.add([nSampleMetrics]float64{
				smCPI:             float64(ivCPU.Cycles) / com,
				smSBStallPI:       float64(ivCPU.SBStallCycles) / com,
				smOtherStallPI:    float64(ivCPU.OtherStallCycles()) / com,
				smFrontendStallPI: float64(ivCPU.FrontendStallCycles) / com,
				smExecL1DPI:       float64(ivCPU.ExecStallL1DPending) / com,
				smL1MissPI:        float64(ivMem.L1Misses) / com,
				smDRAMPI:          float64(ivMem.DRAMReads+ivMem.DRAMWrites) / com,
			})
		}

		// The rest of the sampling period joins the next interval's leading
		// skip and is flushed before the next detailed segment.
		pendingSkip += ffAfter
	}
	// Trailing skip after the last detailed segment: nothing is measured
	// beyond it, so the stream only drains.
	if pendingSkip > 0 {
		if err := drain(ctx, readers, pendingSkip); err != nil {
			release()
			return Result{}, err
		}
		ffInsts += pendingSkip * nCores
	}
	if onProgress != nil {
		report(0)
	}
	loopSpan.End()

	collectSpan := tr.StartSpan("run.collect")
	res := finishResult(spec, aggCPU, aggMem)
	res.Sample = SampleStats{
		Intervals:        acc.n,
		MeasuredInsts:    measuredInsts,
		DetailedInsts:    detailedInsts,
		FastForwardInsts: ffInsts,
	}
	acc.finalize(&res.Sample)
	release()
	collectSpan.End()
	return res, nil
}
