package sim

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"spb/internal/config"
	"spb/internal/core"
)

const testInsts = 60_000

func quickSpec(w string, p core.Policy, sq int) RunSpec {
	return RunSpec{
		Workload: w, Policy: p, SQSize: sq,
		Prefetcher: config.PrefetchStream, Insts: testInsts,
	}
}

func TestRunSmoke(t *testing.T) {
	res, err := Run(quickSpec("bwaves", core.PolicyAtCommit, 56))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Committed != testInsts {
		t.Fatalf("committed %d, want %d", res.CPU.Committed, testInsts)
	}
	if res.CPU.Cycles == 0 || res.IPC() <= 0 {
		t.Fatal("run produced no cycles")
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := quickSpec("roms", core.PolicySPB, 28)
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU != b.CPU {
		t.Fatalf("nondeterministic CPU stats:\n%+v\n%+v", a.CPU, b.CPU)
	}
	if a.Mem != b.Mem {
		t.Fatalf("nondeterministic memory stats:\n%+v\n%+v", a.Mem, b.Mem)
	}
}

func TestSBBoundAppStallsWithSmallSB(t *testing.T) {
	res, err := Run(quickSpec("bwaves", core.PolicyAtCommit, 14))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TD.SBBound {
		t.Fatalf("bwaves at SB14 should be SB-bound; SB stall ratio %.3f",
			res.TD.SBStallRatio)
	}
}

func TestSPBImprovesSBBoundApp(t *testing.T) {
	ac, err := Run(quickSpec("bwaves", core.PolicyAtCommit, 14))
	if err != nil {
		t.Fatal(err)
	}
	spb, err := Run(quickSpec("bwaves", core.PolicySPB, 14))
	if err != nil {
		t.Fatal(err)
	}
	if spb.CPU.Cycles >= ac.CPU.Cycles {
		t.Fatalf("SPB (%d cycles) should beat at-commit (%d) on bwaves at SB14",
			spb.CPU.Cycles, ac.CPU.Cycles)
	}
	if spb.CPU.SPBBursts == 0 {
		t.Fatal("SPB should have triggered bursts")
	}
}

func TestIdealFastest(t *testing.T) {
	base, err := Run(quickSpec("fotonik3d", core.PolicyAtCommit, 14))
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(quickSpec("fotonik3d", core.PolicyIdeal, 14))
	if err != nil {
		t.Fatal(err)
	}
	if ideal.CPU.Cycles > base.CPU.Cycles {
		t.Fatalf("ideal (%d cycles) should not lose to at-commit (%d)",
			ideal.CPU.Cycles, base.CPU.Cycles)
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	if _, err := Run(quickSpec("nonesuch", core.PolicyAtCommit, 56)); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestUnknownCoreErrors(t *testing.T) {
	spec := quickSpec("gcc", core.PolicyAtCommit, 56)
	spec.CoreName = "EPYC"
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown core name should error")
	}
}

// TestUnknownPrefetcherKindErrors: an out-of-range kind decoded from the
// wire (checkpoint, batch file) must surface as a spec error, never reach
// prefetch.New and panic a worker.
func TestUnknownPrefetcherKindErrors(t *testing.T) {
	spec := quickSpec("gcc", core.PolicyAtCommit, 56)
	spec.Prefetcher = config.PrefetcherKind(99)
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown prefetcher kind should error")
	}
}

// TestNewPrefetcherKindsRun smoke-tests the prefetcher zoo end-to-end: every
// kind simulates deterministically.
func TestNewPrefetcherKindsRun(t *testing.T) {
	for _, k := range []config.PrefetcherKind{config.PrefetchBOP, config.PrefetchDSPatch, config.PrefetchHybrid} {
		spec := quickSpec("mcf", core.PolicySPB, 28)
		spec.Prefetcher = k
		spec.Insts = 20_000
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.CPU.Committed != 20_000 {
			t.Fatalf("%s: committed %d", k, res.CPU.Committed)
		}
		res2, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.CPU.Cycles != res2.CPU.Cycles {
			t.Fatalf("%s: nondeterministic cycles %d vs %d", k, res.CPU.Cycles, res2.CPU.Cycles)
		}
	}
}

func TestTableIICoreRuns(t *testing.T) {
	spec := quickSpec("gcc", core.PolicyAtCommit, 16)
	spec.CoreName = "SLM"
	spec.Insts = 20_000
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Committed != 20_000 {
		t.Fatalf("committed %d, want 20000", res.CPU.Committed)
	}
}

func TestMultiCoreRun(t *testing.T) {
	spec := RunSpec{
		Workload: "dedup", Policy: core.PolicySPB, SQSize: 14,
		Prefetcher: config.PrefetchStream, Cores: 4, Insts: 15_000,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Committed != 4*15_000 {
		t.Fatalf("committed %d, want %d", res.CPU.Committed, 4*15_000)
	}
	if res.Mem.Invalidations == 0 {
		t.Fatal("a shared-region PARSEC run should produce invalidations")
	}
}

func TestSPFNeverUsedDerivation(t *testing.T) {
	m := MemStats{SPFIssued: 100, SPFDiscarded: 40, SPFSuccessful: 30, SPFLate: 10, SPFEarly: 5}
	if m.SPFNeverUsed() != 15 {
		t.Fatalf("SPFNeverUsed = %d, want 15", m.SPFNeverUsed())
	}
	m.SPFDiscarded = 80
	if m.SPFNeverUsed() != 0 {
		t.Fatal("SPFNeverUsed must clamp at zero")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("leela", core.PolicyAtCommit, 56)
	spec.Insts = 20_000
	a, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU != b.CPU {
		t.Fatal("memoized result should be identical")
	}
}

func TestRunnerSingleflight(t *testing.T) {
	r := NewRunner()
	spec := quickSpec("leela", core.PolicyAtCommit, 56)
	spec.Insts = 20_000
	// Many goroutines race on a cold cache; the in-flight call table must
	// collapse them to one actual simulation.
	const callers = 8
	results := make([]Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Get(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := r.Runs(); got != 1 {
		t.Fatalf("Runs() = %d, want 1 (singleflight must suppress duplicates)", got)
	}
	for i := 1; i < callers; i++ {
		if results[i].CPU != results[0].CPU {
			t.Fatal("singleflight callers received differing results")
		}
	}
}

func TestRunnerGetAllOrder(t *testing.T) {
	r := NewRunner()
	specs := []RunSpec{
		quickSpec("leela", core.PolicyAtCommit, 56),
		quickSpec("leela", core.PolicySPB, 56),
		quickSpec("leela", core.PolicyIdeal, 56),
	}
	for i := range specs {
		specs[i].Insts = 20_000
	}
	results, err := r.GetAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Spec.Policy != specs[i].Policy {
			t.Fatal("results out of order")
		}
	}
}

func TestRunnerGetAllPropagatesError(t *testing.T) {
	r := NewRunner()
	_, err := r.GetAll([]RunSpec{quickSpec("bogus", core.PolicyAtCommit, 56)})
	if err == nil {
		t.Fatal("error should propagate from GetAll")
	}
}

func TestRunnerGetAllStopsDispatchOnError(t *testing.T) {
	r := NewRunner()
	// The bogus spec carries the largest cost estimate, so LPT dispatch hands
	// it out first; it fails immediately (unknown workload), after which no
	// new specs may be dispatched. At most one spec per worker can already be
	// in flight when the error is recorded.
	specs := []RunSpec{quickSpec("bogus", core.PolicyAtCommit, 56)}
	specs[0].Insts = 1_000_000 // dispatched first under LPT
	for i := 0; i < 64; i++ {
		s := quickSpec("leela", core.PolicyAtCommit, 56)
		s.Seed = uint64(i + 1)
		specs = append(specs, s)
	}
	_, err := r.GetAll(specs)
	if err == nil {
		t.Fatal("error should propagate from GetAll")
	}
	limit := uint64(2 * runtime.GOMAXPROCS(0))
	if got := r.Runs(); got > limit {
		t.Fatalf("Runs() = %d after early failure, want <= %d (workers kept dispatching a doomed batch)", got, limit)
	}
}

func TestRunnerGetAllCtxCancelled(t *testing.T) {
	r := NewRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.GetAllCtx(ctx, []RunSpec{quickSpec("leela", core.PolicyAtCommit, 56)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("GetAllCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if got := r.Runs(); got != 0 {
		t.Fatalf("Runs() = %d on cancelled ctx, want 0", got)
	}
}

func TestCostEstimateOrdersStragglersFirst(t *testing.T) {
	spec1 := RunSpec{Workload: "leela", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 100_000}
	parsec := RunSpec{Workload: "canneal", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 100_000, Cores: 8}
	ideal := spec1
	ideal.Policy = core.PolicyIdeal
	noFF := spec1
	noFF.DisableFastForward = true
	if parsec.CostEstimate() <= spec1.CostEstimate() {
		t.Fatal("8-core PARSEC point must rank above a 1-core point")
	}
	if ideal.CostEstimate() <= spec1.CostEstimate() {
		t.Fatal("ideal-SB point must rank above an at-commit point")
	}
	if noFF.CostEstimate() <= spec1.CostEstimate() {
		t.Fatal("reference-loop point must rank above a fast-forwarded point")
	}
	order := lptOrder([]RunSpec{spec1, parsec, ideal}, false)
	if order[0] != 1 {
		t.Fatalf("lptOrder dispatched index %d first, want the PARSEC point (1)", order[0])
	}
}

func TestCostEstimateDiscountsElidedWarmup(t *testing.T) {
	base := RunSpec{Workload: "leela", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 100_000}
	warm := base
	warm.WarmupInsts = 800_000
	// Without warm-start the warmup prefix is simulated, so it must cost more
	// than the same detailed interval alone.
	if warm.CostEstimateAt(false) <= base.CostEstimateAt(false) {
		t.Fatal("a non-elided warmup must add cost")
	}
	// Under warm-start the prefix is forked from a shared snapshot: only the
	// detailed interval should count, making the estimates identical.
	if got, want := warm.CostEstimateAt(true), base.CostEstimateAt(true); got != want {
		t.Fatalf("CostEstimateAt(true) = %d, want %d (warmup must be discounted)", got, want)
	}
	if warm.CostEstimate() != warm.CostEstimateAt(false) {
		t.Fatal("CostEstimate must equal CostEstimateAt(false)")
	}
	// LPT under warm-start must not let an elided warmup outrank real work.
	big := base
	big.Insts = 150_000
	order := lptOrder([]RunSpec{warm, big}, true)
	if order[0] != 1 {
		t.Fatal("warm-start LPT ranked an elided warmup above a longer detailed run")
	}
}
