package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"spb/internal/core"
)

// testSpec is a quick point; longTestSpec would run for minutes if not
// cancelled.
var (
	ctxTestSpec  = RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 10_000}
	ctxLongSpec  = RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 2_000_000_000}
	ctxCancelDur = 20 * time.Millisecond
)

// TestRunCtxMatchesRun: threading a context (and progress callback) through
// must not change any statistic.
func TestRunCtxMatchesRun(t *testing.T) {
	plain, err := Run(ctxTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	withCtx, err := RunCtx(context.Background(), ctxTestSpec, func(p Progress) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCtx {
		t.Fatalf("RunCtx result differs from Run:\n  %+v\n  %+v", plain, withCtx)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
}

// TestRunCtxCancelStops: a cancelled context stops the simulation promptly
// with the context's error.
func TestRunCtxCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var lastCommitted atomic.Uint64
	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, ctxLongSpec, func(p Progress) {
			lastCommitted.Store(p.Committed)
		})
		done <- err
	}()
	// Wait for real progress, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for lastCommitted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulation never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled simulation did not stop")
	}
}

// TestRunCtxProgressMonotonic: progress snapshots advance monotonically and
// the final one covers the full budget.
func TestRunCtxProgressMonotonic(t *testing.T) {
	var snaps []Progress
	res, err := RunCtx(context.Background(), ctxTestSpec, func(p Progress) {
		snaps = append(snaps, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Committed < snaps[i-1].Committed || snaps[i].Cycles < snaps[i-1].Cycles {
			t.Fatalf("progress went backwards: %+v -> %+v", snaps[i-1], snaps[i])
		}
	}
	final := snaps[len(snaps)-1]
	if final.Committed != res.CPU.Committed || final.Cycles != res.CPU.Cycles {
		t.Fatalf("final snapshot %+v does not match result (%d committed, %d cycles)",
			final, res.CPU.Committed, res.CPU.Cycles)
	}
	if final.TargetInsts != 10_000 {
		t.Fatalf("TargetInsts = %d, want 10000", final.TargetInsts)
	}
	if final.IPC() <= 0 {
		t.Fatal("final IPC not positive")
	}
}

// TestGetCtxWaiterCancellation: a waiter on an in-flight spec stops waiting
// when its own context is cancelled, while the executing caller finishes.
func TestGetCtxWaiterCancellation(t *testing.T) {
	r := NewRunner()
	execCtx, cancelExec := context.WithCancel(context.Background())
	defer cancelExec() // stop the long run when the test ends
	started := make(chan struct{}, 1)
	execDone := make(chan error, 1)
	go func() {
		_, err := r.GetCtx(execCtx, ctxLongSpec, func(Progress) {
			select {
			case started <- struct{}{}:
			default:
			}
		})
		execDone <- err
	}()
	<-started

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := r.GetCtx(waiterCtx, ctxLongSpec, nil)
		waiterDone <- err
	}()
	time.Sleep(ctxCancelDur) // let the waiter attach to the in-flight call
	cancelWaiter()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter kept waiting")
	}
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1 (waiter must not re-run)", r.Runs())
	}

	// The executor is unaffected by the waiter's cancellation... but we
	// don't want to simulate 2G instructions here, so cancel it too via a
	// fresh runner pass: just verify it is still running, then stop it.
	select {
	case err := <-execDone:
		t.Fatalf("executor stopped when a waiter cancelled: %v", err)
	default:
	}
}

// TestLookupPut: Put seeds the cache so Lookup and Get hit without running.
func TestLookupPut(t *testing.T) {
	r := NewRunner()
	if _, ok := r.Lookup(ctxTestSpec); ok {
		t.Fatal("Lookup hit on empty runner")
	}
	res, err := Run(ctxTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Seed under the un-normalized spelling; lookups normalize.
	unnormalized := ctxTestSpec
	unnormalized.Cores = 0
	unnormalized.Seed = 0
	r.Put(unnormalized, res)
	if _, ok := r.Lookup(ctxTestSpec); !ok {
		t.Fatal("Lookup missed after Put")
	}
	got, err := r.Get(ctxTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Fatal("Get returned a different result than Put stored")
	}
	if r.Runs() != 0 {
		t.Fatalf("runs = %d, want 0 (Put-seeded Get must not simulate)", r.Runs())
	}
}
