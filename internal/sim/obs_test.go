package sim

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"spb/internal/core"
	"spb/internal/obs"
	"spb/internal/topdown"
)

// TestRunCtxRecordsPhaseSubSpans: a trace carried in the context picks up
// the simulator's nested run.* sub-spans, and the result is byte-identical
// to an untraced run — tracing observes, never perturbs.
func TestRunCtxRecordsPhaseSubSpans(t *testing.T) {
	spec := RunSpec{Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14, Insts: 10_000}
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(0, nil)
	tr := tracer.Start("t-sim", "job-sim", "key")
	traced, err := RunCtx(obs.NewContext(context.Background(), tr), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("traced result differs from plain run:\n  %+v\n  %+v", plain, traced)
	}

	tv := tr.Snapshot()
	for _, name := range []string{"run.build", "run.sim", "run.collect"} {
		found := false
		for _, sp := range tv.Spans {
			if sp.Name == name {
				found = true
				if !sp.Nested() {
					t.Errorf("span %q must report Nested()", name)
				}
			}
		}
		if !found {
			t.Fatalf("trace missing sub-span %q; spans: %+v", name, tv.Spans)
		}
	}
	// Sub-spans are excluded from the top-level total: with only nested
	// spans recorded, the total stays zero.
	if tv.TotalNS != 0 {
		t.Fatalf("TotalNS = %d; nested run.* spans must not count as phases", tv.TotalNS)
	}
}

// TestStatsTopDownMatchesAnalyze pins the three Top-Down surfaces to each
// other: the float Report on the Result, the integer td.* counters in the
// canonical stats JSON, and the offline Breakdown identity.
func TestStatsTopDownMatchesAnalyze(t *testing.T) {
	spec := RunSpec{Workload: "mcf", Policy: core.PolicyAtCommit, SQSize: 14, Insts: 20_000}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if recomputed := topdown.Analyze(&res.CPU); res.TD != recomputed {
		t.Fatalf("Result.TD %+v differs from Analyze %+v", res.TD, recomputed)
	}

	raw, err := res.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var set map[string]uint64
	if err := json.Unmarshal(raw, &set); err != nil {
		t.Fatal(err)
	}
	sb, other, fe, l1d := topdown.StatPPM(&res.CPU)
	for name, want := range map[string]uint64{
		"td.cycles":                 res.CPU.Cycles,
		"td.sbStallPPM":             sb,
		"td.otherStallPPM":          other,
		"td.frontendStallPPM":       fe,
		"td.execStallL1DPendingPPM": l1d,
	} {
		got, ok := set[name]
		if !ok {
			t.Fatalf("stats JSON missing %s: %s", name, raw)
		}
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	sbBound, ok := set["td.sbBound"]
	if !ok {
		t.Fatalf("stats JSON missing td.sbBound: %s", raw)
	}
	if want := map[bool]uint64{true: 1, false: 0}[res.TD.SBBound]; sbBound != want {
		t.Errorf("td.sbBound = %d, Report.SBBound = %v", sbBound, res.TD.SBBound)
	}
	// The integer PPM agrees with the float ratio to 1 ULP of the division.
	if ratio := res.TD.SBStallRatio; math.Abs(float64(sb)-ratio*1e6) > 1 {
		t.Errorf("sb PPM %d vs ratio %v", sb, ratio)
	}
	// Offline breakdown sanity on the same counters: a run against itself
	// keeps exactly its own stall level.
	if b := topdown.Breakdown(&res.CPU, &res.CPU); b.Net() != 1.0 {
		t.Errorf("self Breakdown Net = %v, want 1", b.Net())
	}
}
