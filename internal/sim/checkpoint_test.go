package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spb/internal/config"
	"spb/internal/core"
)

// errCrash simulates kill -9 immediately after a durable checkpoint write:
// the file is on disk, the process is gone.
var errCrash = errors.New("simulated crash after checkpoint write")

func ckptTestPolicy(dir string, cadence uint64, onWrite func(string) error) CheckpointPolicy {
	return CheckpointPolicy{
		Dir:     dir,
		Insts:   cadence,
		Sync:    false, // tests don't need durability, just the file
		KeyOf:   func(s RunSpec) string { return s.Workload },
		OnWrite: onWrite,
	}
}

// crashResumeUntilDone runs spec repeatedly, crashing immediately after the
// first checkpoint write of every attempt. Attempt 1 dies at the first
// boundary; attempt k resumes from boundary k-1 and dies at boundary k; the
// final attempt resumes past the last boundary and completes. Every
// checkpoint boundary is therefore both written at and resumed from exactly
// once. Returns the final result and the attempt count.
func crashResumeUntilDone(t *testing.T, dir string, spec RunSpec, cadence uint64) (Result, int) {
	t.Helper()
	attempts := 0
	for {
		attempts++
		if attempts > 64 {
			t.Fatalf("crash/resume did not converge after %d attempts", attempts)
		}
		r := NewRunner()
		r.SetCheckpointPolicy(ckptTestPolicy(dir, cadence, func(string) error { return errCrash }))
		res, err := r.Get(spec)
		if err == nil {
			if attempts > 1 {
				if got := r.SimStats().CheckpointResumes; got != 1 {
					t.Fatalf("final attempt: CheckpointResumes = %d, want 1", got)
				}
			}
			return res, attempts
		}
		if !errors.Is(err, errCrash) {
			t.Fatalf("attempt %d: unexpected error: %v", attempts, err)
		}
	}
}

func assertSameResult(t *testing.T, ref, got Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("%s: Result diverges from uninterrupted run\nref: %+v\ngot: %+v", label, ref, got)
	}
	jRef, err := ref.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	jGot, err := got.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jRef, jGot) {
		t.Errorf("%s: stats JSON diverges\nref: %s\ngot: %s", label, jRef, jGot)
	}
}

// TestCheckpointResumeEquivalenceDetailed is the crash-safety tentpole
// invariant for full-detail runs: crashing immediately after every
// checkpoint boundary and resuming from it produces a Result byte-identical
// to an uninterrupted run. The spec carries a warmup prefix so the
// warm-start fork path is the one being checkpointed.
func TestCheckpointResumeEquivalenceDetailed(t *testing.T) {
	spec := RunSpec{
		Workload: "mcf", Policy: core.PolicySPB, SQSize: 14,
		Prefetcher: config.PrefetchStream,
		Insts:      40_000, WarmupInsts: 10_000,
	}
	ref, err := Run(spec.Normalized())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const cadence = 8_000
	got, attempts := crashResumeUntilDone(t, dir, spec, cadence)
	if attempts < 3 {
		t.Fatalf("only %d attempts — cadence too coarse to exercise resume at multiple boundaries", attempts)
	}
	assertSameResult(t, ref, got, "detailed")

	// The completed run must have cleared its checkpoint.
	path := filepath.Join(dir, spec.Workload+".ckpt")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("checkpoint %s survived run completion (stat err: %v)", path, err)
	}
}

// TestCheckpointResumeEquivalenceSampled is the same invariant for sampled
// runs, whose checkpoints sit at sampling-window edges: interrupted-and-
// resumed sampling must reproduce the exact interval schedule, accumulator
// contents and confidence intervals.
func TestCheckpointResumeEquivalenceSampled(t *testing.T) {
	spec := RunSpec{
		Workload: "mcf", Policy: core.PolicySPB, SQSize: 14,
		Prefetcher: config.PrefetchStream,
		Insts:      100_000, WarmupInsts: 5_000,
		Sampling: SamplingConfig{IntervalInsts: 20_000, DetailedInsts: 2_000, WarmInsts: 3_000},
	}
	ref, err := Run(spec.Normalized())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const cadence = 20_000
	got, attempts := crashResumeUntilDone(t, dir, spec, cadence)
	if attempts < 3 {
		t.Fatalf("only %d attempts — cadence too coarse to exercise resume at multiple boundaries", attempts)
	}
	assertSameResult(t, ref, got, "sampled")
	if got.Sample.Intervals == 0 {
		t.Error("sampled run reports zero measured intervals")
	}
}

// TestCheckpointMultiCoreResume covers the lock-step multi-core path: all
// cores' pipelines and the shared directory must restore coherently.
func TestCheckpointMultiCoreResume(t *testing.T) {
	spec := RunSpec{
		Workload: "dedup", Cores: 4, Policy: core.PolicySPB, SQSize: 14,
		Insts: 12_000, WarmupInsts: 4_000,
	}
	ref, err := Run(spec.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, attempts := crashResumeUntilDone(t, dir, spec, 4_000)
	if attempts < 2 {
		t.Fatalf("only %d attempts — no boundary was hit", attempts)
	}
	assertSameResult(t, ref, got, "multicore")
}

// writeCrashCheckpoint produces one valid checkpoint file for spec (crashing
// right after the first write) and returns its path.
func writeCrashCheckpoint(t *testing.T, dir string, spec RunSpec, cadence uint64) string {
	t.Helper()
	r := NewRunner()
	r.SetCheckpointPolicy(ckptTestPolicy(dir, cadence, func(string) error { return errCrash }))
	if _, err := r.Get(spec); !errors.Is(err, errCrash) {
		t.Fatalf("expected simulated crash, got %v", err)
	}
	path := filepath.Join(dir, spec.Workload+".ckpt")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	return path
}

// TestCheckpointCorruptionQuarantine is the table test over every way a
// checkpoint file can be invalid: truncated tail, bad magic, flipped payload
// byte, version mismatch, and a checksum-valid file for a different spec.
// Each must be quarantined under the *.corrupt convention and the run must
// restart from scratch, producing the reference result.
func TestCheckpointCorruptionQuarantine(t *testing.T) {
	spec := RunSpec{
		Workload: "mcf", Policy: core.PolicyAtCommit, SQSize: 14,
		Insts: 30_000,
	}
	ref, err := Run(spec.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	const cadence = 10_000

	// reseal recomputes the trailing digest so a mutation tests the check it
	// aims at rather than tripping the checksum first.
	reseal := func(data []byte) []byte {
		body := data[:len(data)-sha256.Size]
		sum := sha256.Sum256(body)
		return append(append([]byte{}, body...), sum[:]...)
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-magic", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[0] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-checksum", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-mismatch", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			binary.BigEndian.PutUint32(data[len(ckptMagic):], ckptVersion+1)
			if err := os.WriteFile(path, reseal(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"spec-mismatch", func(t *testing.T, path string) {
			// A perfectly valid checkpoint — for a different simulation
			// point. KeyOf maps both seeds to the same file name, so the
			// spec embedded in the payload is the only guard.
			other := spec
			other.Seed = 7
			otherPath := writeCrashCheckpoint(t, filepath.Dir(path), other, cadence)
			if otherPath != path {
				t.Fatalf("test setup: expected colliding path, got %s vs %s", otherPath, path)
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := writeCrashCheckpoint(t, dir, spec, cadence)
			tc.corrupt(t, path)

			r := NewRunner()
			r.SetCheckpointPolicy(ckptTestPolicy(dir, cadence, nil))
			got, err := r.Get(spec)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, ref, got, tc.name)

			st := r.SimStats()
			if st.CheckpointCorrupt != 1 {
				t.Errorf("CheckpointCorrupt = %d, want 1", st.CheckpointCorrupt)
			}
			if st.CheckpointResumes != 0 {
				t.Errorf("CheckpointResumes = %d, want 0 (must not resume from a bad file)", st.CheckpointResumes)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Errorf("quarantine file missing: %v", err)
			}
			// The from-scratch rerun completed, so no live checkpoint remains.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("checkpoint %s survived run completion (stat err: %v)", path, err)
			}
		})
	}
}

// TestCheckpointPolicyDoesNotPerturbStats pins the weaker but broader
// property the caches rely on: merely enabling checkpointing (no crash)
// leaves the result byte-identical, and the file is gone afterwards.
func TestCheckpointPolicyDoesNotPerturbStats(t *testing.T) {
	spec := RunSpec{
		Workload: "x264", CoreName: "SLM", Policy: core.PolicySPB, SQSize: 16,
		Insts: 30_000, WarmupInsts: 8_000,
	}
	ref, err := Run(spec.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r := NewRunner()
	r.SetCheckpointPolicy(ckptTestPolicy(dir, 6_000, nil))
	got, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, ref, got, "checkpointing-on")
	if w := r.SimStats().CheckpointWrites; w == 0 {
		t.Error("no checkpoints were written — cadence never fired")
	}
	if _, err := os.Stat(filepath.Join(dir, spec.Workload+".ckpt")); !os.IsNotExist(err) {
		t.Errorf("checkpoint survived run completion (stat err: %v)", err)
	}
}
