package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"spb/internal/bpred"
	"spb/internal/cpu"
	"spb/internal/memsys"
	"spb/internal/obs"
	"spb/internal/prefetch"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// Mid-run checkpoints (DESIGN.md §15). A long run periodically serializes
// its full architectural state to disk so a daemon killed mid-run resumes
// from the last checkpoint instead of restarting, with byte-identical final
// statistics — the property the content-addressed caches require, proven by
// TestCheckpointResumeEquivalence at every boundary.
//
// What a checkpoint contains depends on the mode:
//
//   - Detailed runs snapshot mid-flight: every core's pipeline (ROB, store
//     buffer, occupancy trackers, RNG, statistics), the shared memory
//     system, the trained generic prefetchers, and the lock-step round
//     counter. Boundaries are the progressEvery round marks where aggregate
//     committed instructions cross the cadence — deterministic because the
//     simulation loop is.
//   - Sampled runs snapshot at the quiescent top of the sampling-window
//     loop (no cores exist there), carrying the persistent functional state
//     (memory system, prefetchers, TLBs, predictors), the window
//     accumulators and the scheduler locals (jitter, cycle base, pending
//     skip). Boundaries therefore align with sampling-window edges.
//
// Trace-reader state is never serialized: a Program's cursor after n
// instructions is a pure function of (workload, seed, n) and Skip(n) is
// state-equivalent to n Next calls, so the checkpoint records only how many
// instructions each reader has consumed and the resume replays the
// generator — cheap (bulk Skip) and immune to generator-internals drift
// within a checkpoint version.
//
// On-disk format: magic | version | payload length | gob payload | SHA-256
// over everything before the digest. Any mismatch — torn write, bit rot,
// version or spec change — quarantines the file under the *.corrupt
// convention (PR 4) and the run restarts from scratch; a checkpoint can
// therefore never make a run wrong, only cheaper.

// ckptMagic opens every checkpoint file.
const ckptMagic = "SPBCKPT1"

// ckptVersion is bumped whenever the payload layout or any serialized
// structure changes meaning; older files are quarantined, not migrated.
const ckptVersion = 1

// CheckpointPolicy configures mid-run checkpointing on a Runner. The zero
// value disables it.
type CheckpointPolicy struct {
	// Dir is the directory checkpoint files live in ("" disables).
	Dir string
	// Insts is the cadence in per-core committed instructions between
	// checkpoint writes (0 disables).
	Insts uint64
	// Sync applies the full fsync discipline to checkpoint writes (temp
	// fsync before rename, directory fsync after), matching the store's
	// -store-sync behaviour.
	Sync bool
	// KeyOf names the checkpoint file for a spec — the server passes its
	// content-address function so a restarted daemon finds the file again
	// (nil disables).
	KeyOf func(RunSpec) string
	// OnWrite, when non-nil, runs after each durable checkpoint write with
	// the file's path. A non-nil error aborts the run with it — the
	// equivalence test uses this to simulate a crash immediately after
	// every boundary.
	OnWrite func(path string) error
}

func (p CheckpointPolicy) enabled() bool {
	return p.Dir != "" && p.Insts > 0 && p.KeyOf != nil
}

// SetCheckpointPolicy installs (or, with the zero value, removes) the
// runner's checkpoint policy. Checkpointing never changes a run's
// statistics — a checkpointed or resumed run is byte-identical to an
// uninterrupted one — so the policy is deliberately not part of the
// memoization key.
func (r *Runner) SetCheckpointPolicy(p CheckpointPolicy) {
	r.warmMu.Lock()
	r.ckpt = p
	r.warmMu.Unlock()
}

// CheckpointPolicy returns the runner's current checkpoint policy.
func (r *Runner) CheckpointPolicy() CheckpointPolicy {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	return r.ckpt
}

// detailedCkpt is the mid-flight state of a full-detail run at a lock-step
// round boundary.
type detailedCkpt struct {
	Round    uint64
	Consumed []uint64 // per-core insts consumed by the underlying reader
	Seen     []uint64 // per-core Limit-wrapper position
	Cores    []*cpu.Snapshot
	Sys      *memsys.SystemSnapshot
	PF       []prefetch.State
}

// bpWire wraps a possibly-absent predictor snapshot: gob rejects nil
// pointers as slice elements but skips nil pointer fields inside structs.
type bpWire struct {
	BP *bpred.Snapshot
}

// sampledCkpt is the quiescent state of a sampled run at the top of its
// window loop.
type sampledCkpt struct {
	Remaining   uint64
	PendingSkip uint64
	Jitter      uint64
	CycleBase   uint64

	FFInsts       uint64
	DetailedInsts uint64
	MeasuredInsts uint64

	AggCPU cpu.Stats
	AggMem MemStats

	AccN     uint64
	AccSum   [nSampleMetrics]float64
	AccSumsq [nSampleMetrics]float64

	Consumed uint64 // per-core insts consumed by each underlying reader
	Sys      *memsys.SystemSnapshot
	PF       []prefetch.State
	DTLBs    []*tlb.Snapshot
	BPs      []bpWire
}

// ckptFile is a checkpoint's gob payload.
type ckptFile struct {
	Spec     RunSpec // normalized; must match the resuming spec exactly
	WarmupFF uint64
	NextCkpt uint64 // next cadence boundary, so resumes write at the same marks

	Detailed *detailedCkpt
	Sampled  *sampledCkpt
}

// checkpointer is one run's handle on its checkpoint file.
type checkpointer struct {
	path    string
	sync    bool
	spec    RunSpec
	onWrite func(string) error
	runner  *Runner // counter sink; may be nil in tests
}

// checkpointerFor returns the run's checkpointer under the current policy,
// or nil when checkpointing is off.
func (r *Runner) checkpointerFor(spec RunSpec) *checkpointer {
	p := r.CheckpointPolicy()
	if !p.enabled() {
		return nil
	}
	return &checkpointer{
		path:    filepath.Join(p.Dir, p.KeyOf(spec)+".ckpt"),
		sync:    p.Sync,
		spec:    spec,
		onWrite: p.OnWrite,
		runner:  r,
	}
}

// runCkpt threads one run's checkpoint context through the simulation
// loops. A nil *runCkpt (or nil c) disables checkpointing; startRound is
// non-zero only on a detailed resume. step is the cadence in the loop's own
// progress unit: aggregate committed instructions for detailed runs
// (policy.Insts × cores), per-core stream progress for sampled runs
// (policy.Insts) — boundaries sit at the multiples of step.
type runCkpt struct {
	c          *checkpointer
	step       uint64
	startRound uint64
	nextCkpt   uint64
}

func (ck *runCkpt) active() bool { return ck != nil && ck.c != nil }

// encode renders the envelope: magic | version | length | payload | digest.
func encodeCkpt(cf *ckptFile) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cf); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], ckptVersion)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// errCkptInvalid covers every way a checkpoint file can fail validation.
var errCkptInvalid = errors.New("sim: invalid checkpoint")

// decodeCkpt verifies the envelope and returns the payload.
func decodeCkpt(data []byte) (*ckptFile, error) {
	hdrLen := len(ckptMagic) + 12
	if len(data) < hdrLen+sha256.Size {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", errCkptInvalid, len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", errCkptInvalid)
	}
	if v := binary.BigEndian.Uint32(data[len(ckptMagic) : len(ckptMagic)+4]); v != ckptVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", errCkptInvalid, v, ckptVersion)
	}
	plen := binary.BigEndian.Uint64(data[len(ckptMagic)+4 : hdrLen])
	if uint64(len(data)) != uint64(hdrLen)+plen+sha256.Size {
		return nil, fmt.Errorf("%w: length mismatch", errCkptInvalid)
	}
	body := data[:uint64(hdrLen)+plen]
	want := data[uint64(hdrLen)+plen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCkptInvalid)
	}
	cf := &ckptFile{}
	if err := gob.NewDecoder(bytes.NewReader(body[hdrLen:])).Decode(cf); err != nil {
		return nil, fmt.Errorf("%w: %v", errCkptInvalid, err)
	}
	return cf, nil
}

// save durably writes the checkpoint: temp file in the same directory,
// optional fsync, atomic rename, optional directory fsync, then the OnWrite
// hook. The previous checkpoint is replaced atomically, so a crash during
// save leaves either the old or the new file intact.
func (c *checkpointer) save(cf *ckptFile) error {
	data, err := encodeCkpt(cf)
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(c.path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if c.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if c.sync {
		syncDir(dir)
	}
	if c.runner != nil {
		c.runner.ckptWrites.Add(1)
	}
	if c.onWrite != nil {
		if err := c.onWrite(c.path); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Errors are ignored: some filesystems reject directory fsync, and the
// rename itself already succeeded.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// load reads and validates the run's checkpoint. A missing file returns
// (nil, false). Any invalid file — torn, corrupt, wrong version, wrong
// spec — is quarantined under the *.corrupt convention and reported as
// absent, so the run restarts from scratch.
func (c *checkpointer) load() (*ckptFile, bool) {
	data, err := os.ReadFile(c.path)
	if err != nil {
		return nil, false
	}
	cf, err := decodeCkpt(data)
	if err != nil {
		c.quarantine()
		return nil, false
	}
	if cf.Spec != c.spec {
		c.quarantine()
		return nil, false
	}
	if (cf.Detailed == nil) == (cf.Sampled == nil) {
		c.quarantine()
		return nil, false
	}
	return cf, true
}

// quarantine renames the checkpoint aside for post-mortem inspection
// instead of deleting evidence; a rename failure falls back to removal so
// the bad file cannot be re-read forever.
func (c *checkpointer) quarantine() {
	if err := os.Rename(c.path, c.path+".corrupt"); err != nil {
		os.Remove(c.path)
	}
	if c.runner != nil {
		c.runner.ckptCorrupt.Add(1)
	}
}

// clear removes the checkpoint after its run completed; the result now
// lives in the caches, so the checkpoint is dead weight.
func (c *checkpointer) clear() {
	os.Remove(c.path)
}

// skipReader advances rd by n instructions: bulk Skip when the reader
// offers it (trace.Program does), Next replay otherwise.
func skipReader(rd trace.Reader, n uint64) {
	if n == 0 {
		return
	}
	if s, ok := rd.(streamSkipper); ok {
		s.Skip(n)
		return
	}
	var in trace.Inst
	for k := uint64(0); k < n; k++ {
		if !rd.Next(&in) {
			return
		}
	}
}

// captureDetailed snapshots a detailed run at a lock-step round boundary.
func captureDetailed(spec RunSpec, sys *memsys.System, cores []*cpu.Core, lims []*trace.LimitReader, round uint64) *detailedCkpt {
	st := &detailedCkpt{
		Round:    round,
		Consumed: make([]uint64, len(cores)),
		Seen:     make([]uint64, len(cores)),
		Cores:    make([]*cpu.Snapshot, len(cores)),
		Sys:      sys.Snapshot(),
		PF:       sys.PrefetcherStates(),
	}
	for i, c := range cores {
		st.Cores[i] = c.Snapshot()
		st.Seen[i] = lims[i].Seen()
		st.Consumed[i] = spec.WarmupInsts + lims[i].Seen()
	}
	return st
}

// resumeDetailed rebuilds a detailed run from a checkpoint — fresh machine,
// generators replayed to their recorded positions, every snapshot restored —
// and continues the lock-step loop from the recorded round.
func resumeDetailed(ctx context.Context, tr *obs.Trace, spec RunSpec, cf *ckptFile, ck *runCkpt, onProgress func(Progress)) (Result, error) {
	st := cf.Detailed
	machine, err := spec.machineConfig()
	if err != nil {
		return Result{}, err
	}
	readers, err := buildReaders(spec)
	if err != nil {
		return Result{}, err
	}
	if len(readers) != len(st.Cores) || len(st.Consumed) != len(st.Cores) || len(st.Seen) != len(st.Cores) {
		return Result{}, fmt.Errorf("%w: core count mismatch", errCkptInvalid)
	}
	for i, rd := range readers {
		skipReader(rd, st.Consumed[i])
	}
	sys := memsys.New(machine, spec.Cores)
	sys.Restore(st.Sys)
	sys.RestorePrefetcherStates(st.PF)
	cores, lims := buildCores(spec, machine, sys, readers, 0)
	for i, c := range cores {
		c.Restore(st.Cores[i])
		lims[i].SetSeen(st.Seen[i])
	}
	ck.startRound = st.Round
	ck.nextCkpt = cf.NextCkpt
	return runDetailed(ctx, tr, spec, sys, cores, lims, cf.WarmupFF, onProgress, ck)
}

// resumeSampled rebuilds a sampled run from a checkpoint and re-enters the
// window loop with the recorded scheduler state.
func resumeSampled(ctx context.Context, tr *obs.Trace, spec RunSpec, cf *ckptFile, ck *runCkpt, onProgress func(Progress)) (Result, error) {
	st := cf.Sampled
	machine, err := spec.machineConfig()
	if err != nil {
		return Result{}, err
	}
	readers, err := buildReaders(spec)
	if err != nil {
		return Result{}, err
	}
	if len(readers) != spec.Cores || len(st.DTLBs) != spec.Cores || len(st.BPs) != spec.Cores {
		return Result{}, fmt.Errorf("%w: core count mismatch", errCkptInvalid)
	}
	for _, rd := range readers {
		skipReader(rd, st.Consumed)
	}
	sys := memsys.New(machine, spec.Cores)
	sys.Restore(st.Sys)
	sys.RestorePrefetcherStates(st.PF)
	dtlbs, bps := buildFunctionalState(machine, spec)
	for i := range dtlbs {
		dtlbs[i].Restore(st.DTLBs[i])
		if bps[i] != nil {
			if st.BPs[i].BP == nil {
				return Result{}, fmt.Errorf("%w: predictor presence mismatch", errCkptInvalid)
			}
			bps[i].Restore(st.BPs[i].BP)
		}
	}
	ck.nextCkpt = cf.NextCkpt
	return runSampled(ctx, tr, spec, machine, sys, readers, dtlbs, bps, cf.WarmupFF, onProgress, ck, st)
}
