package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/workloads"
)

// fig5QuickGrid reproduces the shape of the figures package's Fig. 5 sweep at
// Quick scale — every SB-bound SPEC workload × SB size × policy, plus the
// ideal normalization run per size — with a warmup prefix attached, at a
// reduced instruction budget so the double (warm-start on and off) execution
// stays test-sized.
func fig5QuickGrid(warmup, insts uint64) []RunSpec {
	var specs []RunSpec
	mk := func(w string, p core.Policy, sq int) RunSpec {
		return RunSpec{
			Workload: w, Policy: p, SQSize: sq,
			Prefetcher: config.PrefetchStream,
			Insts:      insts, WarmupInsts: warmup,
		}
	}
	for _, w := range workloads.SBBoundSPEC() {
		for _, sq := range config.StandardSQSizes {
			for _, p := range []core.Policy{core.PolicyAtExecute, core.PolicyAtCommit, core.PolicySPB} {
				specs = append(specs, mk(w.Name, p, sq))
			}
			specs = append(specs, mk(w.Name, core.PolicyIdeal, sq))
		}
	}
	return specs
}

// TestWarmStartEquivalenceFig5Grid is the tentpole invariant: across the full
// Fig. 5 (quick) grid, the canonical stats JSON of every point is
// byte-identical whether its warmup was forked from a shared snapshot or
// simulated in place. It also proves the accounting claim — each
// warmup-equivalence group (here: one per workload) is simulated exactly
// once, with every grid point forked from it.
func TestWarmStartEquivalenceFig5Grid(t *testing.T) {
	const (
		warmup = 60_000
		insts  = 25_000
	)
	specs := fig5QuickGrid(warmup, insts)

	on := NewRunner()
	on.SetWarmStart(true)
	off := NewRunner()
	off.SetWarmStart(false)

	resOn, err := on.GetAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := off.GetAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		jOn, err := resOn[i].StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		jOff, err := resOff[i].StatsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jOn, jOff) {
			t.Errorf("%s/%v/SB%d: stats JSON diverges between warm-start on and off\non:  %s\noff: %s",
				specs[i].Workload, specs[i].Policy, specs[i].SQSize, jOn, jOff)
		}
	}

	groups := uint64(len(workloads.SBBoundSPEC()))
	points := uint64(len(specs))
	perGroup := points / groups
	st := on.SimStats()
	if st.WarmGroups != groups {
		t.Errorf("WarmGroups = %d, want %d (one warmup per workload, simulated exactly once)", st.WarmGroups, groups)
	}
	if st.WarmForks != points {
		t.Errorf("WarmForks = %d, want %d (every grid point forked)", st.WarmForks, points)
	}
	if got := on.Runs(); got != points {
		t.Errorf("Runs() = %d, want %d", got, points)
	}
	wantSaved := groups * (perGroup - 1) * warmup
	if st.WarmInstsSaved != wantSaved {
		t.Errorf("WarmInstsSaved = %d, want %d", st.WarmInstsSaved, wantSaved)
	}
	wantOn := groups*warmup + points*insts
	if st.InstsSimulated != wantOn {
		t.Errorf("on: InstsSimulated = %d, want %d", st.InstsSimulated, wantOn)
	}
	offSt := off.SimStats()
	if offSt.WarmGroups != 0 || offSt.WarmForks != 0 || offSt.WarmInstsSaved != 0 {
		t.Errorf("off-mode runner reported warm-start activity: %+v", offSt)
	}
	if want := points * (warmup + insts); offSt.InstsSimulated != want {
		t.Errorf("off: InstsSimulated = %d, want %d", offSt.InstsSimulated, want)
	}
}

// assertWarmEquivalent runs spec through a warm-start-on runner and a
// warm-start-off runner and requires bit-identical results.
func assertWarmEquivalent(t *testing.T, spec RunSpec) {
	t.Helper()
	on := NewRunner()
	on.SetWarmStart(true)
	off := NewRunner()
	off.SetWarmStart(false)
	a, err := on.Get(spec)
	if err != nil {
		t.Fatalf("%+v (warm-start): %v", spec, err)
	}
	b, err := off.Get(spec)
	if err != nil {
		t.Fatalf("%+v (in-place): %v", spec, err)
	}
	if !reflect.DeepEqual(a.CPU, b.CPU) {
		t.Errorf("%s/%v: CPU stats diverge\nfork:     %+v\nin-place: %+v",
			spec.Workload, spec.Policy, a.CPU, b.CPU)
	}
	if !reflect.DeepEqual(a.Mem, b.Mem) {
		t.Errorf("%s/%v: memory stats diverge\nfork:     %+v\nin-place: %+v",
			spec.Workload, spec.Policy, a.Mem, b.Mem)
	}
	if !reflect.DeepEqual(a.Energy, b.Energy) {
		t.Errorf("%s/%v: energy diverges", spec.Workload, spec.Policy)
	}
	if !reflect.DeepEqual(a.TD, b.TD) {
		t.Errorf("%s/%v: top-down diverges", spec.Workload, spec.Policy)
	}
	if on.SimStats().WarmForks != 1 {
		t.Errorf("%s/%v: expected exactly one fork, got %+v", spec.Workload, spec.Policy, on.SimStats())
	}
}

// TestWarmStartEquivalenceVariants covers the knobs that exercise distinct
// snapshotted state: multi-core coherence (directory, invalidations), the
// modelled branch predictor, the coalescing-SB ablation, alternative cores,
// the adaptive prefetcher (feedback counters), and the reference loop.
func TestWarmStartEquivalenceVariants(t *testing.T) {
	assertWarmEquivalent(t, RunSpec{
		Workload: "dedup", Cores: 4, Policy: core.PolicySPB, SQSize: 14,
		Insts: 4000, WarmupInsts: 10_000, Prefetcher: config.PrefetchStream,
	})
	assertWarmEquivalent(t, RunSpec{
		Workload: "canneal", Cores: 8, Policy: core.PolicyAtCommit, SQSize: 14,
		Insts: 3000, WarmupInsts: 8000,
	})
	assertWarmEquivalent(t, RunSpec{
		Workload: "deepsjeng", Policy: core.PolicyAtCommit, SQSize: 14,
		Insts: 10_000, WarmupInsts: 30_000, ModelBranchPredictor: true,
	})
	assertWarmEquivalent(t, RunSpec{
		Workload: "cam4", Policy: core.PolicySPB, SQSize: 14,
		Insts: 8000, WarmupInsts: 20_000, CoalesceSB: true, DisableFastForward: true,
	})
	assertWarmEquivalent(t, RunSpec{
		Workload: "x264", CoreName: "SLM", Policy: core.PolicySPB, SQSize: 16,
		Insts: 8000, WarmupInsts: 20_000, Prefetcher: config.PrefetchAdaptive,
	})
	assertWarmEquivalent(t, RunSpec{
		Workload: "mcf", Policy: core.PolicyIdeal, SQSize: 56,
		Insts: 8000, WarmupInsts: 20_000, BackwardBursts: true, CrossPageBursts: true,
	})
}

// TestWarmStartGroupSharingAcrossKnobs pins the warmup-equivalence key: specs
// differing only in knobs that are inert during functional warming (policy,
// SB size, prefetcher, SPB window, fast-forward mode) share one group, while
// specs differing in warm-relevant fields (seed, workload, warmup length,
// predictor modelling) do not.
func TestWarmStartGroupSharingAcrossKnobs(t *testing.T) {
	r := NewRunner()
	r.SetWarmStart(true)
	base := RunSpec{
		Workload: "bwaves", Policy: core.PolicyAtCommit, SQSize: 56,
		Insts: 2000, WarmupInsts: 5000,
	}
	variants := []RunSpec{base}
	v := base
	v.Policy = core.PolicySPB
	v.SQSize = 14
	variants = append(variants, v)
	v = base
	v.Prefetcher = config.PrefetchAdaptive
	v.WindowN = 16
	variants = append(variants, v)
	v = base
	v.DisableFastForward = true
	v.Policy = core.PolicyIdeal
	variants = append(variants, v)
	if _, err := r.GetAll(variants); err != nil {
		t.Fatal(err)
	}
	if st := r.SimStats(); st.WarmGroups != 1 || st.WarmForks != 4 {
		t.Fatalf("warm-inert knobs must share one group: %+v", st)
	}

	splitters := []RunSpec{base, base, base, base}
	splitters[1].Seed = 2
	splitters[2].WarmupInsts = 6000
	splitters[3].ModelBranchPredictor = true
	r2 := NewRunner()
	r2.SetWarmStart(true)
	if _, err := r2.GetAll(splitters); err != nil {
		t.Fatal(err)
	}
	if st := r2.SimStats(); st.WarmGroups != 4 {
		t.Fatalf("warm-relevant fields must split groups: %+v", st)
	}
}

// FuzzWarmSnapshotAliasing forks a machine from a warmed snapshot, runs the
// fork to completion — mutating its caches, directory, store buffer, TLB,
// predictor and DRAM state — and requires the parent snapshot to be
// bit-identical to an independently built twin. Any aliasing between a fork
// and its snapshot (a shared slice, a copied pointer) shows up as the run
// mutating the parent.
func FuzzWarmSnapshotAliasing(f *testing.F) {
	f.Add(uint64(1), uint32(5000), uint32(3000), uint8(0))
	f.Add(uint64(7), uint32(9000), uint32(2000), uint8(1))
	f.Add(uint64(3), uint32(7000), uint32(2500), uint8(2))
	f.Add(uint64(5), uint32(6000), uint32(2000), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, warm, insts uint32, variant uint8) {
		spec := RunSpec{
			Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14,
			Prefetcher:  config.PrefetchStream,
			Insts:       uint64(insts%8000) + 1000,
			WarmupInsts: uint64(warm%20000) + 1000,
			Seed:        seed%16 + 1,
		}
		if variant&1 != 0 {
			spec.ModelBranchPredictor = true
		}
		if variant&2 != 0 {
			spec.Workload = "dedup"
			spec.Cores = 2
		}
		spec = spec.normalize()

		r := NewRunner()
		ctx := context.Background()
		parent, err := r.buildWarmState(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		twin, err := r.buildWarmState(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.runForked(ctx, spec, parent, nil, nil); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parent.sys, twin.sys) {
			t.Error("running a fork mutated the parent memory-system snapshot")
		}
		if !reflect.DeepEqual(parent.dtlbs, twin.dtlbs) {
			t.Error("running a fork mutated the parent TLB snapshots")
		}
		if !reflect.DeepEqual(parent.bps, twin.bps) {
			t.Error("running a fork mutated the parent predictor snapshots")
		}
		if !reflect.DeepEqual(parent.progs, twin.progs) {
			t.Error("running a fork mutated the parent trace cursors")
		}
	})
}

// FuzzNormalizeIdempotent pins the normalization contract external caches
// rely on: Normalized is idempotent, so a spec normalizes to the same point
// no matter how many cache tiers have already normalized it.
func FuzzNormalizeIdempotent(f *testing.F) {
	f.Add("bwaves", uint8(3), uint8(1), uint16(56), uint16(48), uint64(200_000), uint64(0), uint64(1), uint8(0))
	f.Add("", uint8(0), uint8(0), uint16(0), uint16(0), uint64(0), uint64(0), uint64(0), uint8(0))
	f.Add("dedup", uint8(4), uint8(8), uint16(14), uint16(16), uint64(5), uint64(1_000_000), uint64(42), uint8(0x3f))
	f.Fuzz(func(t *testing.T, workload string, policy, cores uint8, sq, windowN uint16, insts, warmup, seed uint64, flags uint8) {
		s := RunSpec{
			Workload:             workload,
			Policy:               core.Policy(policy % 5),
			SQSize:               int(sq),
			CoreName:             "",
			Cores:                int(cores),
			Insts:                insts,
			WarmupInsts:          warmup,
			WindowN:              int(windowN),
			Seed:                 seed,
			DynamicSPB:           flags&1 != 0,
			CoalesceSB:           flags&2 != 0,
			BackwardBursts:       flags&4 != 0,
			CrossPageBursts:      flags&8 != 0,
			ModelBranchPredictor: flags&16 != 0,
			DisableFastForward:   flags&32 != 0,
		}
		n1 := s.Normalized()
		n2 := n1.Normalized()
		if n1 != n2 {
			t.Fatalf("Normalized not idempotent:\nonce:  %+v\ntwice: %+v", n1, n2)
		}
		if n1.Cores == 0 || n1.Insts == 0 || n1.WindowN == 0 || n1.Seed == 0 {
			t.Fatalf("Normalized left a defaulted field zero: %+v", n1)
		}
	})
}
