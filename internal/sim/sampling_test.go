package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"spb/internal/bpred"
	"spb/internal/cache"
	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/cpu"
	"spb/internal/mem"
	"spb/internal/memsys"
	"spb/internal/tlb"
	"spb/internal/trace"
	"spb/internal/workloads"
)

// testSampling is the reference sampling configuration of the suite: the
// shipped default, so the equivalence grid validates exactly what the CLIs'
// -sample shortcut and scripts/bench_sampled.sh run.
var testSampling = DefaultSampling

func TestSamplingNormalizeAndValidate(t *testing.T) {
	if (SamplingConfig{}).Enabled() {
		t.Fatal("zero SamplingConfig must be disabled")
	}
	n := SamplingConfig{IntervalInsts: 100_000}.normalize()
	if n.DetailedInsts != 1000 || n.WarmInsts != 2000 {
		t.Fatalf("defaults: got %+v, want detailed=1000 warm=2000", n)
	}
	// A disabled config normalizes to the zero value no matter what the
	// dormant fields held, so "no sampling" is one canonical cache point.
	if got := (SamplingConfig{DetailedInsts: 5, WarmInsts: 7}).normalize(); got != (SamplingConfig{}) {
		t.Fatalf("disabled config must normalize to zero, got %+v", got)
	}
	bad := RunSpec{Workload: "bwaves", SQSize: 14,
		Sampling: SamplingConfig{IntervalInsts: 1000, DetailedInsts: 800, WarmInsts: 800}}
	if _, err := Run(bad); err == nil {
		t.Fatal("warm+detailed > interval must be rejected")
	}
}

// TestSampledDeterminism pins the byte-determinism the content-addressed
// caches require: the same sampled spec produces byte-identical canonical
// stats JSON on every execution, including the sample.* fields, and a
// full-detail run's JSON stays free of sample.* keys (byte-identical to
// pre-sampling builds).
func TestSampledDeterminism(t *testing.T) {
	spec := RunSpec{
		Workload: "bwaves", Policy: core.PolicySPB, SQSize: 14,
		Prefetcher: config.PrefetchStream,
		Insts:      400_000, WarmupInsts: 20_000,
		Sampling: SamplingConfig{IntervalInsts: 50_000, DetailedInsts: 4000, WarmInsts: 6000},
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("sampled stats JSON not deterministic:\n1st: %s\n2nd: %s", ja, jb)
	}
	if a.Sample.Intervals == 0 || a.Sample.IPCMeanPPM == 0 {
		t.Fatalf("sampled run produced no samples: %+v", a.Sample)
	}
	if !bytes.Contains(ja, []byte(`"sample.ipcMeanPPM"`)) {
		t.Fatalf("sample.* counters missing from stats JSON: %s", ja)
	}

	fullSpec := spec
	fullSpec.Sampling = SamplingConfig{}
	full, err := Run(fullSpec)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := full.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(jf, []byte(`"sample.`)) {
		t.Fatalf("full-detail run leaked sample.* counters: %s", jf)
	}
}

// sampledCheck is one paper-relevant metric of the error-bound suite: the
// full-detail run's rate and the sampled run's mean ± reported error bound.
type sampledCheck struct {
	name     string
	fullPPM  uint64
	mean, ci uint64
}

// sampledChecks derives, for every paper-relevant metric, the full-detail
// run's per-instruction rate (in PPM) and the sampled estimate it must cover.
func sampledChecks(full Result, s SampleStats) []sampledCheck {
	com := float64(full.CPU.Committed)
	return []sampledCheck{
		{"ipc", toPPM(com / float64(full.CPU.Cycles)), s.IPCMeanPPM, s.IPCCI95PPM},
		{"cpi", toPPM(float64(full.CPU.Cycles) / com), s.CPIMeanPPM, s.CPICI95PPM},
		{"sbStallPerInst", toPPM(float64(full.CPU.SBStallCycles) / com), s.SBStallPerInstMeanPPM, s.SBStallPerInstCI95PPM},
		{"otherStallPerInst", toPPM(float64(full.CPU.OtherStallCycles()) / com), s.OtherStallPerInstMeanPPM, s.OtherStallPerInstCI95PPM},
		{"frontendStallPerInst", toPPM(float64(full.CPU.FrontendStallCycles) / com), s.FrontendStallPerInstMeanPPM, s.FrontendStallPerInstCI95PPM},
		{"execStallL1DPerInst", toPPM(float64(full.CPU.ExecStallL1DPending) / com), s.ExecStallL1DPerInstMeanPPM, s.ExecStallL1DPerInstCI95PPM},
		{"l1MissPerInst", toPPM(float64(full.Mem.L1Misses) / com), s.L1MissPerInstMeanPPM, s.L1MissPerInstCI95PPM},
		{"dramPerInst", toPPM(float64(full.Mem.DRAMReads+full.Mem.DRAMWrites) / com), s.DRAMPerInstMeanPPM, s.DRAMPerInstCI95PPM},
	}
}

// ciSlackPPM absorbs quantization and residual-transient effects on metrics
// whose absolute magnitude is tiny (under ~0.1% of an instruction): a rate
// of a few hundred PPM has a guard-scaled interval of a few dozen PPM while
// compulsory-miss tails contribute comparable absolute noise at short
// horizons. 1000 PPM is 0.1 percentage points of absolute slack.
const ciSlackPPM = 1000

// TestSampledWithinErrorBound is the tentpole accuracy gate: across a Fig. 5
// (quick)-shaped grid — every SB-bound SPEC workload × small/large SB ×
// at-commit/SPB — every paper-relevant metric of a sampled run lands inside
// the run's own reported 95% error bound versus the full-detail run of the
// same spec. Both sides share a functional warmup prefix, like real sweeps
// do: without it a 2M-instruction horizon is dominated by the cold-start
// transient that sampling's documented soundness envelope excludes
// (DESIGN.md §14). scripts/bench_sampled.sh repeats this check at the
// paper's 10M-instruction horizon with no warmup.
func TestSampledWithinErrorBound(t *testing.T) {
	const insts = 2_000_000
	var specs []RunSpec
	for _, w := range workloads.SBBoundSPEC() {
		for _, sq := range []int{14, 56} {
			for _, p := range []core.Policy{core.PolicyAtCommit, core.PolicySPB} {
				specs = append(specs, RunSpec{
					Workload: w.Name, Policy: p, SQSize: sq,
					Prefetcher: config.PrefetchStream, Insts: insts,
					WarmupInsts: 500_000,
				})
			}
		}
	}
	runner := NewRunner()
	fulls, err := runner.GetAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	sampledSpecs := make([]RunSpec, len(specs))
	for i, s := range specs {
		s.Sampling = testSampling
		sampledSpecs[i] = s
	}
	sampled, err := runner.GetAll(sampledSpecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if sampled[i].Sample.Intervals == 0 {
			t.Errorf("%s/%v/SB%d: no measured intervals", specs[i].Workload, specs[i].Policy, specs[i].SQSize)
			continue
		}
		for _, c := range sampledChecks(fulls[i], sampled[i].Sample) {
			diff := int64(c.fullPPM) - int64(c.mean)
			if diff < 0 {
				diff = -diff
			}
			if uint64(diff) > c.ci+ciSlackPPM {
				t.Errorf("%s/%v/SB%d: %s: full=%d PPM, sampled=%d±%d PPM (off by %d)",
					specs[i].Workload, specs[i].Policy, specs[i].SQSize,
					c.name, c.fullPPM, c.mean, c.ci, diff)
			}
		}
	}
}

// TestSampledWarmStartEquivalence proves a sampled run is byte-identical
// whether its shared warmup prefix was forked from a warm-start snapshot or
// executed in place — the invariant that lets sampled sweeps ride the
// warm-start fork engine (DESIGN.md §12) unchanged.
func TestSampledWarmStartEquivalence(t *testing.T) {
	mk := func(w string, p core.Policy, cores int, bp bool) RunSpec {
		return RunSpec{
			Workload: w, Policy: p, SQSize: 14, Cores: cores,
			Prefetcher: config.PrefetchStream,
			Insts:      200_000, WarmupInsts: 30_000,
			ModelBranchPredictor: bp,
			Sampling:             SamplingConfig{IntervalInsts: 40_000, DetailedInsts: 3000, WarmInsts: 5000},
		}
	}
	specs := []RunSpec{
		mk("bwaves", core.PolicySPB, 1, false),
		mk("mcf", core.PolicyAtCommit, 1, true),
		mk("dedup", core.PolicySPB, 2, false),
	}
	for _, spec := range specs {
		on := NewRunner()
		on.SetWarmStart(true)
		off := NewRunner()
		off.SetWarmStart(false)
		a, err := on.Get(spec)
		if err != nil {
			t.Fatalf("%s/%v (fork): %v", spec.Workload, spec.Policy, err)
		}
		b, err := off.Get(spec)
		if err != nil {
			t.Fatalf("%s/%v (in-place): %v", spec.Workload, spec.Policy, err)
		}
		ja, _ := a.StatsJSON()
		jb, _ := b.StatsJSON()
		if !bytes.Equal(ja, jb) {
			t.Errorf("%s/%v: sampled stats diverge between warm-start fork and in-place\nfork:     %s\nin-place: %s",
				spec.Workload, spec.Policy, ja, jb)
		}
		if !reflect.DeepEqual(a.Sample, b.Sample) {
			t.Errorf("%s/%v: SampleStats diverge:\nfork:     %+v\nin-place: %+v",
				spec.Workload, spec.Policy, a.Sample, b.Sample)
		}
		if st := on.SimStats(); st.WarmForks != 1 || st.SampledRuns != 1 {
			t.Errorf("%s/%v: fork accounting: %+v", spec.Workload, spec.Policy, st)
		}
	}
}

// TestSampledRunnerAccounting pins the instruction bookkeeping of a sampled
// run and the runner's sampling counters.
func TestSampledRunnerAccounting(t *testing.T) {
	spec := RunSpec{
		Workload: "bwaves", Policy: core.PolicyAtCommit, SQSize: 14,
		Insts:    500_000,
		Sampling: SamplingConfig{IntervalInsts: 100_000, DetailedInsts: 5000, WarmInsts: 10_000},
	}
	r := NewRunner()
	res, err := r.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sample
	if s.Intervals != 5 {
		t.Errorf("Intervals = %d, want 5", s.Intervals)
	}
	if want := uint64(5 * 15_000); s.DetailedInsts != want {
		t.Errorf("DetailedInsts = %d, want %d", s.DetailedInsts, want)
	}
	if want := uint64(5 * 85_000); s.FastForwardInsts != want {
		t.Errorf("FastForwardInsts = %d, want %d", s.FastForwardInsts, want)
	}
	// The measured window opens at the first commit at or past WarmInsts —
	// up to a commit-width late — and closes exactly at the segment budget,
	// so each interval measures within a commit width of DetailedInsts.
	if lo, hi := uint64(5*(5000-8)), uint64(5*5000); s.MeasuredInsts < lo || s.MeasuredInsts > hi {
		t.Errorf("MeasuredInsts = %d, want within [%d, %d]", s.MeasuredInsts, lo, hi)
	}
	st := r.SimStats()
	if st.SampledRuns != 1 || st.SampleIntervals != 5 {
		t.Errorf("runner sampling stats: %+v", st)
	}
	if st.SampleInstsSkipped != s.FastForwardInsts {
		t.Errorf("SampleInstsSkipped = %d, want %d", st.SampleInstsSkipped, s.FastForwardInsts)
	}
	if st.InstsSimulated != s.DetailedInsts+s.FastForwardInsts {
		t.Errorf("InstsSimulated = %d, want %d", st.InstsSimulated, s.DetailedInsts+s.FastForwardInsts)
	}
}

// TestProgressFastForwardAccounting is the Progress regression test: the
// warmup prefix and the sampling skips report through FastForwardInsts, and
// Committed (the numerator of InstsPerSec) counts only detail-simulated
// instructions — fast-forwarding must not inflate the detailed rate.
func TestProgressFastForwardAccounting(t *testing.T) {
	var last Progress
	spec := RunSpec{
		Workload: "bwaves", Policy: core.PolicyAtCommit, SQSize: 14,
		Insts: 60_000, WarmupInsts: 40_000,
	}
	if _, err := RunCtx(context.Background(), spec, func(p Progress) { last = p }); err != nil {
		t.Fatal(err)
	}
	if last.FastForwardInsts != 40_000 {
		t.Errorf("full-detail run: FastForwardInsts = %d, want warmup 40000", last.FastForwardInsts)
	}
	if last.Committed != 60_000 {
		t.Errorf("full-detail run: Committed = %d, want 60000 (warmup must not inflate it)", last.Committed)
	}

	spec.Sampling = SamplingConfig{IntervalInsts: 20_000, DetailedInsts: 2000, WarmInsts: 3000}
	var sampledLast Progress
	res, err := RunCtx(context.Background(), spec, func(p Progress) { sampledLast = p })
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(40_000) + res.Sample.FastForwardInsts; sampledLast.FastForwardInsts != want {
		t.Errorf("sampled run: FastForwardInsts = %d, want warmup+skips = %d", sampledLast.FastForwardInsts, want)
	}
	if sampledLast.Committed != res.Sample.DetailedInsts {
		t.Errorf("sampled run: Committed = %d, want detailed insts %d", sampledLast.Committed, res.Sample.DetailedInsts)
	}
	if sampledLast.TargetInsts != 60_000 {
		t.Errorf("sampled run: TargetInsts = %d, want 60000", sampledLast.TargetInsts)
	}
}

// TestSampledCostEstimate pins the scheduler-facing cost model: a sampled run
// ranks by the work it will actually simulate — well below its full-detail
// twin (what LPT ordering, batch scheduling and pool hedging key on) — while
// still scaling with the horizon.
func TestSampledCostEstimate(t *testing.T) {
	full := RunSpec{Workload: "bwaves", SQSize: 14, Insts: 100_000_000}
	smp := full
	smp.Sampling = testSampling
	cf, cs := full.CostEstimate(), smp.CostEstimate()
	if cs*2 > cf {
		t.Errorf("sampled cost %d not well below full cost %d", cs, cf)
	}
	longer := smp
	longer.Insts *= 2
	if longer.CostEstimate() <= cs {
		t.Error("sampled cost must grow with the instruction budget")
	}
	// Warm-start knowledge composes: a forked sampled run sheds its warmup.
	warm := smp
	warm.WarmupInsts = 50_000_000
	if warm.CostEstimateAt(true) >= warm.CostEstimateAt(false) {
		t.Error("CostEstimateAt(true) must discount the warmup prefix")
	}
}

// TestSampledCancellation: a cancelled context stops a sampled run promptly
// with the context's error.
func TestSampledCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := RunSpec{
		Workload: "bwaves", SQSize: 14, Insts: 10_000_000,
		Sampling: testSampling,
	}
	if _, err := RunCtx(ctx, spec, nil); err != context.Canceled {
		t.Fatalf("cancelled sampled run returned %v, want context.Canceled", err)
	}
}

// buildEquivProgram compiles a branch-free workload over a footprint small
// enough to avoid capacity evictions: functional execution and detailed
// simulation then must leave identical cache-tag/coherence state, which is
// what FuzzFunctionalEquivalence asserts.
func buildEquivProgram(seed uint64, opmask uint8) *trace.Program {
	rng := trace.NewRNG(seed)
	bufA := trace.NewMemRegion(0x10000, 8<<10)
	bufB := trace.NewMemRegion(0x40000, 8<<10)
	var leaves []trace.Leaf
	if opmask&1 != 0 {
		leaves = append(leaves, trace.Leaf{Op: trace.OpMemset, Dst: bufA, Bytes: 1024, Size: 8, PC: 0x100})
	}
	if opmask&2 != 0 {
		leaves = append(leaves, trace.Leaf{Op: trace.OpStridedLoads, Dst: bufB, Count: 64, Stride: 64, PC: 0x200})
	}
	if opmask&4 != 0 {
		leaves = append(leaves, trace.Leaf{Op: trace.OpRMW, Dst: bufA, Bytes: 512, PC: 0x300})
	}
	if opmask&8 != 0 {
		leaves = append(leaves, trace.Leaf{Op: trace.OpScatterStores, Dst: bufB, Count: 32, PC: 0x400})
	}
	if len(leaves) == 0 {
		leaves = append(leaves, trace.Leaf{Op: trace.OpMemcpy, Src: bufA, Dst: bufB, Bytes: 1024, PC: 0x500})
	}
	return trace.NewProgram(rng, trace.Phase{Weight: 1, Leaves: leaves})
}

// funcEquivBlocks enumerates the footprint blocks of the equivalence
// programs.
func funcEquivBlocks() []mem.Block {
	var blocks []mem.Block
	for a := mem.Addr(0x10000); a < 0x10000+(8<<10); a += 64 {
		blocks = append(blocks, mem.BlockOf(a))
	}
	for a := mem.Addr(0x40000); a < 0x40000+(8<<10); a += 64 {
		blocks = append(blocks, mem.BlockOf(a))
	}
	return blocks
}

// cacheView reduces a cache to the architectural projection functional mode
// maintains: per footprint block, presence and coherence state. Timing
// fields and replacement order legitimately differ between the two modes.
func cacheView(c *cache.Cache, blocks []mem.Block) map[mem.Block]cache.State {
	v := make(map[mem.Block]cache.State)
	for _, b := range blocks {
		if l := c.Peek(b); l != nil {
			v[b] = l.State
		}
	}
	return v
}

// FuzzFunctionalEquivalence cross-validates the fast functional-execution
// mode against the detailed core — the sampled scheduler trusts the former
// to stand in for the latter between measurement intervals. For a
// branch-free, eviction-free program (no wrong-path fetch, no generic
// prefetcher, footprint within L1), the architectural state after N
// instructions must be identical in both modes: which blocks are resident
// at each cache level and in what coherence state, and where the
// instruction-stream cursor stopped.
func FuzzFunctionalEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(3000), uint8(3))
	f.Add(uint64(7), uint16(5000), uint8(15))
	f.Add(uint64(3), uint16(2000), uint8(0))
	f.Add(uint64(9), uint16(4000), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, opmask uint8) {
		insts := uint64(n%6000) + 500
		machine := config.Skylake().WithSQ(14).WithPrefetcher(config.PrefetchNone)
		blocks := funcEquivBlocks()

		// Detailed: a full core pipeline simulates the program, then drains.
		progD := buildEquivProgram(seed%16+1, opmask)
		sysD := memsys.New(machine, 1)
		coreD := cpu.NewWithOptions(machine.Core, core.PolicyAtCommit, machine.SPB, machine.TLB,
			cpu.Options{}, sysD.Port(0), trace.Limit(insts, progD), 1)
		for !coreD.Done() {
			coreD.Tick()
		}

		// Functional: the warm() replay the sampled scheduler uses.
		progF := buildEquivProgram(seed%16+1, opmask)
		sysF := memsys.New(machine, 1)
		dtlb := tlb.New(tlb.Config{Entries: machine.TLB.Entries, Ways: machine.TLB.Ways, WalkLat: machine.TLB.WalkLat})
		if err := warm(context.Background(), sysF, []*tlb.TLB{dtlb},
			[]*bpred.Predictor{nil}, []trace.Reader{progF}, insts, false); err != nil {
			t.Fatal(err)
		}

		for _, lvl := range []struct {
			name string
			d, f *cache.Cache
		}{
			{"L1", sysD.Port(0).L1(), sysF.Port(0).L1()},
			{"L2", sysD.Port(0).L2(), sysF.Port(0).L2()},
			{"L3", sysD.L3(), sysF.L3()},
		} {
			vd := cacheView(lvl.d, blocks)
			vf := cacheView(lvl.f, blocks)
			if !reflect.DeepEqual(vd, vf) {
				t.Errorf("seed=%d insts=%d mask=%d: %s architectural state diverges\ndetailed:   %v\nfunctional: %v",
					seed, insts, opmask, lvl.name, vd, vf)
			}
		}

		// Both modes must leave the stream cursor at the same instruction.
		var a, b trace.Inst
		okD, okF := progD.Next(&a), progF.Next(&b)
		if okD != okF || a != b {
			t.Errorf("stream cursors diverge after %d insts: detailed next=%+v functional next=%+v", insts, a, b)
		}
	})
}
