package sim

import (
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/cpu"
	"spb/internal/memsys"
	"spb/internal/trace"
	"spb/internal/workloads"
)

// TestPolicyOrdering asserts the paper's fundamental ordering on an
// SB-bound workload with a small SB: no prefetching is slowest, the ideal
// SB is fastest, and SPB lands between at-commit and ideal.
func TestPolicyOrdering(t *testing.T) {
	cycles := map[core.Policy]uint64{}
	for _, p := range core.Policies {
		r, err := Run(RunSpec{Workload: "x264", Policy: p, SQSize: 14, Insts: 80_000})
		if err != nil {
			t.Fatal(err)
		}
		cycles[p] = r.CPU.Cycles
	}
	if cycles[core.PolicyNone] < cycles[core.PolicyAtCommit] {
		t.Errorf("no-prefetch (%d) should not beat at-commit (%d)",
			cycles[core.PolicyNone], cycles[core.PolicyAtCommit])
	}
	if cycles[core.PolicySPB] >= cycles[core.PolicyAtCommit] {
		t.Errorf("SPB (%d) must beat at-commit (%d) on an SB-bound app at SB14",
			cycles[core.PolicySPB], cycles[core.PolicyAtCommit])
	}
	if cycles[core.PolicyIdeal] > cycles[core.PolicySPB] {
		t.Errorf("ideal (%d) should not lose to SPB (%d)",
			cycles[core.PolicyIdeal], cycles[core.PolicySPB])
	}
}

// TestSBSizeMonotonicity asserts that shrinking the SB never helps under
// the baseline policy.
func TestSBSizeMonotonicity(t *testing.T) {
	var prev uint64
	for _, sq := range []int{56, 28, 14} {
		r, err := Run(RunSpec{Workload: "bwaves", Policy: core.PolicyAtCommit, SQSize: sq, Insts: 80_000})
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && r.CPU.Cycles < prev {
			t.Errorf("SB%d (%d cycles) faster than the next larger SB (%d)",
				sq, r.CPU.Cycles, prev)
		}
		prev = r.CPU.Cycles
	}
}

// TestCommittedWorkIdenticalAcrossPolicies verifies the policies execute the
// same architectural work: identical instruction, load, store and branch
// counts — only timing may differ.
func TestCommittedWorkIdenticalAcrossPolicies(t *testing.T) {
	type arch struct{ c, l, s, b uint64 }
	var ref *arch
	for _, p := range core.Policies {
		r, err := Run(RunSpec{Workload: "blender", Policy: p, SQSize: 28, Insts: 50_000})
		if err != nil {
			t.Fatal(err)
		}
		got := arch{r.CPU.Committed, r.CPU.Loads, r.CPU.Stores, r.CPU.Branches}
		if ref == nil {
			ref = &got
			continue
		}
		if got != *ref {
			t.Fatalf("policy %v committed different work: %+v vs %+v", p, got, *ref)
		}
	}
}

// TestCoherenceInvariantAfterParallelRun replays a PARSEC-like run and then
// audits the directory and single-writer invariants.
func TestCoherenceInvariantAfterParallelRun(t *testing.T) {
	machine := config.Skylake().WithSQ(14)
	p, err := workloads.PARSECByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	readers := p.Build(3, 4)
	sys := memsys.New(machine, 4)
	cores := make([]*cpu.Core, 4)
	for i := range cores {
		cores[i] = cpu.New(machine.Core, core.PolicySPB, machine.SPB,
			sys.Port(i), trace.Limit(20_000, readers[i]), 11+uint64(i))
	}
	for round := 0; round < 2_000_000; round++ {
		running := false
		for _, c := range cores {
			if !c.Done() {
				c.Tick()
				running = true
			}
		}
		if !running {
			break
		}
		if round%50_000 == 0 {
			if err := sys.CheckCoherence(); err != nil {
				t.Fatalf("coherence violated mid-run: %v", err)
			}
		}
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatalf("coherence violated at end: %v", err)
	}
}

// TestStoresAllPerformedOnDrain checks TSO bookkeeping end to end: every
// committed store eventually performs, exactly once.
func TestStoresAllPerformedOnDrain(t *testing.T) {
	r, err := Run(RunSpec{Workload: "cam4", Policy: core.PolicySPB, SQSize: 14, Insts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.StoresPerformed != r.CPU.Stores {
		t.Fatalf("stores committed %d but performed %d", r.CPU.Stores, r.CPU.StoresPerformed)
	}
}

// TestIdealNeverSBStallsOnModerateWorkloads: with 1024 entries the ideal SB
// should show (near) zero SB-induced stalls on non-pure-store workloads.
func TestIdealLowSBStalls(t *testing.T) {
	r, err := Run(RunSpec{Workload: "deepsjeng", Policy: core.PolicyIdeal, SQSize: 14, Insts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.TD.SBStallRatio > 0.05 {
		t.Fatalf("ideal SB stall ratio %.3f, want near zero", r.TD.SBStallRatio)
	}
}

// TestSPBDetectorOnlyRunsUnderSPBPolicy ensures bursts never fire for other
// policies.
func TestSPBDetectorOnlyRunsUnderSPBPolicy(t *testing.T) {
	for _, p := range []core.Policy{core.PolicyNone, core.PolicyAtExecute, core.PolicyAtCommit, core.PolicyIdeal} {
		r, err := Run(RunSpec{Workload: "blender", Policy: p, SQSize: 14, Insts: 30_000})
		if err != nil {
			t.Fatal(err)
		}
		if r.CPU.SPBBursts != 0 || r.Mem.SPFBurst != 0 {
			t.Fatalf("policy %v produced SPB bursts", p)
		}
	}
}

// TestWindowNAffectsTriggering: a larger window means fewer, later checks.
func TestWindowNSensitivity(t *testing.T) {
	counts := map[int]uint64{}
	for _, n := range []int{16, 48} {
		r, err := Run(RunSpec{Workload: "blender", Policy: core.PolicySPB, SQSize: 14,
			Insts: 60_000, WindowN: n})
		if err != nil {
			t.Fatal(err)
		}
		counts[n] = r.CPU.SPBBursts
	}
	if counts[16] == 0 || counts[48] == 0 {
		t.Fatalf("both windows should trigger bursts: %v", counts)
	}
}

// TestDynamicSPBRuns exercises the §IV.C ablation path end to end.
func TestDynamicSPBRuns(t *testing.T) {
	r, err := Run(RunSpec{Workload: "roms", Policy: core.PolicySPB, SQSize: 28,
		Insts: 40_000, DynamicSPB: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Committed != 40_000 {
		t.Fatal("dynamic-SPB run did not complete")
	}
}

// TestSeedChangesResults: different workload seeds must change timing but
// not break anything.
func TestSeedVariation(t *testing.T) {
	a, err := Run(RunSpec{Workload: "gcc", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 40_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunSpec{Workload: "gcc", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 40_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles == b.CPU.Cycles && a.Mem.L1TagAccesses == b.Mem.L1TagAccesses {
		t.Fatal("different seeds should perturb the run")
	}
}

// TestAllSPECWorkloadsRunUnderAllPolicies is the broad smoke sweep: every
// workload must complete under every policy without livelock.
func TestAllSPECWorkloadsRunUnderAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	runner := NewRunner()
	var specs []RunSpec
	for _, w := range workloads.SPEC() {
		for _, p := range []core.Policy{core.PolicyAtCommit, core.PolicySPB} {
			specs = append(specs, RunSpec{Workload: w.Name, Policy: p, SQSize: 28, Insts: 15_000})
		}
	}
	results, err := runner.GetAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.CPU.Committed != 15_000 {
			t.Errorf("spec %d (%s/%v): committed %d", i, r.Spec.Workload, r.Spec.Policy, r.CPU.Committed)
		}
	}
}

// TestAllPARSECWorkloadsRun exercises every parallel workload briefly.
func TestAllPARSECWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	runner := NewRunner()
	var specs []RunSpec
	for _, p := range workloads.PARSEC() {
		specs = append(specs, RunSpec{Workload: p.Name, Policy: core.PolicySPB, SQSize: 14,
			Cores: 4, Insts: 8_000})
	}
	results, err := runner.GetAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.CPU.Committed != 4*8_000 {
			t.Errorf("%s: committed %d", r.Spec.Workload, r.CPU.Committed)
		}
	}
}
