package sim

import (
	"reflect"
	"testing"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/workloads"
)

// assertFFEquivalent runs spec with the event-horizon fast forward on and
// off and requires every statistic — CPU counters, memory-system counters,
// energy, Top-Down — to be bit-identical. This is the DESIGN.md determinism
// invariant extended to the optimized path: fast-forwarding may only skip
// cycles it can prove dead.
func assertFFEquivalent(t *testing.T, spec RunSpec) {
	t.Helper()
	spec.DisableFastForward = false
	fast, err := Run(spec)
	if err != nil {
		t.Fatalf("%+v (fast-forward): %v", spec, err)
	}
	spec.DisableFastForward = true
	ref, err := Run(spec)
	if err != nil {
		t.Fatalf("%+v (reference): %v", spec, err)
	}
	if !reflect.DeepEqual(fast.CPU, ref.CPU) {
		t.Errorf("%s/%v: CPU stats diverge\nfast: %+v\nref:  %+v",
			spec.Workload, spec.Policy, fast.CPU, ref.CPU)
	}
	if !reflect.DeepEqual(fast.Mem, ref.Mem) {
		t.Errorf("%s/%v: memory stats diverge\nfast: %+v\nref:  %+v",
			spec.Workload, spec.Policy, fast.Mem, ref.Mem)
	}
	if !reflect.DeepEqual(fast.Energy, ref.Energy) {
		t.Errorf("%s/%v: energy diverges", spec.Workload, spec.Policy)
	}
	if !reflect.DeepEqual(fast.TD, ref.TD) {
		t.Errorf("%s/%v: top-down counters diverge\nfast: %+v\nref:  %+v",
			spec.Workload, spec.Policy, fast.TD, ref.TD)
	}
}

// TestFastForwardEquivalenceSPEC covers every SPEC workload under the SPB
// policy at a small scale, plus every policy (and the tiny-SB stall-heavy
// configuration) on two representative SB-bound applications.
func TestFastForwardEquivalenceSPEC(t *testing.T) {
	for _, w := range workloads.SPEC() {
		assertFFEquivalent(t, RunSpec{
			Workload: w.Name, Policy: core.PolicySPB, SQSize: 14, Insts: 4000,
		})
	}
	policies := []core.Policy{
		core.PolicyNone, core.PolicyAtExecute, core.PolicyAtCommit,
		core.PolicySPB, core.PolicyIdeal,
	}
	for _, w := range []string{"roms", "bwaves"} {
		for _, p := range policies {
			assertFFEquivalent(t, RunSpec{
				Workload: w, Policy: p, SQSize: 14, Insts: 4000,
			})
			assertFFEquivalent(t, RunSpec{
				Workload: w, Policy: p, SQSize: 56, Insts: 4000,
			})
		}
	}
}

// TestFastForwardEquivalenceVariants covers the ablation knobs that change
// core behaviour: coalescing SB, modelled branch predictor, generic
// prefetchers, and alternative Table II cores.
func TestFastForwardEquivalenceVariants(t *testing.T) {
	assertFFEquivalent(t, RunSpec{
		Workload: "cam4", Policy: core.PolicySPB, SQSize: 14, Insts: 4000,
		CoalesceSB: true,
	})
	assertFFEquivalent(t, RunSpec{
		Workload: "deepsjeng", Policy: core.PolicyAtCommit, SQSize: 14, Insts: 4000,
		ModelBranchPredictor: true,
	})
	assertFFEquivalent(t, RunSpec{
		Workload: "fotonik3d", Policy: core.PolicySPB, SQSize: 14, Insts: 4000,
		Prefetcher: config.PrefetchStream,
	})
	assertFFEquivalent(t, RunSpec{
		Workload: "mcf", Policy: core.PolicyNone, SQSize: 56, Insts: 4000,
		Prefetcher: config.PrefetchAdaptive,
	})
	assertFFEquivalent(t, RunSpec{
		Workload: "x264", Policy: core.PolicySPB, SQSize: 14, Insts: 4000,
		CoreName: "SLM",
	})
}

// TestFastForwardEquivalencePARSEC covers every parallel workload: the
// multi-core lock-step loop must skip all cores to one coordinated horizon,
// so coherence interactions replay identically.
func TestFastForwardEquivalencePARSEC(t *testing.T) {
	for _, p := range workloads.PARSEC() {
		assertFFEquivalent(t, RunSpec{
			Workload: p.Name, Policy: core.PolicySPB, SQSize: 14,
			Cores: 4, Insts: 1500,
		})
	}
	assertFFEquivalent(t, RunSpec{
		Workload: "dedup", Policy: core.PolicyAtCommit, SQSize: 14,
		Cores: 8, Insts: 1500,
	})
	assertFFEquivalent(t, RunSpec{
		Workload: "canneal", Policy: core.PolicyNone, SQSize: 56,
		Cores: 4, Insts: 1500,
	})
}
