package sim

import (
	"encoding/json"

	"spb/internal/stats"
	"spb/internal/topdown"
)

// ExportStats writes every counter of the result into a stats.Set under
// dotted names (cpu.*, mem.*, energy.* in microjoules), the stable format
// consumed by tooling that diffs simulator runs.
func (r Result) ExportStats(s *stats.Set) {
	c := r.CPU
	s.Counter("cpu.cycles").Add(c.Cycles)
	s.Counter("cpu.committed").Add(c.Committed)
	s.Counter("cpu.loads").Add(c.Loads)
	s.Counter("cpu.stores").Add(c.Stores)
	s.Counter("cpu.branches").Add(c.Branches)
	s.Counter("cpu.mispredicts").Add(c.Mispredicts)
	s.Counter("cpu.wrongPathInsts").Add(c.WrongPathInsts)
	s.Counter("cpu.forwardedLoads").Add(c.ForwardedLoads)
	s.Counter("cpu.partialForwards").Add(c.PartialForwards)
	s.Counter("cpu.sbStallCycles").Add(c.SBStallCycles)
	s.Counter("cpu.robStallCycles").Add(c.ROBStallCycles)
	s.Counter("cpu.iqStallCycles").Add(c.IQStallCycles)
	s.Counter("cpu.lqStallCycles").Add(c.LQStallCycles)
	s.Counter("cpu.frontendStallCycles").Add(c.FrontendStallCycles)
	s.Counter("cpu.sbStallApp").Add(c.SBStallApp)
	s.Counter("cpu.sbStallLib").Add(c.SBStallLib)
	s.Counter("cpu.sbStallKernel").Add(c.SBStallKernel)
	s.Counter("cpu.execStallL1DPending").Add(c.ExecStallL1DPending)
	s.Counter("cpu.storesPerformed").Add(c.StoresPerformed)
	s.Counter("cpu.spbBursts").Add(c.SPBBursts)

	m := r.Mem
	s.Counter("mem.l1TagAccesses").Add(m.L1TagAccesses)
	s.Counter("mem.l1Hits").Add(m.L1Hits)
	s.Counter("mem.l1Misses").Add(m.L1Misses)
	s.Counter("mem.l2Accesses").Add(m.L2Accesses)
	s.Counter("mem.l3Accesses").Add(m.L3Accesses)
	s.Counter("mem.dramReads").Add(m.DRAMReads)
	s.Counter("mem.dramWrites").Add(m.DRAMWrites)
	s.Counter("mem.loadMisses").Add(m.LoadMisses)
	s.Counter("mem.storeMisses").Add(m.StoreMisses)
	s.Counter("mem.wrongPathLoads").Add(m.WrongPathLoads)
	s.Counter("mem.spfIssued").Add(m.SPFIssued)
	s.Counter("mem.spfDiscarded").Add(m.SPFDiscarded)
	s.Counter("mem.spfMissToL2").Add(m.SPFMissToL2)
	s.Counter("mem.spfSuccessful").Add(m.SPFSuccessful)
	s.Counter("mem.spfLate").Add(m.SPFLate)
	s.Counter("mem.spfEarly").Add(m.SPFEarly)
	s.Counter("mem.spfNeverUsed").Add(m.SPFNeverUsed())
	s.Counter("mem.spfBurst").Add(m.SPFBurst)
	s.Counter("mem.gpfIssued").Add(m.GPFIssued)
	s.Counter("mem.gpfUsed").Add(m.GPFUsed)
	s.Counter("mem.gpfLate").Add(m.GPFLate)
	s.Counter("mem.gpfPolluted").Add(m.GPFPolluted)
	s.Counter("mem.invalidations").Add(m.Invalidations)
	s.Counter("mem.writebacks").Add(m.Writebacks)

	// Top-Down stall accounting (paper §V) in integer parts-per-million, so
	// the per-run breakdown travels inside the canonical stats set while the
	// set stays integer-valued and deterministic. td.sbBound mirrors the
	// paper's >2% SB-stall criterion as 0/1.
	sb, other, fe, l1d := topdown.StatPPM(&c)
	s.Counter("td.cycles").Add(c.Cycles)
	s.Counter("td.sbStallPPM").Add(sb)
	s.Counter("td.otherStallPPM").Add(other)
	s.Counter("td.frontendStallPPM").Add(fe)
	s.Counter("td.execStallL1DPendingPPM").Add(l1d)
	if sb > topdown.SBBoundThresholdPPM {
		s.Counter("td.sbBound").Add(1)
	} else {
		s.Counter("td.sbBound").Add(0)
	}

	// SMARTS sampling summary (DESIGN.md §14), present only for sampled runs
	// so full-detail output is byte-identical to pre-sampling builds. Rates
	// travel as integer PPM like td.*; each mean carries its 95% CLT
	// confidence half-width.
	if r.Spec.Sampling.Enabled() {
		sm := r.Sample
		s.Counter("sample.intervals").Add(sm.Intervals)
		s.Counter("sample.measuredInsts").Add(sm.MeasuredInsts)
		s.Counter("sample.detailedInsts").Add(sm.DetailedInsts)
		s.Counter("sample.fastForwardInsts").Add(sm.FastForwardInsts)
		s.Counter("sample.ipcMeanPPM").Add(sm.IPCMeanPPM)
		s.Counter("sample.ipcCI95PPM").Add(sm.IPCCI95PPM)
		s.Counter("sample.cpiMeanPPM").Add(sm.CPIMeanPPM)
		s.Counter("sample.cpiCI95PPM").Add(sm.CPICI95PPM)
		s.Counter("sample.sbStallPerInstMeanPPM").Add(sm.SBStallPerInstMeanPPM)
		s.Counter("sample.sbStallPerInstCI95PPM").Add(sm.SBStallPerInstCI95PPM)
		s.Counter("sample.otherStallPerInstMeanPPM").Add(sm.OtherStallPerInstMeanPPM)
		s.Counter("sample.otherStallPerInstCI95PPM").Add(sm.OtherStallPerInstCI95PPM)
		s.Counter("sample.frontendStallPerInstMeanPPM").Add(sm.FrontendStallPerInstMeanPPM)
		s.Counter("sample.frontendStallPerInstCI95PPM").Add(sm.FrontendStallPerInstCI95PPM)
		s.Counter("sample.execStallL1DPerInstMeanPPM").Add(sm.ExecStallL1DPerInstMeanPPM)
		s.Counter("sample.execStallL1DPerInstCI95PPM").Add(sm.ExecStallL1DPerInstCI95PPM)
		s.Counter("sample.l1MissPerInstMeanPPM").Add(sm.L1MissPerInstMeanPPM)
		s.Counter("sample.l1MissPerInstCI95PPM").Add(sm.L1MissPerInstCI95PPM)
		s.Counter("sample.dramPerInstMeanPPM").Add(sm.DRAMPerInstMeanPPM)
		s.Counter("sample.dramPerInstCI95PPM").Add(sm.DRAMPerInstCI95PPM)
	}

	// Energy in microjoules so integer counters remain meaningful.
	s.Counter("energy.cacheDynamicUJ").Add(uint64(r.Energy.CacheDynamic * 1e6))
	s.Counter("energy.coreDynamicUJ").Add(uint64(r.Energy.CoreDynamic * 1e6))
	s.Counter("energy.staticUJ").Add(uint64(r.Energy.Static * 1e6))
	s.Counter("energy.totalUJ").Add(uint64(r.Energy.Total() * 1e6))
}

// StatsJSON renders the exported stats set as canonical JSON (sorted keys,
// compact). It is the single serialization shared by `spbsim -json` and the
// spbd service, so CLI and service output for the same spec are
// byte-comparable.
func (r Result) StatsJSON() (json.RawMessage, error) {
	set := stats.NewSet()
	r.ExportStats(set)
	return json.Marshal(set)
}
