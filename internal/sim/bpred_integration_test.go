package sim

import (
	"testing"

	"spb/internal/core"
)

// TestModelledPredictorRuns exercises the gshare/BTB front end end to end.
func TestModelledPredictorRuns(t *testing.T) {
	r, err := Run(RunSpec{
		Workload: "deepsjeng", Policy: core.PolicySPB, SQSize: 28,
		Insts: 50_000, ModelBranchPredictor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Committed != 50_000 {
		t.Fatalf("committed %d, want 50000", r.CPU.Committed)
	}
	if r.CPU.Branches == 0 {
		t.Fatal("deepsjeng must execute branches")
	}
	// The modelled predictor produces its own mispredicts, generally fewer
	// than branches and more than zero for a branchy integer workload.
	if r.CPU.Mispredicts == 0 || r.CPU.Mispredicts >= r.CPU.Branches {
		t.Fatalf("modelled mispredicts = %d of %d branches — implausible",
			r.CPU.Mispredicts, r.CPU.Branches)
	}
}

// TestModelledPredictorDiffersFromStatistical: the two front-end models
// should produce different (but same-order) timing on a branchy workload.
func TestModelledPredictorDiffersFromStatistical(t *testing.T) {
	stat, err := Run(RunSpec{Workload: "leela", Policy: core.PolicyAtCommit, SQSize: 56, Insts: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Run(RunSpec{Workload: "leela", Policy: core.PolicyAtCommit, SQSize: 56,
		Insts: 50_000, ModelBranchPredictor: true})
	if err != nil {
		t.Fatal(err)
	}
	if stat.CPU.Cycles == mod.CPU.Cycles {
		t.Fatal("modelled and statistical front ends should differ in timing")
	}
	ratio := float64(mod.CPU.Cycles) / float64(stat.CPU.Cycles)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("front-end models diverge too much: ratio %.2f", ratio)
	}
}

// TestSPBConclusionHoldsUnderModelledPredictor: the headline result must not
// depend on how mispredictions are modelled.
func TestSPBConclusionHoldsUnderModelledPredictor(t *testing.T) {
	run := func(p core.Policy) uint64 {
		r, err := Run(RunSpec{Workload: "x264", Policy: p, SQSize: 14,
			Insts: 80_000, ModelBranchPredictor: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.CPU.Cycles
	}
	if spb, ac := run(core.PolicySPB), run(core.PolicyAtCommit); spb >= ac {
		t.Fatalf("SPB (%d) must beat at-commit (%d) under the modelled predictor too", spb, ac)
	}
}
