package sim

import (
	"context"
	"sync/atomic"

	"spb/internal/bpred"
	"spb/internal/memsys"
	"spb/internal/obs"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// Warm-start fork engine (DESIGN.md §12).
//
// The warmed architectural state — cache tags and LRU clocks, coherence
// directory, TLB entries, branch-predictor tables, trace cursors — depends
// only on the instruction stream and the machine geometry, never on the
// store-buffer size, drain policy or prefetcher knobs a sweep varies (those
// units are inert during functional warming). So every spec in a sweep that
// agrees on the warmup-equivalent projection (warmKey) can share one warmup:
// the Runner simulates it once against a core-less machine, snapshots it,
// and forks each member's detailed run from the snapshot. With warm-start
// off, RunCtx performs the identical functional warm in place per spec, so
// the two modes produce byte-identical statistics; only wall-clock differs.

// warm replays n instructions per core (round-robin, one instruction per
// core per round, matching in-order multi-core interleaving) against the
// memory system, TLBs and branch predictors. No statistics are touched. A
// bps entry may be nil (predictor not modelled). Readers that run dry are
// skipped; synthetic workload programs never do.
func warm(ctx context.Context, sys *memsys.System, dtlbs []*tlb.TLB, bps []*bpred.Predictor, readers []trace.Reader, n uint64) error {
	done := ctx.Done()
	var in trace.Inst
	for k := uint64(0); k < n; k++ {
		if done != nil && k%progressEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		for i, rd := range readers {
			if !rd.Next(&in) {
				continue
			}
			switch in.Kind {
			case trace.KindLoad:
				dtlbs[i].Warm(in.Addr)
				sys.Port(i).WarmLoad(in.Addr)
			case trace.KindStore:
				dtlbs[i].Warm(in.Addr)
				sys.Port(i).WarmStore(in.Addr)
			case trace.KindBranch:
				if bps[i] != nil {
					bps[i].Warm(in.PC, in.Taken)
				}
			}
		}
	}
	return nil
}

// warmKey is the warmup-equivalent projection of a RunSpec: everything that
// shapes the functionally-warmed state, and nothing else. Policy, SQ size,
// prefetcher and SPB knobs are deliberately absent — the units they
// configure are untouched by warming.
type warmKey struct {
	workload string
	coreName string
	cores    int
	seed     uint64
	warmup   uint64
	bpred    bool
}

func warmKeyOf(spec RunSpec) warmKey {
	return warmKey{
		workload: spec.Workload,
		coreName: spec.CoreName,
		cores:    spec.Cores,
		seed:     spec.Seed,
		warmup:   spec.WarmupInsts,
		bpred:    spec.ModelBranchPredictor,
	}
}

// warmState is one group's shared warmed snapshot. It is immutable once
// published: forks only read it (ClonePrograms copies the cursors, Restore
// copies the arrays), so any number of forks may run concurrently.
type warmState struct {
	sys   *memsys.SystemSnapshot
	dtlbs []*tlb.Snapshot
	bps   []*bpred.Snapshot // nil entries when the predictor is not modelled
	progs []*trace.Program  // warmed master cursors; cloned per fork
	forks atomic.Uint64
}

// warmCall is one in-flight warmup other members of the same group wait on.
type warmCall struct {
	done chan struct{}
	ws   *warmState
	err  error
}

// execute runs one normalized spec, forking from the group's shared warm
// snapshot when warm-start is enabled. Falls back to the plain in-place path
// (RunCtx) when warm-start is off, the spec has no warmup, or the workload's
// readers cannot be snapshotted.
func (r *Runner) execute(ctx context.Context, spec RunSpec, onProgress func(Progress)) (Result, error) {
	if spec.WarmupInsts > 0 && r.WarmStart() {
		ws, err := r.warmFor(ctx, spec)
		if err != nil {
			return Result{}, err
		}
		if ws != nil {
			res, err := r.runForked(ctx, spec, ws, onProgress)
			if err == nil {
				r.instsSimulated.Add(res.CPU.Committed)
			}
			return res, err
		}
		// ws == nil: readers are not forkable; warm in place below.
	}
	res, err := RunCtx(ctx, spec, onProgress)
	if err == nil {
		r.instsSimulated.Add(res.CPU.Committed + spec.WarmupInsts*uint64(spec.Cores))
	}
	return res, err
}

// warmFor returns the shared warm state for spec's group, simulating the
// warmup if this is the group's first member (per-group singleflight: later
// members wait, under their own ctx, rather than re-warming). A (nil, nil)
// return means the group cannot be warm-started and the caller must fall
// back to the in-place path.
func (r *Runner) warmFor(ctx context.Context, spec RunSpec) (*warmState, error) {
	key := warmKeyOf(spec)
	r.warmMu.Lock()
	if ws, ok := r.warmCache[key]; ok {
		r.warmMu.Unlock()
		return ws, nil
	}
	if call, ok := r.warmInflight[key]; ok {
		r.warmMu.Unlock()
		select {
		case <-call.done:
			return call.ws, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &warmCall{done: make(chan struct{})}
	r.warmInflight[key] = call
	r.warmMu.Unlock()

	call.ws, call.err = r.buildWarmState(ctx, spec)

	r.warmMu.Lock()
	if call.err == nil {
		// Cache nil too: a group known to be un-forkable should not retry
		// the type assertions on every member.
		r.warmCache[key] = call.ws
	}
	delete(r.warmInflight, key)
	r.warmMu.Unlock()
	close(call.done)
	return call.ws, call.err
}

// buildWarmState simulates one group's warmup against a core-less machine —
// functional warming never touches a core pipeline, so none is built — and
// snapshots everything a fork needs. Returns (nil, nil) if the workload's
// readers are not trace.Programs (nothing in-tree builds such a workload,
// but the fallback keeps hypothetical ones correct).
func (r *Runner) buildWarmState(ctx context.Context, spec RunSpec) (*warmState, error) {
	machine, err := spec.machineConfig()
	if err != nil {
		return nil, err
	}
	readers, err := buildReaders(spec)
	if err != nil {
		return nil, err
	}
	progs := make([]*trace.Program, len(readers))
	for i, rd := range readers {
		p, ok := rd.(*trace.Program)
		if !ok {
			return nil, nil
		}
		progs[i] = p
	}

	sys := memsys.New(machine, spec.Cores)
	dtlbs := make([]*tlb.TLB, spec.Cores)
	bps := make([]*bpred.Predictor, spec.Cores)
	for i := range dtlbs {
		dtlbs[i] = tlb.New(tlb.Config{
			Entries: machine.TLB.Entries,
			Ways:    machine.TLB.Ways,
			WalkLat: machine.TLB.WalkLat,
		})
		if spec.ModelBranchPredictor {
			bps[i] = bpred.New(bpred.TableI())
		}
	}
	if err := warm(ctx, sys, dtlbs, bps, readers, spec.WarmupInsts); err != nil {
		sys.Release()
		return nil, err
	}

	ws := &warmState{
		sys:   sys.Snapshot(),
		dtlbs: make([]*tlb.Snapshot, spec.Cores),
		bps:   make([]*bpred.Snapshot, spec.Cores),
		progs: progs,
	}
	for i := range dtlbs {
		ws.dtlbs[i] = dtlbs[i].Snapshot()
		dtlbs[i].Release()
		if bps[i] != nil {
			ws.bps[i] = bps[i].Snapshot()
			bps[i].Release()
		}
	}
	sys.Release()

	r.warmGroups.Add(1)
	r.instsSimulated.Add(spec.WarmupInsts * uint64(spec.Cores))
	return ws, nil
}

// runForked builds a fresh machine for spec and restores the group's warmed
// snapshot into it — memory system, TLBs, branch predictors, and cloned
// trace cursors — then runs the detailed interval. The cores themselves are
// fresh in both modes (warming never touches a pipeline), so a fork is
// indistinguishable from an in-place warm-then-run.
func (r *Runner) runForked(ctx context.Context, spec RunSpec, ws *warmState, onProgress func(Progress)) (Result, error) {
	tr := obs.FromContext(ctx)
	buildSpan := tr.StartSpan("run.build")
	machine, err := spec.machineConfig()
	if err != nil {
		return Result{}, err
	}
	progs := trace.ClonePrograms(ws.progs)
	readers := make([]trace.Reader, len(progs))
	for i, p := range progs {
		readers[i] = p
	}
	sys := memsys.New(machine, spec.Cores)
	sys.Restore(ws.sys)
	cores := buildCores(spec, machine, sys, readers)
	for i, c := range cores {
		c.DTLB().Restore(ws.dtlbs[i])
		if bp := c.BranchPredictor(); bp != nil {
			bp.Restore(ws.bps[i])
		}
	}
	buildSpan.End()

	r.warmForks.Add(1)
	if ws.forks.Add(1) > 1 {
		// Every fork after the group's first rides a warmup that off-mode
		// would have re-simulated.
		r.warmInstsSaved.Add(spec.WarmupInsts * uint64(spec.Cores))
	}
	return runDetailed(ctx, tr, spec, sys, cores, onProgress)
}
