package sim

import (
	"context"
	"errors"
	"sync/atomic"

	"spb/internal/bpred"
	"spb/internal/mem"
	"spb/internal/memsys"
	"spb/internal/obs"
	"spb/internal/tlb"
	"spb/internal/trace"
)

// Warm-start fork engine (DESIGN.md §12).
//
// The warmed architectural state — cache tags and LRU clocks, coherence
// directory, TLB entries, branch-predictor tables, trace cursors — depends
// only on the instruction stream and the machine geometry, never on the
// store-buffer size, drain policy or prefetcher knobs a sweep varies (those
// units are inert during functional warming). So every spec in a sweep that
// agrees on the warmup-equivalent projection (warmKey) can share one warmup:
// the Runner simulates it once against a core-less machine, snapshots it,
// and forks each member's detailed run from the snapshot. With warm-start
// off, RunCtx performs the identical functional warm in place per spec, so
// the two modes produce byte-identical statistics; only wall-clock differs.

// warmMemo elides redundant warm accesses: per core, the block and PC of
// the immediately preceding memory access. Re-touching the most recent
// block is a state no-op — the line is already MRU (the LRU clock is a
// counter, so a skipped re-touch shifts absolute clock values but never the
// relative recency order that drives victim choice), the TLB entry is
// already MRU (same block ⇒ same page), a repeat store to an
// already-Modified line changes nothing, and a same-PC same-block repeat is
// a zero-delta no-op for the stream prefetcher too. A store after a load is
// NOT elidable (it may need a directory upgrade), so the memo also records
// whether the line is known writable; an access from a different PC is not
// elidable either (it would train a different prefetcher table entry).
type warmMemo struct {
	block    mem.Block
	pc       uint64
	writable bool
	valid    bool
}

// warm replays n instructions per core (round-robin, one instruction per
// core per round, matching in-order multi-core interleaving) against the
// memory system, TLBs and branch predictors. No statistics are touched. A
// bps entry may be nil (predictor not modelled). Readers that run dry are
// skipped; synthetic workload programs never do.
//
// Consecutive same-block accesses take the warmMemo fast path. In
// multi-core interleavings one core's real access can downgrade, invalidate
// or back-invalidate another core's line, so every real access kills the
// other cores' memos; single-core warming (the common sampling case) keeps
// its memo across the whole stream.
//
// trainPF additionally feeds every access to the port's generic prefetcher
// and warm-fills what it requests (Port.WarmObserve). Sampled runs pass
// true so detailed windows open with trained prefetchers and
// prefetch-resident lines; the shared warmup prefix passes false — its
// warmed snapshots are shared across specs regardless of prefetcher kind,
// so they must stay prefetcher-independent.
func warm(ctx context.Context, sys *memsys.System, dtlbs []*tlb.TLB, bps []*bpred.Predictor, readers []trace.Reader, n uint64, trainPF bool) error {
	done := ctx.Done()
	var in trace.Inst
	memos := make([]warmMemo, len(readers))
	multi := len(readers) > 1
	invalidateOthers := func(i int) {
		for j := range memos {
			if j != i {
				memos[j].valid = false
			}
		}
	}
	for k := uint64(0); k < n; k++ {
		if done != nil && k%progressEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		for i, rd := range readers {
			if !rd.Next(&in) {
				continue
			}
			switch in.Kind {
			case trace.KindLoad:
				b := mem.BlockOf(in.Addr)
				if m := &memos[i]; m.valid && m.block == b && m.pc == in.PC {
					continue
				}
				dtlbs[i].Warm(in.Addr)
				port := sys.Port(i)
				hit := port.WarmLoad(in.Addr)
				if trainPF {
					port.WarmObserve(in.PC, in.Addr, !hit, false)
				}
				memos[i] = warmMemo{block: b, pc: in.PC, valid: true}
				if multi {
					invalidateOthers(i)
				}
			case trace.KindStore:
				b := mem.BlockOf(in.Addr)
				if m := &memos[i]; m.valid && m.block == b && m.pc == in.PC && m.writable {
					continue
				}
				dtlbs[i].Warm(in.Addr)
				port := sys.Port(i)
				hit := port.WarmStore(in.Addr)
				if trainPF {
					port.WarmObserve(in.PC, in.Addr, !hit, true)
				}
				memos[i] = warmMemo{block: b, pc: in.PC, writable: true, valid: true}
				if multi {
					invalidateOthers(i)
				}
			case trace.KindBranch:
				if bps[i] != nil {
					bps[i].Warm(in.PC, in.Taken)
				}
			}
		}
	}
	return nil
}

// streamSkipper is the optional bulk-advance fast path a trace.Reader can
// offer (trace.Program does): advance n instructions without materializing
// them.
type streamSkipper interface{ Skip(n uint64) }

// drain advances the instruction streams n instructions per core without
// touching caches, TLBs or predictors: only the trace cursors (and their
// RNG state) move. Sampled runs with a bounded warming history
// (SamplingConfig.HistoryInsts) drain the head of each long inter-window
// skip and functionally warm only its tail — the cache-relevant recent
// past — which is what makes sparse sampling periods cheap. Readers are
// advanced one after another rather than round-robin: every reader owns its
// RNG and region cursors, so with no architectural state touched the order
// cannot matter, and the per-reader bulk Skip is where the speed comes
// from.
func drain(ctx context.Context, readers []trace.Reader, n uint64) error {
	done := ctx.Done()
	var in trace.Inst
	for _, rd := range readers {
		if s, ok := rd.(streamSkipper); ok {
			for left := n; left > 0; {
				k := min(left, uint64(progressEvery)*64)
				s.Skip(k)
				left -= k
				if done != nil {
					select {
					case <-done:
						return ctx.Err()
					default:
					}
				}
			}
			continue
		}
		for k := uint64(0); k < n; k++ {
			if done != nil && k%progressEvery == 0 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if !rd.Next(&in) {
				break
			}
		}
	}
	return nil
}

// streamToucher is the footprint-reporting bulk advance (trace.Program's
// SkipTouch): the stream skips like Skip while handing the consumer every
// skipped memory access as a byte span.
type streamToucher interface {
	SkipTouch(n uint64, touch trace.Touch)
}

// drainLLC advances the instruction streams n instructions per core like
// drain, but additionally replays every skipped access's footprint against
// the shared LLC and the coherence directory (Port.WarmTouch). The private
// caches, TLBs and predictors have short natural histories that the bounded
// warming tail preceding each window rebuilds exactly; the LLC's history is
// as long as its capacity — often longer than a whole sampling period — so
// it must track every skipped instruction or measured windows inherit stale
// resident lines the real run would have evicted. Dense burst ops surface
// their footprint as O(1) spans, so this tier costs only a little more than
// a pure drain. As in drain, readers advance one after another; the
// resulting LLC interleaving across cores is coarser than the real one,
// which is acceptable for functional warming and keeps the bulk fast path.
func drainLLC(ctx context.Context, sys *memsys.System, readers []trace.Reader, n uint64) error {
	done := ctx.Done()
	var in trace.Inst
	for i, rd := range readers {
		port := sys.Port(i)
		touch := func(addr mem.Addr, n uint64, store bool) {
			port.WarmTouch(addr, n, store)
		}
		if s, ok := rd.(streamToucher); ok {
			for left := n; left > 0; {
				k := min(left, uint64(progressEvery)*8)
				s.SkipTouch(k, touch)
				left -= k
				if done != nil {
					select {
					case <-done:
						return ctx.Err()
					default:
					}
				}
			}
			continue
		}
		for k := uint64(0); k < n; k++ {
			if done != nil && k%progressEvery == 0 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if !rd.Next(&in) {
				break
			}
			switch in.Kind {
			case trace.KindLoad:
				port.WarmTouch(in.Addr, uint64(in.Size), false)
			case trace.KindStore:
				port.WarmTouch(in.Addr, uint64(in.Size), true)
			}
		}
	}
	return nil
}

// warmKey is the warmup-equivalent projection of a RunSpec: everything that
// shapes the functionally-warmed state, and nothing else. Policy, SQ size,
// prefetcher and SPB knobs are deliberately absent — the units they
// configure are untouched by warming.
type warmKey struct {
	workload string
	coreName string
	cores    int
	seed     uint64
	warmup   uint64
	bpred    bool
}

func warmKeyOf(spec RunSpec) warmKey {
	return warmKey{
		workload: spec.Workload,
		coreName: spec.CoreName,
		cores:    spec.Cores,
		seed:     spec.Seed,
		warmup:   spec.WarmupInsts,
		bpred:    spec.ModelBranchPredictor,
	}
}

// warmState is one group's shared warmed snapshot. It is immutable once
// published: forks only read it (ClonePrograms copies the cursors, Restore
// copies the arrays), so any number of forks may run concurrently.
type warmState struct {
	sys   *memsys.SystemSnapshot
	dtlbs []*tlb.Snapshot
	bps   []*bpred.Snapshot // nil entries when the predictor is not modelled
	progs []*trace.Program  // warmed master cursors; cloned per fork
	forks atomic.Uint64
}

// warmCall is one in-flight warmup other members of the same group wait on.
type warmCall struct {
	done chan struct{}
	ws   *warmState
	err  error
}

// execute runs one normalized spec, forking from the group's shared warm
// snapshot when warm-start is enabled. Falls back to the plain in-place path
// (runPoint) when warm-start is off, the spec has no warmup, or the
// workload's readers cannot be snapshotted. With a checkpoint policy
// installed, a valid on-disk checkpoint for the spec short-circuits
// everything — including the warm-start fork, since the checkpointed state
// is already past warmup — and the run resumes mid-flight; fresh runs carry
// a checkpoint context so they can be resumed in turn. Either way the
// checkpoint file is removed once the run completes.
func (r *Runner) execute(ctx context.Context, spec RunSpec, onProgress func(Progress)) (Result, error) {
	ckp := r.checkpointerFor(spec)
	var rc *runCkpt
	if ckp != nil {
		step := r.CheckpointPolicy().Insts
		if !spec.Sampling.Enabled() {
			// Detailed boundaries are in aggregate committed instructions;
			// sampled boundaries in per-core stream progress.
			step *= uint64(spec.Cores)
		}
		rc = &runCkpt{c: ckp, step: step, nextCkpt: step}
		if cf, ok := ckp.load(); ok {
			tr := obs.FromContext(ctx)
			var res Result
			var err error
			if cf.Detailed != nil {
				res, err = resumeDetailed(ctx, tr, spec, cf, rc, onProgress)
			} else {
				res, err = resumeSampled(ctx, tr, spec, cf, rc, onProgress)
			}
			if err == nil {
				ckp.clear()
				r.ckptResumes.Add(1)
				r.instsSimulated.Add(r.executedInsts(res, 0))
				r.noteSampled(res)
				return res, nil
			}
			if !errors.Is(err, errCkptInvalid) {
				return Result{}, err
			}
			// A structurally invalid payload that still passed the checksum:
			// quarantine it and fall through to a from-scratch run.
			ckp.quarantine()
		}
	}
	res, err := r.executeFresh(ctx, spec, onProgress, rc)
	if err == nil && ckp != nil {
		ckp.clear()
	}
	return res, err
}

// executeFresh is the pre-checkpoint execute body: warm-start fork when
// possible, in-place run otherwise, threading the run's checkpoint context.
func (r *Runner) executeFresh(ctx context.Context, spec RunSpec, onProgress func(Progress), rc *runCkpt) (Result, error) {
	if spec.WarmupInsts > 0 && r.WarmStart() {
		ws, err := r.warmFor(ctx, spec)
		if err != nil {
			return Result{}, err
		}
		if ws != nil {
			res, err := r.runForked(ctx, spec, ws, onProgress, rc)
			if err == nil {
				r.instsSimulated.Add(r.executedInsts(res, 0))
				r.noteSampled(res)
			}
			return res, err
		}
		// ws == nil: readers are not forkable; warm in place below.
	}
	res, err := runPoint(ctx, spec, onProgress, rc)
	if err == nil {
		r.instsSimulated.Add(r.executedInsts(res, spec.WarmupInsts*uint64(spec.Cores)))
		r.noteSampled(res)
	}
	return res, err
}

// executedInsts is the instruction count a finished run actually executed —
// detailed plus functional — for the InstsSimulated counter. warmup is the
// warmup-prefix contribution (0 when a shared snapshot elided it; it was
// counted once by buildWarmState).
func (r *Runner) executedInsts(res Result, warmup uint64) uint64 {
	if res.Spec.Sampling.Enabled() {
		// CPU.Committed only covers measured windows; Sample carries the full
		// detailed (incl. per-interval warming) and functional-skip counts.
		return res.Sample.DetailedInsts + res.Sample.FastForwardInsts + warmup
	}
	return res.CPU.Committed + warmup
}

// noteSampled folds a finished sampled run into the runner's sampling
// counters (no-op for full-detail runs).
func (r *Runner) noteSampled(res Result) {
	if !res.Spec.Sampling.Enabled() {
		return
	}
	r.sampledRuns.Add(1)
	r.sampleIntervals.Add(res.Sample.Intervals)
	r.sampleInstsSkipped.Add(res.Sample.FastForwardInsts)
}

// warmFor returns the shared warm state for spec's group, simulating the
// warmup if this is the group's first member (per-group singleflight: later
// members wait, under their own ctx, rather than re-warming). A (nil, nil)
// return means the group cannot be warm-started and the caller must fall
// back to the in-place path.
func (r *Runner) warmFor(ctx context.Context, spec RunSpec) (*warmState, error) {
	key := warmKeyOf(spec)
	r.warmMu.Lock()
	if ws, ok := r.warmCache[key]; ok {
		r.warmMu.Unlock()
		return ws, nil
	}
	if call, ok := r.warmInflight[key]; ok {
		r.warmMu.Unlock()
		select {
		case <-call.done:
			return call.ws, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &warmCall{done: make(chan struct{})}
	r.warmInflight[key] = call
	r.warmMu.Unlock()

	call.ws, call.err = r.buildWarmState(ctx, spec)

	r.warmMu.Lock()
	if call.err == nil {
		// Cache nil too: a group known to be un-forkable should not retry
		// the type assertions on every member.
		r.warmCache[key] = call.ws
	}
	delete(r.warmInflight, key)
	r.warmMu.Unlock()
	close(call.done)
	return call.ws, call.err
}

// buildWarmState simulates one group's warmup against a core-less machine —
// functional warming never touches a core pipeline, so none is built — and
// snapshots everything a fork needs. Returns (nil, nil) if the workload's
// readers are not trace.Programs (nothing in-tree builds such a workload,
// but the fallback keeps hypothetical ones correct).
func (r *Runner) buildWarmState(ctx context.Context, spec RunSpec) (*warmState, error) {
	machine, err := spec.machineConfig()
	if err != nil {
		return nil, err
	}
	readers, err := buildReaders(spec)
	if err != nil {
		return nil, err
	}
	progs := make([]*trace.Program, len(readers))
	for i, rd := range readers {
		p, ok := rd.(*trace.Program)
		if !ok {
			return nil, nil
		}
		progs[i] = p
	}

	sys := memsys.New(machine, spec.Cores)
	dtlbs := make([]*tlb.TLB, spec.Cores)
	bps := make([]*bpred.Predictor, spec.Cores)
	for i := range dtlbs {
		dtlbs[i] = tlb.New(tlb.Config{
			Entries: machine.TLB.Entries,
			Ways:    machine.TLB.Ways,
			WalkLat: machine.TLB.WalkLat,
		})
		if spec.ModelBranchPredictor {
			bps[i] = bpred.New(bpred.TableI())
		}
	}
	if err := warm(ctx, sys, dtlbs, bps, readers, spec.WarmupInsts, false); err != nil {
		sys.Release()
		return nil, err
	}

	ws := &warmState{
		sys:   sys.Snapshot(),
		dtlbs: make([]*tlb.Snapshot, spec.Cores),
		bps:   make([]*bpred.Snapshot, spec.Cores),
		progs: progs,
	}
	for i := range dtlbs {
		ws.dtlbs[i] = dtlbs[i].Snapshot()
		dtlbs[i].Release()
		if bps[i] != nil {
			ws.bps[i] = bps[i].Snapshot()
			bps[i].Release()
		}
	}
	sys.Release()

	r.warmGroups.Add(1)
	r.instsSimulated.Add(spec.WarmupInsts * uint64(spec.Cores))
	return ws, nil
}

// runForked builds a fresh machine for spec and restores the group's warmed
// snapshot into it — memory system, TLBs, branch predictors, and cloned
// trace cursors — then runs the detailed interval. The cores themselves are
// fresh in both modes (warming never touches a pipeline), so a fork is
// indistinguishable from an in-place warm-then-run.
func (r *Runner) runForked(ctx context.Context, spec RunSpec, ws *warmState, onProgress func(Progress), ck *runCkpt) (Result, error) {
	tr := obs.FromContext(ctx)
	buildSpan := tr.StartSpan("run.build")
	machine, err := spec.machineConfig()
	if err != nil {
		return Result{}, err
	}
	progs := trace.ClonePrograms(ws.progs)
	readers := make([]trace.Reader, len(progs))
	for i, p := range progs {
		readers[i] = p
	}
	sys := memsys.New(machine, spec.Cores)
	sys.Restore(ws.sys)
	warmupFF := spec.WarmupInsts * uint64(spec.Cores)
	if spec.Sampling.Enabled() {
		// Sampled fork: restore the warmed TLB/predictor snapshots into the
		// persistent functional-state objects the interval scheduler carries
		// between detailed segments, exactly as the in-place path warms them.
		dtlbs, bps := buildFunctionalState(machine, spec)
		for i := range dtlbs {
			dtlbs[i].Restore(ws.dtlbs[i])
			if bps[i] != nil {
				bps[i].Restore(ws.bps[i])
			}
		}
		buildSpan.End()
		r.warmForks.Add(1)
		if ws.forks.Add(1) > 1 {
			r.warmInstsSaved.Add(warmupFF)
		}
		return runSampled(ctx, tr, spec, machine, sys, readers, dtlbs, bps, warmupFF, onProgress, ck, nil)
	}
	cores, lims := buildCores(spec, machine, sys, readers, 0)
	for i, c := range cores {
		c.DTLB().Restore(ws.dtlbs[i])
		if bp := c.BranchPredictor(); bp != nil {
			bp.Restore(ws.bps[i])
		}
	}
	buildSpan.End()

	r.warmForks.Add(1)
	if ws.forks.Add(1) > 1 {
		// Every fork after the group's first rides a warmup that off-mode
		// would have re-simulated.
		r.warmInstsSaved.Add(warmupFF)
	}
	return runDetailed(ctx, tr, spec, sys, cores, lims, warmupFF, onProgress, ck)
}
