package sim

import (
	"testing"

	"spb/internal/core"
	"spb/internal/stats"
)

func TestExportStats(t *testing.T) {
	r, err := Run(RunSpec{Workload: "blender", Policy: core.PolicySPB, SQSize: 14, Insts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	s := stats.NewSet()
	r.ExportStats(s)
	if s.Value("cpu.committed") != 30_000 {
		t.Fatalf("cpu.committed = %d, want 30000", s.Value("cpu.committed"))
	}
	if s.Value("cpu.cycles") != r.CPU.Cycles {
		t.Fatal("cpu.cycles mismatch")
	}
	if s.Value("mem.spfIssued") != r.Mem.SPFIssued {
		t.Fatal("mem.spfIssued mismatch")
	}
	if s.Value("energy.totalUJ") == 0 {
		t.Fatal("energy export missing")
	}
	// The export is additive: exporting twice doubles each counter (the
	// aggregation semantics for multi-run dumps).
	r.ExportStats(s)
	if s.Value("cpu.committed") != 60_000 {
		t.Fatal("ExportStats must be additive")
	}
	// The rendered dump is stable and includes every section.
	out := s.String()
	for _, want := range []string{"cpu.sbStallCycles", "mem.l1TagAccesses", "energy.totalUJ"} {
		if !contains(out, want) {
			t.Fatalf("dump missing %s", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
