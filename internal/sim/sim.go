// Package sim assembles complete systems (cores + memory hierarchy) and runs
// experiment points. A RunSpec names everything that identifies a simulation
// — workload, store-prefetch policy, SB size, generic prefetcher, core
// micro-architecture, core count, instruction budget — and Run executes it
// deterministically. Runner adds a memoizing, parallel executor on top, so
// the figure harness can share results between the many figures that read
// the same sweep.
package sim

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spb/internal/bpred"
	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/cpu"
	"spb/internal/energy"
	"spb/internal/memsys"
	"spb/internal/obs"
	"spb/internal/tlb"
	"spb/internal/topdown"
	"spb/internal/trace"
	"spb/internal/workloads"
)

// RunSpec identifies one simulation point.
type RunSpec struct {
	// Workload is a SPEC-like name (Cores == 1) or PARSEC-like name
	// (Cores > 1).
	Workload string
	Policy   core.Policy
	SQSize   int
	// Prefetcher selects the generic L1 prefetcher.
	Prefetcher config.PrefetcherKind
	// CoreName selects a Table II core ("" or "SKL" = Table I Skylake,
	// width 4).
	CoreName string
	// Cores is the core/thread count (1 for SPEC, 8 for PARSEC).
	Cores int
	// Insts is the per-core committed-instruction budget.
	Insts uint64
	// WarmupInsts is the per-core functional-warming prefix: that many
	// instructions per core are replayed against the caches, directory,
	// TLB and branch predictor — no timing, no statistics — before
	// detailed simulation starts. The warmed state depends only on the
	// workload, seed, core config and this length, never on the SB/policy/
	// prefetcher knobs a sweep varies, so the Runner simulates one warmup
	// per such group and forks every member from a snapshot (warm-start,
	// DESIGN.md §12). 0 disables warming.
	WarmupInsts uint64
	// WindowN overrides the SPB window (0 = config default 48).
	WindowN int
	// DynamicSPB enables the dynamic store-size ablation.
	DynamicSPB bool
	// CoalesceSB enables the related-work store-coalescing SB ablation.
	CoalesceSB bool
	// BackwardBursts enables the §IV.A backward-burst extension.
	BackwardBursts bool
	// CrossPageBursts enables the footnote-2 cross-page burst extension.
	CrossPageBursts bool
	// ModelBranchPredictor replaces statistical mispredicts with a
	// modelled gshare + BTB front end.
	ModelBranchPredictor bool
	// DisableFastForward runs the cycle-by-cycle reference loop instead of
	// the event-horizon fast forward. Both modes produce bit-identical
	// statistics; the knob exists for the equivalence test and debugging.
	DisableFastForward bool
	// Sampling configures SMARTS-style systematic sampling (DESIGN.md §14):
	// short detailed measurement intervals interleaved with fast functional
	// warming, with CLT confidence intervals reported in the stats. The zero
	// value simulates every instruction in detail.
	Sampling SamplingConfig
	// Seed perturbs the workload generator (0 = default seed).
	Seed uint64
}

// MemStats aggregates the memory-system counters of a run.
type MemStats struct {
	L1TagAccesses uint64
	L1Hits        uint64
	L1Misses      uint64
	L2Accesses    uint64
	L3Accesses    uint64
	DRAMReads     uint64
	DRAMWrites    uint64

	Loads          uint64
	Stores         uint64
	LoadMisses     uint64
	StoreMisses    uint64
	WrongPathLoads uint64

	SPFIssued     uint64
	SPFDiscarded  uint64
	SPFMissToL2   uint64
	SPFSuccessful uint64
	SPFLate       uint64
	SPFEarly      uint64
	SPFBurst      uint64

	GPFIssued   uint64
	GPFUsed     uint64
	GPFLate     uint64
	GPFPolluted uint64

	Invalidations uint64
	Writebacks    uint64
}

// SPFNeverUsed derives the Fig. 11 "never used" bucket: issued ownership
// prefetches that were neither consumed, merged with, discarded as
// duplicates, nor evicted before use.
func (m MemStats) SPFNeverUsed() uint64 {
	accounted := m.SPFDiscarded + m.SPFSuccessful + m.SPFLate + m.SPFEarly
	if accounted >= m.SPFIssued {
		return 0
	}
	return m.SPFIssued - accounted
}

// Result is the outcome of one simulation point. For a sampled run (Spec.
// Sampling enabled), CPU and Mem aggregate the measured detailed windows
// only — they are the sampled estimate, not full-run totals — and Sample
// carries the per-interval statistics (mean + 95% CI per rate).
type Result struct {
	Spec   RunSpec
	CPU    cpu.Stats // aggregated over cores (cycles = max across cores)
	Mem    MemStats
	Energy energy.Breakdown
	TD     topdown.Report
	Sample SampleStats // zero unless Spec.Sampling is enabled
}

// IPC returns committed instructions per cycle over all cores.
func (r Result) IPC() float64 { return r.CPU.IPC() }

func (s RunSpec) coreConfig() (config.CoreConfig, error) {
	if s.CoreName == "" {
		c := config.Skylake().Core
		return c, nil
	}
	for _, c := range config.Cores() {
		if c.Name == s.CoreName {
			return c, nil
		}
	}
	return config.CoreConfig{}, fmt.Errorf("sim: unknown core config %q", s.CoreName)
}

func (s RunSpec) normalize() RunSpec {
	if s.Cores == 0 {
		s.Cores = 1
	}
	if s.Insts == 0 {
		s.Insts = 200_000
	}
	if s.WindowN == 0 {
		s.WindowN = 48
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.Sampling = s.Sampling.normalize()
	return s
}

// Normalized returns the spec with every defaulted field filled in. Two specs
// that normalize identically are the same simulation point: this is the form
// the Runner memoizes on and the form external caches must key on.
func (s RunSpec) Normalized() RunSpec { return s.normalize() }

// CostEstimate ranks a spec by expected wall-clock simulation time, for
// longest-processing-time-first dispatch. The absolute value is meaningless;
// only the ordering matters. Total work scales with the committed-instruction
// budget across cores; multi-core runs pay lock-step coordination on top; an
// ideal SB never stalls, so its runs have no dead spans for the event-horizon
// fast forward to skip; and disabling the fast forward altogether simulates
// every cycle of every core. CostEstimate assumes the warmup prefix (if any)
// is simulated by this run; schedulers that fork from shared warm-start
// snapshots use CostEstimateAt(true) instead.
func (s RunSpec) CostEstimate() uint64 { return s.CostEstimateAt(false) }

// CostEstimateAt is CostEstimate with explicit warm-start knowledge: when
// warmStart is true the warmup prefix is elided by a shared snapshot fork,
// so only the detailed interval counts — LPT then ranks forked points by
// what they will actually simulate. Functional warming is far cheaper per
// instruction than detailed simulation, so a non-elided warmup is charged
// at a quarter weight.
func (s RunSpec) CostEstimateAt(warmStart bool) uint64 {
	n := s.normalize()
	insts := n.Insts
	if n.Sampling.Enabled() {
		// A sampled run simulates only the detailed portion of each sampling
		// period in detail; the skips run functionally at the same
		// quarter-weight as a warmup prefix. This is what lets LPT ordering,
		// batch scheduling and client-pool hedging rank a sampled point by
		// the work it will actually do, far below its full-detail twin.
		cfg := n.Sampling
		intervals := (n.Insts + cfg.IntervalInsts - 1) / cfg.IntervalInsts
		detailed := intervals * (cfg.WarmInsts + cfg.DetailedInsts)
		if detailed > n.Insts {
			detailed = n.Insts
		}
		insts = detailed + (n.Insts-detailed)/4
	}
	if !warmStart {
		insts += n.WarmupInsts / 4
	}
	cost := insts * uint64(n.Cores)
	if n.Cores > 1 {
		cost += cost / 2
	}
	if n.Policy == core.PolicyIdeal {
		cost *= 2
	}
	if n.DisableFastForward {
		cost *= 4
	}
	return cost
}

// Progress is a point-in-time view of a running simulation, delivered to the
// callback passed to RunCtx. Committed and Cycles aggregate over all cores
// (cycles = max, committed = sum); TargetInsts is the total committed-
// instruction budget (Insts × Cores), so Committed/TargetInsts approximates
// completion.
type Progress struct {
	Committed   uint64
	Cycles      uint64
	TargetInsts uint64
	// FastForwardInsts counts instructions covered functionally rather than
	// in detail: the warmup prefix plus any sampling skips. They are kept
	// out of Committed so InstsPerSec reports the honest detailed-simulation
	// rate instead of a number inflated by fast-forwarding.
	FastForwardInsts uint64
	// InstsPerSec is the wall-clock simulation throughput (detailed
	// committed instructions per second of real time) since the run
	// started. It is reporting-only state: it never enters the canonical
	// stats JSON, which must stay byte-deterministic.
	InstsPerSec float64
}

// IPC returns committed instructions per cycle so far.
func (p Progress) IPC() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.Committed) / float64(p.Cycles)
}

// snapshotProgress aggregates the running cores' counters into a Progress
// point (cycles = max across cores, committed = sum, like the final Result).
func snapshotProgress(cores []*cpu.Core, targetInsts uint64) Progress {
	p := Progress{TargetInsts: targetInsts}
	for _, c := range cores {
		p.Committed += c.St.Committed
		if c.St.Cycles > p.Cycles {
			p.Cycles = c.St.Cycles
		}
	}
	return p
}

// progressEvery is how many lock-step rounds pass between cancellation checks
// and progress callbacks in RunCtx. A round is one cycle per running core, so
// at simulator speeds this is a sub-millisecond reaction time while keeping
// the check off the per-cycle hot path.
const progressEvery = 8192

// Run executes one simulation point.
func Run(spec RunSpec) (Result, error) {
	return RunCtx(context.Background(), spec, nil)
}

// RunCtx executes one simulation point under a context. If ctx is cancelled
// the simulation stops within progressEvery rounds and the context's error is
// returned — abandoned or timed-out requests do not keep simulating. If
// onProgress is non-nil it is invoked periodically (every progressEvery
// rounds) from the simulating goroutine; it must be cheap and must not block.
func RunCtx(ctx context.Context, spec RunSpec, onProgress func(Progress)) (Result, error) {
	return runPoint(ctx, spec, onProgress, nil)
}

// runPoint is RunCtx with an optional checkpoint context (DESIGN.md §15):
// when ck is active the detailed or sampled loop periodically serializes its
// state so a killed daemon resumes instead of restarting. Checkpointing
// never changes the produced statistics.
func runPoint(ctx context.Context, spec RunSpec, onProgress func(Progress), ck *runCkpt) (Result, error) {
	// When the caller's context carries an obs.Trace (the spbd request path
	// does), the run's internal phases are recorded as sub-spans of the
	// job-level "run" span. With no trace in ctx (every in-process caller)
	// this is one context lookup and zero work thereafter: the nil *Trace
	// no-ops, nothing allocates, and the simulation loop is untouched.
	tr := obs.FromContext(ctx)
	buildSpan := tr.StartSpan("run.build")

	spec = spec.normalize()
	if err := spec.Sampling.validate(); err != nil {
		return Result{}, err
	}
	machine, err := spec.machineConfig()
	if err != nil {
		return Result{}, err
	}
	readers, err := buildReaders(spec)
	if err != nil {
		return Result{}, err
	}
	sys := memsys.New(machine, spec.Cores)
	if spec.Sampling.Enabled() {
		// Sampled run: the TLBs and branch predictors live outside any core
		// (the functional mode needs them between detailed segments), and
		// the shared warmup prefix runs against them before the interval
		// scheduler takes over.
		dtlbs, bps := buildFunctionalState(machine, spec)
		if spec.WarmupInsts > 0 {
			if err := warm(ctx, sys, dtlbs, bps, readers, spec.WarmupInsts, false); err != nil {
				for i := range dtlbs {
					dtlbs[i].Release()
					if bps[i] != nil {
						bps[i].Release()
					}
				}
				sys.Release()
				return Result{}, err
			}
		}
		buildSpan.End()
		return runSampled(ctx, tr, spec, machine, sys, readers, dtlbs, bps,
			spec.WarmupInsts*uint64(spec.Cores), onProgress, ck, nil)
	}
	cores, lims := buildCores(spec, machine, sys, readers, 0)
	if spec.WarmupInsts > 0 {
		// In-place functional warming — the warm-start-off reference path.
		// Cores are built first: their Limit wrappers bind to the underlying
		// reader lazily, so consuming the warmup prefix here leaves the
		// detailed interval reading exactly the post-warmup stream a forked
		// run sees.
		dtlbs := make([]*tlb.TLB, len(cores))
		bps := make([]*bpred.Predictor, len(cores))
		for i, c := range cores {
			dtlbs[i] = c.DTLB()
			bps[i] = c.BranchPredictor()
		}
		if err := warm(ctx, sys, dtlbs, bps, readers, spec.WarmupInsts, false); err != nil {
			sys.Release()
			return Result{}, err
		}
	}
	buildSpan.End()
	return runDetailed(ctx, tr, spec, sys, cores, lims, spec.WarmupInsts*uint64(spec.Cores), onProgress, ck)
}

// machineConfig resolves and validates the spec's full machine configuration.
func (s RunSpec) machineConfig() (config.MachineConfig, error) {
	coreCfg, err := s.coreConfig()
	if err != nil {
		return config.MachineConfig{}, err
	}
	machine := config.Skylake()
	machine.Core = coreCfg
	machine = machine.WithSQ(s.SQSize).WithPrefetcher(s.Prefetcher)
	machine.SPB.WindowN = s.WindowN
	machine.SPB.DynamicSize = s.DynamicSPB
	if err := machine.Validate(); err != nil {
		return config.MachineConfig{}, err
	}
	return machine, nil
}

// buildReaders constructs the per-core instruction streams of a normalized
// spec.
func buildReaders(spec RunSpec) ([]trace.Reader, error) {
	if spec.Cores == 1 {
		w, err := workloads.SPECByName(spec.Workload)
		if err != nil {
			return nil, err
		}
		return []trace.Reader{w.Build(spec.Seed)}, nil
	}
	p, err := workloads.PARSECByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	return p.Build(spec.Seed, spec.Cores), nil
}

// buildCores constructs the per-core pipelines, each budgeted to spec.Insts
// committed instructions of its reader's stream from its current position
// on. startCycle is the value the core clocks open at — zero for a
// standalone run; a sampled run passes the previous detailed segment's end
// cycle so every segment shares the memory system's cycle domain (see
// cpu.Options.StartCycle).
// Besides the cores it returns their Limit wrappers: a checkpoint records
// each wrapper's position so a resume can replay the underlying stream and
// re-budget the remainder.
func buildCores(spec RunSpec, machine config.MachineConfig, sys *memsys.System, readers []trace.Reader, startCycle uint64) ([]*cpu.Core, []*trace.LimitReader) {
	cores := make([]*cpu.Core, spec.Cores)
	lims := make([]*trace.LimitReader, spec.Cores)
	opts := cpu.Options{
		CoalesceSB:         spec.CoalesceSB,
		BackwardBursts:     spec.BackwardBursts,
		CrossPageBursts:    spec.CrossPageBursts,
		UseBranchPredictor: spec.ModelBranchPredictor,
		DisableFastForward: spec.DisableFastForward,
		StartCycle:         startCycle,
	}
	for i := range cores {
		lims[i] = trace.Limit(spec.Insts, readers[i])
		cores[i] = cpu.NewWithOptions(machine.Core, spec.Policy, machine.SPB, machine.TLB, opts,
			sys.Port(i), lims[i], spec.Seed+uint64(i)*7919)
	}
	return cores, lims
}

// runDetailed executes the detailed (statistics-gathering) interval on an
// already-built machine and collects the Result. It owns the machine from
// here on: on success the cores' and hierarchy's pooled arrays are released.
// warmupFF is the functionally-covered instruction count reported in
// Progress.FastForwardInsts (the warmup prefix, whether this run executed it
// or a warm-start fork elided it).
func runDetailed(ctx context.Context, tr *obs.Trace, spec RunSpec, sys *memsys.System, cores []*cpu.Core, lims []*trace.LimitReader, warmupFF uint64, onProgress func(Progress), ck *runCkpt) (Result, error) {
	loopSpan := tr.StartSpan("run.sim")
	start := time.Now()
	report := func() {
		p := snapshotProgress(cores, spec.Insts*uint64(spec.Cores))
		p.FastForwardInsts = warmupFF
		if el := time.Since(start).Seconds(); el > 0 {
			p.InstsPerSec = float64(p.Committed) / el
		}
		onProgress(p)
	}

	// Lock-step execution: every core advances one cycle per round. With
	// fast-forward enabled, after each round the whole machine jumps to the
	// earliest next event across all running cores — skipping must be
	// coordinated, since per-core skipping would reorder the coherence
	// interactions that make multi-core runs deterministic. During a global
	// dead span no core touches the shared memory system, so every per-core
	// event horizon stays valid.
	useFF := !spec.DisableFastForward
	guard := spec.Insts*1000*uint64(spec.Cores) + 1_000_000
	done := ctx.Done()
	ckActive := ck.active()
	observed := done != nil || onProgress != nil || ckActive
	startRound := uint64(0)
	if ckActive {
		startRound = ck.startRound
	}
	for round := startRound; ; round++ {
		if observed && round%progressEvery == 0 {
			if done != nil {
				select {
				case <-done:
					return Result{}, ctx.Err()
				default:
				}
			}
			if ckActive {
				// Checkpoint when aggregate committed instructions cross the
				// cadence boundary. Capture is read-only — snapshots copy state
				// out — so a checkpointed run's statistics are byte-identical
				// to an unobserved one. The boundary round and NextCkpt are
				// recorded so a resume continues the identical loop schedule.
				total := uint64(0)
				for _, c := range cores {
					total += c.St.Committed
				}
				if total >= ck.nextCkpt {
					for ck.nextCkpt <= total {
						ck.nextCkpt += ck.step
					}
					cf := &ckptFile{
						Spec:     spec,
						WarmupFF: warmupFF,
						NextCkpt: ck.nextCkpt,
						Detailed: captureDetailed(spec, sys, cores, lims, round),
					}
					if err := ck.c.save(cf); err != nil {
						return Result{}, err
					}
				}
			}
			if onProgress != nil && round > 0 {
				report()
			}
		}
		running := false
		allIdle := true
		for _, c := range cores {
			if !c.Done() {
				c.Tick()
				running = true
				if !c.IdleTick() {
					allIdle = false
				}
			}
		}
		if !running {
			break
		}
		if useFF && allIdle {
			target := uint64(math.MaxUint64)
			for _, c := range cores {
				if c.Done() {
					continue
				}
				if ne := c.NextEventCycle(); ne < target {
					target = ne
				}
			}
			for _, c := range cores {
				if !c.Done() && target > c.Cycle() && target != math.MaxUint64 {
					c.SkipTo(target)
				}
			}
		}
		if round > guard {
			return Result{}, fmt.Errorf("sim: %v made no progress after %d cycles", spec, round)
		}
	}
	if onProgress != nil {
		report()
	}
	loopSpan.End()
	collectSpan := tr.StartSpan("run.collect")

	var aggCPU cpu.Stats
	for _, c := range cores {
		st := c.St
		cyc := st.Cycles
		st.Cycles = 0
		addCPU(&aggCPU, st)
		if cyc > aggCPU.Cycles {
			aggCPU.Cycles = cyc
		}
	}
	res := finishResult(spec, aggCPU, collectMem(spec.Cores, sys))
	// Everything the caller gets is copied into res; hand the cores' and the
	// hierarchy's large arrays back to the pools for the next run.
	for _, c := range cores {
		c.Release()
	}
	sys.Release()
	collectSpan.End()
	return res, nil
}

// collectMem reads the memory system's cumulative counters into a MemStats.
// The counters only grow, so the sampled scheduler measures a window as the
// difference of two collections.
func collectMem(cores int, sys *memsys.System) MemStats {
	var m MemStats
	for i := 0; i < cores; i++ {
		p := sys.Port(i)
		m.L1TagAccesses += p.L1().TagAccesses
		m.L1Hits += p.L1().Hits
		m.L1Misses += p.L1().Misses
		m.L2Accesses += p.L2().TagAccesses
		m.Loads += p.Loads
		m.Stores += p.Stores
		m.LoadMisses += p.LoadMisses
		m.StoreMisses += p.StoreMisses
		m.WrongPathLoads += p.WrongPathLoads
		m.SPFIssued += p.SPFIssued
		m.SPFDiscarded += p.SPFDiscarded
		m.SPFMissToL2 += p.SPFMissToL2
		m.SPFSuccessful += p.SPFSuccessful
		m.SPFLate += p.SPFLate
		m.SPFEarly += p.SPFEarly
		m.SPFBurst += p.SPFBurst
		m.GPFIssued += p.GPFIssued
		m.GPFUsed += p.GPFUsed
		m.GPFLate += p.GPFLate
		m.GPFPolluted += p.GPFPolluted
		m.Writebacks += p.L1().Writebacks + p.L2().Writebacks
	}
	m.L3Accesses = sys.L3().TagAccesses
	m.DRAMReads = sys.DRAM().Reads
	m.DRAMWrites = sys.DRAM().Writes
	m.Invalidations = sys.Invalidations
	return m
}

// finishResult assembles a Result from aggregated counters: the derived
// energy and Top-Down views are computed from whatever window the counters
// cover (the whole run, or a sampled run's measured intervals).
func finishResult(spec RunSpec, aggCPU cpu.Stats, aggMem MemStats) Result {
	res := Result{Spec: spec, CPU: aggCPU, Mem: aggMem}
	res.Energy = energy.Compute(energy.Default22nm(), energy.Events{
		Cycles:         res.CPU.Cycles,
		L1TagAccesses:  res.Mem.L1TagAccesses,
		L1DataAccesses: res.Mem.L1Hits + res.Mem.L1Misses,
		L2Accesses:     res.Mem.L2Accesses,
		L3Accesses:     res.Mem.L3Accesses,
		DRAMAccesses:   res.Mem.DRAMReads + res.Mem.DRAMWrites,
		CommittedInsts: res.CPU.Committed,
		WrongPathInsts: res.CPU.WrongPathInsts,
		Loads:          res.CPU.Loads,
		SBEntries:      spec.SQSize,
	})
	res.TD = topdown.Analyze(&res.CPU)
	return res
}

// Runner is a memoizing, parallel executor of simulation points.
type Runner struct {
	mu       sync.Mutex
	cache    map[RunSpec]Result
	inflight map[RunSpec]*runCall

	// runs counts actual simulations executed (not cache or singleflight
	// hits); the duplicate-suppression test reads it.
	runs atomic.Uint64

	// Warm-start fork engine (DESIGN.md §12): specs that agree on their
	// warmup-equivalent projection share one functionally-warmed snapshot,
	// from which each member's detailed run is forked.
	warmStart    bool
	warmMu       sync.Mutex
	warmCache    map[warmKey]*warmState
	warmInflight map[warmKey]*warmCall

	warmGroups     atomic.Uint64 // warmups actually simulated
	warmForks      atomic.Uint64 // detailed runs forked from a snapshot
	warmInstsSaved atomic.Uint64 // warmup instructions elided by sharing
	instsSimulated atomic.Uint64 // instructions simulated (warm + detailed)

	sampledRuns        atomic.Uint64 // runs executed in sampling mode
	sampleIntervals    atomic.Uint64 // measured detailed intervals
	sampleInstsSkipped atomic.Uint64 // insts covered functionally by sampling

	// Crash-safe checkpoints (DESIGN.md §15); ckpt is guarded by warmMu.
	ckpt        CheckpointPolicy
	ckptWrites  atomic.Uint64 // checkpoint files durably written
	ckptResumes atomic.Uint64 // runs resumed from a checkpoint
	ckptCorrupt atomic.Uint64 // checkpoint files quarantined as invalid
}

// runCall is one in-flight simulation other callers of the same spec wait on
// (per-spec singleflight).
type runCall struct {
	done chan struct{}
	res  Result
	err  error
}

// NewRunner returns an empty runner. Warm-start forking defaults to on;
// SPB_WARMSTART=0 in the environment disables it (escape hatch), as does
// SetWarmStart(false).
func NewRunner() *Runner {
	return &Runner{
		cache:        make(map[RunSpec]Result),
		inflight:     make(map[RunSpec]*runCall),
		warmStart:    os.Getenv("SPB_WARMSTART") != "0",
		warmCache:    make(map[warmKey]*warmState),
		warmInflight: make(map[warmKey]*warmCall),
	}
}

// SetWarmStart enables or disables warm-start forking. Off, every spec
// simulates its own warmup prefix in place; results are byte-identical
// either way (the equivalence suite enforces this).
func (r *Runner) SetWarmStart(on bool) {
	r.warmMu.Lock()
	r.warmStart = on
	r.warmMu.Unlock()
}

// WarmStart reports whether warm-start forking is enabled.
func (r *Runner) WarmStart() bool {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	return r.warmStart
}

// RunnerStats is a point-in-time view of a runner's execution counters.
type RunnerStats struct {
	// Runs counts detailed simulations executed (= Runs()).
	Runs uint64
	// WarmGroups counts warmup groups actually simulated: with warm-start
	// on, each warmup-equivalence group is simulated exactly once.
	WarmGroups uint64
	// WarmForks counts detailed runs forked from a warm snapshot.
	WarmForks uint64
	// WarmInstsSaved counts warmup instructions that were never simulated
	// because a group's snapshot was shared ((forks-1) × warmup × cores
	// per group).
	WarmInstsSaved uint64
	// InstsSimulated counts instructions actually simulated — functional
	// warming plus detailed intervals.
	InstsSimulated uint64
	// SampledRuns counts runs executed in SMARTS sampling mode.
	SampledRuns uint64
	// SampleIntervals counts measured detailed intervals across sampled
	// runs.
	SampleIntervals uint64
	// SampleInstsSkipped counts instructions sampled runs covered with fast
	// functional warming instead of detailed simulation.
	SampleInstsSkipped uint64
	// CheckpointWrites counts mid-run checkpoint files durably written.
	CheckpointWrites uint64
	// CheckpointResumes counts runs that resumed from an on-disk checkpoint
	// instead of restarting from scratch.
	CheckpointResumes uint64
	// CheckpointCorrupt counts checkpoint files rejected (bad magic,
	// version, checksum or spec) and quarantined under *.corrupt.
	CheckpointCorrupt uint64
}

// SimStats returns the runner's execution counters.
func (r *Runner) SimStats() RunnerStats {
	return RunnerStats{
		Runs:               r.runs.Load(),
		WarmGroups:         r.warmGroups.Load(),
		WarmForks:          r.warmForks.Load(),
		WarmInstsSaved:     r.warmInstsSaved.Load(),
		InstsSimulated:     r.instsSimulated.Load(),
		SampledRuns:        r.sampledRuns.Load(),
		SampleIntervals:    r.sampleIntervals.Load(),
		SampleInstsSkipped: r.sampleInstsSkipped.Load(),
		CheckpointWrites:   r.ckptWrites.Load(),
		CheckpointResumes:  r.ckptResumes.Load(),
		CheckpointCorrupt:  r.ckptCorrupt.Load(),
	}
}

// Get runs (or recalls) one spec. Concurrent calls for the same spec run the
// simulation exactly once: the first caller executes, later callers wait for
// its result.
func (r *Runner) Get(spec RunSpec) (Result, error) {
	return r.GetCtx(context.Background(), spec, nil)
}

// Lookup reports whether the runner has a memoized result for spec, without
// running anything. External cache tiers use it to decide whether to consult
// slower storage.
func (r *Runner) Lookup(spec RunSpec) (Result, bool) {
	spec = spec.normalize()
	r.mu.Lock()
	res, ok := r.cache[spec]
	r.mu.Unlock()
	return res, ok
}

// Put seeds the memoization cache with an externally obtained result (e.g.
// one recalled from a disk store), so later Get calls for the same spec are
// memory hits. The result is keyed under the normalized spec regardless of
// the form res.Spec is in.
func (r *Runner) Put(spec RunSpec, res Result) {
	spec = spec.normalize()
	r.mu.Lock()
	r.cache[spec] = res
	r.mu.Unlock()
}

// GetCtx is Get with cancellation and progress reporting. The first caller
// for a spec executes the simulation under its own ctx; concurrent callers
// for the same spec wait for that result, but stop waiting (with their own
// ctx's error) if their context is cancelled first. If the executing caller
// is cancelled, the waiters see its cancellation error and nothing is
// cached; the next call re-runs the spec. onProgress only fires for the
// caller that actually executes.
func (r *Runner) GetCtx(ctx context.Context, spec RunSpec, onProgress func(Progress)) (Result, error) {
	spec = spec.normalize()
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.mu.Unlock()
		return res, nil
	}
	if call, ok := r.inflight[spec]; ok {
		r.mu.Unlock()
		select {
		case <-call.done:
			return call.res, call.err
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	call := &runCall{done: make(chan struct{})}
	r.inflight[spec] = call
	r.mu.Unlock()

	r.runs.Add(1)
	call.res, call.err = r.execute(ctx, spec, onProgress)

	r.mu.Lock()
	if call.err == nil {
		r.cache[spec] = call.res
	}
	delete(r.inflight, spec)
	r.mu.Unlock()
	close(call.done)
	return call.res, call.err
}

// Runs reports how many simulations this runner actually executed (cache and
// singleflight hits excluded).
func (r *Runner) Runs() uint64 { return r.runs.Load() }

// GetAll runs the specs on a fixed worker pool and returns the results in
// spec order. The first error aborts the batch.
func (r *Runner) GetAll(specs []RunSpec) ([]Result, error) {
	return r.GetAllCtx(context.Background(), specs)
}

// lptOrder returns spec indices sorted by descending CostEstimateAt (ties
// keep submission order). Dispatching the longest points first keeps a
// sweep's makespan from being set by an 8-core PARSEC or ideal-SB straggler
// that a naive ordering hands to a worker last. warmStart tells the estimate
// whether shared snapshots will elide each spec's warmup prefix.
func lptOrder(specs []RunSpec, warmStart bool) []int {
	order := make([]int, len(specs))
	costs := make([]uint64, len(specs))
	for i, s := range specs {
		order[i] = i
		costs[i] = s.CostEstimateAt(warmStart)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return costs[order[a]] > costs[order[b]]
	})
	return order
}

// GetAllCtx runs the specs on a fixed worker pool (min(GOMAXPROCS,
// len(specs)) workers) and returns the results in spec order. Specs are
// dispatched longest-first (see lptOrder) but results land at their original
// indices, so callers see no difference from in-order execution. The first
// error stops all further dispatch — workers finish the spec they are on and
// exit, since the batch is doomed anyway — and cancelling ctx aborts the
// batch the same way, with running simulations stopped via RunCtx. A fixed
// pool — rather than one goroutine per spec parked behind a semaphore —
// keeps a five-figure sweep from materializing hundreds of idle goroutines
// up front.
func (r *Runner) GetAllCtx(ctx context.Context, specs []RunSpec) ([]Result, error) {
	results := make([]Result, len(specs))
	order := lptOrder(specs, r.WarmStart())
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				k := int(next.Add(1)) - 1
				if k >= len(order) {
					return
				}
				i := order[k]
				res, err := r.GetCtx(ctx, specs[i], nil)
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
