// Package sim assembles complete systems (cores + memory hierarchy) and runs
// experiment points. A RunSpec names everything that identifies a simulation
// — workload, store-prefetch policy, SB size, generic prefetcher, core
// micro-architecture, core count, instruction budget — and Run executes it
// deterministically. Runner adds a memoizing, parallel executor on top, so
// the figure harness can share results between the many figures that read
// the same sweep.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"spb/internal/config"
	"spb/internal/core"
	"spb/internal/cpu"
	"spb/internal/energy"
	"spb/internal/memsys"
	"spb/internal/topdown"
	"spb/internal/trace"
	"spb/internal/workloads"
)

// RunSpec identifies one simulation point.
type RunSpec struct {
	// Workload is a SPEC-like name (Cores == 1) or PARSEC-like name
	// (Cores > 1).
	Workload string
	Policy   core.Policy
	SQSize   int
	// Prefetcher selects the generic L1 prefetcher.
	Prefetcher config.PrefetcherKind
	// CoreName selects a Table II core ("" or "SKL" = Table I Skylake,
	// width 4).
	CoreName string
	// Cores is the core/thread count (1 for SPEC, 8 for PARSEC).
	Cores int
	// Insts is the per-core committed-instruction budget.
	Insts uint64
	// WindowN overrides the SPB window (0 = config default 48).
	WindowN int
	// DynamicSPB enables the dynamic store-size ablation.
	DynamicSPB bool
	// CoalesceSB enables the related-work store-coalescing SB ablation.
	CoalesceSB bool
	// BackwardBursts enables the §IV.A backward-burst extension.
	BackwardBursts bool
	// CrossPageBursts enables the footnote-2 cross-page burst extension.
	CrossPageBursts bool
	// ModelBranchPredictor replaces statistical mispredicts with a
	// modelled gshare + BTB front end.
	ModelBranchPredictor bool
	// Seed perturbs the workload generator (0 = default seed).
	Seed uint64
}

// MemStats aggregates the memory-system counters of a run.
type MemStats struct {
	L1TagAccesses uint64
	L1Hits        uint64
	L1Misses      uint64
	L2Accesses    uint64
	L3Accesses    uint64
	DRAMReads     uint64
	DRAMWrites    uint64

	Loads          uint64
	Stores         uint64
	LoadMisses     uint64
	StoreMisses    uint64
	WrongPathLoads uint64

	SPFIssued     uint64
	SPFDiscarded  uint64
	SPFMissToL2   uint64
	SPFSuccessful uint64
	SPFLate       uint64
	SPFEarly      uint64
	SPFBurst      uint64

	GPFIssued   uint64
	GPFUsed     uint64
	GPFLate     uint64
	GPFPolluted uint64

	Invalidations uint64
	Writebacks    uint64
}

// SPFNeverUsed derives the Fig. 11 "never used" bucket: issued ownership
// prefetches that were neither consumed, merged with, discarded as
// duplicates, nor evicted before use.
func (m MemStats) SPFNeverUsed() uint64 {
	accounted := m.SPFDiscarded + m.SPFSuccessful + m.SPFLate + m.SPFEarly
	if accounted >= m.SPFIssued {
		return 0
	}
	return m.SPFIssued - accounted
}

// Result is the outcome of one simulation point.
type Result struct {
	Spec   RunSpec
	CPU    cpu.Stats // aggregated over cores (cycles = max across cores)
	Mem    MemStats
	Energy energy.Breakdown
	TD     topdown.Report
}

// IPC returns committed instructions per cycle over all cores.
func (r Result) IPC() float64 { return r.CPU.IPC() }

func (s RunSpec) coreConfig() (config.CoreConfig, error) {
	if s.CoreName == "" {
		c := config.Skylake().Core
		return c, nil
	}
	for _, c := range config.Cores() {
		if c.Name == s.CoreName {
			return c, nil
		}
	}
	return config.CoreConfig{}, fmt.Errorf("sim: unknown core config %q", s.CoreName)
}

func (s RunSpec) normalize() RunSpec {
	if s.Cores == 0 {
		s.Cores = 1
	}
	if s.Insts == 0 {
		s.Insts = 200_000
	}
	if s.WindowN == 0 {
		s.WindowN = 48
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Run executes one simulation point.
func Run(spec RunSpec) (Result, error) {
	spec = spec.normalize()
	coreCfg, err := spec.coreConfig()
	if err != nil {
		return Result{}, err
	}
	machine := config.Skylake()
	machine.Core = coreCfg
	machine = machine.WithSQ(spec.SQSize).WithPrefetcher(spec.Prefetcher)
	machine.SPB.WindowN = spec.WindowN
	machine.SPB.DynamicSize = spec.DynamicSPB
	if err := machine.Validate(); err != nil {
		return Result{}, err
	}

	var readers []trace.Reader
	if spec.Cores == 1 {
		w, err := workloads.SPECByName(spec.Workload)
		if err != nil {
			return Result{}, err
		}
		readers = []trace.Reader{w.Build(spec.Seed)}
	} else {
		p, err := workloads.PARSECByName(spec.Workload)
		if err != nil {
			return Result{}, err
		}
		readers = p.Build(spec.Seed, spec.Cores)
	}

	sys := memsys.New(machine, spec.Cores)
	cores := make([]*cpu.Core, spec.Cores)
	opts := cpu.Options{
		CoalesceSB:         spec.CoalesceSB,
		BackwardBursts:     spec.BackwardBursts,
		CrossPageBursts:    spec.CrossPageBursts,
		UseBranchPredictor: spec.ModelBranchPredictor,
	}
	for i := range cores {
		cores[i] = cpu.NewWithOptions(machine.Core, spec.Policy, machine.SPB, machine.TLB, opts,
			sys.Port(i), trace.Limit(spec.Insts, readers[i]), spec.Seed+uint64(i)*7919)
	}

	// Lock-step execution: every core advances one cycle per round.
	guard := spec.Insts*1000*uint64(spec.Cores) + 1_000_000
	for round := uint64(0); ; round++ {
		running := false
		for _, c := range cores {
			if !c.Done() {
				c.Tick()
				running = true
			}
		}
		if !running {
			break
		}
		if round > guard {
			return Result{}, fmt.Errorf("sim: %v made no progress after %d cycles", spec, round)
		}
	}

	res := Result{Spec: spec}
	for _, c := range cores {
		st := c.St
		if st.Cycles > res.CPU.Cycles {
			res.CPU.Cycles = st.Cycles
		}
		res.CPU.Committed += st.Committed
		res.CPU.Loads += st.Loads
		res.CPU.Stores += st.Stores
		res.CPU.Branches += st.Branches
		res.CPU.Mispredicts += st.Mispredicts
		res.CPU.WrongPathInsts += st.WrongPathInsts
		res.CPU.ForwardedLoads += st.ForwardedLoads
		res.CPU.PartialForwards += st.PartialForwards
		res.CPU.SBStallCycles += st.SBStallCycles
		res.CPU.ROBStallCycles += st.ROBStallCycles
		res.CPU.IQStallCycles += st.IQStallCycles
		res.CPU.LQStallCycles += st.LQStallCycles
		res.CPU.FrontendStallCycles += st.FrontendStallCycles
		res.CPU.SBStallApp += st.SBStallApp
		res.CPU.SBStallLib += st.SBStallLib
		res.CPU.SBStallKernel += st.SBStallKernel
		res.CPU.ExecStallL1DPending += st.ExecStallL1DPending
		res.CPU.StoresPerformed += st.StoresPerformed
		res.CPU.SPBBursts += st.SPBBursts
	}
	for i := 0; i < spec.Cores; i++ {
		p := sys.Port(i)
		res.Mem.L1TagAccesses += p.L1().TagAccesses
		res.Mem.L1Hits += p.L1().Hits
		res.Mem.L1Misses += p.L1().Misses
		res.Mem.L2Accesses += p.L2().TagAccesses
		res.Mem.Loads += p.Loads
		res.Mem.Stores += p.Stores
		res.Mem.LoadMisses += p.LoadMisses
		res.Mem.StoreMisses += p.StoreMisses
		res.Mem.WrongPathLoads += p.WrongPathLoads
		res.Mem.SPFIssued += p.SPFIssued
		res.Mem.SPFDiscarded += p.SPFDiscarded
		res.Mem.SPFMissToL2 += p.SPFMissToL2
		res.Mem.SPFSuccessful += p.SPFSuccessful
		res.Mem.SPFLate += p.SPFLate
		res.Mem.SPFEarly += p.SPFEarly
		res.Mem.SPFBurst += p.SPFBurst
		res.Mem.GPFIssued += p.GPFIssued
		res.Mem.GPFUsed += p.GPFUsed
		res.Mem.GPFLate += p.GPFLate
		res.Mem.GPFPolluted += p.GPFPolluted
		res.Mem.Writebacks += p.L1().Writebacks + p.L2().Writebacks
	}
	res.Mem.L3Accesses = sys.L3().TagAccesses
	res.Mem.DRAMReads = sys.DRAM().Reads
	res.Mem.DRAMWrites = sys.DRAM().Writes
	res.Mem.Invalidations = sys.Invalidations

	res.Energy = energy.Compute(energy.Default22nm(), energy.Events{
		Cycles:         res.CPU.Cycles,
		L1TagAccesses:  res.Mem.L1TagAccesses,
		L1DataAccesses: res.Mem.L1Hits + res.Mem.L1Misses,
		L2Accesses:     res.Mem.L2Accesses,
		L3Accesses:     res.Mem.L3Accesses,
		DRAMAccesses:   res.Mem.DRAMReads + res.Mem.DRAMWrites,
		CommittedInsts: res.CPU.Committed,
		WrongPathInsts: res.CPU.WrongPathInsts,
		Loads:          res.CPU.Loads,
		SBEntries:      spec.SQSize,
	})
	res.TD = topdown.Analyze(&res.CPU)
	return res, nil
}

// Runner is a memoizing, parallel executor of simulation points.
type Runner struct {
	mu    sync.Mutex
	cache map[RunSpec]Result
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{cache: make(map[RunSpec]Result)}
}

// Get runs (or recalls) one spec.
func (r *Runner) Get(spec RunSpec) (Result, error) {
	spec = spec.normalize()
	r.mu.Lock()
	if res, ok := r.cache[spec]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	res, err := Run(spec)
	if err != nil {
		return Result{}, err
	}
	r.mu.Lock()
	r.cache[spec] = res
	r.mu.Unlock()
	return res, nil
}

// GetAll runs the specs concurrently (bounded by GOMAXPROCS) and returns the
// results in spec order. The first error aborts the batch.
func (r *Runner) GetAll(specs []RunSpec) ([]Result, error) {
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = r.Get(spec)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
