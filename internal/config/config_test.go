package config

import "testing"

func TestSkylakeMatchesTableI(t *testing.T) {
	m := Skylake()
	c := m.Core
	if c.Width != 4 {
		t.Errorf("width = %d, want 4", c.Width)
	}
	if c.ROBSize != 224 || c.IQSize != 97 || c.LQSize != 72 || c.SQSize != 56 {
		t.Errorf("ROB/IQ/LQ/SQ = %d/%d/%d/%d, want 224/97/72/56",
			c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	}
	if c.IntAddLat != 1 || c.IntMulLat != 4 || c.IntDivLat != 22 {
		t.Errorf("int latencies = %d/%d/%d, want 1/4/22",
			c.IntAddLat, c.IntMulLat, c.IntDivLat)
	}
	if c.FPAddLat != 5 || c.FPMulLat != 5 || c.FPDivLat != 22 {
		t.Errorf("fp latencies = %d/%d/%d, want 5/5/22",
			c.FPAddLat, c.FPMulLat, c.FPDivLat)
	}
	if m.L1D.SizeBytes != 32<<10 || m.L1D.Ways != 8 || m.L1D.LatencyCyc != 4 {
		t.Errorf("L1D = %+v, want 32KB/8-way/4cyc", m.L1D)
	}
	if m.L2.SizeBytes != 1<<20 || m.L2.Ways != 16 || m.L2.LatencyCyc != 14 {
		t.Errorf("L2 = %+v, want 1MB/16-way/14cyc", m.L2)
	}
	if m.L3.SizeBytes != 16<<20 || m.L3.Ways != 16 || m.L3.LatencyCyc != 36 {
		t.Errorf("L3 = %+v, want 16MB/16-way/36cyc", m.L3)
	}
	if m.L1D.MSHRs != 64 {
		t.Errorf("MSHRs = %d, want 64", m.L1D.MSHRs)
	}
	if m.SPB.WindowN != 48 {
		t.Errorf("SPB window = %d, want 48 (paper §IV.C)", m.SPB.WindowN)
	}
}

func TestSkylakeValidates(t *testing.T) {
	if err := Skylake().Validate(); err != nil {
		t.Fatalf("Skylake config should validate: %v", err)
	}
}

func TestCoresMatchTableII(t *testing.T) {
	want := []struct {
		name                string
		rob, iq, lq, sq, wd int
	}{
		{"SLM", 32, 15, 10, 16, 4},
		{"NHL", 128, 32, 48, 36, 4},
		{"HSW", 192, 60, 72, 42, 8},
		{"SKL", 224, 97, 72, 56, 8},
		{"SNC", 352, 128, 128, 72, 8},
	}
	cores := Cores()
	if len(cores) != len(want) {
		t.Fatalf("Cores() returned %d configs, want %d", len(cores), len(want))
	}
	for i, w := range want {
		c := cores[i]
		if c.Name != w.name || c.ROBSize != w.rob || c.IQSize != w.iq ||
			c.LQSize != w.lq || c.SQSize != w.sq || c.Width != w.wd {
			t.Errorf("core %d = %s %d/%d/%d/%d w%d, want %s %d/%d/%d/%d w%d",
				i, c.Name, c.ROBSize, c.IQSize, c.LQSize, c.SQSize, c.Width,
				w.name, w.rob, w.iq, w.lq, w.sq, w.wd)
		}
	}
}

func TestCoresValidate(t *testing.T) {
	for _, core := range Cores() {
		m := Skylake().WithCore(core)
		if err := m.Validate(); err != nil {
			t.Errorf("core %s should validate: %v", core.Name, err)
		}
	}
}

func TestWithSQ(t *testing.T) {
	m := Skylake()
	m2 := m.WithSQ(14)
	if m2.Core.SQSize != 14 {
		t.Errorf("WithSQ: got %d, want 14", m2.Core.SQSize)
	}
	if m.Core.SQSize != 56 {
		t.Error("WithSQ must not mutate the receiver")
	}
}

func TestWithPrefetcher(t *testing.T) {
	m := Skylake().WithPrefetcher(PrefetchAdaptive)
	if m.Prefetcher != PrefetchAdaptive {
		t.Error("WithPrefetcher did not apply")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MachineConfig)
	}{
		{"zero width", func(m *MachineConfig) { m.Core.Width = 0 }},
		{"zero ROB", func(m *MachineConfig) { m.Core.ROBSize = 0 }},
		{"zero SQ", func(m *MachineConfig) { m.Core.SQSize = 0 }},
		{"bad cache size", func(m *MachineConfig) { m.L1D.SizeBytes = 1000 }},
		{"zero MSHRs", func(m *MachineConfig) { m.L2.MSHRs = 0 }},
		{"zero DRAM latency", func(m *MachineConfig) { m.DRAM.LatencyCyc = 0 }},
		{"tiny SPB window", func(m *MachineConfig) { m.SPB.WindowN = 4 }},
	}
	for _, c := range cases {
		m := Skylake()
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestCacheSets(t *testing.T) {
	m := Skylake()
	if m.L1D.Sets() != 64 {
		t.Errorf("L1D sets = %d, want 64", m.L1D.Sets())
	}
	if m.L2.Sets() != 1024 {
		t.Errorf("L2 sets = %d, want 1024", m.L2.Sets())
	}
	if m.L3.Sets() != 16384 {
		t.Errorf("L3 sets = %d, want 16384", m.L3.Sets())
	}
}

func TestPrefetcherKindString(t *testing.T) {
	for k, want := range map[PrefetcherKind]string{
		PrefetchStream:     "stream",
		PrefetchAggressive: "aggressive",
		PrefetchAdaptive:   "adaptive",
		PrefetchNone:       "none",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestStandardSQSizes(t *testing.T) {
	if len(StandardSQSizes) != 3 || StandardSQSizes[0] != 56 ||
		StandardSQSizes[1] != 28 || StandardSQSizes[2] != 14 {
		t.Fatalf("StandardSQSizes = %v, want [56 28 14]", StandardSQSizes)
	}
}
