// Package config defines the machine configurations of the paper: the
// Skylake-X system of Table I used for every main experiment, the five core
// micro-architectures of Table II used by the core-aggressiveness sweep
// (Fig. 17), and the knobs varied across experiments (store-buffer size,
// store-prefetch policy, generic L1 prefetcher scheme, SPB window N).
package config

import "fmt"

// PrefetcherKind selects the generic L1 data prefetcher (§VI.D).
type PrefetcherKind int

const (
	// PrefetchStream is the baseline stride/stream prefetcher of Table I.
	PrefetchStream PrefetcherKind = iota
	// PrefetchAggressive is the always-aggressive scheme of Srinath et al.
	PrefetchAggressive
	// PrefetchAdaptive is the feedback-directed adaptive scheme of
	// Srinath et al. (HPCA 2007).
	PrefetchAdaptive
	// PrefetchNone disables the generic L1 prefetcher.
	PrefetchNone
	// PrefetchBOP is the Best-Offset prefetcher (Michaud, HPCA 2016):
	// offset scoring over a recent-requests table with phase-based
	// best-offset election.
	PrefetchBOP
	// PrefetchDSPatch is a DSPatch-style dual spatial-pattern prefetcher
	// (Bera et al., MICRO 2019): per-page access bitmaps merged into
	// coverage-biased and accuracy-biased trigger-relative patterns, with
	// feedback-directed selection between the two.
	PrefetchDSPatch
	// PrefetchHybrid arbitrates a shared prefetch-issue budget across the
	// stream, BOP and DSPatch engines by per-epoch accuracy feedback.
	PrefetchHybrid
)

func (k PrefetcherKind) String() string {
	switch k {
	case PrefetchStream:
		return "stream"
	case PrefetchAggressive:
		return "aggressive"
	case PrefetchAdaptive:
		return "adaptive"
	case PrefetchNone:
		return "none"
	case PrefetchBOP:
		return "bop"
	case PrefetchDSPatch:
		return "dspatch"
	case PrefetchHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("PrefetcherKind(%d)", int(k))
}

// Valid reports whether k names an implemented prefetcher. Specs arrive from
// decoded wire input (HTTP bodies, checkpoint files, gob streams), so the
// kind must be validated before it reaches the prefetcher constructor.
func (k PrefetcherKind) Valid() bool {
	return k >= PrefetchStream && k <= PrefetchHybrid
}

// PrefetcherNames is the pipe-separated list of valid prefetcher names, for
// flag help strings and error messages.
const PrefetcherNames = "stream|aggressive|adaptive|none|bop|dspatch|hybrid"

// Prefetchers lists every prefetcher kind in declaration order.
var Prefetchers = []PrefetcherKind{
	PrefetchStream, PrefetchAggressive, PrefetchAdaptive, PrefetchNone,
	PrefetchBOP, PrefetchDSPatch, PrefetchHybrid,
}

// ParsePrefetcher maps a prefetcher name (the String() form) back to the
// kind. Shared by CLI flags and the spbd HTTP API.
func ParsePrefetcher(s string) (PrefetcherKind, error) {
	for _, k := range Prefetchers {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown prefetcher %q (want %s)", s, PrefetcherNames)
}

// CoreConfig holds the out-of-order core parameters (Table I core details
// and the Table II sensitivity configurations).
type CoreConfig struct {
	Name string

	// Width is the per-stage back-end width (dispatch, issue and commit
	// are all Width instructions per cycle, as in Table I).
	Width int

	ROBSize int // re-order buffer entries
	IQSize  int // issue queue entries
	LQSize  int // load queue entries
	SQSize  int // store queue / store buffer entries (the SB of the paper)

	// FetchQueue models the decoded-uop buffer between the front end and
	// rename; it bounds how far fetch runs ahead.
	FetchQueue int

	// Instruction latencies (cycles), as measured by Fog and used in the
	// paper's gem5 Skylake-X model.
	IntAddLat int
	IntMulLat int
	IntDivLat int
	FPAddLat  int
	FPMulLat  int
	FPDivLat  int

	// MispredictPenalty is the front-end refill delay after a mispredicted
	// branch resolves.
	MispredictPenalty int

	// BranchMissRate is the fraction of branches mispredicted when the
	// workload does not specify its own rate; the L-TAGE predictor of
	// Table I is modelled statistically per workload.
	BranchMissRate float64
}

// CacheConfig holds the parameters of one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	LatencyCyc int // hit latency, request to data
	MSHRs      int // outstanding-miss registers
}

// Sets returns the number of sets implied by size and associativity
// (64-byte blocks).
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (64 * c.Ways)
}

// DRAMConfig holds the main-memory model parameters.
type DRAMConfig struct {
	LatencyCyc     int // row access latency seen past the L3
	CyclesPerBlock int // service interval: bandwidth = 64B / (this / 2GHz)
	MaxOutstanding int // memory-controller queue depth
}

// TLBConfig holds the data-TLB parameters (Table I: 8-way, 1 KB of entry
// storage = 128 entries).
type TLBConfig struct {
	Entries int
	Ways    int
	WalkLat int // page-walk latency in cycles
}

// SPBConfig holds the parameters of the store-prefetch-burst detector.
type SPBConfig struct {
	// WindowN is the number of committed stores between saturating-counter
	// checks. The paper's sensitivity analysis (§IV.C) picks 48.
	WindowN int
	// DynamicSize enables the §IV.C ablation that learns the store size S
	// and tests the counter against N/S instead of N/8. The paper found it
	// performs worse than plain SPB; it is kept as an ablation knob.
	DynamicSize bool
}

// MachineConfig is a complete single-core machine description.
type MachineConfig struct {
	Core CoreConfig

	L1D CacheConfig
	L2  CacheConfig
	L3  CacheConfig

	DRAM DRAMConfig

	TLB TLBConfig

	Prefetcher PrefetcherKind

	SPB SPBConfig
}

// WithSQ returns a copy of m with the store-queue (store-buffer) size set to
// n. This is the paper's primary knob: 56, 28, 14 entries and the 1024-entry
// ideal reference.
func (m MachineConfig) WithSQ(n int) MachineConfig {
	m.Core.SQSize = n
	return m
}

// WithPrefetcher returns a copy of m using the given generic L1 prefetcher.
func (m MachineConfig) WithPrefetcher(k PrefetcherKind) MachineConfig {
	m.Prefetcher = k
	return m
}

// WithCore returns a copy of m with the core parameters replaced, keeping
// the memory hierarchy; used by the Fig. 17 core sweep.
func (m MachineConfig) WithCore(c CoreConfig) MachineConfig {
	m.Core = c
	return m
}

// Validate reports a configuration error, if any. It catches the mistakes
// that would otherwise surface as confusing simulator behaviour.
func (m MachineConfig) Validate() error {
	c := m.Core
	switch {
	case c.Width <= 0:
		return fmt.Errorf("config: core width must be positive, got %d", c.Width)
	case c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0:
		return fmt.Errorf("config: ROB/IQ/LQ/SQ sizes must be positive (%d/%d/%d/%d)",
			c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	case c.SQSize > c.ROBSize*32:
		return fmt.Errorf("config: SQ size %d is implausibly large for ROB %d", c.SQSize, c.ROBSize)
	}
	for _, cc := range []CacheConfig{m.L1D, m.L2, m.L3} {
		if cc.SizeBytes <= 0 || cc.Ways <= 0 || cc.LatencyCyc <= 0 || cc.MSHRs <= 0 {
			return fmt.Errorf("config: cache %q has non-positive parameter", cc.Name)
		}
		if cc.Sets()*cc.Ways*64 != cc.SizeBytes {
			return fmt.Errorf("config: cache %q size %d not divisible into %d ways of 64B blocks",
				cc.Name, cc.SizeBytes, cc.Ways)
		}
		if s := cc.Sets(); s&(s-1) != 0 {
			return fmt.Errorf("config: cache %q set count %d is not a power of two", cc.Name, s)
		}
	}
	if m.DRAM.LatencyCyc <= 0 || m.DRAM.CyclesPerBlock <= 0 || m.DRAM.MaxOutstanding <= 0 {
		return fmt.Errorf("config: DRAM parameters must be positive")
	}
	if m.TLB.Entries <= 0 || m.TLB.Ways <= 0 || m.TLB.Entries%m.TLB.Ways != 0 || m.TLB.WalkLat < 0 {
		return fmt.Errorf("config: TLB parameters invalid (%d entries, %d ways, walk %d)",
			m.TLB.Entries, m.TLB.Ways, m.TLB.WalkLat)
	}
	if m.SPB.WindowN < 8 {
		return fmt.Errorf("config: SPB window N must be at least 8, got %d", m.SPB.WindowN)
	}
	if !m.Prefetcher.Valid() {
		// Prefetcher kinds reach here from decoded input (HTTP specs,
		// checkpoint files); rejecting them at validation time keeps the
		// prefetcher constructor panic-free on every reachable path.
		return fmt.Errorf("config: unknown prefetcher kind %d (want %s)", int(m.Prefetcher), PrefetcherNames)
	}
	return nil
}

// Skylake returns the Table I configuration: the Skylake-X-like machine used
// for all main experiments. The default store buffer has 56 entries.
func Skylake() MachineConfig {
	return MachineConfig{
		Core: skylakeCore(),
		L1D: CacheConfig{
			Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatencyCyc: 4, MSHRs: 64,
		},
		L2: CacheConfig{
			Name: "L2", SizeBytes: 1 << 20, Ways: 16, LatencyCyc: 14, MSHRs: 64,
		},
		L3: CacheConfig{
			Name: "L3", SizeBytes: 16 << 20, Ways: 16, LatencyCyc: 36, MSHRs: 64,
		},
		DRAM: DRAMConfig{
			LatencyCyc:     200,
			CyclesPerBlock: 2, // ~64 GB/s at 2 GHz (multi-channel DDR4)
			MaxOutstanding: 64,
		},
		TLB:        TLBConfig{Entries: 128, Ways: 8, WalkLat: 30},
		Prefetcher: PrefetchStream,
		SPB:        SPBConfig{WindowN: 48},
	}
}

func skylakeCore() CoreConfig {
	return CoreConfig{
		Name:              "SKL",
		Width:             4,
		ROBSize:           224,
		IQSize:            97,
		LQSize:            72,
		SQSize:            56,
		FetchQueue:        56,
		IntAddLat:         1,
		IntMulLat:         4,
		IntDivLat:         22,
		FPAddLat:          5,
		FPMulLat:          5,
		FPDivLat:          22,
		MispredictPenalty: 14,
		BranchMissRate:    0.03,
	}
}

// Cores returns the five Table II core configurations used by the Fig. 17
// sensitivity analysis, ordered from the most energy-efficient (Silvermont)
// to the most aggressive (Sunny Cove).
func Cores() []CoreConfig {
	base := skylakeCore()
	mk := func(name string, rob, iq, lq, sq, width int) CoreConfig {
		c := base
		c.Name = name
		c.ROBSize, c.IQSize, c.LQSize, c.SQSize, c.Width = rob, iq, lq, sq, width
		return c
	}
	return []CoreConfig{
		mk("SLM", 32, 15, 10, 16, 4),
		mk("NHL", 128, 32, 48, 36, 4),
		mk("HSW", 192, 60, 72, 42, 8),
		mk("SKL", 224, 97, 72, 56, 8),
		mk("SNC", 352, 128, 128, 72, 8),
	}
}

// IdealSQSize is the store-buffer size used to model the paper's ideal,
// never-stalling SB (a 1024-entry SB never fills on these workloads).
const IdealSQSize = 1024

// StandardSQSizes are the store-buffer sizes of the main evaluation:
// the Skylake 56-entry SB, the SMT-2 half (28) and the SMT-4 quarter (14).
var StandardSQSizes = []int{56, 28, 14}
