package core

import (
	"bytes"
	"encoding/gob"

	"spb/internal/mem"
)

// Gob wire form of a DetectorSnapshot (crash-safe checkpoints, DESIGN.md
// §15).

type detectorWire struct {
	N         int
	Threshold int
	Dynamic   bool

	LastBlock  mem.Block
	SatCounter uint8
	StoreCount int

	LastBurstPage    mem.Page
	HasLastBurstPage bool

	Backward    bool
	CrossPage   bool
	BackCounter uint8

	WindowBytes int

	Checks   uint64
	Triggers uint64
}

// GobEncode implements gob.GobEncoder.
func (s DetectorSnapshot) GobEncode() ([]byte, error) {
	w := detectorWire{
		N: s.d.n, Threshold: s.d.threshold, Dynamic: s.d.dynamic,
		LastBlock: s.d.lastBlock, SatCounter: s.d.satCounter, StoreCount: s.d.storeCount,
		LastBurstPage: s.d.lastBurstPage, HasLastBurstPage: s.d.hasLastBurstPage,
		Backward: s.d.backward, CrossPage: s.d.crossPage, BackCounter: s.d.backCounter,
		WindowBytes: s.d.windowBytes,
		Checks:      s.d.Checks, Triggers: s.d.Triggers,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *DetectorSnapshot) GobDecode(data []byte) error {
	var w detectorWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.d = Detector{
		n: w.N, threshold: w.Threshold, dynamic: w.Dynamic,
		lastBlock: w.LastBlock, satCounter: w.SatCounter, storeCount: w.StoreCount,
		lastBurstPage: w.LastBurstPage, hasLastBurstPage: w.HasLastBurstPage,
		backward: w.Backward, crossPage: w.CrossPage, backCounter: w.BackCounter,
		windowBytes: w.WindowBytes,
		Checks:      w.Checks, Triggers: w.Triggers,
	}
	return nil
}
