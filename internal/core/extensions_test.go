package core

import (
	"testing"

	"spb/internal/mem"
)

func TestBackwardBurstDetection(t *testing.T) {
	d := NewDetectorWithOptions(8, Options{Backward: true})
	// Descending 64-bit stores from near the end of a page (stack-like):
	// one store per block so every diff is -1.
	base := mem.AddrOfBlock(mem.Block(mem.BlocksPerPage - 1)) // block 63 of page 0
	var burst Burst
	var got bool
	for i := 0; i < 16; i++ {
		a := base - mem.Addr(i*mem.BlockSize)
		if b, ok := d.Observe(a, 8); ok {
			burst, got = b, true
			break
		}
	}
	if !got {
		t.Fatal("descending block stream must trigger a backward burst")
	}
	// The burst must cover blocks of page 0 strictly below the current one,
	// and never leave the page.
	if mem.PageOfBlock(burst.Start) != 0 {
		t.Fatalf("backward burst starts in page %d", mem.PageOfBlock(burst.Start))
	}
	last := burst.Start + mem.Block(burst.Count-1)
	if mem.PageOfBlock(last) != 0 {
		t.Fatal("backward burst crossed the page")
	}
	if burst.Count <= 0 {
		t.Fatal("empty backward burst")
	}
}

func TestBackwardDisabledByDefault(t *testing.T) {
	d := NewDetector(8, false)
	base := mem.AddrOfBlock(mem.Block(mem.BlocksPerPage - 1))
	for i := 0; i < 64; i++ {
		if _, ok := d.Observe(base-mem.Addr(i*mem.BlockSize), 8); ok {
			t.Fatal("plain SPB must not trigger on descending patterns (paper §IV.A)")
		}
	}
}

func TestBackwardDoesNotBreakForward(t *testing.T) {
	d := NewDetectorWithOptions(8, Options{Backward: true})
	if _, ok := feedStores(d, 0, 512); !ok {
		t.Fatal("forward detection must still work with the backward extension on")
	}
}

func TestCrossPageBurstExtends(t *testing.T) {
	plain := NewDetector(8, false)
	cross := NewDetectorWithOptions(8, Options{CrossPage: true})
	bp, okP := feedStores(plain, 0, 512)
	bx, okX := feedStores(cross, 0, 512)
	if !okP || !okX {
		t.Fatal("both detectors must trigger on a dense stream")
	}
	if bx.Count != bp.Count+mem.BlocksPerPage {
		t.Fatalf("cross-page burst = %d blocks, want plain %d + %d",
			bx.Count, bp.Count, mem.BlocksPerPage)
	}
	if bx.Start != bp.Start {
		t.Fatal("cross-page burst must start at the same block")
	}
}

func TestBackwardAtPageStartHasNothingToFetch(t *testing.T) {
	d := NewDetectorWithOptions(8, Options{Backward: true})
	// Walk down across a page boundary so the check lands at block 0 of a
	// page: backwardBurst must return nothing rather than underflow.
	start := mem.AddrOfBlock(mem.Block(mem.BlocksPerPage + 7)) // block 7 of page 1
	for i := 0; i < 64; i++ {
		a := start - mem.Addr(i*mem.BlockSize)
		if b, ok := d.Observe(a, 8); ok {
			last := b.Start + mem.Block(b.Count-1)
			if mem.PageOfBlock(b.Start) != mem.PageOfBlock(last) {
				t.Fatal("backward burst crossed a page")
			}
		}
	}
}

func TestBackwardBurstRespectsPageFilter(t *testing.T) {
	d := NewDetectorWithOptions(8, Options{Backward: true})
	base := mem.AddrOfBlock(mem.Block(mem.BlocksPerPage - 1))
	triggers := 0
	for i := 0; i < 60; i++ {
		if _, ok := d.Observe(base-mem.Addr(i*mem.BlockSize), 8); ok {
			triggers++
		}
	}
	if triggers != 1 {
		t.Fatalf("one page should burst once, got %d", triggers)
	}
}

func TestOptionsResetClearsBackwardState(t *testing.T) {
	d := NewDetectorWithOptions(8, Options{Backward: true})
	base := mem.AddrOfBlock(mem.Block(mem.BlocksPerPage - 1))
	for i := 0; i < 5; i++ {
		d.Observe(base-mem.Addr(i*mem.BlockSize), 8)
	}
	d.Reset()
	if d.backCounter != 0 {
		t.Fatal("Reset must clear the backward counter")
	}
}
