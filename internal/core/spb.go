// Package core implements the paper's contribution: the Store-Prefetch
// Burst (SPB) detector and burst generator (§IV), plus the taxonomy of
// store-prefetch policies the evaluation compares (none, at-execute,
// at-commit, SPB, ideal).
//
// SPB watches committed stores through just three registers — 67 bits of
// state in total — and, when a window of N stores turns out to have walked
// contiguous cache blocks, predicts that the pattern continues for the rest
// of the current page and asks the L1 controller for write permission on
// every remaining block in one burst.
package core

import (
	"fmt"

	"spb/internal/mem"
)

// Policy selects when (and whether) stores prefetch write permission.
type Policy int

const (
	// PolicyNone issues no store prefetch: the SB head requests ownership
	// only when it tries to perform, fully serializing store misses.
	PolicyNone Policy = iota
	// PolicyAtExecute prefetches when the store's address is computed
	// (Gharachorloo et al.): earliest possible, but speculative — squashed
	// stores waste traffic and energy.
	PolicyAtExecute
	// PolicyAtCommit prefetches when the store commits and enters the SB
	// (Intel optimization manual, the paper's baseline): never wasted, but
	// often late.
	PolicyAtCommit
	// PolicySPB is at-commit plus the store-prefetch-burst detector.
	PolicySPB
	// PolicyIdeal models the paper's ideal SB: a buffer that never fills
	// (1024 entries) with all senior blocks prefetched in parallel.
	PolicyIdeal
)

// Policies lists every policy in evaluation order.
var Policies = []Policy{PolicyNone, PolicyAtExecute, PolicyAtCommit, PolicySPB, PolicyIdeal}

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyAtExecute:
		return "at-execute"
	case PolicyAtCommit:
		return "at-commit"
	case PolicySPB:
		return "spb"
	case PolicyIdeal:
		return "ideal"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps a policy name (the String() form) back to the Policy.
// It is the inverse shared by every surface that accepts policy names —
// CLI flags and the spbd HTTP API — so they agree on the vocabulary.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (want none|at-execute|at-commit|spb|ideal)", s)
}

// PrefetchesAtCommit reports whether the policy issues a per-store
// prefetch when the store enters the SB.
func (p Policy) PrefetchesAtCommit() bool {
	return p == PolicyAtCommit || p == PolicySPB || p == PolicyIdeal
}

// Register widths of the detector (the paper's 67-bit storage claim).
const (
	LastBlockBits  = 58 // block address: 64-bit address minus 6 block-offset bits
	SatCounterBits = 4
	StoreCountBits = 5
	// StorageBits is the total detector state.
	StorageBits = LastBlockBits + SatCounterBits + StoreCountBits
)

// satCounterMax is the saturation point of the 4-bit counter.
const satCounterMax = (1 << SatCounterBits) - 1

// Detector is the SPB hardware: three registers updated at store commit.
//
// Note on widths: the paper states the store-count register is 5 bits yet
// selects N = 48 in its sensitivity analysis (§IV.C); we keep N configurable
// and the 67-bit storage claim as published (see DESIGN.md).
type Detector struct {
	n         int
	threshold int
	dynamic   bool

	lastBlock  mem.Block
	satCounter uint8
	storeCount int

	// lastBurstPage suppresses repeated bursts for a page already bursted:
	// within one page a dense stream passes several window checks, and
	// re-issuing the burst would only re-request blocks the first burst
	// already owns. The filter keeps burst traffic within the bounds the
	// paper reports (Fig. 12). It adds one page register beyond the 67-bit
	// detector state proper.
	lastBurstPage    mem.Page
	hasLastBurstPage bool

	// Extension state (see Options in extensions.go).
	backward    bool
	crossPage   bool
	backCounter uint8

	// windowBytes accumulates store sizes for the dynamic-S ablation.
	windowBytes int

	// Statistics.
	Checks   uint64
	Triggers uint64
}

// Burst describes one store-prefetch burst: requests for write permission on
// count consecutive blocks starting at Start, never crossing Start's page.
type Burst struct {
	Start mem.Block
	Count int
}

// Blocks calls fn for each block of the burst in ascending order.
func (b Burst) Blocks(fn func(mem.Block)) {
	for i := 0; i < b.Count; i++ {
		fn(b.Start + mem.Block(i))
	}
}

// NewDetector returns a detector checking its saturating counter every n
// stores against n/8 (eight 8-byte stores fill a 64-byte block). dynamic
// enables the §IV.C dynamic store-size ablation, which replaces the /8 with
// a divisor learned from the sizes observed in the window.
func NewDetector(n int, dynamic bool) *Detector {
	if n < 8 {
		panic("core: SPB window N must be at least 8")
	}
	return &Detector{
		n:         n,
		threshold: n / 8,
		dynamic:   dynamic,
	}
}

// WindowN returns the configured window length.
func (d *Detector) WindowN() int { return d.n }

// Observe processes one committed store and reports whether it triggered a
// burst. The returned burst covers every remaining block of the page being
// written (forward only — the paper found no backward bursts worth chasing).
func (d *Detector) Observe(addr mem.Addr, size uint8) (Burst, bool) {
	block := mem.BlockOf(addr)
	switch block - d.lastBlock {
	case 0:
		// Same block: no new information.
	case 1:
		if d.satCounter < satCounterMax {
			d.satCounter++
		}
	default:
		d.satCounter = 0
	}
	if d.backward {
		d.observeBackward(block)
	}
	d.lastBlock = block
	d.storeCount++
	d.windowBytes += int(size)

	if d.storeCount < d.n {
		return Burst{}, false
	}

	// Window boundary: compare the counter against the expected number of
	// block transitions for a dense store stream.
	d.Checks++
	threshold := d.threshold
	if d.dynamic {
		avg := d.windowBytes / d.n
		if avg < 1 {
			avg = 1
		}
		storesPerBlock := mem.BlockSize / avg
		if storesPerBlock < 1 {
			storesPerBlock = 1
		}
		threshold = d.n / storesPerBlock
		if threshold < 1 {
			threshold = 1
		}
	}
	triggered := int(d.satCounter) >= threshold
	backTriggered := d.backward && int(d.backCounter) >= threshold
	d.satCounter = 0
	d.backCounter = 0
	d.storeCount = 0
	d.windowBytes = 0
	if !triggered {
		if backTriggered {
			return d.backwardBurst(block)
		}
		return Burst{}, false
	}

	page := mem.PageOfBlock(block)
	if d.hasLastBurstPage && page == d.lastBurstPage {
		return Burst{}, false // this page's burst was already issued
	}
	last := mem.LastBlockOfPage(block)
	count := int(last - block) // blocks strictly after the current one
	if count == 0 {
		return Burst{}, false // store burst already at the page's end
	}
	if d.crossPage {
		// A virtual-address burst may continue into the next page
		// (footnote 2 of the paper); the flat simulated address space
		// keeps physical contiguity trivially true.
		count += mem.BlocksPerPage
	}
	d.Triggers++
	d.lastBurstPage = page
	d.hasLastBurstPage = true
	return Burst{Start: block + 1, Count: count}, true
}

// Reset clears the detector (used at context switches in hardware; in the
// simulator, between regions of interest).
func (d *Detector) Reset() {
	d.lastBlock = 0
	d.satCounter = 0
	d.storeCount = 0
	d.windowBytes = 0
	d.hasLastBurstPage = false
	d.backCounter = 0
}
