package core

import (
	"testing"
	"testing/quick"

	"spb/internal/mem"
)

// feedStores drives the detector with contiguous 8-byte stores starting at
// base and returns the first burst triggered, if any.
func feedStores(d *Detector, base mem.Addr, count int) (Burst, bool) {
	for i := 0; i < count; i++ {
		if b, ok := d.Observe(base+mem.Addr(i*8), 8); ok {
			return b, ok
		}
	}
	return Burst{}, false
}

func TestStorageClaim(t *testing.T) {
	if StorageBits != 67 {
		t.Fatalf("StorageBits = %d, want the paper's 67", StorageBits)
	}
}

func TestFig4RunningExample(t *testing.T) {
	// Paper Fig. 4 (bottom): N = 8, contiguous 8-byte stores from 0x000.
	// The differences over the first 8 stores are 0×7 then 1 at the ninth
	// store (0x040); the check at the 8th store sees counter 0 (no
	// trigger), and the check after the 16th store (having crossed block
	// boundaries at 0x040 and... ) triggers once the counter reaches N/8=1.
	d := NewDetector(8, false)
	var bursts []Burst
	for i := 0; i < 16; i++ {
		if b, ok := d.Observe(mem.Addr(i*8), 8); ok {
			bursts = append(bursts, b)
		}
	}
	// First window (stores 0x000..0x038): 7 same-block diffs, counter 0 →
	// no burst. Second window (0x040..0x078): the transition into block 1
	// bumps the counter to 1 >= 8/8 → burst at the 16th store.
	if len(bursts) != 1 {
		t.Fatalf("got %d bursts, want exactly 1", len(bursts))
	}
	b := bursts[0]
	// The 16th store wrote into block 1; the burst covers blocks 2..63 of
	// page 0.
	if b.Start != 2 {
		t.Fatalf("burst start = block %d, want 2", b.Start)
	}
	if b.Count != 62 {
		t.Fatalf("burst count = %d, want 62 (remaining blocks of the page)", b.Count)
	}
}

func TestBurstNeverCrossesPage(t *testing.T) {
	f := func(pageRaw uint32, offRaw uint8) bool {
		d := NewDetector(8, false)
		page := mem.Page(pageRaw)
		startBlock := mem.Block(uint64(page)*mem.BlocksPerPage + uint64(offRaw%mem.BlocksPerPage))
		base := mem.AddrOfBlock(startBlock)
		// Enough contiguous stores to force a trigger within this page.
		for i := 0; i < 256; i++ {
			a := base + mem.Addr(i*8)
			if mem.PageOf(a) != page {
				break
			}
			if b, ok := d.Observe(a, 8); ok {
				last := b.Start + mem.Block(b.Count-1)
				if mem.PageOfBlock(b.Start) != page || mem.PageOfBlock(last) != page {
					return false
				}
				if b.Count <= 0 {
					return false
				}
				return true
			}
		}
		return true // no trigger near the page end is acceptable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBurstBlocksAscending(t *testing.T) {
	b := Burst{Start: 100, Count: 5}
	var got []mem.Block
	b.Blocks(func(blk mem.Block) { got = append(got, blk) })
	if len(got) != 5 {
		t.Fatalf("visited %d blocks, want 5", len(got))
	}
	for i, blk := range got {
		if blk != mem.Block(100+i) {
			t.Fatalf("block %d = %d, want %d", i, blk, 100+i)
		}
	}
}

func TestContiguousStreamTriggersWithN48(t *testing.T) {
	d := NewDetector(48, false)
	// 48 contiguous 8-byte stores cover 6 blocks: counter = 5 after the
	// first window (5 transitions within it)... the trigger depends on the
	// alignment; a long stream must trigger within the first two windows.
	burst, ok := feedStores(d, 0, 96)
	if !ok {
		t.Fatal("a dense contiguous stream must trigger SPB")
	}
	if burst.Count <= 0 || burst.Count >= mem.BlocksPerPage {
		t.Fatalf("burst count = %d out of range", burst.Count)
	}
}

func TestSparseStoresNeverTrigger(t *testing.T) {
	d := NewDetector(48, false)
	// Stores 4 blocks apart: every diff is 4, so the counter stays 0.
	for i := 0; i < 1000; i++ {
		if _, ok := d.Observe(mem.Addr(i*4*64), 8); ok {
			t.Fatal("non-contiguous blocks must never trigger a burst")
		}
	}
	if d.Triggers != 0 {
		t.Fatal("trigger counter should be zero")
	}
}

func TestBackwardStreamNeverTriggers(t *testing.T) {
	d := NewDetector(8, false)
	base := mem.Addr(0x100000)
	for i := 0; i < 512; i++ {
		if _, ok := d.Observe(base-mem.Addr(i*8), 8); ok {
			t.Fatal("backward bursts are not implemented and must not trigger")
		}
	}
}

func TestShuffledWithinWindowStillTriggers(t *testing.T) {
	// The detector tolerates intra-block shuffling (e.g. after loop
	// unrolling): order within a block does not matter, only the block
	// transitions do.
	d := NewDetector(8, false)
	triggered := false
	for blk := 0; blk < 8 && !triggered; blk++ {
		base := mem.Addr(blk * 64)
		order := []int{3, 1, 0, 2, 7, 5, 4, 6} // shuffled 8-byte slots
		for _, s := range order {
			if _, ok := d.Observe(base+mem.Addr(s*8), 8); ok {
				triggered = true
				break
			}
		}
	}
	if !triggered {
		t.Fatal("block-granularity detection must survive intra-block shuffling")
	}
}

func TestInterleavedStreamsDefeatDetector(t *testing.T) {
	// Two interleaved streams far apart: diffs alternate between large
	// jumps, so the counter resets constantly. (This is the price of a
	// 67-bit detector; the paper accepts it.)
	d := NewDetector(8, false)
	for i := 0; i < 512; i++ {
		if _, ok := d.Observe(mem.Addr(i*8), 8); i%2 == 0 && ok {
			break
		}
		if _, ok := d.Observe(mem.Addr(0x100000+i*8), 8); ok {
			t.Fatal("alternating distant streams must not trigger")
		}
	}
}

func TestWindowResetsAfterCheck(t *testing.T) {
	d := NewDetector(8, false)
	// Feed one window of contiguous stores across blocks (stride 64 so
	// every diff is 1): counter saturates quickly.
	for i := 0; i < 7; i++ {
		if _, ok := d.Observe(mem.Addr(i*64), 8); ok {
			t.Fatalf("trigger before the window boundary (store %d)", i)
		}
	}
	if _, ok := d.Observe(mem.Addr(7*64), 8); !ok {
		t.Fatal("8th store should check and trigger")
	}
	// After the check both the counter and the store count reset: the next
	// 7 stores must not trigger even though the stream continues.
	for i := 8; i < 15; i++ {
		if _, ok := d.Observe(mem.Addr(i*64), 8); ok {
			t.Fatal("window state must reset after a check")
		}
	}
}

func TestNoBurstAtPageEnd(t *testing.T) {
	d := NewDetector(8, false)
	// Contiguous block-stride stores ending exactly at the last block of a
	// page: the check lands on block 63, leaving nothing to prefetch.
	base := mem.AddrOfBlock(mem.Block(mem.BlocksPerPage - 8))
	for i := 0; i < 8; i++ {
		b, ok := d.Observe(base+mem.Addr(i*64), 8)
		if ok {
			last := b.Start + mem.Block(b.Count-1)
			if mem.PageOfBlock(last) != 0 {
				t.Fatal("burst leaked past the page")
			}
		}
	}
	if d.Triggers != 0 {
		t.Fatal("a burst at the page's last block has nothing to fetch")
	}
}

func TestDynamicSizeVariantWith4ByteStores(t *testing.T) {
	// With 4-byte stores, 48 stores span 3 blocks (2 transitions); the
	// static threshold 48/8 = 6 misses the pattern but the dynamic variant
	// (threshold 48/16 = 3) eventually catches it.
	static := NewDetector(48, false)
	dynamic := NewDetector(48, true)
	var stTrig, dyTrig bool
	for i := 0; i < 1024; i++ {
		a := mem.Addr(i * 4)
		if _, ok := static.Observe(a, 4); ok {
			stTrig = true
		}
		if _, ok := dynamic.Observe(a, 4); ok {
			dyTrig = true
		}
	}
	if stTrig {
		t.Fatal("static detector must miss a 4-byte-store stream at N=48")
	}
	if !dyTrig {
		t.Fatal("dynamic-size detector should catch the 4-byte-store stream")
	}
}

func TestChecksCounted(t *testing.T) {
	d := NewDetector(8, false)
	for i := 0; i < 24; i++ {
		d.Observe(mem.Addr(0x100000+i*4*64), 8) // sparse: checks but no triggers
	}
	if d.Checks != 3 {
		t.Fatalf("Checks = %d, want 3", d.Checks)
	}
}

func TestReset(t *testing.T) {
	d := NewDetector(8, false)
	for i := 0; i < 5; i++ {
		d.Observe(mem.Addr(i*64), 8)
	}
	d.Reset()
	// After reset, a fresh window: 7 stores must not check/trigger.
	for i := 0; i < 7; i++ {
		if _, ok := d.Observe(mem.Addr(0x2000+i*64), 8); ok {
			t.Fatal("reset detector must start a fresh window")
		}
	}
}

func TestNewDetectorRejectsTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N < 8 should panic")
		}
	}()
	NewDetector(4, false)
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		PolicyNone:      "none",
		PolicyAtExecute: "at-execute",
		PolicyAtCommit:  "at-commit",
		PolicySPB:       "spb",
		PolicyIdeal:     "ideal",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if !PolicySPB.PrefetchesAtCommit() || !PolicyAtCommit.PrefetchesAtCommit() ||
		!PolicyIdeal.PrefetchesAtCommit() {
		t.Error("SPB/at-commit/ideal prefetch at commit")
	}
	if PolicyNone.PrefetchesAtCommit() || PolicyAtExecute.PrefetchesAtCommit() {
		t.Error("none/at-execute must not prefetch at commit")
	}
}

// Property: detector state is bounded — the saturating counter never
// exceeds its 4-bit range and the store count never exceeds N, regardless
// of the input stream (the 67-bit storage claim).
func TestDetectorStateBounded(t *testing.T) {
	f := func(addrs []uint32, sizes []uint8) bool {
		d := NewDetector(48, false)
		for i, a := range addrs {
			size := uint8(8)
			if i < len(sizes) && sizes[i]%8 != 0 {
				size = sizes[i]%64 + 1
			}
			d.Observe(mem.Addr(a), size)
			if d.satCounter > satCounterMax {
				return false
			}
			if d.storeCount >= d.n {
				return false // must reset at the window boundary
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
