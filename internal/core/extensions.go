package core

import "spb/internal/mem"

// Options selects the detector's optional extensions. The paper evaluates
// plain SPB only; these knobs implement the variants it discusses:
//
//   - Dynamic is the §IV.C store-size ablation (threshold N/S with a
//     learned S instead of N/8) — the paper found it slightly worse.
//   - Backward detects descending block patterns (e.g. stack writes) and
//     bursts from the current block down to the start of the page. The
//     paper judged it implementable but found no workload where backward
//     bursts cause SB stalls (§IV.A).
//   - CrossPage lets a forward burst continue into the next page, which a
//     virtual-address prefetcher could do (footnote 2); the paper did not
//     explore it because consecutive virtual pages need not map to
//     consecutive physical pages. The simulator's flat address space makes
//     it a clean what-if ablation.
type Options struct {
	Dynamic   bool
	Backward  bool
	CrossPage bool
}

// NewDetectorWithOptions returns a detector with the given extensions.
func NewDetectorWithOptions(n int, o Options) *Detector {
	d := NewDetector(n, o.Dynamic)
	d.backward = o.Backward
	d.crossPage = o.CrossPage
	return d
}

// observeBackward updates the descending-pattern counter; mirror image of
// the forward path in Observe.
func (d *Detector) observeBackward(block mem.Block) {
	if d.lastBlock-block == 1 {
		if d.backCounter < satCounterMax {
			d.backCounter++
		}
	} else if block != d.lastBlock {
		d.backCounter = 0
	}
}

// backwardBurst builds the burst for a confirmed descending pattern: every
// block of the page strictly before the current one, ascending order (the
// L1 controller issues them oldest-address-first; ordering among prefetches
// is immaterial).
func (d *Detector) backwardBurst(block mem.Block) (Burst, bool) {
	first := block &^ (mem.BlocksPerPage - 1)
	count := int(block - first)
	if count == 0 {
		return Burst{}, false
	}
	page := mem.PageOfBlock(block)
	if d.hasLastBurstPage && page == d.lastBurstPage {
		return Burst{}, false
	}
	d.Triggers++
	d.lastBurstPage = page
	d.hasLastBurstPage = true
	return Burst{Start: first, Count: count}, true
}
