package core

// DetectorSnapshot is a copy of the SPB detector's full state (warm-start
// support, DESIGN.md §12). The detector holds no reference types, so a value
// copy is a deep copy.
type DetectorSnapshot struct {
	d Detector
}

// Snapshot copies the detector state.
func (d *Detector) Snapshot() DetectorSnapshot { return DetectorSnapshot{d: *d} }

// Restore overwrites the detector state with the snapshot's.
func (d *Detector) Restore(s DetectorSnapshot) { *d = s.d }
