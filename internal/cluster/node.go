package cluster

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spb/internal/faults"
	"spb/internal/sim"
)

// Load is a backend's instantaneous pressure, piggybacked on gossip.
type Load struct {
	Queue    int
	Inflight int
	Workers  int
	Draining bool
}

// StolenJob is one unit of work handed from a victim to a thief. The spec is
// carried whole (it is the identity of the simulation); the key is the
// victim's content address for it, which the thief re-derives and both sides
// use to converge their caches.
type StolenJob struct {
	ID   string      `json:"id"`
	Key  string      `json:"key"`
	Spec sim.RunSpec `json:"spec"`
}

// Backend is the node's hook into the daemon it serves (implemented by
// *server.Server). The cluster package stays ignorant of queues, tenants and
// HTTP handlers — it only needs to move jobs and read the local cache.
type Backend interface {
	// Load reports current pressure for gossip piggybacking.
	Load() Load
	// StealJobs pops up to max queued jobs into the backend's handoff
	// table (ownership transfers to the caller). Draining or empty queues
	// return nil.
	StealJobs(max int) []StolenJob
	// CompleteStolen delivers a stolen job's terminal result (errMsg != ""
	// for failures). It reports false when the handoff is unknown —
	// already reclaimed, or completed twice.
	CompleteStolen(id string, res sim.Result, errMsg string) bool
	// ReclaimStolen re-enqueues handoffs older than the deadline (the
	// thief went silent) and reports how many it took back.
	ReclaimStolen(olderThan time.Duration) int
	// ReadLocal serves the peer read-through protocol from the local disk
	// tier only — never simulates, never recurses into peers.
	ReadLocal(key string) (sim.Result, bool)
	// RunStolen executes a stolen spec locally (cache tiers consulted
	// first) and returns the result.
	RunStolen(ctx context.Context, spec sim.RunSpec) (sim.Result, error)
}

// Config assembles a Node.
type Config struct {
	// ID names this node in the member table (default: Advertise).
	ID string
	// Advertise is the base URL peers reach this node at (required), e.g.
	// "http://10.0.0.7:7077".
	Advertise string
	// Seeds are base URLs of existing fleet members to join through. A
	// node with no seeds starts a one-node fleet others join.
	Seeds []string

	// GossipInterval is the anti-entropy period (default 500ms).
	GossipInterval time.Duration
	// Fanout is how many peers each gossip round contacts (default 2).
	Fanout int
	// SuspectAfter marks a member suspect when nothing fresh has been
	// heard about it for this long (default 5×GossipInterval).
	SuspectAfter time.Duration
	// RemoveAfter prunes a member from the table (default 60×GossipInterval).
	RemoveAfter time.Duration

	// DisableSteal turns the work-stealing loop off (gossip and peer reads
	// keep running).
	DisableSteal bool
	// StealInterval is how often an idle node looks for a victim
	// (default 250ms).
	StealInterval time.Duration
	// StealThreshold is the minimum victim queue depth worth stealing from
	// (default 2: never steal a queue's last dregs, the victim's own
	// workers are about to take them).
	StealThreshold int
	// StealMax caps jobs taken per steal request (default: the thief's
	// free worker capacity).
	StealMax int
	// StealTimeout is the victim-side reclaim deadline: a handoff with no
	// completion for this long is re-enqueued locally (default 30s).
	StealTimeout time.Duration

	// Secret, when non-empty, authenticates the cluster plane: every node
	// sends it in the X-Spb-Cluster-Key header on gossip/steal/peer calls
	// and rejects inbound protocol requests without it (401). It must be
	// identical fleet-wide. Empty leaves the plane open — acceptable only
	// on trusted networks; always set it alongside tenant auth, or the
	// steal/peer endpoints hand out RunSpecs and results keylessly.
	Secret string

	// DisablePeerRead turns the cache read-through off.
	DisablePeerRead bool
	// PeerFanout is how many rendezvous-ranked peers a read-through
	// consults before giving up (default 2).
	PeerFanout int
	// PeerReadTimeout bounds each peer read (default 500ms — a disk read
	// plus one RTT; anything slower is cheaper to simulate).
	PeerReadTimeout time.Duration

	// HTTPClient overrides the transport for gossip/steal/peer calls.
	HTTPClient *http.Client
	// Faults, when set, injects failures at the cluster sites
	// ("gossip.drop", "steal.cut", "peer.read"). Nil disables injection.
	Faults *faults.Injector
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Epoch overrides the incarnation number (tests; default: unix-nanos
	// at New).
	Epoch uint64
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = c.Advertise
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 500 * time.Millisecond
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 5 * c.GossipInterval
	}
	if c.RemoveAfter <= 0 {
		c.RemoveAfter = 60 * c.GossipInterval
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 250 * time.Millisecond
	}
	if c.StealThreshold <= 0 {
		c.StealThreshold = 2
	}
	if c.StealTimeout <= 0 {
		c.StealTimeout = 30 * time.Second
	}
	if c.PeerFanout <= 0 {
		c.PeerFanout = 2
	}
	if c.PeerReadTimeout <= 0 {
		c.PeerReadTimeout = 500 * time.Millisecond
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Epoch == 0 {
		c.Epoch = uint64(time.Now().UnixNano())
	}
	return c
}

// NodeStats are the node's own protocol counters, exported under
// spbd_cluster_* at /metrics.
type NodeStats struct {
	GossipRounds   atomic.Uint64 // exchanges initiated
	GossipFailures atomic.Uint64 // exchanges that errored (peer down, injected drop)
	StealRequests  atomic.Uint64 // steal attempts initiated (thief side)
	StealJobsTaken atomic.Uint64 // jobs received from victims (thief side)
	PeerLookups    atomic.Uint64 // read-through probes sent
	PeerFetched    atomic.Uint64 // read-through probes answered with a result
}

// Node runs the cluster protocols for one daemon. Create with New, mount its
// handlers (server.AttachCluster), then Start; Stop before draining the
// daemon.
type Node struct {
	cfg   Config
	be    Backend
	table *Table
	rng   *rand.Rand // gossip/steal peer selection; guarded by rngMu
	rngMu sync.Mutex

	beat  atomic.Uint64
	stats NodeStats

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a node for the given backend. The node is inert until Start.
func New(cfg Config, be Backend) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: Advertise is required")
	}
	cfg.Advertise = normalizeURL(cfg.Advertise)
	for i, s := range cfg.Seeds {
		cfg.Seeds[i] = normalizeURL(s)
	}
	n := &Node{
		cfg:   cfg,
		be:    be,
		table: NewTable(),
		rng:   rand.New(rand.NewSource(int64(cfg.Epoch))),
		stop:  make(chan struct{}),
	}
	// Seed the table with ourselves so the first gossip already carries us.
	n.table.Merge(n.self(), time.Now())
	return n, nil
}

// normalizeURL mirrors client.Pool's base normalization so the same daemon
// is never known under two spellings.
func normalizeURL(u string) string {
	u = strings.TrimSpace(u)
	if u == "" {
		return u
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

// ID reports the node's member ID.
func (n *Node) ID() string { return n.cfg.ID }

// Epoch reports the node's incarnation number.
func (n *Node) Epoch() uint64 { return n.cfg.Epoch }

// StealTimeout reports the victim-side reclaim deadline. server.Drain uses
// it to keep reclaiming silent thieves' handoffs after Stop has halted the
// node's own janitor loop.
func (n *Node) StealTimeout() time.Duration { return n.cfg.StealTimeout }

// self renders this node's current member record (fresh beat + load).
func (n *Node) self() Member {
	ld := n.be.Load()
	return Member{
		ID:       n.cfg.ID,
		URL:      n.cfg.Advertise,
		Epoch:    n.cfg.Epoch,
		Beat:     n.beat.Load(),
		Queue:    ld.Queue,
		Inflight: ld.Inflight,
		Workers:  ld.Workers,
		Draining: ld.Draining,
	}
}

// Members snapshots the node's membership view (self included), states
// derived from local observation age.
func (n *Node) Members() []Member {
	now := time.Now()
	n.table.Merge(n.self(), now) // self is always fresh
	return n.table.Snapshot(now, n.cfg.SuspectAfter, n.cfg.RemoveAfter)
}

// Stats exposes the protocol counters (metrics, tests).
func (n *Node) Stats() *NodeStats { return &n.stats }

// Start launches the gossip and steal loops.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.gossipLoop()
	n.wg.Add(1)
	go n.stealLoop()
}

// Stop halts the loops and waits for them. Safe to call more than once.
func (n *Node) Stop() {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// ---- gossip -------------------------------------------------------------

// gossipRequest is one anti-entropy exchange: the initiator's self record
// plus its full member table; the response mirrors the shape back.
type gossipRequest struct {
	From    Member   `json:"from"`
	Members []Member `json:"members"`
}

// MembersView is the document served at GET /v1/cluster/members: the node's
// own record plus its membership snapshot. client.Pool consumes it to track
// live membership.
type MembersView struct {
	Self    Member   `json:"self"`
	Members []Member `json:"members"`
}

func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.beat.Add(1)
		n.gossipOnce()
	}
}

// gossipOnce exchanges tables with up to Fanout peers. Candidate targets are
// everything in the table plus the configured seeds — seeds stay reachable
// through partitions that empty the table.
func (n *Node) gossipOnce() {
	targets := n.gossipTargets()
	for _, url := range targets {
		n.stats.GossipRounds.Add(1)
		if err := n.cfg.Faults.Err("gossip.drop"); err != nil {
			n.stats.GossipFailures.Add(1)
			continue // this round's exchange with this peer is lost
		}
		if err := n.exchange(url); err != nil {
			n.stats.GossipFailures.Add(1)
			n.cfg.Logf("cluster: gossip with %s failed: %v", url, err)
		}
	}
}

func (n *Node) gossipTargets() []string {
	seen := map[string]bool{n.cfg.Advertise: true}
	var cands []string
	for _, m := range n.Members() {
		if !seen[m.URL] {
			seen[m.URL] = true
			cands = append(cands, m.URL)
		}
	}
	for _, s := range n.cfg.Seeds {
		if !seen[s] {
			seen[s] = true
			cands = append(cands, s)
		}
	}
	n.rngMu.Lock()
	n.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	n.rngMu.Unlock()
	if len(cands) > n.cfg.Fanout {
		cands = cands[:n.cfg.Fanout]
	}
	return cands
}

// protoTimeout scales an HTTP deadline with its protocol interval but
// floors it at 2s: the scaled value bounds how stale an answer can be
// worth merging, while the floor keeps aggressive (sub-100ms, test-speed)
// intervals from starving exchanges on a heavily loaded host.
func protoTimeout(d time.Duration) time.Duration {
	if d < 2*time.Second {
		return 2 * time.Second
	}
	return d
}

// exchange POSTs our table to one peer and merges its response.
func (n *Node) exchange(url string) error {
	req := gossipRequest{From: n.self(), Members: n.Members()}
	var resp gossipRequest
	if err := n.postJSON(url+"/v1/cluster/gossip", req, &resp, protoTimeout(n.cfg.GossipInterval*4)); err != nil {
		return err
	}
	now := time.Now()
	n.table.MergeAll(resp.Members, now)
	if resp.From.ID != "" {
		n.table.Merge(resp.From, now)
		n.table.Touch(resp.From.ID, now) // answering is proof of life
	}
	return nil
}

// ClusterKeyHeader carries the shared fleet secret on every cluster-plane
// request (gossip, steal, steal/complete, peer reads).
const ClusterKeyHeader = "X-Spb-Cluster-Key"

// authorize gates one inbound cluster-plane request. With no secret
// configured the plane is open; with one, a missing or wrong header is
// rejected with 401 (constant-time compare, no oracle). The membership view
// (HandleMembers) is deliberately not gated — clients discover the fleet
// through it and it carries topology only, never specs or results.
func (n *Node) authorize(w http.ResponseWriter, r *http.Request) bool {
	if n.cfg.Secret == "" {
		return true
	}
	got := r.Header.Get(ClusterKeyHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(n.cfg.Secret)) == 1 {
		return true
	}
	http.Error(w, "missing or invalid cluster key", http.StatusUnauthorized)
	return false
}

// HandleGossip is POST /v1/cluster/gossip: merge the initiator's table and
// answer with ours.
func (n *Node) HandleGossip(w http.ResponseWriter, r *http.Request) {
	if !n.authorize(w, r) {
		return
	}
	var req gossipRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	n.table.MergeAll(req.Members, now)
	if req.From.ID != "" {
		n.table.Merge(req.From, now)
		n.table.Touch(req.From.ID, now)
	}
	resp := gossipRequest{From: n.self(), Members: n.Members()}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// HandleMembers is GET /v1/cluster/members.
func (n *Node) HandleMembers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(MembersView{Self: n.self(), Members: n.Members()})
}

// ---- work stealing ------------------------------------------------------

type stealRequest struct {
	Thief string `json:"thief"` // thief's advertise URL (logs)
	Max   int    `json:"max"`
}

type stealResponse struct {
	Jobs []StolenJob `json:"jobs"`
}

type stealCompleteRequest struct {
	ID     string      `json:"id"`
	Error  string      `json:"error,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
}

func (n *Node) stealLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		// Victim-side janitor: take back handoffs whose thief went silent.
		if taken := n.be.ReclaimStolen(n.cfg.StealTimeout); taken > 0 {
			n.cfg.Logf("cluster: reclaimed %d stolen jobs (thief silent past %v)", taken, n.cfg.StealTimeout)
		}
		if n.cfg.DisableSteal {
			continue
		}
		n.stealOnce()
	}
}

// stealOnce steals from the most loaded alive peer when this node has free
// worker capacity. Stolen jobs run on goroutines of their own — they are
// bounded by the free capacity computed here, deliberately bypassing the
// local admission queue (stolen work must not be re-stealable or rejectable,
// it already has an owner waiting).
func (n *Node) stealOnce() {
	ld := n.be.Load()
	free := ld.Workers - ld.Inflight - ld.Queue
	if ld.Draining || free <= 0 {
		return
	}
	if n.cfg.StealMax > 0 && free > n.cfg.StealMax {
		free = n.cfg.StealMax
	}
	victim, ok := n.pickVictim()
	if !ok {
		return
	}
	n.stats.StealRequests.Add(1)
	var resp stealResponse
	err := n.postJSON(victim.URL+"/v1/cluster/steal",
		stealRequest{Thief: n.cfg.Advertise, Max: free}, &resp, protoTimeout(n.cfg.StealInterval*8))
	if err != nil {
		n.cfg.Logf("cluster: steal from %s failed: %v", victim.URL, err)
		return
	}
	if len(resp.Jobs) == 0 {
		return
	}
	n.stats.StealJobsTaken.Add(uint64(len(resp.Jobs)))
	n.cfg.Logf("cluster: stole %d jobs from %s (its queue %d)", len(resp.Jobs), victim.URL, victim.Queue)
	for _, job := range resp.Jobs {
		n.wg.Add(1)
		go func(job StolenJob, victimURL string) {
			defer n.wg.Done()
			n.runStolen(job, victimURL)
		}(job, victim.URL)
	}
}

// pickVictim selects the alive, non-draining peer with the deepest queue at
// or above the steal threshold.
func (n *Node) pickVictim() (Member, bool) {
	var best Member
	found := false
	for _, m := range n.Members() {
		if m.ID == n.cfg.ID || m.State != StateAlive || m.Draining {
			continue
		}
		if m.Queue < n.cfg.StealThreshold {
			continue
		}
		if !found || m.Queue > best.Queue {
			best = m
			found = true
		}
	}
	return best, found
}

// runStolen executes one stolen job and reports the terminal result back to
// its victim. Delivery retries a few times; a victim that stays unreachable
// reclaims the job itself after StealTimeout — the simulation was not
// wasted, the result is in our caches and the next peer read finds it.
func (n *Node) runStolen(job StolenJob, victimURL string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { // stolen runs die with the node
		select {
		case <-n.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	res, err := n.be.RunStolen(ctx, job.Spec)
	if err != nil && ctx.Err() != nil {
		// This node is shutting down (ctx is only ever cancelled via
		// n.stop) — the error is our cancellation, not the simulation's
		// verdict. Deliver nothing: posting it would make the victim mark
		// the job failed and abort client sweeps over a routine rolling
		// restart. Staying silent is the designed path — the victim's
		// reclaim janitor re-queues the job after StealTimeout.
		n.cfg.Logf("cluster: abandoning stolen job %s at shutdown; %s will reclaim it", job.ID, victimURL)
		return
	}
	comp := stealCompleteRequest{ID: job.ID}
	if err != nil {
		comp.Error = err.Error()
	} else {
		comp.Result = &res
	}
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-n.stop:
				return
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			}
		}
		if perr := n.postJSON(victimURL+"/v1/cluster/steal/complete", comp, nil, protoTimeout(n.cfg.StealTimeout/2)); perr == nil {
			return
		}
	}
	n.cfg.Logf("cluster: could not deliver stolen job %s back to %s; victim will reclaim", job.ID, victimURL)
}

// HandleSteal is POST /v1/cluster/steal: pop queued jobs into the handoff
// table and hand them to the thief. The "steal.cut" fault fires *after*
// ownership transferred, severing the response — the deterministic way to
// exercise the reclaim path.
func (n *Node) HandleSteal(w http.ResponseWriter, r *http.Request) {
	if !n.authorize(w, r) {
		return
	}
	var req stealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Max <= 0 {
		req.Max = 1
	}
	jobs := n.be.StealJobs(req.Max)
	if len(jobs) > 0 && n.cfg.Faults.Cut("steal.cut") {
		// The jobs are already popped; aborting here models a thief that
		// never heard the answer. http.Server recovers this panic by
		// closing the connection without a response.
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(stealResponse{Jobs: jobs})
}

// HandleStealComplete is POST /v1/cluster/steal/complete: the thief
// delivering a stolen job's terminal result.
func (n *Node) HandleStealComplete(w http.ResponseWriter, r *http.Request) {
	if !n.authorize(w, r) {
		return
	}
	var req stealCompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var res sim.Result
	if req.Result != nil {
		res = *req.Result
	} else if req.Error == "" {
		http.Error(w, "steal completion carries neither result nor error", http.StatusBadRequest)
		return
	}
	if !n.be.CompleteStolen(req.ID, res, req.Error) {
		// Unknown handoff: reclaimed already, or a duplicate delivery. 410
		// tells the thief not to retry; nothing is wrong — the result also
		// lives in the thief's caches.
		http.Error(w, "unknown or reclaimed handoff", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- cache peering ------------------------------------------------------

// HandlePeerRead is GET /v1/peer/results/{key}: serve the local disk tier,
// never simulate. The "peer.read" fault fails the endpoint server-side.
func (n *Node) HandlePeerRead(w http.ResponseWriter, r *http.Request) {
	if !n.authorize(w, r) {
		return
	}
	if err := n.cfg.Faults.Err("peer.read"); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	key := r.PathValue("key")
	res, ok := n.be.ReadLocal(key)
	if !ok {
		http.Error(w, "not cached here", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// FetchPeer asks the top PeerFanout alive peers in key's rendezvous order
// for a cached result. Rendezvous ranking matters: client.Pool shards sweeps
// by the same hash, so the peer most likely to hold a key is asked first.
// Returns the result and the answering peer's URL.
func (n *Node) FetchPeer(key string) (sim.Result, string, bool) {
	if n.cfg.DisablePeerRead {
		return sim.Result{}, "", false
	}
	peers := n.rankPeers(key)
	if len(peers) > n.cfg.PeerFanout {
		peers = peers[:n.cfg.PeerFanout]
	}
	for _, url := range peers {
		n.stats.PeerLookups.Add(1)
		res, ok := n.fetchOne(url, key)
		if ok {
			n.stats.PeerFetched.Add(1)
			return res, url, true
		}
	}
	return sim.Result{}, "", false
}

// rankPeers orders alive peers (self excluded) by descending rendezvous
// score for key — the same fnv64a(backend, 0, key) ranking client.Pool uses
// for sharding.
func (n *Node) rankPeers(key string) []string {
	type scored struct {
		url   string
		score uint64
	}
	var cands []scored
	for _, m := range n.Members() {
		if m.ID == n.cfg.ID || m.State != StateAlive {
			continue
		}
		cands = append(cands, scored{url: m.URL, score: rendezvousScore(key, m.URL)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	urls := make([]string, len(cands))
	for i, c := range cands {
		urls[i] = c.url
	}
	return urls
}

// rendezvousScore is the stable (key, backend) weight shared with
// client.Pool's sharding: highest score owns the key.
func rendezvousScore(key, backend string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, backend)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

func (n *Node) fetchOne(url, key string) (sim.Result, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PeerReadTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/peer/results/"+key, nil)
	if err != nil {
		return sim.Result{}, false
	}
	if n.cfg.Secret != "" {
		req.Header.Set(ClusterKeyHeader, n.cfg.Secret)
	}
	resp, err := n.cfg.HTTPClient.Do(req)
	if err != nil {
		return sim.Result{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return sim.Result{}, false
	}
	return res, true
}

// ---- plumbing -----------------------------------------------------------

func (n *Node) postJSON(url string, body, out any, timeout time.Duration) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if n.cfg.Secret != "" {
		req.Header.Set(ClusterKeyHeader, n.cfg.Secret)
	}
	resp, err := n.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// WriteMetrics renders the node's spbd_cluster_* gauges and counters in
// Prometheus text format (appended to the daemon's /metrics page).
func (n *Node) WriteMetrics(w io.Writer) {
	alive, suspect := 0, 0
	for _, m := range n.Members() {
		switch m.State {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		}
	}
	fmt.Fprintf(w, "# HELP spbd_cluster_members Fleet members in this node's table, by state.\n# TYPE spbd_cluster_members gauge\n")
	fmt.Fprintf(w, "spbd_cluster_members{state=%q} %d\n", StateAlive, alive)
	fmt.Fprintf(w, "spbd_cluster_members{state=%q} %d\n", StateSuspect, suspect)
	fmt.Fprintf(w, "# HELP spbd_cluster_self_epoch This node's liveness epoch (unix nanos at start).\n# TYPE spbd_cluster_self_epoch gauge\nspbd_cluster_self_epoch %d\n", n.cfg.Epoch)
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("spbd_cluster_gossip_rounds_total", "Gossip exchanges initiated.", n.stats.GossipRounds.Load())
	counter("spbd_cluster_gossip_failures_total", "Gossip exchanges that failed (peer down or injected drop).", n.stats.GossipFailures.Load())
	counter("spbd_cluster_steal_requests_total", "Steal attempts initiated by this node (thief side).", n.stats.StealRequests.Load())
	counter("spbd_cluster_steal_jobs_taken_total", "Jobs received from victims (thief side).", n.stats.StealJobsTaken.Load())
	counter("spbd_cluster_peer_lookups_total", "Peer cache read-through probes sent.", n.stats.PeerLookups.Load())
	counter("spbd_cluster_peer_fetched_total", "Peer cache read-through probes that returned a result.", n.stats.PeerFetched.Load())
}
