package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spb/internal/sim"
)

func member(id string, epoch, beat uint64) Member {
	return Member{ID: id, URL: "http://" + id, Epoch: epoch, Beat: beat}
}

func TestTableMergeOrdering(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	if !tb.Merge(member("a", 5, 1), now) {
		t.Fatal("first observation should advance the table")
	}
	if tb.Merge(member("a", 5, 1), now) {
		t.Error("identical observation should not advance")
	}
	if !tb.Merge(member("a", 5, 2), now) {
		t.Error("higher beat within the epoch should advance")
	}
	if tb.Merge(member("a", 4, 99), now) {
		t.Error("older epoch must lose regardless of beat")
	}
	if !tb.Merge(member("a", 6, 0), now) {
		t.Error("newer epoch must win regardless of beat")
	}
	if tb.Merge(Member{}, now) {
		t.Error("empty member must be rejected")
	}
	if got := tb.Len(); got != 1 {
		t.Errorf("table has %d entries, want 1", got)
	}
}

func TestSnapshotSuspectAndPrune(t *testing.T) {
	tb := NewTable()
	base := time.Now()
	tb.Merge(member("fresh", 1, 1), base)
	tb.Merge(member("stale", 1, 1), base.Add(-2*time.Second))
	tb.Merge(member("gone", 1, 1), base.Add(-11*time.Second))

	ms := tb.Snapshot(base, time.Second, 10*time.Second)
	if len(ms) != 2 {
		t.Fatalf("snapshot has %d members, want 2 (the 11s-old one pruned): %+v", len(ms), ms)
	}
	states := map[string]string{}
	for _, m := range ms {
		states[m.ID] = m.State
	}
	if states["fresh"] != StateAlive {
		t.Errorf("fresh member state = %q, want alive", states["fresh"])
	}
	if states["stale"] != StateSuspect {
		t.Errorf("stale member state = %q, want suspect", states["stale"])
	}
	if tb.Len() != 2 {
		t.Errorf("pruned entry still in table: len %d", tb.Len())
	}
}

// stubBackend is a minimal Backend for protocol tests: a queue of pre-loaded
// stolen jobs, a handoff table, and counters.
type stubBackend struct {
	mu        sync.Mutex
	load      Load
	queue     []StolenJob
	handoffs  map[string]time.Time
	completed map[string]int // terminal deliveries per job id
	results   map[string]sim.Result
	runs      int
}

func newStubBackend(load Load) *stubBackend {
	return &stubBackend{
		load:      load,
		handoffs:  make(map[string]time.Time),
		completed: make(map[string]int),
		results:   make(map[string]sim.Result),
	}
}

func (b *stubBackend) Load() Load {
	b.mu.Lock()
	defer b.mu.Unlock()
	ld := b.load
	ld.Queue = len(b.queue)
	return ld
}

func (b *stubBackend) StealJobs(max int) []StolenJob {
	b.mu.Lock()
	defer b.mu.Unlock()
	if max > len(b.queue) {
		max = len(b.queue)
	}
	out := b.queue[:max]
	b.queue = b.queue[max:]
	for _, j := range out {
		b.handoffs[j.ID] = time.Now()
	}
	return out
}

func (b *stubBackend) CompleteStolen(id string, res sim.Result, errMsg string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.handoffs[id]; !ok {
		return false
	}
	delete(b.handoffs, id)
	b.completed[id]++
	return true
}

func (b *stubBackend) ReclaimStolen(olderThan time.Duration) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for id, at := range b.handoffs {
		if time.Since(at) > olderThan {
			delete(b.handoffs, id)
			b.queue = append(b.queue, StolenJob{ID: id})
			n++
		}
	}
	return n
}

func (b *stubBackend) ReadLocal(key string) (sim.Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	res, ok := b.results[key]
	return res, ok
}

func (b *stubBackend) RunStolen(ctx context.Context, spec sim.RunSpec) (sim.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.runs++
	return sim.Result{Spec: spec}, nil
}

func (b *stubBackend) completedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, c := range b.completed {
		n += c
	}
	return n
}

// testNode wires a node + stub backend behind an httptest server with the
// same routes server.AttachCluster mounts.
func testNode(t *testing.T, be Backend, cfg Config) (*Node, *httptest.Server) {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	cfg.Advertise = ts.URL
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = 15 * time.Millisecond
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = 15 * time.Millisecond
	}
	cfg.Logf = t.Logf
	n, err := New(cfg, be)
	if err != nil {
		t.Fatal(err)
	}
	mux.HandleFunc("POST /v1/cluster/gossip", n.HandleGossip)
	mux.HandleFunc("GET /v1/cluster/members", n.HandleMembers)
	mux.HandleFunc("POST /v1/cluster/steal", n.HandleSteal)
	mux.HandleFunc("POST /v1/cluster/steal/complete", n.HandleStealComplete)
	mux.HandleFunc("GET /v1/peer/results/{key}", n.HandlePeerRead)
	t.Cleanup(func() {
		n.Stop()
		ts.Close()
	})
	return n, ts
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGossipConvergence: three nodes seeded only through the first converge
// on a full membership view, and after convergence a peer read-through finds
// a result cached on another node.
func TestGossipConvergence(t *testing.T) {
	backends := make([]*stubBackend, 3)
	nodes := make([]*Node, 3)
	var seeds []string
	for i := range nodes {
		backends[i] = newStubBackend(Load{Workers: 2})
		cfg := Config{ID: fmt.Sprintf("n%d", i), Epoch: uint64(i + 1), Seeds: seeds, DisableSteal: true}
		n, ts := testNode(t, backends[i], cfg)
		nodes[i] = n
		if i == 0 {
			seeds = []string{ts.URL} // later nodes join through node 0 only
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	for i, n := range nodes {
		n := n
		waitFor(t, 5*time.Second, fmt.Sprintf("node %d to see 3 alive members", i), func() bool {
			alive := 0
			for _, m := range n.Members() {
				if m.State == StateAlive {
					alive++
				}
			}
			return alive == 3
		})
	}

	// Cache peering across the converged fleet: node 1 holds a result that
	// node 0 can fetch by key.
	res := sim.Result{Spec: sim.RunSpec{Workload: "bwaves"}}
	backends[1].mu.Lock()
	backends[1].results["deadbeef"] = res
	backends[1].mu.Unlock()
	backends[2].mu.Lock()
	backends[2].results["deadbeef"] = res
	backends[2].mu.Unlock()
	got, from, ok := nodes[0].FetchPeer("deadbeef")
	if !ok {
		t.Fatal("FetchPeer found nothing despite two peers holding the key")
	}
	if got.Spec.Workload != "bwaves" {
		t.Errorf("fetched result spec = %+v", got.Spec)
	}
	if from == "" {
		t.Error("FetchPeer did not report the answering peer")
	}
	if nodes[0].Stats().PeerFetched.Load() == 0 {
		t.Error("PeerFetched counter did not advance")
	}
}

// TestRestartSupersedes: a member reappearing with a higher epoch replaces
// its old incarnation instead of being discarded as stale.
func TestRestartSupersedes(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	tb.Merge(member("n1", 100, 500), now)
	if !tb.Merge(member("n1", 200, 1), now) {
		t.Fatal("restarted incarnation (higher epoch, lower beat) must supersede")
	}
	ms := tb.Snapshot(now, time.Minute, time.Hour)
	if len(ms) != 1 || ms[0].Epoch != 200 {
		t.Fatalf("snapshot = %+v, want the epoch-200 incarnation", ms)
	}
}

// blockingBackend runs stolen jobs until their context is cancelled —
// standing in for a thief mid-simulation at shutdown.
type blockingBackend struct {
	*stubBackend
	started chan struct{} // closed when the first stolen run is executing
	once    sync.Once
}

func (b *blockingBackend) RunStolen(ctx context.Context, spec sim.RunSpec) (sim.Result, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return sim.Result{}, ctx.Err()
}

// TestShutdownAbandonsStolenJobs: a thief stopped mid-run must NOT deliver
// its own cancellation as the job's terminal failure — it stays silent so
// the victim's reclaim janitor re-queues the work. A rolling restart of one
// node must never fail other nodes' jobs.
func TestShutdownAbandonsStolenJobs(t *testing.T) {
	victim := newStubBackend(Load{Workers: 1, Inflight: 1})
	victim.queue = append(victim.queue, StolenJob{
		ID: "job-0", Key: "key-0", Spec: sim.RunSpec{Workload: "bwaves", Seed: 1},
	})
	thief := &blockingBackend{
		stubBackend: newStubBackend(Load{Workers: 4}),
		started:     make(chan struct{}),
	}

	vNode, vTS := testNode(t, victim, Config{ID: "victim", Epoch: 1, DisableSteal: true})
	tNode, _ := testNode(t, thief, Config{ID: "thief", Epoch: 2, Seeds: []string{vTS.URL}, StealThreshold: 1})
	vNode.Start()
	tNode.Start()

	select {
	case <-thief.started:
	case <-time.After(5 * time.Second):
		t.Fatal("the thief never began executing a stolen job")
	}
	// Graceful shutdown: cancels the in-flight stolen run and waits for its
	// goroutine, so any (wrong) completion would have been posted by now.
	tNode.Stop()

	if got := victim.completedCount(); got != 0 {
		t.Errorf("victim received %d completions; a thief's shutdown must deliver none", got)
	}
	victim.mu.Lock()
	defer victim.mu.Unlock()
	if len(victim.handoffs) != 1 {
		t.Errorf("victim has %d handoffs, want 1 kept for the reclaim janitor", len(victim.handoffs))
	}
}

// TestClusterSecret: with a shared secret configured, keyless callers are
// rejected from every protocol endpoint (membership stays open for client
// discovery), and a fleet agreeing on the secret still steals end to end.
func TestClusterSecret(t *testing.T) {
	const secret = "fleet-s3cret"
	victim := newStubBackend(Load{Workers: 1, Inflight: 1})
	for i := 0; i < 2; i++ {
		victim.queue = append(victim.queue, StolenJob{
			ID:   fmt.Sprintf("job-%d", i),
			Key:  fmt.Sprintf("key-%d", i),
			Spec: sim.RunSpec{Workload: "bwaves", Seed: uint64(i + 1)},
		})
	}
	vNode, vTS := testNode(t, victim, Config{ID: "victim", Epoch: 1, DisableSteal: true, Secret: secret})

	probes := []struct{ method, path, body string }{
		{http.MethodPost, "/v1/cluster/steal", `{"thief":"intruder","max":8}`},
		{http.MethodPost, "/v1/cluster/steal/complete", `{"id":"job-0","error":"forged"}`},
		{http.MethodPost, "/v1/cluster/gossip", `{}`},
		{http.MethodGet, "/v1/peer/results/key-0", ""},
	}
	for _, wrongKey := range []string{"", "not-the-secret"} {
		for _, p := range probes {
			req, err := http.NewRequest(p.method, vTS.URL+p.path, strings.NewReader(p.body))
			if err != nil {
				t.Fatal(err)
			}
			if wrongKey != "" {
				req.Header.Set(ClusterKeyHeader, wrongKey)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("%s %s with key %q = %d, want 401", p.method, p.path, wrongKey, resp.StatusCode)
			}
		}
	}
	resp, err := http.Get(vTS.URL + "/v1/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("members view = %d, want 200 (discovery stays open)", resp.StatusCode)
	}
	if victim.completedCount() != 0 {
		t.Fatal("a forged completion got through")
	}

	// The secret-bearing fleet works end to end.
	thief := newStubBackend(Load{Workers: 4})
	tNode, _ := testNode(t, thief, Config{ID: "thief", Epoch: 2, Seeds: []string{vTS.URL}, Secret: secret})
	vNode.Start()
	tNode.Start()
	waitFor(t, 5*time.Second, "both stolen jobs to complete through the secured plane", func() bool {
		return victim.completedCount() == 2
	})
	if tNode.Stats().StealJobsTaken.Load() != 2 {
		t.Errorf("StealJobsTaken = %d, want 2", tNode.Stats().StealJobsTaken.Load())
	}
}

// TestStealRoundTrip: a loaded victim's queued jobs are stolen by an idle
// thief, executed there, and completed back exactly once each.
func TestStealRoundTrip(t *testing.T) {
	victim := newStubBackend(Load{Workers: 1, Inflight: 1})
	for i := 0; i < 3; i++ {
		victim.queue = append(victim.queue, StolenJob{
			ID:   fmt.Sprintf("job-%d", i),
			Key:  fmt.Sprintf("key-%d", i),
			Spec: sim.RunSpec{Workload: "bwaves", Seed: uint64(i + 1)},
		})
	}
	thief := newStubBackend(Load{Workers: 4})

	vNode, vTS := testNode(t, victim, Config{ID: "victim", Epoch: 1, DisableSteal: true})
	tNode, _ := testNode(t, thief, Config{ID: "thief", Epoch: 2, Seeds: []string{vTS.URL}})
	vNode.Start()
	tNode.Start()

	waitFor(t, 5*time.Second, "all 3 stolen jobs to complete back on the victim", func() bool {
		return victim.completedCount() == 3
	})
	victim.mu.Lock()
	defer victim.mu.Unlock()
	for id, c := range victim.completed {
		if c != 1 {
			t.Errorf("job %s completed %d times, want exactly 1", id, c)
		}
	}
	if len(victim.handoffs) != 0 {
		t.Errorf("%d handoffs left dangling", len(victim.handoffs))
	}
	if thief.runs != 3 {
		t.Errorf("thief executed %d jobs, want 3", thief.runs)
	}
	if tNode.Stats().StealJobsTaken.Load() != 3 {
		t.Errorf("StealJobsTaken = %d, want 3", tNode.Stats().StealJobsTaken.Load())
	}
}
