// Package cluster turns a set of spbd daemons into one elastic fleet.
// Three cooperating protocols, all running over the daemons' existing HTTP
// ports (no second listener, no new dependencies):
//
//   - Gossip membership: every node keeps a versioned member table and
//     periodically exchanges it with a few random peers (anti-entropy). A
//     member's identity carries a liveness *epoch* — the unix-nano at which
//     its process started — so a restarted daemon supersedes its old entry
//     everywhere without any coordination, and consumers (client.Pool) can
//     re-admit a backend they had written off. Load (queue depth, in-flight
//     runs, worker count, draining) piggybacks on every exchange, giving
//     each node an eventually-consistent view of fleet pressure at zero
//     extra request cost.
//
//   - Work stealing: an idle node (free worker capacity, empty queue) asks
//     the most loaded peer to hand over queued jobs. The victim *pops* the
//     jobs from its own queue into a handoff table before responding —
//     ownership transfers atomically, so a job is never runnable on two
//     nodes at once and the PR 3 "each point simulated once" invariant is
//     preserved. If the thief goes silent (crash, severed response), the
//     victim's reclaim janitor re-enqueues the job after a deadline; the
//     rare reclaim race is harmless because results are content-addressed —
//     a duplicate simulation of the same key is byte-identical by
//     construction and both sides' caches converge on one entry.
//
//   - Cache peering: before simulating a miss, a node asks the top peers in
//     the key's rendezvous order for the result from *their* disk tier
//     (GET /v1/peer/results/{key}). SHA-256 content addressing makes this
//     trivially safe — a key names exactly one result — so a sweep re-run
//     against any node of the fleet reuses every other node's cache.
//
// Fault sites (DESIGN.md §10): "gossip.drop" skips a gossip exchange,
// "steal.cut" severs a steal response after ownership transferred (forcing
// the reclaim path), "peer.read" fails the peer read-through endpoint.
package cluster

import (
	"sort"
	"sync"
	"time"
)

// Member is one node's view of one daemon in the fleet. Epoch and Beat
// together order observations of the same node: a higher Epoch is a newer
// *incarnation* (the process restarted), a higher Beat within an epoch is a
// fresher heartbeat. Load fields ride along so every node can pick steal
// victims and readiness without extra probes.
type Member struct {
	// ID names the node (default: its advertise URL).
	ID string `json:"id"`
	// URL is the node's advertised base URL, e.g. "http://10.0.0.7:7077".
	URL string `json:"url"`
	// Epoch is the incarnation number: unix-nanos at process start. A
	// restarted daemon gossips a strictly larger epoch and supersedes its
	// old entry fleet-wide.
	Epoch uint64 `json:"epoch"`
	// Beat is the heartbeat counter within an epoch, bumped once per gossip
	// round by the node itself.
	Beat uint64 `json:"beat"`

	// Piggybacked load, from the node's own gossip of itself.
	Queue    int  `json:"queue"`
	Inflight int  `json:"inflight"`
	Workers  int  `json:"workers"`
	Draining bool `json:"draining"`

	// State is filled in snapshots: "alive" or "suspect" (no fresh
	// observation within the suspect window). Not gossiped — each node
	// derives it from its own observation times.
	State string `json:"state,omitempty"`
}

// newer reports whether a is a strictly fresher observation than b of the
// same node: higher epoch wins; within an epoch, higher beat wins.
func newer(a, b Member) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	return a.Beat > b.Beat
}

// Member states as rendered in snapshots.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
)

// tableEntry pairs a member observation with the local wall-clock time it
// last advanced — the basis for suspicion and removal, which are local
// judgments (clocks are never compared across nodes).
type tableEntry struct {
	m        Member
	lastSeen time.Time
}

// Table is the versioned member table one node maintains. All methods are
// safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	entries map[string]*tableEntry // by Member.ID
}

// NewTable returns an empty member table.
func NewTable() *Table {
	return &Table{entries: make(map[string]*tableEntry)}
}

// Merge folds one observation into the table, applying the gossip ordering
// rule (higher epoch wins; same epoch, higher beat wins). It reports whether
// the observation advanced the table. now is the local receive time.
func (t *Table) Merge(m Member, now time.Time) bool {
	if m.ID == "" || m.URL == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[m.ID]
	if !ok {
		t.entries[m.ID] = &tableEntry{m: m, lastSeen: now}
		return true
	}
	if !newer(m, e.m) {
		return false
	}
	e.m = m
	e.lastSeen = now
	return true
}

// MergeAll folds a batch of observations (one gossip exchange) and reports
// how many advanced the table.
func (t *Table) MergeAll(ms []Member, now time.Time) int {
	n := 0
	for _, m := range ms {
		if t.Merge(m, now) {
			n++
		}
	}
	return n
}

// Snapshot returns the current membership, sorted by ID, with State derived
// from local observation age: fresher than suspectAfter is "alive", older is
// "suspect". Entries not advanced within removeAfter are pruned — a node
// that died without draining eventually vanishes, and one that restarts
// reappears with a new epoch.
func (t *Table) Snapshot(now time.Time, suspectAfter, removeAfter time.Duration) []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Member, 0, len(t.entries))
	for id, e := range t.entries {
		age := now.Sub(e.lastSeen)
		if removeAfter > 0 && age > removeAfter {
			delete(t.entries, id)
			continue
		}
		m := e.m
		m.State = StateAlive
		if suspectAfter > 0 && age > suspectAfter {
			m.State = StateSuspect
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Touch refreshes a member's local observation time without changing its
// gossiped fields — used when a node hears from a peer directly (the
// exchange itself is proof of life even if the piggybacked beat was stale).
func (t *Table) Touch(id string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[id]; ok {
		e.lastSeen = now
	}
}

// Len reports how many members the table currently holds.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
