package memsys

import (
	"testing"

	"spb/internal/cache"
	"spb/internal/mem"
)

func TestForcePerformOnAbsentBlock(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	p.ForcePerform(0xB000, 0x400000, 10)
	l := p.L1().Peek(mem.BlockOf(0xB000))
	if l == nil || l.State != cache.Modified || l.ReadyAt > 10 {
		t.Fatalf("force-performed block should be Modified and ready, got %+v", l)
	}
}

func TestForcePerformStealsFromRemote(t *testing.T) {
	s := New(tiny(), 2)
	a, b := s.Port(0), s.Port(1)
	ra := a.StoreAcquire(0xC000, 0x400000, 0)
	a.PerformStore(0xC000, 0x400000, ra.Done)
	// Core 1's oldest store retires by force: core 0 must lose the block.
	b.ForcePerform(0xC000, 0x400000, ra.Done+5)
	if l := a.L1().Peek(mem.BlockOf(0xC000)); l != nil {
		t.Fatalf("remote copy must be invalidated, got %v", l.State)
	}
	if l := b.L1().Peek(mem.BlockOf(0xC000)); l == nil || l.State != cache.Modified {
		t.Fatal("forcing core must own the block")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestForcePerformCreditsPrefetch(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	p.PrefetchOwn(mem.BlockOf(0xD000), 0, true)
	p.ForcePerform(0xD000, 0x400000, 5) // while the prefetch is in flight
	if p.SPFSuccessful+p.SPFLate != 1 {
		t.Fatalf("forced store should consume the prefetch credit: succ=%d late=%d",
			p.SPFSuccessful, p.SPFLate)
	}
}
