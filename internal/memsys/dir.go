package memsys

import (
	"sync"

	"spb/internal/mem"
)

// dirTable is the directory's block → dirEntry index. It replaces the
// obvious map[mem.Block]*dirEntry: entries are stored inline in a sharded
// open-addressing table, so lookups touch one cache line instead of two
// (map bucket + heap-allocated entry) and steady-state operation allocates
// nothing. Deleted slots are recycled in place by backward-shift deletion —
// the table's free list is implicit in the probe sequence, so no tombstones
// accumulate and load factor stays honest.
//
// Sharding by the low hash bits keeps each grow/rehash small (one shard at a
// time) and keeps the probe arrays at a cache-friendly size.
type dirTable struct {
	shard [dirShards]dirShard
}

const (
	dirShards     = 16
	dirShardBits  = 4
	dirInitialCap = 1 << 10 // slots per shard; grows by doubling
)

type dirSlot struct {
	block mem.Block
	entry dirEntry
	// gen stamps the shard generation that wrote the slot; the slot is live
	// only while it matches. Bumping the shard generation empties a recycled
	// shard in O(1) without touching its (possibly megabytes of) slots.
	gen uint32
}

type dirShard struct {
	slots []dirSlot
	mask  uint64
	used  int
	gen   uint32
}

func (s *dirShard) liveAt(i uint64) bool { return s.slots[i].gen == s.gen }

// dirHash is the splitmix64 finalizer: block addresses are highly regular
// (sequential, strided), so every input bit must influence the probe index.
func dirHash(b mem.Block) uint64 {
	x := uint64(b)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// dirPool recycles whole tables across Systems: a reused table keeps its
// grown shard capacities (no re-growth churn) and is emptied by bumping each
// shard's generation rather than by reallocating or zeroing.
var dirPool sync.Pool

func newDirTable() *dirTable {
	if v := dirPool.Get(); v != nil {
		t := v.(*dirTable)
		for i := range t.shard {
			s := &t.shard[i]
			s.used = 0
			s.gen++
			if s.gen == 0 { // wrapped: stale slots could alias, start clean
				s.reset(len(s.slots))
			}
		}
		return t
	}
	t := &dirTable{}
	for i := range t.shard {
		t.shard[i].reset(dirInitialCap)
	}
	return t
}

// release hands the table back for reuse. The table must not be used
// afterwards.
func (t *dirTable) release() { dirPool.Put(t) }

func (s *dirShard) reset(capacity int) {
	s.slots = make([]dirSlot, capacity)
	s.mask = uint64(capacity - 1)
	s.used = 0
	s.gen = 1
}

func (t *dirTable) shardFor(h uint64) *dirShard { return &t.shard[h&(dirShards-1)] }

// home is the preferred slot of hash h within the shard. The low bits picked
// the shard, so the in-shard index comes from the next bits up.
func (s *dirShard) home(h uint64) uint64 { return (h >> dirShardBits) & s.mask }

// get returns the entry for b, or nil. It never inserts. The pointer is
// valid until the next insert or delete on the table.
func (t *dirTable) get(b mem.Block) *dirEntry {
	h := dirHash(b)
	s := t.shardFor(h)
	i := s.home(h)
	for {
		sl := &s.slots[i]
		if sl.gen != s.gen {
			return nil
		}
		if sl.block == b {
			return &sl.entry
		}
		i = (i + 1) & s.mask
	}
}

// getOrCreate returns the entry for b, inserting a fresh ownerless entry if
// absent. The pointer is valid until the next insert or delete.
func (t *dirTable) getOrCreate(b mem.Block) *dirEntry {
	h := dirHash(b)
	s := t.shardFor(h)
	if s.used >= len(s.slots)-len(s.slots)/4 { // keep load factor ≤ 3/4
		s.grow()
	}
	i := s.home(h)
	for {
		sl := &s.slots[i]
		if sl.gen != s.gen {
			sl.block = b
			sl.entry = dirEntry{owner: -1}
			sl.gen = s.gen
			s.used++
			return &sl.entry
		}
		if sl.block == b {
			return &sl.entry
		}
		i = (i + 1) & s.mask
	}
}

func (s *dirShard) grow() {
	old, oldGen := s.slots, s.gen
	s.reset(len(old) * 2)
	for i := range old {
		if old[i].gen != oldGen {
			continue
		}
		h := dirHash(old[i].block)
		j := s.home(h)
		for s.liveAt(j) {
			j = (j + 1) & s.mask
		}
		s.slots[j] = old[i]
		s.slots[j].gen = s.gen
		s.used++
	}
}

// delete removes b's entry, if any, using backward-shift deletion: probe-run
// successors whose home precedes the hole slide back into it, so the slot is
// immediately free for reuse and lookups never traverse tombstones.
func (t *dirTable) delete(b mem.Block) {
	h := dirHash(b)
	s := t.shardFor(h)
	i := s.home(h)
	for {
		sl := &s.slots[i]
		if sl.gen != s.gen {
			return
		}
		if sl.block == b {
			break
		}
		i = (i + 1) & s.mask
	}
	s.used--
	j := i
	for {
		s.slots[j].gen = s.gen - 1
		k := j
		for {
			k = (k + 1) & s.mask
			sl := &s.slots[k]
			if sl.gen != s.gen {
				return
			}
			// sl may shift back into the hole at j only if doing so does not
			// move it before its home slot (probe distance stays valid).
			home := s.home(dirHash(sl.block))
			if (k-home)&s.mask >= (k-j)&s.mask {
				s.slots[j] = *sl
				j = k
				break
			}
		}
	}
}

// forEach visits every live entry in deterministic (shard, slot) order,
// stopping early when fn returns false. The table must not be mutated during
// iteration.
func (t *dirTable) forEach(fn func(mem.Block, *dirEntry) bool) {
	for si := range t.shard {
		s := &t.shard[si]
		for i := range s.slots {
			if s.slots[i].gen == s.gen && !fn(s.slots[i].block, &s.slots[i].entry) {
				return
			}
		}
	}
}

// len returns the number of live entries.
func (t *dirTable) len() int {
	n := 0
	for i := range t.shard {
		n += t.shard[i].used
	}
	return n
}
