package memsys

import (
	"testing"
	"testing/quick"

	"spb/internal/cache"
	"spb/internal/config"
	"spb/internal/mem"
)

// tiny returns a machine with very small caches so that evictions and
// conflicts are easy to provoke in tests.
func tiny() config.MachineConfig {
	m := config.Skylake()
	m.L1D = config.CacheConfig{Name: "L1D", SizeBytes: 4 * 2 * 64, Ways: 2, LatencyCyc: 4, MSHRs: 8}
	m.L2 = config.CacheConfig{Name: "L2", SizeBytes: 8 * 4 * 64, Ways: 4, LatencyCyc: 14, MSHRs: 8}
	m.L3 = config.CacheConfig{Name: "L3", SizeBytes: 16 * 8 * 64, Ways: 8, LatencyCyc: 36, MSHRs: 16}
	m.Prefetcher = config.PrefetchNone
	return m
}

func TestLoadMissThenHit(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	r1 := p.Load(0x1000, 0x400000, 0)
	if r1.Level != LevelDRAM {
		t.Fatalf("cold load level = %v, want DRAM", r1.Level)
	}
	if r1.Done < 200 {
		t.Fatalf("cold load done at %d, faster than DRAM latency", r1.Done)
	}
	r2 := p.Load(0x1000, 0x400000, r1.Done+1)
	if r2.Level != LevelL1 {
		t.Fatalf("second load level = %v, want L1", r2.Level)
	}
	if r2.Done != r1.Done+1+4 {
		t.Fatalf("L1 hit done at %d, want t+4", r2.Done)
	}
}

func TestLoadHitL2AfterL1Eviction(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	done := p.Load(0, 0x400000, 0).Done
	// Blocks 0, 4, 8 share L1 set 0 (4 sets); 2 ways force block 0 out.
	done = p.Load(4*64, 0x400000, done).Done
	done = p.Load(8*64, 0x400000, done).Done
	r := p.Load(0, 0x400000, done)
	if r.Level != LevelL2 {
		t.Fatalf("re-load level = %v, want L2 (L1 evicted, L2 retains)", r.Level)
	}
}

func TestStoreAcquireThenPerform(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	if p.PerformStore(0x2000, 0x400000, 0) {
		t.Fatal("store to absent block must not perform")
	}
	r := p.StoreAcquire(0x2000, 0x400000, 0)
	if r.Level != LevelDRAM {
		t.Fatalf("cold acquire level = %v, want DRAM", r.Level)
	}
	if p.PerformStore(0x2000, 0x400000, r.Done-1) {
		t.Fatal("store must not perform before the fill completes")
	}
	if !p.PerformStore(0x2000, 0x400000, r.Done) {
		t.Fatal("store must perform once ownership arrived")
	}
	if !p.IsWritableReady(0x2000, r.Done) {
		t.Fatal("block should be writable after acquire")
	}
}

func TestUpgradeMissAfterLoad(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	r1 := p.Load(0x3000, 0x400000, 0)
	// Block is now Shared: a store needs an upgrade (directory trip), which
	// is cheaper than DRAM but not an L1 hit.
	r2 := p.StoreAcquire(0x3000, 0x400000, r1.Done+1)
	if r2.Level != LevelL3 {
		t.Fatalf("upgrade level = %v, want L3", r2.Level)
	}
	if r2.Done >= r1.Done+1+200 {
		t.Fatal("upgrade should be much faster than a DRAM fetch")
	}
}

func TestPrefetchOwnSuccessful(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	p.PrefetchOwn(mem.BlockOf(0x4000), 0, false)
	if p.SPFIssued != 1 || p.SPFMissToL2 != 1 {
		t.Fatalf("issued/miss = %d/%d, want 1/1", p.SPFIssued, p.SPFMissToL2)
	}
	// Wait long enough for the fill, then the demand store hits.
	if !p.PerformStore(0x4000, 0x400000, 1000) {
		t.Fatal("store should perform against the prefetched block")
	}
	if p.SPFSuccessful != 1 {
		t.Fatalf("SPFSuccessful = %d, want 1", p.SPFSuccessful)
	}
}

func TestPrefetchOwnLate(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	p.PrefetchOwn(mem.BlockOf(0x5000), 0, false)
	// Demand store arrives while the prefetch is still in flight.
	r := p.StoreAcquire(0x5000, 0x400000, 5)
	if !r.LatePrefetch {
		t.Fatal("demand during in-flight prefetch must be late")
	}
	if p.SPFLate != 1 {
		t.Fatalf("SPFLate = %d, want 1", p.SPFLate)
	}
	if p.SPFSuccessful != 0 {
		t.Fatal("late prefetch must not also count successful")
	}
}

func TestPrefetchOwnDiscardedWhenOwned(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	r := p.StoreAcquire(0x6000, 0x400000, 0)
	p.PerformStore(0x6000, 0x400000, r.Done)
	p.PrefetchOwn(mem.BlockOf(0x6000), r.Done+1, false)
	if p.SPFDiscarded != 1 {
		t.Fatalf("SPFDiscarded = %d, want 1 (PopReq)", p.SPFDiscarded)
	}
	if p.SPFMissToL2 != 0 { // the discarded prefetch generated no L2 traffic
		t.Fatalf("SPFMissToL2 = %d, want 0", p.SPFMissToL2)
	}
}

func TestPrefetchOwnEarly(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	// Prefetch block 0, then blast the set with conflicting fills until the
	// prefetched line is evicted unused.
	p.PrefetchOwn(0, 0, false)
	done := uint64(1000)
	for i := 1; i <= 2; i++ {
		done = p.Load(mem.Addr(i*4*64), 0x400000, done).Done
	}
	// Block 0 evicted unused; the demand store now misses and the prefetch
	// counts as early.
	p.StoreAcquire(0, 0x400000, done)
	if p.SPFEarly != 1 {
		t.Fatalf("SPFEarly = %d, want 1", p.SPFEarly)
	}
}

func TestBurstCounted(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	p.PrefetchOwn(1, 0, true)
	p.PrefetchOwn(2, 0, false)
	if p.SPFBurst != 1 || p.SPFIssued != 2 {
		t.Fatalf("burst/issued = %d/%d, want 1/2", p.SPFBurst, p.SPFIssued)
	}
}

func TestTwoCoreDowngrade(t *testing.T) {
	s := New(tiny(), 2)
	w, r := s.Port(0), s.Port(1)
	res := w.StoreAcquire(0x7000, 0x400000, 0)
	w.PerformStore(0x7000, 0x400000, res.Done)
	// Core 1 reads: core 0 must be downgraded to Shared.
	rr := r.Load(0x7000, 0x400000, res.Done+1)
	if rr.Done <= res.Done+1 {
		t.Fatal("remote read must take time")
	}
	l := w.L1().Peek(mem.BlockOf(0x7000))
	if l == nil || l.State != cache.Shared {
		t.Fatalf("writer's copy = %v, want Shared after remote read", l)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoCoreInvalidation(t *testing.T) {
	s := New(tiny(), 2)
	a, b := s.Port(0), s.Port(1)
	ra := a.StoreAcquire(0x8000, 0x400000, 0)
	a.PerformStore(0x8000, 0x400000, ra.Done)
	rb := b.StoreAcquire(0x8000, 0x400000, ra.Done+1)
	if b.PerformStore(0x8000, 0x400000, rb.Done) != true {
		t.Fatal("second core must gain ownership")
	}
	if l := a.L1().Peek(mem.BlockOf(0x8000)); l != nil {
		t.Fatalf("first core still holds %v, want invalidated", l.State)
	}
	if s.Invalidations == 0 {
		t.Fatal("invalidation traffic must be counted")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestWrongPathLoadCountsTraffic(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	tags := p.L1().TagAccesses
	p.WrongPathLoad(0x9000, 0)
	if p.WrongPathLoads != 1 {
		t.Fatal("wrong-path load must be counted")
	}
	if p.L1().TagAccesses <= tags {
		t.Fatal("wrong-path load must cost a tag access")
	}
	if p.LoadMisses != 0 {
		t.Fatal("wrong-path load must not count as a demand miss")
	}
}

func TestOutstandingL1Misses(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	r := p.Load(0xA000, 0x400000, 0)
	if p.OutstandingL1Misses(1) != 1 {
		t.Fatal("one miss should be outstanding")
	}
	if p.OutstandingL1Misses(r.Done+1) != 0 {
		t.Fatal("miss should have completed")
	}
}

func TestGenericPrefetcherBringsReadOnly(t *testing.T) {
	m := tiny()
	m.Prefetcher = config.PrefetchStream
	s := New(m, 1)
	p := s.Port(0)
	// Train a unit-block stride with loads.
	done := uint64(0)
	for i := 0; i < 8; i++ {
		done = p.Load(mem.Addr(i*64), 0x400000, done).Done
	}
	if p.GPFIssued == 0 {
		t.Fatal("stream prefetcher should have issued prefetches")
	}
	// The prefetched block ahead is readable but not writable: a store
	// still needs an upgrade (the paper's key observation).
	var pfBlock mem.Block
	found := false
	for b := mem.Block(8); b < 16 && !found; b++ {
		if l := p.L1().Peek(b); l != nil && l.State == cache.Shared {
			pfBlock, found = b, true
		}
	}
	if !found {
		t.Skip("no prefetched block retained in the tiny L1")
	}
	if p.IsWritableReady(mem.AddrOfBlock(pfBlock), done+10000) {
		t.Fatal("generic prefetch must not grant write permission")
	}
}

func TestRecentSet(t *testing.T) {
	r := newRecentSet(2)
	r.Add(1)
	r.Add(2)
	if !r.Take(1) {
		t.Fatal("1 should be remembered")
	}
	if r.Take(1) {
		t.Fatal("taking twice must fail")
	}
	r.Add(3)
	r.Add(4)
	r.Add(5) // evicts 3
	if r.Take(3) {
		t.Fatal("3 should have been evicted by capacity")
	}
	if !r.Take(4) || !r.Take(5) {
		t.Fatal("4 and 5 should be remembered")
	}
}

func TestRecentSetDuplicates(t *testing.T) {
	r := newRecentSet(4)
	r.Add(7)
	r.Add(7)
	if !r.Take(7) || !r.Take(7) {
		t.Fatal("both occurrences should be takeable")
	}
	if r.Take(7) {
		t.Fatal("third take must fail")
	}
}

// Property: under random single-core traffic the port never corrupts MESI
// bookkeeping, and demand completion times always respect the L1 latency.
func TestSingleCoreRandomTraffic(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(tiny(), 1)
		p := s.Port(0)
		now := uint64(0)
		for _, op := range ops {
			addr := mem.Addr(op%512) * 64
			now += 3
			switch op % 4 {
			case 0:
				r := p.Load(addr, 0x400000, now)
				if r.Done < now+4 {
					return false
				}
			case 1:
				r := p.StoreAcquire(addr, 0x400000, now)
				if r.Done < now+4 {
					return false
				}
			case 2:
				p.PrefetchOwn(mem.BlockOf(addr), now, op%8 == 2)
			default:
				if p.IsWritableReady(addr, now) {
					if !p.PerformStore(addr, 0x400000, now) {
						return false
					}
				}
			}
		}
		return s.CheckCoherence() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with several cores hammering a small shared region, at most one
// core ever holds a block writable (single-writer invariant).
func TestMultiCoreSingleWriter(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New(tiny(), 4)
		now := uint64(0)
		for _, op := range ops {
			core := int(op>>8) % 4
			p := s.Port(core)
			addr := mem.Addr(op%16) * 64
			now += 5
			switch op % 3 {
			case 0:
				p.Load(addr, 0x400000, now)
			case 1:
				r := p.StoreAcquire(addr, 0x400000, now)
				p.PerformStore(addr, 0x400000, r.Done)
			default:
				p.PrefetchOwn(mem.BlockOf(addr), now, false)
			}
			if err := s.CheckCoherence(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelDRAM: "DRAM",
	} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

func TestNewRejectsBadCoreCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 cores should panic")
		}
	}()
	New(tiny(), 0)
}
