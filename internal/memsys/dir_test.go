package memsys

import (
	"math/rand"
	"testing"

	"spb/internal/mem"
)

// TestDirTableMatchesMap drives the open-addressing table and a plain Go map
// through the same randomized op sequence (lookup / insert-or-update /
// delete over a small, collision-heavy block space) and requires identical
// contents after every op. This is the safety net under the tentpole's
// map[mem.Block]*dirEntry replacement: backward-shift deletion, shard
// growth and generation recycling must all preserve map semantics.
func TestDirTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		tab := newDirTable()
		ref := map[mem.Block]dirEntry{}
		// Small block space forces long probe runs and frequent
		// delete-in-run cases; enough inserts to trigger shard growth.
		const blocks = 1 << 14
		for op := 0; op < 200_000; op++ {
			b := mem.Block(rng.Intn(blocks))
			switch rng.Intn(4) {
			case 0: // lookup
				e := tab.get(b)
				re, ok := ref[b]
				if (e != nil) != ok {
					t.Fatalf("round %d op %d: get(%d) present=%v, map present=%v", round, op, b, e != nil, ok)
				}
				if ok && *e != re {
					t.Fatalf("round %d op %d: get(%d) = %+v, map has %+v", round, op, b, *e, re)
				}
			case 1, 2: // insert or mutate
				e := tab.getOrCreate(b)
				re, ok := ref[b]
				if !ok {
					re = dirEntry{owner: -1}
				}
				if *e != re {
					t.Fatalf("round %d op %d: getOrCreate(%d) = %+v, map has %+v", round, op, b, *e, re)
				}
				e.owner = int8(rng.Intn(8))
				e.sharers = rng.Uint64()
				ref[b] = *e
			case 3: // delete
				tab.delete(b)
				delete(ref, b)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("round %d: table len %d, map len %d", round, tab.len(), len(ref))
		}
		seen := 0
		tab.forEach(func(b mem.Block, e *dirEntry) bool {
			re, ok := ref[b]
			if !ok || *e != re {
				t.Fatalf("round %d: forEach found %d=%+v, map has %+v (present=%v)", round, b, *e, re, ok)
			}
			seen++
			return true
		})
		if seen != len(ref) {
			t.Fatalf("round %d: forEach visited %d entries, want %d", round, seen, len(ref))
		}
		// Recycle through the pool so the next round exercises the
		// generation-bump emptying path on grown shards.
		tab.release()
	}
}

// TestDirTableLookupZeroAllocs guards the table's allocation-free steady
// state: once the shards have grown to fit the working set, neither hits,
// misses, inserts of recycled blocks, nor deletes allocate.
func TestDirTableLookupZeroAllocs(t *testing.T) {
	tab := newDirTable()
	const blocks = 1 << 12
	for b := 0; b < blocks; b++ {
		e := tab.getOrCreate(mem.Block(b))
		e.owner = 0
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		for k := 0; k < 256; k++ {
			b := mem.Block(i % blocks)
			if tab.get(b) == nil {
				t.Fatal("present block missed")
			}
			tab.get(mem.Block(blocks + i)) // guaranteed miss
			tab.delete(b)
			tab.getOrCreate(b).owner = 1
			i++
		}
	})
	if avg != 0 {
		t.Fatalf("dirTable steady state allocates: %.2f allocs per 256-op batch", avg)
	}
}
