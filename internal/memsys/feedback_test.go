package memsys

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"spb/internal/config"
	"spb/internal/mem"
	"spb/internal/prefetch"
)

// Tests for the generic-prefetcher feedback plumbing: the per-epoch delta
// computation over lastFB snapshots, the pollution path through victimsOfPF,
// the early-prefetch path through evictedPF, and checkpoint round-trips of
// the epoch machinery for every prefetcher kind.

func TestFDPEpochUsesDeltas(t *testing.T) {
	m := tiny()
	m.Prefetcher = config.PrefetchAdaptive
	s := New(m, 1)
	p := s.Port(0)
	ad := p.pf.(*prefetch.Adaptive)
	if ad.Level() != 3 {
		t.Fatalf("starting level = %d, want 3", ad.Level())
	}

	// Epoch 1: accurate and late — ramp up.
	p.GPFIssued, p.GPFUsed, p.GPFLate = 1000, 900, 500
	p.epochAccesses = fdpEpoch - 1
	p.Load(0x10000, 0x400000, 0)
	if ad.Level() != 4 {
		t.Fatalf("level after accurate+late epoch = %d, want 4", ad.Level())
	}
	if want := (prefetch.Feedback{Issued: 1000, Used: 900, Late: 500}); p.lastFB != want {
		t.Fatalf("lastFB = %+v, want %+v", p.lastFB, want)
	}

	// Epoch 2: this epoch alone is wildly inaccurate (acc 0.10), though the
	// cumulative counters still read acc 0.50. Only the delta view throttles.
	p.GPFIssued += 1000
	p.GPFUsed += 100
	p.epochAccesses = fdpEpoch - 1
	p.Load(0x10000, 0x400000, 1000)
	if ad.Level() != 3 {
		t.Fatalf("level = %d, want 3: FDP must see per-epoch deltas, not cumulative counters", ad.Level())
	}
	if want := (prefetch.Feedback{Issued: 2000, Used: 1000, Late: 500}); p.lastFB != want {
		t.Fatalf("lastFB = %+v, want %+v", p.lastFB, want)
	}
	s.Release()
}

func TestPrefetchPollutionCredited(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	// Fill L1 set 0 (2 ways) with demand blocks 0 and 4, then let a generic
	// prefetch of block 8 evict the LRU demand block 0.
	d := p.Load(0, 0x400000, 0).Done
	d = p.Load(4*64, 0x400000, d).Done
	p.prefetchRead(8, d)
	if p.GPFIssued != 1 {
		t.Fatalf("GPFIssued = %d, want 1", p.GPFIssued)
	}
	// The demand miss on the prefetch victim is pollution.
	p.Load(0, 0x400000, d+1000)
	if p.GPFPolluted != 1 {
		t.Fatalf("GPFPolluted = %d, want 1 after a demand miss on the prefetch victim", p.GPFPolluted)
	}
	s.Release()
}

func TestEarlyWritePrefetchCredited(t *testing.T) {
	s := New(tiny(), 1)
	p := s.Port(0)
	// Write-prefetch block 0, evict it unused via two demand fills into the
	// same 2-way set, then let the demand store arrive: the prefetch was
	// early.
	p.PrefetchOwn(0, 0, false)
	d := p.Load(4*64, 0x400000, 0).Done
	d = p.Load(8*64, 0x400000, d).Done
	p.StoreAcquire(0, 0x400000, d+1000)
	if p.SPFEarly != 1 {
		t.Fatalf("SPFEarly = %d, want 1 after the prefetched block was evicted unused", p.SPFEarly)
	}
	s.Release()
}

// drivePort replays a deterministic demand mix (loads and store-acquires
// over strided streams) against a port.
func drivePort(p *Port, phase, n int) {
	t := uint64(phase) * 100
	for i := 0; i < n; i++ {
		j := phase + i
		addr := mem.Addr(uint64(j%3)<<20 + uint64(j/3)*64*uint64(j%3+1))
		if j%4 == 3 {
			r := p.StoreAcquire(addr, uint64(0x400000+j%5*4), t)
			t = r.Done + 1
		} else {
			r := p.Load(addr, uint64(0x400000+j%5*4), t)
			t = r.Done + 1
		}
	}
}

// TestSnapshotRoundTripsFeedbackState drives every prefetcher kind to a
// mid-epoch point, checkpoints through the gob wire format, and checks the
// restored system's epoch machinery and trained prefetcher continue
// identically.
func TestSnapshotRoundTripsFeedbackState(t *testing.T) {
	for _, kind := range config.Prefetchers {
		t.Run(kind.String(), func(t *testing.T) {
			m := tiny()
			m.Prefetcher = kind
			s1 := New(m, 1)
			p1 := s1.Port(0)
			drivePort(p1, 0, 400)
			// Park the port just short of an epoch boundary so the restored
			// copy must cross it with the same lastFB snapshot.
			p1.epochAccesses = fdpEpoch - 3

			snap := s1.Snapshot()
			states := s1.PrefetcherStates()
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
				t.Fatalf("gob encode snapshot: %v", err)
			}
			if err := gob.NewEncoder(&buf).Encode(states); err != nil {
				t.Fatalf("gob encode prefetcher states: %v", err)
			}
			dec := gob.NewDecoder(bytes.NewReader(buf.Bytes()))
			var snap2 SystemSnapshot
			var states2 []prefetch.State
			if err := dec.Decode(&snap2); err != nil {
				t.Fatalf("gob decode snapshot: %v", err)
			}
			if err := dec.Decode(&states2); err != nil {
				t.Fatalf("gob decode prefetcher states: %v", err)
			}

			s2 := New(m, 1)
			s2.Restore(&snap2)
			s2.RestorePrefetcherStates(states2)
			p2 := s2.Port(0)
			if p2.epochAccesses != p1.epochAccesses || p2.lastFB != p1.lastFB {
				t.Fatalf("epoch machinery not restored: (%d, %+v) vs (%d, %+v)",
					p2.epochAccesses, p2.lastFB, p1.epochAccesses, p1.lastFB)
			}

			// Identical continuations, crossing the epoch boundary.
			drivePort(p1, 400, 50)
			drivePort(p2, 400, 50)
			if p1.GPFIssued != p2.GPFIssued || p1.GPFUsed != p2.GPFUsed ||
				p1.GPFLate != p2.GPFLate || p1.GPFPolluted != p2.GPFPolluted {
				t.Fatalf("GPF counters diverge after restore: %+v vs %+v",
					[4]uint64{p1.GPFIssued, p1.GPFUsed, p1.GPFLate, p1.GPFPolluted},
					[4]uint64{p2.GPFIssued, p2.GPFUsed, p2.GPFLate, p2.GPFPolluted})
			}
			if p1.lastFB != p2.lastFB {
				t.Fatalf("lastFB diverges after the epoch boundary: %+v vs %+v", p1.lastFB, p2.lastFB)
			}
			if !reflect.DeepEqual(prefetch.CaptureState(p1.pf), prefetch.CaptureState(p2.pf)) {
				t.Fatal("prefetcher state diverges after restore")
			}
			s1.Release()
			s2.Release()
		})
	}
}
