package memsys

import (
	"bytes"
	"encoding/gob"

	"spb/internal/cache"
	"spb/internal/dram"
	"spb/internal/mem"
	"spb/internal/prefetch"
)

// Gob wire form of a SystemSnapshot (crash-safe checkpoints, DESIGN.md §15),
// plus the prefetcher capture the snapshot itself deliberately omits.
// Warm-start shares one SystemSnapshot across specs that differ in
// prefetcher kind, so trained prefetcher tables cannot live inside it; a
// mid-run checkpoint is taken for exactly one spec, so it captures them
// separately via PrefetcherStates/RestorePrefetcherStates.

// PrefetcherStates deep-copies each port's generic-prefetcher state, in port
// order.
func (s *System) PrefetcherStates() []prefetch.State {
	out := make([]prefetch.State, len(s.ports))
	for i, p := range s.ports {
		out[i] = prefetch.CaptureState(p.pf)
	}
	return out
}

// RestorePrefetcherStates overwrites each port's generic-prefetcher state.
// The states must come from a system with the same core count and
// prefetcher configuration.
func (s *System) RestorePrefetcherStates(st []prefetch.State) {
	if len(st) != len(s.ports) {
		panic("memsys: RestorePrefetcherStates with mismatched core count")
	}
	for i, p := range s.ports {
		prefetch.RestoreState(p.pf, st[i])
	}
}

type dirPairWire struct {
	Block   mem.Block
	Owner   int8
	Sharers uint64
}

type recentWire struct {
	Ring   []mem.Block
	Next   int
	Filled bool
	Keys   []mem.Block
	Counts []uint32
}

func recentToWire(r *recentSnapshot) recentWire {
	return recentWire{Ring: r.ring, Next: r.next, Filled: r.filled, Keys: r.keys, Counts: r.counts}
}

func recentFromWire(w recentWire) *recentSnapshot {
	return &recentSnapshot{ring: w.Ring, next: w.Next, filled: w.Filled, keys: w.Keys, counts: w.Counts}
}

type portWire struct {
	L1, L2                 *cache.Snapshot
	EvictedPF, VictimsOfPF recentWire

	Loads, Stores, LoadMisses, StoreMisses, WrongPathLoads uint64

	SPFIssued, SPFDiscarded, SPFMissToL2, SPFSuccessful,
	SPFLate, SPFEarly, SPFBurst uint64

	GPFIssued, GPFUsed, GPFLate, GPFPolluted uint64

	EpochAccesses uint64
	LastFB        prefetch.Feedback
}

type systemWire struct {
	L3    *cache.Snapshot
	DRAM  dram.Snapshot
	Dir   [dirShards][]dirPairWire
	Ports []portWire

	L3Accesses, Invalidations, WritebacksL3, BackInvals uint64
}

// GobEncode implements gob.GobEncoder.
func (s *SystemSnapshot) GobEncode() ([]byte, error) {
	w := systemWire{
		L3:         s.l3,
		DRAM:       s.dram,
		L3Accesses: s.l3Accesses, Invalidations: s.invalidations,
		WritebacksL3: s.writebacksL3, BackInvals: s.backInvals,
	}
	for i := range s.dir.shard {
		pairs := make([]dirPairWire, len(s.dir.shard[i]))
		for j, pr := range s.dir.shard[i] {
			pairs[j] = dirPairWire{Block: pr.block, Owner: pr.entry.owner, Sharers: pr.entry.sharers}
		}
		w.Dir[i] = pairs
	}
	for _, p := range s.ports {
		w.Ports = append(w.Ports, portWire{
			L1: p.l1, L2: p.l2,
			EvictedPF: recentToWire(p.evictedPF), VictimsOfPF: recentToWire(p.victimsOfPF),
			Loads: p.loads, Stores: p.stores, LoadMisses: p.loadMisses,
			StoreMisses: p.storeMisses, WrongPathLoads: p.wrongPathLoads,
			SPFIssued: p.spfIssued, SPFDiscarded: p.spfDiscarded, SPFMissToL2: p.spfMissToL2,
			SPFSuccessful: p.spfSuccessful, SPFLate: p.spfLate, SPFEarly: p.spfEarly, SPFBurst: p.spfBurst,
			GPFIssued: p.gpfIssued, GPFUsed: p.gpfUsed, GPFLate: p.gpfLate, GPFPolluted: p.gpfPolluted,
			EpochAccesses: p.epochAccesses,
			LastFB:        p.lastFB,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *SystemSnapshot) GobDecode(data []byte) error {
	var w systemWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	s.l3 = w.L3
	s.dram = w.DRAM
	s.dir = &dirSnapshot{}
	for i := range w.Dir {
		pairs := make([]dirPair, len(w.Dir[i]))
		for j, pr := range w.Dir[i] {
			pairs[j] = dirPair{block: pr.Block, entry: dirEntry{owner: pr.Owner, sharers: pr.Sharers}}
		}
		s.dir.shard[i] = pairs
	}
	s.ports = nil
	for _, p := range w.Ports {
		s.ports = append(s.ports, &portSnapshot{
			l1: p.L1, l2: p.L2,
			evictedPF: recentFromWire(p.EvictedPF), victimsOfPF: recentFromWire(p.VictimsOfPF),
			loads: p.Loads, stores: p.Stores, loadMisses: p.LoadMisses,
			storeMisses: p.StoreMisses, wrongPathLoads: p.WrongPathLoads,
			spfIssued: p.SPFIssued, spfDiscarded: p.SPFDiscarded, spfMissToL2: p.SPFMissToL2,
			spfSuccessful: p.SPFSuccessful, spfLate: p.SPFLate, spfEarly: p.SPFEarly, spfBurst: p.SPFBurst,
			gpfIssued: p.GPFIssued, gpfUsed: p.GPFUsed, gpfLate: p.GPFLate, gpfPolluted: p.GPFPolluted,
			epochAccesses: p.EpochAccesses,
			lastFB:        p.LastFB,
		})
	}
	s.l3Accesses = w.L3Accesses
	s.invalidations = w.Invalidations
	s.writebacksL3 = w.WritebacksL3
	s.backInvals = w.BackInvals
	return nil
}
