package memsys

import (
	"sort"

	"spb/internal/cache"
	"spb/internal/dram"
	"spb/internal/mem"
	"spb/internal/prefetch"
)

// Deep snapshot/restore of the shared memory system (warm-start support,
// DESIGN.md §12). Everything mutable is copied: every cache array, the
// directory table, the recent-eviction sets, the DRAM channel state and all
// statistics counters. The generic prefetcher is NOT part of the snapshot:
// functional warming never trains it, its type is a per-spec configuration
// knob, and a fork always starts it fresh — exactly matching a cold run.

// dirPair is one live directory entry in canonical form.
type dirPair struct {
	block mem.Block
	entry dirEntry
}

// dirSnapshot is a canonical deep copy of a directory table: per shard, the
// live entries sorted by block. Slot positions, shard capacities and
// generation stamps are deliberately absent — they are artifacts of the
// table's allocation history (pool reuse, growth points) that never affect
// behaviour, so two logically identical directories snapshot identically.
type dirSnapshot struct {
	shard [dirShards][]dirPair
}

func (t *dirTable) snapshot() *dirSnapshot {
	s := &dirSnapshot{}
	for i := range t.shard {
		sh := &t.shard[i]
		pairs := make([]dirPair, 0, sh.used)
		for j := range sh.slots {
			if sh.slots[j].gen == sh.gen {
				pairs = append(pairs, dirPair{block: sh.slots[j].block, entry: sh.slots[j].entry})
			}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].block < pairs[b].block })
		s.shard[i] = pairs
	}
	return s
}

// restore empties each shard (generation bump, as newDirTable does) and
// re-inserts the snapshot's entries through the table's own probe logic, so
// the rebuilt layout is valid for whatever capacity the shard currently has.
func (t *dirTable) restore(snap *dirSnapshot) {
	for i := range t.shard {
		sh := &t.shard[i]
		sh.used = 0
		sh.gen++
		if sh.gen == 0 { // wrapped: stale slots could alias, start clean
			sh.reset(len(sh.slots))
		}
		for _, pr := range snap.shard[i] {
			if sh.used >= len(sh.slots)-len(sh.slots)/4 {
				sh.grow()
			}
			j := sh.home(dirHash(pr.block))
			for sh.liveAt(j) {
				j = (j + 1) & sh.mask
			}
			sh.slots[j] = dirSlot{block: pr.block, entry: pr.entry, gen: sh.gen}
			sh.used++
		}
	}
}

// recentSnapshot is a canonical deep copy of a recentSet: ring positions
// outside the live window and table slots with zero count are stored as
// zeros, not as whatever the recycled arrays held.
type recentSnapshot struct {
	ring   []mem.Block
	next   int
	filled bool
	keys   []mem.Block
	counts []uint32
}

func (r *recentSet) snapshot() *recentSnapshot {
	s := &recentSnapshot{
		ring:   make([]mem.Block, len(r.ring)),
		next:   r.next,
		filled: r.filled,
		keys:   make([]mem.Block, len(r.keys)),
		counts: append([]uint32(nil), r.counts...),
	}
	live := r.next
	if r.filled {
		live = len(r.ring)
	}
	copy(s.ring[:live], r.ring[:live])
	for i, n := range r.counts {
		if n != 0 {
			s.keys[i] = r.keys[i]
		}
	}
	return s
}

func (r *recentSet) restore(s *recentSnapshot) {
	if len(r.ring) != len(s.ring) || len(r.keys) != len(s.keys) {
		panic("memsys: recentSet restore with mismatched capacity")
	}
	copy(r.ring, s.ring)
	r.next = s.next
	r.filled = s.filled
	copy(r.keys, s.keys)
	copy(r.counts, s.counts)
}

// portSnapshot deep-copies one core's private hierarchy and counters.
type portSnapshot struct {
	l1, l2                 *cache.Snapshot
	evictedPF, victimsOfPF *recentSnapshot

	loads, stores, loadMisses, storeMisses, wrongPathLoads uint64

	spfIssued, spfDiscarded, spfMissToL2, spfSuccessful,
	spfLate, spfEarly, spfBurst uint64

	gpfIssued, gpfUsed, gpfLate, gpfPolluted uint64

	epochAccesses uint64
	lastFB        prefetch.Feedback
}

func (p *Port) snapshot() *portSnapshot {
	return &portSnapshot{
		l1:             p.l1.Snapshot(),
		l2:             p.l2.Snapshot(),
		evictedPF:      p.evictedPF.snapshot(),
		victimsOfPF:    p.victimsOfPF.snapshot(),
		loads:          p.Loads,
		stores:         p.Stores,
		loadMisses:     p.LoadMisses,
		storeMisses:    p.StoreMisses,
		wrongPathLoads: p.WrongPathLoads,
		spfIssued:      p.SPFIssued,
		spfDiscarded:   p.SPFDiscarded,
		spfMissToL2:    p.SPFMissToL2,
		spfSuccessful:  p.SPFSuccessful,
		spfLate:        p.SPFLate,
		spfEarly:       p.SPFEarly,
		spfBurst:       p.SPFBurst,
		gpfIssued:      p.GPFIssued,
		gpfUsed:        p.GPFUsed,
		gpfLate:        p.GPFLate,
		gpfPolluted:    p.GPFPolluted,
		epochAccesses:  p.epochAccesses,
		lastFB:         p.lastFB,
	}
}

func (p *Port) restore(s *portSnapshot) {
	p.l1.Restore(s.l1)
	p.l2.Restore(s.l2)
	p.evictedPF.restore(s.evictedPF)
	p.victimsOfPF.restore(s.victimsOfPF)
	p.Loads = s.loads
	p.Stores = s.stores
	p.LoadMisses = s.loadMisses
	p.StoreMisses = s.storeMisses
	p.WrongPathLoads = s.wrongPathLoads
	p.SPFIssued = s.spfIssued
	p.SPFDiscarded = s.spfDiscarded
	p.SPFMissToL2 = s.spfMissToL2
	p.SPFSuccessful = s.spfSuccessful
	p.SPFLate = s.spfLate
	p.SPFEarly = s.spfEarly
	p.SPFBurst = s.spfBurst
	p.GPFIssued = s.gpfIssued
	p.GPFUsed = s.gpfUsed
	p.GPFLate = s.gpfLate
	p.GPFPolluted = s.gpfPolluted
	p.epochAccesses = s.epochAccesses
	p.lastFB = s.lastFB
}

// SystemSnapshot is a deep copy of the full memory system state. It shares
// no memory with the system it was taken from.
type SystemSnapshot struct {
	l3    *cache.Snapshot
	dram  dram.Snapshot
	dir   *dirSnapshot
	ports []*portSnapshot

	l3Accesses, invalidations, writebacksL3, backInvals uint64
}

// Snapshot deep-copies the system's mutable state.
func (s *System) Snapshot() *SystemSnapshot {
	snap := &SystemSnapshot{
		l3:            s.l3.Snapshot(),
		dram:          s.dram.Snapshot(),
		dir:           s.dir.snapshot(),
		l3Accesses:    s.L3Accesses,
		invalidations: s.Invalidations,
		writebacksL3:  s.WritebacksL3,
		backInvals:    s.BackInvals,
	}
	for _, p := range s.ports {
		snap.ports = append(snap.ports, p.snapshot())
	}
	return snap
}

// Restore overwrites the system's mutable state with the snapshot's. The
// system must have the same geometry (core count, cache configuration) as
// the snapshot's source. Prefetcher state is untouched.
func (s *System) Restore(snap *SystemSnapshot) {
	if len(s.ports) != len(snap.ports) {
		panic("memsys: Restore with mismatched core count")
	}
	s.l3.Restore(snap.l3)
	s.dram.Restore(snap.dram)
	s.dir.restore(snap.dir)
	for i, p := range s.ports {
		p.restore(snap.ports[i])
	}
	s.L3Accesses = snap.l3Accesses
	s.Invalidations = snap.invalidations
	s.WritebacksL3 = snap.writebacksL3
	s.BackInvals = snap.backInvals
}
